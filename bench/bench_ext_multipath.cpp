// Extension bench (section 5, footnote 2): scalar vs FIR-equalizer
// antidote as the antenna coupling becomes frequency-selective.
//
// Runs as a campaign: the "ext-multipath" preset sweeps the relative
// strength of a second multipath tap in H_jam->rec and each trial
// measures the cancellation both antidote designs achieve on a fresh
// probe/jam realization.
#include <cstdio>

#include "bench_campaign.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  bench::print_header(
      "Extension - scalar vs FIR-equalizer antidote under multipath",
      "Gollakota et al., SIGCOMM 2011, section 5 footnote 2");

  const auto result = bench::run_preset("ext-multipath", args);

  std::printf(
      "  2nd tap rel. strength   scalar antidote   FIR equalizer "
      "(64 taps)\n");
  for (const auto& point : result.points) {
    std::printf(
        "  %8.0f dB             %6.1f dB          %6.1f dB\n",
        point.axis_value,
        point.stats(campaign::Metric::kScalarCancellationDb).mean(),
        point.stats(campaign::Metric::kMultitapCancellationDb).mean());
  }
  std::printf(
      "\n  the scalar antidote's cancellation collapses to the second\n"
      "  tap's relative level; the time-domain equalizer (the footnote's\n"
      "  proposal) holds deep cancellation regardless.\n");
  bench::print_campaign_footer(result);
  return 0;
}
