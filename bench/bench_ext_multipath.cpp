// Extension bench (section 5, footnote 2): scalar vs FIR-equalizer
// antidote as the antenna coupling becomes frequency-selective. Sweeps the
// relative strength of a second multipath tap in H_jam->rec and reports
// the cancellation each design achieves.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "dsp/correlate.hpp"
#include "dsp/rng.hpp"
#include "shield/antidote.hpp"
#include "shield/jamgen.hpp"
#include "shield/multitap_antidote.hpp"

using namespace hs;
using dsp::cplx;
using dsp::Samples;

namespace {

Samples convolve(dsp::SampleView h, dsp::SampleView x) {
  Samples y(x.size(), cplx{});
  for (std::size_t n = 0; n < x.size(); ++n) {
    for (std::size_t k = 0; k < h.size() && k <= n; ++k) {
      y[n] += h[k] * x[n - k];
    }
  }
  return y;
}

double cancellation_db(dsp::SampleView hjr, dsp::SampleView hself,
                       dsp::SampleView jam, dsp::SampleView antidote) {
  const auto air = convolve(hjr, jam);
  const auto wire = convolve(hself, antidote);
  double jam_power = 0, residual = 0;
  for (std::size_t n = 128; n < air.size(); ++n) {
    jam_power += std::norm(air[n]);
    residual += std::norm(air[n] + wire[n]);
  }
  return 10.0 * std::log10(jam_power / std::max(residual, 1e-30));
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  bench::print_header(
      "Extension - scalar vs FIR-equalizer antidote under multipath",
      "Gollakota et al., SIGCOMM 2011, section 5 footnote 2");

  dsp::Rng rng(args.seed);
  Samples probe(1024);
  for (auto& x : probe) x = rng.random_phase();
  const Samples hself = {cplx{0.7, 0.0}};

  phy::FskParams fsk;
  shield::JammingSignalGenerator gen(fsk, shield::JamProfile::kShaped,
                                     args.seed);
  gen.set_power(1.0);
  const auto jam = gen.next(1 << 14);

  std::printf(
      "  2nd tap rel. strength   scalar antidote   FIR equalizer "
      "(64 taps)\n");
  for (double tap_db : {-40.0, -30.0, -20.0, -12.0, -6.0, -3.0}) {
    const double mag = 0.03 * std::pow(10.0, tap_db / 20.0);
    const Samples hjr = {cplx{0.03, 0.0}, cplx{0.0, mag}};

    shield::AntidoteController flat(0.0, args.seed);
    flat.update_jam_channel(
        dsp::estimate_flat_channel(convolve(hjr, probe), probe));
    flat.update_self_channel(
        dsp::estimate_flat_channel(convolve(hself, probe), probe));
    Samples flat_x(jam.size());
    const cplx coeff = flat.antidote_coefficient();
    for (std::size_t i = 0; i < jam.size(); ++i) flat_x[i] = coeff * jam[i];

    shield::MultitapAntidote multitap(4, 64);
    multitap.update_jam_channel(convolve(hjr, probe), probe);
    multitap.update_self_channel(convolve(hself, probe), probe);
    const auto fir_x = multitap.antidote_for(jam);

    std::printf("  %8.0f dB             %6.1f dB          %6.1f dB\n",
                tap_db, cancellation_db(hjr, hself, jam, flat_x),
                cancellation_db(hjr, hself, jam, fir_x));
  }
  std::printf(
      "\n  the scalar antidote's cancellation collapses to the second\n"
      "  tap's relative level; the time-domain equalizer (the footnote's\n"
      "  proposal) holds deep cancellation regardless.\n");
  return 0;
}
