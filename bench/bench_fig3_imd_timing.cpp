// Fig. 3: typical interaction between the Virtuoso IMD and its programmer.
// (a) The IMD transmits a fixed interval (~3.5 ms) after an interrogation.
// (b) The IMD does NOT sense the medium: a second message transmitted
//     1 ms after the first (so the medium is busy through the reply
//     window) does not delay the reply.
#include <cstdio>

#include "bench_util.hpp"
#include "imd/programmer.hpp"
#include "imd/protocol.hpp"
#include "shield/deployment.hpp"

using namespace hs;

namespace {

double measure_reply_delay(std::uint64_t seed, bool occupy_medium) {
  shield::DeploymentOptions opt;
  opt.seed = seed;
  opt.shield_present = false;  // raw IMD/programmer interaction
  shield::Deployment d(opt);

  imd::ProgrammerConfig pcfg;
  pcfg.fsk = opt.imd_profile.fsk;
  imd::ProgrammerNode programmer(pcfg, d.medium(), &d.log());
  d.add_node(&programmer);
  d.run_for(1e-3);

  const double fs = opt.imd_profile.fsk.fs;
  const std::size_t start =
      d.timeline().sample_position() + d.options().block_size;
  const auto command = imd::make_interrogate(opt.imd_profile.serial, 1);
  programmer.send_at(command, start);
  const std::size_t cmd_samples =
      phy::encode_frame(command).size() * opt.imd_profile.fsk.sps;
  const std::size_t cmd_end = start + cmd_samples;

  if (occupy_medium) {
    // A second (random, other-device) message 1 ms after the first keeps
    // the medium busy across the IMD's reply interval.
    phy::Frame other;
    other.device_id = {9, 9, 9, 9, 9, 9, 9, 9, 9, 9};
    other.type = 0x7F;
    other.payload.assign(40, 0x55);
    programmer.send_at(other,
                       cmd_end + static_cast<std::size_t>(1e-3 * fs));
  }
  d.run_for(60e-3);

  if (d.imd().stats().replies_sent == 0) return -1.0;
  const double reply_start_s =
      static_cast<double>(d.imd().last_tx_start_sample()) / fs;
  return reply_start_s - static_cast<double>(cmd_end) / fs;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  bench::print_header("Fig. 3 - IMD reply timing & absence of carrier sense",
                      "Gollakota et al., SIGCOMM 2011, Figure 3");

  const std::size_t trials = args.trials_or(20);
  std::vector<double> idle_delays, busy_delays;
  for (std::size_t t = 0; t < trials; ++t) {
    const double d1 = measure_reply_delay(args.seed + t, false);
    const double d2 = measure_reply_delay(args.seed + t, true);
    if (d1 > 0) idle_delays.push_back(d1 * 1e3);
    if (d2 > 0) busy_delays.push_back(d2 * 1e3);
  }
  const auto idle = bench::summarize(idle_delays);
  const auto busy = bench::summarize(busy_delays);
  std::printf("  scenario            replies  delay mean  delay range\n");
  std::printf("  medium idle  (a)    %3zu/%zu   %6.2f ms   [%.2f, %.2f] ms\n",
              idle_delays.size(), trials, idle.mean, idle.min, idle.max);
  std::printf("  medium busy  (b)    %3zu/%zu   %6.2f ms   [%.2f, %.2f] ms\n",
              busy_delays.size(), trials, busy.mean, busy.min, busy.max);
  std::printf(
      "\n  paper: reply ~3.5 ms after the command in BOTH cases (the IMD\n"
      "  transmits within a fixed interval without sensing the medium).\n");
  return 0;
}
