// Fig. 3: typical interaction between the Virtuoso IMD and its programmer.
// (a) The IMD transmits a fixed interval (~3.5 ms) after an interrogation.
// (b) The IMD does NOT sense the medium: a second message transmitted
//     1 ms after the first (so the medium is busy through the reply
//     window) does not delay the reply.
//
// Runs as a campaign: each trial of the "fig3-imd-timing" preset measures
// the reply delay once with the medium idle and once with it occupied.
#include <cstdio>

#include "bench_campaign.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  bench::print_header("Fig. 3 - IMD reply timing & absence of carrier sense",
                      "Gollakota et al., SIGCOMM 2011, Figure 3");

  const auto result = bench::run_preset("fig3-imd-timing", args);

  const auto& point = result.points.front();
  const auto& idle = point.stats(campaign::Metric::kReplyDelayIdleMs);
  const auto& busy = point.stats(campaign::Metric::kReplyDelayBusyMs);
  std::printf("  scenario            replies  delay mean  delay range\n");
  std::printf("  medium idle  (a)    %3zu/%zu   %6.2f ms   [%.2f, %.2f] ms\n",
              idle.count(), result.total_trials, idle.mean(), idle.min(),
              idle.max());
  std::printf("  medium busy  (b)    %3zu/%zu   %6.2f ms   [%.2f, %.2f] ms\n",
              busy.count(), result.total_trials, busy.mean(), busy.min(),
              busy.max());
  std::printf(
      "\n  paper: reply ~3.5 ms after the command in BOTH cases (the IMD\n"
      "  transmits within a fixed interval without sensing the medium).\n");
  bench::print_campaign_footer(result);
  return 0;
}
