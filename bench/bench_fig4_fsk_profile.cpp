// Fig. 4: the frequency profile of the FSK signal captured from a Virtuoso
// cardiac defibrillator — most of the energy concentrated around +-50 kHz.
//
// The tone-band power fraction is measured by the "fig4-fsk-profile"
// campaign preset (randomized payloads per trial); the PSD chart below it
// is a single deterministic rendering for visual comparison with the
// paper's figure.
#include <cmath>
#include <cstdio>
#include <string>

#include "bench_campaign.hpp"
#include "dsp/rng.hpp"
#include "dsp/spectrum.hpp"
#include "imd/profiles.hpp"
#include "phy/frame.hpp"
#include "phy/fsk.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  bench::print_header("Fig. 4 - Virtuoso ICD FSK power profile",
                      "Gollakota et al., SIGCOMM 2011, Figure 4");

  // One deterministic long capture, rendered as the paper's figure.
  const auto profile = imd::virtuoso_profile();
  dsp::Rng rng(args.seed, "fig4");
  phy::BitVec bits;
  for (int f = 0; f < 8; ++f) {
    phy::Frame frame;
    frame.device_id = profile.serial;
    frame.type = 0x81;
    frame.seq = static_cast<std::uint8_t>(f);
    frame.payload.resize(profile.data_chunk_bytes);
    for (auto& b : frame.payload) {
      b = static_cast<std::uint8_t>(rng.next_u64());
    }
    const auto fb = phy::encode_frame(frame);
    bits.insert(bits.end(), fb.begin(), fb.end());
  }
  const auto wave = phy::fsk_modulate(profile.fsk, bits);
  dsp::WelchOptions wopt;
  wopt.segment_size = 256;
  auto psd = dsp::welch_psd(wave, profile.fsk.fs, wopt);
  dsp::normalize_peak(psd);

  std::printf("  freq (kHz)   relative power (dB)\n");
  // Print every 4th bin across the 300 kHz channel.
  for (std::size_t i = 0; i < psd.power.size(); i += 4) {
    const double db =
        10.0 * std::log10(std::max(psd.power[i], 1e-9));
    std::printf("  %+9.1f   %7.1f  |%s\n", psd.freq_hz[i] / 1e3, db,
                std::string(static_cast<std::size_t>(
                                std::max(0.0, (db + 60.0) / 1.5)),
                            '#')
                    .c_str());
  }

  // The quantitative claim, as a campaign over randomized payloads.
  const auto result = bench::run_preset("fig4-fsk-profile", args);
  const auto& frac =
      result.points.front().stats(campaign::Metric::kToneBandFraction);
  std::printf(
      "\n  fraction of power within +-15 kHz of the +-50 kHz tones: "
      "%.2f +- %.2f\n",
      frac.mean(), frac.stddev());
  std::printf("  paper: energy concentrated around +-50 kHz.\n");
  bench::print_campaign_footer(result);
  return 0;
}
