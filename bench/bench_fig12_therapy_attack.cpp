// Fig. 12: probability that the adversary changes the IMD's therapy
// parameters, by location, shield absent vs present.
//
// Runs as a campaign: the "fig12-therapy" and "fig12-therapy-noshield"
// presets sweep the location axis.
#include <cstdio>

#include "bench_campaign.hpp"
#include "channel/geometry.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  bench::print_header(
      "Fig. 12 - therapy-modification attack success probability",
      "Gollakota et al., SIGCOMM 2011, Figure 12");

  const auto absent = bench::run_preset("fig12-therapy-noshield", args);
  const auto present = bench::run_preset("fig12-therapy", args);

  std::printf(
      "  location  distance  LOS   P(therapy changed)\n"
      "                            absent   present\n");
  for (std::size_t p = 0; p < absent.points.size(); ++p) {
    const int loc = static_cast<int>(absent.points[p].axis_value);
    const auto& l = channel::testbed_location(loc);
    std::printf("  %5d     %5.1f m   %-3s   %.2f     %.2f\n", loc,
                l.distance_m, l.line_of_sight() ? "yes" : "no",
                absent.points[p].stats(campaign::Metric::kAttackSuccess)
                    .mean(),
                present.points[p].stats(campaign::Metric::kAttackSuccess)
                    .mean());
  }
  std::printf(
      "\n  paper (shield absent):  1 1 1 1 0.95 0.84 0.78 0.70 0.02 0.01 ...\n"
      "  paper (shield present): 0 at every location.\n");
  bench::print_campaign_footer(present);
  return 0;
}
