// Fig. 12: probability that the adversary changes the IMD's therapy
// parameters, by location, shield absent vs present.
#include <cstdio>

#include "bench_util.hpp"
#include "channel/geometry.hpp"
#include "shield/experiments.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  bench::print_header(
      "Fig. 12 - therapy-modification attack success probability",
      "Gollakota et al., SIGCOMM 2011, Figure 12");

  const std::size_t trials = args.trials_or(50);
  std::printf(
      "  location  distance  LOS   P(therapy changed)\n"
      "                            absent   present\n");
  for (int loc = 1; loc <= 14; ++loc) {
    shield::AttackOptions opt;
    opt.seed = args.seed + 1000 + static_cast<std::uint64_t>(loc);
    opt.location_index = loc;
    opt.trials = trials;
    opt.kind = shield::AttackKind::kChangeTherapy;

    opt.shield_present = false;
    const auto absent = shield::run_attack_experiment(opt);
    opt.shield_present = true;
    const auto present = shield::run_attack_experiment(opt);

    const auto& l = channel::testbed_location(loc);
    std::printf("  %5d     %5.1f m   %-3s   %.2f     %.2f\n", loc,
                l.distance_m, l.line_of_sight() ? "yes" : "no",
                absent.success_probability(), present.success_probability());
  }
  std::printf(
      "\n  paper (shield absent):  1 1 1 1 0.95 0.84 0.78 0.70 0.02 0.01 ...\n"
      "  paper (shield present): 0 at every location.\n");
  return 0;
}
