// Fig. 8: the tradeoff between the eavesdropper's BER and the shield's
// packet loss as the jamming power sweeps from 0 to 25 dB above the IMD
// power received at the shield. Paper operating point: +20 dB gives the
// eavesdropper ~50% BER while the shield's packet loss stays ~0.2%.
//
// Runs as a campaign: the "fig8-tradeoff" preset sweeps the jam-margin
// axis; trials fan across the worker pool with pooled deployments.
#include <cstdio>

#include "bench_campaign.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  bench::print_header(
      "Fig. 8 - eavesdropper BER / shield PER vs relative jamming power",
      "Gollakota et al., SIGCOMM 2011, Figures 8(a) and 8(b)");

  const auto result = bench::run_preset("fig8-tradeoff", args);

  std::printf(
      "  jam power rel. IMD (dB)   adversary BER   shield packet loss\n");
  for (const auto& point : result.points) {
    std::printf("  %8.1f                  %8.4f        %8.4f\n",
                point.axis_value,
                point.stats(campaign::Metric::kAdversaryBer).mean(),
                point.stats(campaign::Metric::kShieldPacketLoss).mean());
  }
  std::printf(
      "\n  paper: BER ~0.5 at the eavesdropper and PER <= 0.002 at the\n"
      "  shield when jamming 20 dB above the received IMD power.\n");
  bench::print_campaign_footer(result);
  return 0;
}
