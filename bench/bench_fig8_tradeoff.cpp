// Fig. 8: the tradeoff between the eavesdropper's BER and the shield's
// packet loss as the jamming power sweeps from 0 to 25 dB above the IMD
// power received at the shield. Paper operating point: +20 dB gives the
// eavesdropper ~50% BER while the shield's packet loss stays ~0.2%.
#include <cstdio>

#include "bench_util.hpp"
#include "shield/experiments.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  bench::print_header(
      "Fig. 8 - eavesdropper BER / shield PER vs relative jamming power",
      "Gollakota et al., SIGCOMM 2011, Figures 8(a) and 8(b)");

  const std::size_t packets = args.trials_or(60);
  std::printf(
      "  jam power rel. IMD (dB)   adversary BER   shield packet loss\n");
  for (double margin = 0.0; margin <= 25.0; margin += 2.5) {
    shield::EavesdropOptions opt;
    opt.seed = args.seed;
    opt.location_index = 1;  // eavesdropper 20 cm away, as in the paper
    opt.packets = packets;
    opt.jam_margin_db = margin;
    opt.use_margin_override = true;
    const auto result = shield::run_eavesdrop_experiment(opt);
    std::printf("  %8.1f                  %8.4f        %8.4f\n", margin,
                result.mean_ber(), result.shield_packet_loss());
  }
  std::printf(
      "\n  paper: BER ~0.5 at the eavesdropper and PER <= 0.002 at the\n"
      "  shield when jamming 20 dB above the received IMD power.\n");
  return 0;
}
