// Micro-benchmarks (google-benchmark): throughput of the DSP/PHY/crypto
// primitives the shield's real-time loop is built from.
#include <benchmark/benchmark.h>

#include "crypto/aead.hpp"
#include "dsp/fft.hpp"
#include "dsp/rng.hpp"
#include "mics/channelizer.hpp"
#include "phy/fsk.hpp"
#include "phy/frame.hpp"
#include "phy/receiver.hpp"
#include "shield/jamgen.hpp"
#include "shield/sid_matcher.hpp"

using namespace hs;

namespace {

void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dsp::Rng rng(1);
  dsp::Samples data(n);
  rng.fill_awgn(data, 1.0);
  for (auto _ : state) {
    dsp::fft_inplace(data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Fft)->Arg(256)->Arg(1024)->Arg(4096);

void BM_FskModulate(benchmark::State& state) {
  phy::FskParams fsk;
  phy::FskModulator mod(fsk);
  dsp::Rng rng(2);
  phy::BitVec bits(512);
  for (auto& b : bits) b = rng.next_u64() & 1;
  for (auto _ : state) {
    auto wave = mod.modulate(bits);
    benchmark::DoNotOptimize(wave.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bits.size()));
}
BENCHMARK(BM_FskModulate);

void BM_FskDemodulate(benchmark::State& state) {
  phy::FskParams fsk;
  dsp::Rng rng(3);
  phy::BitVec bits(512);
  for (auto& b : bits) b = rng.next_u64() & 1;
  const auto wave = phy::fsk_modulate(fsk, bits);
  phy::NoncoherentFskDemod demod(fsk);
  for (auto _ : state) {
    auto out = demod.demodulate(wave, 0, bits.size());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bits.size()));
}
BENCHMARK(BM_FskDemodulate);

void BM_ReceiverFrame(benchmark::State& state) {
  phy::FskParams fsk;
  phy::Frame frame;
  frame.device_id = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  frame.payload.assign(32, 0xA5);
  const auto wave = phy::fsk_modulate(fsk, phy::encode_frame(frame));
  dsp::Rng rng(4);
  dsp::Samples sig(600 + wave.size() + 600);
  rng.fill_awgn(sig, 1e-9);
  for (std::size_t i = 0; i < wave.size(); ++i) sig[600 + i] += wave[i];
  for (auto _ : state) {
    phy::FskReceiver rx(fsk);
    rx.push(sig);
    auto f = rx.pop();
    benchmark::DoNotOptimize(f);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sig.size()));
}
BENCHMARK(BM_ReceiverFrame);

void BM_JamGen(benchmark::State& state) {
  phy::FskParams fsk;
  shield::JammingSignalGenerator gen(fsk, shield::JamProfile::kShaped, 5);
  gen.set_power(1.0);
  for (auto _ : state) {
    auto block = gen.next(4096);
    benchmark::DoNotOptimize(block.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4096);
}
BENCHMARK(BM_JamGen);

void BM_SidMatcher(benchmark::State& state) {
  phy::DeviceId id = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  shield::SidMatcher matcher(phy::make_sid(id), 4);
  dsp::Rng rng(6);
  phy::BitVec bits(4096);
  for (auto& b : bits) b = rng.next_u64() & 1;
  for (auto _ : state) {
    matcher.reset();
    bool fired = matcher.push(bits);
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bits.size()));
}
BENCHMARK(BM_SidMatcher);

void BM_AeadSeal(benchmark::State& state) {
  crypto::Aead::Key key{};
  crypto::Aead::Nonce nonce{};
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(i);
  }
  crypto::Bytes msg(static_cast<std::size_t>(state.range(0)), 0x42);
  for (auto _ : state) {
    auto sealed = crypto::Aead::seal(
        key, nonce, crypto::ByteView(msg.data(), msg.size()), {});
    benchmark::DoNotOptimize(sealed.ciphertext.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_AeadSeal)->Arg(64)->Arg(1024);

void BM_Channelizer(benchmark::State& state) {
  mics::Channelizer channelizer;
  dsp::Rng rng(7);
  dsp::Samples wideband(4096);
  rng.fill_awgn(wideband, 1.0);
  std::array<dsp::Samples, mics::kChannelCount> out;
  for (auto _ : state) {
    for (auto& ch : out) ch.clear();
    channelizer.process(wideband, out);
    benchmark::DoNotOptimize(out[0].data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wideband.size()));
}
BENCHMARK(BM_Channelizer);

}  // namespace

BENCHMARK_MAIN();
