// Fig. 7: CDF of the jamming-signal cancellation achieved by the antidote
// at the shield's receive antenna. Paper: ~32 dB on average, low variance,
// matching antenna-cancellation designs that need half-wavelength antenna
// separation [3] — but with the antennas side by side.
#include <cstdio>

#include "bench_util.hpp"
#include "shield/calibrate.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  bench::print_header("Fig. 7 - antidote cancellation CDF",
                      "Gollakota et al., SIGCOMM 2011, Figure 7");

  shield::DeploymentOptions opt;
  opt.seed = args.seed;
  shield::Deployment d(opt);
  const auto samples =
      shield::measure_cancellation_cdf(d, args.trials_or(200));
  bench::print_cdf(samples, "nulling (dB)");
  const auto s = bench::summarize(samples);
  std::printf("\n  mean cancellation: %.1f dB (paper: ~32 dB)\n", s.mean);
  std::printf("  stddev: %.1f dB, range [%.1f, %.1f] dB (paper: ~20-40)\n",
              s.stddev, s.min, s.max);
  return 0;
}
