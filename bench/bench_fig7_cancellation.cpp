// Fig. 7: distribution of the jamming-signal cancellation achieved by the
// antidote at the shield's receive antenna. Paper: ~32 dB on average, low
// variance, matching antenna-cancellation designs that need half-
// wavelength antenna separation [3] — but with the antennas side by side.
//
// Runs as a campaign: each trial of the "fig7-cancellation" preset
// re-probes (fresh channel estimates, fresh hardware-error epoch) and
// measures one cancellation sample.
#include <cstdio>

#include "bench_campaign.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  bench::print_header("Fig. 7 - antidote cancellation distribution",
                      "Gollakota et al., SIGCOMM 2011, Figure 7");

  const auto result = bench::run_preset("fig7-cancellation", args);

  const auto& canc =
      result.points.front().stats(campaign::Metric::kCancellationDb);
  std::printf("  cancellation samples: %zu\n", canc.count());
  std::printf("    mean:    %6.1f dB\n", canc.mean());
  std::printf("    stddev:  %6.1f dB\n", canc.stddev());
  std::printf("    min:     %6.1f dB\n", canc.min());
  std::printf("    max:     %6.1f dB\n", canc.max());
  std::printf("\n  paper: ~32 dB mean, range ~20-40 dB across runs.\n");
  bench::print_campaign_footer(result);
  return 0;
}
