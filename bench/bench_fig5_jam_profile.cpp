// Fig. 5: shaping the jamming signal's power profile to match the IMD's
// FSK profile, vs an oblivious constant-power profile.
//
// The tone-band power fractions come from the "fig5-jam-shaped" and
// "fig5-jam-constant" campaign presets; the side-by-side PSD chart is a
// single deterministic rendering for visual comparison.
#include <cmath>
#include <cstdio>

#include "bench_campaign.hpp"
#include "dsp/spectrum.hpp"
#include "imd/profiles.hpp"
#include "shield/jamgen.hpp"

using namespace hs;

namespace {

dsp::PsdEstimate jam_psd(const phy::FskParams& fsk,
                         shield::JamProfile profile, std::uint64_t seed) {
  shield::JammingSignalGenerator gen(fsk, profile, seed);
  gen.set_power(1.0);
  const auto wave = gen.next(1 << 16);
  dsp::WelchOptions wopt;
  wopt.segment_size = 128;
  auto psd = dsp::welch_psd(wave, fsk.fs, wopt);
  return psd;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  bench::print_header("Fig. 5 - shaped vs constant jamming power profile",
                      "Gollakota et al., SIGCOMM 2011, Figure 5");

  const auto profile = imd::virtuoso_profile();
  auto shaped = jam_psd(profile.fsk, shield::JamProfile::kShaped, args.seed);
  auto constant =
      jam_psd(profile.fsk, shield::JamProfile::kConstant, args.seed);

  // Normalize both to equal total power for a fair comparison.
  double sp = 0, cp = 0;
  for (double v : shaped.power) sp += v;
  for (double v : constant.power) cp += v;
  for (auto& v : shaped.power) v /= sp;
  for (auto& v : constant.power) v /= cp;

  std::printf("  freq (kHz)   shaped (dB)   constant (dB)\n");
  for (std::size_t i = 0; i < shaped.power.size(); i += 2) {
    std::printf("  %+9.1f   %8.1f     %8.1f\n", shaped.freq_hz[i] / 1e3,
                10.0 * std::log10(std::max(shaped.power[i], 1e-12)),
                10.0 * std::log10(std::max(constant.power[i], 1e-12)));
  }

  // Power each jammer puts within the decoding-relevant tone bands,
  // aggregated over randomized jamming streams by the campaign engine.
  const auto shaped_result = bench::run_preset("fig5-jam-shaped", args);
  const auto constant_result = bench::run_preset("fig5-jam-constant", args);
  const auto& shaped_frac =
      shaped_result.points.front().stats(campaign::Metric::kToneBandFraction);
  const auto& constant_frac = constant_result.points.front().stats(
      campaign::Metric::kToneBandFraction);
  std::printf(
      "\n  jamming power within the FSK tone bands (+-15 kHz of +-50 kHz):\n"
      "    shaped:   %.2f +- %.2f\n    constant: %.2f +- %.2f\n",
      shaped_frac.mean(), shaped_frac.stddev(), constant_frac.mean(),
      constant_frac.stddev());
  std::printf(
      "  paper: the shaped profile focuses jamming power on the\n"
      "  frequencies that matter for decoding.\n");
  bench::print_campaign_footer(shaped_result);
  return 0;
}
