// Fig. 10: CDF of the shield's packet loss rate when decoding the IMD's
// packets while jamming them. Paper: average ~0.2%.
#include <cstdio>

#include "bench_util.hpp"
#include "shield/experiments.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  bench::print_header("Fig. 10 - shield packet loss while jamming",
                      "Gollakota et al., SIGCOMM 2011, Figure 10");

  const std::size_t packets = args.trials_or(200);
  const std::size_t runs = 12;
  std::vector<double> losses;
  std::size_t total = 0, decoded = 0;
  for (std::size_t r = 0; r < runs; ++r) {
    shield::EavesdropOptions opt;
    opt.seed = args.seed + r;
    opt.location_index = 1;
    opt.packets = packets;
    const auto result = shield::run_eavesdrop_experiment(opt);
    losses.push_back(result.shield_packet_loss());
    total += result.imd_packets;
    decoded += result.shield_decoded;
  }
  bench::print_cdf(losses, "packet loss");
  std::printf(
      "\n  overall: %zu/%zu IMD packets decoded through jamming "
      "(loss %.4f)\n",
      decoded, total,
      1.0 - static_cast<double>(decoded) / static_cast<double>(total));
  std::printf("  paper: average packet loss ~0.002.\n");
  return 0;
}
