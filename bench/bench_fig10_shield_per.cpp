// Fig. 10: the shield's packet loss rate when decoding the IMD's packets
// while jamming them. Paper: average ~0.2%.
//
// Runs as a campaign: each trial of the "fig10-shield-per" preset decodes
// a 200-packet run; the engine parallelizes trials deterministically.
#include <cstdio>

#include "bench_campaign.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  bench::print_header("Fig. 10 - shield packet loss while jamming",
                      "Gollakota et al., SIGCOMM 2011, Figure 10");

  const auto result = bench::run_preset("fig10-shield-per", args);

  const auto& loss =
      result.points.front().stats(campaign::Metric::kShieldPacketLoss);
  std::printf("  %-14s  per-run packet loss\n", "");
  std::printf("  %-14s  mean    %.4f\n", "", loss.mean());
  std::printf("  %-14s  stddev  %.4f\n", "", loss.stddev());
  std::printf("  %-14s  min     %.4f\n", "", loss.min());
  std::printf("  %-14s  max     %.4f\n", "", loss.max());
  std::printf(
      "\n  overall: mean per-run loss %.4f across %zu runs of up to %zu "
      "IMD packets\n",
      loss.mean(), loss.count(), result.scenario.units_per_trial);
  std::printf("  paper: average packet loss ~0.002.\n");
  bench::print_campaign_footer(result);
  return 0;
}
