// Table 1: the adversarial RSSI at the shield that elicits IMD responses
// despite jamming — the calibration that sets P_thresh (the alarm
// threshold is 3 dB below the observed minimum).
#include <cstdio>

#include "bench_util.hpp"
#include "shield/calibrate.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  bench::print_header("Table 1 - P_thresh calibration",
                      "Gollakota et al., SIGCOMM 2011, Table 1");

  const auto result = shield::measure_pthresh(
      args.seed, /*location_index=*/1, /*power_lo_dbm=*/-16.0,
      /*power_hi_dbm=*/14.0, /*power_step_db=*/2.0,
      args.trials_or(10));

  std::printf("  successful packets: %zu\n", result.successes);
  if (result.successes > 0) {
    std::printf("  adversary RSSI at shield that elicited IMD responses:\n");
    std::printf("    minimum:   %7.1f dBm\n", result.min_dbm);
    std::printf("    average:   %7.1f dBm\n", result.mean_dbm);
    std::printf("    stddev:    %7.1f dB\n", result.stddev_db);
    std::printf("  => P_thresh (min - 3 dB): %.1f dBm\n",
                result.min_dbm - 3.0);
  }
  std::printf(
      "\n  paper: min -11.1 dBm, avg -4.5 dBm, stddev 3.5 dB (USRP-\n"
      "  referenced dBm; our scale is field-referenced, so absolute\n"
      "  values differ by a fixed front-end gain while the min/avg\n"
      "  spread and the thresholding methodology carry over).\n");
  return 0;
}
