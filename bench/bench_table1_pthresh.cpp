// Table 1: the adversarial RSSI at the shield that elicits IMD responses
// despite jamming — the calibration that sets P_thresh (the alarm
// threshold is 3 dB below the observed minimum).
//
// Runs as a campaign: the "table1-pthresh" preset sweeps the adversary's
// transmit power; every successful packet contributes its shield-side
// RSSI sample.
#include <algorithm>
#include <cstdio>

#include "bench_campaign.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  bench::print_header("Table 1 - P_thresh calibration",
                      "Gollakota et al., SIGCOMM 2011, Table 1");

  const auto result = bench::run_preset("table1-pthresh", args);

  // Pool the per-power RSSI streams exactly as Table 1 aggregates them.
  campaign::StreamingStats rssi, success;
  for (const auto& point : result.points) {
    rssi.merge(point.stats(campaign::Metric::kPthreshRssiDbm));
    success.merge(point.stats(campaign::Metric::kPthreshSuccess));
  }

  std::printf("  successful packets: %zu of %zu sent\n", rssi.count(),
              success.count());
  if (rssi.count() > 0) {
    std::printf("  adversary RSSI at shield that elicited IMD responses:\n");
    std::printf("    minimum:   %7.1f dBm\n", rssi.min());
    std::printf("    average:   %7.1f dBm\n", rssi.mean());
    std::printf("    stddev:    %7.1f dB\n", rssi.stddev());
    std::printf("  => P_thresh (min - 3 dB): %.1f dBm\n", rssi.min() - 3.0);
  }
  std::printf(
      "\n  paper: min -11.1 dBm, avg -4.5 dBm, stddev 3.5 dB (USRP-\n"
      "  referenced dBm; our scale is field-referenced, so absolute\n"
      "  values differ by a fixed front-end gain while the min/avg\n"
      "  spread and the thresholding methodology carry over).\n");
  bench::print_campaign_footer(result);
  return 0;
}
