// Ablation (sections 1 and 12): why the antidote instead of positional
// antenna cancellation? The prior full-duplex design (Choi et al. [3])
// transmits the same signal from two antennas and places the receive
// antenna exactly half a wavelength closer to one of them; cancellation
// then hinges on millimetre placement accuracy. At 403 MHz the wavelength
// is ~75 cm, so the rig is ~37.5 cm across — not wearable — and its
// cancellation collapses with placement error. The antidote needs no
// separation at all; its accuracy is an electronic, not mechanical, limit.
//
// The positional model is a closed-form evaluation; the antidote's
// achieved cancellation runs as the "ablate-positional" campaign preset
// over the hardware-accuracy axis.
#include <cmath>
#include <complex>
#include <cstdio>

#include "bench_campaign.hpp"
#include "channel/pathloss.hpp"

using namespace hs;

namespace {

/// Residual power (relative to one transmitter's signal) of positional
/// cancellation with a placement error `delta_m` from the ideal
/// half-wavelength offset: the two unit signals arrive with phase
/// difference pi + 2*pi*delta/lambda.
double positional_cancellation_db(double delta_m, double lambda_m) {
  const std::complex<double> a{1.0, 0.0};
  const double phase = M_PI + 2.0 * M_PI * delta_m / lambda_m;
  const std::complex<double> b{std::cos(phase), std::sin(phase)};
  const double residual = std::norm(a + b);
  return -10.0 * std::log10(std::max(residual, 1e-12));
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  bench::print_header(
      "Ablation - antidote vs positional (half-wavelength) cancellation",
      "Gollakota et al., SIGCOMM 2011, sections 1, 5 and 12");

  channel::PathLossModel pl;
  const double lambda = pl.wavelength_m();
  std::printf("  MICS wavelength: %.1f cm => required antenna separation\n",
              lambda * 100.0);
  std::printf("  for the positional design: %.1f cm (not wearable)\n\n",
              lambda * 50.0);

  std::printf("  placement error   positional cancellation\n");
  for (double mm : {0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0}) {
    std::printf("  %6.1f mm         %6.1f dB\n", mm,
                positional_cancellation_db(mm * 1e-3, lambda));
  }

  const auto result = bench::run_preset("ablate-positional", args);
  std::printf(
      "\n  antidote cancellation (no antenna separation) vs hardware "
      "accuracy:\n");
  std::printf("  hw error sigma   cancellation mean +- stddev\n");
  for (const auto& point : result.points) {
    const auto& canc = point.stats(campaign::Metric::kCancellationDb);
    std::printf("  %8.3f         %6.1f +- %4.1f dB\n", point.axis_value,
                canc.mean(), canc.stddev());
  }
  std::printf(
      "\n  conclusion: matching ~32 dB with the positional design needs\n"
      "  ~1 mm placement accuracy on a 37.5 cm rigid rig; the antidote\n"
      "  achieves it with antennas side by side.\n");
  bench::print_campaign_footer(result);
  return 0;
}
