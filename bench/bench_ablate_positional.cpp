// Ablation (sections 1 and 12): why the antidote instead of positional
// antenna cancellation? The prior full-duplex design (Choi et al. [3])
// transmits the same signal from two antennas and places the receive
// antenna exactly half a wavelength closer to one of them; cancellation
// then hinges on millimetre placement accuracy. At 403 MHz the wavelength
// is ~75 cm, so the rig is ~37.5 cm across — not wearable — and its
// cancellation collapses with placement error. The antidote needs no
// separation at all; its accuracy is an electronic, not mechanical, limit.
#include <cmath>
#include <complex>
#include <cstdio>

#include "bench_util.hpp"
#include "channel/pathloss.hpp"
#include "shield/antidote.hpp"
#include "shield/deployment.hpp"
#include "shield/calibrate.hpp"

using namespace hs;

namespace {

/// Residual power (relative to one transmitter's signal) of positional
/// cancellation with a placement error `delta_m` from the ideal
/// half-wavelength offset: the two unit signals arrive with phase
/// difference pi + 2*pi*delta/lambda.
double positional_cancellation_db(double delta_m, double lambda_m) {
  const std::complex<double> a{1.0, 0.0};
  const double phase = M_PI + 2.0 * M_PI * delta_m / lambda_m;
  const std::complex<double> b{std::cos(phase), std::sin(phase)};
  const double residual = std::norm(a + b);
  return -10.0 * std::log10(std::max(residual, 1e-12));
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  bench::print_header(
      "Ablation - antidote vs positional (half-wavelength) cancellation",
      "Gollakota et al., SIGCOMM 2011, sections 1, 5 and 12");

  channel::PathLossModel pl;
  const double lambda = pl.wavelength_m();
  std::printf("  MICS wavelength: %.1f cm => required antenna separation\n",
              lambda * 100.0);
  std::printf("  for the positional design: %.1f cm (not wearable)\n\n",
              lambda * 50.0);

  std::printf("  placement error   positional cancellation\n");
  for (double mm : {0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0}) {
    std::printf("  %6.1f mm         %6.1f dB\n", mm,
                positional_cancellation_db(mm * 1e-3, lambda));
  }

  shield::DeploymentOptions opt;
  opt.seed = args.seed;
  shield::Deployment d(opt);
  const auto samples =
      shield::measure_cancellation_cdf(d, args.trials_or(50));
  const auto s = bench::summarize(samples);
  std::printf(
      "\n  antidote cancellation (no antenna separation): %.1f dB mean\n",
      s.mean);
  std::printf(
      "  conclusion: matching ~32 dB with the positional design needs\n"
      "  ~1 mm placement accuracy on a 37.5 cm rigid rig; the antidote\n"
      "  achieves it with antennas side by side.\n");
  return 0;
}
