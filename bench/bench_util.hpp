// Shared support for the reproduction benches: tiny CLI parsing, table
// printing, and summary statistics. Every bench accepts --seed=N and
// --trials=N and prints deterministic, paper-style rows.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace hs::bench {

struct Args {
  std::uint64_t seed = 1;
  /// 0 => bench default. For campaign-based benches this counts campaign
  /// trials per sweep point (each trial may decode many packets), NOT the
  /// packets-per-location of the pre-campaign loops.
  std::size_t trials = 0;
  unsigned threads = 0;    ///< campaign workers; 0 => hardware concurrency
  /// false => rebuild the deployment per trial instead of reusing the
  /// worker's pooled one (--no-reuse; identical aggregates, slower).
  bool reuse = true;

  static Args parse(int argc, char** argv) {
    Args args;
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--seed=", 7) == 0) {
        args.seed = std::strtoull(argv[i] + 7, nullptr, 10);
      } else if (std::strncmp(argv[i], "--trials=", 9) == 0) {
        args.trials = std::strtoull(argv[i] + 9, nullptr, 10);
      } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
        args.threads = static_cast<unsigned>(
            std::strtoul(argv[i] + 10, nullptr, 10));
      } else if (std::strcmp(argv[i], "--no-reuse") == 0) {
        args.reuse = false;
      } else if (std::strcmp(argv[i], "--help") == 0) {
        std::printf(
            "usage: %s [--seed=N] [--trials=N] [--threads=N] [--no-reuse]\n"
            "  campaign benches: --trials is campaign trials per sweep "
            "point\n",
            argv[0]);
        std::exit(0);
      }
    }
    return args;
  }

  std::size_t trials_or(std::size_t fallback) const {
    return trials > 0 ? trials : fallback;
  }
};

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("== %s ==\n", title);
  std::printf("   reproduces: %s\n\n", paper_ref);
}

struct Stats {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

inline Stats summarize(const std::vector<double>& xs) {
  Stats s;
  if (xs.empty()) return s;
  double sum = 0.0, sum_sq = 0.0;
  s.min = xs[0];
  s.max = xs[0];
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(xs.size());
  const double var =
      sum_sq / static_cast<double>(xs.size()) - s.mean * s.mean;
  s.stddev = std::sqrt(std::max(var, 0.0));
  return s;
}

/// Prints a CDF of the samples as (value, fraction <= value) rows.
inline void print_cdf(std::vector<double> xs, const char* value_label,
                      std::size_t rows = 12) {
  if (xs.empty()) {
    std::printf("  (no samples)\n");
    return;
  }
  std::sort(xs.begin(), xs.end());
  std::printf("  %-14s  CDF\n", value_label);
  for (std::size_t r = 0; r <= rows; ++r) {
    const double q = static_cast<double>(r) / static_cast<double>(rows);
    const std::size_t idx = std::min(
        xs.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(xs.size() - 1)));
    std::printf("  %-14.4f  %.3f\n", xs[idx], q);
  }
}

}  // namespace hs::bench
