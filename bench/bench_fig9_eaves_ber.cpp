// Fig. 9: the eavesdropper's BER over all 18 testbed locations.
// Paper: ~50% everywhere — decoding is no better than random guessing,
// independent of the eavesdropper's location (equation 7).
//
// Runs as a campaign: the "fig9-eaves-ber" preset sweeps the location
// axis and the engine fans trials across a worker pool (aggregates are
// bit-identical to a serial run).
#include <cstdio>

#include "bench_campaign.hpp"
#include "channel/geometry.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  bench::print_header("Fig. 9 - eavesdropper BER over all locations",
                      "Gollakota et al., SIGCOMM 2011, Figure 9");

  const auto result = bench::run_preset("fig9-eaves-ber", args);

  std::vector<double> per_location_ber;
  std::printf("  location  distance  LOS   mean BER   stddev\n");
  for (const auto& point : result.points) {
    const int loc = static_cast<int>(point.axis_value);
    const auto& ber = point.stats(campaign::Metric::kAdversaryBer);
    const auto& l = channel::testbed_location(loc);
    std::printf("  %5d     %5.1f m   %-3s   %.4f     %.4f\n", loc,
                l.distance_m, l.line_of_sight() ? "yes" : "no", ber.mean(),
                ber.stddev());
    per_location_ber.push_back(ber.mean());
  }
  const auto s = bench::summarize(per_location_ber);
  std::printf(
      "\n  per-location mean BER: %.3f +- %.3f (paper: ~0.5 at all\n"
      "  locations; low variance shows location independence).\n",
      s.mean, s.stddev);
  bench::print_campaign_footer(result);
  return 0;
}
