// Fig. 9: CDF of the eavesdropper's BER over all 18 testbed locations.
// Paper: ~50% everywhere — decoding is no better than random guessing,
// independent of the eavesdropper's location (equation 7).
#include <cstdio>

#include "bench_util.hpp"
#include "channel/geometry.hpp"
#include "shield/experiments.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  bench::print_header("Fig. 9 - eavesdropper BER CDF over all locations",
                      "Gollakota et al., SIGCOMM 2011, Figure 9");

  const std::size_t packets = args.trials_or(40);
  std::vector<double> per_location_ber;
  std::vector<double> all_packet_bers;
  std::printf("  location  distance  LOS   mean BER\n");
  for (int loc = 1; loc <= static_cast<int>(channel::kTestbedLocationCount);
       ++loc) {
    shield::EavesdropOptions opt;
    opt.seed = args.seed + static_cast<std::uint64_t>(loc);
    opt.location_index = loc;
    opt.packets = packets;
    const auto result = shield::run_eavesdrop_experiment(opt);
    const auto& l = channel::testbed_location(loc);
    std::printf("  %5d     %5.1f m   %-3s   %.4f\n", loc, l.distance_m,
                l.line_of_sight() ? "yes" : "no", result.mean_ber());
    per_location_ber.push_back(result.mean_ber());
    all_packet_bers.insert(all_packet_bers.end(),
                           result.eavesdropper_ber.begin(),
                           result.eavesdropper_ber.end());
  }
  std::printf("\n");
  bench::print_cdf(all_packet_bers, "BER");
  const auto s = bench::summarize(per_location_ber);
  std::printf(
      "\n  per-location mean BER: %.3f +- %.3f (paper: ~0.5 at all\n"
      "  locations; low variance shows location independence).\n",
      s.mean, s.stddev);
  return 0;
}
