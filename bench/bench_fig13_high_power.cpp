// Fig. 13: the 100x-power adversary. Without the shield it changes
// therapy parameters from up to 27 m (location 13), including
// non-line-of-sight; with the shield it succeeds only from nearby
// line-of-sight locations, and every success coincides with an alarm.
#include <cstdio>

#include "bench_util.hpp"
#include "channel/geometry.hpp"
#include "shield/experiments.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  bench::print_header("Fig. 13 - 100x-power adversary",
                      "Gollakota et al., SIGCOMM 2011, Figure 13");

  const std::size_t trials = args.trials_or(50);
  std::printf(
      "  location  distance  LOS   P(success)            P(alarm)\n"
      "                            absent   present\n");
  std::size_t successes_with_shield = 0;
  std::size_t alarms_on_success = 0;
  for (int loc = 1; loc <= static_cast<int>(channel::kTestbedLocationCount);
       ++loc) {
    shield::AttackOptions opt;
    opt.seed = args.seed + 2000 + static_cast<std::uint64_t>(loc);
    opt.location_index = loc;
    opt.trials = trials;
    opt.extra_power_db = 20.0;  // 100x power
    opt.kind = shield::AttackKind::kChangeTherapy;

    opt.shield_present = false;
    const auto absent = shield::run_attack_experiment(opt);
    opt.shield_present = true;
    const auto present = shield::run_attack_experiment(opt);

    successes_with_shield += present.successes;
    alarms_on_success += std::min(present.alarms, present.successes);

    const auto& l = channel::testbed_location(loc);
    std::printf("  %5d     %5.1f m   %-3s   %.2f     %.2f           %.2f\n",
                loc, l.distance_m, l.line_of_sight() ? "yes" : "no",
                absent.success_probability(), present.success_probability(),
                present.alarm_probability());
  }
  std::printf(
      "\n  with the shield, %zu successes occurred; alarms accompanied "
      "%zu of them.\n",
      successes_with_shield, alarms_on_success);
  std::printf(
      "  paper: success w/o shield up to 27 m (location 13); with the\n"
      "  shield only nearby line-of-sight locations succeed, and the\n"
      "  shield raises an alarm whenever the adversary succeeds.\n");
  return 0;
}
