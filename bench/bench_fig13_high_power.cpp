// Fig. 13: the 100x-power adversary. Without the shield it changes
// therapy parameters from up to 27 m (location 13), including
// non-line-of-sight; with the shield it succeeds only from nearby
// line-of-sight locations, and every success coincides with an alarm.
//
// Runs as a campaign: the "fig13-high-power" and "fig13-high-power-
// noshield" presets sweep all 18 locations with +20 dB adversary power.
#include <algorithm>
#include <cstdio>

#include "bench_campaign.hpp"
#include "channel/geometry.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  bench::print_header("Fig. 13 - 100x-power adversary",
                      "Gollakota et al., SIGCOMM 2011, Figure 13");

  const auto absent = bench::run_preset("fig13-high-power-noshield", args);
  const auto present = bench::run_preset("fig13-high-power", args);

  std::printf(
      "  location  distance  LOS   P(success)            P(alarm)\n"
      "                            absent   present\n");
  double successes_with_shield = 0;
  double alarms_on_success = 0;
  for (std::size_t p = 0; p < absent.points.size(); ++p) {
    const int loc = static_cast<int>(absent.points[p].axis_value);
    const auto& l = channel::testbed_location(loc);
    const auto& success =
        present.points[p].stats(campaign::Metric::kAttackSuccess);
    const auto& alarm = present.points[p].stats(campaign::Metric::kAlarm);
    successes_with_shield += success.sum();
    alarms_on_success += std::min(alarm.sum(), success.sum());
    std::printf("  %5d     %5.1f m   %-3s   %.2f     %.2f           %.2f\n",
                loc, l.distance_m, l.line_of_sight() ? "yes" : "no",
                absent.points[p].stats(campaign::Metric::kAttackSuccess)
                    .mean(),
                success.mean(), alarm.mean());
  }
  std::printf(
      "\n  with the shield, %.0f successes occurred; alarms accompanied "
      "at least %.0f of them.\n",
      successes_with_shield, alarms_on_success);
  std::printf(
      "  paper: success w/o shield up to 27 m (location 13); with the\n"
      "  shield only nearby line-of-sight locations succeed, and the\n"
      "  shield raises an alarm whenever the adversary succeeds.\n");
  bench::print_campaign_footer(present);
  return 0;
}
