// Table 2: coexistence with legitimate users of the MICS band. The shield
// must jam every packet addressed to its IMD, never jam radiosonde
// cross-traffic, and release the medium quickly once an adversary stops
// (turn-around time; paper: 270 +- 23 us in software).
//
// Runs as a campaign: the "table2-coexistence" preset sweeps the
// adversary location axis; each trial plays one command + one cross
// frame, and the engine merges Bernoulli jam indicators (with Wilson 95%
// intervals) and turn-around samples across the worker pool.
#include <cstdio>

#include "bench_campaign.hpp"
#include "campaign/stats.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  bench::print_header("Table 2 - coexistence and turn-around time",
                      "Gollakota et al., SIGCOMM 2011, Table 2");

  const auto result = bench::run_preset("table2-coexistence", args);

  // Pool the per-location streams exactly as Table 2 aggregates them.
  campaign::StreamingStats cross, imd, turnaround;
  for (const auto& point : result.points) {
    cross.merge(point.stats(campaign::Metric::kCrossTrafficJammed));
    imd.merge(point.stats(campaign::Metric::kImdCommandJammed));
    turnaround.merge(point.stats(campaign::Metric::kTurnaroundUs));
  }

  const auto w_cross = campaign::wilson_interval(cross);
  const auto w_imd = campaign::wilson_interval(imd);
  std::printf("  probability of jamming:\n");
  std::printf(
      "    cross-traffic (radiosonde GMSK):  %.2f   (%zu frames, "
      "95%% CI [%.2f, %.2f])\n",
      cross.mean(), cross.count(), w_cross.lo, w_cross.hi);
  std::printf(
      "    packets that trigger the IMD:     %.2f   (%zu frames, "
      "95%% CI [%.2f, %.2f])\n",
      imd.mean(), imd.count(), w_imd.lo, w_imd.hi);
  std::printf("  turn-around time: %.0f +- %.0f us (range [%.0f, %.0f])\n",
              turnaround.mean(), turnaround.stddev(), turnaround.min(),
              turnaround.max());
  std::printf(
      "\n  paper: cross-traffic never jammed, IMD-addressed always jammed,\n"
      "  turn-around 270 +- 23 us (software implementation).\n");
  bench::print_campaign_footer(result);
  return 0;
}
