// Table 2: coexistence with legitimate users of the MICS band. The shield
// must jam every packet addressed to its IMD, never jam radiosonde
// cross-traffic, and release the medium quickly once an adversary stops
// (turn-around time; paper: 270 +- 23 us in software).
#include <cstdio>

#include "bench_util.hpp"
#include "shield/experiments.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  bench::print_header("Table 2 - coexistence and turn-around time",
                      "Gollakota et al., SIGCOMM 2011, Table 2");

  shield::CoexistenceOptions opt;
  opt.seed = args.seed;
  opt.rounds_per_location = args.trials_or(10);
  const auto result = shield::run_coexistence_experiment(opt);

  const double p_cross =
      result.cross_frames_sent
          ? static_cast<double>(result.cross_frames_jammed) /
                static_cast<double>(result.cross_frames_sent)
          : 0.0;
  const double p_imd =
      result.imd_commands_sent
          ? static_cast<double>(result.imd_commands_jammed) /
                static_cast<double>(result.imd_commands_sent)
          : 0.0;
  std::printf("  probability of jamming:\n");
  std::printf("    cross-traffic (radiosonde GMSK):  %.2f   (%zu/%zu)\n",
              p_cross, result.cross_frames_jammed, result.cross_frames_sent);
  std::printf("    packets that trigger the IMD:     %.2f   (%zu/%zu)\n",
              p_imd, result.imd_commands_jammed, result.imd_commands_sent);
  const auto ta = bench::summarize(result.turnaround_us);
  std::printf("  turn-around time: %.0f +- %.0f us (range [%.0f, %.0f])\n",
              ta.mean, ta.stddev, ta.min, ta.max);
  std::printf(
      "\n  paper: cross-traffic never jammed, IMD-addressed always jammed,\n"
      "  turn-around 270 +- 23 us (software implementation).\n");
  return 0;
}
