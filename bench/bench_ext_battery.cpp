// Extension bench (section 7(e)): shield battery life. The paper argues a
// wearable shield lasts "a day or longer even if transmitting
// continuously"; this bench works the claim out from a power model and
// also reports the IMD-side battery damage a battery-depletion attack
// causes with and without the shield.
#include <cstdio>

#include "bench_util.hpp"
#include "shield/battery_life.hpp"
#include "shield/experiments.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  bench::print_header("Extension - battery life (shield and IMD)",
                      "Gollakota et al., SIGCOMM 2011, section 7(e)");

  shield::ShieldPowerModel model;
  std::printf(
      "  shield power model: %.0f mWh cell, tx chain %.0f mW, rx chain "
      "%.0f mW\n\n",
      model.battery_mwh, model.tx_chain_mw, model.rx_chain_mw);
  std::printf("  shield battery life:\n");
  for (double session_s : {0.0, 120.0, 1800.0}) {
    const auto est = shield::estimate_battery_life(model, session_s);
    std::printf(
        "    %4.0f min of telemetry/day: %5.1f h monitoring, %5.1f h if "
        "attacked continuously\n",
        session_s / 60.0, est.monitoring_hours, est.under_attack_hours);
  }
  std::printf(
      "  (paper: wearable monitors that transmit continuously last 24-48 "
      "h)\n\n");

  // IMD battery damage under a battery-depletion attack, with and
  // without the shield (ties section 7(e) to Fig. 11's attack).
  const std::size_t trials = args.trials_or(25);
  std::printf("  IMD transmit energy spent under %zu battery-depletion "
              "attempts (location 3):\n", trials);
  for (const bool shield_present : {false, true}) {
    shield::AttackOptions opt;
    opt.seed = args.seed;
    opt.location_index = 3;
    opt.trials = trials;
    opt.shield_present = shield_present;
    const auto result = shield::run_attack_experiment(opt);
    std::printf("    shield %-7s  %6.2f mJ  (%zu forced replies)\n",
                shield_present ? "present" : "absent",
                result.battery_energy_spent_mj, result.successes);
  }
  std::printf(
      "\n  the shield reduces the adversary-forced IMD battery drain to "
      "zero.\n");
  return 0;
}
