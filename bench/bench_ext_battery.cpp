// Extension bench (section 7(e)): shield battery life. The paper argues a
// wearable shield lasts "a day or longer even if transmitting
// continuously"; this bench works the claim out from a power model and
// also reports the IMD-side battery damage a battery-depletion attack
// causes with and without the shield.
//
// The shield power model is closed-form; the IMD-side damage runs as the
// "ext-battery" / "ext-battery-noshield" campaign presets (one attack
// attempt per trial at location 3).
#include <cstdio>

#include "bench_campaign.hpp"
#include "shield/battery_life.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  bench::print_header("Extension - battery life (shield and IMD)",
                      "Gollakota et al., SIGCOMM 2011, section 7(e)");

  shield::ShieldPowerModel model;
  std::printf(
      "  shield power model: %.0f mWh cell, tx chain %.0f mW, rx chain "
      "%.0f mW\n\n",
      model.battery_mwh, model.tx_chain_mw, model.rx_chain_mw);
  std::printf("  shield battery life:\n");
  for (double session_s : {0.0, 120.0, 1800.0}) {
    const auto est = shield::estimate_battery_life(model, session_s);
    std::printf(
        "    %4.0f min of telemetry/day: %5.1f h monitoring, %5.1f h if "
        "attacked continuously\n",
        session_s / 60.0, est.monitoring_hours, est.under_attack_hours);
  }
  std::printf(
      "  (paper: wearable monitors that transmit continuously last 24-48 "
      "h)\n\n");

  // IMD battery damage under a battery-depletion attack, with and
  // without the shield (ties section 7(e) to Fig. 11's attack).
  const auto absent = bench::run_preset("ext-battery-noshield", args);
  const auto present = bench::run_preset("ext-battery", args);
  std::printf("  IMD transmit energy spent per battery-depletion attempt "
              "(location 3, %zu attempts):\n", absent.total_trials);
  struct Row {
    const char* label;
    const campaign::CampaignResult* result;
  };
  for (const Row& row : {Row{"absent ", &absent}, Row{"present", &present}}) {
    const auto& point = row.result->points.front();
    const auto& battery = point.stats(campaign::Metric::kBatteryMj);
    const auto& success = point.stats(campaign::Metric::kAttackSuccess);
    std::printf("    shield %s  %6.2f mJ total  (%.0f forced replies)\n",
                row.label, battery.sum(), success.sum());
  }
  std::printf(
      "\n  the shield reduces the adversary-forced IMD battery drain to "
      "zero.\n");
  bench::print_campaign_footer(present);
  return 0;
}
