// Ablation (section 6(a)): does spectral shaping of the jamming signal
// matter? An adversary can band-pass filter around the two FSK tones; if
// the jammer spreads its power uniformly over the 300 kHz channel, that
// filtering sheds most of the jamming energy and decoding recovers. The
// shaped jammer concentrates power where decoding happens, so filtering
// gains the adversary nothing.
#include <cstdio>

#include "bench_util.hpp"
#include "shield/experiments.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  bench::print_header("Ablation - shaped vs constant jamming profile",
                      "Gollakota et al., SIGCOMM 2011, section 6(a)/Fig. 5");

  const std::size_t packets = args.trials_or(60);
  struct Cell {
    shield::JamProfile profile;
    bool bandpass;
    const char* label;
  };
  const Cell cells[] = {
      {shield::JamProfile::kShaped, false, "shaped jam, optimal decoder   "},
      {shield::JamProfile::kShaped, true, "shaped jam, band-pass attack  "},
      {shield::JamProfile::kConstant, false,
       "constant jam, optimal decoder "},
      {shield::JamProfile::kConstant, true,
       "constant jam, band-pass attack"},
  };
  std::printf(
      "  configuration                    adversary BER at jam margin\n"
      "                                   +8 dB    +14 dB   +20 dB\n");
  for (const auto& cell : cells) {
    std::printf("  %s", cell.label);
    for (double margin : {8.0, 14.0, 20.0}) {
      shield::EavesdropOptions opt;
      opt.seed = args.seed;
      opt.location_index = 1;
      opt.packets = packets;
      opt.jam_profile = cell.profile;
      opt.bandpass_attack = cell.bandpass;
      opt.use_margin_override = true;
      opt.jam_margin_db = margin;
      const auto result = shield::run_eavesdrop_experiment(opt);
      std::printf("   %.4f", result.mean_ber());
    }
    std::printf("\n");
  }
  std::printf(
      "\n  expected: only the constant-profile jammer loses effectiveness\n"
      "  (lower adversary BER), especially against the filtering attack —\n"
      "  which is why the shield shapes its jamming signal.\n");
  return 0;
}
