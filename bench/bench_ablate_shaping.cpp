// Ablation (section 6(a)): does spectral shaping of the jamming signal
// matter? An adversary can band-pass filter around the two FSK tones; if
// the jammer spreads its power uniformly over the 300 kHz channel, that
// filtering sheds most of the jamming energy and decoding recovers. The
// shaped jammer concentrates power where decoding happens, so filtering
// gains the adversary nothing.
//
// Runs as a campaign: the four "ablate-shaping-*" presets cover the
// {shaped, constant} x {optimal, band-pass} grid, each sweeping the jam
// margins +8/+14/+20 dB.
#include <cstdio>

#include "bench_campaign.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  bench::print_header("Ablation - shaped vs constant jamming profile",
                      "Gollakota et al., SIGCOMM 2011, section 6(a)/Fig. 5");

  struct Cell {
    const char* preset;
    const char* label;
  };
  const Cell cells[] = {
      {"ablate-shaping-shaped-opt", "shaped jam, optimal decoder   "},
      {"ablate-shaping-shaped-bpf", "shaped jam, band-pass attack  "},
      {"ablate-shaping-constant-opt", "constant jam, optimal decoder "},
      {"ablate-shaping-constant-bpf", "constant jam, band-pass attack"},
  };
  std::printf(
      "  configuration                    adversary BER at jam margin\n"
      "                                   +8 dB    +14 dB   +20 dB\n");
  campaign::CampaignResult last;
  for (const auto& cell : cells) {
    const auto result = bench::run_preset(cell.preset, args);
    std::printf("  %s", cell.label);
    for (const auto& point : result.points) {
      std::printf("   %.4f",
                  point.stats(campaign::Metric::kAdversaryBer).mean());
    }
    std::printf("\n");
    last = result;
  }
  std::printf(
      "\n  expected: only the constant-profile jammer loses effectiveness\n"
      "  (lower adversary BER), especially against the filtering attack —\n"
      "  which is why the shield shapes its jamming signal.\n");
  bench::print_campaign_footer(last);
  return 0;
}
