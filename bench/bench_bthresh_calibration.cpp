// Section 10.1(c): calibrating b_thresh — how many header bit flips can a
// packet show at the shield while still being accepted by the IMD?
// Paper: 3 of 5000 packets, max 2 flips; b_thresh set conservatively to 4.
#include <cstdio>

#include "bench_util.hpp"
#include "shield/calibrate.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  bench::print_header("b_thresh calibration (section 10.1(c))",
                      "Gollakota et al., SIGCOMM 2011, section 10.1(c)");

  const auto result =
      shield::estimate_bthresh(args.seed, args.trials_or(500));
  std::printf("  adversarial packets sent:                      %zu\n",
              result.packets_sent);
  std::printf("  errored at shield yet accepted by IMD:         %zu\n",
              result.shield_error_imd_ok);
  std::printf("  max header bit flips among those packets:      %zu\n",
              result.max_header_bit_flips);
  std::printf("  recommended b_thresh:                          %zu\n",
              result.recommended_bthresh);
  std::printf(
      "\n  paper: 3/5000 packets, max 2 header bit flips, b_thresh = 4.\n"
      "  (In simulation the shield's SNR strictly dominates the IMD's —\n"
      "  the in-body path costs the IMD 20 dB — so such packets are even\n"
      "  rarer than on the paper's testbed; the conservative b_thresh = 4\n"
      "  is kept.)\n");
  return 0;
}
