// Fig. 11: probability that an off-the-shelf-programmer adversary triggers
// the IMD to transmit (depleting its battery), by location, with the
// shield absent vs present. Paper: succeeds up to 14 m (location 8)
// without the shield; always fails with the shield.
#include <cstdio>

#include "bench_util.hpp"
#include "channel/geometry.hpp"
#include "shield/experiments.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  bench::print_header(
      "Fig. 11 - battery-depletion attack success probability",
      "Gollakota et al., SIGCOMM 2011, Figure 11");

  const std::size_t trials = args.trials_or(50);
  std::printf(
      "  location  distance  LOS   P(IMD replies)          battery spent\n"
      "                            absent   present        absent (mJ)\n");
  for (int loc = 1; loc <= 14; ++loc) {
    shield::AttackOptions opt;
    opt.seed = args.seed + static_cast<std::uint64_t>(loc);
    opt.location_index = loc;
    opt.trials = trials;
    opt.kind = shield::AttackKind::kTriggerTransmission;

    opt.shield_present = false;
    const auto absent = shield::run_attack_experiment(opt);
    opt.shield_present = true;
    const auto present = shield::run_attack_experiment(opt);

    const auto& l = channel::testbed_location(loc);
    std::printf("  %5d     %5.1f m   %-3s   %.2f     %.2f           %.2f\n",
                loc, l.distance_m, l.line_of_sight() ? "yes" : "no",
                absent.success_probability(), present.success_probability(),
                absent.battery_energy_spent_mj);
  }
  std::printf(
      "\n  paper (shield absent):  1 1 1 1 1 0.94 0.77 0.59 0.01 0 ...\n"
      "  paper (shield present): 0 at every location.\n");
  return 0;
}
