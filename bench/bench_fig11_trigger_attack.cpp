// Fig. 11: probability that an off-the-shelf-programmer adversary triggers
// the IMD to transmit (depleting its battery), by location, with the
// shield absent vs present. Paper: succeeds up to 14 m (location 8)
// without the shield; always fails with the shield.
//
// Runs as a campaign: the "fig11-trigger" and "fig11-trigger-noshield"
// presets sweep the location axis; per-trial attack outcomes merge into
// Bernoulli success streams.
#include <cstdio>

#include "bench_campaign.hpp"
#include "channel/geometry.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  bench::print_header(
      "Fig. 11 - battery-depletion attack success probability",
      "Gollakota et al., SIGCOMM 2011, Figure 11");

  const auto absent = bench::run_preset("fig11-trigger-noshield", args);
  const auto present = bench::run_preset("fig11-trigger", args);

  std::printf(
      "  location  distance  LOS   P(IMD replies)          battery spent\n"
      "                            absent   present        absent (mJ)\n");
  for (std::size_t p = 0; p < absent.points.size(); ++p) {
    const int loc = static_cast<int>(absent.points[p].axis_value);
    const auto& l = channel::testbed_location(loc);
    std::printf("  %5d     %5.1f m   %-3s   %.2f     %.2f           %.2f\n",
                loc, l.distance_m, l.line_of_sight() ? "yes" : "no",
                absent.points[p].stats(campaign::Metric::kAttackSuccess)
                    .mean(),
                present.points[p].stats(campaign::Metric::kAttackSuccess)
                    .mean(),
                absent.points[p].stats(campaign::Metric::kBatteryMj).sum());
  }
  std::printf(
      "\n  paper (shield absent):  1 1 1 1 1 0.94 0.77 0.59 0.01 0 ...\n"
      "  paper (shield present): 0 at every location.\n");
  bench::print_campaign_footer(present);
  return 0;
}
