// Glue for the benches, all of which run on the campaign engine: preset
// lookup wired to the shared CLI args, and the standard throughput
// footer. Kept out of bench_util.hpp so the engine-independent helpers
// (summaries, CDF printing) stay reusable on their own.
#pragma once

#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"
#include "campaign/runner.hpp"
#include "campaign/scenario.hpp"

namespace hs::bench {

/// Runs a named campaign preset with the CLI's seed/trials/threads and
/// deployment-reuse switch; exits with a diagnostic if the preset does
/// not exist.
inline campaign::CampaignResult run_preset(const char* scenario_name,
                                           const Args& args) {
  const campaign::Scenario* scenario =
      campaign::find_scenario(scenario_name);
  if (!scenario) {
    std::fprintf(stderr,
                 "bench: unknown campaign preset '%s' (campaign_runner "
                 "--list shows all)\n",
                 scenario_name);
    std::exit(1);
  }
  campaign::CampaignOptions options;
  options.seed = args.seed;
  options.trials_per_point = args.trials;
  options.threads = args.threads;
  options.reuse_deployments = args.reuse;
  return campaign::run_campaign(*scenario, options);
}

inline void print_campaign_footer(const campaign::CampaignResult& result) {
  std::printf("  campaign: %zu trials on %u thread(s), %.1f trials/s%s\n",
              result.total_trials, result.options.threads,
              result.trials_per_second(),
              result.options.reuse_deployments ? "" : " (no reuse)");
}

}  // namespace hs::bench
