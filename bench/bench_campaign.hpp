// Glue for benches that run on the campaign engine: preset lookup wired
// to the shared CLI args, and the standard throughput footer. Kept out of
// bench_util.hpp so hand-rolled benches stay decoupled from the engine.
#pragma once

#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"
#include "campaign/runner.hpp"
#include "campaign/scenario.hpp"

namespace hs::bench {

/// Runs a named campaign preset with the CLI's seed/trials/threads; exits
/// with a diagnostic if the preset does not exist.
inline campaign::CampaignResult run_preset(const char* scenario_name,
                                           const Args& args) {
  const campaign::Scenario* scenario =
      campaign::find_scenario(scenario_name);
  if (!scenario) {
    std::fprintf(stderr, "bench: unknown campaign preset '%s'\n",
                 scenario_name);
    std::exit(1);
  }
  campaign::CampaignOptions options;
  options.seed = args.seed;
  options.trials_per_point = args.trials;
  options.threads = args.threads;
  return campaign::run_campaign(*scenario, options);
}

inline void print_campaign_footer(const campaign::CampaignResult& result) {
  std::printf("  campaign: %zu trials on %u thread(s), %.1f trials/s\n",
              result.total_trials, result.options.threads,
              result.trials_per_second());
}

}  // namespace hs::bench
