// Ablation (equation 9): SINR_shield = SINR_adversary + G. The SINR gap G
// is the cancellation depth; sweeping the antidote hardware accuracy
// sweeps G and traces the tradeoff between the shield's own decoding and
// the adversary's.
//
// Runs as two campaigns over the same accuracy axis: "ablate-positional"
// measures the cancellation G each accuracy yields, and "ablate-gap"
// measures the resulting end-to-end adversary BER and shield loss.
#include <cstdio>

#include "bench_campaign.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  bench::print_header("Ablation - SINR gap G vs shield/adversary decoding",
                      "Gollakota et al., SIGCOMM 2011, section 6(c), eq. 9");

  const auto cancellation = bench::run_preset("ablate-positional", args);
  const auto eavesdrop = bench::run_preset("ablate-gap", args);

  // The two presets deliberately share one sigma axis (scenario.cpp's
  // sigma_sweep); the row-wise join below depends on it.
  if (cancellation.points.size() != eavesdrop.points.size()) {
    std::fprintf(stderr,
                 "bench: ablate-positional and ablate-gap sweep different "
                 "axes (%zu vs %zu points); re-align their presets\n",
                 cancellation.points.size(), eavesdrop.points.size());
    return 1;
  }

  std::printf(
      "  hw error sigma   measured G (dB)   adversary BER   shield loss\n");
  for (std::size_t p = 0; p < eavesdrop.points.size(); ++p) {
    std::printf(
        "  %8.3f         %8.1f          %8.4f        %8.4f\n",
        eavesdrop.points[p].axis_value,
        cancellation.points[p].stats(campaign::Metric::kCancellationDb)
            .mean(),
        eavesdrop.points[p].stats(campaign::Metric::kAdversaryBer).mean(),
        eavesdrop.points[p].stats(campaign::Metric::kShieldPacketLoss)
            .mean());
  }
  std::printf(
      "\n  expected: smaller hardware error => larger G => the shield\n"
      "  keeps decoding reliably at the same adversary BER (eq. 9); with\n"
      "  G too small the shield starts losing its own IMD's packets.\n");
  bench::print_campaign_footer(eavesdrop);
  return 0;
}
