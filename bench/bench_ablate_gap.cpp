// Ablation (equation 9): SINR_shield = SINR_adversary + G. The SINR gap G
// is the cancellation depth; sweeping the antidote hardware accuracy
// sweeps G and traces the tradeoff between the shield's own decoding and
// the adversary's.
#include <cstdio>

#include "bench_util.hpp"
#include "shield/calibrate.hpp"
#include "shield/experiments.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  bench::print_header("Ablation - SINR gap G vs shield/adversary decoding",
                      "Gollakota et al., SIGCOMM 2011, section 6(c), eq. 9");

  const std::size_t packets = args.trials_or(50);
  std::printf(
      "  hw error sigma   measured G (dB)   SINR_shield (dB)   "
      "adversary BER   shield loss\n");
  for (double sigma : {0.30, 0.10, 0.05, 0.025, 0.01, 0.003}) {
    // Measure the cancellation this hardware accuracy yields.
    shield::DeploymentOptions dopt;
    dopt.seed = args.seed;
    dopt.shield_config.hardware_error_sigma = sigma;
    shield::Deployment d(dopt);
    double g_sum = 0.0;
    const int g_runs = 12;
    for (int i = 0; i < g_runs; ++i) {
      g_sum += shield::measure_cancellation_db(d);
    }
    // Equation 9 check: the shield's post-cancellation SINR grows
    // dB-for-dB with G while the adversary's stays pinned.
    const double residual_dbm = shield::measure_jam_residual_dbm(d);
    const double sinr_shield_db =
        d.shield().measured_imd_rssi_dbm() - residual_dbm;

    // And the resulting end-to-end performance.
    shield::EavesdropOptions opt;
    opt.seed = args.seed + 17;
    opt.location_index = 1;
    opt.packets = packets;
    shield::DeploymentOptions base;
    // run_eavesdrop_experiment builds its own deployment; pass sigma via
    // the shield config override.
    opt.use_margin_override = true;
    opt.jam_margin_db = 20.0;
    opt.hardware_error_sigma = sigma;
    const auto result = shield::run_eavesdrop_experiment(opt);
    std::printf(
        "  %8.3f         %8.1f          %8.1f           %8.4f        "
        "%8.4f\n",
        sigma, g_sum / g_runs, sinr_shield_db, result.mean_ber(),
        result.shield_packet_loss());
  }
  std::printf(
      "\n  expected: smaller hardware error => larger G => the shield\n"
      "  keeps decoding reliably at the same adversary BER (eq. 9); with\n"
      "  G too small the shield starts losing its own IMD's packets.\n");
  return 0;
}
