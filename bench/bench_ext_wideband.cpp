// Extension bench (section 7(c)): whole-band monitoring against a
// frequency-hopping adversary. For every MICS channel, measure whether the
// wideband monitor flags the unauthorized command and how many ms into the
// packet the S_id decision fires (the reaction point).
//
// Runs as a campaign: the "ext-wideband" preset sweeps the MICS channel
// axis; detections merge into a Bernoulli stream per channel.
#include <cstdio>

#include "bench_campaign.hpp"
#include "imd/profiles.hpp"
#include "imd/protocol.hpp"
#include "mics/band.hpp"
#include "phy/frame.hpp"
#include "phy/fsk.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  bench::print_header(
      "Extension - 3 MHz whole-band monitoring vs a hopping adversary",
      "Gollakota et al., SIGCOMM 2011, section 7(c)");

  const auto result = bench::run_preset("ext-wideband", args);

  std::printf(
      "  channel  center (MHz)   detected   reaction point (ms into "
      "packet)\n");
  for (const auto& point : result.points) {
    const auto channel = static_cast<std::size_t>(point.axis_value);
    const auto& detect = point.stats(campaign::Metric::kWidebandDetect);
    const auto& reaction =
        point.stats(campaign::Metric::kWidebandReactionMs);
    std::printf("  %5zu    %8.2f       %.0f/%zu        %6.2f\n", channel,
                mics::channel_center_hz(channel) / 1e6, detect.sum(),
                detect.count(),
                reaction.count() > 0 ? reaction.mean() : -1.0);
  }

  const auto profile = imd::virtuoso_profile();
  const auto cmd = imd::make_interrogate(profile.serial, 1);
  const auto wave = phy::fsk_modulate(profile.fsk, phy::encode_frame(cmd));
  std::printf(
      "\n  packet duration is %.1f ms; the monitor reacts after the S_id\n"
      "  prefix (preamble+sync+serial ~ %.1f ms) on whichever channel the\n"
      "  adversary hops to, leaving the rest of the packet jammable.\n",
      static_cast<double>(wave.size()) / profile.fsk.fs * 1e3,
      static_cast<double>((phy::kSidBits + 1) * profile.fsk.sps) /
          profile.fsk.fs * 1e3);
  bench::print_campaign_footer(result);
  return 0;
}
