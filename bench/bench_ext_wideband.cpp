// Extension bench (section 7(c)): whole-band monitoring against a
// frequency-hopping adversary. For every MICS channel, measure whether the
// wideband monitor flags the unauthorized command and how many bits into
// the packet the S_id decision fires (the reaction point).
#include <cstdio>

#include "bench_util.hpp"
#include "dsp/rng.hpp"
#include "dsp/units.hpp"
#include "imd/profiles.hpp"
#include "imd/protocol.hpp"
#include "mics/band.hpp"
#include "shield/wideband.hpp"

using namespace hs;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  bench::print_header(
      "Extension - 3 MHz whole-band monitoring vs a hopping adversary",
      "Gollakota et al., SIGCOMM 2011, section 7(c)");

  const auto profile = imd::virtuoso_profile();
  const auto cmd = imd::make_interrogate(profile.serial, 1);
  const auto wave = phy::fsk_modulate(profile.fsk, phy::encode_frame(cmd));
  const std::size_t trials = args.trials_or(3);

  std::printf(
      "  channel  center (MHz)   detected   reaction point (ms into "
      "packet)\n");
  for (std::size_t channel = 0; channel < mics::kChannelCount; ++channel) {
    std::size_t detections = 0;
    double reaction_ms_sum = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      shield::WidebandMonitor monitor(profile.serial, profile.fsk);
      // Build the wideband attack stream.
      dsp::Samples baseband(2400 + wave.size() + 1200, dsp::cplx{});
      const double amp = dsp::db_to_amplitude(-45.0);
      for (std::size_t i = 0; i < wave.size(); ++i) {
        baseband[2400 + i] = amp * wave[i];
      }
      mics::ChannelSynthesizer synth;
      dsp::Samples wideband(baseband.size() * mics::kDecimation,
                            dsp::cplx{});
      synth.process(channel, baseband, wideband);
      dsp::Rng rng(args.seed + channel * 100 + t);
      for (auto& x : wideband) x += rng.cgaussian(dsp::dbm_to_mw(-112.0));

      // Stream block-wise; note when the jam decision fires.
      bool detected = false;
      for (std::size_t i = 0; i < wideband.size() && !detected; i += 480) {
        const std::size_t n =
            std::min<std::size_t>(480, wideband.size() - i);
        monitor.push(dsp::SampleView(wideband.data() + i, n));
        if (monitor.any_match()) {
          detected = true;
          // Reaction point relative to the packet start (wideband sample
          // 24000), converted to per-channel time.
          const double reaction_s =
              (static_cast<double>(i + n) - 24000.0) / mics::kWidebandFs;
          reaction_ms_sum += reaction_s * 1e3;
        }
      }
      if (detected) ++detections;
    }
    std::printf("  %5zu    %8.2f       %zu/%zu        %6.2f\n", channel,
                mics::channel_center_hz(channel) / 1e6, detections, trials,
                detections ? reaction_ms_sum / detections : -1.0);
  }
  std::printf(
      "\n  packet duration is %.1f ms; the monitor reacts after the S_id\n"
      "  prefix (preamble+sync+serial ~ %.1f ms) on whichever channel the\n"
      "  adversary hops to, leaving the rest of the packet jammable.\n",
      static_cast<double>(wave.size()) / profile.fsk.fs * 1e3,
      static_cast<double>((phy::kSidBits + 1) * profile.fsk.sps) /
          profile.fsk.fs * 1e3);
  return 0;
}
