// Quickstart: protect an implanted cardiac device with a shield and talk
// to it through the authorized, encrypted relay path.
//
//   authorized programmer ==(ChaCha20-Poly1305 channel)==> shield
//   shield ==(MICS air, jamming the reply window)==> IMD
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "imd/protocol.hpp"
#include "shield/deployment.hpp"
#include "shield/relay.hpp"

using namespace hs;

int main() {
  // 1. Stand up the world: an implanted Virtuoso ICD with a shield worn
  //    2 cm away (the paper's necklace), on a simulated MICS channel.
  shield::DeploymentOptions options;
  options.seed = 2011;
  shield::Deployment world(options);
  std::printf("IMD:    %s (serial %.10s)\n",
              options.imd_profile.model_name.c_str(),
              reinterpret_cast<const char*>(
                  options.imd_profile.serial.data()));
  std::printf("shield: antidote ready = %s, jamming power = %.1f dBm\n\n",
              world.shield().antidote_ready() ? "yes" : "no",
              world.shield().jam_power_dbm());

  // 2. Pair an authorized programmer with the shield over the encrypted
  //    out-of-band channel (pre-shared clinic secret).
  shield::OutOfBandLink link;
  const std::uint8_t psk[] = "clinic-pairing-secret";
  shield::RelayService relay(world.shield(), link,
                             crypto::ByteView(psk, sizeof(psk) - 1), 1);
  shield::AuthorizedProgrammer programmer(
      link, crypto::ByteView(psk, sizeof(psk) - 1), 1);

  // 3. Interrogate the IMD through the shield. The shield transmits the
  //    command, then jams the reply window while decoding the reply
  //    through its own jamming (the jammer-cum-receiver).
  std::printf("interrogating through the shield...\n");
  programmer.send_command(
      imd::make_interrogate(options.imd_profile.serial, 1));
  for (int i = 0; i < 12; ++i) {
    relay.poll();
    world.run_for(5e-3);
  }
  relay.poll();

  const auto replies = programmer.poll_replies(options.imd_profile.serial);
  if (replies.empty()) {
    std::printf("no reply (unexpected)\n");
    return 1;
  }
  std::printf("got %s with %zu bytes of patient data\n",
              imd::message_type_name(
                  static_cast<imd::MessageType>(replies[0].type)),
              replies[0].payload.size());

  // 4. Change a therapy parameter the same way.
  imd::TherapySettings therapy = world.imd().therapy();
  therapy.pacing_rate_bpm = 75;
  programmer.send_command(
      imd::make_set_therapy(options.imd_profile.serial, 2, therapy));
  for (int i = 0; i < 12; ++i) {
    relay.poll();
    world.run_for(5e-3);
  }
  relay.poll();
  (void)programmer.poll_replies(options.imd_profile.serial);
  std::printf("therapy pacing rate now %u bpm (ack'd by the IMD)\n\n",
              world.imd().therapy().pacing_rate_bpm);

  // 5. What happened on the air, as the event log saw it.
  std::printf("--- event log ---\n%s", world.log().to_string().c_str());
  return 0;
}
