// Confidentiality demo (the passive-adversary story of section 10.2):
// an eavesdropper 20 cm from the patient records the IMD's transmissions.
// Without the shield it reads the telemetry verbatim; with the shield
// jamming, its optimal decoder does no better than coin flipping — while
// the shield itself decodes everything through its own jamming.
#include <cstdio>
#include <memory>

#include "adversary/eavesdropper.hpp"
#include "adversary/monitor.hpp"
#include "channel/geometry.hpp"
#include "imd/programmer.hpp"
#include "imd/protocol.hpp"
#include "shield/deployment.hpp"

using namespace hs;

namespace {

void run_scenario(bool shield_present) {
  shield::DeploymentOptions options;
  options.seed = 77;
  options.shield_present = shield_present;
  shield::Deployment world(options);

  adversary::MonitorConfig ecfg;
  ecfg.name = "eavesdropper";
  ecfg.position = channel::testbed_location(1).position();  // 20 cm away
  ecfg.fsk = options.imd_profile.fsk;
  ecfg.capture_samples = true;
  adversary::MonitorNode eavesdropper(ecfg, world.medium());
  world.add_node(&eavesdropper);

  std::unique_ptr<imd::ProgrammerNode> programmer;
  if (!shield_present) {
    imd::ProgrammerConfig pcfg;
    pcfg.fsk = options.imd_profile.fsk;
    programmer = std::make_unique<imd::ProgrammerNode>(
        pcfg, world.medium(), &world.log());
    world.add_node(programmer.get());
  }
  world.run_for(2e-3);

  std::printf("%s\n", shield_present
                          ? "== shield PRESENT (jamming the replies) =="
                          : "== shield ABSENT ==");
  double ber_sum = 0;
  int packets = 0;
  for (int i = 0; i < 8; ++i) {
    eavesdropper.clear_capture();
    const auto cmd = imd::make_interrogate(options.imd_profile.serial,
                                           static_cast<std::uint8_t>(i));
    if (shield_present) {
      world.shield().relay_command(cmd);
    } else {
      programmer->send(cmd);
    }
    world.run_for(45e-3);
    const auto& truth = world.imd().last_tx_bits();
    if (truth.empty()) continue;
    const std::size_t offset = world.imd().last_tx_start_sample() -
                               eavesdropper.capture_start();
    const auto result = adversary::eavesdrop_decode(
        options.imd_profile.fsk, eavesdropper.capture(), offset,
        phy::BitView(truth.data(), truth.size()));
    ber_sum += result.ber;
    ++packets;
  }
  std::printf("  eavesdropper BER over %d telemetry packets: %.3f %s\n",
              packets, ber_sum / packets,
              shield_present ? "(random guessing)" : "(reads everything!)");
  if (shield_present) {
    std::printf("  shield decoded %zu/%d packets through its own jamming\n",
                world.shield().stats().replies_decoded, packets);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf(
      "An eavesdropper sits 20 cm from the patient and records the IMD's\n"
      "telemetry with an optimal FSK decoder and genie timing.\n\n");
  run_scenario(/*shield_present=*/false);
  run_scenario(/*shield_present=*/true);
  std::printf(
      "The shield and the IMD share an information channel inaccessible\n"
      "to anyone else (Gollakota et al., SIGCOMM 2011, section 10.2).\n");
  return 0;
}
