// campaign_serverd: resident campaign-as-a-service daemon. Holds the
// snapshot cache and per-worker trial contexts warm across requests,
// admits campaigns through a bounded queue (429-style rejection with a
// retry-after hint when saturated), interleaves the chunks of concurrent
// campaigns weighted-fair over one work pool, and streams each
// campaign's v3 chunk records back incrementally. The final report of
// every request is byte-identical to a serial `campaign_runner` run of
// the same (preset, seed, trials, chunk) — see serve/scheduler.hpp for
// the determinism argument and serve/protocol.hpp for the wire format.
//
// SIGTERM/SIGINT drain gracefully: no new connections or admissions,
// every already-admitted campaign finishes streaming, then the process
// exits 0.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

#include "serve/server.hpp"

using namespace hs;

namespace {

serve::Server* g_server = nullptr;

extern "C" void handle_signal(int) {
  if (g_server != nullptr) g_server->shutdown();  // write() only — safe
}

int usage(const char* argv0, bool is_error) {
  std::fprintf(
      is_error ? stderr : stdout,
      "usage: %s [--port=N | --unix=PATH] [--workers=N]\n"
      "          [--max-active=N] [--max-queue=N] [--snapshot-dir=DIR]\n"
      "          [--port-file=PATH]\n"
      "  Serves the line-delimited JSON campaign protocol (see\n"
      "  docs/REPRODUCING.md) on 127.0.0.1:PORT (default: an ephemeral\n"
      "  port) or a Unix-domain socket. --port-file writes the bound TCP\n"
      "  port to PATH once listening, for scripts that pass --port=0.\n"
      "  --workers=0 uses all hardware threads. --max-active bounds the\n"
      "  campaigns scheduled concurrently, --max-queue the admitted\n"
      "  backlog beyond that; a request past both is rejected with\n"
      "  {\"type\":\"rejected\",\"code\":429,...}. --snapshot-dir shares\n"
      "  warm snapshots with campaign_runner runs (must exist).\n"
      "  SIGTERM drains gracefully: admitted campaigns finish streaming\n"
      "  before exit.\n",
      argv0);
  return is_error ? 1 : 0;
}

const char* flag_value(const char* arg, const char* name, int argc,
                       char** argv, int* i) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return nullptr;
  if (arg[len] == '=') return arg + len + 1;
  if (arg[len] == '\0' && *i + 1 < argc && argv[*i + 1][0] != '-') {
    return argv[++*i];
  }
  return nullptr;
}

std::uint64_t parse_u64(const char* value, const char* flag) {
  char* end = nullptr;
  errno = 0;
  const std::uint64_t v = std::strtoull(value, &end, 10);
  if (value[0] == '\0' || value[0] == '-' || value[0] == '+' ||
      *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "invalid numeric value '%s' for %s\n", value, flag);
    std::exit(1);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServerOptions options;
  options.scheduler.workers = 0;  // hardware concurrency
  std::string port_file;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if ((value = flag_value(arg, "--port", argc, argv, &i))) {
      const std::uint64_t port = parse_u64(value, "--port");
      if (port > std::numeric_limits<std::uint16_t>::max()) {
        std::fprintf(stderr, "--port=%s out of range\n", value);
        return 1;
      }
      options.tcp_port = static_cast<std::uint16_t>(port);
    } else if ((value = flag_value(arg, "--unix", argc, argv, &i))) {
      options.unix_path = value;
    } else if ((value = flag_value(arg, "--workers", argc, argv, &i))) {
      options.scheduler.workers =
          static_cast<unsigned>(parse_u64(value, "--workers"));
    } else if ((value = flag_value(arg, "--max-active", argc, argv, &i))) {
      options.scheduler.max_active = parse_u64(value, "--max-active");
      if (options.scheduler.max_active == 0) {
        std::fprintf(stderr, "--max-active must be >= 1\n");
        return 1;
      }
    } else if ((value = flag_value(arg, "--max-queue", argc, argv, &i))) {
      options.scheduler.max_queue = parse_u64(value, "--max-queue");
    } else if ((value = flag_value(arg, "--snapshot-dir", argc, argv, &i))) {
      options.scheduler.snapshot_dir = value;
    } else if ((value = flag_value(arg, "--port-file", argc, argv, &i))) {
      port_file = value;
    } else {
      return usage(argv[0], std::strcmp(arg, "--help") != 0);
    }
  }

  obs::ServiceStats stats;
  serve::Server server(options, &stats);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign_serverd: %s\n", e.what());
    return 1;
  }

  g_server = &server;
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGINT, handle_signal);
  std::signal(SIGPIPE, SIG_IGN);  // writers handle EPIPE per connection

  if (!options.unix_path.empty()) {
    std::fprintf(stderr, "campaign_serverd: listening on %s\n",
                 options.unix_path.c_str());
  } else {
    std::fprintf(stderr, "campaign_serverd: listening on 127.0.0.1:%u\n",
                 static_cast<unsigned>(server.bound_port()));
    if (!port_file.empty()) {
      std::FILE* f = std::fopen(port_file.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "campaign_serverd: cannot write %s\n",
                     port_file.c_str());
        return 1;
      }
      std::fprintf(f, "%u\n", static_cast<unsigned>(server.bound_port()));
      std::fclose(f);
    }
  }

  try {
    server.run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign_serverd: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "campaign_serverd: drained, exiting\n");
  return 0;
}
