// Campaign CLI: runs any named scenario preset across a worker pool and
// emits CSV/JSON aggregates, plus the BENCH_campaign.json perf snapshot
// comparing no-reuse vs deployment-reuse and 1-thread vs N-thread
// throughput. Aggregates are bit-identical across all four combinations
// by construction; the tool verifies both axes on every --bench-json run.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "campaign/scenario.hpp"

using namespace hs;

namespace {

void list_presets(std::FILE* out) {
  std::fprintf(out, "%-28s %-26s %s\n", "scenario", "reproduces",
               "description");
  for (const auto& s : campaign::scenario_presets()) {
    char shape[48];
    std::snprintf(shape, sizeof shape, "  (%zu points x %zu trials)",
                  s.point_count(), s.default_trials);
    std::fprintf(out, "%-28s %-26s %s%s\n", s.name.c_str(),
                 s.paper_ref.c_str(), s.description.c_str(), shape);
  }
}

bool aggregates_identical(const campaign::CampaignResult& a,
                          const campaign::CampaignResult& b) {
  if (a.points.size() != b.points.size()) return false;
  for (std::size_t p = 0; p < a.points.size(); ++p) {
    for (std::size_t m = 0; m < campaign::kMetricCount; ++m) {
      const auto& sa = a.points[p].metrics[m];
      const auto& sb = b.points[p].metrics[m];
      if (sa.count() != sb.count() || sa.mean() != sb.mean() ||
          sa.stddev() != sb.stddev() || sa.min() != sb.min() ||
          sa.max() != sb.max()) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_name = "fig9-eaves-ber";
  campaign::CampaignOptions options;
  options.threads = 0;  // hardware concurrency
  std::string csv_path, json_path, bench_json_path;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--list") == 0) {
      list_presets(stdout);
      return 0;
    } else if (std::strncmp(arg, "--scenario=", 11) == 0) {
      scenario_name = arg + 11;
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      options.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--trials=", 9) == 0) {
      options.trials_per_point = std::strtoull(arg + 9, nullptr, 10);
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      options.threads = static_cast<unsigned>(
          std::strtoul(arg + 10, nullptr, 10));
    } else if (std::strncmp(arg, "--chunk=", 8) == 0) {
      options.chunk_size = std::strtoull(arg + 8, nullptr, 10);
    } else if (std::strcmp(arg, "--no-reuse") == 0) {
      options.reuse_deployments = false;
    } else if (std::strncmp(arg, "--csv=", 6) == 0) {
      csv_path = arg + 6;
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      json_path = arg + 7;
    } else if (std::strncmp(arg, "--bench-json=", 13) == 0) {
      bench_json_path = arg + 13;
    } else {
      std::printf(
          "usage: %s [--list] [--scenario=NAME] [--seed=N] [--trials=N]\n"
          "          [--threads=N] [--chunk=N] [--no-reuse] [--csv=PATH]\n"
          "          [--json=PATH] [--bench-json=PATH]\n"
          "  --threads=0 uses all hardware threads (default)\n"
          "  --no-reuse rebuilds the deployment for every trial instead\n"
          "  of reset-and-reseeding the worker's pooled one (identical\n"
          "  aggregates, slower; the escape hatch for A/B timing)\n"
          "  --bench-json re-runs at 1 thread with and without reuse,\n"
          "  checks all aggregates are bit-identical, and writes a\n"
          "  trials/sec perf snapshot\n",
          argv[0]);
      return std::strcmp(arg, "--help") == 0 ? 0 : 1;
    }
  }

  if (!bench_json_path.empty() && !options.reuse_deployments) {
    // The snapshot's "parallel" section is defined as N threads WITH
    // reuse; honoring --no-reuse there would record an inconsistent
    // trajectory (the no-reuse measurement has its own section).
    std::fprintf(stderr,
                 "note: --bench-json measures the no-reuse case itself; "
                 "ignoring --no-reuse for the main run\n");
    options.reuse_deployments = true;
  }

  const campaign::Scenario* scenario = campaign::find_scenario(scenario_name);
  if (!scenario) {
    std::fprintf(stderr, "unknown scenario '%s'; valid presets:\n\n",
                 scenario_name.c_str());
    list_presets(stderr);
    return 1;
  }
  if (options.threads == 0) {
    options.threads = std::max(1u, std::thread::hardware_concurrency());
  }

  const auto result = campaign::run_campaign(*scenario, options);
  campaign::print_summary(stdout, result);

  if (!csv_path.empty() &&
      !campaign::write_file(csv_path, campaign::to_csv(result))) {
    return 1;
  }
  if (!json_path.empty() &&
      !campaign::write_file(json_path, campaign::to_json(result))) {
    return 1;
  }

  if (!bench_json_path.empty()) {
    campaign::CampaignOptions serial_options = options;
    serial_options.threads = 1;
    serial_options.reuse_deployments = true;
    const auto serial = campaign::run_campaign(*scenario, serial_options);

    campaign::CampaignOptions no_reuse_options = serial_options;
    no_reuse_options.reuse_deployments = false;
    const auto no_reuse = campaign::run_campaign(*scenario, no_reuse_options);

    // Determinism self-checks: the worker pool must not change aggregates
    // (1 vs N threads), and neither may deployment reuse (reset-and-
    // reseeded deployments vs freshly constructed ones).
    if (!aggregates_identical(serial, result)) {
      std::fprintf(stderr,
                   "FATAL: 1-thread and %u-thread aggregates differ\n",
                   options.threads);
      return 1;
    }
    if (!aggregates_identical(no_reuse, serial)) {
      std::fprintf(stderr,
                   "FATAL: reused and fresh-construction aggregates "
                   "differ\n");
      return 1;
    }
    std::printf("\n  determinism: %u-thread aggregates bit-identical to "
                "1-thread\n", options.threads);
    std::printf("  determinism: deployment reuse bit-identical to fresh "
                "construction\n");
    std::printf("  no-reuse %.1f trials/s, reuse %.1f trials/s "
                "(%zu built + %zu reused), parallel %.1f trials/s\n",
                no_reuse.trials_per_second(), serial.trials_per_second(),
                serial.deployments_built, serial.deployments_reused,
                result.trials_per_second());
    if (!campaign::write_file(
            bench_json_path,
            campaign::perf_snapshot_json(no_reuse, serial, result))) {
      return 1;
    }
  }
  return 0;
}
