// Campaign CLI: runs any named scenario preset across the work-stealing
// worker pool and emits CSV/JSON aggregates; runs one shard of a
// multi-process campaign (--shards/--shard/--emit-chunks) writing a
// mergeable chunk stream; merges shard streams back into reports
// byte-identical to a serial run (--merge); and writes the
// BENCH_campaign.json perf snapshot (--bench-json) comparing no-reuse vs
// deployment-reuse and 1-thread vs N-thread throughput. Aggregates are
// bit-identical across every combination by construction; the tool
// verifies both determinism axes on every --bench-json run and refuses
// to record a "parallel" leg that silently ran on one thread.
//
// Observability: --metrics-json writes the merged counter/phase-timer
// report (serial, parallel, per-shard, or aggregated across shards by
// --merge from the chunk-stream trailers); --trace writes a Chrome
// trace-event timeline (chrome://tracing / Perfetto) of workers, chunks,
// steals and snapshot events. Neither changes any aggregate or report
// byte (see src/obs/metrics.hpp).
#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "campaign/chunk_stream.hpp"
#include "campaign/dispatch.hpp"
#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "campaign/scenario.hpp"
#include "dsp/kernels.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "snapshot/state_io.hpp"

using namespace hs;

namespace {

void list_presets(std::FILE* out) {
  std::fprintf(out, "%-28s %-26s %s\n", "scenario", "reproduces",
               "description");
  for (const auto& s : campaign::scenario_presets()) {
    char shape[48];
    std::snprintf(shape, sizeof shape, "  (%zu points x %zu trials)",
                  s.point_count(), s.default_trials);
    std::fprintf(out, "%-28s %-26s %s%s\n", s.name.c_str(),
                 s.paper_ref.c_str(), s.description.c_str(), shape);
  }
}

/// `--list --json`: the preset list as machine-readable JSON, so tools
/// (run_sharded.py, CI matrix generators) stop scraping the human table.
void list_presets_json(std::FILE* out) {
  std::string doc = "[\n";
  const auto& presets = campaign::scenario_presets();
  for (std::size_t i = 0; i < presets.size(); ++i) {
    const auto& s = presets[i];
    doc += "  {\"name\": \"" + campaign::json_escape(s.name) +
           "\", \"paper_ref\": \"" + campaign::json_escape(s.paper_ref) +
           "\", \"description\": \"" + campaign::json_escape(s.description) +
           "\", \"kind\": \"" +
           std::string(campaign::experiment_kind_name(s.kind)) +
           "\", \"axis\": \"" +
           std::string(campaign::axis_name(s.axis)) + "\"";
    char shape[96];
    std::snprintf(shape, sizeof shape,
                  ", \"points\": %zu, \"trials\": %zu, "
                  "\"units_per_trial\": %zu}",
                  s.point_count(), s.default_trials, s.units_per_trial);
    doc += shape;
    doc += i + 1 < presets.size() ? ",\n" : "\n";
  }
  doc += "]\n";
  std::fputs(doc.c_str(), out);
}

bool aggregates_identical(const campaign::CampaignResult& a,
                          const campaign::CampaignResult& b) {
  if (a.points.size() != b.points.size()) return false;
  for (std::size_t p = 0; p < a.points.size(); ++p) {
    for (std::size_t m = 0; m < campaign::kMetricCount; ++m) {
      const auto& sa = a.points[p].metrics[m];
      const auto& sb = b.points[p].metrics[m];
      if (sa.count() != sb.count() || sa.mean() != sb.mean() ||
          sa.stddev() != sb.stddev() || sa.min() != sb.min() ||
          sa.max() != sb.max()) {
        return false;
      }
    }
  }
  return true;
}

/// `--version`: every schema this binary reads or writes, one per line,
/// machine-greppable. Scripts (CI, run_sharded.py) use it to confirm a
/// binary and a recorded artifact speak the same format.
void print_versions(std::FILE* out) {
  std::fprintf(out, "chunk-stream %d\nsnapshot %d\nmetrics %d\ntrace %d\n",
               campaign::kChunkStreamVersion, snapshot::kSnapshotVersion,
               obs::kMetricsVersion, obs::kTraceVersion);
}

int usage(const char* argv0, bool is_error) {
  // Help goes to stdout (it was asked for); an unknown flag's usage dump
  // goes to stderr so it cannot pollute piped CSV/JSON output.
  std::fprintf(
      is_error ? stderr : stdout,
      "usage: %s [--list [--json]] [--scenario=NAME] [--seed=N]\n"
      "          [--trials=N] [--threads=N] [--chunk=N] [--no-reuse]\n"
      "          [--no-snapshot] [--snapshot-dir=DIR] [--canonical]\n"
      "          [--csv=PATH] [--json=PATH] [--bench-json=PATH]\n"
      "          [--metrics-json=PATH] [--trace=PATH] [--version]\n"
      "          [--timeout-seconds=N]\n"
      "       %s --shards=K --shard=I --emit-chunks=PATH [run options]\n"
      "          [--chunks=ID,ID,...] [--fault-plan=SPEC]\n"
      "       %s --merge A.jsonl B.jsonl ... [--csv=PATH] [--json=PATH]\n"
      "          [--metrics-json=PATH]\n"
      "       %s --recover A.jsonl B.jsonl ... [--threads=N] [--csv=PATH]\n"
      "          [--json=PATH] [--metrics-json=PATH]\n"
      "       %s --dispatch --shards=K [--executor=thread|process]\n"
      "          [--workdir=DIR] [--fault-plan=SPEC] [--max-rounds=N]\n"
      "          [run options] [--csv=PATH] [--json=PATH]\n"
      "          [--metrics-json=PATH]\n"
      "  Every value flag also accepts the space-separated form\n"
      "  (--shards 3). --threads=0 uses all hardware threads (default).\n"
      "  --list --json emits the preset list as machine-readable JSON.\n"
      "  --no-reuse rebuilds the deployment for every trial instead of\n"
      "  reset-and-reseeding the worker's pooled one (identical\n"
      "  aggregates, slower; the escape hatch for A/B timing).\n"
      "  Warm-state snapshots are on by default: each trial restores the\n"
      "  post-warm-up deployment state from an in-memory snapshot instead\n"
      "  of re-simulating the warm-up. --snapshot-dir=DIR persists the\n"
      "  snapshots as <key>.hsnap files shared across processes (the\n"
      "  directory must exist); --no-snapshot disables the cache.\n"
      "  Aggregates and reports are byte-identical either way.\n"
      "  --canonical zeroes the runtime fields (wall time, threads) in\n"
      "  reports so they diff cleanly against a --merge report.\n"
      "  --shards/--shard/--emit-chunks run one deterministic shard of\n"
      "  the campaign and write its chunk stream (JSONL); shards never\n"
      "  communicate, and --merge folds their streams into aggregates\n"
      "  byte-identical to the serial run (tools/run_sharded.py drives\n"
      "  the whole flow). Shard runs print `shard i/K: chunks c/C`\n"
      "  progress lines to stderr.\n"
      "  --bench-json re-runs at 1 thread without reuse, with reset-based\n"
      "  reuse, and with warm-snapshot restores, checks all aggregates\n"
      "  are bit-identical, and writes a trials/sec perf snapshot with a\n"
      "  phase breakdown and the metrics-instrumentation overhead; it\n"
      "  refuses a parallel leg of fewer than 2 threads.\n"
      "  --metrics-json writes the counter + phase-timer report (schema\n"
      "  in docs/REPRODUCING.md); in --merge mode it aggregates the K\n"
      "  shard trailers. --trace writes a Chrome trace-event timeline\n"
      "  (load in chrome://tracing or Perfetto). Neither changes any\n"
      "  aggregate or report byte. --version prints the schema versions\n"
      "  this binary speaks.\n"
      "  --chunks runs an explicit chunk-id set (a dispatcher re-deal)\n"
      "  instead of the round-robin deal; the stream is written in\n"
      "  repair mode. --fault-plan injects deterministic faults into\n"
      "  this shard's stream (kill:I@C, trunc:I@BYTES, truncl:I@LINES,\n"
      "  delay:I@WAVES, corrupt:I@LINE, comma-separated); a kill exits\n"
      "  with status 70 after writing the truncated stream.\n"
      "  --timeout-seconds aborts a hung run: if the campaign has not\n"
      "  finished after N seconds the process prints a partial-progress\n"
      "  line (chunks completed) to stderr and exits with status 124.\n"
      "  --recover salvages the valid prefix of each (possibly\n"
      "  truncated/corrupted/missing) stream, re-runs only the missing\n"
      "  chunks in-process, and writes reports byte-identical to the\n"
      "  serial run. --dispatch runs the whole campaign through the\n"
      "  fault-tolerant dispatcher (thread executor, or process\n"
      "  executor spawning this binary; --workdir, which must exist,\n"
      "  holds the child streams).\n",
      argv0, argv0, argv0, argv0, argv0);
  return is_error ? 1 : 0;
}

/// Matches "--name=value" or "--name value"; advances *i past a consumed
/// extra argument. Returns nullptr when `arg` is not this flag. The
/// space-separated form refuses a value starting with '-' so a forgotten
/// value ("--seed --trials=5") fails as an unknown flag instead of
/// silently swallowing the next option.
const char* flag_value(const char* arg, const char* name, int argc,
                       char** argv, int* i) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return nullptr;
  if (arg[len] == '=') return arg + len + 1;
  if (arg[len] == '\0' && *i + 1 < argc && argv[*i + 1][0] != '-') {
    return argv[++*i];
  }
  return nullptr;
}

/// strtoull with a full-consumption check: garbage or overflow is a hard
/// error, never a silent zero. Signs are rejected up front — strtoull
/// happily parses "-5" and wraps it to 2^64-5, which would turn a typo'd
/// seed into a silently different campaign.
std::uint64_t parse_u64(const char* value, const char* flag) {
  char* end = nullptr;
  errno = 0;
  const std::uint64_t v = std::strtoull(value, &end, 10);
  if (value[0] == '\0' || value[0] == '-' || value[0] == '+' ||
      *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "invalid numeric value '%s' for %s\n", value, flag);
    std::exit(1);
  }
  return v;
}

/// parse_u64 bounded to values that survive a cast to `unsigned`
/// (--threads): out-of-range is a hard error, not a silent truncation.
unsigned parse_u32(const char* value, const char* flag) {
  const std::uint64_t v = parse_u64(value, flag);
  if (v > std::numeric_limits<unsigned>::max()) {
    std::fprintf(stderr, "value '%s' out of range for %s\n", value, flag);
    std::exit(1);
  }
  return static_cast<unsigned>(v);
}

/// `--timeout-seconds`: a detached-from-the-campaign watchdog thread.
/// If the campaign has not finished when the deadline passes, it prints
/// a partial-progress line (chunks completed out of the known total, fed
/// by CampaignOptions::chunks_completed) to stderr and hard-exits with
/// status 124 — the conventional timeout status — so CI and
/// run_sharded.py can tell a hang from a crash. _Exit skips destructors
/// on purpose: worker threads are by definition wedged.
class Watchdog {
 public:
  Watchdog(std::uint64_t timeout_seconds, const std::string& label,
           std::atomic<std::size_t>* progress)
      : progress_(progress) {
    if (timeout_seconds == 0) return;
    thread_ = std::thread([this, timeout_seconds, label] {
      std::unique_lock<std::mutex> lock(mutex_);
      if (cv_.wait_for(lock, std::chrono::seconds(timeout_seconds),
                       [this] { return done_; })) {
        return;
      }
      if (total_chunks_ > 0) {
        std::fprintf(stderr,
                     "FATAL: %s timed out after %llu s: %zu/%zu chunk(s) "
                     "completed\n",
                     label.c_str(),
                     static_cast<unsigned long long>(timeout_seconds),
                     progress_->load(), total_chunks_);
      } else {
        std::fprintf(stderr,
                     "FATAL: %s timed out after %llu s: %zu chunk(s) "
                     "completed\n",
                     label.c_str(),
                     static_cast<unsigned long long>(timeout_seconds),
                     progress_->load());
      }
      std::_Exit(124);
    });
  }

  /// Arms the "c/C" form of the progress line once the chunk plan is
  /// known. Safe to skip — the watchdog then reports the bare count.
  void set_total_chunks(std::size_t total) {
    std::lock_guard<std::mutex> lock(mutex_);
    total_chunks_ = total;
  }

  ~Watchdog() {
    if (!thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::atomic<std::size_t>* progress_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool done_ = false;
  std::size_t total_chunks_ = 0;  ///< guarded by mutex_
  std::thread thread_;
};

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_name = "fig9-eaves-ber";
  campaign::CampaignOptions options;
  options.threads = 0;  // hardware concurrency
  std::string csv_path, json_path, bench_json_path, emit_chunks_path;
  std::string metrics_json_path, trace_path;
  std::string fault_plan_spec, chunks_spec, executor_name = "thread";
  std::string workdir;
  std::size_t shard_count = 0, shard_index = 0, max_rounds = 4;
  std::uint64_t timeout_seconds = 0;
  bool have_shard_index = false, merge_mode = false, canonical = false;
  bool list_mode = false, list_json = false;
  bool recover_mode = false, dispatch_mode = false;
  std::vector<std::string> merge_files;
  // First run-shaping flag seen, for the merge-mode conflict diagnostic
  // (merging replays recorded streams; a --seed there would be ignored).
  const char* run_flag = nullptr;
  // Campaign-identity flags specifically: --recover takes identity from
  // the salvaged headers, so these conflict there while --threads &co
  // (which shape the repair execution) do not.
  const char* identity_flag = nullptr;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (std::strcmp(arg, "--list") == 0) {
      list_mode = true;
    } else if (std::strcmp(arg, "--version") == 0) {
      print_versions(stdout);
      return 0;
    } else if ((value = flag_value(arg, "--metrics-json", argc, argv, &i))) {
      metrics_json_path = value;
    } else if ((value = flag_value(arg, "--trace", argc, argv, &i))) {
      trace_path = value;
    } else if (std::strcmp(arg, "--merge") == 0) {
      merge_mode = true;
    } else if (std::strcmp(arg, "--recover") == 0) {
      recover_mode = true;
    } else if (std::strcmp(arg, "--dispatch") == 0) {
      dispatch_mode = true;
    } else if ((value = flag_value(arg, "--fault-plan", argc, argv, &i))) {
      fault_plan_spec = value;
    } else if ((value = flag_value(arg, "--chunks", argc, argv, &i))) {
      chunks_spec = value;
    } else if ((value = flag_value(arg, "--executor", argc, argv, &i))) {
      executor_name = value;
    } else if ((value = flag_value(arg, "--workdir", argc, argv, &i))) {
      workdir = value;
    } else if ((value = flag_value(arg, "--max-rounds", argc, argv, &i))) {
      max_rounds = parse_u64(value, "--max-rounds");
    } else if ((value = flag_value(arg, "--timeout-seconds", argc, argv, &i))) {
      timeout_seconds = parse_u64(value, "--timeout-seconds");
    } else if (std::strcmp(arg, "--no-reuse") == 0) {
      options.reuse_deployments = false;
      run_flag = "--no-reuse";
    } else if (std::strcmp(arg, "--no-snapshot") == 0) {
      options.snapshots = false;
      run_flag = "--no-snapshot";
    } else if (std::strcmp(arg, "--canonical") == 0) {
      canonical = true;
    } else if ((value = flag_value(arg, "--snapshot-dir", argc, argv, &i))) {
      options.snapshot_dir = value;
      run_flag = "--snapshot-dir";
    } else if ((value = flag_value(arg, "--scenario", argc, argv, &i))) {
      scenario_name = value;
      run_flag = identity_flag = "--scenario";
    } else if ((value = flag_value(arg, "--seed", argc, argv, &i))) {
      options.seed = parse_u64(value, "--seed");
      run_flag = identity_flag = "--seed";
    } else if ((value = flag_value(arg, "--trials", argc, argv, &i))) {
      options.trials_per_point = parse_u64(value, "--trials");
      run_flag = identity_flag = "--trials";
    } else if ((value = flag_value(arg, "--threads", argc, argv, &i))) {
      options.threads = parse_u32(value, "--threads");
      run_flag = "--threads";
    } else if ((value = flag_value(arg, "--chunk", argc, argv, &i))) {
      options.chunk_size = parse_u64(value, "--chunk");
      run_flag = identity_flag = "--chunk";
    } else if ((value = flag_value(arg, "--shards", argc, argv, &i))) {
      shard_count = parse_u64(value, "--shards");
    } else if ((value = flag_value(arg, "--shard", argc, argv, &i))) {
      shard_index = parse_u64(value, "--shard");
      have_shard_index = true;
    } else if ((value = flag_value(arg, "--emit-chunks", argc, argv, &i))) {
      emit_chunks_path = value;
    } else if ((value = flag_value(arg, "--csv", argc, argv, &i))) {
      csv_path = value;
    } else if ((value = flag_value(arg, "--json", argc, argv, &i))) {
      json_path = value;
    } else if (std::strcmp(arg, "--json") == 0) {
      // Bare --json (no value) selects the machine-readable preset list;
      // --json=PATH / --json PATH stays the report destination above.
      list_json = true;
    } else if ((value = flag_value(arg, "--bench-json", argc, argv, &i))) {
      bench_json_path = value;
    } else if (arg[0] != '-' && (merge_mode || recover_mode)) {
      merge_files.push_back(arg);
    } else {
      return usage(argv[0], std::strcmp(arg, "--help") != 0);
    }
  }

  if (list_mode) {
    if (list_json) {
      list_presets_json(stdout);
    } else {
      list_presets(stdout);
    }
    return 0;
  }
  if (list_json) {
    std::fprintf(stderr, "bare --json selects the JSON preset list and "
                         "needs --list (use --json=PATH for a report)\n");
    return 1;
  }
  if (!options.snapshots && !options.snapshot_dir.empty()) {
    std::fprintf(stderr,
                 "--no-snapshot and --snapshot-dir contradict each other\n");
    return 1;
  }

  const int mode_count = (merge_mode ? 1 : 0) + (recover_mode ? 1 : 0) +
                         (dispatch_mode ? 1 : 0);
  if (mode_count > 1) {
    std::fprintf(stderr,
                 "--merge, --recover and --dispatch are mutually "
                 "exclusive modes\n");
    return 1;
  }

  // `--timeout-seconds` watchdog. Armed here so it covers every
  // executing mode (normal run, shard, --recover re-runs, --dispatch,
  // the --bench-json legs) and even a wedged --merge parse; the chunk
  // progress counter is fed by the runner through
  // CampaignOptions::chunks_completed.
  std::atomic<std::size_t> watchdog_chunks{0};
  if (timeout_seconds > 0) options.chunks_completed = &watchdog_chunks;
  Watchdog watchdog(timeout_seconds, "campaign_runner", &watchdog_chunks);

  // ---- recover mode: salvage partial streams, re-run what was lost ----
  if (recover_mode) {
    if (merge_files.empty()) {
      std::fprintf(stderr,
                   "--recover needs the chunk-stream files of the "
                   "(possibly failed) shard runs\n");
      return 1;
    }
    if (!bench_json_path.empty() || !emit_chunks_path.empty() ||
        shard_count > 0 || have_shard_index || !trace_path.empty() ||
        !fault_plan_spec.empty() || !chunks_spec.empty()) {
      std::fprintf(stderr,
                   "--recover folds existing streams and re-runs only "
                   "missing chunks; it cannot be combined with "
                   "--bench-json, --emit-chunks, --shards, --shard, "
                   "--trace, --fault-plan or --chunks\n");
      return 1;
    }
    if (identity_flag != nullptr) {
      std::fprintf(stderr,
                   "--recover takes the campaign identity from the "
                   "salvaged headers — %s would be silently ignored; "
                   "drop it (--threads/--no-reuse/--no-snapshot still "
                   "shape the repair execution)\n",
                   identity_flag);
      return 1;
    }
    try {
      std::vector<campaign::SalvagedStream> streams;
      streams.reserve(merge_files.size());
      for (const auto& path : merge_files) {
        streams.push_back(campaign::salvage_chunk_stream_file(path));
        const auto& s = streams.back();
        if (s.complete) {
          std::fprintf(stderr, "recover: %s: complete (%zu chunks)\n",
                       path.c_str(), s.chunks.size());
        } else {
          std::fprintf(stderr, "recover: %s: salvaged %zu chunk(s) — %s\n",
                       path.c_str(), s.chunks.size(),
                       s.truncation_reason.c_str());
        }
      }
      const campaign::SalvagedStream* first_valid = nullptr;
      for (const auto& s : streams) {
        if (s.header_valid) {
          first_valid = &s;
          break;
        }
      }
      if (first_valid == nullptr) {
        std::fprintf(stderr,
                     "recover: no stream has a salvageable header\n");
        return 1;
      }
      const campaign::Scenario* scenario =
          campaign::find_scenario(first_valid->header.scenario);
      if (!scenario) {
        std::fprintf(stderr, "unknown scenario '%s' in %s\n",
                     first_valid->header.scenario.c_str(),
                     first_valid->source.c_str());
        return 1;
      }
      campaign::DispatchReport drep;
      const auto result =
          campaign::recover_campaign(*scenario, options, streams, &drep);
      campaign::print_summary(stdout, result);
      std::printf("\n  recovered: %zu stream(s) complete, %zu dead, "
                  "%zu chunk(s) re-dealt, %zu duplicate(s) suppressed\n",
                  drep.streams_complete, drep.shards_dead,
                  drep.chunks_redealt, drep.chunks_duplicate);
      if (!csv_path.empty() &&
          !campaign::write_file(csv_path, campaign::to_csv(result))) {
        return 1;
      }
      if (!json_path.empty() &&
          !campaign::write_file(json_path, campaign::to_json(result))) {
        return 1;
      }
      if (!metrics_json_path.empty()) {
        const std::string doc = campaign::metrics_report_json(
            result.scenario.name, result.options.seed, drep.metrics.shards,
            drep.metrics.threads,
            static_cast<double>(drep.metrics.wall_ns) / 1e9,
            drep.metrics.report);
        if (!campaign::write_file(metrics_json_path, doc)) return 1;
      }
    } catch (const campaign::DispatchError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    return 0;
  }

  // ---- merge mode: fold shard chunk streams into canonical reports ----
  if (merge_mode) {
    if (merge_files.empty()) {
      std::fprintf(stderr, "--merge needs at least one chunk-stream file\n");
      return 1;
    }
    if (!bench_json_path.empty() || !emit_chunks_path.empty() ||
        shard_count > 0 || have_shard_index) {
      std::fprintf(stderr,
                   "--merge folds existing chunk streams; it cannot be "
                   "combined with --bench-json, --emit-chunks, --shards "
                   "or --shard\n");
      return 1;
    }
    if (!trace_path.empty()) {
      std::fprintf(stderr,
                   "--merge replays recorded streams — there is no live "
                   "execution to trace; pass --trace to the shard runs "
                   "instead\n");
      return 1;
    }
    if (run_flag != nullptr) {
      std::fprintf(stderr,
                   "--merge replays the streams' recorded campaign — %s "
                   "would be silently ignored; drop it (the header pins "
                   "scenario/seed/trials/chunk size)\n",
                   run_flag);
      return 1;
    }
    try {
      std::vector<campaign::ChunkStream> streams;
      streams.reserve(merge_files.size());
      for (const auto& path : merge_files) {
        streams.push_back(campaign::load_chunk_stream(path));
      }
      const campaign::Scenario* scenario =
          campaign::find_scenario(streams.front().header.scenario);
      if (!scenario) {
        std::fprintf(stderr, "unknown scenario '%s' in %s\n",
                     streams.front().header.scenario.c_str(),
                     merge_files.front().c_str());
        return 1;
      }
      campaign::MergedMetrics merged_metrics;
      const auto result = campaign::merge_chunk_streams(*scenario, streams,
                                                        &merged_metrics);
      campaign::print_summary(stdout, result);
      std::printf("\n  merged %zu shard stream(s), %zu chunks verified\n",
                  streams.size(), streams.front().header.total_chunks);
      if (!csv_path.empty() &&
          !campaign::write_file(csv_path, campaign::to_csv(result))) {
        return 1;
      }
      if (!json_path.empty() &&
          !campaign::write_file(json_path, campaign::to_json(result))) {
        return 1;
      }
      if (!metrics_json_path.empty()) {
        // Aggregate of the K shard trailers. wall_seconds is the summed
        // shard wall time (total compute budget, not elapsed time — the
        // shards ran as separate processes, possibly concurrently).
        const std::string doc = campaign::metrics_report_json(
            result.scenario.name, result.options.seed, merged_metrics.shards,
            merged_metrics.threads,
            static_cast<double>(merged_metrics.wall_ns) / 1e9,
            merged_metrics.report);
        if (!campaign::write_file(metrics_json_path, doc)) return 1;
      }
    } catch (const campaign::ChunkStreamError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    return 0;
  }

  // ---- shard-flag validation ----
  if (have_shard_index && shard_count == 0) {
    std::fprintf(stderr, "--shard requires --shards=K\n");
    return 1;
  }
  if (dispatch_mode) {
    if (shard_count == 0) {
      std::fprintf(stderr, "--dispatch requires --shards=K\n");
      return 1;
    }
    if (have_shard_index || !emit_chunks_path.empty() ||
        !chunks_spec.empty() || !bench_json_path.empty() ||
        !trace_path.empty()) {
      std::fprintf(stderr,
                   "--dispatch runs (and recovers) all K shards itself; "
                   "it cannot be combined with --shard, --emit-chunks, "
                   "--chunks, --bench-json or --trace\n");
      return 1;
    }
    if (executor_name != "thread" && executor_name != "process") {
      std::fprintf(stderr, "--executor must be 'thread' or 'process'\n");
      return 1;
    }
    if (executor_name == "process" && workdir.empty()) {
      std::fprintf(stderr,
                   "--executor=process needs --workdir=DIR (an existing "
                   "directory for the child shard streams)\n");
      return 1;
    }
  } else if (shard_count > 0 &&
             (!have_shard_index || emit_chunks_path.empty())) {
    std::fprintf(stderr,
                 "--shards needs both --shard=I and --emit-chunks=PATH "
                 "(a shard run only makes sense if its chunk stream is "
                 "kept for the merge)\n");
    return 1;
  }
  if (!chunks_spec.empty() && shard_count == 0) {
    std::fprintf(stderr,
                 "--chunks re-runs an explicit chunk set as a repair "
                 "stream; it needs --shards/--shard/--emit-chunks\n");
    return 1;
  }
  if (!fault_plan_spec.empty() && shard_count == 0) {
    std::fprintf(stderr,
                 "--fault-plan injects faults into a shard run or a "
                 "--dispatch campaign; it needs --shards\n");
    return 1;
  }
  if (shard_count > 0 && shard_index >= shard_count) {
    std::fprintf(stderr, "--shard=%zu out of range for --shards=%zu\n",
                 shard_index, shard_count);
    return 1;
  }
  if (!emit_chunks_path.empty() && shard_count == 0) {
    std::fprintf(stderr, "--emit-chunks requires --shards and --shard\n");
    return 1;
  }
  if (!emit_chunks_path.empty() &&
      (!csv_path.empty() || !json_path.empty() || !bench_json_path.empty())) {
    std::fprintf(stderr,
                 "--emit-chunks writes one shard's chunk stream; partial "
                 "aggregates would be misleading — use --merge on all "
                 "shard streams to produce CSV/JSON reports\n");
    return 1;
  }

  if (!bench_json_path.empty() && !options.reuse_deployments) {
    // The snapshot's "parallel" section is defined as N threads WITH
    // reuse; honoring --no-reuse there would record an inconsistent
    // trajectory (the no-reuse measurement has its own section).
    std::fprintf(stderr,
                 "note: --bench-json measures the no-reuse case itself; "
                 "ignoring --no-reuse for the main run\n");
    options.reuse_deployments = true;
  }

  const campaign::Scenario* scenario = campaign::find_scenario(scenario_name);
  if (!scenario) {
    std::fprintf(stderr, "unknown scenario '%s'; valid presets:\n\n",
                 scenario_name.c_str());
    list_presets(stderr);
    return 1;
  }
  const unsigned hardware_threads =
      std::max(1u, std::thread::hardware_concurrency());
  if (options.threads == 0) {
    options.threads = hardware_threads;
  }
  if (!bench_json_path.empty() && options.threads < 2) {
    // The self-check that BENCH_campaign.json can never again record a
    // "parallel" leg that silently ran on one thread: on a
    // 1-hardware-thread machine --threads=0 resolves to 1, which would
    // make thread_speedup a lie of measurement noise.
    std::fprintf(stderr,
                 "FATAL: --bench-json parallel leg resolved to %u thread(s) "
                 "(hardware_concurrency=%u); pass --threads=N with N>=2 — "
                 "on a 1-core machine that measures oversubscription "
                 "honestly instead of relabeling a serial run\n",
                 options.threads, hardware_threads);
    return 1;
  }

  // Observability wiring: timers are collected exactly when a metrics
  // report was requested; the trace recorder lives here (CLI scope) and
  // the runner only buffers into it. In shard mode the recorder's pid is
  // the shard index, so merged timelines from K processes stay distinct.
  options.metrics_timers = !metrics_json_path.empty();
  obs::TraceRecorder trace_recorder(static_cast<std::uint32_t>(shard_index));
  if (!trace_path.empty()) options.trace = &trace_recorder;

  // ---- dispatch mode: all K shards through the recovering dispatcher ----
  if (dispatch_mode) {
    try {
      campaign::FaultPlan faults;
      if (!fault_plan_spec.empty()) {
        faults = campaign::FaultPlan::parse(fault_plan_spec);
      }
      campaign::DispatchOptions dopt;
      dopt.shard_count = shard_count;
      dopt.max_rounds = max_rounds;
      dopt.faults = faults;
      campaign::DispatchReport drep;
      campaign::CampaignResult result;
      if (executor_name == "thread") {
        campaign::ThreadExecutor ex(*scenario, options, faults);
        result =
            campaign::dispatch_campaign(*scenario, options, dopt, ex, &drep);
      } else {
        campaign::SubprocessExecutor ex(argv[0], workdir, scenario->name,
                                        options, faults);
        result =
            campaign::dispatch_campaign(*scenario, options, dopt, ex, &drep);
      }
      campaign::print_summary(stdout, result);
      std::printf("\n  dispatched %zu shard(s) (%s executor): %zu recovery "
                  "round(s), %zu chunk(s) re-dealt, %zu duplicate(s) "
                  "suppressed, %zu dead, %zu straggler(s), %zu repair "
                  "task(s)\n",
                  shard_count, executor_name.c_str(), drep.rounds,
                  drep.chunks_redealt, drep.chunks_duplicate,
                  drep.shards_dead, drep.shards_straggler,
                  drep.tasks_retried);
      if (!csv_path.empty() &&
          !campaign::write_file(csv_path, campaign::to_csv(result))) {
        return 1;
      }
      if (!json_path.empty() &&
          !campaign::write_file(json_path, campaign::to_json(result))) {
        return 1;
      }
      if (!metrics_json_path.empty()) {
        const std::string doc = campaign::metrics_report_json(
            result.scenario.name, result.options.seed, drep.metrics.shards,
            drep.metrics.threads,
            static_cast<double>(drep.metrics.wall_ns) / 1e9,
            drep.metrics.report);
        if (!campaign::write_file(metrics_json_path, doc)) return 1;
      }
    } catch (const campaign::DispatchError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    return 0;
  }

  // ---- shard mode: run this shard's chunks, write the stream ----
  if (shard_count > 0) {
    options.progress = true;  // run_sharded.py multiplexes these lines
    campaign::ShardPlan plan;
    try {
      if (chunks_spec.empty()) {
        plan = campaign::plan_shard(*scenario, options, shard_count,
                                    shard_index);
      } else {
        // Repair run: the explicit chunk ids a dispatcher re-dealt here.
        std::vector<std::size_t> ids;
        std::size_t start = 0;
        while (start <= chunks_spec.size()) {
          std::size_t end = chunks_spec.find(',', start);
          if (end == std::string::npos) end = chunks_spec.size();
          const std::string token = chunks_spec.substr(start, end - start);
          if (!token.empty()) {
            ids.push_back(parse_u64(token.c_str(), "--chunks"));
          }
          start = end + 1;
        }
        plan = campaign::make_repair_plan(*scenario, options, shard_count,
                                          shard_index, ids);
      }
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    watchdog.set_total_chunks(plan.chunks.size());
    const auto exec = campaign::run_campaign_chunks(*scenario, options,
                                                    std::move(plan));
    std::string stream_text =
        campaign::serialize_chunk_stream(*scenario, options, exec);
    bool fault_killed = false;
    if (!fault_plan_spec.empty()) {
      try {
        const auto faults = campaign::FaultPlan::parse(fault_plan_spec);
        stream_text = campaign::apply_stream_faults(
            faults, shard_index, std::move(stream_text), &fault_killed);
      } catch (const campaign::DispatchError& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
      }
    }
    if (!campaign::write_file(emit_chunks_path, stream_text)) {
      return 1;
    }
    if (fault_killed) {
      // The injected crash: the truncated stream is on disk, the process
      // dies with a distinctive status (EX_SOFTWARE) for the dispatcher
      // and run_sharded.py to observe.
      std::fprintf(stderr,
                   "fault-plan: shard %zu killed (stream truncated)\n",
                   shard_index);
      return 70;
    }
    if (!metrics_json_path.empty() &&
        !campaign::write_file(
            metrics_json_path,
            campaign::metrics_report_json(scenario->name, options.seed, 1,
                                          exec.threads, exec.wall_seconds,
                                          exec.metrics))) {
      return 1;
    }
    if (!trace_path.empty() &&
        !campaign::write_file(trace_path, trace_recorder.to_json())) {
      return 1;
    }
    std::size_t shard_trials = 0;
    for (const auto& c : exec.plan.chunks) {
      shard_trials += c.trial_end - c.trial_begin;
    }
    std::printf("shard %zu/%zu of %s: %zu/%zu chunks (%zu trials), "
                "%u thread(s), %.2fs (%.1f trials/s), %zu chunk(s) stolen "
                "-> %s\n",
                shard_index, shard_count, scenario->name.c_str(),
                exec.plan.chunks.size(), exec.plan.total_chunks,
                shard_trials, exec.threads, exec.wall_seconds,
                exec.wall_seconds > 0.0
                    ? static_cast<double>(shard_trials) / exec.wall_seconds
                    : 0.0,
                exec.chunks_stolen, emit_chunks_path.c_str());
    return 0;
  }

  watchdog.set_total_chunks(
      campaign::plan_shard(*scenario, options, 1, 0).chunks.size());
  const auto result = campaign::run_campaign(*scenario, options);
  campaign::print_summary(stdout, result);

  {
    auto report = result;
    if (canonical) campaign::canonicalize(report);
    if (!csv_path.empty() &&
        !campaign::write_file(csv_path, campaign::to_csv(report))) {
      return 1;
    }
    if (!json_path.empty() &&
        !campaign::write_file(json_path, campaign::to_json(report))) {
      return 1;
    }
  }

  if (!metrics_json_path.empty() &&
      !campaign::write_file(
          metrics_json_path,
          campaign::metrics_report_json(scenario->name, options.seed, 1,
                                        result.options.threads,
                                        result.wall_seconds,
                                        result.metrics))) {
    return 1;
  }
  if (!trace_path.empty() &&
      !campaign::write_file(trace_path, trace_recorder.to_json())) {
    return 1;
  }

  if (!bench_json_path.empty()) {
    if (result.options.threads < 2) {
      std::fprintf(stderr,
                   "FATAL: the parallel leg ran on %u thread(s) after "
                   "clamping to the chunk count — the workload is too "
                   "small for a meaningful thread_speedup row\n",
                   result.options.threads);
      return 1;
    }
    // The trajectory's legs, all 1 thread: fresh construction per trial,
    // reset-based deployment reuse (snapshots off), and warm-snapshot
    // restores. The main `result` above is the parallel leg (snapshots
    // on by default). The timing legs run uninstrumented — the dedicated
    // obs leg below measures the instrumentation cost itself.
    campaign::CampaignOptions serial_options = options;
    serial_options.threads = 1;
    serial_options.reuse_deployments = true;
    serial_options.snapshots = false;
    serial_options.metrics_timers = false;
    serial_options.trace = nullptr;
    const auto serial = campaign::run_campaign(*scenario, serial_options);

    campaign::CampaignOptions no_reuse_options = serial_options;
    no_reuse_options.reuse_deployments = false;
    const auto no_reuse = campaign::run_campaign(*scenario, no_reuse_options);

    campaign::CampaignOptions warm_options = serial_options;
    warm_options.snapshots = true;
    warm_options.snapshot_dir = options.snapshot_dir;
    const auto warm = campaign::run_campaign(*scenario, warm_options);

    // The observability leg: identical campaign to `warm` but with phase
    // timers on, so the snapshot records what --metrics-json costs
    // (obs_overhead; acceptance gate <= 1.02) and where the wall time
    // goes (phase_breakdown).
    campaign::CampaignOptions obs_options = warm_options;
    obs_options.metrics_timers = true;
    const auto obs_run = campaign::run_campaign(*scenario, obs_options);

    // The SIMD self-check leg: the serial campaign once more with kernel
    // dispatch pinned to the scalar reference loops. Every vector backend
    // promises bit-identical results to the scalar reference, so these
    // aggregates must match the serial leg exactly.
    const dsp::kernels::Backend bench_backend = dsp::kernels::active_backend();
    dsp::kernels::set_backend(dsp::kernels::Backend::kScalar);
    const auto scalar_run = campaign::run_campaign(*scenario, serial_options);
    dsp::kernels::set_backend(bench_backend);

    // Determinism self-checks: the work-stealing pool must not change
    // aggregates (1 vs N threads), neither may deployment reuse
    // (reset-and-reseeded deployments vs freshly constructed ones), and
    // neither may warm-snapshot restores vs cold warm-up replays.
    if (!aggregates_identical(serial, result)) {
      std::fprintf(stderr,
                   "FATAL: 1-thread and %u-thread aggregates differ\n",
                   result.options.threads);
      return 1;
    }
    if (!aggregates_identical(no_reuse, serial)) {
      std::fprintf(stderr,
                   "FATAL: reused and fresh-construction aggregates "
                   "differ\n");
      return 1;
    }
    if (!aggregates_identical(warm, serial)) {
      std::fprintf(stderr,
                   "FATAL: warm-restored and cold-warm-up aggregates "
                   "differ\n");
      return 1;
    }
    if (!aggregates_identical(obs_run, warm)) {
      std::fprintf(stderr,
                   "FATAL: metrics-instrumented and uninstrumented "
                   "aggregates differ\n");
      return 1;
    }
    if (!aggregates_identical(scalar_run, serial)) {
      std::fprintf(stderr,
                   "FATAL: %s-backend and scalar-reference kernel "
                   "aggregates differ\n",
                   dsp::kernels::backend_name(bench_backend));
      return 1;
    }
    if (warm.snapshots_restored == 0 && warm.snapshots_saved == 0 &&
        campaign::experiment_uses_deployments(scenario->kind)) {
      // Pure-DSP kinds (spectrum/wideband/multipath) legitimately never
      // build a deployment, so an untouched cache is only suspicious
      // when the kind does. Under WarmStrategy::kRestoreOnBuild a serial
      // warm leg publishes one snapshot and then resets its pooled
      // deployment, so "saved" (not per-trial restores) is the sign of
      // life.
      std::fprintf(stderr,
                   "FATAL: the warm leg never touched the snapshot cache — "
                   "the recorded 'warm' row would just be a second reuse "
                   "measurement\n");
      return 1;
    }
    // Warm-leg regression tripwire: the whole point of the snapshot
    // machinery is that the warm leg must not lose to the plain reset
    // baseline (it briefly did — warm_speedup 0.972 — when per-trial
    // restores were kept mandatory after the SIMD kernels made warm-up
    // replay cheaper than snapshot deserialization; WarmStrategy::
    // kRestoreOnBuild is the fix). Below 0.98 the recorded row is a
    // regression, not noise.
    const double warm_speedup = warm.wall_seconds > 0.0
                                    ? serial.wall_seconds / warm.wall_seconds
                                    : 0.0;
    if (warm_speedup < 0.98) {
      std::fprintf(stderr,
                   "WARNING: warm leg regressed against the reset baseline "
                   "(warm_speedup %.3f < 0.98) — snapshot restores are "
                   "costing more than the warm-up replay they skip\n",
                   warm_speedup);
    }
    std::printf("\n  determinism: %u-thread aggregates bit-identical to "
                "1-thread (%zu chunks stolen)\n",
                result.options.threads, result.chunks_stolen);
    std::printf("  determinism: deployment reuse bit-identical to fresh "
                "construction\n");
    std::printf("  determinism: warm-snapshot restores bit-identical to "
                "cold warm-ups (%zu restored, %zu saved)\n",
                warm.snapshots_restored, warm.snapshots_saved);
    std::printf("  determinism: metrics instrumentation bit-identical to "
                "uninstrumented run\n");
    std::printf("  determinism: %s kernel backend bit-identical to scalar "
                "reference\n",
                dsp::kernels::backend_name(bench_backend));
    std::printf("  no-reuse %.1f trials/s, reuse %.1f trials/s "
                "(%zu built + %zu reused), warm %.1f trials/s, "
                "parallel %.1f trials/s, instrumented %.1f trials/s\n",
                no_reuse.trials_per_second(), serial.trials_per_second(),
                serial.deployments_built, serial.deployments_reused,
                warm.trials_per_second(), result.trials_per_second(),
                obs_run.trials_per_second());
    if (!campaign::write_file(
            bench_json_path,
            campaign::perf_snapshot_json(no_reuse, serial, warm, result,
                                         hardware_threads, &obs_run))) {
      return 1;
    }
  }
  return 0;
}
