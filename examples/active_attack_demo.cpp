// Active-attack demo (section 10.3): an adversary forges unauthorized
// commands — first with commercial-programmer (FCC) power, then with 100x
// custom hardware. The shield reactively jams every packet addressed to
// its IMD, and raises an alarm when the transmission is powerful enough
// that jamming alone may not stop it.
#include <cstdio>

#include "adversary/active.hpp"
#include "channel/geometry.hpp"
#include "imd/protocol.hpp"
#include "shield/deployment.hpp"

using namespace hs;

namespace {

void attack_round(bool shield_present, double adversary_power_dbm,
                  int location) {
  shield::DeploymentOptions options;
  options.seed = 4242;
  options.shield_present = shield_present;
  options.shield_config.enable_passive_jamming = false;  // observer clarity
  shield::Deployment world(options);

  const auto& loc = channel::testbed_location(location);
  adversary::ActiveAdversaryConfig acfg;
  acfg.position = loc.position();
  acfg.walls = loc.walls;
  acfg.fsk = options.imd_profile.fsk;
  acfg.tx_power_dbm = adversary_power_dbm;
  adversary::ActiveAdversaryNode adversary(acfg, world.medium(),
                                           &world.log());
  world.add_node(&adversary);
  world.run_for(2e-3);

  const auto therapy_before = world.imd().therapy();
  imd::TherapySettings tampered = therapy_before;
  tampered.pacing_rate_bpm = 40;   // bradycardia-inducing
  tampered.mode = imd::PacingMode::kOff;

  int successes = 0;
  for (int i = 0; i < 10; ++i) {
    const auto before = world.imd().stats().therapy_changes;
    adversary.inject(imd::make_set_therapy(options.imd_profile.serial,
                                           static_cast<std::uint8_t>(i),
                                           tampered));
    world.run_for(45e-3);
    if (world.imd().stats().therapy_changes > before) ++successes;
  }

  std::printf("  %-14s  %+5.0f dBm  %4.1f m %-4s  therapy hijacked %2d/10",
              shield_present ? "shield ON " : "shield OFF",
              adversary_power_dbm, loc.distance_m,
              loc.line_of_sight() ? "LOS" : "NLOS", successes);
  if (shield_present) {
    std::printf("   [jams=%zu alarms=%zu]", world.shield().stats().active_jams,
                world.shield().stats().alarms);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf(
      "An adversary tries to switch the patient's pacing mode OFF and the\n"
      "pacing rate to 40 bpm with forged set-therapy commands.\n\n");

  std::printf("-- commercial-programmer power (FCC limit), 1.2 m away --\n");
  attack_round(false, -16.0, 3);
  attack_round(true, -16.0, 3);

  std::printf("\n-- 100x custom hardware, 20 cm away --\n");
  attack_round(false, 4.0, 1);
  attack_round(true, 4.0, 1);

  std::printf("\n-- 100x custom hardware, 27 m away through walls --\n");
  attack_round(false, 4.0, 13);
  attack_round(true, 4.0, 13);

  std::printf(
      "\nWith the shield on, FCC-power attacks fail everywhere; the 100x\n"
      "adversary can still win point-blank, but never silently — every\n"
      "success coincides with a patient alarm (SIGCOMM 2011, Fig. 11-13).\n");
  return 0;
}
