// Coexistence demo (section 11): the shield shares the 402-405 MHz MICS
// band with meteorological radiosondes — the band's primary users. It must
// jam every packet addressed to its IMD and nothing else, and release the
// medium within microseconds of an adversary going quiet.
#include <cstdio>

#include "shield/experiments.hpp"

using namespace hs;

int main() {
  shield::CoexistenceOptions options;
  options.seed = 99;
  options.location_indices = {1, 3, 5, 7};
  options.rounds_per_location = 5;

  std::printf(
      "A USRP alternates between unauthorized IMD commands and Vaisala\n"
      "RS92-style GMSK radiosonde frames, from four testbed locations...\n\n");
  const auto result = shield::run_coexistence_experiment(options);

  std::printf("  unauthorized IMD commands: %zu sent, %zu jammed\n",
              result.imd_commands_sent, result.imd_commands_jammed);
  std::printf("  radiosonde cross-traffic:  %zu sent, %zu jammed\n",
              result.cross_frames_sent, result.cross_frames_jammed);
  double mean = 0;
  for (double us : result.turnaround_us) mean += us;
  if (!result.turnaround_us.empty()) {
    mean /= static_cast<double>(result.turnaround_us.size());
  }
  std::printf("  turn-around after an adversary stops: %.0f us on average\n",
              mean);
  std::printf(
      "\nThe shield is not a blind jammer: it denies exactly the traffic\n"
      "addressed to its IMD and nothing else (SIGCOMM 2011, Table 2).\n");
  return 0;
}
