// Shield calibration walkthrough (section 10.1): everything a new
// shield+IMD pairing measures before going into service —
//   (a) antidote cancellation achieved by this unit's hardware,
//   (b) b_thresh, the S_id bit-flip tolerance, from decode logs,
//   (c) P_thresh, the alarm threshold, from a power sweep.
#include <cstdio>

#include "shield/calibrate.hpp"

using namespace hs;

int main() {
  std::printf("== shield calibration (paper section 10.1) ==\n\n");

  std::printf("(a) antenna cancellation, 25 probe epochs:\n");
  shield::DeploymentOptions opt;
  opt.seed = 7;
  shield::Deployment world(opt);
  const auto cancellation = shield::measure_cancellation_cdf(world, 25);
  double mean = 0;
  for (double g : cancellation) mean += g;
  mean /= static_cast<double>(cancellation.size());
  std::printf("    mean %.1f dB, range [%.1f, %.1f] dB  (paper: ~32 dB)\n\n",
              mean, cancellation.front(), cancellation.back());

  std::printf("(b) b_thresh from logging-only decode comparison:\n");
  const auto bthresh = shield::estimate_bthresh(/*seed=*/7, /*packets=*/150);
  std::printf(
      "    %zu adversarial packets; %zu errored-at-shield-but-IMD-accepted"
      " (max %zu flips)\n    => b_thresh = %zu  (paper: 4)\n\n",
      bthresh.packets_sent, bthresh.shield_error_imd_ok,
      bthresh.max_header_bit_flips, bthresh.recommended_bthresh);

  std::printf("(c) P_thresh from an adversary power sweep at 20 cm:\n");
  const auto pthresh = shield::measure_pthresh(
      /*seed=*/7, /*location_index=*/1, /*power_lo_dbm=*/-16.0,
      /*power_hi_dbm=*/14.0, /*power_step_db=*/3.0,
      /*packets_per_power=*/4);
  if (pthresh.successes > 0) {
    std::printf(
        "    %zu successes; RSSI at shield: min %.1f / avg %.1f dBm\n"
        "    => P_thresh = %.1f dBm (min - 3 dB)\n",
        pthresh.successes, pthresh.min_dbm, pthresh.mean_dbm,
        pthresh.min_dbm - 3.0);
  } else {
    std::printf("    no successes in the sweep range\n");
  }
  std::printf(
      "\nDrop these three numbers into ShieldConfig and the unit is\n"
      "calibrated for its IMD.\n");
  return 0;
}
