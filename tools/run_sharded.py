#!/usr/bin/env python3
"""Launch a campaign as K shard processes and merge their chunk streams.

Spawns K `campaign_runner --shards=K --shard=i --emit-chunks=...`
processes (no communication between them — each shard's chunk set is a
pure function of (scenario, seed, trials, K, i)), waits for all of them,
then runs `campaign_runner --merge` to fold the streams into CSV/JSON
reports that are byte-identical to a serial single-process run.

    python3 tools/run_sharded.py --runner build/campaign_runner \
        --scenario fig9-eaves-ber --shards 3 --seed 1 \
        --outdir shards --csv merged.csv --json merged.json --verify

Each shard prints periodic `shard i/K: chunks c/C` progress lines to its
stderr; this driver multiplexes them onto one stream, prefixing each line
with `[shard i]`.

--snapshot-dir DIR makes every shard share one on-disk warm-state
snapshot cache (see docs/REPRODUCING.md "Warm-state snapshots"): the
first process to finish a configuration's warm-up publishes
`<key>.hsnap`, every other process restores it instead of re-simulating.
With --prewarm, a serial 1-trial-per-point pass populates the cache
first, so all K shards skip every cold warm-up. Results are
byte-identical with or without snapshots.

--verify additionally runs the serial campaign in-process (1 thread,
--canonical) and byte-compares its reports against the merged ones,
exiting non-zero on any difference.

--inject SPEC injects deterministic faults into the shard processes
(forwarded as `campaign_runner --fault-plan`; see docs/REPRODUCING.md
"Fault tolerance"). SPEC is comma-separated `kind:shard@arg` — e.g.
`kill:1@3` makes shard 1 die (exit 70) after its 3rd chunk record,
`trunc:0@140` / `truncl:2@4` cut shard 0/2's stream at a byte/line, and
`corrupt:0@5` flips a byte of line 5. With --inject, shard processes may
legitimately fail, and the fold step switches from the strict
`--merge` to `--recover`: each stream is salvaged to its valid prefix
and the missing chunks are re-executed in-process, so the recovered
reports are still byte-identical to the serial run (pair with --verify
to prove it). `delay:` faults are delivery faults of the in-process
dispatcher and have no effect here, where every stream is a file.

--metrics-json PATH has the merge step aggregate the K shards' metrics
trailers (counters + phase timers, summed) into one hs-metrics document
and turns each shard's phase timers on (per-shard documents land next to
the chunk streams as shard-i.metrics.json);
--trace-dir DIR gives every shard process its own Chrome-trace timeline
(shard-i.trace.json, pid = shard index — load them together in Perfetto).

--update-bench BENCH_campaign.json appends a "sharded" row (wall time,
trials/sec, merge_verified) and a "sharded_speedup" ratio to an existing
perf snapshot written by `campaign_runner --bench-json`.
"""

import argparse
import json
import pathlib
import subprocess
import sys
import threading
import time


def run_checked(cmd, what):
    proc = subprocess.run(cmd)
    if proc.returncode != 0:
        sys.exit(f"run_sharded: {what} failed (exit {proc.returncode}): "
                 f"{' '.join(map(str, cmd))}")


def pump_stderr(index, stream):
    """Forwards one shard's stderr line by line, tagged with its index, so
    the interleaved progress of all K processes reads as one stream."""
    for line in iter(stream.readline, b""):
        sys.stderr.write(f"[shard {index}] " +
                         line.decode("utf-8", "replace"))
        sys.stderr.flush()
    stream.close()


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--runner", default="build/campaign_runner",
                    help="path to the campaign_runner binary")
    ap.add_argument("--scenario", default="fig9-eaves-ber")
    ap.add_argument("--shards", type=int, default=3)
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--trials", type=int, default=0,
                    help="trials per sweep point (0 = preset default)")
    ap.add_argument("--threads", type=int, default=1,
                    help="worker threads per shard process")
    ap.add_argument("--outdir", default="shard-out",
                    help="directory for the per-shard chunk streams")
    ap.add_argument("--csv", default="", help="merged CSV report path")
    ap.add_argument("--json", default="", help="merged JSON report path")
    ap.add_argument("--snapshot-dir", default="", metavar="DIR",
                    help="shared warm-state snapshot cache directory for "
                         "all shard processes (created if missing)")
    ap.add_argument("--prewarm", action="store_true",
                    help="populate --snapshot-dir with a serial "
                         "1-trial-per-point pass before fanning out, so "
                         "no shard ever runs a cold warm-up")
    ap.add_argument("--verify", action="store_true",
                    help="byte-compare merged reports against a serial run")
    ap.add_argument("--inject", default="", metavar="SPEC",
                    help="fault plan injected into the shard processes "
                         "(kind:shard@arg,... — see --fault-plan); folds "
                         "with --recover instead of --merge")
    ap.add_argument("--metrics-json", default="", metavar="PATH",
                    help="aggregate the shards' metrics trailers into one "
                         "hs-metrics document at the merge step")
    ap.add_argument("--trace-dir", default="", metavar="DIR",
                    help="write each shard's Chrome-trace timeline to "
                         "DIR/shard-i.trace.json (created if missing)")
    ap.add_argument("--update-bench", default="", metavar="SNAPSHOT",
                    help="add a 'sharded' row to this BENCH_campaign.json")
    args = ap.parse_args()

    if args.shards < 1:
        sys.exit("run_sharded: --shards must be >= 1")
    runner = pathlib.Path(args.runner)
    if not runner.exists():
        sys.exit(f"run_sharded: runner not found: {runner}")
    outdir = pathlib.Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)

    common = [f"--scenario={args.scenario}", f"--seed={args.seed}",
              f"--trials={args.trials}", f"--threads={args.threads}"]
    if args.snapshot_dir:
        snapdir = pathlib.Path(args.snapshot_dir)
        snapdir.mkdir(parents=True, exist_ok=True)
        common.append(f"--snapshot-dir={snapdir}")
    elif args.prewarm:
        sys.exit("run_sharded: --prewarm needs --snapshot-dir")

    # --- optional prewarm: publish every warm snapshot before fanning out -
    if args.prewarm:
        run_checked([str(runner), f"--scenario={args.scenario}",
                     f"--seed={args.seed}", "--trials=1", "--threads=1",
                     f"--snapshot-dir={snapdir}"], "prewarm pass")

    # --- fan out: one process per shard, all concurrent -------------------
    streams = [outdir / f"shard-{i}.jsonl" for i in range(args.shards)]
    trace_dir = None
    if args.trace_dir:
        trace_dir = pathlib.Path(args.trace_dir)
        trace_dir.mkdir(parents=True, exist_ok=True)
    t0 = time.monotonic()
    procs = []
    pumps = []
    for i, stream in enumerate(streams):
        cmd = [str(runner), *common, f"--shards={args.shards}",
               f"--shard={i}", f"--emit-chunks={stream}"]
        if args.inject:
            # Every shard gets the full plan and applies only its own
            # faults; a killed shard exits 70 with a truncated stream.
            cmd.append(f"--fault-plan={args.inject}")
        if args.metrics_json:
            # Per-shard metrics documents ride along; requesting them also
            # turns the shard's phase timers on, so the trailer the merge
            # aggregates carries timings, not just counters.
            cmd.append(f"--metrics-json={outdir / f'shard-{i}.metrics.json'}")
        if trace_dir is not None:
            cmd.append(f"--trace={trace_dir / f'shard-{i}.trace.json'}")
        p = subprocess.Popen(cmd, stderr=subprocess.PIPE)
        procs.append((cmd, p))
        pump = threading.Thread(target=pump_stderr, args=(i, p.stderr),
                                daemon=True)
        pump.start()
        pumps.append(pump)
    failed = [cmd for cmd, p in procs if p.wait() != 0]
    for pump in pumps:
        pump.join(timeout=5)
    if failed and not args.inject:
        sys.exit("run_sharded: shard process(es) failed:\n  " +
                 "\n  ".join(" ".join(c) for c in failed))
    if failed:
        # Injected faults legitimately kill shards (exit 70); recovery
        # below re-deals whatever their streams lost.
        print(f"run_sharded: {len(failed)} shard(s) failed under --inject "
              f"{args.inject!r}; recovering", file=sys.stderr)

    # --- fold: strict merge, or salvage + recover under fault injection ---
    fold = "--recover" if args.inject else "--merge"
    merge_cmd = [str(runner), fold, *map(str, streams)]
    csv_path = args.csv or str(outdir / "merged.csv")
    json_path = args.json or str(outdir / "merged.json")
    merge_cmd += [f"--csv={csv_path}", f"--json={json_path}"]
    if args.metrics_json:
        merge_cmd.append(f"--metrics-json={args.metrics_json}")
    run_checked(merge_cmd, fold.lstrip("-"))
    wall = time.monotonic() - t0
    print(f"run_sharded: {args.shards} shard(s) + {fold.lstrip('-')} "
          f"in {wall:.2f}s")

    # --- optional serial byte-comparison ----------------------------------
    if args.verify:
        serial_csv = outdir / "serial.csv"
        serial_json = outdir / "serial.json"
        run_checked([str(runner), *common[:3], "--threads=1", "--canonical",
                     f"--csv={serial_csv}", f"--json={serial_json}"],
                    "serial verification run")
        for merged, serial in ((csv_path, serial_csv),
                               (json_path, serial_json)):
            if pathlib.Path(merged).read_bytes() != serial.read_bytes():
                sys.exit(f"run_sharded: VERIFY FAILED: {merged} differs "
                         f"from the serial run's {serial}")
        print("run_sharded: verify OK — merged reports byte-identical to "
              "the serial run")

    # --- optional bench-snapshot row --------------------------------------
    if args.update_bench:
        snap_path = pathlib.Path(args.update_bench)
        snap = json.loads(snap_path.read_text())
        # The sharded row only means something next to serial/parallel rows
        # of the SAME workload: refuse a snapshot from another scenario,
        # seed, or trial count rather than writing inflated ratios.
        merged = json.loads(pathlib.Path(json_path).read_text())
        for key, got in (("scenario", merged["scenario"]),
                         ("seed", merged["seed"]),
                         ("total_trials", merged["total_trials"])):
            want = snap.get(key)
            if want != got:
                sys.exit(f"run_sharded: --update-bench refused: snapshot "
                         f"{key}={want!r} but this sharded run has "
                         f"{key}={got!r}; rerun campaign_runner "
                         f"--bench-json with matching options first")
        total_trials = snap.get("total_trials", 0)
        snap["sharded"] = {
            "shards": args.shards,
            "threads_per_shard": args.threads,
            "wall_seconds": round(wall, 6),
            "trials_per_second": round(total_trials / wall, 3) if wall else 0.0,
            "merge_verified": bool(args.verify),
        }
        serial_wall = snap.get("serial", {}).get("wall_seconds", 0.0)
        snap["sharded_speedup"] = (
            round(serial_wall / wall, 3) if wall and serial_wall else 0.0)
        snap_path.write_text(json.dumps(snap, indent=2) + "\n")
        print(f"run_sharded: added sharded row to {snap_path}")


if __name__ == "__main__":
    main()
