#!/usr/bin/env python3
"""Closed-loop load generator + verifier for campaign_serverd.

Drives N concurrent clients against a running campaign_serverd, each
submitting campaigns back to back (closed loop: the next request goes
out only after the previous one's `done` frame), and reports sustained
campaigns/sec plus p50/p90/p99 request latency:

    build/campaign_serverd --port=0 --port-file=/tmp/hs.port &
    python3 tools/hs_client.py --port "$(cat /tmp/hs.port)" \
        --clients 4 --campaigns 5 --preset fig9-eaves-ber --trials 4

Every campaign uses a distinct seed (seed-base + a running index), so
concurrent requests exercise genuinely different RNG streams while the
scheduler interleaves their chunks over one worker pool.

--verify-runner PATH byte-compares every streamed report against the
serial CLI (`PATH --scenario ... --canonical --csv --json`) run of the
same request — the service determinism contract. Any mismatch is fatal
(exit 1). The received chunk frames are also checked: every chunk id
exactly once, and the unescaped header/record/trailer lines must
reassemble into a stream the serial chunk-stream parser would accept
(we check the sealed-line CRC suffix shape and the chunk count here;
the gtest suite does the full reparse).

--update-bench BENCH_campaign.json appends a "service" row (same idiom
as run_sharded.py --update-bench / bench_native.py):

    "service": {"clients": N, "campaigns": C, "preset": ...,
                "campaigns_per_second": ..., "p50_ms": ..., "p90_ms": ...,
                "p99_ms": ..., "rejected_retries": ...,
                "byte_identical": true|null}

A rejected (429) response is retried after its retry_after_ms hint —
closed-loop clients never drop work, they back off.
"""

import argparse
import json
import pathlib
import socket
import subprocess
import sys
import tempfile
import threading
import time


class ClientError(Exception):
    pass


class Connection:
    """One line-delimited JSON connection to the daemon."""

    def __init__(self, host, port, unix_path):
        if unix_path:
            self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self.sock.connect(unix_path)
        else:
            self.sock = socket.create_connection((host, port))
        self.file = self.sock.makefile("rw", encoding="utf-8", newline="\n")

    def send(self, obj):
        self.file.write(json.dumps(obj) + "\n")
        self.file.flush()

    def recv(self):
        line = self.file.readline()
        if not line:
            raise ClientError("server closed the connection")
        return json.loads(line)

    def close(self):
        try:
            self.sock.close()
        except OSError:
            pass


def run_campaign(conn, request):
    """Submits one run request and consumes its full frame stream.

    Returns (latency_seconds, report_frame, chunk_lines, rejected_retries).
    """
    rejected = 0
    while True:
        t0 = time.monotonic()
        conn.send(request)
        first = conn.recv()
        if first["type"] == "rejected":
            rejected += 1
            time.sleep(first.get("retry_after_ms", 50) / 1000.0)
            continue
        if first["type"] == "error":
            raise ClientError(f"request refused: {first['reason']}")
        if first["type"] != "admitted":
            raise ClientError(f"expected admitted, got {first}")
        rid = first["id"]
        total_chunks = first["total_chunks"]
        chunk_lines = {}
        report = None
        header = None
        trailer = None
        while True:
            msg = conn.recv()
            mtype = msg["type"]
            if mtype == "header" and msg["id"] == rid:
                header = msg["line"]
            elif mtype == "chunk" and msg["id"] == rid:
                body = json.loads(msg["line"].rsplit(',"crc":', 1)[0] + "}")
                cid = body["chunk"]
                if cid in chunk_lines:
                    raise ClientError(f"duplicate chunk {cid}")
                chunk_lines[cid] = msg["line"]
            elif mtype == "trailer" and msg["id"] == rid:
                trailer = msg["line"]
            elif mtype == "report" and msg["id"] == rid:
                report = msg
            elif mtype == "done" and msg["id"] == rid:
                latency = time.monotonic() - t0
                if header is None or trailer is None or report is None:
                    raise ClientError("incomplete stream before done")
                if len(chunk_lines) != total_chunks:
                    raise ClientError(
                        f"{len(chunk_lines)} chunk frames != "
                        f"admitted total_chunks {total_chunks}")
                for line in [header, trailer, *chunk_lines.values()]:
                    if ',"crc":"' not in line:
                        raise ClientError(f"frame missing CRC seal: {line}")
                return latency, report, chunk_lines, rejected
            else:
                raise ClientError(f"unexpected frame {msg}")


def client_loop(index, args, results, errors):
    try:
        conn = Connection(args.host, args.port, args.unix)
        for j in range(args.campaigns):
            seed = args.seed_base + index * args.campaigns + j
            request = {
                "cmd": "run",
                "preset": args.preset,
                "seed": seed,
                "trials": args.trials,
                "chunk_size": args.chunk_size,
                "priority": 1 + (index % 8),
            }
            latency, report, _, rejected = run_campaign(conn, request)
            results.append({
                "seed": seed,
                "latency_s": latency,
                "rejected_retries": rejected,
                "csv": report["csv"],
                "json": report["json"],
            })
        conn.close()
    except (ClientError, OSError, json.JSONDecodeError) as e:
        errors.append(f"client {index}: {e}")


def verify_reports(runner, args, results):
    """Serial-CLI byte-identity check for every distinct request."""
    with tempfile.TemporaryDirectory(prefix="hs_client.") as tmp:
        tmp = pathlib.Path(tmp)
        for r in results:
            csv_path = tmp / f"{r['seed']}.csv"
            json_path = tmp / f"{r['seed']}.json"
            cmd = [runner,
                   f"--scenario={args.preset}",
                   f"--seed={r['seed']}",
                   f"--trials={args.trials}",
                   f"--chunk={args.chunk_size}",
                   "--threads=1", "--canonical",
                   f"--csv={csv_path}", f"--json={json_path}"]
            proc = subprocess.run(cmd, stdout=subprocess.DEVNULL)
            if proc.returncode != 0:
                sys.exit(f"hs_client: serial verify run failed: "
                         f"{' '.join(cmd)}")
            if r["csv"] != csv_path.read_text():
                sys.exit(f"hs_client: CSV mismatch for seed {r['seed']} — "
                         f"served report is NOT byte-identical to the "
                         f"serial run")
            if r["json"] != json_path.read_text():
                sys.exit(f"hs_client: JSON mismatch for seed {r['seed']}")
    print(f"hs_client: verified {len(results)} report(s) byte-identical "
          f"to serial runs")


def percentile(sorted_values, p):
    """Nearest-rank percentile, matching obs::LatencyWindow."""
    import math
    rank = max(1, math.ceil(p / 100.0 * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def main():
    ap = argparse.ArgumentParser(
        description="closed-loop load generator for campaign_serverd")
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, default=0)
    ap.add_argument("--unix", default="",
                    help="Unix-domain socket path (instead of --port)")
    ap.add_argument("--clients", type=int, default=4)
    ap.add_argument("--campaigns", type=int, default=5,
                    help="campaigns per client (closed loop)")
    ap.add_argument("--preset", default="fig9-eaves-ber")
    ap.add_argument("--trials", type=int, default=4)
    ap.add_argument("--chunk-size", type=int, default=1)
    ap.add_argument("--seed-base", type=int, default=1)
    ap.add_argument("--verify-runner", default="",
                    help="campaign_runner binary; byte-compare every "
                         "report against its serial --canonical output")
    ap.add_argument("--update-bench", default="", metavar="BENCH.json",
                    help="append a 'service' row to this perf snapshot")
    ap.add_argument("--json", default="", metavar="PATH",
                    help="write the load-test result document to PATH")
    args = ap.parse_args()
    if not args.unix and args.port == 0:
        sys.exit("hs_client: need --port or --unix")

    results = []  # list append is atomic under the GIL
    errors = []
    t0 = time.monotonic()
    threads = [
        threading.Thread(target=client_loop, args=(i, args, results, errors))
        for i in range(args.clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.monotonic() - t0
    if errors:
        for e in errors:
            print(f"hs_client: {e}", file=sys.stderr)
        sys.exit(1)

    total = len(results)
    latencies = sorted(r["latency_s"] * 1000.0 for r in results)
    rejected = sum(r["rejected_retries"] for r in results)
    doc = {
        "clients": args.clients,
        "campaigns": total,
        "preset": args.preset,
        "trials": args.trials,
        "chunk_size": args.chunk_size,
        "wall_seconds": round(wall, 6),
        "campaigns_per_second": round(total / wall, 3) if wall > 0 else 0.0,
        "p50_ms": round(percentile(latencies, 50), 3),
        "p90_ms": round(percentile(latencies, 90), 3),
        "p99_ms": round(percentile(latencies, 99), 3),
        "max_ms": round(latencies[-1], 3),
        "rejected_retries": rejected,
        "byte_identical": None,
    }
    if args.verify_runner:
        verify_reports(args.verify_runner, args, results)
        doc["byte_identical"] = True
    print(f"hs_client: {total} campaigns over {args.clients} client(s) in "
          f"{wall:.2f}s — {doc['campaigns_per_second']} campaigns/s, "
          f"p50 {doc['p50_ms']}ms, p99 {doc['p99_ms']}ms, "
          f"{rejected} rejected-retry(ies)")

    if args.json:
        pathlib.Path(args.json).write_text(json.dumps(doc, indent=2) + "\n")
    if args.update_bench:
        snap_path = pathlib.Path(args.update_bench)
        if not snap_path.exists():
            sys.exit(f"hs_client: snapshot not found: {snap_path} "
                     f"(run campaign_runner --bench-json first)")
        snap = json.loads(snap_path.read_text())
        snap["service"] = doc
        snap_path.write_text(json.dumps(snap, indent=2) + "\n")
        print(f"hs_client: added service row to {snap_path}")


if __name__ == "__main__":
    main()
