#!/usr/bin/env python3
"""Add a `native` leg to BENCH_campaign.json from an HS_NATIVE build.

The committed perf snapshot is produced by the DEFAULT (byte-pinned)
build's `campaign_runner --bench-json`. The opt-in HS_NATIVE flavor
(-DHS_NATIVE=ON: -march=native -ffp-contract=fast) trades byte-pinned
outputs for host-tuned codegen; this script measures what that buys.
It runs the native runner's own --bench-json flow (which still executes
all of its determinism self-checks, including the scalar-kernel-backend
leg — the SIMD kernel TUs pin -ffp-contract=off in every flavor), then
copies the native serial row into the default snapshot:

    python3 tools/bench_native.py --runner build-native/campaign_runner \
        --bench BENCH_campaign.json

appends

    "native": {"threads": 1, "wall_seconds": ..., "trials_per_second": ...,
               "simd_backend": "..."},
    "native_speedup": <default serial wall / native serial wall>

Scenario, seed, trial count and thread count are taken from the existing
snapshot so both rows describe one workload; a runner whose bench run
disagrees on any of them is refused rather than recorded.

The native row is a DIFFERENT BINARY of the same workload — its
aggregates are allowed to drift within the tolerances pinned by
tests/test_native_baseline.cpp, which is the flavor's correctness gate;
this script only records its speed.
"""

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile


def main():
    ap = argparse.ArgumentParser(
        description="append a native leg to a perf snapshot")
    ap.add_argument("--runner", required=True,
                    help="HS_NATIVE-flavor campaign_runner binary")
    ap.add_argument("--bench", required=True, metavar="BENCH_campaign.json",
                    help="existing default-build perf snapshot to update")
    args = ap.parse_args()

    runner = pathlib.Path(args.runner)
    if not runner.exists():
        sys.exit(f"bench_native: runner not found: {runner}")
    snap_path = pathlib.Path(args.bench)
    if not snap_path.exists():
        sys.exit(f"bench_native: snapshot not found: {snap_path} "
                 f"(run campaign_runner --bench-json first)")
    snap = json.loads(snap_path.read_text())
    for key in ("scenario", "seed", "serial", "parallel"):
        if key not in snap:
            sys.exit(f"bench_native: {snap_path} has no '{key}' — not a "
                     f"--bench-json perf snapshot")

    threads = snap["parallel"].get("threads", 2)
    with tempfile.TemporaryDirectory(prefix="bench_native.") as tmp:
        native_json = pathlib.Path(tmp) / "native_bench.json"
        cmd = [str(runner),
               f"--scenario={snap['scenario']}",
               f"--seed={snap['seed']}",
               f"--threads={threads}",
               f"--bench-json={native_json}"]
        print("bench_native: " + " ".join(cmd))
        proc = subprocess.run(cmd)
        if proc.returncode != 0:
            sys.exit(f"bench_native: native bench run failed "
                     f"(exit {proc.returncode})")
        native = json.loads(native_json.read_text())

    # Both rows must describe one workload: same sweep, same seed, same
    # trial count. (threads was forced equal above.)
    for key in ("scenario", "seed", "total_trials"):
        want, got = snap.get(key), native.get(key)
        if want != got:
            sys.exit(f"bench_native: refused: snapshot {key}={want!r} but "
                     f"the native run produced {key}={got!r}")

    native_serial = native["serial"]
    snap["native"] = {
        "threads": 1,
        "wall_seconds": native_serial["wall_seconds"],
        "trials_per_second": native_serial["trials_per_second"],
        "simd_backend": native.get("simd_backend", "unknown"),
    }
    serial_wall = snap["serial"].get("wall_seconds", 0.0)
    native_wall = native_serial.get("wall_seconds", 0.0)
    snap["native_speedup"] = (
        round(serial_wall / native_wall, 3)
        if serial_wall and native_wall else 0.0)
    snap_path.write_text(json.dumps(snap, indent=2) + "\n")
    print(f"bench_native: added native row to {snap_path} "
          f"({snap['native']['trials_per_second']} trials/s, "
          f"{snap['native_speedup']}x vs default serial)")


if __name__ == "__main__":
    main()
