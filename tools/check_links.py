#!/usr/bin/env python3
"""Offline markdown link checker for docs/*.md and README.md.

Verifies that every relative link and image target resolves to an
existing file (optionally with a #fragment), and that intra-document
fragments point at a real heading. External http(s)/mailto links are
only syntax-checked, so the check stays hermetic for CI.

Exit status: 0 when every link resolves, 1 otherwise (each failure is
printed as `file: broken link 'target'`).
"""
import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def slugify(heading: str) -> str:
    """GitHub-style anchor slug for a heading."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug, flags=re.UNICODE)
    return slug.replace(" ", "-")


def document_anchors(path: Path) -> set:
    text = path.read_text(encoding="utf-8")
    return {slugify(h) for h in HEADING_RE.findall(text)}


def check_file(path: Path) -> list:
    failures = []
    text = path.read_text(encoding="utf-8")
    # Fenced code blocks routinely contain example snippets; skip them.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, fragment = target.partition("#")
        resolved = (path.parent / base).resolve() if base else path.resolve()
        if base and not resolved.exists():
            failures.append(f"{path}: broken link '{target}'")
            continue
        if fragment and resolved.suffix == ".md":
            if slugify(fragment) not in document_anchors(resolved):
                failures.append(f"{path}: broken anchor '{target}'")
    return failures


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    files = sorted((root / "docs").glob("*.md")) + [root / "README.md"]
    failures = []
    for f in files:
        failures.extend(check_file(f))
    for failure in failures:
        print(failure, file=sys.stderr)
    print(f"check_links: {len(files)} files, "
          f"{'FAIL' if failures else 'ok'}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
