#!/usr/bin/env python3
"""Determinism linter: mechanically enforces the invariants that keep
parallel / sharded / warm-restored / fault-recovered campaigns
byte-identical to serial (docs/ARCHITECTURE.md, "Correctness tooling").

The byte-identity contract is enforced dynamically by the bit-identity
tests; this linter is the static layer that stops the classic ways of
breaking it from ever compiling into the tree:

  * nondeterministic entropy sources (rand(), std::random_device, ...),
  * wall-clock reads feeding computation (time(), system_clock, ...),
  * iteration over unordered containers anywhere near serialized output,
  * lossy decimal float formatting in round-tripping serializers
    (chunk streams and snapshots must use C99 hex-floats, "%a"),
  * naked standard-library RNG engines outside the dsp::Rng/derive_seed
    plumbing,
  * real-time sleeps (scheduling-dependent behaviour) outside the
    deterministic fault machinery.

Every exception is file-scoped and lives in LINT.toml at the repo root —
never in an inline pragma — so exceptions are visible in review and each
carries a written justification. A stale allowlist entry (one that no
longer suppresses anything) is an error, so LINT.toml cannot rot.

Usage:
  tools/lint_determinism.py                 # lint src/ using ./LINT.toml
  tools/lint_determinism.py --root DIR --config FILE   # self-test harness
  tools/lint_determinism.py --list-rules    # rule table (docs source)

Exit status: 0 clean, 1 violations (or stale allowlist entries),
2 configuration/usage error.
"""

from __future__ import annotations

import argparse
import dataclasses
import fnmatch
import pathlib
import re
import sys
import tomllib

# --------------------------------------------------------------------------
# Source model: split each file into a comment-stripped "code" view and the
# contents of its string literals, preserving line numbers in both.
# --------------------------------------------------------------------------


@dataclasses.dataclass
class SourceViews:
    """Per-line views of one translation unit.

    code[i]    = line i with comments removed and string/char literal
                 bodies blanked (so `"rand"` in usage text never matches a
                 code pattern).
    strings[i] = only the bodies of string literals on line i (so format
                 conversions are matched where they actually live).
    """

    code: list[str]
    strings: list[str]


def split_views(text: str) -> SourceViews:
    code: list[str] = []
    strings: list[str] = []
    code_line: list[str] = []
    str_line: list[str] = []
    state = "code"  # code | line_comment | block_comment | string | char
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            code.append("".join(code_line))
            strings.append("".join(str_line))
            code_line, str_line = [], []
            if state == "line_comment":
                state = "code"
            i += 1
            continue
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if c == '"':
                state = "string"
                code_line.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                code_line.append("'")
                i += 1
                continue
            code_line.append(c)
            i += 1
            continue
        if state in ("line_comment", "block_comment"):
            if state == "block_comment" and c == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
            i += 1
            continue
        # string / char literal body
        quote = '"' if state == "string" else "'"
        if c == "\\" and nxt:
            if state == "string":
                str_line.append(c + nxt)
            i += 2
            continue
        if c == quote:
            state = "code"
            code_line.append(quote)
            i += 1
            continue
        if state == "string":
            str_line.append(c)
        i += 1
    code.append("".join(code_line))
    strings.append("".join(str_line))
    return SourceViews(code=code, strings=strings)


# --------------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class Pattern:
    regex: re.Pattern
    why: str
    domain: str = "code"  # code | strings


@dataclasses.dataclass(frozen=True)
class Rule:
    rule_id: str
    summary: str
    scope: str  # "all" | "serializer"
    patterns: tuple[Pattern, ...]


def _p(regex: str, why: str, domain: str = "code") -> Pattern:
    return Pattern(regex=re.compile(regex), why=why, domain=domain)


RULES: tuple[Rule, ...] = (
    Rule(
        rule_id="raw-random",
        summary="nondeterministic or non-portable entropy source",
        scope="all",
        patterns=(
            _p(r"\brand\s*\(", "rand() draws from hidden global state"),
            _p(r"\bsrand\s*\(", "srand() mutates hidden global state"),
            _p(r"\bdrand48\b", "drand48 family uses hidden global state"),
            _p(r"std::random_device", "random_device is true entropy"),
        ),
    ),
    Rule(
        rule_id="std-rng-engine",
        summary="standard-library RNG engine/distribution outside dsp::Rng",
        scope="all",
        patterns=(
            _p(r"std::mt19937", "seed/derive via dsp::Rng, not raw engines"),
            _p(r"std::minstd_rand", "raw std engine outside dsp::Rng"),
            _p(r"std::default_random_engine",
               "implementation-defined engine"),
            _p(r"std::(uniform_(int|real)|normal|bernoulli)_distribution",
               "libstdc++ distributions are implementation-dependent"),
        ),
    ),
    Rule(
        rule_id="wall-clock",
        summary="wall-clock time reaching computation",
        scope="all",
        patterns=(
            _p(r"std::chrono::system_clock", "wall clock is not monotonic"),
            _p(r"high_resolution_clock",
               "alias of system_clock on some platforms; use steady_clock"),
            _p(r"\btime\s*\(\s*(NULL|nullptr|0)?\s*\)", "time() wall clock"),
            _p(r"\bgettimeofday\s*\(", "wall clock"),
            _p(r"clock_gettime\s*\(\s*CLOCK_REALTIME", "wall clock"),
            _p(r"\b(localtime|gmtime|strftime)\s*\(", "calendar time"),
        ),
    ),
    Rule(
        rule_id="steady-clock-scope",
        summary="steady_clock outside the timing-measurement allowlist",
        scope="all",
        patterns=(
            _p(r"steady_clock",
               "clock reads are observability, never trial input; each "
               "timing site must be allowlisted in LINT.toml"),
        ),
    ),
    Rule(
        rule_id="unordered-in-serializer",
        summary="unordered container in a file that writes serialized output",
        scope="serializer",
        patterns=(
            _p(r"\bunordered_(map|set)\b",
               "hash iteration order is seed/pointer-dependent; a "
               "serializer file must prove (allowlist) it never iterates"),
        ),
    ),
    Rule(
        rule_id="unordered-iteration",
        summary="iteration over an unordered container",
        scope="all",
        # Patterns are completed per-file against the set of identifiers
        # declared as std::unordered_{map,set} anywhere in the tree; see
        # unordered_names(). The tuple here is empty on purpose.
        patterns=(),
    ),
    Rule(
        rule_id="float-format",
        summary="decimal float formatting in a round-trip serializer",
        scope="serializer",
        patterns=(
            _p(r"%[-+ #0-9.*]*[efgEFG]",
               "decimal float text is lossy; use the hex-float helpers "
               "(chunk_stream.cpp hexfloat / state_io '%a')",
               domain="strings"),
            _p(r"std::(fixed|scientific|setprecision)",
               "iostream float formatting in a serializer", domain="code"),
        ),
    ),
    Rule(
        rule_id="to-string-serializer",
        summary="std::to_string in a serializer file",
        scope="serializer",
        patterns=(
            _p(r"std::to_string\s*\(",
               "to_string(double) is lossy decimal; integer-only users "
               "must be allowlisted with an audit note"),
        ),
    ),
    Rule(
        rule_id="raw-intrinsics",
        summary="raw SIMD intrinsics outside src/dsp/kernels.*",
        scope="all",
        patterns=(
            _p(r"\bimmintrin\.h|\bemmintrin\.h|\bxmmintrin\.h|"
               r"\bsmmintrin\.h|\btmmintrin\.h|\bpmmintrin\.h|"
               r"\bnmmintrin\.h|\barm_neon\.h",
               "vector intrinsics bypass the pinned scalar reference; add "
               "kernels to src/dsp/kernels.* behind the dispatch table"),
            _p(r"\b_mm\d*_\w+\s*\(",
               "raw x86 intrinsic call outside the kernel layer"),
            _p(r"\b__m(128|256|512)[di]?\b",
               "raw x86 vector type outside the kernel layer"),
        ),
    ),
    Rule(
        rule_id="raw-sockets",
        summary="raw network / poll I/O outside the service daemon TU",
        scope="all",
        patterns=(
            _p(r"#\s*include\s*<(sys/socket\.h|sys/un\.h|arpa/inet\.h|"
               r"netinet/[\w./]+|poll\.h)>",
               "socket and poll headers are host I/O; only the serve "
               "layer's socket TU may talk to the network — trial and "
               "campaign code must stay host-independent"),
            _p(r"(?<![\w)])::(socket|bind|listen|accept|connect|recv|send|"
               r"poll|getsockname|setsockopt|shutdown)\s*\(",
               "direct socket syscall outside the allowlisted server TU "
               "(qualified member functions like Foo::send are exempt)"),
        ),
    ),
    Rule(
        rule_id="thread-sleep",
        summary="real-time sleep (scheduling-dependent behaviour)",
        scope="all",
        patterns=(
            _p(r"\bsleep_for\b|\bsleep_until\b",
               "delays must be deterministic (wave-counted, like "
               "FaultKind::kDelay), not wall-clock sleeps"),
            _p(r"\b(usleep|nanosleep)\s*\(", "real-time sleep"),
        ),
    ),
)

UNORDERED_DECL = re.compile(
    r"unordered_(?:map|set)\s*<[^;{}()]*>\s+(\w+)\s*[;{=]")


def unordered_names(views_by_file: dict[str, SourceViews]) -> set[str]:
    """Identifiers declared as std::unordered_{map,set} anywhere in the
    tree (headers declare, .cpp files iterate — so the set is global)."""
    names: set[str] = set()
    for views in views_by_file.values():
        for line in views.code:
            for m in UNORDERED_DECL.finditer(line):
                names.add(m.group(1))
    return names


def iteration_patterns(names: set[str]) -> tuple[Pattern, ...]:
    pats = []
    for name in sorted(names):
        n = re.escape(name)
        pats.append(_p(
            rf"for\s*\([^;)]*:[^;){{]*\b{n}\b"
            rf"|\b{n}\s*\.\s*(begin|cbegin|rbegin)\s*\("
            rf"|erase_if\s*\(\s*{n}\b",
            f"iterates '{name}', declared as an unordered container; "
            "hash order must never reach serialized output"))
    return tuple(pats)


# --------------------------------------------------------------------------
# Configuration (LINT.toml)
# --------------------------------------------------------------------------


@dataclasses.dataclass
class Config:
    root: str
    serializer_files: list[str]
    # rule_id -> {relative path -> reason}
    allow: dict[str, dict[str, str]]


def config_error(message: str) -> None:
    print(message, file=sys.stderr)
    sys.exit(2)


def load_config(path: pathlib.Path) -> Config:
    try:
        with open(path, "rb") as f:
            doc = tomllib.load(f)
    except (OSError, tomllib.TOMLDecodeError) as e:
        config_error(f"lint: cannot read {path}: {e}")
    linter = doc.get("linter", {})
    root = linter.get("root", "src")
    serializer_files = linter.get("serializer_files", [])
    allow: dict[str, dict[str, str]] = {}
    known = {r.rule_id for r in RULES}
    for rule_id, body in doc.get("rules", {}).items():
        if rule_id not in known:
            config_error(f"lint: {path}: unknown rule '{rule_id}' "
                         f"(known: {', '.join(sorted(known))})")
        entries = body.get("allow", [])
        allow[rule_id] = {}
        for entry in entries:
            file = entry.get("file")
            reason = entry.get("reason", "")
            if not file or not reason:
                config_error(f"lint: {path}: rules.{rule_id}.allow entries "
                             "need both 'file' and a written 'reason'")
            allow[rule_id][file] = reason
    return Config(root=root, serializer_files=serializer_files, allow=allow)


def is_serializer(rel: str, cfg: Config) -> bool:
    return any(fnmatch.fnmatch(rel, pat) for pat in cfg.serializer_files)


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

SOURCE_SUFFIXES = (".cpp", ".hpp", ".h", ".cc", ".cxx")


def lint(repo: pathlib.Path, cfg: Config) -> int:
    root = repo / cfg.root
    if not root.is_dir():
        config_error(f"lint: root '{root}' is not a directory")
    files = sorted(p for p in root.rglob("*")
                   if p.suffix in SOURCE_SUFFIXES and p.is_file())
    views_by_file = {
        str(p.relative_to(repo)): split_views(p.read_text(errors="replace"))
        for p in files
    }
    iter_pats = iteration_patterns(unordered_names(views_by_file))

    violations: list[str] = []
    used_allow: dict[str, set[str]] = {r.rule_id: set() for r in RULES}

    for rel, views in sorted(views_by_file.items()):
        for rule in RULES:
            if rule.scope == "serializer" and not is_serializer(rel, cfg):
                continue
            allowed = cfg.allow.get(rule.rule_id, {})
            patterns = (iter_pats if rule.rule_id == "unordered-iteration"
                        else rule.patterns)
            for pat in patterns:
                lines = (views.strings if pat.domain == "strings"
                         else views.code)
                for lineno, line in enumerate(lines, start=1):
                    m = pat.regex.search(line)
                    if not m:
                        continue
                    if rel in allowed:
                        used_allow[rule.rule_id].add(rel)
                        continue
                    violations.append(
                        f"{rel}:{lineno}: [{rule.rule_id}] "
                        f"'{m.group(0).strip()}' — {pat.why}")

    stale: list[str] = []
    for rule_id, entries in cfg.allow.items():
        for rel in entries:
            if rel not in used_allow.get(rule_id, set()):
                stale.append(
                    f"LINT.toml: [rules.{rule_id}] allowlist entry "
                    f"'{rel}' no longer suppresses anything — remove it")

    for v in violations:
        print(v)
    for s in stale:
        print(s)
    total = len(violations) + len(stale)
    if total:
        print(f"lint: {len(violations)} violation(s), "
              f"{len(stale)} stale allowlist entr(ies)")
        return 1
    print(f"lint: {len(files)} file(s) clean under "
          f"{len(RULES)} determinism rules")
    return 0


def list_rules() -> None:
    print(f"{'rule':<24} {'scope':<11} summary")
    for rule in RULES:
        print(f"{rule.rule_id:<24} {rule.scope:<11} {rule.summary}")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--repo", default=str(pathlib.Path(__file__).parent.parent),
                    help="repository root (default: this script's parent)")
    ap.add_argument("--config", default=None,
                    help="LINT.toml path (default: <repo>/LINT.toml)")
    ap.add_argument("--root", default=None,
                    help="override the [linter].root directory")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args()
    if args.list_rules:
        list_rules()
        return 0
    repo = pathlib.Path(args.repo).resolve()
    cfg = load_config(pathlib.Path(args.config) if args.config
                      else repo / "LINT.toml")
    if args.root:
        cfg.root = args.root
    return lint(repo, cfg)


if __name__ == "__main__":
    sys.exit(main())
