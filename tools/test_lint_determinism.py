#!/usr/bin/env python3
"""Self-test for tools/lint_determinism.py.

Every rule is exercised twice: once against a seeded violation that MUST
be reported (proving the rule can actually fire) and once against clean
code that MUST pass (proving the rule does not cry wolf). The config
machinery — file-scoped allowlists, stale-entry detection, comment and
string-literal immunity — is covered the same way.

Run: python3 tools/test_lint_determinism.py
"""

from __future__ import annotations

import pathlib
import subprocess
import sys
import tempfile
import textwrap
import unittest

LINTER = pathlib.Path(__file__).parent / "lint_determinism.py"

BASE_CONFIG = textwrap.dedent("""\
    [linter]
    root = "src"
    serializer_files = ["src/ser/*"]
    """)


def run_lint(repo: pathlib.Path, config_text: str = BASE_CONFIG):
    (repo / "LINT.toml").write_text(config_text)
    proc = subprocess.run(
        [sys.executable, str(LINTER), "--repo", str(repo)],
        capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


class LintCase(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.repo = pathlib.Path(self._tmp.name)
        (self.repo / "src").mkdir()
        (self.repo / "src" / "ser").mkdir()

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, rel: str, text: str) -> None:
        path = self.repo / rel
        path.write_text(textwrap.dedent(text))

    def assert_flags(self, rule_id: str, needle: str = ""):
        code, out = run_lint(self.repo)
        self.assertEqual(code, 1, out)
        self.assertIn(f"[{rule_id}]", out)
        if needle:
            self.assertIn(needle, out)
        return out

    def assert_clean(self):
        code, out = run_lint(self.repo)
        self.assertEqual(code, 0, out)
        return out


class TestRawRandom(LintCase):
    def test_violation(self):
        self.write("src/a.cpp", """
            int draw() { return rand() % 6; }
            """)
        self.assert_flags("raw-random", "rand()")

    def test_random_device(self):
        self.write("src/a.cpp", """
            #include <random>
            unsigned seed() { return std::random_device{}(); }
            """)
        self.assert_flags("raw-random", "random_device")

    def test_clean(self):
        self.write("src/a.cpp", """
            #include "dsp/rng.hpp"
            double draw(hs::dsp::Rng& rng) { return rng.uniform(); }
            int operand(int x) { return x % 6; }  // modulo is fine
            """)
        self.assert_clean()


class TestStdRngEngine(LintCase):
    def test_violation(self):
        self.write("src/a.cpp", """
            #include <random>
            double g(unsigned s) {
              std::mt19937 gen(s);
              std::uniform_real_distribution<double> d(0, 1);
              return d(gen);
            }
            """)
        self.assert_flags("std-rng-engine", "mt19937")

    def test_clean(self):
        self.write("src/a.cpp", """
            #include "dsp/rng.hpp"
            // dsp::Rng wraps a fixed, documented generator; streams are
            // derived by dsp::derive_seed, never reseeded ad hoc.
            double g(hs::dsp::Rng& rng) { return rng.gaussian(); }
            """)
        self.assert_clean()


class TestWallClock(LintCase):
    def test_violation(self):
        self.write("src/a.cpp", """
            #include <chrono>
            auto now() { return std::chrono::system_clock::now(); }
            """)
        self.assert_flags("wall-clock", "system_clock")

    def test_time_null(self):
        self.write("src/a.cpp", """
            #include <ctime>
            long stamp() { return time(nullptr); }
            """)
        self.assert_flags("wall-clock", "time")

    def test_clean(self):
        self.write("src/a.cpp", """
            // Simulation time comes from the sample clock, not the host.
            double sim_seconds(std::size_t samples, double fs) {
              return static_cast<double>(samples) / fs;
            }
            """)
        self.assert_clean()


class TestSteadyClockScope(LintCase):
    def test_violation(self):
        self.write("src/a.cpp", """
            #include <chrono>
            auto t0() { return std::chrono::steady_clock::now(); }
            """)
        self.assert_flags("steady-clock-scope", "steady_clock")

    def test_allowlisted(self):
        self.write("src/a.cpp", """
            #include <chrono>
            auto t0() { return std::chrono::steady_clock::now(); }
            """)
        config = BASE_CONFIG + textwrap.dedent("""\
            [rules.steady-clock-scope]
            allow = [
              { file = "src/a.cpp", reason = "wall-time measurement only" },
            ]
            """)
        code, out = run_lint(self.repo, config)
        self.assertEqual(code, 0, out)

    def test_clean(self):
        self.write("src/a.cpp", """
            std::uint64_t ticks(std::uint64_t n) { return n + 1; }
            """)
        self.assert_clean()


class TestUnorderedInSerializer(LintCase):
    def test_violation(self):
        self.write("src/ser/writer.cpp", """
            #include <unordered_map>
            std::unordered_map<int, double> cache;
            """)
        self.assert_flags("unordered-in-serializer", "unordered_map")

    def test_outside_serializer_scope_is_fine(self):
        self.write("src/a.cpp", """
            #include <unordered_map>
            std::unordered_map<int, double> cache;
            double look(int k) { return cache.find(k)->second; }
            """)
        self.assert_clean()

    def test_clean_serializer(self):
        self.write("src/ser/writer.cpp", """
            #include <map>
            std::map<int, double> ordered;  // deterministic iteration
            """)
        self.assert_clean()


class TestUnorderedIteration(LintCase):
    def test_range_for(self):
        self.write("src/a.hpp", """
            #include <unordered_map>
            struct C { std::unordered_map<int, double> memo_; };
            """)
        # Declaration in the header, iteration in the .cpp — the name set
        # is collected tree-wide, so this must still be caught.
        self.write("src/a.cpp", """
            #include "a.hpp"
            double sum(const C& c) {
              double s = 0;
              for (const auto& [k, v] : c.memo_) s += v;
              return s;
            }
            """)
        self.assert_flags("unordered-iteration", "memo_")

    def test_erase_if(self):
        self.write("src/a.cpp", """
            #include <unordered_map>
            std::unordered_map<int, double> memo_;
            void prune(int floor) {
              std::erase_if(memo_, [&](auto& e) { return e.first < floor; });
            }
            """)
        self.assert_flags("unordered-iteration", "memo_")

    def test_keyed_access_is_fine(self):
        self.write("src/a.cpp", """
            #include <unordered_map>
            std::unordered_map<int, double> memo_;
            double look(int k) {
              if (const auto it = memo_.find(k); it != memo_.end()) {
                return it->second;  // find/end sentinel, not iteration
              }
              memo_.emplace(k, 1.0);
              return 1.0;
            }
            """)
        self.assert_clean()


class TestFloatFormat(LintCase):
    def test_printf_g(self):
        self.write("src/ser/writer.cpp", """
            #include <cstdio>
            void put(char* buf, std::size_t n, double v) {
              std::snprintf(buf, n, "%.9g", v);
            }
            """)
        self.assert_flags("float-format", "%.9g")

    def test_iostream_precision(self):
        self.write("src/ser/writer.cpp", """
            #include <iomanip>
            #include <sstream>
            std::string put(double v) {
              std::ostringstream os;
              os << std::setprecision(17) << v;
              return os.str();
            }
            """)
        self.assert_flags("float-format", "setprecision")

    def test_hexfloat_is_fine(self):
        self.write("src/ser/writer.cpp", """
            #include <cstdio>
            void put(char* buf, std::size_t n, double v) {
              std::snprintf(buf, n, "%a", v);  // exact bits, round-trips
            }
            void count(char* buf, std::size_t n, std::size_t c) {
              std::snprintf(buf, n, "%zu", c);
            }
            """)
        self.assert_clean()

    def test_comment_mentioning_g_is_fine(self):
        self.write("src/ser/writer.cpp", """
            // Decimal "%g" would be lossy here; that is why we use "%a".
            void nothing() {}
            """)
        self.assert_clean()


class TestToStringSerializer(LintCase):
    def test_violation(self):
        self.write("src/ser/writer.cpp", """
            #include <string>
            std::string put(double v) { return std::to_string(v); }
            """)
        self.assert_flags("to-string-serializer", "to_string")

    def test_outside_scope_is_fine(self):
        self.write("src/a.cpp", """
            #include <string>
            std::string label(int id) { return std::to_string(id); }
            """)
        self.assert_clean()

    def test_member_named_to_string_is_fine(self):
        self.write("src/ser/writer.cpp", """
            #include <string>
            struct Plan { std::string to_string() const { return {}; } };
            """)
        self.assert_clean()


class TestRawIntrinsics(LintCase):
    def test_intrinsic_call(self):
        self.write("src/a.cpp", """
            #include <immintrin.h>
            double sum4(const double* x) {
              __m256d v = _mm256_loadu_pd(x);
              double out[4];
              _mm256_storeu_pd(out, v);
              return out[0] + out[1] + out[2] + out[3];
            }
            """)
        self.assert_flags("raw-intrinsics", "_mm256_loadu_pd")

    def test_vector_type_alone(self):
        self.write("src/a.hpp", """
            struct Holder { __m128d lanes; };
            """)
        self.assert_flags("raw-intrinsics", "__m128d")

    def test_allowlisted_kernel_backend(self):
        self.write("src/kernels_avx2.cpp", """
            #include <immintrin.h>
            __m256d load(const double* x) { return _mm256_loadu_pd(x); }
            """)
        config = BASE_CONFIG + textwrap.dedent("""\
            [rules.raw-intrinsics]
            allow = [
              { file = "src/kernels_avx2.cpp", reason = "the kernel backend" },
            ]
            """)
        code, out = run_lint(self.repo, config)
        self.assertEqual(code, 0, out)

    def test_dispatch_callers_are_clean(self):
        self.write("src/a.cpp", """
            #include "dsp/kernels.hpp"
            // Callers go through the dispatch table; mm / m256 appearing
            // in comments or identifiers like comm_mm() must not trip.
            double f(const double* re, const double* im, double e) {
              return hs::dsp::kernels::segmented_sync_correlation(
                  re, im, re, im, 8, e);
            }
            """)
        self.assert_clean()


class TestRawSockets(LintCase):
    def test_socket_header(self):
        self.write("src/a.cpp", """
            #include <sys/socket.h>
            int open_channel();
            """)
        self.assert_flags("raw-sockets", "sys/socket.h")

    def test_global_qualified_syscall(self):
        self.write("src/a.cpp", """
            int push(int fd, const char* p, unsigned long n) {
              return ::send(fd, p, n, 0);
            }
            """)
        self.assert_flags("raw-sockets", "::send")

    def test_member_functions_named_like_syscalls_are_fine(self):
        self.write("src/a.cpp", """
            #include "channel.hpp"
            // Qualified member definitions and object calls must not trip:
            void Channel::send(const Frame& f) { queue_.push_back(f); }
            void Relay::poll() { drain(); }
            void pump(Channel& c, Relay& r, const Frame& f) {
              c.send(f);
              r.poll();
            }
            """)
        self.assert_clean()

    def test_allowlisted_server_tu(self):
        self.write("src/server.cpp", """
            #include <sys/socket.h>
            int open_listener() { return ::socket(2, 1, 0); }
            """)
        config = BASE_CONFIG + textwrap.dedent("""\
            [rules.raw-sockets]
            allow = [
              { file = "src/server.cpp", reason = "the daemon socket TU" },
            ]
            """)
        code, out = run_lint(self.repo, config)
        self.assertEqual(code, 0, out)


class TestThreadSleep(LintCase):
    def test_violation(self):
        self.write("src/a.cpp", """
            #include <chrono>
            #include <thread>
            void wait() {
              std::this_thread::sleep_for(std::chrono::milliseconds(10));
            }
            """)
        self.assert_flags("thread-sleep", "sleep_for")

    def test_clean(self):
        self.write("src/a.cpp", """
            // Stragglers are modeled as wave-counted delivery delays
            // (FaultKind::kDelay), never as wall-clock sleeps.
            int advance(int waves_left) { return waves_left - 1; }
            """)
        self.assert_clean()


class TestConfigMachinery(LintCase):
    def test_string_literal_does_not_trigger_code_rules(self):
        self.write("src/a.cpp", """
            const char* kUsage = "seeds come from rand() upstream";
            """)
        self.assert_clean()

    def test_stale_allowlist_entry_is_an_error(self):
        self.write("src/a.cpp", """
            int f() { return 1; }
            """)
        config = BASE_CONFIG + textwrap.dedent("""\
            [rules.thread-sleep]
            allow = [
              { file = "src/a.cpp", reason = "was needed once" },
            ]
            """)
        code, out = run_lint(self.repo, config)
        self.assertEqual(code, 1, out)
        self.assertIn("no longer suppresses", out)

    def test_allow_entry_requires_reason(self):
        self.write("src/a.cpp", "int f();\n")
        config = BASE_CONFIG + textwrap.dedent("""\
            [rules.thread-sleep]
            allow = [ { file = "src/a.cpp" } ]
            """)
        code, out = run_lint(self.repo, config)
        self.assertEqual(code, 2, out)
        self.assertIn("reason", out)

    def test_unknown_rule_rejected(self):
        self.write("src/a.cpp", "int f();\n")
        config = BASE_CONFIG + "[rules.not-a-rule]\nallow = []\n"
        code, out = run_lint(self.repo, config)
        self.assertEqual(code, 2, out)
        self.assertIn("unknown rule", out)

    def test_every_rule_has_a_fixture(self):
        # Meta-check: the classes above must seed a violation for every
        # rule the linter implements, so a new rule cannot land untested.
        proc = subprocess.run(
            [sys.executable, str(LINTER), "--list-rules"],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        rules = {line.split()[0] for line in
                 proc.stdout.strip().splitlines()[1:]}
        covered = {
            "raw-random", "std-rng-engine", "wall-clock",
            "steady-clock-scope", "unordered-in-serializer",
            "unordered-iteration", "float-format", "to-string-serializer",
            "raw-intrinsics", "raw-sockets", "thread-sleep",
        }
        self.assertEqual(rules, covered,
                         "rule list and self-test fixtures diverged")


if __name__ == "__main__":
    unittest.main(verbosity=2)
