#!/usr/bin/env python3
"""Validate observability artifacts written by campaign_runner.

Checks any combination of:

  --metrics FILE     an hs-metrics document (--metrics-json): versioned
                     header, every counter/phase key present with sane
                     integer values, trials > 0, phase shares finite.
  --trace FILE       a Chrome trace-event timeline (--trace): valid JSON,
                     a traceEvents list whose B/E events pair up per
                     (pid, tid) and whose timestamps are monotonic per
                     (pid, tid) — the guarantee the recorder makes by
                     appending each thread's events in capture order.
  --compare A B      two canonical report files that must be
                     byte-identical (the metrics-on vs metrics-off gate).

Exits non-zero with a message naming the first violation. Used by the CI
observability job; handy locally after touching src/obs/.

    python3 tools/check_obs.py --metrics m.json --trace t.json \
        --compare on.csv off.csv
"""

import argparse
import json
import math
import pathlib
import sys

METRICS_VERSION = 2
COUNTERS = [
    "trials", "chunks", "chunks_stolen", "deployments_built",
    "deployments_reused", "snapshots_restored", "snapshots_saved",
    "chunks_redealt", "chunks_duplicate", "shards_dead",
    "shards_straggler", "tasks_retried",
]
PHASES = [
    "warmup", "snapshot_save", "snapshot_restore", "medium_mix", "jamgen",
    "receiver_demod", "trial", "stats_merge", "chunk_acquire",
]


def fail(msg):
    sys.exit(f"check_obs: {msg}")


def check_metrics(path):
    try:
        doc = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not readable JSON: {e}")
    if doc.get("format") != "hs-metrics":
        fail(f"{path}: format is {doc.get('format')!r}, not 'hs-metrics'")
    if doc.get("version") != METRICS_VERSION:
        fail(f"{path}: version {doc.get('version')!r}, expected "
             f"{METRICS_VERSION}")
    for key in ("scenario", "seed", "shards", "threads", "wall_seconds",
                "counters", "phases"):
        if key not in doc:
            fail(f"{path}: missing key {key!r}")
    counters = doc["counters"]
    for name in COUNTERS:
        v = counters.get(name)
        if not isinstance(v, int) or v < 0:
            fail(f"{path}: counter {name!r} is {v!r}, expected a "
                 f"non-negative integer")
    extra = set(counters) - set(COUNTERS)
    if extra:
        fail(f"{path}: unknown counters {sorted(extra)}")
    if counters["trials"] == 0:
        fail(f"{path}: zero trials recorded — the run did no work")
    phases = doc["phases"]
    for name in PHASES:
        p = phases.get(name)
        if (not isinstance(p, dict)
                or not isinstance(p.get("calls"), int) or p["calls"] < 0
                or not isinstance(p.get("ns"), int) or p["ns"] < 0
                or not isinstance(p.get("share"), (int, float))
                or not math.isfinite(p["share"]) or p["share"] < 0):
            fail(f"{path}: phase {name!r} is malformed: {p!r}")
        if p["calls"] == 0 and p["ns"] != 0:
            fail(f"{path}: phase {name!r} has time but zero calls")
    extra = set(phases) - set(PHASES)
    if extra:
        fail(f"{path}: unknown phases {sorted(extra)}")
    print(f"check_obs: {path}: OK ({counters['trials']} trials, "
          f"{sum(p['calls'] for p in phases.values())} timed phase calls)")


def check_trace(path):
    try:
        doc = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not readable JSON: {e}")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")
    last_ts = {}
    depth = {}
    counts = {"B": 0, "E": 0, "i": 0, "M": 0}
    for n, e in enumerate(events):
        ph = e.get("ph")
        if ph not in counts:
            fail(f"{path}: event {n} has unsupported phase {ph!r}")
        counts[ph] += 1
        if ph == "M":
            continue
        key = (e.get("pid"), e.get("tid"))
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"{path}: event {n} has bad ts {ts!r}")
        if ts < last_ts.get(key, 0.0):
            fail(f"{path}: event {n} breaks monotonic ts on pid/tid {key}: "
                 f"{ts} < {last_ts[key]}")
        last_ts[key] = ts
        if ph == "B":
            depth[key] = depth.get(key, 0) + 1
        elif ph == "E":
            depth[key] = depth.get(key, 0) - 1
            if depth[key] < 0:
                fail(f"{path}: event {n} is an E without a matching B on "
                     f"pid/tid {key}")
    unclosed = {k: d for k, d in depth.items() if d != 0}
    if unclosed:
        fail(f"{path}: unclosed spans at end of trace: {unclosed}")
    if counts["B"] != counts["E"]:
        fail(f"{path}: {counts['B']} B events vs {counts['E']} E events")
    print(f"check_obs: {path}: OK ({counts['B']} spans, {counts['i']} "
          f"instants, {counts['M']} metadata, {len(last_ts)} thread(s))")


def check_compare(a, b):
    ba = pathlib.Path(a).read_bytes()
    bb = pathlib.Path(b).read_bytes()
    if ba != bb:
        fail(f"{a} and {b} differ — observability must never change a "
             f"canonical report byte")
    print(f"check_obs: {a} == {b}: OK ({len(ba)} bytes)")


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--metrics", action="append", default=[],
                    help="hs-metrics JSON file to validate (repeatable)")
    ap.add_argument("--trace", action="append", default=[],
                    help="Chrome-trace JSON file to validate (repeatable)")
    ap.add_argument("--compare", nargs=2, action="append", default=[],
                    metavar=("A", "B"),
                    help="two report files that must be byte-identical "
                         "(repeatable)")
    args = ap.parse_args()
    if not (args.metrics or args.trace or args.compare):
        ap.error("nothing to check: pass --metrics, --trace or --compare")
    for path in args.metrics:
        check_metrics(path)
    for path in args.trace:
        check_trace(path)
    for a, b in args.compare:
        check_compare(a, b)


if __name__ == "__main__":
    main()
