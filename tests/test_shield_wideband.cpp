// Wideband (3 MHz) monitoring: the shield must spot S_id on ANY MICS
// channel, defeating frequency-hopping and multi-channel adversaries
// (paper section 7(c)).
#include <gtest/gtest.h>

#include "dsp/rng.hpp"
#include "dsp/units.hpp"
#include "imd/profiles.hpp"
#include "imd/protocol.hpp"
#include "shield/battery_life.hpp"
#include "shield/wideband.hpp"

namespace hs::shield {
namespace {

/// Builds a 3 MHz wideband stream containing an FSK command frame
/// up-converted to MICS channel `channel`, plus thermal noise.
dsp::Samples make_wideband_attack(const imd::ImdProfile& profile,
                                  std::size_t channel,
                                  const phy::DeviceId& target,
                                  std::uint64_t seed,
                                  std::size_t lead_baseband = 2400) {
  const auto cmd = imd::make_interrogate(target, 1);
  const auto wave =
      phy::fsk_modulate(profile.fsk, phy::encode_frame(cmd));
  dsp::Samples baseband(lead_baseband + wave.size() + 1200, dsp::cplx{});
  const double amp = dsp::db_to_amplitude(-45.0);
  for (std::size_t i = 0; i < wave.size(); ++i) {
    baseband[lead_baseband + i] = amp * wave[i];
  }
  mics::ChannelSynthesizer synth;
  dsp::Samples wideband(baseband.size() * mics::kDecimation, dsp::cplx{});
  synth.process(channel, baseband, wideband);
  dsp::Rng rng(seed);
  for (auto& x : wideband) {
    x += rng.cgaussian(dsp::dbm_to_mw(-112.0));
  }
  return wideband;
}

class WidebandChannelSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WidebandChannelSweep, DetectsSidOnEveryChannel) {
  const std::size_t channel = GetParam();
  const auto profile = imd::virtuoso_profile();
  WidebandMonitor monitor(profile.serial, profile.fsk);
  const auto wideband =
      make_wideband_attack(profile, channel, profile.serial, channel + 1);
  // Stream in 480-sample wideband blocks (one 48-sample channel block).
  for (std::size_t i = 0; i < wideband.size(); i += 480) {
    const std::size_t n = std::min<std::size_t>(480, wideband.size() - i);
    monitor.push(dsp::SampleView(wideband.data() + i, n));
  }
  EXPECT_TRUE(monitor.channels()[channel].sid_matched)
      << "channel " << channel;
  EXPECT_EQ(monitor.jam_mask(), 1u << channel);
  // No other channel flagged.
  for (std::size_t c = 0; c < mics::kChannelCount; ++c) {
    if (c != channel) {
      EXPECT_FALSE(monitor.channels()[c].sid_matched) << "channel " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTenChannels, WidebandChannelSweep,
                         ::testing::Range<std::size_t>(0, 10));

TEST(Wideband, OtherDevicesCommandDoesNotMatch) {
  const auto profile = imd::virtuoso_profile();
  WidebandMonitor monitor(profile.serial, profile.fsk);
  phy::DeviceId other = profile.serial;
  other[0] ^= 0xFF;
  other[4] ^= 0xFF;
  const auto wideband = make_wideband_attack(profile, 4, other, 9);
  monitor.push(wideband);
  EXPECT_EQ(monitor.jam_mask(), 0u);
  // The frame itself was still seen (receiver completed it).
  EXPECT_GE(monitor.channels()[4].frames_seen, 1u);
}

TEST(Wideband, FrequencyHoppingAdversaryCaughtEveryHop) {
  const auto profile = imd::virtuoso_profile();
  WidebandMonitor monitor(profile.serial, profile.fsk);
  for (std::size_t hop : {2u, 7u, 0u, 9u}) {
    monitor.clear_matches();
    const auto wideband =
        make_wideband_attack(profile, hop, profile.serial, 40 + hop);
    for (std::size_t i = 0; i < wideband.size(); i += 480) {
      const std::size_t n = std::min<std::size_t>(480, wideband.size() - i);
      monitor.push(dsp::SampleView(wideband.data() + i, n));
    }
    EXPECT_EQ(monitor.jam_mask(), 1u << hop) << "hop to channel " << hop;
  }
}

TEST(Wideband, SimultaneousMultiChannelAttackFlagsBoth) {
  const auto profile = imd::virtuoso_profile();
  WidebandMonitor monitor(profile.serial, profile.fsk);
  auto a = make_wideband_attack(profile, 1, profile.serial, 50);
  const auto b = make_wideband_attack(profile, 8, profile.serial, 51);
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) a[i] += b[i];
  a.resize(n);
  monitor.push(a);
  EXPECT_TRUE(monitor.channels()[1].sid_matched);
  EXPECT_TRUE(monitor.channels()[8].sid_matched);
  EXPECT_EQ(monitor.jam_mask(), (1u << 1) | (1u << 8));
}

TEST(Wideband, ClearMatchesRearms) {
  const auto profile = imd::virtuoso_profile();
  WidebandMonitor monitor(profile.serial, profile.fsk);
  monitor.push(make_wideband_attack(profile, 3, profile.serial, 60));
  ASSERT_TRUE(monitor.any_match());
  monitor.clear_matches();
  EXPECT_FALSE(monitor.any_match());
  monitor.push(make_wideband_attack(profile, 3, profile.serial, 61));
  EXPECT_TRUE(monitor.any_match());
}

TEST(BatteryLife, MatchesPapersDayOrLongerClaim) {
  const ShieldPowerModel model;
  const auto estimate = estimate_battery_life(model);
  // Under continuous attack the shield still lasts "a day or longer".
  EXPECT_GE(estimate.under_attack_hours, 17.0);
  // Normal monitoring is dominated by the receive chain.
  EXPECT_GT(estimate.monitoring_hours, 2.0 * estimate.under_attack_hours);
  // More telemetry sessions per day cost battery.
  const auto busy = estimate_battery_life(model, 3600.0);
  EXPECT_LT(busy.monitoring_hours, estimate.monitoring_hours);
  EXPECT_NEAR(estimate.idle_hours,
              model.battery_mwh / (model.rx_chain_mw + model.baseline_mw),
              1e-9);
}

}  // namespace
}  // namespace hs::shield
