// SIMD kernel backends vs the pinned scalar reference.
//
// Every backend in dsp::kernels promises BIT-EXACT equivalence with the
// scalar reference (kernels.cpp) — the SIMD code only vectorizes along
// dimensions that are already independent accumulation chains, and every
// kernels* TU is compiled with -ffp-contract=off. These tests therefore
// compare backends with EXPECT_EQ over randomized planes, in the default
// build AND under HS_NATIVE alike.
//
// Comparisons against test-local reference loops (which HS_NATIVE may
// compile with FMA contraction) are bit-exact only in the default build;
// under HS_NATIVE they fall back to a tight tolerance.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstddef>
#include <string>
#include <vector>

#include "dsp/kernels.hpp"
#include "dsp/rng.hpp"
#include "dsp/types.hpp"

namespace hs::dsp::kernels {
namespace {

#if defined(HS_NATIVE)
constexpr bool kNativeFlavor = true;
#else
constexpr bool kNativeFlavor = false;
#endif

void expect_close(double a, double b, const std::string& what) {
  if (kNativeFlavor) {
    EXPECT_NEAR(a, b, 1e-12 * (1.0 + std::abs(b))) << what;
  } else {
    EXPECT_EQ(a, b) << what;
  }
}

std::vector<double> random_plane(std::uint64_t seed, std::size_t n,
                                 double scale = 1.0) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.uniform(-scale, scale);
  return x;
}

std::vector<Backend> available_backends() {
  std::vector<Backend> out;
  for (Backend b : {Backend::kScalar, Backend::kSse2, Backend::kAvx2}) {
    if (backend_table(b) != nullptr) out.push_back(b);
  }
  return out;
}

const KernelTable& scalar() { return *backend_table(Backend::kScalar); }

// Sizes chosen to hit empty input, sub-lane tails, exact lane multiples,
// and segment boundaries of the 6-segment correlation.
const std::size_t kSizes[] = {0, 1, 2, 3, 4, 5, 6, 7, 11, 24, 37, 96, 241, 1000};

TEST(Kernels, ScalarBackendAlwaysPresent) {
  ASSERT_NE(backend_table(Backend::kScalar), nullptr);
  EXPECT_STREQ(backend_name(Backend::kScalar), "scalar");
  EXPECT_STREQ(backend_name(Backend::kSse2), "sse2");
  EXPECT_STREQ(backend_name(Backend::kAvx2), "avx2");
}

TEST(Kernels, BestSupportedBackendIsAvailable) {
  EXPECT_NE(backend_table(best_supported_backend()), nullptr);
}

TEST(Kernels, SetBackendRoundTrip) {
  const Backend before = active_backend();
  ASSERT_TRUE(set_backend(Backend::kScalar));
  EXPECT_EQ(active_backend(), Backend::kScalar);
  ASSERT_TRUE(set_backend(before));
  EXPECT_EQ(active_backend(), before);
}

TEST(Kernels, SegmentedSyncCorrelationMatchesScalarBitForBit) {
  for (Backend b : available_backends()) {
    const KernelTable& t = *backend_table(b);
    for (std::size_t n : kSizes) {
      const auto sr = random_plane(10 + n, n + 8);
      const auto si = random_plane(20 + n, n + 8);
      const auto rr = random_plane(30 + n, n);
      const auto ri = random_plane(40 + n, n);
      double ref_energy = 0.0;
      for (std::size_t i = 0; i < n; ++i)
        ref_energy += rr[i] * rr[i] + ri[i] * ri[i];
      const double got = t.segmented_sync_correlation(
          sr.data(), si.data(), rr.data(), ri.data(), n, ref_energy);
      const double want = scalar().segmented_sync_correlation(
          sr.data(), si.data(), rr.data(), ri.data(), n, ref_energy);
      EXPECT_EQ(got, want) << backend_name(b) << " n=" << n;
    }
  }
}

TEST(Kernels, DualToneMacMatchesScalarBitForBit) {
  for (Backend b : available_backends()) {
    const KernelTable& t = *backend_table(b);
    for (std::size_t n : kSizes) {
      const auto xr = random_plane(50 + n, n);
      const auto xi = random_plane(60 + n, n);
      const auto t0r = random_plane(70 + n, n);
      const auto t0i = random_plane(80 + n, n);
      const auto t1r = random_plane(90 + n, n);
      const auto t1i = random_plane(100 + n, n);
      std::vector<double> tone_a(4 * n), tone_b(4 * n);
      pack_dual_tones(t0r.data(), t0i.data(), t1r.data(), t1i.data(), n,
                      tone_a.data(), tone_b.data());
      const DualToneAccum got =
          t.dual_tone_mac(xr.data(), xi.data(), tone_a.data(), tone_b.data(), n);
      const DualToneAccum want = scalar().dual_tone_mac(
          xr.data(), xi.data(), tone_a.data(), tone_b.data(), n);
      EXPECT_EQ(got.c0_re, want.c0_re) << backend_name(b) << " n=" << n;
      EXPECT_EQ(got.c0_im, want.c0_im) << backend_name(b) << " n=" << n;
      EXPECT_EQ(got.c1_re, want.c1_re) << backend_name(b) << " n=" << n;
      EXPECT_EQ(got.c1_im, want.c1_im) << backend_name(b) << " n=" << n;
    }
  }
}

TEST(Kernels, CmacMatchesScalarBitForBit) {
  for (Backend b : available_backends()) {
    const KernelTable& t = *backend_table(b);
    for (std::size_t n : kSizes) {
      const auto ir = random_plane(110 + n, n);
      const auto ii = random_plane(120 + n, n);
      auto got_re = random_plane(130 + n, n);
      auto got_im = random_plane(140 + n, n);
      auto want_re = got_re;
      auto want_im = got_im;
      const double gr = 0.37, gi = -1.21;
      t.cmac(got_re.data(), got_im.data(), ir.data(), ii.data(), gr, gi, n);
      scalar().cmac(want_re.data(), want_im.data(), ir.data(), ii.data(), gr,
                    gi, n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(got_re[i], want_re[i]) << backend_name(b) << " i=" << i;
        EXPECT_EQ(got_im[i], want_im[i]) << backend_name(b) << " i=" << i;
      }
    }
  }
}

TEST(Kernels, FirBlocksMatchScalarBitForBit) {
  for (Backend b : available_backends()) {
    const KernelTable& t = *backend_table(b);
    for (std::size_t taps : {1u, 2u, 5u, 33u}) {
      for (std::size_t m : kSizes) {
        const std::size_t ext = taps - 1 + m;
        const auto xr = random_plane(150 + m + taps, ext);
        const auto xi = random_plane(160 + m + taps, ext);
        const auto h = random_plane(170 + taps, taps);
        const auto hi = random_plane(180 + taps, taps);
        std::vector<double> gr(m), gi(m), wr(m), wi(m);
        t.fir_block_real(h.data(), taps, xr.data(), xi.data(), gr.data(),
                         gi.data(), m);
        scalar().fir_block_real(h.data(), taps, xr.data(), xi.data(),
                                wr.data(), wi.data(), m);
        for (std::size_t i = 0; i < m; ++i) {
          EXPECT_EQ(gr[i], wr[i]) << backend_name(b) << " real i=" << i;
          EXPECT_EQ(gi[i], wi[i]) << backend_name(b) << " real i=" << i;
        }
        t.fir_block_cplx(h.data(), hi.data(), taps, xr.data(), xi.data(),
                         gr.data(), gi.data(), m);
        scalar().fir_block_cplx(h.data(), hi.data(), taps, xr.data(),
                                xi.data(), wr.data(), wi.data(), m);
        for (std::size_t i = 0; i < m; ++i) {
          EXPECT_EQ(gr[i], wr[i]) << backend_name(b) << " cplx i=" << i;
          EXPECT_EQ(gi[i], wi[i]) << backend_name(b) << " cplx i=" << i;
        }
      }
    }
  }
}

// The packed-plane demod formulation (xr*a + xi*b with b pre-negated) must
// equal the original explicit-subtraction loop. Bit-exact in the default
// build; HS_NATIVE may contract this test-local loop into FMAs, so there
// the comparison is tolerance-based.
TEST(Kernels, DualToneMacMatchesOriginalLoopFormulation) {
  const std::size_t n = 257;
  const auto xr = random_plane(200, n);
  const auto xi = random_plane(201, n);
  const auto t0r = random_plane(202, n);
  const auto t0i = random_plane(203, n);
  const auto t1r = random_plane(204, n);
  const auto t1i = random_plane(205, n);
  std::vector<double> tone_a(4 * n), tone_b(4 * n);
  pack_dual_tones(t0r.data(), t0i.data(), t1r.data(), t1i.data(), n,
                  tone_a.data(), tone_b.data());
  const DualToneAccum got =
      dual_tone_mac(xr.data(), xi.data(), tone_a.data(), tone_b.data(), n);
  double c0r = 0.0, c0i = 0.0, c1r = 0.0, c1i = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    c0r += xr[i] * t0r[i] - xi[i] * t0i[i];
    c0i += xr[i] * t0i[i] + xi[i] * t0r[i];
    c1r += xr[i] * t1r[i] - xi[i] * t1i[i];
    c1i += xr[i] * t1i[i] + xi[i] * t1r[i];
  }
  expect_close(got.c0_re, c0r, "c0_re");
  expect_close(got.c0_im, c0i, "c0_im");
  expect_close(got.c1_re, c1r, "c1_re");
  expect_close(got.c1_im, c1i, "c1_im");
}

// Edge geometry pin: with ref_len < 6 the integer segment stride is zero,
// so the first five segments are empty and the whole reference lands in
// the final segment — the result degrades to the plain normalized
// correlation magnitude. Every backend must preserve this.
TEST(KernelsEdge, ShortReferenceFewerThanSegments) {
  const std::size_t n = 5;  // < kSegments
  const auto sr = random_plane(210, n);
  const auto si = random_plane(211, n);
  const auto rr = random_plane(212, n);
  const auto ri = random_plane(213, n);
  double ref_energy = 0.0;
  std::complex<double> acc{0.0, 0.0};
  double sig_energy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ref_energy += rr[i] * rr[i] + ri[i] * ri[i];
    acc += std::complex<double>(sr[i], si[i]) *
           std::conj(std::complex<double>(rr[i], ri[i]));
    sig_energy += sr[i] * sr[i] + si[i] * si[i];
  }
  const double want =
      std::abs(acc) / std::sqrt(std::max(sig_energy * ref_energy, 1e-30));
  for (Backend b : available_backends()) {
    const double got = backend_table(b)->segmented_sync_correlation(
        sr.data(), si.data(), rr.data(), ri.data(), n, ref_energy);
    expect_close(got, want, std::string("backend ") + backend_name(b));
  }
}

TEST(KernelsEdge, EmptyReferenceIsZero) {
  const double sig = 1.0;
  for (Backend b : available_backends()) {
    EXPECT_EQ(backend_table(b)->segmented_sync_correlation(&sig, &sig, &sig,
                                                           &sig, 0, 0.0),
              0.0)
        << backend_name(b);
  }
}

}  // namespace
}  // namespace hs::dsp::kernels
