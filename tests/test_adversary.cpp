#include <gtest/gtest.h>

#include "adversary/active.hpp"
#include "adversary/cross_traffic.hpp"
#include "adversary/eavesdropper.hpp"
#include "adversary/monitor.hpp"
#include "channel/geometry.hpp"
#include "dsp/units.hpp"
#include "imd/device.hpp"
#include "imd/profiles.hpp"
#include "imd/programmer.hpp"
#include "imd/protocol.hpp"
#include "shield/jamgen.hpp"
#include "sim/timeline.hpp"

namespace hs::adversary {
namespace {

using imd::make_interrogate;

TEST(Eavesdropper, PerfectDecodeWithoutJamming) {
  phy::FskParams fsk;
  phy::Frame f;
  f.device_id = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  f.payload.assign(16, 0x3C);
  const auto truth = phy::encode_frame(f);
  auto wave = phy::fsk_modulate(fsk, truth);
  dsp::Rng noise(1);
  dsp::Samples capture(1000 + wave.size());
  noise.fill_awgn(capture, dsp::dbm_to_mw(-112));
  const double amp = dsp::db_to_amplitude(-46);
  for (std::size_t i = 0; i < wave.size(); ++i) {
    capture[1000 + i] += amp * wave[i];
  }
  const auto result = eavesdrop_decode(fsk, capture, 1000, truth);
  EXPECT_EQ(result.ber, 0.0);
  EXPECT_EQ(result.bits, truth);
}

TEST(Eavesdropper, NearHalfBerUnderShapedJamming) {
  phy::FskParams fsk;
  phy::Frame f;
  f.device_id = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  f.payload.assign(32, 0xA7);
  const auto truth = phy::encode_frame(f);
  auto wave = phy::fsk_modulate(fsk, truth);
  shield::JammingSignalGenerator jam(fsk, shield::JamProfile::kShaped, 5);
  jam.set_power(dsp::db_to_power(20.0));  // 20 dB above the unit signal
  const auto j = jam.next(wave.size());
  for (std::size_t i = 0; i < wave.size(); ++i) wave[i] += j[i];
  const auto result = eavesdrop_decode(fsk, wave, 0, truth);
  EXPECT_GT(result.ber, 0.42);
  EXPECT_LT(result.ber, 0.58);
}

TEST(Eavesdropper, BandpassAttackBeatsConstantJamming) {
  // The filtering attack sheds out-of-band jamming energy: against a
  // constant-profile jammer it recovers a meaningfully lower BER than the
  // optimal wideband decoder sees against shaped jamming.
  phy::FskParams fsk;
  phy::Frame f;
  f.device_id = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  f.payload.assign(44, 0x55);
  const auto truth = phy::encode_frame(f);
  const auto clean = phy::fsk_modulate(fsk, truth);

  auto run = [&](shield::JamProfile profile, bool bandpass) {
    auto wave = clean;
    shield::JammingSignalGenerator jam(fsk, profile, 7);
    jam.set_power(dsp::db_to_power(8.0));
    const auto j = jam.next(wave.size());
    for (std::size_t i = 0; i < wave.size(); ++i) wave[i] += j[i];
    return bandpass ? eavesdrop_decode_bandpass(fsk, wave, 0, truth).ber
                    : eavesdrop_decode(fsk, wave, 0, truth).ber;
  };
  const double shaped = run(shield::JamProfile::kShaped, false);
  const double constant_filtered = run(shield::JamProfile::kConstant, true);
  EXPECT_LT(constant_filtered, shaped - 0.1);
}

class AirFixture : public ::testing::Test {
 protected:
  AirFixture()
      : profile_(imd::virtuoso_profile()),
        medium_(profile_.fsk.fs, 48, 31),
        timeline_(medium_),
        imd_(profile_, medium_, &timeline_.log(), 31) {
    timeline_.add_node(&imd_);
  }
  void warmup() { timeline_.run_for(2e-3); }
  imd::ImdProfile profile_;
  channel::Medium medium_;
  sim::Timeline timeline_;
  imd::ImdDevice imd_;
};

TEST_F(AirFixture, MonitorSeesFramesWithRssi) {
  MonitorConfig mcfg;
  mcfg.position = {2.0, 0};
  mcfg.fsk = profile_.fsk;
  MonitorNode monitor(mcfg, medium_);
  timeline_.add_node(&monitor);

  ActiveAdversaryConfig acfg;
  acfg.position = {1.0, 0};
  acfg.fsk = profile_.fsk;
  ActiveAdversaryNode adversary(acfg, medium_, &timeline_.log());
  timeline_.add_node(&adversary);

  warmup();
  adversary.inject(make_interrogate(profile_.serial, 4),
                   timeline_.sample_position() + 480);
  timeline_.run_for(30e-3);
  ASSERT_FALSE(monitor.frames().empty());
  const auto& frame = monitor.frames()[0];
  EXPECT_EQ(frame.decode.status, phy::DecodeStatus::kOk);
  EXPECT_EQ(frame.decode.frame.seq, 4);
  // RSSI consistent with the 1 m -> 2 m link (loss ~ at most tens of dB).
  EXPECT_GT(dsp::mw_to_dbm(frame.rssi), -70.0);
  EXPECT_LT(dsp::mw_to_dbm(frame.rssi), -20.0);
}

TEST_F(AirFixture, MonitorCaptureIsContiguous) {
  MonitorConfig mcfg;
  mcfg.position = {1.0, 0};
  mcfg.fsk = profile_.fsk;
  mcfg.capture_samples = true;
  MonitorNode monitor(mcfg, medium_);
  timeline_.add_node(&monitor);
  timeline_.run_for(2e-3);
  monitor.clear_capture();
  timeline_.run_for(3e-3);
  EXPECT_EQ(monitor.capture().size(),
            timeline_.sample_position() - monitor.capture_start());
}

TEST_F(AirFixture, ForgedCommandTriggersImd) {
  ActiveAdversaryConfig acfg;
  acfg.position = channel::testbed_location(3).position();
  acfg.fsk = profile_.fsk;
  ActiveAdversaryNode adversary(acfg, medium_, &timeline_.log());
  timeline_.add_node(&adversary);
  warmup();
  adversary.inject(make_interrogate(profile_.serial, 1),
                   timeline_.sample_position() + 480);
  timeline_.run_for(40e-3);
  EXPECT_EQ(imd_.stats().replies_sent, 1u);
}

TEST_F(AirFixture, RecordedProgrammerCommandReplaysSuccessfully) {
  // Section 9's replay methodology: record, demodulate to bits, then
  // re-modulate a clean copy.
  imd::ProgrammerConfig pcfg;
  pcfg.fsk = profile_.fsk;
  imd::ProgrammerNode programmer(pcfg, medium_, &timeline_.log());
  timeline_.add_node(&programmer);

  ActiveAdversaryConfig acfg;
  acfg.position = {3.0, 0};
  acfg.fsk = profile_.fsk;
  ActiveAdversaryNode adversary(acfg, medium_, &timeline_.log());
  timeline_.add_node(&adversary);
  warmup();

  programmer.send(make_interrogate(profile_.serial, 1));
  timeline_.run_for(40e-3);
  ASSERT_EQ(imd_.stats().replies_sent, 1u);
  ASSERT_FALSE(adversary.recordings().empty());

  // Replay the recorded command bits.
  const auto& recording = adversary.recordings()[0];
  adversary.replay(recording.raw_bits);
  timeline_.run_for(40e-3);
  EXPECT_EQ(imd_.stats().replies_sent, 2u);
}

TEST_F(AirFixture, PowerSettingChangesDeliveredPower) {
  ActiveAdversaryConfig acfg;
  acfg.position = {2.0, 0};
  acfg.fsk = profile_.fsk;
  ActiveAdversaryNode adversary(acfg, medium_, &timeline_.log());
  timeline_.add_node(&adversary);
  MonitorConfig mcfg;
  mcfg.position = {2.5, 0};
  mcfg.fsk = profile_.fsk;
  MonitorNode monitor(mcfg, medium_);
  timeline_.add_node(&monitor);
  warmup();

  adversary.inject(make_interrogate(profile_.serial, 1),
                   timeline_.sample_position() + 480);
  timeline_.run_for(40e-3);
  ASSERT_EQ(monitor.frames().size(), 2u);  // command + IMD reply
  const double rssi_low = monitor.frames()[0].rssi;

  adversary.set_tx_power_dbm(4.0);  // 100x
  EXPECT_DOUBLE_EQ(adversary.tx_power_dbm(), 4.0);
  adversary.inject(make_interrogate(profile_.serial, 2),
                   timeline_.sample_position() + 480);
  timeline_.run_for(40e-3);
  ASSERT_GE(monitor.frames().size(), 3u);
  const double rssi_high = monitor.frames()[2].rssi;
  EXPECT_NEAR(dsp::power_to_db(rssi_high / rssi_low), 20.0, 1.5);
}

TEST_F(AirFixture, CrossTrafficDoesNotTriggerImd) {
  CrossTrafficConfig ccfg;
  ccfg.position = {2.0, 0};
  CrossTrafficNode radiosonde(ccfg, medium_, 5);
  timeline_.add_node(&radiosonde);
  warmup();
  const auto [start, end] =
      radiosonde.send_frame(timeline_.sample_position() + 480);
  EXPECT_GT(end, start);
  timeline_.run_for(40e-3);
  EXPECT_EQ(radiosonde.frames_sent(), 1u);
  EXPECT_EQ(imd_.stats().frames_accepted, 0u);
  EXPECT_EQ(imd_.stats().replies_sent, 0u);
}

}  // namespace
}  // namespace hs::adversary
