// Fault-tolerant dispatcher correctness: (1) Dispatch.KillMatrix* — for
// K in {2,3,7} across three presets, kill EVERY shard after EVERY chunk
// count; the recovered merge must be byte-identical (CSV and JSON) to
// the serial canonical run. (2) stream faults (truncation, corruption)
// recover the same way; (3) a delayed straggler finishing after its
// chunks were re-dealt is suppressed without double-merging and the
// executed-trial accounting stays exact; (4) FaultPlan text form
// round-trips and rejects malformed specs; (5) recover_campaign folds
// damaged on-disk streams back to the serial bytes; (6) unrecoverable
// loss (max_rounds exhausted) raises DispatchError instead of emitting
// a short report.
//
// SubprocessExecutor is deliberately not unit-tested here: it shells
// out to campaign_runner, which unit tests cannot assume is built. CI's
// fault-injection job (run_sharded.py --inject) covers that transport
// end to end.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "campaign/chunk_stream.hpp"
#include "campaign/dispatch.hpp"
#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "campaign/scenario.hpp"
#include "campaign/shard.hpp"
#include "obs/metrics.hpp"

namespace hs::campaign {
namespace {

Scenario shrunk(const char* preset, std::vector<double> axis_values,
                std::size_t units_per_trial) {
  const Scenario* s = find_scenario(preset);
  EXPECT_NE(s, nullptr) << preset;
  Scenario out = *s;
  if (!axis_values.empty()) out.axis_values = std::move(axis_values);
  out.units_per_trial = units_per_trial;
  return out;
}

CampaignOptions small_options() {
  CampaignOptions opt;
  opt.seed = 13;
  opt.threads = 1;
  opt.trials_per_point = 4;
  return opt;
}

/// The ground truth every recovery must reproduce: the serial run,
/// canonicalized exactly like dispatch_campaign's fold.
struct Baseline {
  std::string csv;
  std::string json;
};

Baseline serial_baseline(const Scenario& s, const CampaignOptions& opt) {
  CampaignResult serial = run_campaign(s, opt);
  canonicalize(serial);
  return {to_csv(serial), to_json(serial)};
}

void expect_matches(const CampaignResult& result, const Baseline& want,
                    const std::string& label) {
  EXPECT_EQ(to_csv(result), want.csv) << label;
  EXPECT_EQ(to_json(result), want.json) << label;
}

/// Sweeps the full kill matrix for one preset: every shard of every K,
/// killed after every possible number of completed chunk records
/// (including "all of them", which still drops the trailer — a dead
/// shard with nothing missing).
void sweep_kill_matrix(const char* preset, std::vector<double> axis) {
  const Scenario s = shrunk(preset, std::move(axis), 1);
  const CampaignOptions opt = small_options();
  const Baseline want = serial_baseline(s, opt);
  for (std::size_t k : {std::size_t{2}, std::size_t{3}, std::size_t{7}}) {
    for (std::size_t shard = 0; shard < k; ++shard) {
      const std::size_t chunks = plan_shard(s, opt, k, shard).chunks.size();
      for (std::size_t after = 0; after <= chunks; ++after) {
        DispatchOptions d;
        d.shard_count = k;
        d.faults = FaultPlan::parse("kill:" + std::to_string(shard) + "@" +
                                    std::to_string(after));
        ThreadExecutor exec(s, opt, d.faults);
        DispatchReport rep;
        const CampaignResult got = dispatch_campaign(s, opt, d, exec, &rep);
        const std::string label = std::string(preset) + " K=" +
                                  std::to_string(k) + " kill:" +
                                  std::to_string(shard) + "@" +
                                  std::to_string(after);
        expect_matches(got, want, label);
        EXPECT_EQ(rep.shards_dead, 1u) << label;
        EXPECT_EQ(rep.chunks_redealt, chunks - after) << label;
        EXPECT_EQ(rep.metrics.report.counter(obs::Counter::kChunksRedealt),
                  chunks - after)
            << label;
        if (after < chunks) {
          EXPECT_GE(rep.tasks_retried, 1u) << label;
          EXPECT_EQ(rep.rounds, 1u) << label;
        } else {
          // Every record salvaged; only the trailer died with the shard.
          EXPECT_EQ(rep.tasks_retried, 0u) << label;
          EXPECT_EQ(rep.rounds, 0u) << label;
        }
      }
    }
  }
}

TEST(Dispatch, KillMatrixFig5JamShaped) { sweep_kill_matrix("fig5-jam-shaped", {}); }

TEST(Dispatch, KillMatrixFig8Tradeoff) { sweep_kill_matrix("fig8-tradeoff", {10, 20}); }

TEST(Dispatch, KillMatrixFig11Trigger) { sweep_kill_matrix("fig11-trigger", {1, 9}); }

TEST(Dispatch, NoFaultsIsByteIdenticalAndQuiet) {
  const Scenario s = shrunk("fig8-tradeoff", {10, 20}, 1);
  const CampaignOptions opt = small_options();
  const Baseline want = serial_baseline(s, opt);
  DispatchOptions d;
  d.shard_count = 3;
  ThreadExecutor exec(s, opt);
  DispatchReport rep;
  expect_matches(dispatch_campaign(s, opt, d, exec, &rep), want, "clean");
  EXPECT_EQ(rep.rounds, 0u);
  EXPECT_EQ(rep.chunks_redealt, 0u);
  EXPECT_EQ(rep.chunks_duplicate, 0u);
  EXPECT_EQ(rep.shards_dead, 0u);
  EXPECT_EQ(rep.shards_straggler, 0u);
  EXPECT_EQ(rep.streams_complete, 3u);
}

TEST(Dispatch, RecoversFromTruncationAndCorruption) {
  const Scenario s = shrunk("fig11-trigger", {1, 9}, 1);
  const CampaignOptions opt = small_options();
  const Baseline want = serial_baseline(s, opt);
  // Byte truncation deep enough to lose records, line truncation that
  // keeps only the header, and a single-byte corruption — on distinct
  // shards, all in one dispatch.
  DispatchOptions d;
  d.shard_count = 3;
  d.faults = FaultPlan::parse("trunc:0@120,truncl:1@1,corrupt:2@2");
  ThreadExecutor exec(s, opt, d.faults);
  DispatchReport rep;
  expect_matches(dispatch_campaign(s, opt, d, exec, &rep), want,
                 "trunc+corrupt");
  EXPECT_EQ(rep.shards_dead, 3u);
  EXPECT_GT(rep.chunks_redealt, 0u);
  EXPECT_EQ(rep.rounds, 1u);
}

TEST(Dispatch, StragglerAfterRedealDoesNotDoubleMerge) {
  const Scenario s = shrunk("fig9-eaves-ber", {4, 12}, 1);
  CampaignOptions opt = small_options();
  opt.chunk_size = 1;
  const Baseline want = serial_baseline(s, opt);
  const std::size_t straggler_chunks = plan_shard(s, opt, 2, 1).chunks.size();

  DispatchOptions d;
  d.shard_count = 2;
  // Shard 1's (complete, correct) stream arrives two collect waves late:
  // after its chunks were re-dealt and the repair results merged.
  d.faults = FaultPlan::parse("delay:1@2");
  ThreadExecutor exec(s, opt, d.faults);
  DispatchReport rep;
  const CampaignResult got = dispatch_campaign(s, opt, d, exec, &rep);
  expect_matches(got, want, "straggler");

  EXPECT_EQ(rep.shards_straggler, 1u);
  EXPECT_EQ(rep.chunks_duplicate, straggler_chunks);
  EXPECT_EQ(rep.chunks_redealt, straggler_chunks);
  EXPECT_EQ(got.total_trials, opt.trials_per_point * s.axis_values.size());

  // Executed-work accounting: every complete stream's trailer counts —
  // the straggler AND the repair tasks that re-ran its chunks. With
  // chunk_size=1, executed trials exceed merged trials by exactly the
  // suppressed duplicates, and the deployment pool accounts for every
  // executed trial.
  const obs::Report& m = rep.metrics.report;
  EXPECT_EQ(m.counter(obs::Counter::kTrials),
            got.total_trials + rep.chunks_duplicate);
  EXPECT_EQ(m.counter(obs::Counter::kDeploymentsBuilt) +
                m.counter(obs::Counter::kDeploymentsReused),
            m.counter(obs::Counter::kTrials));
  EXPECT_EQ(m.counter(obs::Counter::kShardsStraggler), 1u);
  EXPECT_EQ(m.counter(obs::Counter::kChunksDuplicate), straggler_chunks);
}

TEST(Dispatch, UnrecoverableLossRaisesAfterMaxRounds) {
  const Scenario s = shrunk("fig5-jam-shaped", {}, 1);
  const CampaignOptions opt = small_options();
  DispatchOptions d;
  d.shard_count = 2;
  d.max_rounds = 0;  // any loss is immediately unrecoverable
  d.faults = FaultPlan::parse("kill:1@0");
  ThreadExecutor exec(s, opt, d.faults);
  EXPECT_THROW(dispatch_campaign(s, opt, d, exec), DispatchError);
}

TEST(FaultPlanSpec, ParsesAndRoundTrips) {
  const FaultPlan plan =
      FaultPlan::parse("kill:1@3, trunc:0@140; truncl:2@4,delay:1@2,corrupt:0@5");
  ASSERT_EQ(plan.faults.size(), 5u);
  EXPECT_EQ(plan.faults[0], (Fault{FaultKind::kKill, 1, 3}));
  EXPECT_EQ(plan.faults[1], (Fault{FaultKind::kTruncateBytes, 0, 140}));
  EXPECT_EQ(plan.faults[2], (Fault{FaultKind::kTruncateLines, 2, 4}));
  EXPECT_EQ(plan.faults[3], (Fault{FaultKind::kDelay, 1, 2}));
  EXPECT_EQ(plan.faults[4], (Fault{FaultKind::kCorrupt, 0, 5}));
  // The canonical text form parses back to the same plan.
  const FaultPlan again = FaultPlan::parse(plan.to_string());
  EXPECT_EQ(again.faults, plan.faults);
  EXPECT_EQ(plan.delay_waves(1), 2u);
  EXPECT_EQ(plan.delay_waves(0), 0u);
  EXPECT_EQ(plan.for_shard(0).faults.size(), 2u);
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_TRUE(FaultPlan::parse("  ").empty());
}

TEST(FaultPlanSpec, RejectsMalformedTokens) {
  EXPECT_THROW(FaultPlan::parse("explode:1@3"), DispatchError);
  EXPECT_THROW(FaultPlan::parse("kill:1"), DispatchError);
  EXPECT_THROW(FaultPlan::parse("kill@3"), DispatchError);
  EXPECT_THROW(FaultPlan::parse("kill:x@3"), DispatchError);
  EXPECT_THROW(FaultPlan::parse("kill:1@"), DispatchError);
  EXPECT_THROW(FaultPlan::parse("kill:1@3x"), DispatchError);
}

TEST(FaultPlanSpec, StreamFaultsAreDeterministic) {
  const Scenario s = shrunk("fig5-jam-shaped", {}, 1);
  const CampaignOptions opt = small_options();
  const std::string text = serialize_chunk_stream(
      s, opt, run_campaign_shard(s, opt, 1, 0));
  const FaultPlan plan = FaultPlan::parse("kill:0@1,corrupt:0@2");
  bool killed_a = false;
  bool killed_b = false;
  const std::string a = apply_stream_faults(plan, 0, text, &killed_a);
  const std::string b = apply_stream_faults(plan, 0, text, &killed_b);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(killed_a);
  EXPECT_LT(a.size(), text.size());
  // Faults for another shard leave the stream untouched.
  bool killed_other = false;
  EXPECT_EQ(apply_stream_faults(plan, 1, text, &killed_other), text);
  EXPECT_FALSE(killed_other);
}

TEST(Recover, FoldsDamagedStreamsBackToSerialBytes) {
  const Scenario s = shrunk("fig8-tradeoff", {10, 20}, 1);
  const CampaignOptions opt = small_options();
  const Baseline want = serial_baseline(s, opt);
  const std::size_t k = 3;
  // Shard 0 intact, shard 1 killed after 1 record, shard 2 missing
  // entirely (its file was never written).
  const FaultPlan faults = FaultPlan::parse("kill:1@1");
  std::vector<SalvagedStream> streams;
  for (std::size_t i = 0; i < 2; ++i) {
    std::string text = serialize_chunk_stream(
        s, opt, run_campaign_shard(s, opt, k, i));
    bool killed = false;
    text = apply_stream_faults(faults, i, std::move(text), &killed);
    streams.push_back(
        salvage_chunk_stream(text, "shard-" + std::to_string(i)));
  }
  SalvagedStream missing;
  missing.source = "shard-2";
  streams.push_back(missing);

  DispatchReport rep;
  expect_matches(recover_campaign(s, opt, streams, &rep), want, "recover");
  EXPECT_EQ(rep.shards_dead, 2u);
  EXPECT_GT(rep.chunks_redealt, 0u);
  // The intact input stream plus the in-process repair execution both
  // contribute complete trailers.
  EXPECT_EQ(rep.streams_complete, 2u);
}

TEST(Recover, AllStreamsInvalidRaises) {
  const Scenario s = shrunk("fig5-jam-shaped", {}, 1);
  const CampaignOptions opt = small_options();
  std::vector<SalvagedStream> streams(2);
  streams[0].source = "a";
  streams[1].source = "b";
  EXPECT_THROW(recover_campaign(s, opt, streams), DispatchError);
}

}  // namespace
}  // namespace hs::campaign
