#include <gtest/gtest.h>

#include <cmath>

#include "dsp/correlate.hpp"
#include "dsp/mixer.hpp"
#include "dsp/rng.hpp"
#include "dsp/resample.hpp"
#include "dsp/spectrum.hpp"

namespace hs::dsp {
namespace {

Samples random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Samples s(n);
  rng.fill_awgn(s, 1.0);
  return s;
}

TEST(Correlate, PeakAtEmbeddedOffset) {
  const auto ref = random_signal(64, 1);
  Samples sig(400, cplx{});
  const std::size_t offset = 123;
  for (std::size_t i = 0; i < ref.size(); ++i) sig[offset + i] = ref[i];
  const auto peak = find_peak(sig, ref);
  EXPECT_EQ(peak.lag, offset);
  EXPECT_NEAR(peak.magnitude, 1.0, 1e-9);
}

TEST(Correlate, ScaledRotatedCopyStillCorrelatesPerfectly) {
  const auto ref = random_signal(64, 2);
  Samples sig(200, cplx{});
  const cplx gain = 0.3 * cplx(std::cos(1.1), std::sin(1.1));
  for (std::size_t i = 0; i < ref.size(); ++i) sig[50 + i] = gain * ref[i];
  const auto peak = find_peak(sig, ref);
  EXPECT_EQ(peak.lag, 50u);
  EXPECT_NEAR(peak.magnitude, 1.0, 1e-9);
}

TEST(Correlate, NoiseOnlyCorrelatesWeakly) {
  const auto ref = random_signal(64, 3);
  const auto sig = random_signal(1000, 4);
  const auto peak = find_peak(sig, ref);
  EXPECT_LT(peak.magnitude, 0.6);
}

TEST(Correlate, TooShortSignalReturnsZero) {
  const auto ref = random_signal(64, 5);
  const auto sig = random_signal(32, 6);
  EXPECT_EQ(find_peak(sig, ref).magnitude, 0.0);
  EXPECT_TRUE(cross_correlate(sig, ref).empty());
}

TEST(Correlate, CrossCorrelateValues) {
  Samples sig = {cplx{1, 0}, cplx{2, 0}, cplx{3, 0}};
  Samples ref = {cplx{1, 0}, cplx{1, 0}};
  const auto xc = cross_correlate(sig, ref);
  ASSERT_EQ(xc.size(), 2u);
  EXPECT_NEAR(xc[0].real(), 3.0, 1e-12);
  EXPECT_NEAR(xc[1].real(), 5.0, 1e-12);
}

// Regression: the sliding win_energy update used to accumulate rounding
// error without bound; after a loud burst the residual dwarfed a quiet
// tail's true window energy and corrupted every later lag's denominator.
// The fix recomputes the window exactly every reference.size() lags, so
// each lag must now match a per-lag exact reference within tight relative
// error — across six orders of magnitude of signal dynamic range — and
// the AoS and SoA overloads must stay bit-identical.
TEST(Correlate, WindowEnergyDoesNotDriftOverHighDynamicRangeSignal) {
  const std::size_t ref_len = 64;
  const auto ref = random_signal(ref_len, 7);
  Samples sig = random_signal(4096, 8);
  // Loud leading burst, then a very quiet tail.
  for (std::size_t i = 0; i < sig.size(); ++i) {
    sig[i] *= (i < 512) ? 1e6 : 1e-6;
  }
  const auto aos = normalized_correlation(sig, ref);
  const SoaSamples sig_soa = to_soa(sig);
  const SoaSamples ref_soa = to_soa(ref);
  const auto soa = normalized_correlation(sig_soa.view(), ref_soa.view());
  ASSERT_EQ(aos.size(), soa.size());
  double ref_energy = 0.0;
  for (cplx r : ref) ref_energy += std::norm(r);
  for (std::size_t k = 0; k < aos.size(); ++k) {
    EXPECT_EQ(aos[k], soa[k]) << "lag " << k;
    cplx acc{};
    double win = 0.0;
    for (std::size_t i = 0; i < ref_len; ++i) {
      acc += sig[k + i] * std::conj(ref[i]);
      win += std::norm(sig[k + i]);
    }
    const double exact =
        std::abs(acc) / std::sqrt(ref_energy * std::max(win, 1e-30));
    EXPECT_NEAR(aos[k], exact, 1e-9 * std::max(exact, 1.0)) << "lag " << k;
  }
}

TEST(EstimateFlatChannel, RecoversGain) {
  const auto ref = random_signal(256, 7);
  const cplx h(0.01, -0.02);
  Samples rx(ref.size());
  Rng noise(8);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    rx[i] = h * ref[i] + noise.cgaussian(1e-8);
  }
  const cplx est = estimate_flat_channel(rx, ref);
  EXPECT_NEAR(std::abs(est - h), 0.0, 1e-3 * std::abs(h));
}

TEST(EstimateFlatChannel, ZeroReferenceGivesZero) {
  Samples ref(16, cplx{});
  Samples rx(16, cplx{1.0, 0.0});
  EXPECT_EQ(estimate_flat_channel(rx, ref), cplx{});
}

TEST(Mixer, ShiftsToneFrequency) {
  const double fs = 300e3;
  Mixer mixer(40e3, fs);
  Samples dc(4096, cplx{1.0, 0.0});
  const auto shifted = mixer.process(dc);
  const auto psd = welch_psd(shifted, fs);
  std::size_t peak = 0;
  for (std::size_t i = 1; i < psd.power.size(); ++i) {
    if (psd.power[i] > psd.power[peak]) peak = i;
  }
  EXPECT_NEAR(psd.freq_hz[peak], 40e3, fs / 256.0);
}

TEST(Mixer, PhaseContinuousAcrossBlocks) {
  const double fs = 300e3;
  Mixer one(35e3, fs);
  Samples input(512, cplx{1.0, 0.0});
  const auto batch = one.process(input);
  Mixer two(35e3, fs);
  Samples streamed;
  for (std::size_t i = 0; i < input.size(); i += 37) {
    const std::size_t n = std::min<std::size_t>(37, input.size() - i);
    two.process(SampleView(input.data() + i, n), streamed);
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_NEAR(std::abs(batch[i] - streamed[i]), 0.0, 1e-9);
  }
}

TEST(Mixer, PreservesPower) {
  Mixer mixer(12.3e3, 300e3);
  const auto sig = random_signal(2048, 9);
  const auto out = mixer.process(sig);
  double pin = 0, pout = 0;
  for (const auto& x : sig) pin += std::norm(x);
  for (const auto& x : out) pout += std::norm(x);
  EXPECT_NEAR(pout, pin, 1e-6 * pin);
}

class CfoSweep : public ::testing::TestWithParam<double> {};

TEST_P(CfoSweep, EstimateRecoversOffset) {
  const double offset = GetParam();
  const double fs = 300e3;
  const auto ref = random_signal(1024, 10);
  const auto rx = apply_cfo(ref, offset, fs);
  const double est = estimate_cfo(rx, ref, fs);
  EXPECT_NEAR(est, offset, 5.0);  // within 5 Hz
}

INSTANTIATE_TEST_SUITE_P(Offsets, CfoSweep,
                         ::testing::Values(-5000.0, -800.0, -50.0, 0.0, 50.0,
                                           800.0, 5000.0));

TEST(Cfo, DegenerateInputsGiveZero) {
  EXPECT_EQ(estimate_cfo({}, {}, 300e3), 0.0);
  Samples one(1, cplx{1.0, 0.0});
  EXPECT_EQ(estimate_cfo(one, one, 300e3), 0.0);
}

TEST(Resample, DecimateInterpolateRoundTripTone) {
  const double fs = 300e3;
  // A tone well inside the decimated band.
  Samples tone(6000);
  for (std::size_t i = 0; i < tone.size(); ++i) {
    const double phase = kTwoPi * 5e3 / fs * static_cast<double>(i);
    tone[i] = {std::cos(phase), std::sin(phase)};
  }
  Decimator dec(10);
  const auto low = dec.process(tone);
  EXPECT_EQ(low.size(), tone.size() / 10);
  Interpolator interp(10);
  const auto back = interp.process(low);
  EXPECT_EQ(back.size(), low.size() * 10);
  // Steady-state power preserved (skip filter transients).
  double p = 0;
  const std::size_t skip = 2000;
  for (std::size_t i = skip; i < back.size(); ++i) p += std::norm(back[i]);
  p /= static_cast<double>(back.size() - skip);
  EXPECT_NEAR(p, 1.0, 0.1);
}

TEST(Resample, DecimatorRejectsOutOfBandTone) {
  const double fs = 300e3;
  // A tone beyond the decimated Nyquist (15 kHz for factor 10): 100 kHz.
  Samples tone(6000);
  for (std::size_t i = 0; i < tone.size(); ++i) {
    const double phase = kTwoPi * 100e3 / fs * static_cast<double>(i);
    tone[i] = {std::cos(phase), std::sin(phase)};
  }
  Decimator dec(10);
  const auto low = dec.process(tone);
  double p = 0;
  for (std::size_t i = 100; i < low.size(); ++i) p += std::norm(low[i]);
  p /= static_cast<double>(low.size() - 100);
  EXPECT_LT(p, 1e-4);
}

TEST(Resample, FactorOnePassesThrough) {
  Decimator dec(1);
  const auto sig = random_signal(100, 11);
  const auto out = dec.process(sig);
  ASSERT_EQ(out.size(), sig.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(std::abs(out[i] - sig[i]), 0.0, 1e-12);
  }
}

TEST(Resample, ZeroFactorThrows) {
  EXPECT_THROW(Decimator(0), std::invalid_argument);
}

}  // namespace
}  // namespace hs::dsp
