#include <gtest/gtest.h>

#include "channel/medium.hpp"
#include "sim/timeline.hpp"
#include "sim/trace.hpp"
#include "sim/transmit_scheduler.hpp"

namespace hs::sim {
namespace {

TEST(TransmitScheduler, FillSlicesAcrossBlocks) {
  TransmitScheduler sched;
  dsp::Samples wave(10);
  for (std::size_t i = 0; i < wave.size(); ++i) {
    wave[i] = {static_cast<double>(i + 1), 0.0};
  }
  sched.schedule(5, wave);  // occupies samples [5, 15)
  dsp::Samples block;
  EXPECT_TRUE(sched.fill(0, 8, block));  // block [0, 8): samples 5,6,7
  EXPECT_EQ(block[4], dsp::cplx{});
  EXPECT_EQ(block[5].real(), 1.0);
  EXPECT_EQ(block[7].real(), 3.0);
  EXPECT_TRUE(sched.fill(8, 8, block));  // block [8, 16): rest
  EXPECT_EQ(block[0].real(), 4.0);
  EXPECT_EQ(block[6].real(), 10.0);
  EXPECT_EQ(block[7], dsp::cplx{});
  EXPECT_FALSE(sched.fill(16, 8, block));  // done & expired
  EXPECT_TRUE(sched.empty());
}

TEST(TransmitScheduler, OverlappingWaveformsSuperpose) {
  TransmitScheduler sched;
  sched.schedule(0, dsp::Samples(4, dsp::cplx{1.0, 0.0}));
  sched.schedule(2, dsp::Samples(4, dsp::cplx{0.0, 1.0}));
  dsp::Samples block;
  sched.fill(0, 8, block);
  EXPECT_EQ(block[1], (dsp::cplx{1.0, 0.0}));
  EXPECT_EQ(block[2], (dsp::cplx{1.0, 1.0}));
  EXPECT_EQ(block[5], (dsp::cplx{0.0, 1.0}));
  EXPECT_EQ(block[6], dsp::cplx{});
}

TEST(TransmitScheduler, BusyQueries) {
  TransmitScheduler sched;
  sched.schedule(10, dsp::Samples(5, dsp::cplx{1.0, 0.0}));
  EXPECT_FALSE(sched.busy_at(9));
  EXPECT_TRUE(sched.busy_at(10));
  EXPECT_TRUE(sched.busy_at(14));
  EXPECT_FALSE(sched.busy_at(15));
  EXPECT_EQ(sched.busy_until(), 15u);
}

TEST(TransmitScheduler, CancelAll) {
  TransmitScheduler sched;
  sched.schedule(0, dsp::Samples(100, dsp::cplx{1.0, 0.0}));
  sched.cancel_all();
  dsp::Samples block;
  EXPECT_FALSE(sched.fill(0, 10, block));
  EXPECT_TRUE(sched.empty());
}

TEST(TransmitScheduler, EmptyWaveformIgnored) {
  TransmitScheduler sched;
  sched.schedule(0, {});
  EXPECT_TRUE(sched.empty());
}

TEST(EventLog, RecordFilterCount) {
  EventLog log;
  log.record(0.1, "shield", EventKind::kJamStart, "active");
  log.record(0.2, "imd", EventKind::kFrameReceived, "interrogate");
  log.record(0.3, "shield", EventKind::kJamEnd);
  log.record(0.4, "shield", EventKind::kJamStart, "passive");
  EXPECT_EQ(log.count(EventKind::kJamStart), 2u);
  EXPECT_EQ(log.count(EventKind::kJamStart, "shield"), 2u);
  EXPECT_EQ(log.count(EventKind::kJamStart, "imd"), 0u);
  const auto starts = log.filter(EventKind::kJamStart);
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_EQ(starts[0].detail, "active");
  EXPECT_EQ(starts[1].detail, "passive");
  EXPECT_NE(log.to_string().find("jam-start"), std::string::npos);
  log.clear();
  EXPECT_TRUE(log.events().empty());
}

TEST(EventLog, KindNamesExist) {
  EXPECT_STREQ(event_kind_name(EventKind::kAlarm), "alarm");
  EXPECT_STREQ(event_kind_name(EventKind::kProbe), "probe");
  EXPECT_STREQ(event_kind_name(EventKind::kCommandExecuted),
               "command-executed");
}

/// A node that transmits a known block and reports what it hears; used to
/// verify the produce -> mix -> consume contract (one-block feedback).
class LoopbackProbeNode : public RadioNode {
 public:
  LoopbackProbeNode(channel::Medium& medium, channel::AntennaId peer)
      : peer_(peer) {
    channel::AntennaDesc desc;
    desc.position = {1.0, 0};
    antenna_ = medium.add_antenna(desc);
  }
  void produce(const StepContext& ctx, channel::Medium& medium) override {
    dsp::Samples block(ctx.block_size,
                       dsp::cplx{static_cast<double>(ctx.block_index + 1),
                                 0.0});
    medium.set_tx(antenna_, block);
  }
  void consume(const StepContext&, channel::Medium& medium) override {
    heard_.push_back(medium.rx(peer_)[0]);
  }
  channel::AntennaId antenna() const { return antenna_; }
  std::string_view name() const override { return "loopback"; }
  std::vector<dsp::cplx> heard_;

 private:
  channel::AntennaId antenna_;
  channel::AntennaId peer_;
};

TEST(Timeline, ProduceMixConsumeWithinOneBlock) {
  channel::Medium medium(300e3, 16, 1);
  medium.set_noise_enabled(false);
  channel::AntennaDesc peer_desc;  // receive-only antenna at origin
  const auto peer = medium.add_antenna(peer_desc);
  Timeline timeline(medium);
  LoopbackProbeNode node(medium, peer);
  timeline.add_node(&node);
  timeline.step();
  timeline.step();
  timeline.step();
  // consume(k) sees what produce(k) emitted, scaled by the channel gain.
  const double g = std::abs(medium.gain(node.antenna(), peer));
  ASSERT_EQ(node.heard_.size(), 3u);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_NEAR(std::abs(node.heard_[k]),
                g * static_cast<double>(k + 1), 1e-12);
  }
}

TEST(Timeline, ClockBookkeeping) {
  channel::Medium medium(300e3, 48, 2);
  Timeline timeline(medium);
  EXPECT_EQ(timeline.block_index(), 0u);
  EXPECT_DOUBLE_EQ(timeline.now_s(), 0.0);
  timeline.run_for(1e-3);  // 300 samples => 7 blocks of 48 = 336
  EXPECT_EQ(timeline.block_index(), 7u);
  EXPECT_NEAR(timeline.now_s(), 336.0 / 300e3, 1e-12);
}

TEST(Timeline, RunUntilPredicate) {
  channel::Medium medium(300e3, 48, 3);
  Timeline timeline(medium);
  const bool fired = timeline.run_until(
      [&] { return timeline.block_index() >= 5; }, /*max_seconds=*/1.0);
  EXPECT_TRUE(fired);
  EXPECT_EQ(timeline.block_index(), 5u);
  const bool never = timeline.run_until([] { return false; }, 1e-3);
  EXPECT_FALSE(never);
}

TEST(StepContext, DerivedQuantities) {
  StepContext ctx;
  ctx.block_index = 10;
  ctx.block_size = 48;
  ctx.fs = 300e3;
  EXPECT_EQ(ctx.block_start_sample(), 480u);
  EXPECT_NEAR(ctx.block_start_s(), 480.0 / 300e3, 1e-15);
  EXPECT_NEAR(ctx.sample_duration_s(), 1.0 / 300e3, 1e-18);
}

}  // namespace
}  // namespace hs::sim
