#include <gtest/gtest.h>

#include <cmath>

#include "dsp/rng.hpp"
#include "dsp/power.hpp"

namespace hs::dsp {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, NamedStreamsAreIndependent) {
  Rng a(7, "thermal-noise"), b(7, "jamming");
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, NamedStreamIsDeterministic) {
  Rng a(7, "x"), b(7, "x");
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, HashStreamNameStable) {
  EXPECT_EQ(hash_stream_name("abc"), hash_stream_name("abc"));
  EXPECT_NE(hash_stream_name("abc"), hash_stream_name("abd"));
}

TEST(Rng, DeriveSeedMatchesSubstreamMechanism) {
  EXPECT_EQ(derive_seed(7, "x"), Rng(7, "x").next_u64());
  EXPECT_EQ(derive_seed(7, "x"), derive_seed(7, "x"));
  EXPECT_NE(derive_seed(7, "x"), derive_seed(7, "y"));
  EXPECT_NE(derive_seed(7, "x"), derive_seed(8, "x"));
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.5, 2.5);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 2.5);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(8);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformU64InRange) {
  Rng rng(9);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(rng.uniform_u64(17), 17u);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(10);
  const int n = 100000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianMeanStddev) {
  Rng rng(11);
  const int n = 50000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, ComplexGaussianPower) {
  Rng rng(12);
  const int n = 50000;
  double p = 0;
  for (int i = 0; i < n; ++i) p += std::norm(rng.cgaussian(3.0));
  EXPECT_NEAR(p / n, 3.0, 0.1);
}

TEST(Rng, RandomPhaseOnUnitCircle) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NEAR(std::abs(rng.random_phase()), 1.0, 1e-12);
  }
}

TEST(Rng, FillAwgnMatchesPower) {
  Rng rng(14);
  Samples buf(50000);
  rng.fill_awgn(buf, 0.25);
  EXPECT_NEAR(mean_power(buf), 0.25, 0.01);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(15);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformU64Unbiased) {
  Rng rng(GetParam());
  // Chi-square-lite: each of 8 buckets should get roughly n/8.
  const int n = 40000;
  int buckets[8] = {0};
  for (int i = 0; i < n; ++i) ++buckets[rng.uniform_u64(8)];
  for (int b : buckets) {
    EXPECT_NEAR(static_cast<double>(b), n / 8.0, 0.08 * n / 8.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1, 2, 42, 1234567, 0xdeadbeef));

}  // namespace
}  // namespace hs::dsp
