// Numeric baseline for the opt-in HS_NATIVE build flavor.
//
// The default build's outputs are byte-pinned (canonical CSV/JSON identity
// tests); HS_NATIVE (-march=native -ffp-contract=fast) deliberately trades
// that for host-tuned codegen, so its gate is this tolerance-based
// baseline instead: shrunk campaigns over the genuine trial code paths
// whose per-point metric means must stay within a physically meaningful
// band of the default build's pinned values. Rounding drift moves these
// by ~1e-15 relative per op (plus occasional borderline bit decisions);
// the tolerances below are orders of magnitude above that but far below
// any real regression (a broken kernel, a sign flip, NaN poisoning).
//
// The suite also runs in the default build, where every comparison is
// exact-by-construction — so the pins themselves cannot rot unnoticed.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "campaign/scenario.hpp"

namespace hs::campaign {
namespace {

Scenario shrunk(const char* preset, std::vector<double> axis_values,
                std::size_t units_per_trial) {
  const Scenario* s = find_scenario(preset);
  EXPECT_NE(s, nullptr) << preset;
  Scenario out = *s;
  if (!axis_values.empty()) out.axis_values = std::move(axis_values);
  out.units_per_trial = units_per_trial;
  return out;
}

struct Pin {
  const char* scenario;
  std::size_t point;
  const char* metric;
  double mean;       // default-build value (seed 1, shrunk sweeps below)
  double tolerance;  // absolute band HS_NATIVE must stay inside
};

// Regenerate with the default build if a behavior-changing PR moves the
// exact values (the default-build run of this suite will say so):
// run the shrunk sweeps below at seed 1 and paste the new means.
const Pin kPins[] = {
    {"fig9-eaves-ber", 0, "adversary_ber", 0.48309748427672949, 0.05},
    {"fig9-eaves-ber", 0, "shield_packet_loss", 0.0, 0.05},
    {"fig9-eaves-ber", 1, "adversary_ber", 0.49056603773584906, 0.05},
    {"fig9-eaves-ber", 1, "shield_packet_loss", 0.0, 0.05},
    {"fig5-jam-shaped", 0, "tone_band_fraction", 0.91525394134746518, 0.02},
};

CampaignResult run_shrunk(const Scenario& s, std::size_t trials) {
  CampaignOptions opt;
  opt.seed = 1;
  opt.trials_per_point = trials;
  opt.threads = 1;
  return run_campaign(s, opt);
}

void check_pins(const Scenario& s, const CampaignResult& res) {
  for (const Pin& pin : kPins) {
    if (s.name != pin.scenario) continue;
    Metric m{};
    ASSERT_TRUE(metric_from_name(pin.metric, &m)) << pin.metric;
    ASSERT_LT(pin.point, res.points.size());
    const double got =
        res.points[pin.point].metrics[static_cast<std::size_t>(m)].mean();
    EXPECT_TRUE(std::isfinite(got))
        << s.name << " point " << pin.point << " " << pin.metric;
    EXPECT_NEAR(got, pin.mean, pin.tolerance)
        << s.name << " point " << pin.point << " " << pin.metric
        << " drifted outside the flavor baseline";
#if !defined(HS_NATIVE)
    // Default build: the pins are exact by construction; a mismatch here
    // means a PR changed behavior and the table needs regenerating.
    EXPECT_EQ(got, pin.mean)
        << s.name << " point " << pin.point << " " << pin.metric
        << " — default build moved; regenerate the pin table";
#endif
  }
}

TEST(NativeBaseline, EavesdropBerWithinFlavorBand) {
  const Scenario s = shrunk("fig9-eaves-ber", {3.0, 11.0}, 1);
  check_pins(s, run_shrunk(s, 6));
}

TEST(NativeBaseline, ShapedJammingSpectrumWithinFlavorBand) {
  const Scenario s = shrunk("fig5-jam-shaped", {}, 1);
  check_pins(s, run_shrunk(s, 4));
}

}  // namespace
}  // namespace hs::campaign
