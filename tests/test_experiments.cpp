// Experiment-driver integration tests: small versions of the paper's
// evaluation runs, asserting on the qualitative results the benches print.
#include <gtest/gtest.h>

#include "channel/geometry.hpp"
#include "shield/calibrate.hpp"
#include "shield/experiments.hpp"

namespace hs::shield {
namespace {

TEST(EavesdropExperiment, HalfBerAtAdversaryZeroLossAtShield) {
  EavesdropOptions opt;
  opt.seed = 21;
  opt.location_index = 1;
  opt.packets = 15;
  const auto result = run_eavesdrop_experiment(opt);
  EXPECT_EQ(result.imd_packets, 15u);
  EXPECT_GT(result.mean_ber(), 0.42);
  EXPECT_LT(result.mean_ber(), 0.58);
  EXPECT_LE(result.shield_packet_loss(), 0.1);
}

TEST(EavesdropExperiment, BerIndependentOfLocation) {
  // Equation 7: the eavesdropper's SINR (hence BER) does not depend on
  // where it sits.
  double near_ber = 0, far_ber = 0;
  for (int loc : {1, 13}) {
    EavesdropOptions opt;
    opt.seed = 22;
    opt.location_index = loc;
    opt.packets = 12;
    const auto result = run_eavesdrop_experiment(opt);
    (loc == 1 ? near_ber : far_ber) = result.mean_ber();
  }
  EXPECT_NEAR(near_ber, far_ber, 0.08);
  EXPECT_GT(near_ber, 0.4);
}

TEST(EavesdropExperiment, LowJamMarginLeaksBits) {
  // Fig. 8(a): at low jamming margin the adversary recovers bits.
  EavesdropOptions opt;
  opt.seed = 23;
  opt.location_index = 1;
  opt.packets = 12;
  opt.use_margin_override = true;
  opt.jam_margin_db = 0.0;
  const auto result = run_eavesdrop_experiment(opt);
  EXPECT_LT(result.mean_ber(), 0.25);
}

TEST(EavesdropExperiment, WithoutShieldAdversaryDecodesPerfectly) {
  EavesdropOptions opt;
  opt.seed = 24;
  opt.location_index = 1;
  opt.packets = 8;
  opt.shield_present = false;
  const auto result = run_eavesdrop_experiment(opt);
  EXPECT_LT(result.mean_ber(), 0.01);
}

TEST(AttackExperiment, ShieldBlocksFccAdversaryEverywhere) {
  for (int loc : {1, 5, 8}) {
    AttackOptions opt;
    opt.seed = 25;
    opt.location_index = loc;
    opt.trials = 10;
    opt.shield_present = true;
    const auto result = run_attack_experiment(opt);
    EXPECT_EQ(result.successes, 0u) << "location " << loc;
  }
}

TEST(AttackExperiment, WithoutShieldNearbyAttacksSucceed) {
  AttackOptions opt;
  opt.seed = 26;
  opt.location_index = 1;
  opt.trials = 10;
  opt.shield_present = false;
  const auto result = run_attack_experiment(opt);
  EXPECT_EQ(result.successes, 10u);
  EXPECT_GT(result.battery_energy_spent_mj, 0.0);
}

TEST(AttackExperiment, RangeBoundaryMatchesPaperShape) {
  // Fig. 11's shape: success probability decays with location index and
  // dies in the far NLOS field.
  AttackOptions opt;
  opt.seed = 27;
  opt.trials = 12;
  opt.shield_present = false;
  opt.location_index = 8;
  const auto mid = run_attack_experiment(opt);
  opt.location_index = 10;
  const auto far = run_attack_experiment(opt);
  EXPECT_GT(mid.success_probability(), 0.2);
  EXPECT_EQ(far.successes, 0u);
}

TEST(AttackExperiment, HighPowerExtendsRangeWithoutShield) {
  AttackOptions opt;
  opt.seed = 28;
  opt.trials = 10;
  opt.shield_present = false;
  opt.location_index = 11;  // dead for FCC power
  const auto fcc = run_attack_experiment(opt);
  opt.extra_power_db = 20.0;
  const auto high = run_attack_experiment(opt);
  EXPECT_EQ(fcc.successes, 0u);
  // Location 11 sits near the 100x adversary's range boundary (Fig. 13
  // shows ~0.92 at their location 11); anything clearly nonzero shows the
  // range extension.
  EXPECT_GT(high.success_probability(), 0.3);
}

TEST(AttackExperiment, TherapyAttackMirrorsTriggerAttack) {
  AttackOptions opt;
  opt.seed = 29;
  opt.location_index = 3;
  opt.trials = 10;
  opt.shield_present = false;
  opt.kind = AttackKind::kChangeTherapy;
  const auto result = run_attack_experiment(opt);
  EXPECT_EQ(result.successes, 10u);
}

TEST(CoexistenceExperiment, JamsImdTrafficNeverCrossTraffic) {
  CoexistenceOptions opt;
  opt.seed = 30;
  opt.location_indices = {1, 5};
  opt.rounds_per_location = 4;
  const auto result = run_coexistence_experiment(opt);
  EXPECT_EQ(result.imd_commands_sent, 8u);
  EXPECT_EQ(result.imd_commands_jammed, 8u);
  EXPECT_EQ(result.cross_frames_sent, 8u);
  EXPECT_EQ(result.cross_frames_jammed, 0u);
  // Turn-around time: sub-millisecond, as in Table 2.
  ASSERT_FALSE(result.turnaround_us.empty());
  for (double us : result.turnaround_us) {
    EXPECT_GT(us, 0.0);
    EXPECT_LT(us, 1000.0);
  }
}

TEST(CoexistenceExperiment, LongRunsNeverPoisonTheAntidote) {
  // Regression: a channel-estimation probe that collides with radiosonde
  // cross-traffic used to slip a wrong-phase estimate past the sanity
  // gates, breaking the antidote — after which the shield could no longer
  // see through its own jamming and kept jamming forever (missing every
  // subsequent command and squatting on the medium). Long alternating
  // runs across several locations must stay perfect.
  CoexistenceOptions opt;
  opt.seed = 1;
  opt.location_indices = {3, 5, 7};
  opt.rounds_per_location = 10;
  const auto result = run_coexistence_experiment(opt);
  EXPECT_EQ(result.imd_commands_jammed, result.imd_commands_sent);
  EXPECT_EQ(result.cross_frames_jammed, 0u);
  for (double us : result.turnaround_us) {
    EXPECT_LT(us, 1000.0);  // never stuck jamming past the packet end
  }
}

TEST(Calibration, PthreshBoundaryIsReasonable) {
  const auto result = measure_pthresh(/*seed=*/31, /*location_index=*/1,
                                      /*power_lo_dbm=*/-16.0,
                                      /*power_hi_dbm=*/14.0,
                                      /*power_step_db=*/3.0,
                                      /*packets_per_power=*/3);
  ASSERT_GT(result.successes, 0u);
  // Successes only happen once the adversary is strong; at this geometry
  // that means RSSI at the shield well above the FCC-power level (-26.5).
  EXPECT_GT(result.min_dbm, -24.0);
  EXPECT_LT(result.min_dbm, -5.0);
  EXPECT_GE(result.mean_dbm, result.min_dbm);
}

TEST(Calibration, BthreshConservativeDefault) {
  const auto result = estimate_bthresh(/*seed=*/32, /*packets=*/60);
  EXPECT_EQ(result.packets_sent, 60u);
  // Shield SNR dominates the IMD's by the in-body loss, so such packets
  // are vanishingly rare (the paper saw 3 in 5000).
  EXPECT_LE(result.shield_error_imd_ok, 2u);
  EXPECT_GE(result.recommended_bthresh, 4u);
}

}  // namespace
}  // namespace hs::shield
