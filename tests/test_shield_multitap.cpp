// Multipath antidote (paper footnote 2): when the antenna coupling is
// frequency-selective, the scalar antidote leaves a large residual while
// the FIR equalizer keeps cancelling.
#include <gtest/gtest.h>

#include <cmath>

#include "dsp/correlate.hpp"
#include "dsp/power.hpp"
#include "dsp/rng.hpp"
#include "shield/antidote.hpp"
#include "shield/jamgen.hpp"
#include "shield/multitap_antidote.hpp"

namespace hs::shield {
namespace {

using dsp::cplx;
using dsp::Samples;

Samples convolve(dsp::SampleView h, dsp::SampleView x) {
  Samples y(x.size(), cplx{});
  for (std::size_t n = 0; n < x.size(); ++n) {
    for (std::size_t k = 0; k < h.size() && k <= n; ++k) {
      y[n] += h[k] * x[n - k];
    }
  }
  return y;
}

/// Residual-to-jam ratio at a receive port where conv(hjr, j) and
/// conv(hself, antidote) superpose.
double measured_cancellation_db(dsp::SampleView hjr, dsp::SampleView hself,
                                dsp::SampleView jam,
                                dsp::SampleView antidote) {
  const auto via_air = convolve(hjr, jam);
  const auto via_wire = convolve(hself, antidote);
  double jam_power = 0.0, residual = 0.0;
  for (std::size_t n = 64; n < via_air.size(); ++n) {  // skip transients
    jam_power += std::norm(via_air[n]);
    residual += std::norm(via_air[n] + via_wire[n]);
  }
  return 10.0 * std::log10(jam_power / std::max(residual, 1e-30));
}

TEST(FirChannelEstimate, RecoversKnownTaps) {
  dsp::Rng rng(1);
  Samples probe(512);
  for (auto& x : probe) x = rng.random_phase();
  const Samples h = {cplx{0.02, 0.01}, cplx{-0.008, 0.004},
                     cplx{0.002, -0.001}};
  auto rx = convolve(h, probe);
  for (auto& x : rx) x += rng.cgaussian(1e-10);
  const auto est = estimate_fir_channel(rx, probe, 3);
  ASSERT_EQ(est.size(), 3u);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_NEAR(std::abs(est[k] - h[k]), 0.0, 5e-4) << "tap " << k;
  }
}

TEST(FirChannelEstimate, ExtraTapsEstimateNearZero) {
  dsp::Rng rng(2);
  Samples probe(512);
  for (auto& x : probe) x = rng.random_phase();
  const Samples h = {cplx{0.03, 0.0}};
  const auto rx = convolve(h, probe);
  const auto est = estimate_fir_channel(rx, probe, 4);
  EXPECT_NEAR(std::abs(est[0] - h[0]), 0.0, 1e-9);
  for (std::size_t k = 1; k < 4; ++k) {
    EXPECT_LT(std::abs(est[k]), 1e-9);
  }
}

TEST(FirChannelEstimate, RejectsDegenerateInput) {
  Samples probe(4, cplx{1.0, 0.0});
  Samples rx(4, cplx{});
  EXPECT_THROW(estimate_fir_channel(rx, probe, 0), std::invalid_argument);
  EXPECT_THROW(estimate_fir_channel(rx, probe, 3), std::invalid_argument);
}

TEST(MultitapAntidote, MatchesFlatAntidoteOnFlatChannels) {
  dsp::Rng rng(3);
  Samples probe(512);
  for (auto& x : probe) x = rng.random_phase();
  const Samples hjr = {cplx{0.03, -0.01}};
  const Samples hself = {cplx{0.65, 0.2}};

  MultitapAntidote antidote(2, 64);
  antidote.update_jam_channel(convolve(hjr, probe), probe);
  antidote.update_self_channel(convolve(hself, probe), probe);
  ASSERT_TRUE(antidote.ready());

  phy::FskParams fsk;
  JammingSignalGenerator gen(fsk, JamProfile::kShaped, 4);
  gen.set_power(1.0);
  const auto jam = gen.next(8192);
  const auto x = MultitapAntidote(antidote).antidote_for(jam);
  EXPECT_GT(measured_cancellation_db(hjr, hself, jam, x), 40.0);
}

TEST(MultitapAntidote, FlatAntidoteFailsOnMultipathMultitapSucceeds) {
  dsp::Rng rng(5);
  Samples probe(1024);
  for (auto& x : probe) x = rng.random_phase();
  // A strongly frequency-selective antenna coupling: second tap at -6 dB.
  const Samples hjr = {cplx{0.03, 0.0}, cplx{0.0, 0.015}};
  const Samples hself = {cplx{0.7, 0.0}};

  phy::FskParams fsk;
  JammingSignalGenerator gen(fsk, JamProfile::kShaped, 6);
  gen.set_power(1.0);
  const auto jam = gen.next(8192);

  // Flat (scalar) antidote, estimated the flat way.
  AntidoteController flat(0.0, 7);
  flat.update_jam_channel(
      dsp::estimate_flat_channel(convolve(hjr, probe), probe));
  flat.update_self_channel(
      dsp::estimate_flat_channel(convolve(hself, probe), probe));
  Samples flat_antidote(jam.size());
  const cplx coeff = flat.antidote_coefficient();
  for (std::size_t i = 0; i < jam.size(); ++i) {
    flat_antidote[i] = coeff * jam[i];
  }
  const double flat_db =
      measured_cancellation_db(hjr, hself, jam, flat_antidote);

  // FIR equalizer antidote.
  MultitapAntidote multitap(4, 64);
  multitap.update_jam_channel(convolve(hjr, probe), probe);
  multitap.update_self_channel(convolve(hself, probe), probe);
  const auto fir_antidote = multitap.antidote_for(jam);
  const double fir_db =
      measured_cancellation_db(hjr, hself, jam, fir_antidote);

  // The scalar antidote cannot null a two-tap channel (residual bounded
  // by the tap ratio ~ -6 dB => cancellation stuck around single digits);
  // the equalizer keeps cancelling deeply.
  EXPECT_LT(flat_db, 12.0);
  EXPECT_GT(fir_db, 30.0);
  EXPECT_GT(fir_db, flat_db + 15.0);
  EXPECT_GT(multitap.predicted_cancellation_db(), 30.0);
}

TEST(MultitapAntidote, SelfChannelMultipathAlsoHandled) {
  dsp::Rng rng(8);
  Samples probe(1024);
  for (auto& x : probe) x = rng.random_phase();
  const Samples hjr = {cplx{0.03, 0.0}};
  const Samples hself = {cplx{0.6, 0.0}, cplx{0.25, 0.1}};  // selective wire

  phy::FskParams fsk;
  JammingSignalGenerator gen(fsk, JamProfile::kShaped, 9);
  gen.set_power(1.0);
  const auto jam = gen.next(8192);

  MultitapAntidote multitap(4, 128);
  multitap.update_jam_channel(convolve(hjr, probe), probe);
  multitap.update_self_channel(convolve(hself, probe), probe);
  const auto x = multitap.antidote_for(jam);
  EXPECT_GT(measured_cancellation_db(hjr, hself, jam, x), 25.0);
}

TEST(MultitapAntidote, StreamingMatchesOneShot) {
  dsp::Rng rng(10);
  Samples probe(512);
  for (auto& x : probe) x = rng.random_phase();
  const Samples hjr = {cplx{0.02, 0.0}, cplx{0.01, 0.0}};
  const Samples hself = {cplx{0.7, 0.0}};
  MultitapAntidote one(3, 64), two(3, 64);
  for (auto* m : {&one, &two}) {
    m->update_jam_channel(convolve(hjr, probe), probe);
    m->update_self_channel(convolve(hself, probe), probe);
  }
  Samples jam(600);
  rng.fill_awgn(jam, 1.0);
  const auto batch = one.antidote_for(jam);
  Samples streamed;
  for (std::size_t i = 0; i < jam.size(); i += 48) {
    const std::size_t n = std::min<std::size_t>(48, jam.size() - i);
    const auto part = two.antidote_for(dsp::SampleView(jam.data() + i, n));
    streamed.insert(streamed.end(), part.begin(), part.end());
  }
  ASSERT_EQ(batch.size(), streamed.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_NEAR(std::abs(batch[i] - streamed[i]), 0.0, 1e-12);
  }
}

TEST(MultitapAntidote, NotReadyThrows) {
  MultitapAntidote antidote;
  Samples jam(16, cplx{1.0, 0.0});
  EXPECT_THROW(antidote.antidote_for(jam), std::logic_error);
  EXPECT_THROW(MultitapAntidote(4, 100), std::invalid_argument);
}

}  // namespace
}  // namespace hs::shield
