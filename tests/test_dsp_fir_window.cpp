#include <gtest/gtest.h>

#include <cmath>

#include "dsp/fir.hpp"
#include "dsp/rng.hpp"
#include "dsp/window.hpp"

namespace hs::dsp {
namespace {

TEST(Window, HannEndpointsAndPeak) {
  const auto w = make_window(WindowType::kHann, 65);
  EXPECT_NEAR(w.front(), 0.0, 1e-12);
  EXPECT_NEAR(w.back(), 0.0, 1e-12);
  EXPECT_NEAR(w[32], 1.0, 1e-12);
}

TEST(Window, HammingEndpoints) {
  const auto w = make_window(WindowType::kHamming, 33);
  EXPECT_NEAR(w.front(), 0.08, 1e-12);
  EXPECT_NEAR(w.back(), 0.08, 1e-12);
}

TEST(Window, Symmetry) {
  for (auto type : {WindowType::kHann, WindowType::kHamming,
                    WindowType::kBlackman}) {
    const auto w = make_window(type, 51);
    for (std::size_t i = 0; i < w.size(); ++i) {
      EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-12);
    }
  }
}

TEST(Window, RectangularIsOnes) {
  const auto w = make_window(WindowType::kRectangular, 16);
  for (double v : w) EXPECT_EQ(v, 1.0);
}

TEST(Window, PowerOfRectangular) {
  EXPECT_NEAR(window_power(make_window(WindowType::kRectangular, 10)), 10.0,
              1e-12);
}

TEST(FirDesign, LowpassUnitDcGain) {
  const auto h = design_lowpass(0.2, 63);
  double sum = 0;
  for (double v : h) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(FirDesign, LowpassRejectsBadArgs) {
  EXPECT_THROW(design_lowpass(0.0, 31), std::invalid_argument);
  EXPECT_THROW(design_lowpass(0.5, 31), std::invalid_argument);
  EXPECT_THROW(design_lowpass(0.2, 32), std::invalid_argument);
  // NaN fails every ordered comparison, so the old `<= 0 || >= 0.5` range
  // check silently accepted it and designed a filter of NaNs.
  EXPECT_THROW(design_lowpass(std::nan(""), 31), std::invalid_argument);
}

TEST(FirDesign, BandpassRejectsBadRates) {
  // fs <= 0 used to reach design_lowpass as a nonsense (or NaN: 0/0)
  // cutoff; design_bandpass now validates its own arguments with its own
  // error message.
  EXPECT_THROW(design_bandpass(50e3, 20e3, 0.0, 101), std::invalid_argument);
  EXPECT_THROW(design_bandpass(50e3, 20e3, -1.0, 101),
               std::invalid_argument);
  EXPECT_THROW(design_bandpass(50e3, 20e3, std::nan(""), 101),
               std::invalid_argument);
  EXPECT_THROW(design_bandpass(50e3, 0.0, 300e3, 101),
               std::invalid_argument);
  EXPECT_THROW(design_bandpass(50e3, -5e3, 300e3, 101),
               std::invalid_argument);
  EXPECT_THROW(design_bandpass(50e3, std::nan(""), 300e3, 101),
               std::invalid_argument);
}

TEST(FirDesign, LowpassPassesPassbandRejectsStopband) {
  const auto h = design_lowpass(0.1, 101);
  const double fs = 1.0;
  EXPECT_NEAR(fir_power_response(h, 0.02, fs), 1.0, 0.05);
  EXPECT_LT(fir_power_response(h, 0.3, fs), 1e-4);
}

TEST(FirDesign, BandpassCentersGain) {
  const double fs = 300e3;
  const auto h = design_bandpass(50e3, 20e3, fs, 101);
  // Power response via direct evaluation.
  auto response = [&](double f) {
    cplx acc{};
    for (std::size_t i = 0; i < h.size(); ++i) {
      const double phase = -kTwoPi * f / fs * static_cast<double>(i);
      acc += h[i] * cplx(std::cos(phase), std::sin(phase));
    }
    return std::norm(acc);
  };
  EXPECT_NEAR(response(50e3), 1.0, 0.05);
  EXPECT_LT(response(-50e3), 1e-4);
  EXPECT_LT(response(120e3), 1e-3);
}

TEST(FirDesign, GaussianUnitDcGainAndSymmetry) {
  const auto h = design_gaussian(0.5, 12, 3);
  double sum = 0;
  for (double v : h) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  for (std::size_t i = 0; i < h.size(); ++i) {
    EXPECT_NEAR(h[i], h[h.size() - 1 - i], 1e-12);
  }
}

TEST(FirFilter, StreamingMatchesBatch) {
  Rng rng(4);
  Samples input(500);
  rng.fill_awgn(input, 1.0);
  const auto taps = design_lowpass(0.2, 31);

  FirFilter one(taps);
  const Samples batch = one.process(input);

  FirFilter two(taps);
  Samples streamed;
  for (std::size_t i = 0; i < input.size(); i += 7) {
    const std::size_t n = std::min<std::size_t>(7, input.size() - i);
    two.process(SampleView(input.data() + i, n), streamed);
  }
  ASSERT_EQ(batch.size(), streamed.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_NEAR(std::abs(batch[i] - streamed[i]), 0.0, 1e-12);
  }
}

TEST(FirFilter, ResetClearsHistory) {
  const auto taps = design_lowpass(0.2, 31);
  FirFilter f(taps);
  Rng rng(5);
  Samples input(64);
  rng.fill_awgn(input, 1.0);
  const auto first = f.process(input);
  f.reset();
  const auto second = f.process(input);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_NEAR(std::abs(first[i] - second[i]), 0.0, 1e-12);
  }
}

TEST(FirFilter, GroupDelay) {
  FirFilter f(design_lowpass(0.25, 41));
  EXPECT_DOUBLE_EQ(f.group_delay(), 20.0);
}

TEST(FirFilter, ImpulseResponseIsTaps) {
  const std::vector<double> taps = {0.5, 0.25, 0.25};
  FirFilter f(taps);
  Samples impulse(5, cplx{});
  impulse[0] = 1.0;
  const auto out = f.process(impulse);
  EXPECT_NEAR(out[0].real(), 0.5, 1e-12);
  EXPECT_NEAR(out[1].real(), 0.25, 1e-12);
  EXPECT_NEAR(out[2].real(), 0.25, 1e-12);
  EXPECT_NEAR(out[3].real(), 0.0, 1e-12);
}

TEST(ComplexFirFilter, StreamingMatchesBatch) {
  Rng rng(6);
  Samples input(300);
  rng.fill_awgn(input, 1.0);
  const auto taps = design_bandpass(40e3, 15e3, 300e3, 41);

  ComplexFirFilter one(taps);
  const auto batch = one.process(input);
  ComplexFirFilter two(taps);
  Samples streamed;
  for (std::size_t i = 0; i < input.size(); i += 13) {
    const std::size_t n = std::min<std::size_t>(13, input.size() - i);
    two.process(SampleView(input.data() + i, n), streamed);
  }
  ASSERT_EQ(batch.size(), streamed.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_NEAR(std::abs(batch[i] - streamed[i]), 0.0, 1e-12);
  }
}

TEST(ComplexFirFilter, EmptyTapsThrow) {
  EXPECT_THROW(ComplexFirFilter(Samples{}), std::invalid_argument);
  EXPECT_THROW(FirFilter(std::vector<double>{}), std::invalid_argument);
}

class LowpassCutoffSweep : public ::testing::TestWithParam<double> {};

TEST_P(LowpassCutoffSweep, StopbandAlwaysAttenuated) {
  const double cutoff = GetParam();
  const auto h = design_lowpass(cutoff, 101);
  // Probe 1.8x the cutoff and beyond: should be well down.
  for (double f = cutoff * 1.8; f < 0.5; f += 0.05) {
    EXPECT_LT(fir_power_response(h, f, 1.0), 0.05)
        << "cutoff " << cutoff << " freq " << f;
  }
}

INSTANTIATE_TEST_SUITE_P(Cutoffs, LowpassCutoffSweep,
                         ::testing::Values(0.05, 0.1, 0.2, 0.3));

}  // namespace
}  // namespace hs::dsp
