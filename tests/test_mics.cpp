#include <gtest/gtest.h>

#include <cmath>

#include "dsp/power.hpp"
#include "dsp/rng.hpp"
#include "dsp/units.hpp"
#include "mics/band.hpp"
#include "mics/channelizer.hpp"
#include "mics/lbt.hpp"
#include "mics/session.hpp"

namespace hs::mics {
namespace {

TEST(Band, TenChannelsOf300kHz) {
  EXPECT_EQ(kChannelCount, 10u);
  EXPECT_DOUBLE_EQ(kChannelWidthHz, 300e3);
  EXPECT_DOUBLE_EQ(kBandwidthHz, 3e6);
}

TEST(Band, ChannelCenters) {
  EXPECT_DOUBLE_EQ(channel_center_hz(0), 402.15e6);
  EXPECT_DOUBLE_EQ(channel_center_hz(9), 404.85e6);
  EXPECT_THROW(channel_center_hz(10), std::out_of_range);
}

TEST(Band, BasebandOffsetsSymmetric) {
  EXPECT_DOUBLE_EQ(channel_baseband_offset_hz(0), -1.35e6);
  EXPECT_DOUBLE_EQ(channel_baseband_offset_hz(9), 1.35e6);
  EXPECT_DOUBLE_EQ(channel_baseband_offset_hz(4) +
                       channel_baseband_offset_hz(5),
                   0.0);
}

TEST(Band, ChannelOfFrequency) {
  EXPECT_EQ(channel_of_frequency(402.0e6), 0u);
  EXPECT_EQ(channel_of_frequency(402.2e6), 0u);
  EXPECT_EQ(channel_of_frequency(402.31e6), 1u);
  EXPECT_EQ(channel_of_frequency(404.99e6), 9u);
  EXPECT_EQ(channel_of_frequency(405.0e6), kChannelCount);  // out of band
  EXPECT_EQ(channel_of_frequency(401.9e6), kChannelCount);
}

TEST(Band, FccListenBeforeTalkIs10ms) {
  EXPECT_DOUBLE_EQ(kListenBeforeTalkS, 10e-3);
}

TEST(Channelizer, TonePlacedInChannelAppearsOnlyThere) {
  // Synthesize a tone at channel 7's center in the wideband stream; the
  // channelizer must route its energy to output 7 and almost nowhere else.
  const std::size_t n = 40000;
  dsp::Samples wideband(n);
  const double f = channel_baseband_offset_hz(7);
  for (std::size_t i = 0; i < n; ++i) {
    const double phase = dsp::kTwoPi * f / kWidebandFs * static_cast<double>(i);
    wideband[i] = {std::cos(phase), std::sin(phase)};
  }
  Channelizer channelizer;
  std::array<dsp::Samples, kChannelCount> out;
  channelizer.process(wideband, out);
  // Skip the filter transient.
  const std::size_t skip = 500;
  std::array<double, kChannelCount> power{};
  for (std::size_t c = 0; c < kChannelCount; ++c) {
    double p = 0;
    for (std::size_t i = skip; i < out[c].size(); ++i) {
      p += std::norm(out[c][i]);
    }
    power[c] = p / static_cast<double>(out[c].size() - skip);
  }
  EXPECT_GT(power[7], 0.8);
  for (std::size_t c = 0; c < kChannelCount; ++c) {
    if (c != 7) {
      EXPECT_LT(power[c], 0.01) << "channel " << c;
    }
  }
}

TEST(Channelizer, OutputRateIsOneTenth) {
  Channelizer channelizer;
  std::array<dsp::Samples, kChannelCount> out;
  dsp::Samples wideband(1000, dsp::cplx{});
  channelizer.process(wideband, out);
  for (const auto& ch : out) EXPECT_EQ(ch.size(), 100u);
}

TEST(ChannelSynthesizer, RoundTripThroughChannelizer) {
  // Up-convert a narrowband signal into channel 2, then channelize back.
  dsp::Rng rng(1);
  dsp::Samples baseband(3000);
  for (auto& x : baseband) x = rng.random_phase();  // unit-power signal
  // Lowpass it to fit a 300 kHz channel: here white is too wide, so use a
  // tone at +40 kHz inside the channel instead.
  for (std::size_t i = 0; i < baseband.size(); ++i) {
    const double phase =
        dsp::kTwoPi * 40e3 / kChannelFs * static_cast<double>(i);
    baseband[i] = {std::cos(phase), std::sin(phase)};
  }
  ChannelSynthesizer synth;
  dsp::Samples wideband(baseband.size() * kDecimation, dsp::cplx{});
  synth.process(2, baseband, wideband);

  Channelizer channelizer;
  std::array<dsp::Samples, kChannelCount> out;
  channelizer.process(wideband, out);
  const std::size_t skip = 1000;
  double p2 = 0;
  for (std::size_t i = skip; i < out[2].size(); ++i) {
    p2 += std::norm(out[2][i]);
  }
  p2 /= static_cast<double>(out[2].size() - skip);
  EXPECT_GT(p2, 0.5);
  double p5 = 0;
  for (std::size_t i = skip; i < out[5].size(); ++i) {
    p5 += std::norm(out[5][i]);
  }
  p5 /= static_cast<double>(out[5].size() - skip);
  EXPECT_LT(p5, 0.01);
}

TEST(ChannelSynthesizer, RejectsBadArguments) {
  ChannelSynthesizer synth;
  dsp::Samples baseband(10);
  dsp::Samples wideband(100);
  EXPECT_THROW(synth.process(10, baseband, wideband), std::out_of_range);
  dsp::Samples wrong_size(55);
  EXPECT_THROW(synth.process(0, baseband, wrong_size),
               std::invalid_argument);
}

TEST(Cca, ClearAfterTenQuietMilliseconds) {
  const double fs = 300e3;
  ClearChannelAssessment cca(fs);
  dsp::Rng rng(2);
  dsp::Samples quiet(3000);
  EXPECT_FALSE(cca.channel_clear());
  // 9 ms of quiet: not yet.
  for (int i = 0; i < 900; ++i) {
    rng.fill_awgn(quiet, dsp::dbm_to_mw(-110));
    cca.push(dsp::SampleView(quiet.data(), 3));
  }
  EXPECT_FALSE(cca.channel_clear());
  dsp::Samples more(6000);
  rng.fill_awgn(more, dsp::dbm_to_mw(-110));
  cca.push(more);
  EXPECT_TRUE(cca.channel_clear());
}

TEST(Cca, OccupancyResetsTheClock) {
  const double fs = 300e3;
  ClearChannelAssessment cca(fs, 10e-3, -95.0);
  dsp::Rng rng(3);
  dsp::Samples quiet(4000);
  rng.fill_awgn(quiet, dsp::dbm_to_mw(-110));
  cca.push(quiet);
  // A strong burst occupies the channel.
  dsp::Samples burst(600);
  rng.fill_awgn(burst, dsp::dbm_to_mw(-60));
  cca.push(burst);
  EXPECT_FALSE(cca.channel_clear());
  EXPECT_LT(cca.quiet_time_s(), 5e-3);
  // Quiet again for a full period.
  dsp::Samples quiet2(3100);
  for (int i = 0; i < 2; ++i) {
    rng.fill_awgn(quiet2, dsp::dbm_to_mw(-110));
    cca.push(quiet2);
  }
  EXPECT_TRUE(cca.channel_clear());
}

TEST(Cca, ResetClears) {
  ClearChannelAssessment cca(300e3);
  dsp::Rng rng(4);
  dsp::Samples quiet(4000);
  rng.fill_awgn(quiet, 1e-12);
  cca.push(quiet);
  cca.reset();
  EXPECT_EQ(cca.quiet_time_s(), 0.0);
}

TEST(Session, NormalLifecycle) {
  SessionMachine session;
  EXPECT_EQ(session.state(), SessionState::kIdle);
  session.start_listening(3);
  EXPECT_EQ(session.state(), SessionState::kListening);
  EXPECT_EQ(session.channel(), 3u);
  session.lbt_result(true);
  EXPECT_EQ(session.state(), SessionState::kEstablished);
  session.exchange_result(true);
  session.exchange_result(true);
  EXPECT_EQ(session.state(), SessionState::kEstablished);
  session.end_session();
  EXPECT_EQ(session.state(), SessionState::kIdle);
  EXPECT_FALSE(session.channel().has_value());
}

TEST(Session, BusyChannelGoesToInterfered) {
  SessionMachine session;
  session.start_listening(0);
  session.lbt_result(false);
  EXPECT_EQ(session.state(), SessionState::kInterfered);
  EXPECT_EQ(session.next_channel(), 1u);
}

TEST(Session, PersistentInterferenceMovesChannels) {
  SessionMachine session(/*interference_limit=*/3);
  session.start_listening(9);
  session.lbt_result(true);
  session.exchange_result(false);
  session.exchange_result(false);
  EXPECT_EQ(session.state(), SessionState::kEstablished);
  session.exchange_result(false);
  EXPECT_EQ(session.state(), SessionState::kInterfered);
  EXPECT_EQ(session.next_channel(), 0u);  // wraps around
}

TEST(Session, SuccessResetsFailureCount) {
  SessionMachine session(3);
  session.start_listening(1);
  session.lbt_result(true);
  session.exchange_result(false);
  session.exchange_result(false);
  session.exchange_result(true);
  EXPECT_EQ(session.consecutive_failures(), 0u);
  session.exchange_result(false);
  session.exchange_result(false);
  EXPECT_EQ(session.state(), SessionState::kEstablished);
}

TEST(Session, ChannelIndexWraps) {
  SessionMachine session;
  session.start_listening(25);  // out-of-range input is taken modulo 10
  EXPECT_EQ(session.channel(), 5u);
}

}  // namespace
}  // namespace hs::mics
