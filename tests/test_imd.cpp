#include <gtest/gtest.h>

#include "channel/medium.hpp"
#include "imd/battery.hpp"
#include "imd/device.hpp"
#include "imd/profiles.hpp"
#include "imd/programmer.hpp"
#include "imd/protocol.hpp"
#include "sim/timeline.hpp"

namespace hs::imd {
namespace {

TEST(Protocol, CommandClassification) {
  EXPECT_TRUE(is_command(MessageType::kInterrogate));
  EXPECT_TRUE(is_command(MessageType::kSetTherapy));
  EXPECT_FALSE(is_command(MessageType::kDataResponse));
  EXPECT_FALSE(is_command(MessageType::kAck));
}

TEST(Protocol, BuildersSetTypesAndPayloads) {
  phy::DeviceId id = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_EQ(make_interrogate(id, 5).type, 0x01);
  EXPECT_EQ(make_interrogate(id, 5).seq, 5);
  TherapySettings t;
  const auto set = make_set_therapy(id, 6, t);
  EXPECT_EQ(set.type, 0x03);
  EXPECT_EQ(set.payload.size(), 4u);
  const auto parsed = parse_therapy(set);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, t);
  const auto ack = make_ack(id, 6, MessageType::kSetTherapy);
  EXPECT_EQ(ack.type, 0x83);
  EXPECT_EQ(ack.payload[0], 0x03);
  const std::uint8_t data[] = {9, 8, 7};
  const auto resp = make_data_response(id, 7, phy::ByteView(data, 3));
  EXPECT_EQ(resp.type, 0x81);
  EXPECT_EQ(resp.payload.size(), 3u);
}

TEST(Protocol, MalformedTherapyRejected) {
  phy::DeviceId id{};
  phy::Frame f = make_interrogate(id, 1);  // empty payload
  EXPECT_FALSE(parse_therapy(f).has_value());
  f.payload = {60, 70, 9, 180};  // invalid mode byte (> kOff)
  EXPECT_FALSE(parse_therapy(f).has_value());
}

TEST(Protocol, MessageTypeNames) {
  EXPECT_STREQ(message_type_name(MessageType::kInterrogate), "interrogate");
  EXPECT_STREQ(message_type_name(MessageType::kTherapyResponse),
               "therapy-response");
}

TEST(Therapy, EncodeDecodeRoundTrip) {
  TherapySettings t;
  t.pacing_rate_bpm = 72;
  t.shock_energy_half_joules = 60;
  t.mode = PacingMode::kVVI;
  t.tachy_threshold_bpm = 190;
  const auto bytes = t.encode();
  TherapySettings out;
  ASSERT_TRUE(TherapySettings::decode(
      phy::ByteView(bytes.data(), bytes.size()), out));
  EXPECT_EQ(out, t);
}

TEST(Therapy, DecodeRejectsWrongSize) {
  TherapySettings out;
  const phy::ByteVec bad = {1, 2, 3};
  EXPECT_FALSE(
      TherapySettings::decode(phy::ByteView(bad.data(), bad.size()), out));
}

TEST(Therapy, PlausibilityEnvelope) {
  TherapySettings t;
  EXPECT_TRUE(t.plausible());
  t.pacing_rate_bpm = 20;  // dangerously low
  EXPECT_FALSE(t.plausible());
  t.pacing_rate_bpm = 200;  // dangerously high
  EXPECT_FALSE(t.plausible());
  t.pacing_rate_bpm = 60;
  t.tachy_threshold_bpm = 90;
  EXPECT_FALSE(t.plausible());
}

TEST(Battery, DrainAccounting) {
  Battery battery(/*capacity_mj=*/1000.0, /*tx_power_mw=*/30.0,
                  /*idle_power_mw=*/0.01);
  battery.drain_tx(10.0);  // 300 mJ
  EXPECT_NEAR(battery.remaining_mj(), 700.0, 1e-9);
  EXPECT_NEAR(battery.tx_energy_spent_mj(), 300.0, 1e-9);
  battery.drain_idle(100.0);  // 1 mJ
  EXPECT_NEAR(battery.remaining_mj(), 699.0, 1e-9);
  EXPECT_NEAR(battery.fraction_remaining(), 0.699, 1e-6);
  EXPECT_FALSE(battery.depleted());
  battery.drain_tx(1e9);
  EXPECT_TRUE(battery.depleted());
  EXPECT_EQ(battery.remaining_mj(), 0.0);
}

TEST(Profiles, VirtuosoAndConcertoDiffer) {
  const auto v = virtuoso_profile();
  const auto c = concerto_profile();
  EXPECT_NE(v.serial, c.serial);
  EXPECT_NE(v.model_name, c.model_name);
  // Both within the shield's [T1, T2] reply bounds.
  for (const auto& p : {v, c}) {
    EXPECT_GT(p.reply_delay_mean_s - p.reply_delay_jitter_s, 2.8e-3);
    EXPECT_LT(p.reply_delay_mean_s + p.reply_delay_jitter_s, 3.7e-3);
  }
}

// ---------------------------------------------------------------------------
// Device behaviour on a live medium.
// ---------------------------------------------------------------------------

class ImdFixture : public ::testing::Test {
 protected:
  ImdFixture()
      : profile_(virtuoso_profile()),
        medium_(profile_.fsk.fs, 48, /*seed=*/11),
        timeline_(medium_),
        imd_(profile_, medium_, &timeline_.log(), /*seed=*/11) {
    timeline_.add_node(&imd_);
    ProgrammerConfig pcfg;
    pcfg.fsk = profile_.fsk;
    programmer_ =
        std::make_unique<ProgrammerNode>(pcfg, medium_, &timeline_.log());
    timeline_.add_node(programmer_.get());
    timeline_.run_for(2e-3);  // receivers calibrate their noise floors
  }

  ImdProfile profile_;
  channel::Medium medium_;
  sim::Timeline timeline_;
  ImdDevice imd_;
  std::unique_ptr<ProgrammerNode> programmer_;
};

TEST_F(ImdFixture, RepliesToInterrogationWithinT1T2) {
  programmer_->send(make_interrogate(profile_.serial, 1));
  timeline_.run_for(60e-3);
  EXPECT_EQ(imd_.stats().frames_accepted, 1u);
  ASSERT_EQ(imd_.stats().replies_sent, 1u);
  ASSERT_EQ(programmer_->responses().size(), 1u);
  EXPECT_EQ(programmer_->responses()[0].decode.frame.type, 0x81);
  EXPECT_EQ(programmer_->responses()[0].decode.frame.seq, 1);
}

TEST_F(ImdFixture, ReplyDelayWithinProfileBounds) {
  programmer_->send(make_interrogate(profile_.serial, 1));
  timeline_.run_for(60e-3);
  const auto tx_events =
      timeline_.log().filter(sim::EventKind::kTxStart, "programmer");
  ASSERT_FALSE(tx_events.empty());
  const double reply_start =
      static_cast<double>(imd_.last_tx_start_sample()) / profile_.fsk.fs;
  // Command duration: 21 bytes * 8 bits * sps samples.
  const double cmd_end =
      tx_events[0].time_s +
      static_cast<double>(phy::frame_total_bits(0) * profile_.fsk.sps) /
          profile_.fsk.fs;
  const double delay = reply_start - cmd_end;
  EXPECT_GT(delay, profile_.reply_delay_mean_s - profile_.reply_delay_jitter_s
                       - 1e-6);
  EXPECT_LT(delay, profile_.reply_delay_mean_s + profile_.reply_delay_jitter_s
                       + 1e-6);
}

TEST_F(ImdFixture, IgnoresOtherDeviceIds) {
  phy::DeviceId other = profile_.serial;
  other[0] ^= 0xFF;
  programmer_->send(make_interrogate(other, 1));
  timeline_.run_for(60e-3);
  EXPECT_EQ(imd_.stats().replies_sent, 0u);
  EXPECT_EQ(imd_.stats().wrong_device, 1u);
}

TEST_F(ImdFixture, SetTherapyAppliesAndAcks) {
  TherapySettings t;
  t.pacing_rate_bpm = 80;
  t.mode = PacingMode::kVVI;
  programmer_->send(make_set_therapy(profile_.serial, 9, t));
  timeline_.run_for(60e-3);
  EXPECT_EQ(imd_.therapy(), t);
  EXPECT_EQ(imd_.stats().therapy_changes, 1u);
  ASSERT_EQ(programmer_->responses().size(), 1u);
  EXPECT_EQ(programmer_->responses()[0].decode.frame.type, 0x83);
}

TEST_F(ImdFixture, ImplausibleTherapyRejectedSilently) {
  TherapySettings t;
  t.pacing_rate_bpm = 10;  // outside the safety envelope
  const auto before = imd_.therapy();
  programmer_->send(make_set_therapy(profile_.serial, 9, t));
  timeline_.run_for(60e-3);
  EXPECT_EQ(imd_.therapy(), before);
  EXPECT_EQ(imd_.stats().therapy_changes, 0u);
  EXPECT_EQ(imd_.stats().replies_sent, 0u);
}

TEST_F(ImdFixture, ReadTherapyReturnsCurrentSettings) {
  TherapySettings t;
  t.pacing_rate_bpm = 95;
  imd_.set_therapy(t);
  programmer_->send(make_read_therapy(profile_.serial, 2));
  timeline_.run_for(60e-3);
  ASSERT_EQ(programmer_->responses().size(), 1u);
  const auto parsed = parse_therapy(programmer_->responses()[0].decode.frame);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->pacing_rate_bpm, 95);
}

TEST_F(ImdFixture, BatteryDrainsWhenReplying) {
  const double before = imd_.battery().tx_energy_spent_mj();
  programmer_->send(make_interrogate(profile_.serial, 1));
  timeline_.run_for(60e-3);
  EXPECT_GT(imd_.battery().tx_energy_spent_mj(), before);
}

TEST_F(ImdFixture, MultipleCommandsEachAnswered) {
  for (int i = 0; i < 3; ++i) {
    programmer_->send(make_interrogate(profile_.serial,
                                       static_cast<std::uint8_t>(i)));
    timeline_.run_for(50e-3);
  }
  EXPECT_EQ(imd_.stats().replies_sent, 3u);
  EXPECT_EQ(programmer_->responses().size(), 3u);
}

TEST(ImdSensitivity, FarProgrammerBelowSensitivityIgnored) {
  const auto profile = virtuoso_profile();
  channel::Medium medium(profile.fsk.fs, 48, 13);
  sim::Timeline timeline(medium);
  ImdDevice imd(profile, medium, &timeline.log(), 13);
  timeline.add_node(&imd);
  ProgrammerConfig pcfg;
  pcfg.fsk = profile.fsk;
  pcfg.position = {40.0, 0.0};  // far beyond the link budget
  ProgrammerNode programmer(pcfg, medium, &timeline.log());
  timeline.add_node(&programmer);
  // Extra wall loss to push below the -91.5 dBm sensitivity.
  medium.add_pair_loss(programmer.antenna(), imd.antenna(), 30.0);
  timeline.run_for(2e-3);
  programmer.send(make_interrogate(profile.serial, 1));
  timeline.run_for(60e-3);
  EXPECT_EQ(imd.stats().replies_sent, 0u);
}

TEST(ImdNoCarrierSense, RepliesEvenWhenMediumBusy) {
  // Fig. 3(b): the IMD replies within its fixed interval even though
  // another transmission occupies the medium.
  const auto profile = virtuoso_profile();
  channel::Medium medium(profile.fsk.fs, 48, 17);
  sim::Timeline timeline(medium);
  ImdDevice imd(profile, medium, &timeline.log(), 17);
  timeline.add_node(&imd);
  ProgrammerConfig pcfg;
  pcfg.fsk = profile.fsk;
  ProgrammerNode programmer(pcfg, medium, &timeline.log());
  timeline.add_node(&programmer);
  timeline.run_for(2e-3);

  const std::size_t start = timeline.sample_position() + 480;
  const auto cmd = make_interrogate(profile.serial, 1);
  programmer.send_at(cmd, start);
  // A long foreign transmission 1 ms after the command, spanning the
  // whole reply window.
  phy::Frame busy;
  busy.device_id = {0xEE, 0xEE, 0xEE, 0xEE, 0xEE,
                    0xEE, 0xEE, 0xEE, 0xEE, 0xEE};
  busy.type = 0x7F;
  busy.payload.assign(44, 0xAA);
  const std::size_t cmd_samples =
      phy::frame_total_bits(0) * profile.fsk.sps;
  programmer.send_at(
      busy, start + cmd_samples +
                static_cast<std::size_t>(1e-3 * profile.fsk.fs));
  timeline.run_for(80e-3);
  ASSERT_EQ(imd.stats().replies_sent, 1u);
  // The reply landed inside [T1, T2] after the command despite the busy
  // medium.
  const double delay =
      static_cast<double>(imd.last_tx_start_sample() -
                          (start + cmd_samples)) /
      profile.fsk.fs;
  EXPECT_GT(delay, 2.8e-3);
  EXPECT_LT(delay, 3.7e-3);
}

TEST(Programmer, LbtDefersUntilChannelClear) {
  const auto profile = virtuoso_profile();
  channel::Medium medium(profile.fsk.fs, 48, 19);
  sim::Timeline timeline(medium);
  ImdDevice imd(profile, medium, &timeline.log(), 19);
  timeline.add_node(&imd);
  ProgrammerConfig pcfg;
  pcfg.fsk = profile.fsk;
  pcfg.lbt_enabled = true;
  ProgrammerNode programmer(pcfg, medium, &timeline.log());
  timeline.add_node(&programmer);
  timeline.run_for(2e-3);

  programmer.send(make_interrogate(profile.serial, 1));
  // Before 10 ms of listening have elapsed, nothing may go out.
  timeline.run_for(5e-3);
  EXPECT_TRUE(programmer.waiting_for_clear_channel());
  EXPECT_EQ(imd.stats().frames_detected, 0u);
  timeline.run_for(60e-3);
  EXPECT_FALSE(programmer.waiting_for_clear_channel());
  EXPECT_EQ(imd.stats().replies_sent, 1u);
}

}  // namespace
}  // namespace hs::imd
