#include <gtest/gtest.h>

#include <cmath>

#include "dsp/power.hpp"
#include "dsp/rng.hpp"
#include "dsp/spectrum.hpp"
#include "dsp/units.hpp"

namespace hs::dsp {
namespace {

Samples make_tone(double freq, double fs, std::size_t n, double amp = 1.0) {
  Samples out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double phase = kTwoPi * freq / fs * static_cast<double>(i);
    out[i] = amp * cplx(std::cos(phase), std::sin(phase));
  }
  return out;
}

TEST(Units, DbRoundTrips) {
  EXPECT_NEAR(db_to_power(power_to_db(0.37)), 0.37, 1e-12);
  EXPECT_NEAR(amplitude_to_db(db_to_amplitude(-27.0)), -27.0, 1e-12);
  EXPECT_NEAR(dbm_to_mw(0.0), 1.0, 1e-12);
  EXPECT_NEAR(mw_to_dbm(100.0), 20.0, 1e-12);
  // Amplitude dB and power dB share the same scale: a -6 dB amplitude
  // ratio squares to a -6 dB power ratio.
  EXPECT_NEAR(db_to_amplitude(-6.0) * db_to_amplitude(-6.0),
              db_to_power(-6.0), 1e-12);
}

TEST(Welch, TonePeaksAtItsFrequency) {
  const double fs = 300e3;
  const auto tone = make_tone(50e3, fs, 8192);
  WelchOptions opt;
  opt.segment_size = 256;
  const auto psd = welch_psd(tone, fs, opt);
  std::size_t peak = 0;
  for (std::size_t i = 1; i < psd.power.size(); ++i) {
    if (psd.power[i] > psd.power[peak]) peak = i;
  }
  EXPECT_NEAR(psd.freq_hz[peak], 50e3, fs / 256.0);
}

TEST(Welch, NegativeFrequencyTone) {
  const double fs = 300e3;
  const auto tone = make_tone(-75e3, fs, 8192);
  const auto psd = welch_psd(tone, fs);
  std::size_t peak = 0;
  for (std::size_t i = 1; i < psd.power.size(); ++i) {
    if (psd.power[i] > psd.power[peak]) peak = i;
  }
  EXPECT_NEAR(psd.freq_hz[peak], -75e3, fs / 256.0);
}

TEST(Welch, FrequencyAxisAscending) {
  const auto psd = welch_psd(make_tone(0, 1000.0, 1024), 1000.0);
  for (std::size_t i = 1; i < psd.freq_hz.size(); ++i) {
    EXPECT_GT(psd.freq_hz[i], psd.freq_hz[i - 1]);
  }
}

TEST(Welch, ShortSignalStillProducesEstimate) {
  const auto psd = welch_psd(make_tone(10e3, 300e3, 100), 300e3);
  EXPECT_EQ(psd.power.size(), 256u);
}

TEST(Welch, RejectsBadOptions) {
  WelchOptions opt;
  opt.segment_size = 100;  // not a power of two
  EXPECT_THROW(welch_psd(make_tone(0, 1.0, 256), 1.0, opt),
               std::invalid_argument);
  opt.segment_size = 128;
  opt.overlap = 1.0;
  EXPECT_THROW(welch_psd(make_tone(0, 1.0, 256), 1.0, opt),
               std::invalid_argument);
}

TEST(BandPower, CapturesToneInBand) {
  const double fs = 300e3;
  const auto tone = make_tone(50e3, fs, 4096, std::sqrt(2.0));  // power 2
  const double in = band_power(tone, fs, 40e3, 60e3);
  const double out = band_power(tone, fs, -60e3, -40e3);
  EXPECT_NEAR(in, 2.0, 0.1);
  EXPECT_LT(out, 0.01);
}

TEST(NormalizePeak, PeakBecomesOne) {
  auto psd = welch_psd(make_tone(20e3, 300e3, 4096), 300e3);
  normalize_peak(psd);
  double peak = 0;
  for (double p : psd.power) peak = std::max(peak, p);
  EXPECT_NEAR(peak, 1.0, 1e-12);
}

TEST(Power, MeanPeakEnergy) {
  Samples s = {cplx{1, 0}, cplx{0, 2}, cplx{0, 0}};
  EXPECT_NEAR(mean_power(s), (1.0 + 4.0 + 0.0) / 3.0, 1e-12);
  EXPECT_NEAR(peak_power(s), 4.0, 1e-12);
  EXPECT_NEAR(energy(s), 5.0, 1e-12);
  EXPECT_EQ(mean_power(Samples{}), 0.0);
}

TEST(Power, SetMeanPowerScales) {
  Rng rng(3);
  Samples s(1000);
  rng.fill_awgn(s, 3.7);
  set_mean_power(s, 0.5);
  EXPECT_NEAR(mean_power(s), 0.5, 1e-12);
}

TEST(Power, SetMeanPowerNoopOnZeros) {
  Samples s(16, cplx{});
  set_mean_power(s, 1.0);
  EXPECT_EQ(mean_power(s), 0.0);
}

TEST(RssiMeter, WindowAverage) {
  RssiMeter meter(4);
  meter.push(cplx{1, 0});   // 1
  meter.push(cplx{1, 0});   // 1
  meter.push(cplx{3, 0});   // 9
  EXPECT_FALSE(meter.warmed_up());
  meter.push(cplx{1, 0});   // 1
  EXPECT_TRUE(meter.warmed_up());
  EXPECT_NEAR(meter.value(), (1 + 1 + 9 + 1) / 4.0, 1e-12);
  // Sliding: the first sample drops out.
  meter.push(cplx{0, 0});
  EXPECT_NEAR(meter.value(), (1 + 9 + 1 + 0) / 4.0, 1e-12);
}

TEST(RssiMeter, BlockPushReturnsFinal) {
  RssiMeter meter(2);
  Samples s = {cplx{1, 0}, cplx{2, 0}, cplx{2, 0}};
  EXPECT_NEAR(meter.push(s), (4.0 + 4.0) / 2.0, 1e-12);
}

TEST(RssiMeter, ResetClears) {
  RssiMeter meter(3);
  meter.push(cplx{5, 0});
  meter.reset();
  EXPECT_EQ(meter.value(), 0.0);
  EXPECT_FALSE(meter.warmed_up());
}

TEST(RssiMeter, ZeroWindowThrows) {
  EXPECT_THROW(RssiMeter(0), std::invalid_argument);
}

}  // namespace
}  // namespace hs::dsp
