// Behavioural tests of the shield node on a live medium: probing, passive
// jamming, active protection, anti-capture, alarms, and jam-power policy.
#include <gtest/gtest.h>

#include <algorithm>

#include "adversary/active.hpp"
#include "adversary/cross_traffic.hpp"
#include "adversary/eavesdropper.hpp"
#include "adversary/monitor.hpp"
#include "channel/geometry.hpp"
#include "dsp/units.hpp"
#include "imd/protocol.hpp"
#include "shield/calibrate.hpp"
#include "shield/deployment.hpp"

namespace hs::shield {
namespace {

using imd::make_interrogate;
using imd::make_set_therapy;

TEST(ShieldNode, ProbesPeriodically) {
  DeploymentOptions opt;
  opt.seed = 3;
  Deployment d(opt);
  const auto before = d.shield().stats().probes;
  d.run_for(0.65);  // > 3 probe intervals of 200 ms
  const auto probes = d.shield().stats().probes - before;
  EXPECT_GE(probes, 3u);
  EXPECT_LE(probes, 5u);
}

TEST(ShieldNode, AntidoteReadyAfterWarmup) {
  DeploymentOptions opt;
  opt.seed = 4;
  Deployment d(opt);
  EXPECT_TRUE(d.shield().antidote_ready());
  // The estimated self-loop channel magnitude matches the configured wire
  // coupling within estimation error.
  const double est_db =
      -20.0 * std::log10(std::abs(d.shield().antidote().self_channel()));
  EXPECT_NEAR(est_db, opt.shield_config.self_coupling_db, 1.0);
}

TEST(ShieldNode, CancellationDisabledWithoutAntidote) {
  DeploymentOptions opt;
  opt.seed = 5;
  Deployment d(opt);
  ShieldNode& shield = d.shield();
  shield.set_manual_jam(true);
  shield.set_antidote_enabled(false);
  d.run_for(2e-3);
  double p_off = 0;
  for (int i = 0; i < 32; ++i) {
    d.timeline().step();
    p_off += d.medium().rx_power(shield.rx_antenna());
  }
  shield.set_antidote_enabled(true);
  d.run_for(1e-3);
  double p_on = 0;
  for (int i = 0; i < 32; ++i) {
    d.timeline().step();
    p_on += d.medium().rx_power(shield.rx_antenna());
  }
  shield.set_manual_jam(false);
  EXPECT_GT(dsp::power_to_db(p_off / p_on), 15.0);
}

TEST(ShieldNode, JamPowerTracksImdRssiPlusMargin) {
  DeploymentOptions opt;
  opt.seed = 6;
  Deployment d(opt);
  // Before any measurement: prior RSSI (-36 dBm) + 20 dB, clamped to FCC.
  EXPECT_NEAR(d.shield().jam_power_dbm(), -16.0, 1e-9);
  d.shield().relay_command(make_interrogate(opt.imd_profile.serial, 1));
  d.run_for(60e-3);
  ASSERT_EQ(d.shield().stats().replies_decoded, 1u);
  // Measured RSSI: IMD tx -16 dBm, through the body (-20 dB) and the
  // necklace's outward-facing directivity (-3 dB) => about -39 dBm.
  EXPECT_NEAR(d.shield().measured_imd_rssi_dbm(), -39.0, 4.0);
  // Operating point: measured RSSI + 20 dB margin, clamped at the FCC
  // limit.
  EXPECT_NEAR(d.shield().jam_power_dbm(),
              std::min(-16.0, d.shield().measured_imd_rssi_dbm() + 20.0),
              1e-9);
  // A margin override below the clamp moves the operating point.
  d.shield().set_jam_power_override(-30.0);
  EXPECT_NEAR(d.shield().jam_power_dbm(), -30.0, 1e-9);
}

TEST(ShieldNode, ActiveProtectionJamsForgedCommand) {
  DeploymentOptions opt;
  opt.seed = 7;
  Deployment d(opt);
  adversary::ActiveAdversaryConfig acfg;
  acfg.position = channel::testbed_location(2).position();
  acfg.fsk = opt.imd_profile.fsk;
  adversary::ActiveAdversaryNode adversary(acfg, d.medium(), &d.log());
  d.add_node(&adversary);
  d.run_for(2e-3);

  adversary.inject(make_interrogate(opt.imd_profile.serial, 1));
  d.run_for(45e-3);
  EXPECT_GE(d.shield().stats().active_jams, 1u);
  EXPECT_EQ(d.imd().stats().frames_accepted, 0u);
  EXPECT_EQ(d.imd().stats().replies_sent, 0u);
  // The IMD detected the frame start but the checksum failed under
  // jamming (or sync was destroyed entirely).
  EXPECT_LE(d.imd().stats().crc_failures, 1u);
}

TEST(ShieldNode, TherapyUnchangedUnderAttack) {
  DeploymentOptions opt;
  opt.seed = 8;
  Deployment d(opt);
  adversary::ActiveAdversaryConfig acfg;
  acfg.position = channel::testbed_location(1).position();
  acfg.fsk = opt.imd_profile.fsk;
  adversary::ActiveAdversaryNode adversary(acfg, d.medium(), &d.log());
  d.add_node(&adversary);
  d.run_for(2e-3);

  const auto before = d.imd().therapy();
  imd::TherapySettings tampered;
  tampered.pacing_rate_bpm = 40;
  adversary.inject(make_set_therapy(opt.imd_profile.serial, 1, tampered));
  d.run_for(45e-3);
  EXPECT_EQ(d.imd().therapy(), before);
  EXPECT_EQ(d.imd().stats().therapy_changes, 0u);
}

TEST(ShieldNode, NoJammingOfOtherDevicesTraffic) {
  DeploymentOptions opt;
  opt.seed = 9;
  Deployment d(opt);
  adversary::ActiveAdversaryConfig acfg;
  acfg.position = {3.0, 0.0};
  acfg.fsk = opt.imd_profile.fsk;
  adversary::ActiveAdversaryNode sender(acfg, d.medium(), &d.log());
  d.add_node(&sender);
  d.run_for(2e-3);

  // A frame addressed to a DIFFERENT device id. The serials must differ
  // by more than b_thresh = 4 bits, or the matcher would (correctly, per
  // the paper's tolerance) treat it as targeting the protected IMD.
  phy::DeviceId other = opt.imd_profile.serial;
  other[0] ^= 0xFF;
  other[5] ^= 0xFF;
  other[9] ^= 0xFF;
  sender.inject(make_interrogate(other, 1));
  d.run_for(45e-3);
  EXPECT_EQ(d.shield().stats().active_jams, 0u);
  EXPECT_GE(d.shield().stats().cross_traffic_ignored, 1u);
}

TEST(ShieldNode, NoJammingOfGmskCrossTraffic) {
  DeploymentOptions opt;
  opt.seed = 10;
  Deployment d(opt);
  adversary::CrossTrafficConfig ccfg;
  ccfg.position = {2.0, 0.0};
  adversary::CrossTrafficNode radiosonde(ccfg, d.medium(), 10);
  d.add_node(&radiosonde);
  d.run_for(2e-3);
  radiosonde.send_frame(d.timeline().sample_position() + 96);
  d.run_for(45e-3);
  EXPECT_EQ(d.shield().stats().active_jams, 0u);
}

TEST(ShieldNode, AlarmOnHighPowerNotOnFccPower) {
  for (const double extra : {0.0, 20.0}) {
    DeploymentOptions opt;
    opt.seed = 11;
    Deployment d(opt);
    adversary::ActiveAdversaryConfig acfg;
    acfg.position = channel::testbed_location(1).position();
    acfg.fsk = opt.imd_profile.fsk;
    acfg.tx_power_dbm = -16.0 + extra;
    adversary::ActiveAdversaryNode adversary(acfg, d.medium(), &d.log());
    d.add_node(&adversary);
    d.run_for(2e-3);
    adversary.inject(make_interrogate(opt.imd_profile.serial, 1));
    d.run_for(45e-3);
    if (extra > 0.0) {
      EXPECT_GE(d.shield().stats().alarms, 1u) << "high power";
    } else {
      EXPECT_EQ(d.shield().stats().alarms, 0u) << "FCC power";
    }
  }
}

TEST(ShieldNode, SuccessImpliesAlarmForHighPowerAdversary) {
  // The paper's key safety property (section 10.3): whenever the
  // high-powered adversary elicits a response in the shield's presence,
  // the shield raises an alarm.
  DeploymentOptions opt;
  opt.seed = 12;
  opt.with_observer = true;
  opt.shield_config.enable_passive_jamming = false;
  Deployment d(opt);
  adversary::ActiveAdversaryConfig acfg;
  acfg.position = channel::testbed_location(1).position();
  acfg.fsk = opt.imd_profile.fsk;
  acfg.tx_power_dbm = 4.0;  // 100x
  adversary::ActiveAdversaryNode adversary(acfg, d.medium(), &d.log());
  d.add_node(&adversary);
  d.run_for(2e-3);
  for (int i = 0; i < 10; ++i) {
    const auto replies = d.imd().stats().replies_sent;
    const auto alarms = d.shield().stats().alarms;
    adversary.inject(make_interrogate(opt.imd_profile.serial,
                                      static_cast<std::uint8_t>(i)));
    d.run_for(45e-3);
    if (d.imd().stats().replies_sent > replies) {
      EXPECT_GT(d.shield().stats().alarms, alarms)
          << "success without alarm at trial " << i;
    }
  }
}

TEST(ShieldNode, AbortsOwnTxWhenOverpowered) {
  // Anti-capture defense (section 7): if someone transmits over the
  // shield's own relayed command, the shield switches from transmission
  // to jamming.
  DeploymentOptions opt;
  opt.seed = 13;
  Deployment d(opt);
  adversary::ActiveAdversaryConfig acfg;
  acfg.position = channel::testbed_location(1).position();
  acfg.fsk = opt.imd_profile.fsk;
  acfg.tx_power_dbm = 10.0;  // strong enough to exceed the self-residual
  adversary::ActiveAdversaryNode adversary(acfg, d.medium(), &d.log());
  d.add_node(&adversary);
  d.run_for(2e-3);

  d.shield().relay_command(make_interrogate(opt.imd_profile.serial, 1));
  d.run_for(2e-3);  // our command is now on the air
  adversary.inject(make_interrogate(opt.imd_profile.serial, 9));
  d.run_for(45e-3);
  EXPECT_GE(d.shield().stats().aborted_tx, 1u);
  EXPECT_GE(d.shield().stats().active_jams, 1u);
  // The capture attempt must not have delivered the adversary's command.
  EXPECT_EQ(d.imd().stats().frames_accepted, 0u);
}

TEST(ShieldNode, PassiveJamDeniesNearbyEavesdropper) {
  DeploymentOptions opt;
  opt.seed = 14;
  Deployment d(opt);
  adversary::MonitorConfig ecfg;
  ecfg.name = "eavesdropper";
  ecfg.position = channel::testbed_location(1).position();
  ecfg.fsk = opt.imd_profile.fsk;
  ecfg.capture_samples = true;
  adversary::MonitorNode eavesdropper(ecfg, d.medium());
  d.add_node(&eavesdropper);
  d.run_for(2e-3);

  double ber_sum = 0;
  int packets = 0;
  for (int i = 0; i < 5; ++i) {
    eavesdropper.clear_capture();
    d.shield().relay_command(make_interrogate(opt.imd_profile.serial,
                                              static_cast<std::uint8_t>(i)));
    d.run_for(45e-3);
    const auto& truth = d.imd().last_tx_bits();
    if (truth.empty()) continue;
    const std::size_t offset =
        d.imd().last_tx_start_sample() - eavesdropper.capture_start();
    const auto result = adversary::eavesdrop_decode(
        opt.imd_profile.fsk, eavesdropper.capture(), offset,
        phy::BitView(truth.data(), truth.size()));
    ber_sum += result.ber;
    ++packets;
  }
  ASSERT_GT(packets, 0);
  EXPECT_GT(ber_sum / packets, 0.40);
  // ...while the shield decoded every packet through its own jamming.
  EXPECT_EQ(d.shield().stats().replies_decoded,
            static_cast<std::size_t>(packets));
}

TEST(ShieldNode, DisabledPassiveJammingLeaksToEavesdropper) {
  // Control experiment for the one above: without jamming, the nearby
  // eavesdropper decodes the IMD perfectly. Confidentiality comes from
  // the jamming, not from the simulation setup.
  DeploymentOptions opt;
  opt.seed = 15;
  opt.shield_config.enable_passive_jamming = false;
  Deployment d(opt);
  adversary::MonitorConfig ecfg;
  ecfg.position = channel::testbed_location(1).position();
  ecfg.fsk = opt.imd_profile.fsk;
  ecfg.capture_samples = true;
  adversary::MonitorNode eavesdropper(ecfg, d.medium());
  d.add_node(&eavesdropper);
  d.run_for(2e-3);

  d.shield().relay_command(make_interrogate(opt.imd_profile.serial, 1));
  d.run_for(45e-3);
  const auto& truth = d.imd().last_tx_bits();
  ASSERT_FALSE(truth.empty());
  const std::size_t offset =
      d.imd().last_tx_start_sample() - eavesdropper.capture_start();
  const auto result = adversary::eavesdrop_decode(
      opt.imd_profile.fsk, eavesdropper.capture(), offset,
      phy::BitView(truth.data(), truth.size()));
  EXPECT_LT(result.ber, 0.01);
}

TEST(ShieldNode, MeasuredCancellationNear32Db) {
  DeploymentOptions opt;
  opt.seed = 16;
  Deployment d(opt);
  const auto samples = measure_cancellation_cdf(d, 40);
  double mean = 0;
  for (double g : samples) mean += g;
  mean /= static_cast<double>(samples.size());
  EXPECT_GT(mean, 28.0);
  EXPECT_LT(mean, 38.0);
  // Fig. 7's spread: roughly 20-48 dB across runs.
  EXPECT_GT(samples.front(), 15.0);
  EXPECT_LT(samples.back(), 60.0);
}

}  // namespace
}  // namespace hs::shield
