#include <gtest/gtest.h>

#include "dsp/rng.hpp"
#include "phy/frame.hpp"

namespace hs::phy {
namespace {

Frame sample_frame(std::size_t payload_len) {
  Frame f;
  f.device_id = {'V', 'I', 'R', '2', '0', '1', '1', '0', '0', '7'};
  f.type = 0x03;
  f.seq = 42;
  f.payload.resize(payload_len);
  for (std::size_t i = 0; i < payload_len; ++i) {
    f.payload[i] = static_cast<std::uint8_t>(i * 5 + 1);
  }
  return f;
}

TEST(Frame, TotalSizes) {
  // preamble 4 + sync 2 + id 10 + type/seq/len 3 + payload + crc 2
  EXPECT_EQ(frame_total_bytes(0), 21u);
  EXPECT_EQ(frame_total_bytes(44), 65u);
  EXPECT_EQ(frame_total_bits(10), 31u * 8u);
}

TEST(Frame, SidBitsCoverPreambleSyncAndId) {
  EXPECT_EQ(kSidBits, (4u + 2u + 10u) * 8u);
  const auto sid = make_sid(sample_frame(0).device_id);
  EXPECT_EQ(sid.size(), kSidBits);
  // First 8 bits are the 0xAA preamble pattern.
  const BitVec preamble_byte = {1, 0, 1, 0, 1, 0, 1, 0};
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(sid[i], preamble_byte[i]);
}

TEST(Frame, EncodeStartsWithSid) {
  const auto f = sample_frame(4);
  const auto bits = encode_frame(f);
  const auto sid = make_sid(f.device_id);
  for (std::size_t i = 0; i < sid.size(); ++i) {
    EXPECT_EQ(bits[i], sid[i]) << "bit " << i;
  }
}

TEST(Frame, PayloadTooLargeThrows) {
  EXPECT_THROW(encode_frame(sample_frame(kMaxPayloadBytes + 1)),
               std::invalid_argument);
}

class FramePayloadSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FramePayloadSweep, EncodeDecodeRoundTrip) {
  const auto f = sample_frame(GetParam());
  const auto bits = encode_frame(f);
  EXPECT_EQ(bits.size(), frame_total_bits(GetParam()));
  const auto result = decode_frame(bits);
  ASSERT_EQ(result.status, DecodeStatus::kOk);
  EXPECT_EQ(result.frame.device_id, f.device_id);
  EXPECT_EQ(result.frame.type, f.type);
  EXPECT_EQ(result.frame.seq, f.seq);
  EXPECT_EQ(result.frame.payload, f.payload);
  EXPECT_EQ(result.consumed_bits, bits.size());
}

INSTANTIATE_TEST_SUITE_P(PayloadSizes, FramePayloadSweep,
                         ::testing::Values(0, 1, 4, 16, 32, 44));

TEST(Frame, PayloadBitFlipFailsCrc) {
  const auto f = sample_frame(8);
  auto bits = encode_frame(f);
  bits[(kPreambleBytes + kSyncBytes + kDeviceIdBytes + 3) * 8 + 5] ^= 1;
  EXPECT_EQ(decode_frame(bits).status, DecodeStatus::kBadCrc);
}

TEST(Frame, HeaderBitFlipFailsCrcOrSync) {
  const auto f = sample_frame(8);
  auto bits = encode_frame(f);
  bits[(kPreambleBytes + kSyncBytes) * 8 + 3] ^= 1;  // inside device id
  EXPECT_EQ(decode_frame(bits).status, DecodeStatus::kBadCrc);
}

TEST(Frame, CrcFieldFlipFailsCrc) {
  const auto f = sample_frame(2);
  auto bits = encode_frame(f);
  bits[bits.size() - 1] ^= 1;
  EXPECT_EQ(decode_frame(bits).status, DecodeStatus::kBadCrc);
}

TEST(Frame, SyncToleratesFewFlips) {
  const auto f = sample_frame(3);
  auto bits = encode_frame(f);
  bits[0] ^= 1;
  bits[9] ^= 1;
  bits[40] ^= 1;  // inside sync word
  const auto result = decode_frame(bits, /*sync_tolerance=*/4);
  EXPECT_EQ(result.status, DecodeStatus::kOk);
  EXPECT_EQ(result.sync_errors, 3u);
}

TEST(Frame, SyncBeyondToleranceRejected) {
  const auto f = sample_frame(3);
  auto bits = encode_frame(f);
  for (std::size_t i = 0; i < 6; ++i) bits[i * 7] ^= 1;
  EXPECT_EQ(decode_frame(bits, 4).status, DecodeStatus::kBadSync);
}

TEST(Frame, TooShortReported) {
  BitVec bits(50, 1);
  EXPECT_EQ(decode_frame(bits).status, DecodeStatus::kTooShort);
}

TEST(Frame, TruncatedReported) {
  const auto f = sample_frame(20);
  auto bits = encode_frame(f);
  bits.resize(bits.size() - 40);
  EXPECT_EQ(decode_frame(bits).status, DecodeStatus::kTruncated);
}

TEST(Frame, BadLengthReported) {
  const auto f = sample_frame(0);
  auto bits = encode_frame(f);
  // Overwrite the length field with 0xFF (> kMaxPayloadBytes).
  const std::size_t len_off = (kPreambleBytes + kSyncBytes + kDeviceIdBytes +
                               2) * 8;
  for (std::size_t i = 0; i < 8; ++i) bits[len_off + i] = 1;
  EXPECT_EQ(decode_frame(bits).status, DecodeStatus::kBadLength);
}

TEST(Frame, RandomCorruptionNeverYieldsWrongPayloadSilently) {
  // Property: whatever we corrupt, either decoding fails or the frame
  // comes back exactly as sent (CRC-16 may in principle collide, but not
  // within a few hundred random two-flip trials).
  dsp::Rng rng(11);
  const auto f = sample_frame(16);
  const auto clean = encode_frame(f);
  for (int trial = 0; trial < 300; ++trial) {
    auto bits = clean;
    const std::size_t header_bits = (kPreambleBytes + kSyncBytes) * 8;
    // Corrupt covered region only (preamble errors are tolerated anyway).
    const auto i1 =
        header_bits + rng.uniform_u64(bits.size() - header_bits);
    const auto i2 =
        header_bits + rng.uniform_u64(bits.size() - header_bits);
    bits[i1] ^= 1;
    bits[i2] ^= 1;
    const auto result = decode_frame(bits);
    if (result.status == DecodeStatus::kOk) {
      EXPECT_EQ(result.frame.payload, f.payload);
      EXPECT_EQ(result.frame.device_id, f.device_id);
    }
  }
}

}  // namespace
}  // namespace hs::phy
