// Sharded-campaign correctness: (1) ShardMerge.* — K independently-run
// shards, serialized to chunk streams and merged, must reproduce the
// serial single-process aggregates bit-for-bit (EXPECT_EQ on doubles,
// including Welford variance and Wilson intervals) and byte-for-byte in
// CSV/JSON; (2) ChunkStream.* — the wire format round-trips exactly and
// rejects truncation, duplication and header mismatches instead of
// silently merging; (3) WorkStealing.* — the stealing scheduler never
// perturbs aggregates or the deployment-pool accounting, across thread
// counts and many repetitions.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdio>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "campaign/chunk_stream.hpp"
#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "campaign/scenario.hpp"
#include "campaign/shard.hpp"
#include "phy/crc.hpp"

namespace hs::campaign {
namespace {

/// Recomputes line `lineno` (1-based)'s crc field after tampering, so a
/// forgery reaches the semantic checks instead of dying at the CRC.
std::string reseal_line(const std::string& text, std::size_t lineno) {
  std::vector<std::string> ls;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t end = text.find('\n', start);
    ls.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  EXPECT_GE(ls.size(), lineno);
  std::string& line = ls[lineno - 1];
  const std::size_t crc_at = line.rfind(",\"crc\":\"");
  EXPECT_NE(crc_at, std::string::npos);
  std::string payload = line.substr(0, crc_at);
  phy::Crc16 crc;
  for (char c : payload) crc.update(static_cast<std::uint8_t>(c));
  crc.update(static_cast<std::uint8_t>('}'));
  char buf[24];
  std::snprintf(buf, sizeof buf, ",\"crc\":\"%04x\"}", crc.value());
  line = payload + buf;
  std::string out;
  for (const auto& l : ls) {
    out += l;
    out += '\n';
  }
  return out;
}

/// A preset shrunk to a test-sized sweep: the genuine trial code paths,
/// milliseconds per trial.
Scenario shrunk(const char* preset, std::vector<double> axis_values,
                std::size_t units_per_trial) {
  const Scenario* s = find_scenario(preset);
  EXPECT_NE(s, nullptr) << preset;
  Scenario out = *s;
  if (!axis_values.empty()) out.axis_values = std::move(axis_values);
  out.units_per_trial = units_per_trial;
  return out;
}

/// Runs every shard of a K-way split in-process and parses each stream
/// back, mimicking what K separate campaign_runner processes produce.
std::vector<ChunkStream> run_shards(const Scenario& s,
                                    const CampaignOptions& opt,
                                    std::size_t shard_count) {
  std::vector<ChunkStream> streams;
  for (std::size_t i = 0; i < shard_count; ++i) {
    const auto exec = run_campaign_shard(s, opt, shard_count, i);
    streams.push_back(
        parse_chunk_stream(serialize_chunk_stream(s, opt, exec),
                           "shard-" + std::to_string(i)));
  }
  return streams;
}

/// Bit-identical aggregates: every moment EXPECT_EQ, no tolerance —
/// including the derived variance/stddev and the Wilson interval of
/// indicator metrics.
void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t p = 0; p < a.points.size(); ++p) {
    for (std::size_t m = 0; m < kMetricCount; ++m) {
      const auto& sa = a.points[p].metrics[m];
      const auto& sb = b.points[p].metrics[m];
      EXPECT_EQ(sa.count(), sb.count());
      EXPECT_EQ(sa.mean(), sb.mean());
      EXPECT_EQ(sa.variance(), sb.variance());
      EXPECT_EQ(sa.stddev(), sb.stddev());
      EXPECT_EQ(sa.min(), sb.min());
      EXPECT_EQ(sa.max(), sb.max());
      if (metric_is_indicator(static_cast<Metric>(m))) {
        const auto wa = wilson_interval(sa);
        const auto wb = wilson_interval(sb);
        EXPECT_EQ(wa.lo, wb.lo);
        EXPECT_EQ(wa.hi, wb.hi);
      }
    }
  }
}

TEST(ShardPlan, DealsChunksRoundRobinAndCoversExactly) {
  Scenario s = shrunk("fig8-tradeoff", {10.0, 15.0, 20.0}, 1);
  CampaignOptions opt;
  opt.trials_per_point = 5;
  opt.chunk_size = 2;  // uneven: 5 trials -> chunks of 2,2,1 per point

  std::vector<bool> covered(9, false);
  for (std::size_t i = 0; i < 3; ++i) {
    const ShardPlan plan = plan_shard(s, opt, 3, i);
    EXPECT_EQ(plan.total_chunks, 9u);
    EXPECT_EQ(plan.point_count, 3u);
    EXPECT_EQ(plan.trials_per_point, 5u);
    std::size_t prev_id = 0;
    for (std::size_t c = 0; c < plan.chunks.size(); ++c) {
      const ChunkRef& ref = plan.chunks[c];
      EXPECT_EQ(ref.chunk_index % 3, i);  // round-robin deal
      if (c > 0) {
        EXPECT_GT(ref.chunk_index, prev_id);
      }
      prev_id = ref.chunk_index;
      ASSERT_LT(ref.chunk_index, covered.size());
      EXPECT_FALSE(covered[ref.chunk_index]);
      covered[ref.chunk_index] = true;
      EXPECT_LT(ref.trial_begin, ref.trial_end);
      EXPECT_LE(ref.trial_end, 5u);
    }
  }
  for (bool c : covered) EXPECT_TRUE(c);  // disjoint exact cover

  EXPECT_THROW(plan_shard(s, opt, 0, 0), std::invalid_argument);
  EXPECT_THROW(plan_shard(s, opt, 3, 3), std::invalid_argument);
}

TEST(ShardMerge, BitIdenticalToSerialAcrossPresetsAndShardCounts) {
  // Three experiment families: spectrum (no deployment), eavesdrop
  // (full deployment + sweep), active attack (multi-sample indicators).
  const std::vector<Scenario> cases = {
      shrunk("fig5-jam-shaped", {}, 1),
      shrunk("fig8-tradeoff", {10.0, 20.0}, 1),
      shrunk("fig11-trigger", {1.0, 9.0}, 1),
  };
  for (const Scenario& s : cases) {
    SCOPED_TRACE(s.name);
    CampaignOptions opt;
    opt.seed = 13;
    opt.threads = 1;
    opt.trials_per_point = 4;
    auto serial = run_campaign(s, opt);
    canonicalize(serial);
    const std::string serial_csv = to_csv(serial);
    const std::string serial_json = to_json(serial);

    for (std::size_t shard_count : {2u, 3u, 7u}) {
      SCOPED_TRACE(shard_count);
      const auto merged =
          merge_chunk_streams(s, run_shards(s, opt, shard_count));
      expect_identical(serial, merged);
      // Not just equal aggregates: the emitted reports are the same bytes.
      EXPECT_EQ(serial_csv, to_csv(merged));
      EXPECT_EQ(serial_json, to_json(merged));
    }
  }
}

TEST(ShardMerge, EveryPresetMergesBitIdentical) {
  // The acceptance sweep: every preset in --list, shrunk to at most two
  // sweep points and one unit per trial, K=3 sharded, merged, compared
  // EXPECT_EQ against serial.
  for (const Scenario& preset : scenario_presets()) {
    SCOPED_TRACE(preset.name);
    Scenario s = preset;
    if (s.axis != SweepAxis::kNone && s.axis_values.size() > 2) {
      s.axis_values.resize(2);
    }
    s.units_per_trial = 1;
    CampaignOptions opt;
    opt.seed = 5;
    opt.threads = 1;
    opt.trials_per_point = 2;

    auto serial = run_campaign(s, opt);
    canonicalize(serial);
    const auto merged = merge_chunk_streams(s, run_shards(s, opt, 3));
    expect_identical(serial, merged);
    EXPECT_EQ(to_csv(serial), to_csv(merged));
    EXPECT_EQ(to_json(serial), to_json(merged));
  }
}

TEST(ChunkStream, RoundTripsExactly) {
  const Scenario s = shrunk("fig8-tradeoff", {10.0, 20.0}, 1);
  CampaignOptions opt;
  opt.seed = 21;
  opt.threads = 1;
  opt.trials_per_point = 5;
  opt.chunk_size = 2;  // uneven trailing chunk
  const auto exec = run_campaign_shard(s, opt, 2, 1);
  const std::string text = serialize_chunk_stream(s, opt, exec);
  const ChunkStream stream = parse_chunk_stream(text, "round-trip");

  EXPECT_EQ(stream.header.version, kChunkStreamVersion);
  EXPECT_EQ(stream.header.scenario, s.name);
  EXPECT_EQ(stream.header.seed, 21u);
  EXPECT_EQ(stream.header.trials_per_point, 5u);
  EXPECT_EQ(stream.header.chunk_size, 2u);
  EXPECT_EQ(stream.header.shard_count, 2u);
  EXPECT_EQ(stream.header.shard_index, 1u);
  EXPECT_EQ(stream.header.total_chunks, exec.plan.total_chunks);
  ASSERT_EQ(stream.chunks.size(), exec.plan.chunks.size());
  for (std::size_t c = 0; c < stream.chunks.size(); ++c) {
    EXPECT_EQ(stream.chunks[c].ref, exec.plan.chunks[c]);
    for (std::size_t m = 0; m < kMetricCount; ++m) {
      const auto want = exec.chunk_metrics[c][m].moments();
      const auto got = stream.chunks[c].metrics[m].moments();
      EXPECT_EQ(want.count, got.count);
      // Hex-float round trip: the exact bits, not a decimal approximation.
      EXPECT_EQ(want.mean, got.mean);
      EXPECT_EQ(want.m2, got.m2);
      EXPECT_EQ(want.min, got.min);
      EXPECT_EQ(want.max, got.max);
    }
  }

  // Serialization is deterministic: same execution, same bytes.
  EXPECT_EQ(text, serialize_chunk_stream(s, opt, exec));
}

class ChunkStreamCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = shrunk("fig5-jam-shaped", {}, 1);
    opt_.seed = 3;
    opt_.threads = 1;
    opt_.trials_per_point = 6;
    text_ = serialize_chunk_stream(
        scenario_, opt_, run_campaign_shard(scenario_, opt_, 1, 0));
  }

  std::vector<std::string> lines() const {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start < text_.size()) {
      const std::size_t end = text_.find('\n', start);
      out.push_back(text_.substr(start, end - start));
      start = end + 1;
    }
    return out;
  }

  static std::string join(const std::vector<std::string>& ls) {
    std::string out;
    for (const auto& l : ls) {
      out += l;
      out += '\n';
    }
    return out;
  }

  Scenario scenario_;
  CampaignOptions opt_;
  std::string text_;
};

TEST_F(ChunkStreamCorruption, RejectsByteTruncation) {
  // Cut mid-line: the final newline disappears.
  EXPECT_THROW(
      parse_chunk_stream(text_.substr(0, text_.size() - 17), "cut"),
      ChunkStreamError);
  // Cut a whole record: line count disagrees with the header's promise.
  auto ls = lines();
  ls.pop_back();
  EXPECT_THROW(parse_chunk_stream(join(ls), "short"), ChunkStreamError);
  // Empty input.
  EXPECT_THROW(parse_chunk_stream("", "empty"), ChunkStreamError);
}

TEST_F(ChunkStreamCorruption, RejectsDuplicateChunkIds) {
  auto ls = lines();
  ASSERT_GE(ls.size(), 3u);
  ls[2] = ls[1];  // same record twice, line count still matches
  EXPECT_THROW(parse_chunk_stream(join(ls), "dup"), ChunkStreamError);
}

TEST_F(ChunkStreamCorruption, RejectsVersionAndFormatMismatch) {
  std::string forged = text_;
  forged.replace(forged.find("\"version\":3"), 11, "\"version\":9");
  forged = reseal_line(forged, 1);
  EXPECT_THROW(parse_chunk_stream(forged, "v9"), ChunkStreamError);

  std::string not_ours = text_;
  not_ours.replace(not_ours.find("hs-chunk-stream"), 15, "something-else-");
  EXPECT_THROW(parse_chunk_stream(not_ours, "alien"), ChunkStreamError);
}

TEST_F(ChunkStreamCorruption, MergeRejectsMismatchedStreams) {
  // Seed mismatch across shards.
  CampaignOptions other_seed = opt_;
  other_seed.seed = 4;
  std::vector<ChunkStream> mixed;
  mixed.push_back(parse_chunk_stream(
      serialize_chunk_stream(scenario_, opt_,
                             run_campaign_shard(scenario_, opt_, 2, 0)),
      "a"));
  mixed.push_back(parse_chunk_stream(
      serialize_chunk_stream(scenario_, other_seed,
                             run_campaign_shard(scenario_, other_seed, 2, 1)),
      "b"));
  EXPECT_THROW(merge_chunk_streams(scenario_, mixed), ChunkStreamError);

  // The same shard twice.
  const auto shard0 = parse_chunk_stream(
      serialize_chunk_stream(scenario_, opt_,
                             run_campaign_shard(scenario_, opt_, 2, 0)),
      "a");
  EXPECT_THROW(merge_chunk_streams(scenario_, {shard0, shard0}),
               ChunkStreamError);

  // Fewer streams than the split was planned for.
  EXPECT_THROW(merge_chunk_streams(scenario_, {shard0}), ChunkStreamError);

  // A scenario that is not the one the streams were recorded from.
  const auto whole = parse_chunk_stream(text_, "whole");
  const Scenario* other = find_scenario("fig4-fsk-profile");
  ASSERT_NE(other, nullptr);
  EXPECT_THROW(merge_chunk_streams(*other, {whole}), ChunkStreamError);

  // The right preset name but different sweep geometry (trial count):
  // the recomputed plan disagrees with the recorded chunks.
  CampaignOptions fatter = opt_;
  fatter.trials_per_point = 12;
  const auto fat = parse_chunk_stream(
      serialize_chunk_stream(scenario_, fatter,
                             run_campaign_shard(scenario_, fatter, 2, 0)),
      "fat");
  const auto thin = parse_chunk_stream(
      serialize_chunk_stream(scenario_, opt_,
                             run_campaign_shard(scenario_, opt_, 2, 1)),
      "thin");
  EXPECT_THROW(merge_chunk_streams(scenario_, {fat, thin}),
               ChunkStreamError);

  // Nothing at all.
  EXPECT_THROW(merge_chunk_streams(scenario_, {}), ChunkStreamError);
}

TEST_F(ChunkStreamCorruption, SalvageOfCompleteStreamEqualsStrictParse) {
  const ChunkStream strict = parse_chunk_stream(text_, "strict");
  const SalvagedStream s = salvage_chunk_stream(text_, "salvage");
  EXPECT_TRUE(s.header_valid);
  EXPECT_TRUE(s.complete);
  EXPECT_TRUE(s.truncation_reason.empty());
  EXPECT_EQ(s.header.chunk_count, strict.header.chunk_count);
  EXPECT_EQ(s.header.seed, strict.header.seed);
  ASSERT_EQ(s.chunks.size(), strict.chunks.size());
  for (std::size_t c = 0; c < s.chunks.size(); ++c) {
    EXPECT_EQ(s.chunks[c].ref, strict.chunks[c].ref);
  }
  EXPECT_EQ(s.trailer.threads, strict.trailer.threads);
  EXPECT_EQ(s.trailer.report, strict.trailer.report);
}

/// The salvage prefix property every recovery path leans on: whatever
/// salvage accepts is bit-equal to a prefix of the intact stream's
/// records — never a record the strict parser would reject, never a
/// reordered or altered one.
void expect_valid_prefix(const SalvagedStream& s, const ChunkStream& full) {
  ASSERT_LE(s.chunks.size(), full.chunks.size());
  for (std::size_t c = 0; c < s.chunks.size(); ++c) {
    ASSERT_EQ(s.chunks[c].ref, full.chunks[c].ref);
    for (std::size_t m = 0; m < kMetricCount; ++m) {
      const auto want = full.chunks[c].metrics[m].moments();
      const auto got = s.chunks[c].metrics[m].moments();
      ASSERT_EQ(want.count, got.count);
      ASSERT_EQ(want.mean, got.mean);
      ASSERT_EQ(want.m2, got.m2);
      ASSERT_EQ(want.min, got.min);
      ASSERT_EQ(want.max, got.max);
    }
  }
  if (s.header_valid) {
    ASSERT_EQ(s.header.seed, full.header.seed);
    ASSERT_EQ(s.header.chunk_count, full.header.chunk_count);
  }
}

TEST_F(ChunkStreamCorruption, SalvageEveryByteTruncationIsValidPrefix) {
  const ChunkStream full = parse_chunk_stream(text_, "full");
  for (std::size_t cut = 0; cut < text_.size(); ++cut) {
    const SalvagedStream s =
        salvage_chunk_stream(text_.substr(0, cut), "cut");
    ASSERT_FALSE(s.complete) << "cut at byte " << cut;
    ASSERT_FALSE(s.truncation_reason.empty()) << "cut at byte " << cut;
    expect_valid_prefix(s, full);
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "at truncation point " << cut;
    }
  }
}

TEST_F(ChunkStreamCorruption, SalvageEverySingleByteCorruptionIsCaught) {
  const ChunkStream full = parse_chunk_stream(text_, "full");
  // Exhaustive single-bit pass: the CRC (and the structural checks) must
  // catch a flip at EVERY byte position — complete is never claimed and
  // no non-prefix chunk ever survives.
  for (std::size_t pos = 0; pos < text_.size(); ++pos) {
    std::string mutated = text_;
    mutated[pos] ^= 0x01;
    const SalvagedStream s = salvage_chunk_stream(mutated, "flip");
    ASSERT_FALSE(s.complete) << "flip at byte " << pos;
    expect_valid_prefix(s, full);
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "at corrupted byte " << pos;
    }
  }
  // Randomized pass: arbitrary single-byte rewrites (any value, any
  // position, including newline bytes that shear the line structure).
  std::mt19937_64 rng(0xC0FFEE);
  for (int i = 0; i < 2000; ++i) {
    const std::size_t pos = rng() % text_.size();
    const char replacement = static_cast<char>(rng() & 0xFF);
    if (replacement == text_[pos]) continue;
    std::string mutated = text_;
    mutated[pos] = replacement;
    const SalvagedStream s = salvage_chunk_stream(mutated, "mut");
    ASSERT_FALSE(s.complete) << "rewrite at byte " << pos;
    expect_valid_prefix(s, full);
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "at rewritten byte " << pos << " iteration " << i;
    }
  }
}

TEST_F(ChunkStreamCorruption, SalvageRandomDoubleFaultsStayValidPrefixes) {
  // Truncation stacked on corruption — the nastier realistic shape (a
  // process died mid-write after a disk hiccup).
  const ChunkStream full = parse_chunk_stream(text_, "full");
  std::mt19937_64 rng(0xBADF00D);
  for (int i = 0; i < 1000; ++i) {
    std::string mutated = text_;
    mutated[rng() % mutated.size()] ^= static_cast<char>(1 + rng() % 255);
    mutated.resize(rng() % (mutated.size() + 1));
    const SalvagedStream s = salvage_chunk_stream(mutated, "double");
    ASSERT_FALSE(s.complete);
    expect_valid_prefix(s, full);
    if (::testing::Test::HasFatalFailure()) FAIL() << "iteration " << i;
  }
}

TEST_F(ChunkStreamCorruption, MergeErrorsNameShardSourceAndLine) {
  // A record whose trial window disagrees with the recomputed plan:
  // CRC-valid (resealed), in-range, but not the chunk the plan says
  // belongs there. The rejection must say which shard, stream and line.
  const auto exec0 = run_campaign_shard(scenario_, opt_, 2, 0);
  std::string text0 = serialize_chunk_stream(scenario_, opt_, exec0);
  // Shard 0 of 2, chunk_size 1, 6 trials: records are ids 0,2,4 with
  // windows (0,1),(2,3),(4,5) on lines 2,3,4. Shift line 3's window.
  const std::size_t at = text0.find("\"trial_begin\":2,\"trial_end\":3");
  ASSERT_NE(at, std::string::npos);
  text0.replace(at, 29, "\"trial_begin\":3,\"trial_end\":4");
  text0 = reseal_line(text0, 3);

  std::vector<ChunkStream> streams;
  streams.push_back(parse_chunk_stream(text0, "shard-zero.jsonl"));
  streams.push_back(parse_chunk_stream(
      serialize_chunk_stream(scenario_, opt_,
                             run_campaign_shard(scenario_, opt_, 2, 1)),
      "shard-one.jsonl"));
  try {
    merge_chunk_streams(scenario_, streams);
    FAIL() << "tampered record must not merge";
  } catch (const ChunkStreamError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("shard 0"), std::string::npos) << what;
    EXPECT_NE(what.find("shard-zero.jsonl"), std::string::npos) << what;
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
  }

  // Header disagreement names both shards and both sources.
  CampaignOptions other = opt_;
  other.seed = opt_.seed + 1;
  std::vector<ChunkStream> mixed;
  mixed.push_back(parse_chunk_stream(
      serialize_chunk_stream(scenario_, opt_,
                             run_campaign_shard(scenario_, opt_, 2, 0)),
      "seed-a.jsonl"));
  mixed.push_back(parse_chunk_stream(
      serialize_chunk_stream(scenario_, other,
                             run_campaign_shard(scenario_, other, 2, 1)),
      "seed-b.jsonl"));
  try {
    merge_chunk_streams(scenario_, mixed);
    FAIL() << "seed mismatch must not merge";
  } catch (const ChunkStreamError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("shard 1"), std::string::npos) << what;
    EXPECT_NE(what.find("seed-b.jsonl"), std::string::npos) << what;
    EXPECT_NE(what.find("seed-a.jsonl"), std::string::npos) << what;
  }
}

TEST_F(ChunkStreamCorruption, MergeRejectsRepairStreams) {
  // A repair stream (explicit chunk set from a dispatcher re-deal) is
  // valid on its own but must not enter the strict K-stream merge — the
  // dispatcher's recovery merge owns that path.
  const ShardPlan repair = make_repair_plan(scenario_, opt_, 1, 0, {1, 3});
  EXPECT_TRUE(repair.repair);
  const auto exec = run_campaign_chunks(scenario_, opt_, repair);
  const ChunkStream stream = parse_chunk_stream(
      serialize_chunk_stream(scenario_, opt_, exec), "repair.jsonl");
  EXPECT_TRUE(stream.header.repair);
  try {
    merge_chunk_streams(scenario_, {stream});
    FAIL() << "repair stream must not merge";
  } catch (const ChunkStreamError& e) {
    EXPECT_NE(std::string(e.what()).find("repair"), std::string::npos)
        << e.what();
  }
}

TEST(WorkStealing, Fig9AggregatesAndAccountingStableUnderStress) {
  // fig9's eavesdrop path, shrunk to two locations and one packet per
  // trial. 50 repetitions at every thread count: the stealing schedule
  // varies run to run, the aggregates and the deployment-pool accounting
  // must not.
  Scenario s = shrunk("fig9-eaves-ber", {1.0, 7.0}, 1);
  CampaignOptions opt;
  opt.seed = 17;
  opt.threads = 1;
  opt.trials_per_point = 3;
  const auto reference = run_campaign(s, opt);

  // Every eavesdrop trial acquires exactly one pooled deployment, so
  // builds + reuses must equal the trial count — the accounting identity
  // that catches a worker double-counting or dropping acquisitions.
  const std::size_t acquisitions =
      reference.deployments_built + reference.deployments_reused;
  EXPECT_EQ(acquisitions, reference.total_trials);

  std::vector<unsigned> thread_counts = {2, 3};
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 3) thread_counts.push_back(hw);

  for (int rep = 0; rep < 50; ++rep) {
    for (unsigned threads : thread_counts) {
      CampaignOptions parallel = opt;
      parallel.threads = threads;
      const auto result = run_campaign(s, parallel);
      expect_identical(reference, result);
      EXPECT_EQ(result.deployments_built + result.deployments_reused,
                acquisitions)
          << "rep " << rep << " threads " << threads;
      // Each worker builds at most one deployment for this single-config
      // scenario, however the steals landed.
      EXPECT_LE(result.deployments_built, static_cast<std::size_t>(threads));
      if (testing::Test::HasFailure()) return;  // don't spam 50x
    }
  }
}

TEST(WorkStealing, ChunkSizeBoundariesNotThreadsDefineAggregates) {
  // Changing thread count never changes aggregates; changing chunk_size
  // legitimately may (it changes the merge tree). Guard both directions
  // so nobody "fixes" determinism by accident of a shared accumulator.
  const Scenario s = shrunk("fig5-jam-shaped", {}, 1);
  CampaignOptions a;
  a.seed = 29;
  a.threads = 1;
  a.trials_per_point = 12;
  CampaignOptions b = a;
  b.threads = 4;
  expect_identical(run_campaign(s, a), run_campaign(s, b));

  CampaignOptions c = a;
  c.chunk_size = 5;
  const auto chunked = run_campaign(s, c);
  // Counts match even though the merge tree differs.
  EXPECT_EQ(chunked.points[0].stats(Metric::kToneBandFraction).count(),
            run_campaign(s, a)
                .points[0]
                .stats(Metric::kToneBandFraction)
                .count());
}

}  // namespace
}  // namespace hs::campaign
