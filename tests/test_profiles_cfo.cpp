// Cross-device coverage (the paper tested both the Virtuoso ICD and the
// Concerto CRT and found no significant difference) and carrier-frequency-
// offset robustness (section 6(a): the shield "compensates for any carrier
// frequency offset between its RF chain and that of the IMD").
#include <gtest/gtest.h>

#include "dsp/mixer.hpp"
#include "dsp/rng.hpp"
#include "dsp/units.hpp"
#include "imd/profiles.hpp"
#include "imd/protocol.hpp"
#include "phy/receiver.hpp"
#include "shield/deployment.hpp"
#include "shield/experiments.hpp"

namespace hs {
namespace {

class ProfileSweep
    : public ::testing::TestWithParam<imd::ImdProfile (*)()> {};

TEST_P(ProfileSweep, RelayAndJamWorkIdenticallyForBothDevices) {
  shield::DeploymentOptions opt;
  opt.seed = 2020;
  opt.imd_profile = GetParam()();
  shield::Deployment d(opt);
  ASSERT_TRUE(d.shield().antidote_ready());
  for (int i = 0; i < 3; ++i) {
    d.shield().relay_command(
        imd::make_interrogate(opt.imd_profile.serial,
                              static_cast<std::uint8_t>(i)));
    d.run_for(50e-3);
  }
  EXPECT_EQ(d.imd().stats().replies_sent, 3u);
  EXPECT_EQ(d.shield().stats().replies_decoded, 3u);
  EXPECT_GE(d.shield().stats().passive_jams, 3u);
}

TEST_P(ProfileSweep, ShieldBlocksAttacksOnBothDevices) {
  shield::AttackOptions opt;
  opt.seed = 2021;
  opt.imd_profile = GetParam()();
  opt.location_index = 2;
  opt.trials = 5;
  const auto result = shield::run_attack_experiment(opt);
  EXPECT_EQ(result.successes, 0u);
}

INSTANTIATE_TEST_SUITE_P(BothImds, ProfileSweep,
                         ::testing::Values(&imd::virtuoso_profile,
                                           &imd::concerto_profile));

class CfoSweepRx : public ::testing::TestWithParam<double> {};

TEST_P(CfoSweepRx, ReceiverToleratesRealisticCarrierOffsets) {
  // TCXO-grade MICS radios sit within a few hundred Hz of each other at
  // 403 MHz; the receiver's segmented sync correlation and the 25 kHz-wide
  // tone correlators must ride that out. (Larger offsets are measured and
  // pre-compensated with dsp::estimate_cfo — see CfoCompensation below.)
  const double cfo_hz = GetParam();
  phy::FskParams fsk;
  phy::Frame f;
  f.device_id = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3};
  f.payload.assign(16, 0xC3);
  const auto bits = phy::encode_frame(f);
  auto wave = phy::fsk_modulate(fsk, bits);
  wave = dsp::apply_cfo(wave, cfo_hz, fsk.fs);

  dsp::Rng rng(static_cast<std::uint64_t>(std::abs(cfo_hz)) + 1);
  dsp::Samples air(6000 + wave.size() + 2000);
  rng.fill_awgn(air, dsp::dbm_to_mw(-112));
  const double amp = dsp::db_to_amplitude(-45);
  for (std::size_t i = 0; i < wave.size(); ++i) {
    air[4000 + i] += amp * wave[i];
  }
  phy::FskReceiver rx(fsk);
  rx.push(air);
  auto frame = rx.pop();
  ASSERT_TRUE(frame.has_value()) << "CFO " << cfo_hz;
  EXPECT_EQ(frame->decode.status, phy::DecodeStatus::kOk);
  EXPECT_EQ(frame->decode.frame.payload, f.payload);
}

INSTANTIATE_TEST_SUITE_P(Offsets, CfoSweepRx,
                         ::testing::Values(-600.0, -300.0, -100.0, 100.0,
                                           300.0, 600.0));

TEST(CfoCompensation, EstimatorEnablesPreCorrection) {
  // The shield's compensation path: estimate the offset from a known
  // prefix, then derotate before decoding. Works even for offsets well
  // beyond crystal tolerances.
  const double cfo_hz = 9000.0;
  phy::FskParams fsk;
  phy::Frame f;
  f.device_id = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3};
  f.payload.assign(8, 0x77);
  const auto bits = phy::encode_frame(f);
  const auto clean = phy::fsk_modulate(fsk, bits);
  const auto shifted = dsp::apply_cfo(clean, cfo_hz, fsk.fs);

  // Data-aided estimate over the known preamble+sync prefix.
  const std::size_t prefix = 48 * fsk.sps;
  const double est = dsp::estimate_cfo(
      dsp::SampleView(shifted.data(), prefix),
      dsp::SampleView(clean.data(), prefix), fsk.fs);
  EXPECT_NEAR(est, cfo_hz, 20.0);

  const auto corrected = dsp::apply_cfo(shifted, -est, fsk.fs);
  phy::NoncoherentFskDemod demod(fsk);
  EXPECT_EQ(demod.demodulate(corrected, 0, bits.size()), bits);
}

}  // namespace
}  // namespace hs
