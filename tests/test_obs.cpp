// Observability subsystem: (1) Metrics.* — counter/timer Report merging
// is associative and commutative (thread-, chunk- and shard-level folds
// all agree), the thread-local WorkerScope attaches/nests/restores
// correctly, and name<->enum mappings round-trip; (2) Trace.* — recorded
// timelines are well-formed (paired B/E per tid, per-tid monotonic
// timestamps, valid JSON braces) and campaign runs populate them;
// (3) ObsCampaign.* — the end-to-end guarantees: metrics-on and
// metrics-off runs produce byte-identical canonical reports across
// presets, the chunk-stream metrics trailer round-trips byte-stably and
// aggregates across K shards as the sum of the parts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "campaign/chunk_stream.hpp"
#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "campaign/scenario.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "phy/crc.hpp"

namespace hs::obs {
namespace {

Report sample_report(std::uint64_t base) {
  Report r;
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    r.counters[i] = base * (i + 1);
  }
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    r.phases[i].calls = base + i;
    r.phases[i].ns = base * 1000 + i;
  }
  return r;
}

TEST(Metrics, ReportMergeIsAssociativeAndCommutative) {
  const Report a = sample_report(3);
  const Report b = sample_report(17);
  const Report c = sample_report(101);

  Report ab_c = a;
  ab_c.merge(b);
  ab_c.merge(c);

  Report a_bc = b;  // (b+c)+a
  a_bc.merge(c);
  a_bc.merge(a);

  Report cba = c;
  cba.merge(b);
  cba.merge(a);

  EXPECT_EQ(ab_c, a_bc);
  EXPECT_EQ(ab_c, cba);

  // Identity: merging an empty report changes nothing.
  Report with_zero = a;
  with_zero.merge(Report{});
  EXPECT_EQ(with_zero, a);
  EXPECT_TRUE(Report{}.empty());
  EXPECT_FALSE(a.empty());
}

TEST(Metrics, NamesRoundTrip) {
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const Counter c = static_cast<Counter>(i);
    Counter back{};
    ASSERT_TRUE(counter_from_name(counter_name(c), &back));
    EXPECT_EQ(back, c);
  }
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const Phase p = static_cast<Phase>(i);
    Phase back{};
    ASSERT_TRUE(phase_from_name(phase_name(p), &back));
    EXPECT_EQ(back, p);
  }
  Counter c{};
  Phase p{};
  EXPECT_FALSE(counter_from_name("not-a-counter", &c));
  EXPECT_FALSE(phase_from_name("not-a-phase", &p));
}

TEST(Metrics, WorkerScopeAccumulatesAndRestoresOnNesting) {
  // Detached thread: every instrumentation site is a no-op.
  EXPECT_EQ(tls(), nullptr);
  count(Counter::kTrials, 5);  // must not crash

  MetricsRegistry outer_registry(true);
  {
    WorkerScope outer(&outer_registry, nullptr, "outer");
    ASSERT_NE(tls(), nullptr);
    count(Counter::kTrials, 2);
    { ScopedTimer t(Phase::kTrial); }

    MetricsRegistry inner_registry(false);
    {
      WorkerScope inner(&inner_registry, nullptr, "inner");
      count(Counter::kChunks, 7);
      // Timers disabled on the inner registry: no clock, no phase entry.
      { ScopedTimer t(Phase::kWarmup); }
    }
    // Inner scope destroyed: its block went to inner_registry and the
    // outer attachment is restored.
    const Report inner_report = inner_registry.report();
    EXPECT_EQ(inner_report.counter(Counter::kChunks), 7u);
    EXPECT_EQ(inner_report.counter(Counter::kTrials), 0u);
    EXPECT_EQ(inner_report.phase(Phase::kWarmup).calls, 0u);
    EXPECT_EQ(inner_report.phase(Phase::kWarmup).ns, 0u);
    count(Counter::kTrials, 1);
  }
  EXPECT_EQ(tls(), nullptr);

  const Report outer_report = outer_registry.report();
  EXPECT_EQ(outer_report.counter(Counter::kTrials), 3u);
  EXPECT_EQ(outer_report.counter(Counter::kChunks), 0u);
  EXPECT_EQ(outer_report.phase(Phase::kTrial).calls, 1u);
}

TEST(Trace, EventsArePairedAndMonotonicPerTid) {
  TraceRecorder recorder(0);
  MetricsRegistry registry(false);
  {
    WorkerScope scope(&registry, &recorder, "test-thread");
    {
      TraceSpan outer("cat", "outer", "{\"k\":1}");
      { TraceSpan inner("cat", "inner"); }
      trace_instant("mark", "tick");
    }
    scope.flush();
  }

  const auto events = recorder.events();
  // thread_name metadata + B/E outer + B/E inner + instant.
  ASSERT_EQ(events.size(), 6u);
  EXPECT_EQ(events[0].phase, 'M');
  EXPECT_EQ(events[0].name, "thread_name");

  std::map<std::uint32_t, std::vector<const TraceEvent*>> by_tid;
  for (const auto& e : events) {
    if (e.phase != 'M') by_tid[e.tid].push_back(&e);
  }
  for (const auto& [tid, evs] : by_tid) {
    std::uint64_t last_ts = 0;
    int depth = 0;
    for (const TraceEvent* e : evs) {
      EXPECT_GE(e->ts_ns, last_ts) << "non-monotonic ts on tid " << tid;
      last_ts = e->ts_ns;
      if (e->phase == 'B') ++depth;
      if (e->phase == 'E') {
        --depth;
        EXPECT_GE(depth, 0) << "E without matching B on tid " << tid;
      }
    }
    EXPECT_EQ(depth, 0) << "unclosed span on tid " << tid;
  }

  const std::string json = recorder.to_json();
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
}

}  // namespace
}  // namespace hs::obs

namespace hs::campaign {
namespace {

Scenario shrunk(const char* preset, std::vector<double> axis_values,
                std::size_t units_per_trial) {
  const Scenario* s = find_scenario(preset);
  EXPECT_NE(s, nullptr) << preset;
  Scenario out = *s;
  if (!axis_values.empty()) out.axis_values = std::move(axis_values);
  out.units_per_trial = units_per_trial;
  return out;
}

/// Recomputes the crc field of the line containing `at`, so a forgery
/// reaches the semantic checks instead of dying at the CRC.
std::string reseal_containing_line(std::string text, std::size_t at) {
  const std::size_t begin = text.rfind('\n', at) + 1;
  std::size_t end = text.find('\n', at);
  if (end == std::string::npos) end = text.size();
  const std::size_t crc_at = text.rfind(",\"crc\":\"", end);
  EXPECT_NE(crc_at, std::string::npos);
  EXPECT_GE(crc_at, begin);
  phy::Crc16 crc;
  for (std::size_t i = begin; i < crc_at; ++i) {
    crc.update(static_cast<std::uint8_t>(text[i]));
  }
  crc.update(static_cast<std::uint8_t>('}'));
  char buf[24];
  std::snprintf(buf, sizeof buf, ",\"crc\":\"%04x\"}", crc.value());
  text.replace(crc_at, end - crc_at, buf);
  return text;
}

TEST(ObsCampaign, MetricsOnAndOffReportsAreByteIdentical) {
  // The acceptance gate: canonical CSV/JSON must not change by a byte
  // whether counters/timers/tracing are on or off, across experiment
  // kinds (pure DSP, eavesdrop, active attack).
  struct Case {
    const char* preset;
    std::vector<double> axis_values;
  };
  const std::vector<Case> cases = {
      {"fig5-jam-shaped", {}},
      {"fig8-tradeoff", {10.0, 20.0}},
      {"fig11-trigger", {1.0, 9.0}},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.preset);
    const Scenario s = shrunk(c.preset, c.axis_values, 1);
    CampaignOptions plain;
    plain.seed = 11;
    plain.threads = 2;
    plain.trials_per_point = 3;

    CampaignOptions instrumented = plain;
    instrumented.metrics_timers = true;
    obs::TraceRecorder recorder(0);
    instrumented.trace = &recorder;

    auto off = run_campaign(s, plain);
    auto on = run_campaign(s, instrumented);
    canonicalize(off);
    canonicalize(on);
    EXPECT_EQ(to_csv(off), to_csv(on));
    EXPECT_EQ(to_json(off), to_json(on));

    // The instrumented run actually collected something.
    EXPECT_GT(on.metrics.counter(obs::Counter::kTrials), 0u);
    EXPECT_GT(on.metrics.counter(obs::Counter::kChunks), 0u);
    EXPECT_GT(on.metrics.phase(obs::Phase::kTrial).calls, 0u);
    EXPECT_GT(on.metrics.phase(obs::Phase::kTrial).ns, 0u);
    EXPECT_FALSE(recorder.events().empty());
    // The uninstrumented run still counted (counters are always on) but
    // never read the clock.
    EXPECT_GT(off.metrics.counter(obs::Counter::kTrials), 0u);
    EXPECT_EQ(off.metrics.phase(obs::Phase::kTrial).ns, 0u);
  }
}

TEST(ObsCampaign, TrailerRoundTripsByteStably) {
  const Scenario s = shrunk("fig5-jam-shaped", {}, 1);
  CampaignOptions opt;
  opt.seed = 3;
  opt.threads = 1;
  opt.trials_per_point = 4;
  const auto exec = run_campaign_shard(s, opt, 1, 0);
  const std::string text = serialize_chunk_stream(s, opt, exec);

  // Parse -> reserialize from the parsed data must reproduce the trailer
  // byte-for-byte (serialization is a pure function of the execution).
  const ChunkStream stream = parse_chunk_stream(text, "trailer-rt");
  EXPECT_EQ(stream.trailer.version, obs::kMetricsVersion);
  EXPECT_EQ(stream.trailer.threads, exec.threads);
  EXPECT_EQ(stream.trailer.report, exec.metrics);
  EXPECT_EQ(text, serialize_chunk_stream(s, opt, exec));

  // A rebuilt execution carrying the parsed trailer serializes the same
  // trailer line again: the trailer is lossless.
  ShardExecution copy = exec;
  copy.metrics = stream.trailer.report;
  copy.threads = stream.trailer.threads;
  copy.wall_seconds =
      static_cast<double>(stream.trailer.wall_ns) / 1e9;
  const std::string again = serialize_chunk_stream(s, opt, copy);
  const std::size_t tpos = text.rfind("{\"trailer\"");
  const std::size_t apos = again.rfind("{\"trailer\"");
  ASSERT_NE(tpos, std::string::npos);
  ASSERT_NE(apos, std::string::npos);
  EXPECT_EQ(text.substr(0, tpos), again.substr(0, apos));
}

TEST(ObsCampaign, MergeAggregatesShardTrailers) {
  const Scenario s = shrunk("fig4-fsk-profile", {}, 1);
  CampaignOptions opt;
  opt.seed = 9;
  opt.threads = 1;
  opt.trials_per_point = 6;

  std::vector<ChunkStream> streams;
  obs::Report expected;
  unsigned expected_threads = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    const auto exec = run_campaign_shard(s, opt, 3, i);
    expected.merge(exec.metrics);
    expected_threads += exec.threads;
    streams.push_back(
        parse_chunk_stream(serialize_chunk_stream(s, opt, exec),
                           "shard-" + std::to_string(i)));
  }

  MergedMetrics merged;
  const auto result = merge_chunk_streams(s, streams, &merged);
  EXPECT_EQ(merged.shards, 3u);
  EXPECT_EQ(merged.threads, expected_threads);
  EXPECT_EQ(merged.report, expected);
  EXPECT_EQ(result.total_trials, merged.report.counter(obs::Counter::kTrials));

  // Shard order must not matter (integer addition commutes).
  std::vector<ChunkStream> reversed(streams.rbegin(), streams.rend());
  MergedMetrics merged_rev;
  merge_chunk_streams(s, reversed, &merged_rev);
  EXPECT_EQ(merged_rev.report, merged.report);
}

TEST(ObsCampaign, MetricsJsonWellFormedAndVersioned) {
  const Scenario s = shrunk("fig5-jam-shaped", {}, 1);
  CampaignOptions opt;
  opt.seed = 5;
  opt.threads = 1;
  opt.trials_per_point = 2;
  opt.metrics_timers = true;
  const auto result = run_campaign(s, opt);

  const std::string doc = metrics_report_json(
      s.name, opt.seed, 1, result.options.threads, result.wall_seconds,
      result.metrics);
  EXPECT_NE(doc.find("\"format\": \"hs-metrics\""), std::string::npos);
  EXPECT_NE(doc.find("\"version\": 2"), std::string::npos);
  EXPECT_NE(doc.find("\"counters\""), std::string::npos);
  EXPECT_NE(doc.find("\"phases\""), std::string::npos);
  // Every counter and phase name appears.
  for (std::size_t i = 0; i < obs::kCounterCount; ++i) {
    std::string quoted("\"");
    quoted += obs::counter_name(static_cast<obs::Counter>(i));
    quoted += '"';
    EXPECT_NE(doc.find(quoted), std::string::npos) << quoted;
  }
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
    std::string quoted("\"");
    quoted += obs::phase_name(static_cast<obs::Phase>(i));
    quoted += '"';
    EXPECT_NE(doc.find(quoted), std::string::npos) << quoted;
  }
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '{'),
            std::count(doc.begin(), doc.end(), '}'));
}

TEST(ObsCampaign, TruncatedTrailerIsRejected) {
  const Scenario s = shrunk("fig5-jam-shaped", {}, 1);
  CampaignOptions opt;
  opt.seed = 3;
  opt.threads = 1;
  opt.trials_per_point = 3;
  const std::string text = serialize_chunk_stream(
      s, opt, run_campaign_shard(s, opt, 1, 0));

  // Drop the trailer line entirely: line count no longer matches.
  const std::size_t tpos = text.rfind("{\"trailer\"");
  ASSERT_NE(tpos, std::string::npos);
  EXPECT_THROW(parse_chunk_stream(text.substr(0, tpos), "no-trailer"),
               ChunkStreamError);

  // Corrupt the trailer version (resealed, so the version check — not
  // the CRC — does the rejecting).
  std::string forged = text;
  const std::size_t vpos = forged.find("\"version\":2", tpos);
  ASSERT_NE(vpos, std::string::npos);
  forged.replace(vpos, 11, "\"version\":9");
  forged = reseal_containing_line(std::move(forged), vpos);
  EXPECT_THROW(parse_chunk_stream(forged, "bad-trailer-version"),
               ChunkStreamError);
}

}  // namespace
}  // namespace hs::campaign
