#include <gtest/gtest.h>

#include "dsp/rng.hpp"
#include "phy/bits.hpp"
#include "phy/crc.hpp"
#include "phy/whitening.hpp"

namespace hs::phy {
namespace {

TEST(Bits, BytesToBitsMsbFirst) {
  const ByteVec bytes = {0xA5};  // 1010 0101
  const BitVec expected = {1, 0, 1, 0, 0, 1, 0, 1};
  EXPECT_EQ(bytes_to_bits(ByteView(bytes.data(), bytes.size())), expected);
}

TEST(Bits, BitsToBytesInverse) {
  const ByteVec bytes = {0x00, 0xFF, 0x3C, 0x81};
  const auto bits = bytes_to_bits(ByteView(bytes.data(), bytes.size()));
  EXPECT_EQ(bits_to_bytes(BitView(bits.data(), bits.size())), bytes);
}

TEST(Bits, BitsToBytesRejectsPartialBytes) {
  BitVec bits(13, 1);
  EXPECT_THROW(bits_to_bytes(BitView(bits.data(), bits.size())),
               std::invalid_argument);
}

TEST(Bits, HammingDistance) {
  const BitVec a = {1, 0, 1, 1};
  const BitVec b = {1, 1, 1, 0};
  EXPECT_EQ(hamming_distance(BitView(a.data(), a.size()),
                             BitView(b.data(), b.size())),
            2u);
}

TEST(Bits, HammingDistanceMismatchedLengthThrows) {
  const BitVec a = {1, 0};
  const BitVec b = {1};
  EXPECT_THROW(hamming_distance(BitView(a.data(), a.size()),
                                BitView(b.data(), b.size())),
               std::invalid_argument);
}

TEST(Bits, HammingDistanceAtWindow) {
  const BitVec stream = {0, 0, 1, 0, 1, 1};
  const BitVec pattern = {1, 0, 1};
  EXPECT_EQ(hamming_distance_at(BitView(stream.data(), stream.size()), 2,
                                BitView(pattern.data(), pattern.size())),
            0u);
  EXPECT_THROW(hamming_distance_at(BitView(stream.data(), stream.size()), 4,
                                   BitView(pattern.data(), pattern.size())),
               std::out_of_range);
}

TEST(Bits, BitErrorRateConventions) {
  EXPECT_DOUBLE_EQ(bit_error_rate({}, {}), 0.5);
  const BitVec sent = {1, 1, 1, 1};
  const BitVec good = {1, 1, 1, 1};
  const BitVec half = {1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(bit_error_rate(BitView(sent.data(), 4),
                                  BitView(good.data(), 4)),
                   0.0);
  EXPECT_DOUBLE_EQ(bit_error_rate(BitView(sent.data(), 4),
                                  BitView(half.data(), 4)),
                   0.5);
  // Missing received bits are charged at 1/2 each.
  EXPECT_DOUBLE_EQ(bit_error_rate(BitView(sent.data(), 4),
                                  BitView(good.data(), 2)),
                   (0.0 + 0.5 * 2.0) / 4.0);
}

TEST(Bits, AppendReadUintRoundTrip) {
  BitVec bits;
  append_uint(bits, 0x2DD4, 16);
  append_uint(bits, 7, 3);
  EXPECT_EQ(bits.size(), 19u);
  EXPECT_EQ(read_uint(BitView(bits.data(), bits.size()), 0, 16), 0x2DD4u);
  EXPECT_EQ(read_uint(BitView(bits.data(), bits.size()), 16, 3), 7u);
  EXPECT_THROW(read_uint(BitView(bits.data(), bits.size()), 16, 4),
               std::out_of_range);
}

TEST(Bits, FlipBits) {
  BitVec bits = {0, 0, 0, 0};
  const std::size_t positions[] = {1, 3, 99};
  flip_bits(bits, std::span<const std::size_t>(positions, 3));
  EXPECT_EQ(bits, (BitVec{0, 1, 0, 1}));
}

TEST(Crc16, KnownCheckValue) {
  // CRC-16/CCITT-FALSE check value for "123456789".
  const ByteVec msg = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc16_ccitt(ByteView(msg.data(), msg.size())), 0x29B1);
}

TEST(Crc16, EmptyIsInit) {
  EXPECT_EQ(crc16_ccitt({}), 0xFFFF);
}

TEST(Crc16, IncrementalMatchesOneShot) {
  ByteVec msg(100);
  for (std::size_t i = 0; i < msg.size(); ++i) {
    msg[i] = static_cast<std::uint8_t>(i * 3);
  }
  Crc16 crc;
  for (auto b : msg) crc.update(b);
  EXPECT_EQ(crc.value(), crc16_ccitt(ByteView(msg.data(), msg.size())));
}

TEST(Crc16, ResetRestoresInit) {
  Crc16 crc;
  crc.update(0x42);
  crc.reset();
  EXPECT_EQ(crc.value(), 0xFFFF);
}

class CrcBitFlipSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CrcBitFlipSweep, DetectsEverySingleBitFlip) {
  // Property: CRC-16 detects all single-bit errors.
  ByteVec msg = {0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x42};
  const auto clean = crc16_ccitt(ByteView(msg.data(), msg.size()));
  const std::size_t bit = GetParam();
  msg[bit / 8] ^= static_cast<std::uint8_t>(0x80 >> (bit % 8));
  EXPECT_NE(crc16_ccitt(ByteView(msg.data(), msg.size())), clean);
}

INSTANTIATE_TEST_SUITE_P(AllBits, CrcBitFlipSweep,
                         ::testing::Range<std::size_t>(0, 48));

TEST(Crc16, DetectsDoubleBitFlips) {
  dsp::Rng rng(3);
  ByteVec msg(32);
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next_u64());
  const auto clean = crc16_ccitt(ByteView(msg.data(), msg.size()));
  for (int trial = 0; trial < 200; ++trial) {
    ByteVec corrupted = msg;
    const auto b1 = rng.uniform_u64(msg.size() * 8);
    auto b2 = rng.uniform_u64(msg.size() * 8);
    if (b2 == b1) b2 = (b2 + 1) % (msg.size() * 8);
    corrupted[b1 / 8] ^= static_cast<std::uint8_t>(0x80 >> (b1 % 8));
    corrupted[b2 / 8] ^= static_cast<std::uint8_t>(0x80 >> (b2 % 8));
    EXPECT_NE(crc16_ccitt(ByteView(corrupted.data(), corrupted.size())),
              clean);
  }
}

TEST(Whitening, SelfInverse) {
  dsp::Rng rng(4);
  BitVec bits(333);
  for (auto& b : bits) b = rng.next_u64() & 1;
  const BitVec original = bits;
  Whitener w1;
  w1.apply(bits);
  EXPECT_NE(bits, original);
  Whitener w2;
  w2.apply(bits);
  EXPECT_EQ(bits, original);
}

TEST(Whitening, BreaksConstantRuns) {
  BitVec zeros(256, 0);
  Whitener w;
  w.apply(zeros);
  std::size_t ones = 0;
  for (auto b : zeros) ones += b;
  // The LFSR sequence is balanced-ish; a constant run must not survive.
  EXPECT_GT(ones, 96u);
  EXPECT_LT(ones, 160u);
}

TEST(Whitening, ZeroSeedRemapped) {
  Whitener w(0);  // all-zero LFSR state would never produce output
  BitVec bits(64, 0);
  w.apply(bits);
  std::size_t ones = 0;
  for (auto b : bits) ones += b;
  EXPECT_GT(ones, 0u);
}

TEST(Whitening, ResetReproducesSequence) {
  Whitener w(0x1AB);
  BitVec a(64, 0), b(64, 0);
  w.apply(a);
  w.reset(0x1AB);
  w.apply(b);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace hs::phy
