// Warm-state snapshot subsystem tests: exact state serialization round
// trips, strict rejection of corrupted/truncated/version-mismatched
// documents (no partial restores, ever), the keyed snapshot cache with
// its disk fallback, deployment save/restore bit-identity — including a
// randomized round-trip property test — and campaign-level byte identity
// of warm-restored runs against cold runs for every scenario preset.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>

#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "campaign/scenario.hpp"
#include "dsp/rng.hpp"
#include "imd/profiles.hpp"
#include "shield/deployment.hpp"
#include "shield/trial_context.hpp"
#include "snapshot/snapshot_cache.hpp"
#include "snapshot/state_io.hpp"

namespace hs {
namespace {

using snapshot::SnapshotCache;
using snapshot::SnapshotError;
using snapshot::StateDoc;
using snapshot::StateReader;
using snapshot::StateWriter;

// ---- StateWriter / StateReader --------------------------------------------

TEST(StateIo, RoundTripsEveryEntryType) {
  StateWriter w;
  w.begin("outer");
  w.u64("answer", 42);
  w.u64("max", UINT64_MAX);
  w.f64("pi", 3.141592653589793);
  w.f64("neg_zero", -0.0);
  w.f64("denormal", 5e-324);
  w.f64("huge", 1.7976931348623157e308);
  w.boolean("yes", true);
  w.boolean("no", false);
  w.str("empty", "");
  w.str("tricky", "a b\\c\nd\te\x01f");
  w.cx("z", dsp::cplx{1.5, -2.25});
  w.f64_vec("vec", std::vector<double>{1.0, -0.5, 1e-300});
  w.f64_vec("empty_vec", std::vector<double>{});
  dsp::Samples s{{1.0, 2.0}, {-3.0, 4.0}};
  w.samples("samples", dsp::SampleView(s));
  dsp::SoaSamples soa(3);
  for (std::size_t i = 0; i < 3; ++i) {
    soa.re()[i] = 0.1 * static_cast<double>(i);
    soa.im()[i] = -0.2 * static_cast<double>(i);
  }
  w.soa("soa", soa.view());
  w.bytes("bytes", std::vector<std::uint8_t>{0x00, 0x7f, 0xff});
  w.bytes("no_bytes", std::vector<std::uint8_t>{});
  w.end("outer");

  const std::string text = w.finish();
  const StateDoc doc = StateDoc::parse(text, "test");
  StateReader r(doc);
  r.begin("outer");
  EXPECT_EQ(r.u64("answer"), 42u);
  EXPECT_EQ(r.u64("max"), UINT64_MAX);
  EXPECT_EQ(r.f64("pi"), 3.141592653589793);
  const double nz = r.f64("neg_zero");
  EXPECT_TRUE(std::signbit(nz));
  EXPECT_EQ(r.f64("denormal"), 5e-324);
  EXPECT_EQ(r.f64("huge"), 1.7976931348623157e308);
  EXPECT_TRUE(r.boolean("yes"));
  EXPECT_FALSE(r.boolean("no"));
  EXPECT_EQ(r.str("empty"), "");
  EXPECT_EQ(r.str("tricky"), "a b\\c\nd\te\x01f");
  EXPECT_EQ(r.cx("z"), (dsp::cplx{1.5, -2.25}));
  EXPECT_EQ(r.f64_vec("vec"), (std::vector<double>{1.0, -0.5, 1e-300}));
  EXPECT_TRUE(r.f64_vec("empty_vec").empty());
  EXPECT_EQ(r.samples("samples"), s);
  dsp::SoaSamples soa2;
  r.soa("soa", soa2);
  ASSERT_EQ(soa2.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(soa2.re()[i], soa.re()[i]);
    EXPECT_EQ(soa2.im()[i], soa.im()[i]);
  }
  EXPECT_EQ(r.bytes("bytes"), (std::vector<std::uint8_t>{0x00, 0x7f, 0xff}));
  EXPECT_TRUE(r.bytes("no_bytes").empty());
  r.end("outer");
  r.expect_exhausted();
}

TEST(StateIo, HexFloatsAreBitExact) {
  dsp::Rng rng(123, "hexfloat-test");
  StateWriter w;
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) {
    // Spread across magnitudes, both signs.
    const double v = (rng.uniform() - 0.5) *
                     std::pow(10.0, rng.uniform() * 600.0 - 300.0);
    values.push_back(v);
    w.f64("v", v);
  }
  const StateDoc doc = StateDoc::parse(w.finish(), "test");
  StateReader r(doc);
  for (double want : values) {
    const double got = r.f64("v");
    EXPECT_EQ(std::memcmp(&got, &want, sizeof(double)), 0);
  }
}

TEST(StateIo, RejectsForeignAndVersionMismatchedDocuments) {
  EXPECT_THROW(StateDoc::parse("", "t"), SnapshotError);
  EXPECT_THROW(StateDoc::parse("{\"json\": true}\n", "t"), SnapshotError);
  // A future version must be refused, not half-understood.
  try {
    StateDoc::parse("hs-snapshot v2\nu k 1\nsha256 x\n", "t");
    FAIL() << "v2 document was accepted";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(StateIo, RejectsTruncationAtEveryBoundary) {
  StateWriter w;
  w.begin("s");
  w.u64("a", 1);
  w.f64_vec("v", std::vector<double>{1.0, 2.0, 3.0});
  w.end("s");
  const std::string text = w.finish();
  // Any strict prefix must be rejected — mid-line, at line boundaries,
  // with or without the checksum trailer.
  for (std::size_t len = 0; len < text.size(); ++len) {
    EXPECT_THROW(StateDoc::parse(text.substr(0, len), "t"), SnapshotError)
        << "prefix of length " << len << " was accepted";
  }
  EXPECT_NO_THROW(StateDoc::parse(text, "t"));
}

TEST(StateIo, RejectsSingleByteCorruption) {
  StateWriter w;
  w.begin("s");
  w.u64("count", 7);
  w.str("name", "x");
  w.end("s");
  const std::string text = w.finish();
  for (std::size_t i = 0; i < text.size(); ++i) {
    std::string bad = text;
    bad[i] = bad[i] == 'Q' ? 'R' : 'Q';
    EXPECT_THROW(StateDoc::parse(bad, "t"), SnapshotError)
        << "corrupting byte " << i << " went unnoticed";
  }
}

TEST(StateIo, RejectsUnbalancedSectionsAndBadPayloads) {
  const auto parse_body = [](const std::string& body) {
    // Assemble a correctly checksummed document around the body, so the
    // structural validation (not the checksum) is what rejects it.
    std::string text = "hs-snapshot v1\n" + body + "sha256 " +
                       snapshot::sha256_hex(body) + "\n";
    return StateDoc::parse(text, "t");
  };
  EXPECT_THROW(parse_body("( open\n"), SnapshotError);
  EXPECT_THROW(parse_body(") never_opened\n"), SnapshotError);
  EXPECT_THROW(parse_body("( a\n) b\n"), SnapshotError);
  EXPECT_THROW(parse_body("u k notanumber\n"), SnapshotError);
  EXPECT_THROW(parse_body("u k 99999999999999999999999\n"), SnapshotError);
  EXPECT_THROW(parse_body("b k 2\n"), SnapshotError);
  EXPECT_THROW(parse_body("f k nothex\n"), SnapshotError);
  EXPECT_THROW(parse_body("v k 3 0x1p0\n"), SnapshotError);  // count lies
  // A corrupted (huge) count must fail as a SnapshotError BEFORE any
  // allocation, never as std::length_error/bad_alloc escaping the
  // cold-fallback handlers.
  EXPECT_THROW(parse_body("v k 18446744073709551615 0x1p0\n"), SnapshotError);
  EXPECT_THROW(parse_body("y k 2 zz!!\n"), SnapshotError);
  EXPECT_THROW(parse_body("y k 4 abcd\n"), SnapshotError);  // short run
  EXPECT_THROW(parse_body("? k 1\n"), SnapshotError);       // unknown tag
  EXPECT_THROW(parse_body("u k 1 trailing\n"), SnapshotError);
  EXPECT_NO_THROW(parse_body("u k 1\n"));
}

TEST(StateIo, ReaderRejectsShapeSkew) {
  StateWriter w;
  w.u64("a", 1);
  w.f64("b", 2.0);
  const StateDoc doc = StateDoc::parse(w.finish(), "t");
  {
    StateReader r(doc);
    EXPECT_THROW(r.u64("wrong_key"), SnapshotError);
  }
  {
    StateReader r(doc);
    EXPECT_THROW(r.f64("a"), SnapshotError);  // wrong tag
  }
  {
    StateReader r(doc);
    EXPECT_EQ(r.u64("a"), 1u);
    EXPECT_THROW(r.expect_exhausted(), SnapshotError);  // 'b' unread
    EXPECT_EQ(r.f64("b"), 2.0);
    EXPECT_THROW(r.f64("c"), SnapshotError);  // read past end
  }
}

TEST(StateIo, RngStreamPositionRoundTrips) {
  dsp::Rng a(9, "stream");
  for (int i = 0; i < 17; ++i) a.next_u64();  // advance mid-stream
  StateWriter w;
  snapshot::write_rng(w, "rng", a);
  const StateDoc doc = StateDoc::parse(w.finish(), "t");
  StateReader r(doc);
  dsp::Rng b(1);  // unrelated start state
  snapshot::read_rng(r, "rng", b);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

// ---- SnapshotCache --------------------------------------------------------

std::string make_temp_dir() {
  char tmpl[] = "/tmp/hs-snapshot-test-XXXXXX";
  const char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

std::string tiny_snapshot() {
  StateWriter w;
  w.begin("x");
  w.u64("v", 5);
  w.end("x");
  return w.finish();
}

TEST(SnapshotCacheTest, MemoryStoreAndFind) {
  SnapshotCache cache;
  EXPECT_EQ(cache.find("k"), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  const auto stored = cache.store("k", tiny_snapshot());
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(cache.find("k").get(), stored.get());
  EXPECT_EQ(cache.hits(), 1u);
  // Unparseable payloads must never enter the cache.
  EXPECT_THROW(cache.store("bad", "not a snapshot"), SnapshotError);
  EXPECT_EQ(cache.find("bad"), nullptr);
}

TEST(SnapshotCacheTest, DiskPersistsAcrossCacheInstances) {
  const std::string dir = make_temp_dir();
  {
    SnapshotCache writer_cache(dir);
    writer_cache.store("key1", tiny_snapshot());
  }
  SnapshotCache reader_cache(dir);
  const auto doc = reader_cache.find("key1");
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(reader_cache.disk_loads(), 1u);
  StateReader r(*doc);
  r.begin("x");
  EXPECT_EQ(r.u64("v"), 5u);
  r.end("x");
}

TEST(SnapshotCacheTest, UnusableDiskFilesAreMissesNotCrashes) {
  const std::string dir = make_temp_dir();
  const auto write = [&](const std::string& key, const std::string& body) {
    std::FILE* f = std::fopen((dir + "/" + key + ".hsnap").c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
  };
  write("garbage", "this is not a snapshot at all");
  const std::string good = tiny_snapshot();
  write("truncated", good.substr(0, good.size() / 2));
  std::string corrupt = good;
  corrupt[good.size() / 2] ^= 1;
  write("corrupt", corrupt);
  write("wrong_version", "hs-snapshot v99\nu k 1\nsha256 x\n");

  SnapshotCache cache(dir);
  EXPECT_EQ(cache.find("garbage"), nullptr);
  EXPECT_EQ(cache.find("truncated"), nullptr);
  EXPECT_EQ(cache.find("corrupt"), nullptr);
  EXPECT_EQ(cache.find("wrong_version"), nullptr);
  EXPECT_EQ(cache.misses(), 4u);
  // load_snapshot_file is the strict single-file entry point: it throws
  // where find() degrades to a miss.
  EXPECT_THROW(snapshot::load_snapshot_file(dir + "/corrupt.hsnap"),
               SnapshotError);
  EXPECT_THROW(snapshot::load_snapshot_file(dir + "/nonexistent.hsnap"),
               SnapshotError);
}

// ---- Deployment save/restore ----------------------------------------------

TEST(DeploymentSnapshot, WarmKeyIsConfigurationSensitive) {
  shield::DeploymentOptions base;
  base.seed = 3;
  base.warmup_seed = 11;
  const std::string key = shield::deployment_warm_key(base);

  // The trial seed must NOT key in two-phase mode: one snapshot serves
  // every trial.
  shield::DeploymentOptions other_trial = base;
  other_trial.seed = 4;
  EXPECT_EQ(shield::deployment_warm_key(other_trial), key);

  // Everything else must.
  shield::DeploymentOptions w = base;
  w.warmup_seed = 12;
  EXPECT_NE(shield::deployment_warm_key(w), key);
  shield::DeploymentOptions sigma = base;
  sigma.shield_config.hardware_error_sigma = 0.1;
  EXPECT_NE(shield::deployment_warm_key(sigma), key);
  shield::DeploymentOptions profile = base;
  profile.imd_profile = imd::concerto_profile();
  EXPECT_NE(shield::deployment_warm_key(profile), key);
  shield::DeploymentOptions observer = base;
  observer.with_observer = true;
  EXPECT_NE(shield::deployment_warm_key(observer), key);
  shield::DeploymentOptions no_shield = base;
  no_shield.shield_present = false;
  EXPECT_NE(shield::deployment_warm_key(no_shield), key);

  // In legacy single-phase mode warm-up consumed the trial seed, so the
  // trial seed keys.
  shield::DeploymentOptions legacy = base;
  legacy.warmup_seed = 0;
  shield::DeploymentOptions legacy_other = legacy;
  legacy_other.seed = 4;
  EXPECT_NE(shield::deployment_warm_key(legacy),
            shield::deployment_warm_key(legacy_other));
}

TEST(DeploymentSnapshot, RestoreMatchesColdWarmupExactly) {
  shield::DeploymentOptions opt;
  opt.seed = 21;
  opt.warmup_seed = 5;
  opt.with_observer = true;

  shield::Deployment cold(opt);
  const std::string snap = cold.save_warm();
  const StateDoc doc = StateDoc::parse(snap, "mem");

  // Restore into a freshly built (warm-up-skipping) deployment...
  shield::Deployment restored(doc, opt);
  EXPECT_EQ(restored.save_warm(), snap);

  // ...and into a pooled deployment previously holding another trial.
  shield::DeploymentOptions other = opt;
  other.seed = 99;
  shield::Deployment pooled(other);
  pooled.restore_warm(doc, opt);
  EXPECT_EQ(pooled.save_warm(), snap);

  // All three must now evolve identically, bit for bit.
  cold.run_for(2e-3);
  restored.run_for(2e-3);
  pooled.run_for(2e-3);
  const std::string after = cold.save_warm();
  EXPECT_EQ(restored.save_warm(), after);
  EXPECT_EQ(pooled.save_warm(), after);
}

TEST(DeploymentSnapshot, RestoreRejectsMismatches) {
  shield::DeploymentOptions opt;
  opt.seed = 8;
  opt.warmup_seed = 2;
  shield::Deployment d(opt);
  const StateDoc doc = StateDoc::parse(d.save_warm(), "mem");

  // Different configuration => key mismatch, hard error.
  shield::DeploymentOptions other = opt;
  other.shield_config.hardware_error_sigma = 0.2;
  shield::Deployment victim(other);
  EXPECT_THROW(victim.restore_warm(doc, other), SnapshotError);

  // Mismatched node set => hard error before any state is touched.
  shield::DeploymentOptions observed = opt;
  observed.with_observer = true;
  EXPECT_THROW(victim.restore_warm(doc, observed), SnapshotError);
}

TEST(DeploymentSnapshot, RandomizedRoundTripProperty) {
  // Property: for randomized configurations and a randomized amount of
  // post-warm-up evolution, save -> restore -> save is byte-identical,
  // and the restored deployment continues bit-identically to the
  // original. begin_trial() is replayed on the original because
  // restore_warm ends with it by contract.
  dsp::Rng rng(4242, "snapshot-property");
  for (int rep = 0; rep < 8; ++rep) {
    SCOPED_TRACE(rep);
    shield::DeploymentOptions opt;
    opt.seed = rng.next_u64() | 1;
    opt.warmup_seed = rng.next_u64() | 1;
    opt.shield_present = rep != 3;  // one no-shield rep
    opt.with_observer = (rep % 3) == 1;
    opt.imd_profile = (rep % 2) == 0 ? imd::virtuoso_profile()
                                     : imd::concerto_profile();
    if ((rep % 4) == 2) opt.shield_config.hardware_error_sigma = 0.05;
    opt.warmup_s = 2e-3 + 1e-3 * static_cast<double>(rep % 3);

    shield::Deployment original(opt);
    const double evolve_s = 1e-3 * static_cast<double>(rng.uniform_u64(4));
    if (evolve_s > 0.0) original.run_for(evolve_s);

    const std::string snap = original.save_warm();
    const StateDoc doc = StateDoc::parse(snap, "mem");
    shield::Deployment restored(doc, opt);
    original.begin_trial(opt.seed);
    EXPECT_EQ(restored.save_warm(), original.save_warm());

    original.run_for(2e-3);
    restored.run_for(2e-3);
    EXPECT_EQ(restored.save_warm(), original.save_warm());
  }
}

// ---- TrialContext fallback ------------------------------------------------

TEST(TrialContextSnapshot, CorruptCacheEntryFallsBackToColdBitIdentically) {
  const std::string dir = make_temp_dir();
  shield::DeploymentOptions opt;
  opt.seed = 31;

  // Reference: cold two-phase warm-up, no cache.
  shield::TrialContext cold;
  cold.set_warm_policy(7, nullptr);
  const std::string want = cold.deployment(opt).save_warm();

  // Populate the cache, then corrupt the persisted file and force the
  // next process to read it from disk.
  const shield::DeploymentOptions keyed = [&] {
    shield::DeploymentOptions k = opt;
    k.warmup_seed = 7;
    return k;
  }();
  const std::string key = shield::deployment_warm_key(keyed);
  {
    SnapshotCache cache(dir);
    shield::TrialContext warm;
    warm.set_warm_policy(7, &cache);
    warm.deployment(opt);
    EXPECT_EQ(warm.snapshots_saved(), 1u);
  }
  const std::string path = dir + "/" + key + ".hsnap";
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 100, SEEK_SET);
  std::fputc('!', f);
  std::fclose(f);

  SnapshotCache cache(dir);
  shield::TrialContext ctx;
  ctx.set_warm_policy(7, &cache);
  shield::Deployment& d = ctx.deployment(opt);
  // The corrupted file was a miss; the context warmed up cold and
  // republished — state identical to the no-cache reference.
  EXPECT_EQ(d.save_warm(), want);
  EXPECT_EQ(ctx.snapshots_restored(), 0u);
  EXPECT_EQ(ctx.snapshots_saved(), 1u);
}

// ---- Campaign-level byte identity -----------------------------------------

campaign::Scenario shrink(const campaign::Scenario& preset) {
  campaign::Scenario s = preset;
  if (s.axis != campaign::SweepAxis::kNone && s.axis_values.size() > 2) {
    s.axis_values.resize(2);
  }
  s.units_per_trial = std::min<std::size_t>(s.units_per_trial, 1);
  s.default_trials = 2;
  return s;
}

TEST(CampaignSnapshot, WarmRunsByteIdenticalToColdForEveryPreset) {
  // The tentpole invariant, enforced preset by preset: a warm-restored
  // campaign emits byte-identical canonical CSV and JSON to a cold run.
  for (const auto& preset : campaign::scenario_presets()) {
    SCOPED_TRACE(preset.name);
    const campaign::Scenario s = shrink(preset);

    campaign::CampaignOptions cold;
    cold.seed = 13;
    cold.threads = 1;
    cold.snapshots = false;
    auto cold_result = campaign::run_campaign(s, cold);

    campaign::CampaignOptions warm = cold;
    warm.snapshots = true;
    auto warm_result = campaign::run_campaign(s, warm);
    if (campaign::experiment_uses_deployments(s.kind)) {
      // Under WarmStrategy::kRestoreOnBuild a 1-thread run may satisfy
      // every later trial by resetting its pooled deployment, so the
      // cache's footprint is "published at least one snapshot" (and
      // restored on any rebuild), not "restored every trial".
      EXPECT_GT(warm_result.snapshots_restored + warm_result.snapshots_saved,
                0u);
    }

    campaign::canonicalize(cold_result);
    campaign::canonicalize(warm_result);
    EXPECT_EQ(campaign::to_csv(warm_result), campaign::to_csv(cold_result));
    EXPECT_EQ(campaign::to_json(warm_result),
              campaign::to_json(cold_result));
  }
}

TEST(CampaignSnapshot, SnapshotDirIsSharedAcrossProcessesAndRuns) {
  // Simulates the sharded flow: one run populates <dir>, a later run (a
  // different process in real life) restores from disk without a single
  // cold warm-up — and still reproduces the cold aggregates exactly.
  const std::string dir = make_temp_dir();
  campaign::Scenario s = shrink(*campaign::find_scenario("fig8-tradeoff"));

  campaign::CampaignOptions cold;
  cold.seed = 29;
  cold.threads = 1;
  cold.snapshots = false;
  auto cold_result = campaign::run_campaign(s, cold);

  campaign::CampaignOptions first = cold;
  first.snapshots = true;
  first.snapshot_dir = dir;
  const auto first_result = campaign::run_campaign(s, first);
  EXPECT_GT(first_result.snapshots_saved, 0u);

  auto second_result = campaign::run_campaign(s, first);
  EXPECT_EQ(second_result.snapshots_saved, 0u);  // all keys on disk
  EXPECT_GT(second_result.snapshots_restored, 0u);

  campaign::canonicalize(cold_result);
  campaign::canonicalize(second_result);
  EXPECT_EQ(campaign::to_csv(second_result), campaign::to_csv(cold_result));
  EXPECT_EQ(campaign::to_json(second_result),
            campaign::to_json(cold_result));
}

}  // namespace
}  // namespace hs
