// SHA-256 / HMAC / HKDF against FIPS 180-4, RFC 4231 and RFC 5869 vectors.
#include <gtest/gtest.h>

#include <string>

#include "crypto/sha256.hpp"

namespace hs::crypto {
namespace {

std::string to_hex(ByteView bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (std::uint8_t b : bytes) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xF]);
  }
  return out;
}

Bytes from_string(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

TEST(Sha256, EmptyInput) {
  const auto d = Sha256::hash({});
  EXPECT_EQ(to_hex(ByteView(d.data(), d.size())),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b8"
            "55");
}

TEST(Sha256, Abc) {
  const auto msg = from_string("abc");
  const auto d = Sha256::hash(ByteView(msg.data(), msg.size()));
  EXPECT_EQ(to_hex(ByteView(d.data(), d.size())),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015"
            "ad");
}

TEST(Sha256, TwoBlockMessage) {
  const auto msg =
      from_string("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  const auto d = Sha256::hash(ByteView(msg.data(), msg.size()));
  EXPECT_EQ(to_hex(ByteView(d.data(), d.size())),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06"
            "c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(ByteView(chunk.data(), chunk.size()));
  const auto d = h.finalize();
  EXPECT_EQ(to_hex(ByteView(d.data(), d.size())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112c"
            "d0");
}

TEST(Sha256, ResetAllowsReuse) {
  Sha256 h;
  const auto m1 = from_string("abc");
  h.update(ByteView(m1.data(), m1.size()));
  h.finalize();
  h.reset();
  h.update(ByteView(m1.data(), m1.size()));
  const auto d = h.finalize();
  EXPECT_EQ(to_hex(ByteView(d.data(), d.size())),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015"
            "ad");
}

class Sha256Chunking : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Sha256Chunking, IncrementalMatchesOneShot) {
  const std::size_t chunk = GetParam();
  Bytes msg(731);
  for (std::size_t i = 0; i < msg.size(); ++i) {
    msg[i] = static_cast<std::uint8_t>(i * 7 + 3);
  }
  const auto oneshot = Sha256::hash(ByteView(msg.data(), msg.size()));
  Sha256 h;
  for (std::size_t i = 0; i < msg.size(); i += chunk) {
    const std::size_t n = std::min(chunk, msg.size() - i);
    h.update(ByteView(msg.data() + i, n));
  }
  EXPECT_EQ(h.finalize(), oneshot);
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, Sha256Chunking,
                         ::testing::Values(1, 3, 17, 63, 64, 65, 128, 731));

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const auto msg = from_string("Hi There");
  const auto tag = hmac_sha256(ByteView(key.data(), key.size()),
                               ByteView(msg.data(), msg.size()));
  EXPECT_EQ(to_hex(ByteView(tag.data(), tag.size())),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cf"
            "f7");
}

TEST(Hmac, Rfc4231Case2) {
  const auto key = from_string("Jefe");
  const auto msg = from_string("what do ya want for nothing?");
  const auto tag = hmac_sha256(ByteView(key.data(), key.size()),
                               ByteView(msg.data(), msg.size()));
  EXPECT_EQ(to_hex(ByteView(tag.data(), tag.size())),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec38"
            "43");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  const Bytes key(131, 0xaa);
  const auto msg =
      from_string("Test Using Larger Than Block-Size Key - Hash Key First");
  const auto tag = hmac_sha256(ByteView(key.data(), key.size()),
                               ByteView(msg.data(), msg.size()));
  EXPECT_EQ(to_hex(ByteView(tag.data(), tag.size())),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f"
            "54");
}

TEST(Hkdf, Rfc5869Case1) {
  Bytes ikm(22, 0x0b);
  Bytes salt(13);
  for (std::size_t i = 0; i < salt.size(); ++i) {
    salt[i] = static_cast<std::uint8_t>(i);
  }
  Bytes info(10);
  for (std::size_t i = 0; i < info.size(); ++i) {
    info[i] = static_cast<std::uint8_t>(0xf0 + i);
  }
  const auto okm = hkdf_sha256(ByteView(salt.data(), salt.size()),
                               ByteView(ikm.data(), ikm.size()),
                               ByteView(info.data(), info.size()), 42);
  EXPECT_EQ(to_hex(ByteView(okm.data(), okm.size())),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5"
            "bf34007208d5b887185865");
}

TEST(Hkdf, DifferentInfoDifferentKeys) {
  const auto ikm = from_string("pairing-secret");
  const auto a = hkdf_sha256({}, ByteView(ikm.data(), ikm.size()),
                             ByteView(reinterpret_cast<const std::uint8_t*>(
                                          "shield->prog"),
                                      12),
                             32);
  const auto b = hkdf_sha256({}, ByteView(ikm.data(), ikm.size()),
                             ByteView(reinterpret_cast<const std::uint8_t*>(
                                          "prog->shield"),
                                      12),
                             32);
  EXPECT_NE(a, b);
}

TEST(Hkdf, LengthTooLargeThrows) {
  EXPECT_THROW(hkdf_sha256({}, {}, {}, 255 * 32 + 1), std::invalid_argument);
}

TEST(Hkdf, RequestedLengthHonored) {
  for (std::size_t len : {1u, 16u, 32u, 33u, 64u, 100u}) {
    EXPECT_EQ(hkdf_sha256({}, {}, {}, len).size(), len);
  }
}

}  // namespace
}  // namespace hs::crypto
