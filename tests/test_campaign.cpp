#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "campaign/scenario.hpp"
#include "campaign/stats.hpp"
#include "dsp/rng.hpp"
#include "shield/calibrate.hpp"
#include "shield/trial_context.hpp"

namespace hs::campaign {
namespace {

// A fast scenario for engine tests: spectrum trials avoid the full
// deployment simulation, so many trials run in milliseconds.
Scenario fast_scenario() {
  Scenario s = *find_scenario("fig5-jam-shaped");
  s.default_trials = 24;
  return s;
}

void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t p = 0; p < a.points.size(); ++p) {
    for (std::size_t m = 0; m < kMetricCount; ++m) {
      const auto& sa = a.points[p].metrics[m];
      const auto& sb = b.points[p].metrics[m];
      EXPECT_EQ(sa.count(), sb.count());
      // Bit-identical, not approximately equal.
      EXPECT_EQ(sa.mean(), sb.mean());
      EXPECT_EQ(sa.stddev(), sb.stddev());
      EXPECT_EQ(sa.min(), sb.min());
      EXPECT_EQ(sa.max(), sb.max());
    }
  }
}

TEST(StreamingStats, MatchesSerialReference) {
  dsp::Rng rng(42, "stats-test");
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.gaussian(3.0, 2.5));

  StreamingStats st;
  double sum = 0.0, sum_sq = 0.0, mn = xs[0], mx = xs[0];
  for (double x : xs) {
    st.add(x);
    sum += x;
    sum_sq += x * x;
    mn = std::min(mn, x);
    mx = std::max(mx, x);
  }
  const double n = static_cast<double>(xs.size());
  const double mean = sum / n;
  // Sample variance (Bessel's correction): sum of squared deviations over
  // n-1, the estimator variance() reports.
  const double var = (sum_sq - n * mean * mean) / (n - 1.0);

  EXPECT_EQ(st.count(), xs.size());
  EXPECT_NEAR(st.mean(), mean, 1e-12);
  EXPECT_NEAR(st.variance(), var, 1e-9);
  EXPECT_EQ(st.min(), mn);
  EXPECT_EQ(st.max(), mx);
}

TEST(StreamingStats, BesselCorrection) {
  StreamingStats st;
  st.add(1.0);
  EXPECT_EQ(st.variance(), 0.0);  // undefined for n < 2 -> 0
  st.add(3.0);
  // Deviations +-1 around mean 2: m2 = 2, sample variance 2/(2-1) = 2
  // (the population estimator would report 1).
  EXPECT_DOUBLE_EQ(st.variance(), 2.0);
  EXPECT_DOUBLE_EQ(st.stddev(), std::sqrt(2.0));
}

TEST(StreamingStats, MergeEqualsSequentialFeed) {
  dsp::Rng rng(7, "stats-merge");
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.uniform(-10.0, 10.0));

  StreamingStats whole;
  for (double x : xs) whole.add(x);

  // Split into uneven chunks, accumulate separately, merge in order.
  StreamingStats merged;
  const std::size_t cuts[] = {0, 13, 100, 101, 350, 500};
  for (std::size_t c = 0; c + 1 < std::size(cuts); ++c) {
    StreamingStats part;
    for (std::size_t i = cuts[c]; i < cuts[c + 1]; ++i) part.add(xs[i]);
    merged.merge(part);
  }

  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_NEAR(merged.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(merged.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(merged.min(), whole.min());
  EXPECT_EQ(merged.max(), whole.max());
}

TEST(StreamingStats, MergeEmptyIsIdentity) {
  StreamingStats a;
  a.add(1.0);
  a.add(2.0);
  StreamingStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Wilson, KnownValues) {
  // 8/10 successes at 95%: Wilson interval ~[0.49, 0.94].
  const auto w = wilson_interval(8, 10);
  EXPECT_NEAR(w.lo, 0.49, 0.02);
  EXPECT_NEAR(w.hi, 0.94, 0.02);
  const auto none = wilson_interval(0, 0);
  EXPECT_EQ(none.lo, 0.0);
  EXPECT_EQ(none.hi, 0.0);
  const auto all = wilson_interval(10, 10);
  EXPECT_GT(all.lo, 0.6);
  EXPECT_EQ(all.hi, 1.0);
}

TEST(TrialSeed, DeterministicAndDistinct) {
  const auto s1 = trial_seed(1, "scenario-a", 0, 0);
  EXPECT_EQ(s1, trial_seed(1, "scenario-a", 0, 0));
  EXPECT_NE(s1, trial_seed(1, "scenario-a", 0, 1));
  EXPECT_NE(s1, trial_seed(1, "scenario-a", 1, 0));
  EXPECT_NE(s1, trial_seed(1, "scenario-b", 0, 0));
  EXPECT_NE(s1, trial_seed(2, "scenario-a", 0, 0));
}

TEST(Campaign, SameSeedSameAggregates) {
  const Scenario s = fast_scenario();
  CampaignOptions opt;
  opt.seed = 99;
  opt.threads = 1;
  const auto a = run_campaign(s, opt);
  const auto b = run_campaign(s, opt);
  expect_identical(a, b);

  CampaignOptions other = opt;
  other.seed = 100;
  const auto c = run_campaign(s, other);
  EXPECT_NE(a.points[0].stats(Metric::kToneBandFraction).mean(),
            c.points[0].stats(Metric::kToneBandFraction).mean());
}

TEST(Campaign, ParallelBitIdenticalToSerial) {
  const Scenario s = fast_scenario();
  CampaignOptions serial;
  serial.seed = 5;
  serial.threads = 1;
  const auto a = run_campaign(s, serial);

  for (unsigned threads : {2u, 4u, 7u}) {
    CampaignOptions parallel = serial;
    parallel.threads = threads;
    const auto b = run_campaign(s, parallel);
    expect_identical(a, b);
  }
}

TEST(Campaign, ParallelBitIdenticalOnSweptScenario) {
  // An eavesdrop scenario exercises the full deployment path and a sweep
  // axis; keep it tiny so the test stays fast.
  Scenario s = *find_scenario("fig8-tradeoff");
  s.axis_values = {10.0, 20.0};
  s.units_per_trial = 1;
  s.default_trials = 2;

  CampaignOptions serial;
  serial.seed = 3;
  serial.threads = 1;
  CampaignOptions parallel = serial;
  parallel.threads = 4;
  expect_identical(run_campaign(s, serial), run_campaign(s, parallel));
}

TEST(Campaign, ChunkAccumulatorsMatchSerialReference) {
  // The campaign's chunked merge must agree with a plain in-order
  // accumulation of the same trial samples.
  const Scenario s = fast_scenario();
  CampaignOptions opt;
  opt.seed = 11;
  opt.threads = 3;
  opt.chunk_size = 5;  // uneven: 24 trials -> chunks of 5,5,5,5,4
  const auto result = run_campaign(s, opt);

  StreamingStats reference;
  for (std::size_t t = 0; t < s.default_trials; ++t) {
    const auto samples =
        run_trial(s, 0, 0.0, trial_seed(opt.seed, s.name, 0, t));
    for (const auto& sample : samples) {
      if (sample.metric == Metric::kToneBandFraction) {
        reference.add(sample.value);
      }
    }
  }
  const auto& st = result.points[0].stats(Metric::kToneBandFraction);
  EXPECT_EQ(st.count(), reference.count());
  EXPECT_NEAR(st.mean(), reference.mean(), 1e-12);
  EXPECT_NEAR(st.variance(), reference.variance(), 1e-12);
  EXPECT_EQ(st.min(), reference.min());
  EXPECT_EQ(st.max(), reference.max());
}

TEST(TrialContext, DeploymentResetMatchesFreshConstruction) {
  shield::DeploymentOptions first;
  first.seed = 11;
  shield::DeploymentOptions second;
  second.seed = 22;
  second.shield_config.hardware_error_sigma = 0.1;
  second.shield_config.jam_profile = shield::JamProfile::kConstant;

  shield::Deployment fresh_first(first);
  const double want_first = shield::measure_cancellation_db(fresh_first);
  shield::Deployment fresh_second(second);
  const double want_second = shield::measure_cancellation_db(fresh_second);

  // One pooled deployment, reset across both configurations and back:
  // every measurement must be bit-identical to the fresh ones.
  shield::Deployment pooled(first);
  ASSERT_TRUE(pooled.can_reset_to(second));
  pooled.reset(second);
  EXPECT_EQ(shield::measure_cancellation_db(pooled), want_second);
  pooled.reset(first);
  EXPECT_EQ(shield::measure_cancellation_db(pooled), want_first);

  // A structural change (observer node) forces a rebuild instead.
  shield::DeploymentOptions observed = first;
  observed.with_observer = true;
  EXPECT_FALSE(pooled.can_reset_to(observed));
}

TEST(TrialContext, PoolReusesAndStaysBitIdentical) {
  // The tentpole determinism claim: per-point aggregates with the
  // trial-context pool are bit-identical to fresh per-trial construction,
  // at 1 and N threads, across experiment kinds. Scenarios are shrunk
  // copies of the real presets so the test covers the genuine trial code
  // paths in milliseconds-per-trial territory.
  struct Case {
    const char* preset;
    std::vector<double> axis_values;  // empty keeps the preset's axis
    std::size_t units_per_trial;
    std::size_t trials;
  };
  const std::vector<Case> cases = {
      {"fig8-tradeoff", {10.0, 20.0}, 1, 2},     // kEavesdrop
      {"fig11-trigger", {1.0, 9.0}, 1, 2},       // kActiveAttack
      {"fig7-cancellation", {}, 1, 3},           // kCancellation
      {"table2-coexistence", {3.0}, 1, 2},       // kCoexistence
      {"fig3-imd-timing", {}, 1, 2},             // kImdTiming
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.preset);
    const Scenario* preset = find_scenario(c.preset);
    ASSERT_NE(preset, nullptr);
    Scenario s = *preset;
    if (!c.axis_values.empty()) s.axis_values = c.axis_values;
    s.units_per_trial = c.units_per_trial;
    s.default_trials = c.trials;

    CampaignOptions fresh;
    fresh.seed = 7;
    fresh.threads = 1;
    fresh.reuse_deployments = false;
    const auto reference = run_campaign(s, fresh);
    EXPECT_EQ(reference.deployments_reused, 0u);

    CampaignOptions pooled = fresh;
    pooled.reuse_deployments = true;
    const auto reused = run_campaign(s, pooled);
    expect_identical(reference, reused);
    // The pool must actually have kicked in, not silently rebuilt.
    EXPECT_GT(reused.deployments_reused, 0u);

    CampaignOptions pooled_mt = pooled;
    pooled_mt.threads = 3;
    expect_identical(reference, run_campaign(s, pooled_mt));
  }
}

TEST(Campaign, EveryPresetExpandsAndSeeds) {
  for (const auto& s : scenario_presets()) {
    EXPECT_FALSE(s.name.empty());
    EXPECT_FALSE(s.description.empty()) << s.name;
    EXPECT_GE(s.point_count(), 1u);
    EXPECT_GT(s.default_trials, 0u);
    EXPECT_FALSE(metrics_for(s.kind).empty());
    // Seeds must be derivable for every point without collisions across
    // the first two trials.
    const auto a = trial_seed(1, s.name, 0, 0);
    const auto b = trial_seed(1, s.name, 0, 1);
    EXPECT_NE(a, b);
  }
  EXPECT_EQ(find_scenario("definitely-not-a-preset"), nullptr);
  EXPECT_NE(find_scenario("fig9-eaves-ber"), nullptr);
}

TEST(Report, CsvQuotesFieldsWithCommasAndQuotes) {
  Scenario s = fast_scenario();
  s.description = "profiles, with \"quotes\" and, commas";
  CampaignOptions opt;
  opt.seed = 2;
  opt.threads = 1;
  opt.trials_per_point = 2;
  const auto result = run_campaign(s, opt);

  const auto csv = to_csv(result);
  // Header gained the description column.
  EXPECT_NE(csv.find("wilson_lo,wilson_hi,description\n"), std::string::npos);
  // RFC 4180: the whole field quoted, embedded quotes doubled.
  EXPECT_NE(csv.find("\"profiles, with \"\"quotes\"\" and, commas\""),
            std::string::npos);
  // Every data row must have the same number of columns as the header
  // once quoted regions are skipped.
  const std::size_t header_cols = 12;
  std::size_t line_start = 0;
  while (line_start < csv.size()) {
    std::size_t line_end = csv.find('\n', line_start);
    if (line_end == std::string::npos) line_end = csv.size();
    std::size_t cols = 1;
    bool quoted = false;
    for (std::size_t i = line_start; i < line_end; ++i) {
      if (csv[i] == '"') quoted = !quoted;
      if (csv[i] == ',' && !quoted) ++cols;
    }
    if (line_end > line_start) {
      EXPECT_EQ(cols, header_cols);
    }
    line_start = line_end + 1;
  }

  // JSON escapes the quotes in the description.
  const auto json = to_json(result);
  EXPECT_NE(json.find("profiles, with \\\"quotes\\\" and, commas"),
            std::string::npos);
}

TEST(Report, CsvAndJsonWellFormed) {
  const Scenario s = fast_scenario();
  CampaignOptions opt;
  opt.seed = 1;
  opt.threads = 2;
  opt.trials_per_point = 4;
  const auto result = run_campaign(s, opt);

  const auto csv = to_csv(result);
  EXPECT_NE(csv.find("scenario,axis,axis_value,metric"), std::string::npos);
  EXPECT_NE(csv.find("fig5-jam-shaped"), std::string::npos);
  EXPECT_NE(csv.find("tone_band_fraction"), std::string::npos);

  const auto json = to_json(result);
  EXPECT_NE(json.find("\"scenario\": \"fig5-jam-shaped\""),
            std::string::npos);
  EXPECT_NE(json.find("\"points\""), std::string::npos);
  // Balanced braces is a cheap well-formedness proxy.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));

  CampaignOptions serial = opt;
  serial.threads = 1;
  CampaignOptions no_reuse = serial;
  no_reuse.reuse_deployments = false;
  CampaignOptions warm = serial;
  warm.snapshots = true;
  const auto snapshot = perf_snapshot_json(
      run_campaign(s, no_reuse), run_campaign(s, serial),
      run_campaign(s, warm), result, 8);
  EXPECT_NE(snapshot.find("\"bench\": \"campaign_runner\""),
            std::string::npos);
  EXPECT_NE(snapshot.find("\"serial_no_reuse\""), std::string::npos);
  EXPECT_NE(snapshot.find("\"hardware_threads\": 8"), std::string::npos);
  EXPECT_NE(snapshot.find("\"reuse_speedup\""), std::string::npos);
  EXPECT_NE(snapshot.find("\"warm\""), std::string::npos);
  EXPECT_NE(snapshot.find("\"warm_speedup\""), std::string::npos);
  EXPECT_NE(snapshot.find("\"speedup\""), std::string::npos);
}

}  // namespace
}  // namespace hs::campaign
