// End-to-end integration: authorized programmer -> crypto channel ->
// shield -> (air, jammed reply window) -> IMD -> decoded through jamming ->
// crypto channel -> programmer.
#include <gtest/gtest.h>

#include "imd/protocol.hpp"
#include "shield/calibrate.hpp"
#include "shield/deployment.hpp"
#include "shield/relay.hpp"

namespace hs {
namespace {

using shield::Deployment;
using shield::DeploymentOptions;

TEST(IntegrationRelay, ShieldRelaysInterrogationAndDecodesReplyWhileJamming) {
  DeploymentOptions opt;
  opt.seed = 42;
  Deployment d(opt);
  ASSERT_TRUE(d.shield().antidote_ready());

  shield::OutOfBandLink link;
  const std::uint8_t psk_raw[] = "clinic-pairing-secret";
  crypto::ByteView psk(psk_raw, sizeof(psk_raw) - 1);
  shield::RelayService relay(d.shield(), link, psk, /*session_id=*/99);
  shield::AuthorizedProgrammer programmer(link, psk, /*session_id=*/99);

  programmer.send_command(imd::make_interrogate(opt.imd_profile.serial, 1));
  relay.poll();
  // Give the air exchange time: command (~10 ms) + reply delay + reply.
  for (int i = 0; i < 12; ++i) {
    d.run_for(5e-3);
    relay.poll();
  }
  const auto replies = programmer.poll_replies(opt.imd_profile.serial);
  ASSERT_FALSE(replies.empty());
  EXPECT_EQ(replies[0].type,
            static_cast<std::uint8_t>(imd::MessageType::kDataResponse));
  EXPECT_EQ(replies[0].seq, 1);
  EXPECT_EQ(d.imd().stats().frames_accepted, 1u);
  EXPECT_EQ(d.imd().stats().replies_sent, 1u);
  // The reply window was jammed and the reply decoded through the jamming.
  EXPECT_GE(d.shield().stats().passive_jams, 1u);
  EXPECT_EQ(d.shield().stats().replies_decoded, 1u);
}

TEST(IntegrationRelay, CancellationIsRoughly32dB) {
  DeploymentOptions opt;
  opt.seed = 7;
  Deployment d(opt);
  double sum = 0.0;
  const int runs = 10;
  for (int i = 0; i < runs; ++i) sum += shield::measure_cancellation_db(d);
  const double mean = sum / runs;
  EXPECT_GT(mean, 24.0);
  EXPECT_LT(mean, 42.0);
}

}  // namespace
}  // namespace hs
