#include <gtest/gtest.h>

#include <cmath>

#include "dsp/fft.hpp"
#include "dsp/rng.hpp"

namespace hs::dsp {
namespace {

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(255), 256u);
  EXPECT_EQ(next_pow2(256), 256u);
  EXPECT_EQ(next_pow2(257), 512u);
}

TEST(Fft, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(65));
}

TEST(Fft, RejectsNonPowerOfTwo) {
  Samples data(100);
  EXPECT_THROW(fft_inplace(data), std::invalid_argument);
}

TEST(Fft, ImpulseIsFlat) {
  Samples data(64, cplx{});
  data[0] = 1.0;
  fft_inplace(data);
  for (const auto& x : data) {
    EXPECT_NEAR(x.real(), 1.0, 1e-12);
    EXPECT_NEAR(x.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, DcGoesToBinZero) {
  Samples data(32, cplx{2.0, 0.0});
  fft_inplace(data);
  EXPECT_NEAR(std::abs(data[0]), 64.0, 1e-9);
  for (std::size_t i = 1; i < data.size(); ++i) {
    EXPECT_NEAR(std::abs(data[i]), 0.0, 1e-9);
  }
}

TEST(Fft, SingleToneLandsInItsBin) {
  const std::size_t n = 128;
  const std::size_t k = 9;
  Samples data(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double phase = kTwoPi * static_cast<double>(k * i) / n;
    data[i] = {std::cos(phase), std::sin(phase)};
  }
  fft_inplace(data);
  EXPECT_NEAR(std::abs(data[k]), static_cast<double>(n), 1e-9);
  for (std::size_t i = 0; i < n; ++i) {
    if (i != k) {
      EXPECT_LT(std::abs(data[i]), 1e-8);
    }
  }
}

TEST(Fft, Linearity) {
  Rng rng(1);
  Samples a(64), b(64);
  rng.fill_awgn(a, 1.0);
  rng.fill_awgn(b, 1.0);
  Samples sum(64);
  for (int i = 0; i < 64; ++i) sum[i] = 2.0 * a[i] + 3.0 * b[i];
  auto fa = fft(a), fb = fft(b), fs = fft(sum);
  for (int i = 0; i < 64; ++i) {
    EXPECT_NEAR(std::abs(fs[i] - (2.0 * fa[i] + 3.0 * fb[i])), 0.0, 1e-9);
  }
}

TEST(Fft, Parseval) {
  Rng rng(2);
  Samples data(256);
  rng.fill_awgn(data, 1.0);
  double time_energy = 0;
  for (const auto& x : data) time_energy += std::norm(x);
  auto freq = fft(data);
  double freq_energy = 0;
  for (const auto& x : freq) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy / 256.0, time_energy, 1e-6 * time_energy);
}

TEST(Fft, ShiftThenUnshiftIsIdentity) {
  Rng rng(3);
  Samples data(64);
  rng.fill_awgn(data, 1.0);
  auto round = ifftshift(fftshift(data));
  for (int i = 0; i < 64; ++i) {
    EXPECT_NEAR(std::abs(round[i] - data[i]), 0.0, 1e-15);
  }
}

TEST(Fft, FftshiftCentersDc) {
  Samples data(8, cplx{});
  data[0] = 1.0;  // DC bin
  auto shifted = fftshift(data);
  EXPECT_NEAR(std::abs(shifted[4]), 1.0, 1e-12);
}

TEST(Fft, BinFrequencyHalves) {
  EXPECT_NEAR(bin_frequency(0, 8, 800.0), 0.0, 1e-12);
  EXPECT_NEAR(bin_frequency(1, 8, 800.0), 100.0, 1e-12);
  EXPECT_NEAR(bin_frequency(7, 8, 800.0), -100.0, 1e-12);
  EXPECT_NEAR(bin_frequency(4, 8, 800.0), -400.0, 1e-12);
}

TEST(Fft, FrequencyBinRoundTrip) {
  const std::size_t n = 256;
  const double fs = 300e3;
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_EQ(frequency_bin(bin_frequency(k, n, fs), n, fs), k);
  }
}

class FftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTrip, IfftInvertsFft) {
  const std::size_t n = GetParam();
  Rng rng(n);
  Samples data(n);
  rng.fill_awgn(data, 1.0);
  Samples work = data;
  fft_inplace(work);
  ifft_inplace(work);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(work[i] - data[i]), 0.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTrip,
                         ::testing::Values(2, 8, 64, 256, 1024, 4096));

}  // namespace
}  // namespace hs::dsp
