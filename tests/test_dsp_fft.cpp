#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "dsp/fft.hpp"
#include "dsp/rng.hpp"

namespace hs::dsp {
namespace {

// The pre-rebuild twiddle recurrence (`w *= wlen` per butterfly), kept
// here as the precision baseline: its phase error accumulates O(n*eps)
// across a stage, which the table-driven transform must beat by orders of
// magnitude.
void recurrence_fft(Samples& data) {
  const std::size_t n = data.size();
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = -kTwoPi / static_cast<double>(len);
    const cplx wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      cplx w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cplx u = data[i + k];
        const cplx v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

// O(n) reference DFT of a single bin, with twiddles indexed exactly
// ((k*i) mod n through an incremental index) so the reference's own
// twiddle error stays at 1 ulp.
cplx reference_dft_bin(const Samples& x, std::size_t k,
                       const Samples& twiddles) {
  const std::size_t n = x.size();
  double ar = 0.0, ai = 0.0;
  std::size_t idx = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ar += x[i].real() * twiddles[idx].real() -
          x[i].imag() * twiddles[idx].imag();
    ai += x[i].real() * twiddles[idx].imag() +
          x[i].imag() * twiddles[idx].real();
    idx += k;
    if (idx >= n) idx -= n;
  }
  return {ar, ai};
}

Samples unit_twiddles(std::size_t n) {
  Samples w(n);
  for (std::size_t j = 0; j < n; ++j) {
    w[j] = std::polar(1.0, -kTwoPi * static_cast<double>(j) /
                               static_cast<double>(n));
  }
  return w;
}

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(255), 256u);
  EXPECT_EQ(next_pow2(256), 256u);
  EXPECT_EQ(next_pow2(257), 512u);
}

TEST(Fft, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(65));
}

TEST(Fft, RejectsNonPowerOfTwo) {
  Samples data(100);
  EXPECT_THROW(fft_inplace(data), std::invalid_argument);
}

TEST(Fft, ImpulseIsFlat) {
  Samples data(64, cplx{});
  data[0] = 1.0;
  fft_inplace(data);
  for (const auto& x : data) {
    EXPECT_NEAR(x.real(), 1.0, 1e-12);
    EXPECT_NEAR(x.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, DcGoesToBinZero) {
  Samples data(32, cplx{2.0, 0.0});
  fft_inplace(data);
  EXPECT_NEAR(std::abs(data[0]), 64.0, 1e-9);
  for (std::size_t i = 1; i < data.size(); ++i) {
    EXPECT_NEAR(std::abs(data[i]), 0.0, 1e-9);
  }
}

TEST(Fft, SingleToneLandsInItsBin) {
  const std::size_t n = 128;
  const std::size_t k = 9;
  Samples data(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double phase = kTwoPi * static_cast<double>(k * i) / n;
    data[i] = {std::cos(phase), std::sin(phase)};
  }
  fft_inplace(data);
  EXPECT_NEAR(std::abs(data[k]), static_cast<double>(n), 1e-9);
  for (std::size_t i = 0; i < n; ++i) {
    if (i != k) {
      EXPECT_LT(std::abs(data[i]), 1e-8);
    }
  }
}

TEST(Fft, Linearity) {
  Rng rng(1);
  Samples a(64), b(64);
  rng.fill_awgn(a, 1.0);
  rng.fill_awgn(b, 1.0);
  Samples sum(64);
  for (int i = 0; i < 64; ++i) sum[i] = 2.0 * a[i] + 3.0 * b[i];
  auto fa = fft(a), fb = fft(b), fs = fft(sum);
  for (int i = 0; i < 64; ++i) {
    EXPECT_NEAR(std::abs(fs[i] - (2.0 * fa[i] + 3.0 * fb[i])), 0.0, 1e-9);
  }
}

TEST(Fft, Parseval) {
  Rng rng(2);
  Samples data(256);
  rng.fill_awgn(data, 1.0);
  double time_energy = 0;
  for (const auto& x : data) time_energy += std::norm(x);
  auto freq = fft(data);
  double freq_energy = 0;
  for (const auto& x : freq) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy / 256.0, time_energy, 1e-6 * time_energy);
}

TEST(Fft, ShiftThenUnshiftIsIdentity) {
  Rng rng(3);
  Samples data(64);
  rng.fill_awgn(data, 1.0);
  auto round = ifftshift(fftshift(data));
  for (int i = 0; i < 64; ++i) {
    EXPECT_NEAR(std::abs(round[i] - data[i]), 0.0, 1e-15);
  }
}

TEST(Fft, FftshiftCentersDc) {
  Samples data(8, cplx{});
  data[0] = 1.0;  // DC bin
  auto shifted = fftshift(data);
  EXPECT_NEAR(std::abs(shifted[4]), 1.0, 1e-12);
}

TEST(Fft, BinFrequencyHalves) {
  EXPECT_NEAR(bin_frequency(0, 8, 800.0), 0.0, 1e-12);
  EXPECT_NEAR(bin_frequency(1, 8, 800.0), 100.0, 1e-12);
  EXPECT_NEAR(bin_frequency(7, 8, 800.0), -100.0, 1e-12);
  EXPECT_NEAR(bin_frequency(4, 8, 800.0), -400.0, 1e-12);
}

TEST(Fft, FrequencyBinRoundTrip) {
  const std::size_t n = 256;
  const double fs = 300e3;
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_EQ(frequency_bin(bin_frequency(k, n, fs), n, fs), k);
  }
}

TEST(Fft, MatchesReferenceDftSmall) {
  // Full O(n^2) reference comparison at n = 2^10.
  const std::size_t n = 1 << 10;
  Rng rng(n);
  Samples x(n);
  rng.fill_awgn(x, 1.0);
  Samples fast = x;
  fft_inplace(fast);
  const Samples w = unit_twiddles(n);
  double max_err = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    max_err = std::max(max_err, std::abs(fast[k] - reference_dft_bin(x, k, w)));
  }
  EXPECT_LE(max_err, 1e-9 * static_cast<double>(n));
  EXPECT_LE(max_err, 2e-12);  // observed ~2.3e-13 with table twiddles
}

TEST(Fft, MatchesReferenceDftLargeWhereRecurrenceFails) {
  // n = 2^16, the transform size where the old `w *= wlen` recurrence
  // visibly drifts. A full O(n^2) reference takes ~10 s, so the error is
  // maximized over 1024 stratified bins (measured: the sampled max is
  // within an order of magnitude of the full-spectrum max for both
  // transforms — table ~9e-12 vs ~2e-11, recurrence ~5e-10 vs ~7e-10).
  const std::size_t n = 1 << 16;
  Rng rng(n);
  Samples x(n);
  rng.fill_awgn(x, 1.0);
  Samples fast = x;
  fft_inplace(fast);
  Samples drifty = x;
  recurrence_fft(drifty);
  const Samples w = unit_twiddles(n);
  double table_err = 0.0;
  double recurrence_err = 0.0;
  for (std::size_t s = 0; s < 1024; ++s) {
    const std::size_t k = (s * 64 + (s * 37) % 64) % n;
    const cplx ref = reference_dft_bin(x, k, w);
    table_err = std::max(table_err, std::abs(fast[k] - ref));
    recurrence_err = std::max(recurrence_err, std::abs(drifty[k] - ref));
  }
  // The acceptance bound, then the discriminating bound: the cached-table
  // transform clears 1e-10 with ~10x margin, the recurrence misses it by
  // ~5x (measured 9.2e-12 vs 5.2e-10 on this fixed seed).
  EXPECT_LE(table_err, 1e-9 * static_cast<double>(n));
  EXPECT_LE(table_err, 1e-10);
#ifndef __FMA__
  // The recurrence baseline's drift depends on how `w *= wlen` rounds;
  // FMA contraction (an opt-in -march build) changes it, so only the
  // table bound above is the portable contract — these two assertions
  // pin the improvement claim for the default (contraction-free) build.
  EXPECT_GT(recurrence_err, 1e-10);
  EXPECT_LT(table_err * 10.0, recurrence_err);
#endif
}

TEST(Fft, IfftRejectsNonPowerOfTwoBins) {
  // The old wrappers silently zero-padded a 100-bin "spectrum" to 128
  // bins, rescaling the reconstruction; now that is a contract violation.
  Samples bins(100);
  EXPECT_THROW(ifft(bins), std::invalid_argument);
  Samples ok(128);
  EXPECT_NO_THROW(ifft(ok));
}

TEST(Fft, ZeroPadRoundTripIsExplicit) {
  // fft() pads time-domain input to next_pow2; ifft(fft(x)) therefore
  // returns x followed by the padding zeros — documented, and exact.
  const std::size_t n = 100;
  Rng rng(4);
  Samples x(n);
  rng.fill_awgn(x, 1.0);
  const auto spectrum = fft(x);
  EXPECT_EQ(spectrum.size(), 128u);
  const auto round = ifft(spectrum);
  ASSERT_EQ(round.size(), 128u);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(round[i] - x[i]), 0.0, 1e-12);
  }
  for (std::size_t i = n; i < round.size(); ++i) {
    EXPECT_NEAR(std::abs(round[i]), 0.0, 1e-12);
  }
}

class FftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTrip, IfftInvertsFft) {
  const std::size_t n = GetParam();
  Rng rng(n);
  Samples data(n);
  rng.fill_awgn(data, 1.0);
  Samples work = data;
  fft_inplace(work);
  ifft_inplace(work);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(work[i] - data[i]), 0.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTrip,
                         ::testing::Values(2, 8, 64, 256, 1024, 4096));

}  // namespace
}  // namespace hs::dsp
