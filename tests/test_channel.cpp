#include <gtest/gtest.h>

#include <cmath>

#include "channel/geometry.hpp"
#include "channel/medium.hpp"
#include "channel/pathloss.hpp"
#include "dsp/power.hpp"
#include "dsp/units.hpp"

namespace hs::channel {
namespace {

TEST(PathLoss, ReferenceLossAt403MHz) {
  PathLossModel model;
  // Friis at 1 m, 403.5 MHz: about 24.6 dB.
  EXPECT_NEAR(model.reference_loss_db(), 24.6, 0.3);
  EXPECT_NEAR(model.wavelength_m(), 0.743, 0.01);
}

TEST(PathLoss, MonotonicInDistance) {
  PathLossModel model;
  double prev = -1.0;
  for (double d = 0.1; d < 40.0; d *= 1.5) {
    const double loss = model.air_loss_db(d);
    EXPECT_GT(loss, prev);
    prev = loss;
  }
}

TEST(PathLoss, SlopeMatchesExponent) {
  PathLossModel model;
  model.exponent = 2.0;
  EXPECT_NEAR(model.air_loss_db(10.0) - model.air_loss_db(1.0), 20.0, 1e-9);
  model.exponent = 3.0;
  EXPECT_NEAR(model.air_loss_db(10.0) - model.air_loss_db(1.0), 30.0, 1e-9);
}

TEST(PathLoss, WallsAddLinearly) {
  PathLossModel model;
  EXPECT_NEAR(model.air_loss_db(5.0, 3) - model.air_loss_db(5.0, 0),
              3 * model.wall_loss_db, 1e-9);
}

TEST(PathLoss, NearFieldClamped) {
  PathLossModel model;
  EXPECT_DOUBLE_EQ(model.air_loss_db(0.001), model.air_loss_db(0.02));
  EXPECT_GE(model.air_loss_db(0.001), 0.0);
}

TEST(Geometry, EighteenLocations) {
  EXPECT_EQ(testbed_locations().size(), kTestbedLocationCount);
  EXPECT_THROW(testbed_location(0), std::out_of_range);
  EXPECT_THROW(testbed_location(19), std::out_of_range);
  EXPECT_EQ(testbed_location(1).distance_m, 0.2);
}

TEST(Geometry, LocationsOrderedByDescendingShieldRssi) {
  // The paper numbers locations "in descending order of received signal
  // strength at the shield"; our table must satisfy that under the
  // default path-loss model.
  PathLossModel model;
  double prev = 1e9;
  for (const auto& loc : testbed_locations()) {
    const double rssi = -model.air_loss_db(loc.distance_m, loc.walls);
    EXPECT_LE(rssi, prev + 1e-9) << "location " << loc.index;
    prev = rssi;
  }
}

TEST(Geometry, PaperAnchorsPresent) {
  // Location 8 = FCC adversary's outermost success, 14 m (Fig. 11);
  // location 13 = 100x adversary's outermost success, 27 m (Fig. 13);
  // location 1 = nearest eavesdropper, 20 cm.
  EXPECT_DOUBLE_EQ(testbed_location(8).distance_m, 14.0);
  EXPECT_DOUBLE_EQ(testbed_location(13).distance_m, 27.0);
  EXPECT_DOUBLE_EQ(testbed_location(1).distance_m, 0.2);
  EXPECT_TRUE(testbed_location(1).line_of_sight());
  EXPECT_FALSE(testbed_location(13).line_of_sight());
}

TEST(Geometry, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
}

class MediumTest : public ::testing::Test {
 protected:
  MediumTest() : medium_(300e3, 64, /*seed=*/9) {}
  channel::Medium medium_;
};

TEST_F(MediumTest, GainFollowsPathLoss) {
  AntennaDesc a, b;
  a.position = {0, 0};
  b.position = {2.0, 0};
  const auto ia = medium_.add_antenna(a);
  const auto ib = medium_.add_antenna(b);
  const double expected_loss =
      medium_.budget().pathloss.air_loss_db(2.0, 0);
  EXPECT_NEAR(-dsp::power_to_db(std::norm(medium_.gain(ia, ib))),
              expected_loss, 2.0 * medium_.budget().shadowing_sigma_db + 1.0);
  EXPECT_NEAR(medium_.nominal_loss_db(ia, ib), expected_loss, 1e-9);
}

TEST_F(MediumTest, BodyAndExtraLossesAdd) {
  AntennaDesc imd, other;
  imd.body_loss_db = 20.0;
  imd.position = {0, 0};
  other.position = {1.0, 0};
  other.extra_loss_db = 5.0;
  const auto ia = medium_.add_antenna(imd);
  const auto ib = medium_.add_antenna(other);
  const double air = medium_.budget().pathloss.air_loss_db(1.0, 0);
  EXPECT_NEAR(medium_.nominal_loss_db(ia, ib), air + 25.0, 1e-9);
}

TEST_F(MediumTest, PairLossOverride) {
  AntennaDesc a, b;
  b.position = {1.0, 0};
  const auto ia = medium_.add_antenna(a);
  const auto ib = medium_.add_antenna(b);
  const double before = medium_.nominal_loss_db(ia, ib);
  medium_.add_pair_loss(ia, ib, 6.0);
  EXPECT_NEAR(medium_.nominal_loss_db(ia, ib), before + 6.0, 1e-9);
  EXPECT_NEAR(medium_.nominal_loss_db(ib, ia), before + 6.0, 1e-9);
}

TEST_F(MediumTest, PairGainOverrideIsExact) {
  AntennaDesc a, b;
  const auto ia = medium_.add_antenna(a);
  const auto ib = medium_.add_antenna(b);
  const dsp::cplx h(0.01, -0.03);
  medium_.set_pair_gain(ia, ib, h);
  EXPECT_EQ(medium_.gain(ia, ib), h);
}

TEST_F(MediumTest, NoImplicitSelfCoupling) {
  AntennaDesc a;
  const auto ia = medium_.add_antenna(a);
  EXPECT_EQ(medium_.gain(ia, ia), dsp::cplx{});
}

TEST_F(MediumTest, ChannelIsReciprocal) {
  AntennaDesc a, b;
  b.position = {3.0, 1.0};
  const auto ia = medium_.add_antenna(a);
  const auto ib = medium_.add_antenna(b);
  EXPECT_EQ(medium_.gain(ia, ib), medium_.gain(ib, ia));
}

TEST_F(MediumTest, MixSuperposesTransmissions) {
  medium_.set_noise_enabled(false);
  AntennaDesc a, b, c;
  a.position = {0, 0};
  b.position = {0, 1.0};
  c.position = {1.0, 0};
  const auto ia = medium_.add_antenna(a);
  const auto ib = medium_.add_antenna(b);
  const auto ic = medium_.add_antenna(c);

  dsp::Samples sa(64, dsp::cplx{1.0, 0.0});
  dsp::Samples sb(64, dsp::cplx{0.0, 1.0});
  medium_.begin_block();
  medium_.set_tx(ia, sa);
  medium_.set_tx(ib, sb);
  medium_.mix();
  const auto rx = medium_.rx(ic);
  const dsp::cplx expected =
      medium_.gain(ia, ic) * sa[0] + medium_.gain(ib, ic) * sb[0];
  for (const auto& x : rx) {
    EXPECT_NEAR(std::abs(x - expected), 0.0, 1e-12);
  }
}

TEST_F(MediumTest, SetTxAccumulates) {
  medium_.set_noise_enabled(false);
  AntennaDesc a, b;
  b.position = {1.0, 0};
  const auto ia = medium_.add_antenna(a);
  const auto ib = medium_.add_antenna(b);
  dsp::Samples s(64, dsp::cplx{1.0, 0.0});
  medium_.begin_block();
  medium_.set_tx(ia, s);
  medium_.set_tx(ia, s);  // second waveform on the same antenna
  medium_.mix();
  const auto rx = medium_.rx(ib);
  EXPECT_NEAR(std::abs(rx[0]), 2.0 * std::abs(medium_.gain(ia, ib)), 1e-12);
}

TEST_F(MediumTest, BeginBlockClearsPreviousTx) {
  medium_.set_noise_enabled(false);
  AntennaDesc a, b;
  b.position = {1.0, 0};
  const auto ia = medium_.add_antenna(a);
  const auto ib = medium_.add_antenna(b);
  dsp::Samples s(64, dsp::cplx{1.0, 0.0});
  medium_.begin_block();
  medium_.set_tx(ia, s);
  medium_.mix();
  medium_.begin_block();  // nothing transmitted this block
  medium_.mix();
  EXPECT_NEAR(medium_.rx_power(ib), 0.0, 1e-30);
}

TEST_F(MediumTest, NoiseFloorMatchesBudget) {
  AntennaDesc a;
  const auto ia = medium_.add_antenna(a);
  double p = 0;
  const int blocks = 200;
  for (int i = 0; i < blocks; ++i) {
    medium_.begin_block();
    medium_.mix();
    p += medium_.rx_power(ia);
  }
  p /= blocks;
  EXPECT_NEAR(dsp::mw_to_dbm(p), medium_.budget().noise_floor_dbm, 0.5);
}

TEST_F(MediumTest, RerandomizeChangesPhaseNotNominalLoss) {
  AntennaDesc a, b;
  b.position = {5.0, 0};
  const auto ia = medium_.add_antenna(a);
  const auto ib = medium_.add_antenna(b);
  const auto before_gain = medium_.gain(ia, ib);
  const double before_loss = medium_.nominal_loss_db(ia, ib);
  medium_.rerandomize();
  EXPECT_NE(medium_.gain(ia, ib), before_gain);
  EXPECT_DOUBLE_EQ(medium_.nominal_loss_db(ia, ib), before_loss);
}

TEST_F(MediumTest, ShortLinksDoNotShadow) {
  // Co-located cluster links (< 1 m) are rigid: no per-trial shadowing.
  AntennaDesc a, b;
  b.position = {0.02, 0};
  const auto ia = medium_.add_antenna(a);
  const auto ib = medium_.add_antenna(b);
  const double nominal = medium_.nominal_loss_db(ia, ib);
  for (int i = 0; i < 10; ++i) {
    medium_.rerandomize();
    EXPECT_NEAR(-dsp::power_to_db(std::norm(medium_.gain(ia, ib))), nominal,
                1e-9);
  }
}

TEST_F(MediumTest, OversizedBlockRejected) {
  AntennaDesc a;
  const auto ia = medium_.add_antenna(a);
  dsp::Samples too_big(65);
  medium_.begin_block();
  EXPECT_THROW(medium_.set_tx(ia, too_big), std::invalid_argument);
}

}  // namespace
}  // namespace hs::channel
