// TSan-targeted stress tests (also run in the regular suite): hammer the
// two shared-state hot spots of the campaign engine from many threads at
// once and assert the determinism contract held.
//
// (1) SnapshotCacheStressTest: N threads race mixed find/store traffic
//     over a small key set against one cache with a disk directory —
//     first-store-wins dedup, cross-thread publication of the parsed
//     document, atomic .hsnap publish, and counter accounting all get
//     exercised simultaneously. A second cache instance then re-reads
//     every key from disk to prove the published files are complete.
//
// (2) DispatchStragglerStressTest: the ThreadExecutor runs a campaign
//     where several shards straggle (wave-counted delay faults) while
//     another is killed mid-stream, so repair tasks, late deliveries and
//     duplicate suppression overlap — the recovered report must stay
//     byte-identical to the serial run.
//
// The TSan CI job runs these suites with halt-on-error; any data race
// in SnapshotCache, the work-stealing deques, the DelayQueue or the
// obs thread-local merge fails the build. Keep this file free of
// sleeps: stress comes from contention, not timing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "campaign/dispatch.hpp"
#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "campaign/scenario.hpp"
#include "snapshot/snapshot_cache.hpp"
#include "snapshot/state_io.hpp"

namespace hs {
namespace {

std::string stress_temp_dir() {
  char tmpl[] = "/tmp/hs-concurrency-stress-XXXXXX";
  const char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

/// A valid snapshot document whose payload depends only on `key`, so
/// every thread racing to store a key offers byte-identical content —
/// exactly the situation concurrent campaign workers are in.
std::string snapshot_payload(std::size_t key) {
  snapshot::StateWriter w;
  w.begin("stress");
  w.u64("key", key);
  w.u64("value", key * 1000003);
  w.end("stress");
  return w.finish();
}

std::string key_name(std::size_t key) {
  return "stress-key-" + std::to_string(key);
}

TEST(SnapshotCacheStressTest, ManyThreadsMixedHitsMissesAndDiskPublish) {
  const std::string dir = stress_temp_dir();
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kKeys = 16;
  constexpr std::size_t kRounds = 40;

  snapshot::SnapshotCache cache(dir);
  // One document per key pre-published from disk-reader's perspective
  // would dodge the store race; instead every thread stores and finds in
  // a key order offset by its index, so the same key sees concurrent
  // store/store and store/find traffic.
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::shared_ptr<const snapshot::StateDoc>> first_seen[kThreads];

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto& seen = first_seen[t];
      seen.assign(kKeys, nullptr);
      for (std::size_t round = 0; round < kRounds; ++round) {
        for (std::size_t k = 0; k < kKeys; ++k) {
          const std::size_t key = (k + t * 3 + round) % kKeys;
          std::shared_ptr<const snapshot::StateDoc> doc =
              cache.find(key_name(key));
          if (doc == nullptr) {
            doc = cache.store(key_name(key), snapshot_payload(key));
          }
          if (doc == nullptr) {
            ++mismatches;
            continue;
          }
          // The parsed document is shared read-only: every hit for a key
          // must return the SAME object the thread first saw (first
          // store wins; no rebinding ever).
          if (seen[key] == nullptr) {
            seen[key] = doc;
          } else if (seen[key] != doc) {
            ++mismatches;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(mismatches.load(), 0u);
  // All threads agree on the per-key document identity.
  for (std::size_t t = 1; t < kThreads; ++t) {
    for (std::size_t k = 0; k < kKeys; ++k) {
      EXPECT_EQ(first_seen[0][k], first_seen[t][k]) << "key " << k;
    }
  }
  // Accounting: every find was a hit or a miss; every miss was followed
  // by a store attempt, and first-store-wins means exactly kKeys
  // documents exist.
  EXPECT_GE(cache.hits(), kThreads * kRounds * kKeys - cache.misses());

  // The atomic publishes must have produced complete, parseable files:
  // a fresh cache (fresh process, in spirit) loads every key from disk.
  snapshot::SnapshotCache reader(dir);
  for (std::size_t k = 0; k < kKeys; ++k) {
    const auto doc = reader.find(key_name(k));
    ASSERT_NE(doc, nullptr) << "key " << k;
    snapshot::StateReader r(*doc);
    r.begin("stress");
    EXPECT_EQ(r.u64("key"), k);
    EXPECT_EQ(r.u64("value"), k * 1000003);
    r.end("stress");
  }
  EXPECT_EQ(reader.disk_loads(), kKeys);
}

TEST(DispatchStragglerStressTest, OverlappingStragglersAndAKill) {
  using namespace hs::campaign;
  const Scenario* preset = find_scenario("fig8-tradeoff");
  ASSERT_NE(preset, nullptr);
  Scenario s = *preset;
  s.axis_values = {10, 20};
  s.units_per_trial = 1;

  CampaignOptions opt;
  opt.seed = 29;
  opt.threads = 4;  // worker threads inside every shard task
  opt.trials_per_point = 4;
  opt.chunk_size = 1;

  CampaignResult serial = run_campaign(s, opt);
  canonicalize(serial);
  const std::string want_csv = to_csv(serial);
  const std::string want_json = to_json(serial);

  // Three shards straggle two collect waves each while a fourth dies
  // mid-stream: repair tasks for the dead shard run concurrently with
  // the late deliveries, and every late delivery duplicates chunks that
  // were already re-dealt.
  DispatchOptions d;
  d.shard_count = 4;
  d.max_rounds = 6;
  d.faults = FaultPlan::parse("delay:0@2,delay:2@2,delay:3@2,kill:1@1");
  ThreadExecutor exec(s, opt, d.faults);
  DispatchReport rep;
  const CampaignResult got = dispatch_campaign(s, opt, d, exec, &rep);

  EXPECT_EQ(to_csv(got), want_csv);
  EXPECT_EQ(to_json(got), want_json);
  EXPECT_EQ(rep.shards_dead, 1u);
  EXPECT_GE(rep.chunks_redealt, 1u);
  // The delayed shards' chunks were re-dealt before their streams
  // arrived, so their eventual delivery must have been suppressed as
  // duplicates rather than double-merged.
  EXPECT_GE(rep.chunks_duplicate, 1u);
  EXPECT_GE(rep.shards_straggler, 1u);
}

}  // namespace
}  // namespace hs
