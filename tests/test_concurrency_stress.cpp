// TSan-targeted stress tests (also run in the regular suite): hammer the
// two shared-state hot spots of the campaign engine from many threads at
// once and assert the determinism contract held.
//
// (1) SnapshotCacheStressTest: N threads race mixed find/store traffic
//     over a small key set against one cache with a disk directory —
//     first-store-wins dedup, cross-thread publication of the parsed
//     document, atomic .hsnap publish, and counter accounting all get
//     exercised simultaneously. A second cache instance then re-reads
//     every key from disk to prove the published files are complete.
//
// (2) DispatchStragglerStressTest: the ThreadExecutor runs a campaign
//     where several shards straggle (wave-counted delay faults) while
//     another is killed mid-stream, so repair tasks, late deliveries and
//     duplicate suppression overlap — the recovered report must stay
//     byte-identical to the serial run.
//
// (3) ServeSchedulerStressTest: many client threads hammer one resident
//     serve::Scheduler — concurrent submits, starts and racing cancels
//     over a shared worker pool and snapshot cache — and every request
//     that completes must still report bytes identical to its serial
//     run.
//
// The TSan CI job runs these suites with halt-on-error; any data race
// in SnapshotCache, the work-stealing deques, the DelayQueue or the
// obs thread-local merge fails the build. Keep this file free of
// sleeps: stress comes from contention, not timing.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "campaign/dispatch.hpp"
#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "campaign/scenario.hpp"
#include "serve/scheduler.hpp"
#include "snapshot/snapshot_cache.hpp"
#include "snapshot/state_io.hpp"

namespace hs {
namespace {

std::string stress_temp_dir() {
  char tmpl[] = "/tmp/hs-concurrency-stress-XXXXXX";
  const char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

/// A valid snapshot document whose payload depends only on `key`, so
/// every thread racing to store a key offers byte-identical content —
/// exactly the situation concurrent campaign workers are in.
std::string snapshot_payload(std::size_t key) {
  snapshot::StateWriter w;
  w.begin("stress");
  w.u64("key", key);
  w.u64("value", key * 1000003);
  w.end("stress");
  return w.finish();
}

std::string key_name(std::size_t key) {
  return "stress-key-" + std::to_string(key);
}

TEST(SnapshotCacheStressTest, ManyThreadsMixedHitsMissesAndDiskPublish) {
  const std::string dir = stress_temp_dir();
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kKeys = 16;
  constexpr std::size_t kRounds = 40;

  snapshot::SnapshotCache cache(dir);
  // One document per key pre-published from disk-reader's perspective
  // would dodge the store race; instead every thread stores and finds in
  // a key order offset by its index, so the same key sees concurrent
  // store/store and store/find traffic.
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::shared_ptr<const snapshot::StateDoc>> first_seen[kThreads];

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto& seen = first_seen[t];
      seen.assign(kKeys, nullptr);
      for (std::size_t round = 0; round < kRounds; ++round) {
        for (std::size_t k = 0; k < kKeys; ++k) {
          const std::size_t key = (k + t * 3 + round) % kKeys;
          std::shared_ptr<const snapshot::StateDoc> doc =
              cache.find(key_name(key));
          if (doc == nullptr) {
            doc = cache.store(key_name(key), snapshot_payload(key));
          }
          if (doc == nullptr) {
            ++mismatches;
            continue;
          }
          // The parsed document is shared read-only: every hit for a key
          // must return the SAME object the thread first saw (first
          // store wins; no rebinding ever).
          if (seen[key] == nullptr) {
            seen[key] = doc;
          } else if (seen[key] != doc) {
            ++mismatches;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(mismatches.load(), 0u);
  // All threads agree on the per-key document identity.
  for (std::size_t t = 1; t < kThreads; ++t) {
    for (std::size_t k = 0; k < kKeys; ++k) {
      EXPECT_EQ(first_seen[0][k], first_seen[t][k]) << "key " << k;
    }
  }
  // Accounting: every find was a hit or a miss; every miss was followed
  // by a store attempt, and first-store-wins means exactly kKeys
  // documents exist.
  EXPECT_GE(cache.hits(), kThreads * kRounds * kKeys - cache.misses());

  // The atomic publishes must have produced complete, parseable files:
  // a fresh cache (fresh process, in spirit) loads every key from disk.
  snapshot::SnapshotCache reader(dir);
  for (std::size_t k = 0; k < kKeys; ++k) {
    const auto doc = reader.find(key_name(k));
    ASSERT_NE(doc, nullptr) << "key " << k;
    snapshot::StateReader r(*doc);
    r.begin("stress");
    EXPECT_EQ(r.u64("key"), k);
    EXPECT_EQ(r.u64("value"), k * 1000003);
    r.end("stress");
  }
  EXPECT_EQ(reader.disk_loads(), kKeys);
}

TEST(DispatchStragglerStressTest, OverlappingStragglersAndAKill) {
  using namespace hs::campaign;
  const Scenario* preset = find_scenario("fig8-tradeoff");
  ASSERT_NE(preset, nullptr);
  Scenario s = *preset;
  s.axis_values = {10, 20};
  s.units_per_trial = 1;

  CampaignOptions opt;
  opt.seed = 29;
  opt.threads = 4;  // worker threads inside every shard task
  opt.trials_per_point = 4;
  opt.chunk_size = 1;

  CampaignResult serial = run_campaign(s, opt);
  canonicalize(serial);
  const std::string want_csv = to_csv(serial);
  const std::string want_json = to_json(serial);

  // Three shards straggle two collect waves each while a fourth dies
  // mid-stream: repair tasks for the dead shard run concurrently with
  // the late deliveries, and every late delivery duplicates chunks that
  // were already re-dealt.
  DispatchOptions d;
  d.shard_count = 4;
  d.max_rounds = 6;
  d.faults = FaultPlan::parse("delay:0@2,delay:2@2,delay:3@2,kill:1@1");
  ThreadExecutor exec(s, opt, d.faults);
  DispatchReport rep;
  const CampaignResult got = dispatch_campaign(s, opt, d, exec, &rep);

  EXPECT_EQ(to_csv(got), want_csv);
  EXPECT_EQ(to_json(got), want_json);
  EXPECT_EQ(rep.shards_dead, 1u);
  EXPECT_GE(rep.chunks_redealt, 1u);
  // The delayed shards' chunks were re-dealt before their streams
  // arrived, so their eventual delivery must have been suppressed as
  // duplicates rather than double-merged.
  EXPECT_GE(rep.chunks_duplicate, 1u);
  EXPECT_GE(rep.shards_straggler, 1u);
}

TEST(ServeSchedulerStressTest, RacingSubmitsCancelsAndCompletions) {
  using namespace hs::campaign;
  const Scenario* preset = find_scenario("fig8-tradeoff");
  ASSERT_NE(preset, nullptr);
  Scenario s = *preset;
  s.axis_values = {10, 20};
  s.units_per_trial = 1;

  // One resident scheduler: 4 workers, 4-deep weighted-fair set, queue
  // sized so every submit is admitted — the stress is contention on the
  // scheduler lock, the shared snapshot cache and the per-worker
  // TrialContexts, not admission push-back (test_serve covers that).
  constexpr std::size_t kClients = 6;
  constexpr std::size_t kPerClient = 4;
  obs::ServiceStats stats;
  serve::SchedulerOptions options;
  options.workers = 4;
  options.max_active = 4;
  options.max_queue = kClients * kPerClient;
  serve::Scheduler scheduler(options, &stats);

  struct Outcome {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    bool cancelled = false;
    CampaignResult result;
  };
  std::vector<std::shared_ptr<Outcome>> outcomes(kClients * kPerClient);
  for (auto& out : outcomes) out = std::make_shared<Outcome>();

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      for (std::size_t j = 0; j < kPerClient; ++j) {
        const std::size_t slot = t * kPerClient + j;
        auto out = outcomes[slot];
        serve::RunRequest r;
        r.preset = s.name;
        r.seed = 1000 + slot;
        r.trials = 2;
        r.chunk_size = 1 + slot % 2;
        r.priority = 1 + static_cast<unsigned>(slot % 8);
        serve::Scheduler::Callbacks cb;
        cb.on_record = [](std::uint64_t, const std::string&) {};
        cb.on_complete = [out](std::uint64_t, const std::string&,
                               const CampaignResult& result, double, double,
                               std::size_t) {
          {
            std::lock_guard<std::mutex> lock(out->mutex);
            out->result = result;
            out->done = true;
          }
          out->cv.notify_all();
        };
        cb.on_cancelled = [out](std::uint64_t, std::size_t) {
          {
            std::lock_guard<std::mutex> lock(out->mutex);
            out->cancelled = true;
          }
          out->cv.notify_all();
        };
        const serve::Admission adm = scheduler.submit(s, r, std::move(cb));
        ASSERT_TRUE(adm.admitted) << "slot " << slot;
        scheduler.start(adm.id);
        // Every third request is cancelled right after release — racing
        // the workers already executing its chunks. Either terminal
        // outcome is legal; completion must still be byte-exact.
        if (slot % 3 == 0) scheduler.cancel(adm.id);
      }
    });
  }
  for (auto& th : clients) th.join();
  for (auto& out : outcomes) {
    std::unique_lock<std::mutex> lock(out->mutex);
    out->cv.wait(lock, [&] { return out->done || out->cancelled; });
  }

  std::size_t completed = 0;
  for (std::size_t slot = 0; slot < outcomes.size(); ++slot) {
    auto& out = outcomes[slot];
    std::lock_guard<std::mutex> lock(out->mutex);
    EXPECT_NE(out->done, out->cancelled) << "slot " << slot;
    if (!out->done) continue;
    ++completed;
    CampaignOptions opt;
    opt.seed = 1000 + slot;
    opt.trials_per_point = 2;
    opt.chunk_size = 1 + slot % 2;
    opt.threads = 1;
    CampaignResult serial = run_campaign(s, opt);
    canonicalize(serial);
    EXPECT_EQ(to_csv(out->result), to_csv(serial)) << "slot " << slot;
    EXPECT_EQ(to_json(out->result), to_json(serial)) << "slot " << slot;
  }
  // Uncancelled requests always complete; cancelled ones may have won or
  // lost their race, but every request reached exactly one terminal
  // state and the books balance.
  const auto snap = stats.snapshot();
  EXPECT_EQ(snap.requests_admitted, outcomes.size());
  EXPECT_EQ(snap.requests_completed + snap.requests_cancelled,
            outcomes.size());
  EXPECT_EQ(snap.requests_completed, completed);
  EXPECT_GE(completed, outcomes.size() - (outcomes.size() + 2) / 3);
  EXPECT_EQ(snap.queue_depth, 0u);
  EXPECT_EQ(snap.active_requests, 0u);
}

}  // namespace
}  // namespace hs
