#include <gtest/gtest.h>

#include <cstring>

#include "crypto/secure_channel.hpp"

namespace hs::crypto {
namespace {

ByteView psk() {
  static const std::uint8_t raw[] = "pairing-secret-from-the-clinic";
  return ByteView(raw, sizeof(raw) - 1);
}

Bytes msg(const char* s) {
  return Bytes(s, s + std::strlen(s));
}

TEST(SecureChannel, RoundTripBothDirections) {
  SecureChannel shield(ChannelRole::kShield, psk(), 1);
  SecureChannel prog(ChannelRole::kProgrammer, psk(), 1);

  const auto m1 = msg("interrogate");
  auto env = prog.send(ByteView(m1.data(), m1.size()));
  auto got = shield.receive(env);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, m1);

  const auto m2 = msg("ecg-data");
  env = shield.send(ByteView(m2.data(), m2.size()));
  got = prog.receive(env);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, m2);
}

TEST(SecureChannel, ReplayRejected) {
  SecureChannel shield(ChannelRole::kShield, psk(), 2);
  SecureChannel prog(ChannelRole::kProgrammer, psk(), 2);
  const auto m = msg("set-therapy");
  const auto env = prog.send(ByteView(m.data(), m.size()));
  EXPECT_TRUE(shield.receive(env).has_value());
  // The adversary records and replays it verbatim.
  EXPECT_FALSE(shield.receive(env).has_value());
}

TEST(SecureChannel, ReorderingWithinWindowAccepted) {
  SecureChannel shield(ChannelRole::kShield, psk(), 3);
  SecureChannel prog(ChannelRole::kProgrammer, psk(), 3);
  const auto m = msg("x");
  const auto e0 = prog.send(ByteView(m.data(), m.size()));
  const auto e1 = prog.send(ByteView(m.data(), m.size()));
  const auto e2 = prog.send(ByteView(m.data(), m.size()));
  EXPECT_TRUE(shield.receive(e2).has_value());
  EXPECT_TRUE(shield.receive(e0).has_value());
  EXPECT_TRUE(shield.receive(e1).has_value());
  // But replaying any of them still fails.
  EXPECT_FALSE(shield.receive(e0).has_value());
  EXPECT_FALSE(shield.receive(e2).has_value());
}

TEST(SecureChannel, VeryOldMessageRejected) {
  SecureChannel shield(ChannelRole::kShield, psk(), 4);
  SecureChannel prog(ChannelRole::kProgrammer, psk(), 4);
  const auto m = msg("x");
  const auto old = prog.send(ByteView(m.data(), m.size()));  // seq 0
  // Advance far beyond the replay window.
  SecureChannel::Envelope last;
  for (int i = 0; i < 100; ++i) last = prog.send(ByteView(m.data(), m.size()));
  EXPECT_TRUE(shield.receive(last).has_value());
  EXPECT_FALSE(shield.receive(old).has_value());
}

TEST(SecureChannel, TamperedEnvelopeRejected) {
  SecureChannel shield(ChannelRole::kShield, psk(), 5);
  SecureChannel prog(ChannelRole::kProgrammer, psk(), 5);
  const auto m = msg("therapy");
  auto env = prog.send(ByteView(m.data(), m.size()));
  env.ciphertext[0] ^= 1;
  EXPECT_FALSE(shield.receive(env).has_value());
}

TEST(SecureChannel, SequenceNumberForgeryRejected) {
  SecureChannel shield(ChannelRole::kShield, psk(), 6);
  SecureChannel prog(ChannelRole::kProgrammer, psk(), 6);
  const auto m = msg("x");
  auto env = prog.send(ByteView(m.data(), m.size()));
  env.sequence += 1;  // claim a different sequence number
  EXPECT_FALSE(shield.receive(env).has_value());
}

TEST(SecureChannel, WrongPskRejected) {
  SecureChannel shield(ChannelRole::kShield, psk(), 7);
  const std::uint8_t other_raw[] = "some-other-secret";
  SecureChannel prog(ChannelRole::kProgrammer,
                     ByteView(other_raw, sizeof(other_raw) - 1), 7);
  const auto m = msg("x");
  EXPECT_FALSE(shield.receive(prog.send(ByteView(m.data(), m.size())))
                   .has_value());
}

TEST(SecureChannel, DifferentSessionsAreIsolated) {
  SecureChannel shield(ChannelRole::kShield, psk(), 8);
  SecureChannel prog(ChannelRole::kProgrammer, psk(), 9);
  const auto m = msg("x");
  EXPECT_FALSE(shield.receive(prog.send(ByteView(m.data(), m.size())))
                   .has_value());
}

TEST(SecureChannel, DirectionsUseDistinctKeys) {
  SecureChannel shield(ChannelRole::kShield, psk(), 10);
  SecureChannel prog(ChannelRole::kProgrammer, psk(), 10);
  const auto m = msg("identical message");
  const auto from_shield = shield.send(ByteView(m.data(), m.size()));
  const auto from_prog = prog.send(ByteView(m.data(), m.size()));
  EXPECT_NE(from_shield.ciphertext, from_prog.ciphertext);
  // A shield cannot be made to accept its own transmission (reflection).
  EXPECT_FALSE(shield.receive(from_shield).has_value());
}

TEST(SecureChannel, SendSequenceIncrements) {
  SecureChannel prog(ChannelRole::kProgrammer, psk(), 11);
  const auto m = msg("x");
  EXPECT_EQ(prog.send(ByteView(m.data(), m.size())).sequence, 0u);
  EXPECT_EQ(prog.send(ByteView(m.data(), m.size())).sequence, 1u);
  EXPECT_EQ(prog.next_send_sequence(), 2u);
}

TEST(SecureChannel, EmptyMessageSupported) {
  SecureChannel shield(ChannelRole::kShield, psk(), 12);
  SecureChannel prog(ChannelRole::kProgrammer, psk(), 12);
  const auto env = prog.send({});
  const auto got = shield.receive(env);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->empty());
}

}  // namespace
}  // namespace hs::crypto
