// ChaCha20 / Poly1305 / AEAD against the RFC 8439 test vectors.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "crypto/aead.hpp"

namespace hs::crypto {
namespace {

std::string to_hex(ByteView bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (std::uint8_t b : bytes) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xF]);
  }
  return out;
}

const char* kSunscreen =
    "Ladies and Gentlemen of the class of '99: If I could offer you only "
    "one tip for the future, sunscreen would be it.";

ChaCha20::Key rfc_key() {
  ChaCha20::Key key;
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(i);
  }
  return key;
}

TEST(ChaCha20, Rfc8439Section242Encryption) {
  const auto key = rfc_key();
  ChaCha20::Nonce nonce = {0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0};
  ChaCha20 cipher(key, nonce, /*counter=*/1);
  const Bytes plaintext(kSunscreen, kSunscreen + std::strlen(kSunscreen));
  const auto ct = cipher.apply(ByteView(plaintext.data(), plaintext.size()));
  ASSERT_EQ(ct.size(), 114u);
  EXPECT_EQ(to_hex(ByteView(ct.data(), 16)),
            "6e2e359a2568f98041ba0728dd0d6981");
  EXPECT_EQ(to_hex(ByteView(ct.data() + 96, 18)),
            "5af90bbf74a35be6b40b8eedf2785e42874d");
}

TEST(ChaCha20, EncryptDecryptRoundTrip) {
  const auto key = rfc_key();
  ChaCha20::Nonce nonce{};
  Bytes msg(1000);
  for (std::size_t i = 0; i < msg.size(); ++i) {
    msg[i] = static_cast<std::uint8_t>(i * 31);
  }
  ChaCha20 enc(key, nonce, 7);
  const auto ct = enc.apply(ByteView(msg.data(), msg.size()));
  EXPECT_NE(ct, msg);
  ChaCha20 dec(key, nonce, 7);
  EXPECT_EQ(dec.apply(ByteView(ct.data(), ct.size())), msg);
}

TEST(ChaCha20, StreamingMatchesOneShot) {
  const auto key = rfc_key();
  ChaCha20::Nonce nonce{};
  Bytes msg(300, 0x5a);
  ChaCha20 one(key, nonce, 0);
  const auto expected = one.apply(ByteView(msg.data(), msg.size()));
  ChaCha20 two(key, nonce, 0);
  Bytes streamed = msg;
  for (std::size_t i = 0; i < streamed.size(); i += 13) {
    const std::size_t n = std::min<std::size_t>(13, streamed.size() - i);
    two.apply(streamed.data() + i, n);
  }
  EXPECT_EQ(streamed, expected);
}

TEST(Poly1305, Rfc8439Section252) {
  Poly1305::Key key = {0x85, 0xd6, 0xbe, 0x78, 0x57, 0x55, 0x6d, 0x33,
                       0x7f, 0x44, 0x52, 0xfe, 0x42, 0xd5, 0x06, 0xa8,
                       0x01, 0x03, 0x80, 0x8a, 0xfb, 0x0d, 0xb2, 0xfd,
                       0x4a, 0xbf, 0xf6, 0xaf, 0x41, 0x49, 0xf5, 0x1b};
  const char* msg = "Cryptographic Forum Research Group";
  const auto tag = Poly1305::mac(
      key, ByteView(reinterpret_cast<const std::uint8_t*>(msg),
                    std::strlen(msg)));
  EXPECT_EQ(to_hex(ByteView(tag.data(), tag.size())),
            "a8061dc1305136c6c22b8baf0c0127a9");
}

TEST(Poly1305, VerifyConstantTimeEquality) {
  Poly1305::Tag a{}, b{};
  EXPECT_TRUE(Poly1305::verify(a, b));
  b[15] = 1;
  EXPECT_FALSE(Poly1305::verify(a, b));
}

TEST(Poly1305, IncrementalMatchesOneShot) {
  Poly1305::Key key{};
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(i + 1);
  }
  Bytes msg(259);
  for (std::size_t i = 0; i < msg.size(); ++i) {
    msg[i] = static_cast<std::uint8_t>(i);
  }
  const auto oneshot = Poly1305::mac(key, ByteView(msg.data(), msg.size()));
  Poly1305 mac(key);
  for (std::size_t i = 0; i < msg.size(); i += 7) {
    const std::size_t n = std::min<std::size_t>(7, msg.size() - i);
    mac.update(ByteView(msg.data() + i, n));
  }
  EXPECT_EQ(mac.finalize(), oneshot);
}

TEST(Aead, Rfc8439Section282) {
  Aead::Key key;
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(0x80 + i);
  }
  Aead::Nonce nonce = {0x07, 0x00, 0x00, 0x00, 0x40, 0x41,
                       0x42, 0x43, 0x44, 0x45, 0x46, 0x47};
  const std::uint8_t aad[] = {0x50, 0x51, 0x52, 0x53, 0xc0, 0xc1,
                              0xc2, 0xc3, 0xc4, 0xc5, 0xc6, 0xc7};
  const Bytes plaintext(kSunscreen, kSunscreen + std::strlen(kSunscreen));
  const auto sealed = Aead::seal(
      key, nonce, ByteView(plaintext.data(), plaintext.size()),
      ByteView(aad, sizeof(aad)));
  EXPECT_EQ(to_hex(ByteView(sealed.ciphertext.data(), 16)),
            "d31a8d34648e60db7b86afbc53ef7ec2");
  EXPECT_EQ(to_hex(ByteView(sealed.tag.data(), sealed.tag.size())),
            "1ae10b594f09e26a7e902ecbd0600691");

  const auto opened = Aead::open(
      key, nonce, ByteView(sealed.ciphertext.data(), sealed.ciphertext.size()),
      sealed.tag, ByteView(aad, sizeof(aad)));
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, plaintext);
}

TEST(Aead, TamperedCiphertextRejected) {
  Aead::Key key{};
  Aead::Nonce nonce{};
  const Bytes msg = {1, 2, 3, 4, 5};
  auto sealed = Aead::seal(key, nonce, ByteView(msg.data(), msg.size()), {});
  sealed.ciphertext[2] ^= 0x01;
  EXPECT_FALSE(Aead::open(key, nonce,
                          ByteView(sealed.ciphertext.data(),
                                   sealed.ciphertext.size()),
                          sealed.tag, {})
                   .has_value());
}

TEST(Aead, TamperedAadRejected) {
  Aead::Key key{};
  Aead::Nonce nonce{};
  const Bytes msg = {9, 9, 9};
  const std::uint8_t aad1[] = {1, 2, 3};
  const std::uint8_t aad2[] = {1, 2, 4};
  const auto sealed = Aead::seal(key, nonce, ByteView(msg.data(), msg.size()),
                                 ByteView(aad1, 3));
  EXPECT_FALSE(Aead::open(key, nonce,
                          ByteView(sealed.ciphertext.data(),
                                   sealed.ciphertext.size()),
                          sealed.tag, ByteView(aad2, 3))
                   .has_value());
}

TEST(Aead, WrongKeyRejected) {
  Aead::Key key{}, other{};
  other[0] = 1;
  Aead::Nonce nonce{};
  const Bytes msg = {1, 2, 3};
  const auto sealed =
      Aead::seal(key, nonce, ByteView(msg.data(), msg.size()), {});
  EXPECT_FALSE(Aead::open(other, nonce,
                          ByteView(sealed.ciphertext.data(),
                                   sealed.ciphertext.size()),
                          sealed.tag, {})
                   .has_value());
}

TEST(Aead, WrongNonceRejected) {
  Aead::Key key{};
  Aead::Nonce nonce{}, other{};
  other[11] = 1;
  const Bytes msg = {1, 2, 3};
  const auto sealed =
      Aead::seal(key, nonce, ByteView(msg.data(), msg.size()), {});
  EXPECT_FALSE(Aead::open(key, other,
                          ByteView(sealed.ciphertext.data(),
                                   sealed.ciphertext.size()),
                          sealed.tag, {})
                   .has_value());
}

class AeadSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AeadSizes, RoundTripAllSizes) {
  Aead::Key key{};
  key[31] = 7;
  Aead::Nonce nonce{};
  nonce[0] = 3;
  Bytes msg(GetParam());
  for (std::size_t i = 0; i < msg.size(); ++i) {
    msg[i] = static_cast<std::uint8_t>(i * 13 + 1);
  }
  const std::uint8_t aad[] = {0xde, 0xad};
  const auto sealed = Aead::seal(key, nonce, ByteView(msg.data(), msg.size()),
                                 ByteView(aad, 2));
  const auto opened = Aead::open(
      key, nonce, ByteView(sealed.ciphertext.data(), sealed.ciphertext.size()),
      sealed.tag, ByteView(aad, 2));
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, msg);
}

INSTANTIATE_TEST_SUITE_P(Sizes, AeadSizes,
                         ::testing::Values(0, 1, 15, 16, 17, 63, 64, 65, 255,
                                           1024));

}  // namespace
}  // namespace hs::crypto
