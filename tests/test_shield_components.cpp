#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "dsp/fft.hpp"
#include "dsp/power.hpp"
#include "dsp/spectrum.hpp"
#include "dsp/units.hpp"
#include "phy/frame.hpp"
#include "shield/antidote.hpp"
#include "shield/jamgen.hpp"
#include "shield/relay.hpp"
#include "shield/sid_matcher.hpp"

namespace hs::shield {
namespace {

// ---------------------------------------------------------------------------
// Jamming signal generator
// ---------------------------------------------------------------------------

TEST(JamGen, PowerAccuracy) {
  phy::FskParams fsk;
  JammingSignalGenerator gen(fsk, JamProfile::kShaped, 1);
  for (double target : {1e-6, 1e-3, 0.025, 1.0}) {
    gen.set_power(target);
    const auto block = gen.next(1 << 15);
    EXPECT_NEAR(dsp::mean_power(block), target, 0.05 * target);
  }
}

TEST(JamGen, ShapedConcentratesPowerAtTones) {
  phy::FskParams fsk;
  JammingSignalGenerator shaped(fsk, JamProfile::kShaped, 2);
  JammingSignalGenerator constant(fsk, JamProfile::kConstant, 2);
  shaped.set_power(1.0);
  constant.set_power(1.0);
  auto tone_fraction = [&](JammingSignalGenerator& gen) {
    const auto wave = gen.next(1 << 15);
    const double tones = dsp::band_power(wave, fsk.fs, 35e3, 65e3) +
                         dsp::band_power(wave, fsk.fs, -65e3, -35e3);
    const double total = dsp::band_power(wave, fsk.fs, -150e3, 150e3);
    return tones / total;
  };
  EXPECT_GT(tone_fraction(shaped), 0.75);
  EXPECT_LT(tone_fraction(constant), 0.3);
}

TEST(JamGen, SignalIsRandomNotRepeating) {
  phy::FskParams fsk;
  JammingSignalGenerator gen(fsk, JamProfile::kShaped, 3);
  gen.set_power(1.0);
  const auto a = gen.next(256);
  const auto b = gen.next(256);
  double corr = 0;
  for (std::size_t i = 0; i < 256; ++i) {
    corr += (a[i] * std::conj(b[i])).real();
  }
  EXPECT_LT(std::abs(corr) / 256.0, 0.2);
}

TEST(JamGen, DifferentSeedsDifferentNoise) {
  phy::FskParams fsk;
  JammingSignalGenerator g1(fsk, JamProfile::kShaped, 4);
  JammingSignalGenerator g2(fsk, JamProfile::kShaped, 5);
  g1.set_power(1.0);
  g2.set_power(1.0);
  const auto a = g1.next(64);
  const auto b = g2.next(64);
  bool different = false;
  for (std::size_t i = 0; i < 64; ++i) {
    if (std::abs(a[i] - b[i]) > 1e-12) different = true;
  }
  EXPECT_TRUE(different);
}

TEST(JamGen, ProfileSwitchTakesEffect) {
  phy::FskParams fsk;
  JammingSignalGenerator gen(fsk, JamProfile::kShaped, 6);
  gen.set_power(1.0);
  EXPECT_EQ(gen.profile(), JamProfile::kShaped);
  gen.set_profile(JamProfile::kConstant);
  EXPECT_EQ(gen.profile(), JamProfile::kConstant);
  for (double w : gen.bin_weights()) EXPECT_DOUBLE_EQ(w, 1.0);
}

TEST(JamGen, FftSizeMustBePowerOfTwo) {
  phy::FskParams fsk;
  EXPECT_THROW(JammingSignalGenerator(fsk, JamProfile::kShaped, 1, 100),
               std::invalid_argument);
}

TEST(JamGen, ArbitraryBlockSizesStream) {
  phy::FskParams fsk;
  JammingSignalGenerator gen(fsk, JamProfile::kShaped, 7);
  gen.set_power(1.0);
  std::size_t total = 0;
  for (std::size_t n : {1u, 7u, 48u, 255u, 256u, 257u, 1000u}) {
    EXPECT_EQ(gen.next(n).size(), n);
    total += n;
  }
  EXPECT_GT(total, 0u);
}

TEST(JamGen, FskProfileIsSymmetricAndUnitMean) {
  phy::FskParams fsk;
  const auto profile = fsk_power_profile(fsk, 256);
  double mean = 0;
  for (double p : profile) mean += p;
  mean /= 256.0;
  EXPECT_NEAR(mean, 1.0, 1e-9);
  // Energy at the +-50 kHz bins dominates the mid-band.
  const std::size_t bin_pos = dsp::frequency_bin(50e3, 256, fsk.fs);
  const std::size_t bin_dc = dsp::frequency_bin(0.0, 256, fsk.fs);
  EXPECT_GT(profile[bin_pos], 5.0 * profile[bin_dc]);
}

// ---------------------------------------------------------------------------
// Antidote controller
// ---------------------------------------------------------------------------

TEST(Antidote, IdealCoefficientMatchesChannels) {
  AntidoteController controller(0.0, 1);
  const dsp::cplx hjr(0.02, 0.01);
  const dsp::cplx hself(0.7, -0.1);
  controller.update_jam_channel(hjr);
  controller.update_self_channel(hself);
  ASSERT_TRUE(controller.ready());
  const auto coeff = controller.ideal_coefficient();
  EXPECT_NEAR(std::abs(coeff + hjr / hself), 0.0, 1e-15);
  // With zero hardware error the applied coefficient is ideal.
  EXPECT_NEAR(std::abs(controller.antidote_coefficient() - coeff), 0.0,
              1e-15);
}

TEST(Antidote, NotReadyUntilBothChannels) {
  AntidoteController controller(0.025, 2);
  EXPECT_FALSE(controller.ready());
  EXPECT_THROW(controller.ideal_coefficient(), std::logic_error);
  controller.update_jam_channel({0.01, 0.0});
  EXPECT_FALSE(controller.ready());
  controller.update_self_channel({0.7, 0.0});
  EXPECT_TRUE(controller.ready());
  controller.reset();
  EXPECT_FALSE(controller.ready());
}

TEST(Antidote, HardwareErrorBoundsCancellation) {
  // With error sigma, residual |eps| makes cancellation ~ -20 log10|eps|;
  // the average over epochs should sit near -20log10(sigma) ~ 32 dB for
  // sigma = 0.025.
  AntidoteController controller(0.025, 3);
  controller.update_jam_channel({0.02, 0.0});
  controller.update_self_channel({0.7, 0.0});
  double sum_db = 0;
  const int epochs = 400;
  for (int i = 0; i < epochs; ++i) {
    controller.begin_epoch();
    const auto applied = controller.antidote_coefficient();
    const auto ideal = controller.ideal_coefficient();
    const double residual = std::abs(applied - ideal) / std::abs(ideal);
    sum_db += -20.0 * std::log10(residual);
  }
  EXPECT_NEAR(sum_db / epochs, 32.0, 3.0);
}

TEST(Antidote, EpochRedrawChangesCoefficient) {
  AntidoteController controller(0.05, 4);
  controller.update_jam_channel({0.02, 0.0});
  controller.update_self_channel({0.7, 0.0});
  const auto first = controller.antidote_coefficient();
  controller.begin_epoch();
  EXPECT_GT(std::abs(controller.antidote_coefficient() - first), 0.0);
}

TEST(Antidote, ProbeWaveformDeterministicUnitPower) {
  const auto a = make_probe_waveform(96, 9);
  const auto b = make_probe_waveform(96, 9);
  ASSERT_EQ(a.size(), 96u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
    EXPECT_NEAR(std::abs(a[i]), 1.0, 1e-12);
  }
  const auto c = make_probe_waveform(96, 10);
  bool different = false;
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (std::abs(a[i] - c[i]) > 1e-12) different = true;
  }
  EXPECT_TRUE(different);
}

// ---------------------------------------------------------------------------
// S_id matcher
// ---------------------------------------------------------------------------

phy::BitVec sid_for_tests() {
  phy::DeviceId id = {'V', 'I', 'R', '2', '0', '1', '1', '0', '0', '7'};
  return phy::make_sid(id);
}

TEST(SidMatcher, ExactSequenceFires) {
  SidMatcher matcher(sid_for_tests(), 4);
  EXPECT_TRUE(matcher.push(phy::BitView(sid_for_tests())));
  EXPECT_TRUE(matcher.fired());
}

TEST(SidMatcher, FiresMidStream) {
  SidMatcher matcher(sid_for_tests(), 4);
  phy::BitVec stream = {1, 0, 0, 1, 1, 0};  // unrelated prefix
  const auto sid = sid_for_tests();
  stream.insert(stream.end(), sid.begin(), sid.end());
  EXPECT_TRUE(matcher.push(phy::BitView(stream)));
}

TEST(SidMatcher, ToleratesUpToBthreshFlips) {
  auto sid = sid_for_tests();
  sid[3] ^= 1;
  sid[40] ^= 1;
  sid[77] ^= 1;
  sid[100] ^= 1;  // exactly 4 flips
  SidMatcher matcher(sid_for_tests(), 4);
  EXPECT_TRUE(matcher.push(phy::BitView(sid)));
}

TEST(SidMatcher, RejectsBeyondBthresh) {
  auto sid = sid_for_tests();
  for (std::size_t i = 0; i < 5; ++i) sid[10 + 13 * i] ^= 1;  // 5 flips
  SidMatcher matcher(sid_for_tests(), 4);
  EXPECT_FALSE(matcher.push(phy::BitView(sid)));
  EXPECT_FALSE(matcher.fired());
}

TEST(SidMatcher, ExactSuffixEnforced) {
  phy::BitVec sid = sid_for_tests();
  sid.push_back(0);  // direction bit: command
  SidMatcher matcher(sid, 4, /*exact_suffix_bits=*/1);
  // A reply (direction bit 1) must not fire even though 1 flip < b_thresh.
  phy::BitVec reply = sid;
  reply.back() = 1;
  EXPECT_FALSE(matcher.push(phy::BitView(reply)));
  matcher.reset();
  EXPECT_TRUE(matcher.push(phy::BitView(sid)));
}

TEST(SidMatcher, FiresOncePerReset) {
  const auto sid = sid_for_tests();
  SidMatcher matcher(sid, 4);
  EXPECT_TRUE(matcher.push(phy::BitView(sid)));
  EXPECT_FALSE(matcher.push(phy::BitView(sid)));  // already fired
  matcher.reset();
  EXPECT_TRUE(matcher.push(phy::BitView(sid)));
}

TEST(SidMatcher, BestDistanceScansWindows) {
  const auto sid = sid_for_tests();
  SidMatcher matcher(sid, 4);
  phy::BitVec stream(20, 0);
  auto noisy = sid;
  noisy[5] ^= 1;
  stream.insert(stream.end(), noisy.begin(), noisy.end());
  EXPECT_EQ(matcher.best_distance(phy::BitView(stream)), 1u);
  EXPECT_TRUE(matcher.matches_anywhere(phy::BitView(stream)));
  phy::BitVec random(sid.size(), 0);
  EXPECT_GT(matcher.best_distance(phy::BitView(random)), 4u);
  phy::BitVec tiny(4, 0);
  EXPECT_EQ(matcher.best_distance(phy::BitView(tiny)),
            std::numeric_limits<std::size_t>::max());
}

TEST(SidMatcher, RejectsDegenerateConstruction) {
  EXPECT_THROW(SidMatcher(phy::BitVec{}, 4), std::invalid_argument);
  EXPECT_THROW(SidMatcher(phy::BitVec{1, 0}, 0, 3), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Relay serialization
// ---------------------------------------------------------------------------

TEST(RelaySerialization, RoundTrip) {
  phy::Frame f;
  f.device_id = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  f.type = 0x03;
  f.seq = 99;
  f.payload = {10, 20, 30};
  const auto bytes = serialize_relay_frame(f);
  const auto out = deserialize_relay_frame(
      phy::ByteView(bytes.data(), bytes.size()), f.device_id);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->type, f.type);
  EXPECT_EQ(out->seq, f.seq);
  EXPECT_EQ(out->payload, f.payload);
  EXPECT_EQ(out->device_id, f.device_id);
}

TEST(RelaySerialization, MalformedRejected) {
  phy::DeviceId id{};
  const phy::ByteVec too_short = {1};
  EXPECT_FALSE(deserialize_relay_frame(
                   phy::ByteView(too_short.data(), too_short.size()), id)
                   .has_value());
  const phy::ByteVec wrong_len = {1, 2, 5, 0xAA};  // claims 5, has 1
  EXPECT_FALSE(deserialize_relay_frame(
                   phy::ByteView(wrong_len.data(), wrong_len.size()), id)
                   .has_value());
  phy::ByteVec huge = {1, 2, 45};
  huge.resize(3 + 45, 0);  // payload larger than the air format allows
  EXPECT_FALSE(deserialize_relay_frame(
                   phy::ByteView(huge.data(), huge.size()), id)
                   .has_value());
}

}  // namespace
}  // namespace hs::shield
