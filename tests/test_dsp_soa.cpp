// Split-complex (SoA) fast paths vs their AoS scalar references.
//
// Every SoA path in the dsp layer promises *sample-exact* equivalence:
// the split arithmetic uses the same naive complex-multiply expansion
// -fcx-limited-range compiles the AoS code to, in the same accumulation
// order, so these tests compare with EXPECT_EQ (bit equality), not
// tolerances.
#include <gtest/gtest.h>

#include <cmath>

#include "channel/medium.hpp"
#include "dsp/correlate.hpp"
#include "dsp/fir.hpp"
#include "dsp/mixer.hpp"
#include "dsp/power.hpp"
#include "dsp/resample.hpp"
#include "dsp/rng.hpp"
#include "dsp/types.hpp"
#include "mics/band.hpp"
#include "mics/channelizer.hpp"
#include "phy/frame.hpp"
#include "phy/fsk.hpp"
#include "phy/receiver.hpp"
#include "shield/jamgen.hpp"
#include "shield/multitap_antidote.hpp"

namespace hs::dsp {
namespace {

Samples random_samples(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  Samples x(n);
  rng.fill_awgn(x, 1.0);
  return x;
}

void expect_bit_equal(SampleView a, SoaView b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].real(), b.re[i]) << "sample " << i;
    EXPECT_EQ(a[i].imag(), b.im[i]) << "sample " << i;
  }
}

TEST(Soa, AosRoundTrip) {
  const Samples x = random_samples(1, 257);
  const SoaSamples soa = to_soa(x);
  expect_bit_equal(x, soa.view());
  const Samples back = to_aos(soa.view());
  ASSERT_EQ(back.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(back[i], x[i]);
}

TEST(Soa, AppendAndEraseFront) {
  const Samples x = random_samples(2, 100);
  SoaSamples soa;
  soa.append(SampleView(x.data(), 40));
  soa.append(SampleView(x.data() + 40, 60));
  expect_bit_equal(x, soa.view());
  soa.erase_front(25);
  expect_bit_equal(SampleView(x.data() + 25, 75), soa.view());

  SoaSamples plane_copy;
  plane_copy.append(soa.view());
  expect_bit_equal(SampleView(x.data() + 25, 75), plane_copy.view());
}

TEST(Soa, FillAwgnMatchesAosDrawForDraw) {
  // Same stream state => identical noise in either layout (the SoA fill
  // draws re/im interleaved exactly like the AoS fill).
  Rng a(42, "awgn");
  Rng b(42, "awgn");
  Samples aos(1000);
  a.fill_awgn(aos, 3.7e-12);
  SoaSamples soa(1000);
  b.fill_awgn(soa.view(), 3.7e-12);
  expect_bit_equal(aos, soa.view());
}

TEST(Soa, RealFirBlockMatchesScalar) {
  const auto taps = design_lowpass(0.2, 31);
  FirFilter scalar(taps);
  FirFilter block(taps);
  const Samples x = random_samples(3, 500);
  const SoaSamples xs = to_soa(x);

  Samples want;
  scalar.process(x, want);
  // Uneven block boundaries exercise the history writeback.
  SoaSamples got;
  std::size_t pos = 0;
  for (std::size_t len : {7u, 130u, 1u, 300u, 62u}) {
    block.process(xs.view().subview(pos, len), got);
    pos += len;
  }
  expect_bit_equal(want, got.view());

  // And the streaming state matches: the next scalar sample agrees.
  const cplx probe{0.5, -0.25};
  EXPECT_EQ(scalar.process(probe), block.process(probe));
}

TEST(Soa, ComplexFirBlockMatchesScalar) {
  const Samples taps = design_bandpass(50e3, 20e3, 300e3, 65);
  ComplexFirFilter scalar(taps);
  ComplexFirFilter block(taps);
  const Samples x = random_samples(4, 400);
  const SoaSamples xs = to_soa(x);

  Samples want;
  scalar.process(x, want);
  SoaSamples got;
  block.process(xs.view().subview(0, 33), got);
  block.process(xs.view().subview(33, 367), got);
  expect_bit_equal(want, got.view());

  const cplx probe{-1.5, 2.0};
  EXPECT_EQ(scalar.process(probe), block.process(probe));
}

TEST(Soa, MixerBlockMatchesScalar) {
  Mixer scalar(12.5e3, 300e3);
  Mixer block(12.5e3, 300e3);
  const Samples x = random_samples(5, 300);
  const SoaSamples xs = to_soa(x);

  Samples want;
  scalar.process(x, want);
  SoaSamples got;
  block.process(xs.view().subview(0, 100), got);
  block.process(xs.view().subview(100, 200), got);
  expect_bit_equal(want, got.view());

  const cplx probe{0.25, 0.75};
  EXPECT_EQ(scalar.process(probe), block.process(probe));
}

TEST(Soa, CorrelationKernelsMatchAos) {
  const Samples sig = random_samples(6, 300);
  const Samples ref = random_samples(7, 48);
  const SoaSamples sig_s = to_soa(sig);
  const SoaSamples ref_s = to_soa(ref);

  const auto cc_aos = cross_correlate(sig, ref);
  const auto cc_soa = cross_correlate(sig_s.view(), ref_s.view());
  ASSERT_EQ(cc_aos.size(), cc_soa.size());
  for (std::size_t i = 0; i < cc_aos.size(); ++i) {
    EXPECT_EQ(cc_aos[i], cc_soa[i]);
  }

  const auto nc_aos = normalized_correlation(sig, ref);
  const auto nc_soa = normalized_correlation(sig_s.view(), ref_s.view());
  ASSERT_EQ(nc_aos.size(), nc_soa.size());
  for (std::size_t i = 0; i < nc_aos.size(); ++i) {
    EXPECT_EQ(nc_aos[i], nc_soa[i]);
  }

  EXPECT_EQ(estimate_flat_channel(sig, ref),
            estimate_flat_channel(sig_s.view(), ref_s.view()));
}

TEST(Soa, PowerMetersMatchAos) {
  const Samples x = random_samples(8, 222);
  const SoaSamples xs = to_soa(x);
  EXPECT_EQ(mean_power(SampleView(x)), mean_power(xs.view()));
  EXPECT_EQ(energy(SampleView(x)), energy(xs.view()));

  RssiMeter a(64);
  RssiMeter b(64);
  EXPECT_EQ(a.push(SampleView(x)), b.push(xs.view()));
  EXPECT_EQ(a.value(), b.value());
}

TEST(Soa, NoncoherentDemodMatchesAos) {
  phy::FskParams fsk;
  phy::NoncoherentFskDemod demod(fsk);
  // A noisy two-tone waveform: decisions and metrics must agree exactly.
  Rng rng(9);
  phy::BitVec bits(64);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next_u64() & 1);
  Samples wave = phy::fsk_modulate(fsk, bits);
  Samples noise(wave.size());
  rng.fill_awgn(noise, 0.5);
  for (std::size_t i = 0; i < wave.size(); ++i) wave[i] += noise[i];
  const SoaSamples wave_s = to_soa(wave);

  for (std::size_t s = 0; s < bits.size(); ++s) {
    double m_aos = 0.0, m_soa = 0.0;
    const auto b_aos = demod.demod_symbol(wave, s * fsk.sps, &m_aos);
    const auto b_soa = demod.demod_symbol(wave_s.view(), s * fsk.sps, &m_soa);
    EXPECT_EQ(b_aos, b_soa);
    EXPECT_EQ(m_aos, m_soa);
  }
  const auto d_aos = demod.demodulate(wave, 0, bits.size());
  const auto d_soa = demod.demodulate(wave_s.view(), 0, bits.size());
  EXPECT_EQ(d_aos, d_soa);
}

TEST(Soa, JamgenSoaStreamMatchesAos) {
  phy::FskParams fsk;
  shield::JammingSignalGenerator a(fsk, shield::JamProfile::kShaped, 11);
  shield::JammingSignalGenerator b(fsk, shield::JamProfile::kShaped, 11);
  // Mismatched slice sizes across refills must still agree sample-wise.
  Samples aos = a.next(100);
  {
    const Samples more = a.next(700);
    aos.insert(aos.end(), more.begin(), more.end());
  }
  SoaSamples soa;
  SoaSamples chunk;
  for (std::size_t len : {37u, 263u, 500u}) {
    b.next(len, chunk);
    soa.append(chunk.view());
  }
  expect_bit_equal(aos, soa.view());
}

TEST(Soa, MultitapAntidoteSoaMatchesAos) {
  // Drive two identical estimators, then compare the AoS and SoA
  // streaming applications.
  const Samples probe = random_samples(12, 256);
  Samples received(probe.size(), cplx{});
  // A synthetic 3-tap channel.
  const cplx h[3] = {{0.8, 0.1}, {-0.2, 0.05}, {0.05, -0.02}};
  for (std::size_t i = 0; i < probe.size(); ++i) {
    for (std::size_t k = 0; k < 3 && k <= i; ++k) {
      received[i] += h[k] * probe[i - k];
    }
  }
  shield::MultitapAntidote a(4, 64);
  a.update_jam_channel(received, probe);
  a.update_self_channel(probe, probe);  // identity self channel
  shield::MultitapAntidote b(4, 64);
  b.update_jam_channel(received, probe);
  b.update_self_channel(probe, probe);

  const Samples jam = random_samples(13, 300);
  const SoaSamples jam_s = to_soa(jam);
  const Samples want = a.antidote_for(jam);
  SoaSamples got;
  b.antidote_for(jam_s.view(), got);
  expect_bit_equal(want, got.view());
}

TEST(Soa, FskReceiverPushPathsAgree) {
  // A real frame in noise, fed once as AoS blocks and once as SoA blocks
  // with different chunking: both receivers must report the identical
  // frame (status, start, rssi, raw bits).
  phy::FskParams fsk;
  phy::Frame f;
  f.device_id = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  f.type = 0x01;
  f.seq = 9;
  f.payload.assign(8, 0x5A);
  Rng rng(15);
  Samples air(9000);
  rng.fill_awgn(air, 1e-12);
  const Samples wave = phy::fsk_modulate(fsk, phy::encode_frame(f));
  for (std::size_t i = 0; i < wave.size(); ++i) {
    air[1500 + i] += 0.01 * wave[i];
  }
  const SoaSamples air_s = to_soa(air);

  phy::FskReceiver rx_aos(fsk);
  rx_aos.push(air);
  phy::FskReceiver rx_soa(fsk);
  std::size_t pos = 0;
  for (std::size_t len : {900u, 1u, 4099u, 4000u}) {
    rx_soa.push(air_s.view().subview(pos, len));
    pos += len;
  }
  const auto a = rx_aos.pop();
  const auto b = rx_soa.pop();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->decode.status, b->decode.status);
  EXPECT_EQ(a->start_sample, b->start_sample);
  EXPECT_EQ(a->rssi, b->rssi);
  EXPECT_EQ(a->raw_bits, b->raw_bits);
  EXPECT_EQ(a->decode.frame.seq, 9);
}

TEST(Soa, MediumSoaTxRxMatchesAos) {
  // Two identically seeded mediums, one driven through AoS set_tx and
  // read via rx(), the other through SoA set_tx and read via rx_soa():
  // every received sample must be bit-identical.
  const std::size_t block = 128;
  channel::Medium m_aos(300e3, block, 77);
  channel::Medium m_soa(300e3, block, 77);
  for (channel::Medium* m : {&m_aos, &m_soa}) {
    channel::AntennaDesc a;
    a.name = "tx";
    a.position = {0.0, 0.0};
    m->add_antenna(a);
    channel::AntennaDesc b;
    b.name = "rx";
    b.position = {1.0, 0.0};
    m->add_antenna(b);
  }
  const Samples wave = random_samples(14, block);
  const SoaSamples wave_s = to_soa(wave);

  m_aos.begin_block();
  m_aos.set_tx(0, wave);
  m_aos.mix();
  m_soa.begin_block();
  m_soa.set_tx(0, wave_s.view());
  m_soa.mix();

  expect_bit_equal(m_aos.rx(1), m_soa.rx_soa(1));
  // And the lazily materialized AoS view agrees with the planes.
  expect_bit_equal(m_soa.rx(1), m_aos.rx_soa(1));
  EXPECT_EQ(m_aos.rx_power(1), m_soa.rx_power(1));
}

TEST(Soa, DecimatorBlockMatchesScalar) {
  Decimator scalar(10, 41);
  Decimator block(10, 41);
  const Samples x = random_samples(11, 700);
  const SoaSamples xs = to_soa(x);

  Samples want;
  scalar.process(x, want);
  // Uneven block boundaries (incl. blocks shorter than the factor)
  // exercise the carried decimation phase and the FIR history writeback.
  SoaSamples got;
  std::size_t pos = 0;
  for (std::size_t len : {3u, 95u, 1u, 6u, 400u, 195u}) {
    block.process(xs.view().subview(pos, len), got);
    pos += len;
  }
  expect_bit_equal(want, got.view());

  // Streaming state agrees: the next scalar-path block matches too.
  const Samples more = random_samples(12, 40);
  Samples want_more;
  scalar.process(more, want_more);
  SoaSamples got_more;
  block.process(to_soa(more).view(), got_more);
  expect_bit_equal(want_more, got_more.view());
}

TEST(Soa, InterpolatorBlockMatchesScalar) {
  Interpolator scalar(10, 41);
  Interpolator block(10, 41);
  const Samples x = random_samples(13, 120);
  const SoaSamples xs = to_soa(x);

  Samples want;
  scalar.process(x, want);
  SoaSamples got;
  std::size_t pos = 0;
  for (std::size_t len : {1u, 50u, 9u, 60u}) {
    block.process(xs.view().subview(pos, len), got);
    pos += len;
  }
  expect_bit_equal(want, got.view());

  // Streaming state agrees: the next block matches too.
  const Samples more = random_samples(16, 17);
  Samples want_more;
  scalar.process(more, want_more);
  SoaSamples got_more;
  block.process(to_soa(more).view(), got_more);
  expect_bit_equal(want_more, got_more.view());
}

TEST(Soa, ChannelizerMatchesScalarReference) {
  // The MICS channelizer's SoA inner loops vs a per-sample scalar
  // reference chain (mixer + anti-alias FIR + keep-every-Mth), fed in
  // blocks to exercise streaming state.
  const std::size_t taps = 41;
  mics::Channelizer channelizer(taps);
  const Samples wide = random_samples(14, 2400);

  std::array<Samples, mics::kChannelCount> got;
  for (std::size_t pos = 0; pos < wide.size(); pos += 480) {
    channelizer.process(SampleView(wide.data() + pos, 480), got);
  }

  for (std::size_t c = 0; c < mics::kChannelCount; ++c) {
    Mixer mixer(-mics::channel_baseband_offset_hz(c), mics::kWidebandFs);
    FirFilter lowpass(design_lowpass(0.4 / 10.0, taps));
    Samples want;
    std::size_t phase = 0;
    for (const cplx xi : wide) {
      const cplx y = lowpass.process(mixer.process(xi));
      if (phase == 0) want.push_back(y);
      phase = (phase + 1) % 10;
    }
    ASSERT_EQ(got[c].size(), want.size()) << "channel " << c;
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[c][i], want[i]) << "channel " << c << " sample " << i;
    }
  }
}

TEST(Soa, ChannelSynthesizerMatchesScalarReference) {
  const std::size_t taps = 41;
  mics::ChannelSynthesizer synth(taps);
  const Samples base = random_samples(15, 240);
  const std::size_t channel = 7;

  Samples wide(base.size() * 10, cplx{});
  synth.process(channel, base, wide);

  Interpolator interp(10, taps);
  Mixer mixer(mics::channel_baseband_offset_hz(channel), mics::kWidebandFs);
  Samples up;
  interp.process(base, up);
  ASSERT_EQ(up.size(), wide.size());
  for (std::size_t i = 0; i < up.size(); ++i) {
    EXPECT_EQ(wide[i], mixer.process(up[i])) << "sample " << i;
  }
}

}  // namespace
}  // namespace hs::dsp
