// Cross-cutting property and robustness tests: determinism, fuzz-style
// negative inputs, and the security invariants the whole system rests on.
#include <gtest/gtest.h>

#include "crypto/secure_channel.hpp"
#include "dsp/rng.hpp"
#include "dsp/units.hpp"
#include "imd/profiles.hpp"
#include "phy/frame.hpp"
#include "phy/receiver.hpp"
#include "phy/whitening.hpp"
#include "shield/experiments.hpp"
#include "shield/sid_matcher.hpp"

namespace hs {
namespace {

// ---------------------------------------------------------------------------
// Determinism: every experiment regenerates identically from its seed.
// ---------------------------------------------------------------------------

TEST(Determinism, AttackExperimentReproducible) {
  shield::AttackOptions opt;
  opt.seed = 123;
  opt.location_index = 7;
  opt.trials = 8;
  opt.shield_present = false;
  const auto a = shield::run_attack_experiment(opt);
  const auto b = shield::run_attack_experiment(opt);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_DOUBLE_EQ(a.battery_energy_spent_mj, b.battery_energy_spent_mj);
}

TEST(Determinism, EavesdropExperimentReproducible) {
  shield::EavesdropOptions opt;
  opt.seed = 321;
  opt.packets = 6;
  const auto a = shield::run_eavesdrop_experiment(opt);
  const auto b = shield::run_eavesdrop_experiment(opt);
  ASSERT_EQ(a.eavesdropper_ber.size(), b.eavesdropper_ber.size());
  for (std::size_t i = 0; i < a.eavesdropper_ber.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.eavesdropper_ber[i], b.eavesdropper_ber[i]);
  }
}

TEST(Determinism, DifferentSeedsDifferentMicrostructure) {
  shield::EavesdropOptions opt;
  opt.packets = 4;
  opt.seed = 1;
  const auto a = shield::run_eavesdrop_experiment(opt);
  opt.seed = 2;
  const auto b = shield::run_eavesdrop_experiment(opt);
  ASSERT_FALSE(a.eavesdropper_ber.empty());
  ASSERT_FALSE(b.eavesdropper_ber.empty());
  EXPECT_NE(a.eavesdropper_ber[0], b.eavesdropper_ber[0]);
}

// ---------------------------------------------------------------------------
// Frame decoder robustness: garbage in, no crash / no false accept.
// ---------------------------------------------------------------------------

TEST(Fuzz, RandomBitsNeverDecodeAsValidFrames) {
  dsp::Rng rng(9);
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t n = 100 + rng.uniform_u64(600);
    phy::BitVec bits(n);
    for (auto& b : bits) b = rng.next_u64() & 1;
    const auto result = phy::decode_frame(bits);
    // Random bits must fail sync (48-bit pattern, tolerance 4) long before
    // CRC could collide.
    EXPECT_NE(result.status, phy::DecodeStatus::kOk);
  }
}

TEST(Fuzz, ReceiverSurvivesPathologicalInput) {
  phy::FskParams fsk;
  phy::FskReceiver rx(fsk);
  dsp::Rng rng(10);
  // Giant-amplitude spikes, zeros, huge noise bursts.
  dsp::Samples block(48);
  for (int i = 0; i < 200; ++i) {
    switch (i % 4) {
      case 0:
        rng.fill_awgn(block, 1e6);
        break;
      case 1:
        std::fill(block.begin(), block.end(), dsp::cplx{});
        break;
      case 2:
        rng.fill_awgn(block, 1e-30);
        break;
      case 3:
        std::fill(block.begin(), block.end(), dsp::cplx{1e3, -1e3});
        break;
    }
    rx.push(block);
    while (rx.pop()) {
    }
  }
  SUCCEED();
}

TEST(Fuzz, SecureChannelRejectsAllRandomTampering) {
  const std::uint8_t psk_raw[] = "k";
  crypto::ByteView psk(psk_raw, 1);
  crypto::SecureChannel shield(crypto::ChannelRole::kShield, psk, 1);
  crypto::SecureChannel prog(crypto::ChannelRole::kProgrammer, psk, 1);
  const crypto::Bytes msg = {1, 2, 3, 4, 5, 6, 7, 8};
  dsp::Rng rng(11);
  for (int trial = 0; trial < 300; ++trial) {
    auto env = prog.send(crypto::ByteView(msg.data(), msg.size()));
    // Flip a random bit somewhere in the envelope.
    const auto what = rng.uniform_u64(3);
    if (what == 0 && !env.ciphertext.empty()) {
      env.ciphertext[rng.uniform_u64(env.ciphertext.size())] ^=
          static_cast<std::uint8_t>(1u << rng.uniform_u64(8));
    } else if (what == 1) {
      env.tag[rng.uniform_u64(env.tag.size())] ^=
          static_cast<std::uint8_t>(1u << rng.uniform_u64(8));
    } else {
      env.sequence ^= 1ull << rng.uniform_u64(20);
    }
    EXPECT_FALSE(shield.receive(env).has_value()) << "trial " << trial;
  }
}

// ---------------------------------------------------------------------------
// S_id matcher: false positives and embedded matches.
// ---------------------------------------------------------------------------

TEST(SidProperties, RandomStreamsEssentiallyNeverMatch) {
  const auto profile = imd::virtuoso_profile();
  phy::BitVec sid = phy::make_sid(profile.serial);
  shield::SidMatcher matcher(sid, 4);
  dsp::Rng rng(12);
  // 128-bit pattern with tolerance 4 over 200k random bits: the expected
  // false-positive count is astronomically small.
  std::size_t fired = 0;
  for (int i = 0; i < 200000; ++i) {
    if (matcher.push(static_cast<std::uint8_t>(rng.next_u64() & 1))) {
      ++fired;
      matcher.reset();
    }
  }
  EXPECT_EQ(fired, 0u);
}

class SidEmbedSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SidEmbedSweep, EmbeddedSidAlwaysFoundAtAnyOffset) {
  const auto profile = imd::virtuoso_profile();
  const phy::BitVec sid = phy::make_sid(profile.serial);
  shield::SidMatcher matcher(sid, 4);
  dsp::Rng rng(GetParam());
  phy::BitVec stream(GetParam());
  for (auto& b : stream) b = rng.next_u64() & 1;
  stream.insert(stream.end(), sid.begin(), sid.end());
  EXPECT_TRUE(matcher.push(phy::BitView(stream.data(), stream.size())));
}

INSTANTIATE_TEST_SUITE_P(Offsets, SidEmbedSweep,
                         ::testing::Values(0, 1, 7, 31, 64, 129, 500));

// ---------------------------------------------------------------------------
// Security invariants at the system level.
// ---------------------------------------------------------------------------

TEST(Invariant, JammedPacketsNeverExecuteAsCommands) {
  // Whatever the adversary sends from wherever, with the shield present
  // at FCC power the IMD never *executes* anything: either sync dies or
  // the checksum fails. Swept over locations and payload shapes.
  for (int loc : {1, 4, 8}) {
    shield::AttackOptions opt;
    opt.seed = 500 + static_cast<std::uint64_t>(loc);
    opt.location_index = loc;
    opt.trials = 6;
    opt.shield_present = true;
    opt.kind = shield::AttackKind::kChangeTherapy;
    const auto result = shield::run_attack_experiment(opt);
    EXPECT_EQ(result.successes, 0u) << "location " << loc;
  }
}

TEST(Invariant, ConfidentialityHoldsForEveryPayloadPattern) {
  // One-time-pad property of random jamming: BER at the eavesdropper is
  // ~0.5 regardless of what the IMD transmits (all-zeros, all-ones,
  // random) — the jam, not the data, sets the distribution.
  shield::EavesdropOptions opt;
  opt.seed = 77;
  opt.packets = 10;
  const auto result = shield::run_eavesdrop_experiment(opt);
  ASSERT_GE(result.eavesdropper_ber.size(), 8u);
  for (double ber : result.eavesdropper_ber) {
    EXPECT_GT(ber, 0.35);
    EXPECT_LT(ber, 0.65);
  }
}

TEST(Invariant, WhitenedPayloadsRoundTripThroughTheStack) {
  // Whitening composes with framing: apply at the sender, invert at the
  // receiver, contents intact.
  dsp::Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    phy::Frame f;
    f.device_id = {9, 9, 9, 9, 9, 9, 9, 9, 9, 9};
    f.type = 0x44;
    f.payload.assign(1 + rng.uniform_u64(40), 0);
    for (auto& b : f.payload) b = static_cast<std::uint8_t>(rng.next_u64());

    phy::Frame on_air = f;
    auto bits = phy::bytes_to_bits(
        phy::ByteView(on_air.payload.data(), on_air.payload.size()));
    phy::Whitener tx_whitener;
    tx_whitener.apply(bits);
    on_air.payload = phy::bits_to_bytes(phy::BitView(bits.data(),
                                                     bits.size()));

    const auto decoded = phy::decode_frame(phy::encode_frame(on_air));
    ASSERT_EQ(decoded.status, phy::DecodeStatus::kOk);
    auto rx_bits = phy::bytes_to_bits(phy::ByteView(
        decoded.frame.payload.data(), decoded.frame.payload.size()));
    phy::Whitener rx_whitener;
    rx_whitener.apply(rx_bits);
    EXPECT_EQ(phy::bits_to_bytes(phy::BitView(rx_bits.data(),
                                              rx_bits.size())),
              f.payload);
  }
}

class DetectionSnrSweep : public ::testing::TestWithParam<double> {};

TEST_P(DetectionSnrSweep, ReceiverAlwaysDetectsAboveThreshold) {
  // Detection-probability property: at >= 15 dB SNR the receiver must
  // acquire every frame, across random payloads and offsets.
  const double snr_db = GetParam();
  phy::FskParams fsk;
  dsp::Rng rng(static_cast<std::uint64_t>(snr_db * 10) + 3);
  int detected = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    phy::Frame f;
    f.device_id = {1, 1, 2, 3, 5, 8, 13, 21, 34, 55};
    f.payload.assign(8 + rng.uniform_u64(20), 0);
    for (auto& b : f.payload) b = static_cast<std::uint8_t>(rng.next_u64());
    const auto wave = phy::fsk_modulate(fsk, phy::encode_frame(f));
    const double noise = dsp::dbm_to_mw(-110.0);
    const double amp = std::sqrt(noise * dsp::db_to_power(snr_db));
    dsp::Samples air(4000 + wave.size() + 2000);
    rng.fill_awgn(air, noise);
    const std::size_t offset = 3000 + rng.uniform_u64(200);
    for (std::size_t i = 0; i < wave.size(); ++i) {
      air[offset + i] += amp * wave[i];
    }
    phy::FskReceiver receiver(fsk);
    receiver.push(air);
    if (auto frame = receiver.pop();
        frame && frame->decode.status == phy::DecodeStatus::kOk) {
      ++detected;
    }
  }
  EXPECT_EQ(detected, trials) << "SNR " << snr_db;
}

INSTANTIATE_TEST_SUITE_P(HighSnr, DetectionSnrSweep,
                         ::testing::Values(15.0, 20.0, 30.0, 50.0));

}  // namespace
}  // namespace hs
