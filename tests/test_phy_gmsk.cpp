#include <gtest/gtest.h>

#include <cmath>

#include "dsp/rng.hpp"
#include "dsp/spectrum.hpp"
#include "phy/gmsk.hpp"

namespace hs::phy {
namespace {

BitVec random_bits(std::size_t n, std::uint64_t seed) {
  dsp::Rng rng(seed);
  BitVec bits(n);
  for (auto& b : bits) b = rng.next_u64() & 1;
  return bits;
}

TEST(Gmsk, ConstantEnvelope) {
  GmskParams p;
  GmskModulator mod(p);
  const auto wave = mod.modulate(random_bits(128, 1));
  for (const auto& x : wave) EXPECT_NEAR(std::abs(x), 1.0, 1e-9);
}

TEST(Gmsk, OutputLength) {
  GmskParams p;
  GmskModulator mod(p);
  EXPECT_EQ(mod.modulate(random_bits(100, 2)).size(), 100 * p.sps);
}

TEST(Gmsk, RoundTrip) {
  GmskParams p;
  GmskModulator mod(p);
  const auto bits = random_bits(400, 3);
  const auto wave = mod.modulate(bits);
  GmskDemodulator demod(p);
  const auto out = demod.demodulate(wave, 0, bits.size());
  // The pulse delay truncates the tail; everything demodulated must match.
  ASSERT_GT(out.size(), bits.size() - 4);
  std::size_t errors = 0;
  for (std::size_t i = 0; i < out.size(); ++i) errors += out[i] != bits[i];
  EXPECT_EQ(errors, 0u);
}

TEST(Gmsk, RoundTripUnderMildNoise) {
  GmskParams p;
  GmskModulator mod(p);
  const auto bits = random_bits(500, 4);
  auto wave = mod.modulate(bits);
  dsp::Rng noise(5);
  for (auto& x : wave) x += noise.cgaussian(1e-3);  // 30 dB SNR
  GmskDemodulator demod(p);
  const auto out = demod.demodulate(wave, 0, bits.size());
  std::size_t errors = 0;
  for (std::size_t i = 0; i < out.size(); ++i) errors += out[i] != bits[i];
  EXPECT_LT(static_cast<double>(errors) / out.size(), 0.01);
}

TEST(Gmsk, SpectrumIsNarrowerThanFsk) {
  // GMSK concentrates power near DC (MSK-like, h = 0.5), unlike the
  // +-50 kHz FSK tones; this is why the shield's S_id matcher never fires
  // on radiosonde traffic.
  GmskParams p;
  GmskModulator mod(p);
  const auto wave = mod.modulate(random_bits(2000, 6));
  const double near_dc = dsp::band_power(wave, p.fs, -20e3, 20e3);
  const double at_fsk_tones = dsp::band_power(wave, p.fs, 35e3, 65e3) +
                              dsp::band_power(wave, p.fs, -65e3, -35e3);
  EXPECT_GT(near_dc, 10.0 * at_fsk_tones);
}

TEST(Gmsk, ResetRestartsCleanly) {
  GmskParams p;
  GmskModulator mod(p);
  const auto bits = random_bits(64, 7);
  const auto a = mod.modulate(bits);
  mod.reset();
  const auto b = mod.modulate(bits);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(std::abs(a[i] - b[i]), 0.0, 1e-12);
  }
}

class GmskBtSweep : public ::testing::TestWithParam<double> {};

TEST_P(GmskBtSweep, RoundTripAcrossBtProducts) {
  GmskParams p;
  p.bt = GetParam();
  GmskModulator mod(p);
  const auto bits = random_bits(300, 8);
  const auto wave = mod.modulate(bits);
  GmskDemodulator demod(p);
  const auto out = demod.demodulate(wave, 0, bits.size());
  std::size_t errors = 0;
  for (std::size_t i = 0; i < out.size(); ++i) errors += out[i] != bits[i];
  EXPECT_LT(static_cast<double>(errors) / out.size(), 0.02)
      << "BT " << p.bt;
}

INSTANTIATE_TEST_SUITE_P(BtProducts, GmskBtSweep,
                         ::testing::Values(0.3, 0.5, 0.7, 1.0));

}  // namespace
}  // namespace hs::phy
