#include <gtest/gtest.h>

#include <cmath>

#include "dsp/rng.hpp"
#include "dsp/spectrum.hpp"
#include "dsp/units.hpp"
#include "phy/fsk.hpp"

namespace hs::phy {
namespace {

BitVec random_bits(std::size_t n, std::uint64_t seed) {
  dsp::Rng rng(seed);
  BitVec bits(n);
  for (auto& b : bits) b = rng.next_u64() & 1;
  return bits;
}

TEST(FskParams, DefaultsMatchTheVirtuosoProfile) {
  FskParams p;
  EXPECT_DOUBLE_EQ(p.fs, 300e3);
  EXPECT_EQ(p.sps, 12u);
  EXPECT_DOUBLE_EQ(p.bit_rate(), 25e3);
  EXPECT_TRUE(p.tones_orthogonal());
}

TEST(FskParams, NonOrthogonalDetected) {
  FskParams p;
  p.f1 = 37.7e3;  // separation not a multiple of the symbol rate
  EXPECT_FALSE(p.tones_orthogonal());
}

TEST(FskModulator, OutputLengthAndUnitEnvelope) {
  FskParams p;
  FskModulator mod(p);
  const auto bits = random_bits(64, 1);
  const auto wave = mod.modulate(bits);
  ASSERT_EQ(wave.size(), 64 * p.sps);
  for (const auto& x : wave) EXPECT_NEAR(std::abs(x), 1.0, 1e-12);
}

TEST(FskModulator, PhaseContinuityAcrossCalls) {
  FskParams p;
  FskModulator whole(p);
  const auto bits = random_bits(32, 2);
  const auto ref = whole.modulate(bits);

  FskModulator split(p);
  dsp::Samples pieced;
  for (std::size_t i = 0; i < bits.size(); i += 5) {
    const std::size_t n = std::min<std::size_t>(5, bits.size() - i);
    const auto part = split.modulate(BitView(bits.data() + i, n));
    pieced.insert(pieced.end(), part.begin(), part.end());
  }
  ASSERT_EQ(pieced.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(std::abs(pieced[i] - ref[i]), 0.0, 1e-9);
  }
}

TEST(FskModulator, NoPhaseJumpsBetweenSymbols) {
  FskParams p;
  const BitVec bits = {0, 1, 0, 1, 1, 0};
  const auto wave = fsk_modulate(p, bits);
  // Phase steps per sample are bounded by 2*pi*max|f|/fs; a discontinuity
  // would show as a larger jump.
  const double max_step = dsp::kTwoPi * 50e3 / p.fs + 1e-9;
  for (std::size_t i = 1; i < wave.size(); ++i) {
    const double step = std::abs(std::arg(wave[i] * std::conj(wave[i - 1])));
    EXPECT_LE(step, max_step);
  }
}

TEST(FskSpectrum, EnergyAtTones) {
  FskParams p;
  const auto wave = fsk_modulate(p, random_bits(2048, 3));
  const double at_tones = dsp::band_power(wave, p.fs, 35e3, 65e3) +
                          dsp::band_power(wave, p.fs, -65e3, -35e3);
  const double total = dsp::band_power(wave, p.fs, -150e3, 150e3);
  EXPECT_GT(at_tones / total, 0.8);
}

TEST(NoncoherentDemod, CleanRoundTrip) {
  FskParams p;
  const auto bits = random_bits(500, 4);
  const auto wave = fsk_modulate(p, bits);
  NoncoherentFskDemod demod(p);
  EXPECT_EQ(demod.demodulate(wave, 0, bits.size()), bits);
}

TEST(NoncoherentDemod, InvariantToChannelPhaseAndGain) {
  FskParams p;
  const auto bits = random_bits(200, 5);
  auto wave = fsk_modulate(p, bits);
  const dsp::cplx h = 0.003 * dsp::cplx(std::cos(2.2), std::sin(2.2));
  for (auto& x : wave) x *= h;
  NoncoherentFskDemod demod(p);
  EXPECT_EQ(demod.demodulate(wave, 0, bits.size()), bits);
}

TEST(NoncoherentDemod, StopsAtBufferEnd) {
  FskParams p;
  const auto bits = random_bits(10, 6);
  const auto wave = fsk_modulate(p, bits);
  NoncoherentFskDemod demod(p);
  const auto out = demod.demodulate(wave, 0, 100);  // ask for more
  EXPECT_EQ(out.size(), 10u);
}

TEST(NoncoherentDemod, MetricSignMatchesBit) {
  FskParams p;
  NoncoherentFskDemod demod(p);
  const auto one = fsk_modulate(p, BitVec{1});
  const auto zero = fsk_modulate(p, BitVec{0});
  double m1 = 0, m0 = 0;
  EXPECT_EQ(demod.demod_symbol(one, 0, &m1), 1);
  EXPECT_EQ(demod.demod_symbol(zero, 0, &m0), 0);
  EXPECT_GT(m1, 0.0);
  EXPECT_LT(m0, 0.0);
}

TEST(CoherentDemod, CleanRoundTripWithChannel) {
  FskParams p;
  const auto bits = random_bits(200, 7);
  auto wave = fsk_modulate(p, bits);
  const dsp::cplx h = 0.01 * dsp::cplx(std::cos(-1.0), std::sin(-1.0));
  for (auto& x : wave) x *= h;
  CoherentFskDemod demod(p);
  EXPECT_EQ(demod.demodulate(wave, 0, bits.size(), h), bits);
}

struct SnrBerCase {
  double snr_db;
  double max_ber;
};

class NoncoherentBerSweep : public ::testing::TestWithParam<SnrBerCase> {};

TEST_P(NoncoherentBerSweep, BerBelowTheoreticalEnvelope) {
  // Noncoherent orthogonal FSK: Pb = 0.5 exp(-Es/2N0); the 12-sample
  // matched filter gives Es/N0 = 12 * SNR per-sample. We only check an
  // upper envelope with margin.
  const auto [snr_db, max_ber] = GetParam();
  FskParams p;
  const auto bits = random_bits(4000, 8);
  auto wave = fsk_modulate(p, bits);
  dsp::Rng noise(9);
  const double n0 = dsp::db_to_power(-snr_db);
  for (auto& x : wave) x += noise.cgaussian(n0);
  NoncoherentFskDemod demod(p);
  const auto out = demod.demodulate(wave, 0, bits.size());
  EXPECT_LE(bit_error_rate(bits, out), max_ber) << "SNR " << snr_db;
}

INSTANTIATE_TEST_SUITE_P(
    SnrPoints, NoncoherentBerSweep,
    ::testing::Values(SnrBerCase{-10.0, 0.45}, SnrBerCase{-5.0, 0.35},
                      SnrBerCase{0.0, 0.05}, SnrBerCase{3.0, 0.005},
                      SnrBerCase{10.0, 0.0005}));

class SpsSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SpsSweep, RoundTripAcrossSamplesPerSymbol) {
  FskParams p;
  p.sps = GetParam();
  // Keep tones orthogonal (separation = 1 symbol rate) and inside Nyquist
  // even at the smallest sps.
  const double sym_rate = p.fs / static_cast<double>(p.sps);
  p.f0 = -0.5 * sym_rate;
  p.f1 = 0.5 * sym_rate;
  ASSERT_TRUE(p.tones_orthogonal());
  const auto bits = random_bits(300, GetParam());
  const auto wave = fsk_modulate(p, bits);
  NoncoherentFskDemod demod(p);
  EXPECT_EQ(demod.demodulate(wave, 0, bits.size()), bits);
}

INSTANTIATE_TEST_SUITE_P(Sps, SpsSweep, ::testing::Values(4, 8, 12, 16, 24));

}  // namespace
}  // namespace hs::phy
