// Service-layer tests: the campaign_serverd wire protocol (strict
// request parsing — truncated frames, oversized requests, type
// confusion — plus response framing), the session-scoped scheduler's
// determinism contract (any interleaving of concurrent requests yields
// final reports byte-identical to serial runs, and the streamed chunk
// records reassemble into a stream the v3 parser accepts and folds to
// the same bytes), admission control (bounded queue, 429-style reject
// with retry-after, recovery after drain-down), cancellation semantics,
// graceful drain, and the socket layer end to end (unknown preset,
// mid-stream client disconnect, concurrent clients over real TCP).
//
// Also part of the TSan suite (see .github/workflows/ci.yml): the
// scheduler's worker pool, per-request callback serialization and the
// shared snapshot cache are exactly the shared-state hot spots
// ThreadSanitizer is pointed at.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "campaign/chunk_stream.hpp"
#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "campaign/scenario.hpp"
#include "campaign/shard.hpp"
#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"
#include "serve/server.hpp"

namespace hs {
namespace {

using campaign::CampaignOptions;
using campaign::CampaignResult;
using campaign::Scenario;
using serve::RunRequest;

// ---- protocol: strict request parsing --------------------------------------

TEST(ServeProtocol, ParsesFullRunRequest) {
  const auto req = serve::parse_request(
      R"({"cmd":"run","preset":"fig9-eaves-ber","seed":42,"trials":8,)"
      R"("chunk_size":2,"priority":5,)"
      R"("overrides":{"reuse":false,"snapshots":false}})");
  EXPECT_EQ(req.kind, serve::RequestKind::kRun);
  EXPECT_EQ(req.run.preset, "fig9-eaves-ber");
  EXPECT_EQ(req.run.seed, 42u);
  EXPECT_EQ(req.run.trials, 8u);
  EXPECT_EQ(req.run.chunk_size, 2u);
  EXPECT_EQ(req.run.priority, 5u);
  EXPECT_FALSE(req.run.reuse);
  EXPECT_FALSE(req.run.snapshots);
}

TEST(ServeProtocol, DefaultsAndKeyOrderTolerance) {
  const auto req = serve::parse_request(
      "  { \"seed\" : 3 , \"cmd\" : \"run\" , \"preset\" : \"x\" }  ");
  EXPECT_EQ(req.run.preset, "x");
  EXPECT_EQ(req.run.seed, 3u);
  EXPECT_EQ(req.run.trials, 0u);      // preset default
  EXPECT_EQ(req.run.chunk_size, 1u);
  EXPECT_EQ(req.run.priority, 1u);
  EXPECT_TRUE(req.run.reuse);
  EXPECT_TRUE(req.run.snapshots);

  const auto cancel = serve::parse_request(R"({"id":7,"cmd":"cancel"})");
  EXPECT_EQ(cancel.kind, serve::RequestKind::kCancel);
  EXPECT_EQ(cancel.cancel_id, 7u);
  EXPECT_EQ(serve::parse_request(R"({"cmd":"stats"})").kind,
            serve::RequestKind::kStats);
  EXPECT_EQ(serve::parse_request(R"({"cmd":"ping"})").kind,
            serve::RequestKind::kPing);
}

TEST(ServeProtocol, EveryTruncationOfAValidRequestIsRejected) {
  // Fuzz by construction: a line-delimited protocol's only framing
  // failure mode is a cut-off line, so every proper prefix of a valid
  // request must throw — none may parse as a smaller valid request.
  const std::string valid =
      R"({"cmd":"run","preset":"fig9-eaves-ber","seed":42,"trials":8,)"
      R"("chunk_size":2,"priority":5,"overrides":{"reuse":true}})";
  EXPECT_NO_THROW(serve::parse_request(valid));
  for (std::size_t len = 0; len < valid.size(); ++len) {
    EXPECT_THROW(serve::parse_request(valid.substr(0, len)),
                 serve::ProtocolError)
        << "prefix of length " << len << " parsed";
  }
}

TEST(ServeProtocol, MalformedRequestsAreRejectedNotGuessed) {
  const char* bad[] = {
      "",
      "not json",
      "{}",                                         // no cmd
      R"({"cmd":"run"})",                           // no preset
      R"({"cmd":"run","preset":""})",               // empty preset
      R"({"cmd":"run","preset":"x","seed":-1})",    // negative integer
      R"({"cmd":"run","preset":"x","seed":1.5})",   // float
      R"({"cmd":"run","preset":"x","seed":99999999999999999999})",
      R"({"cmd":"run","preset":"x","chunk_size":0})",
      R"({"cmd":"run","preset":"x","trials":100000001})",
      R"({"cmd":"run","preset":"x","priority":0})",
      R"({"cmd":"run","preset":"x","priority":9})",
      R"({"cmd":"run","preset":"x","seed":1,"seed":2})",     // duplicate
      R"({"cmd":"run","preset":"x","bogus":1})",             // unknown key
      R"({"cmd":"run","preset":"x","id":3})",                // cancel-only key
      R"({"cmd":"run","preset":"x","overrides":{"seed":1}})",
      R"({"cmd":"run","preset":"x","overrides":{"reuse":"yes"}})",
      R"({"cmd":"run","preset":"x"} trailing)",
      R"({"cmd":"cancel"})",                        // no id
      R"({"cmd":"cancel","id":1,"preset":"x"})",    // run-only key
      R"({"cmd":"stats","id":1})",
      R"({"cmd":"ping","seed":1})",
      R"({"cmd":"selfdestruct"})",
      R"(["cmd","run"])",                           // not an object
  };
  for (const char* line : bad) {
    EXPECT_THROW(serve::parse_request(line), serve::ProtocolError)
        << "accepted: " << line;
  }
  // The size cap is enforced before any parsing work.
  std::string oversized = R"({"cmd":"run","preset":")";
  oversized += std::string(serve::kMaxRequestBytes, 'a');
  oversized += "\"}";
  EXPECT_THROW(serve::parse_request(oversized), serve::ProtocolError);
}

TEST(ServeProtocol, ResponseBuildersEscapePayloads) {
  const std::string err = serve::error_line("bad \"quote\"\nline");
  EXPECT_EQ(err.find('\n'), std::string::npos);
  EXPECT_NE(err.find("\\\"quote\\\""), std::string::npos);
  const std::string framed =
      serve::framed_line("chunk", 3, "{\"chunk\":0,\"crc\":\"abcd\"}");
  EXPECT_NE(framed.find("\"type\":\"chunk\""), std::string::npos);
  EXPECT_NE(framed.find("\"id\":3"), std::string::npos);
  EXPECT_NE(framed.find("\\\"crc\\\""), std::string::npos);
}

// ---- scheduler: determinism + admission + cancellation ---------------------

/// A small, fast scenario: 2 sweep points, so a request is a handful of
/// chunks while still crossing a point boundary (deployment reconfig).
Scenario small_scenario() {
  const Scenario* preset = campaign::find_scenario("fig8-tradeoff");
  EXPECT_NE(preset, nullptr);
  Scenario s = *preset;
  s.axis_values = {10, 20};
  s.units_per_trial = 1;
  s.default_trials = 2;
  return s;
}

/// Captures one request's full callback stream and lets a test wait for
/// its terminal event.
struct Outcome {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  bool cancelled = false;
  std::vector<std::string> records;
  std::string trailer;
  CampaignResult result;
  std::size_t chunks = 0;
  std::size_t cancel_chunks = 0;

  void wait() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [this] { return done || cancelled; });
  }
};

serve::Scheduler::Callbacks capture(const std::shared_ptr<Outcome>& out) {
  serve::Scheduler::Callbacks cb;
  cb.on_record = [out](std::uint64_t, const std::string& record) {
    std::lock_guard<std::mutex> lock(out->mutex);
    out->records.push_back(record);
  };
  cb.on_complete = [out](std::uint64_t, const std::string& trailer,
                         const CampaignResult& result, double, double,
                         std::size_t chunks) {
    {
      std::lock_guard<std::mutex> lock(out->mutex);
      out->trailer = trailer;
      out->result = result;
      out->chunks = chunks;
      out->done = true;
    }
    out->cv.notify_all();
  };
  cb.on_cancelled = [out](std::uint64_t, std::size_t completed) {
    {
      std::lock_guard<std::mutex> lock(out->mutex);
      out->cancel_chunks = completed;
      out->cancelled = true;
    }
    out->cv.notify_all();
  };
  return cb;
}

/// The serial ground truth for a request: the canonical reports a
/// 1-thread campaign_runner run of the same request would write.
std::pair<std::string, std::string> serial_reports(const Scenario& s,
                                                   const RunRequest& r) {
  CampaignOptions o;
  o.seed = r.seed;
  o.trials_per_point = r.trials;
  o.chunk_size = r.chunk_size;
  o.threads = 1;
  CampaignResult result = campaign::run_campaign(s, o);
  campaign::canonicalize(result);
  return {campaign::to_csv(result), campaign::to_json(result)};
}

TEST(ServeScheduler, ConcurrentRequestsByteMatchSerialRuns) {
  const Scenario s = small_scenario();
  obs::ServiceStats stats;
  serve::SchedulerOptions options;
  options.workers = 4;
  options.max_active = 8;
  serve::Scheduler scheduler(options, &stats);

  // 6 concurrent requests with distinct seeds and mixed priorities and
  // chunk sizes: their chunks interleave over 4 workers in whatever
  // order the stride scheduler picks.
  constexpr std::size_t kRequests = 6;
  std::vector<RunRequest> requests(kRequests);
  std::vector<std::shared_ptr<Outcome>> outcomes;
  std::vector<std::uint64_t> ids;
  for (std::size_t i = 0; i < kRequests; ++i) {
    requests[i].preset = s.name;
    requests[i].seed = 100 + i;
    requests[i].trials = 2;
    requests[i].chunk_size = 1 + i % 2;
    requests[i].priority = 1 + static_cast<unsigned>(i % 8);
    auto out = std::make_shared<Outcome>();
    const serve::Admission adm =
        scheduler.submit(s, requests[i], capture(out));
    ASSERT_TRUE(adm.admitted);
    EXPECT_FALSE(adm.header_line.empty());
    outcomes.push_back(out);
    ids.push_back(adm.id);
  }
  for (std::size_t i = 0; i < kRequests; ++i) {
    scheduler.start(ids[i]);
  }
  for (std::size_t i = 0; i < kRequests; ++i) {
    outcomes[i]->wait();
    ASSERT_TRUE(outcomes[i]->done);
  }

  for (std::size_t i = 0; i < kRequests; ++i) {
    SCOPED_TRACE("request " + std::to_string(i));
    const auto [want_csv, want_json] = serial_reports(s, requests[i]);
    CampaignResult got = outcomes[i]->result;  // already canonical
    EXPECT_EQ(campaign::to_csv(got), want_csv);
    EXPECT_EQ(campaign::to_json(got), want_json);

    // The streamed frames must ALSO reassemble into a stream the v3
    // parser accepts (CRC seals intact, every chunk exactly once) and
    // fold to the same bytes — the client-side reconstruction path.
    std::map<std::size_t, std::string> by_chunk;
    for (const std::string& record : outcomes[i]->records) {
      const auto pos = record.find("{\"chunk\":");
      ASSERT_EQ(pos, 0u) << record;
      by_chunk[std::strtoull(record.c_str() + 9, nullptr, 10)] = record;
    }
    EXPECT_EQ(by_chunk.size(), outcomes[i]->records.size()) << "dup chunk";
    EXPECT_EQ(by_chunk.size(), outcomes[i]->chunks);
    std::string text;
    CampaignOptions o;
    o.seed = requests[i].seed;
    o.trials_per_point = requests[i].trials;
    o.chunk_size = requests[i].chunk_size;
    text += campaign::serialize_stream_header(
        s, o, campaign::plan_shard(s, o, 1, 0));
    text += '\n';
    for (const auto& [id, record] : by_chunk) {
      text += record;
      text += '\n';
    }
    text += outcomes[i]->trailer;
    text += '\n';
    const campaign::ChunkStream stream =
        campaign::parse_chunk_stream(text, "served");
    CampaignResult merged = campaign::merge_chunk_streams(s, {stream});
    campaign::canonicalize(merged);
    EXPECT_EQ(campaign::to_csv(merged), want_csv);
    EXPECT_EQ(campaign::to_json(merged), want_json);
  }
  const auto snap = stats.snapshot();
  EXPECT_EQ(snap.requests_admitted, kRequests);
  EXPECT_EQ(snap.requests_completed, kRequests);
  EXPECT_EQ(snap.requests_rejected, 0u);
}

TEST(ServeScheduler, SaturationRejectsWithRetryAfterAndRecovers) {
  const Scenario s = small_scenario();
  obs::ServiceStats stats;
  serve::SchedulerOptions options;
  options.workers = 1;
  options.max_active = 1;
  options.max_queue = 1;
  serve::Scheduler scheduler(options, &stats);

  RunRequest r;
  r.preset = s.name;
  r.seed = 1;
  r.trials = 2;

  // Fill the active slot and the queue without releasing either —
  // admission state is fully deterministic because nothing runs yet.
  auto active = std::make_shared<Outcome>();
  auto queued = std::make_shared<Outcome>();
  const auto adm_active = scheduler.submit(s, r, capture(active));
  ASSERT_TRUE(adm_active.admitted);
  r.seed = 2;
  const auto adm_queued = scheduler.submit(s, r, capture(queued));
  ASSERT_TRUE(adm_queued.admitted);
  EXPECT_EQ(adm_queued.queue_depth, 1u);

  r.seed = 3;
  auto rejected = std::make_shared<Outcome>();
  const auto adm_rejected = scheduler.submit(s, r, capture(rejected));
  EXPECT_FALSE(adm_rejected.admitted);
  EXPECT_GE(adm_rejected.retry_after_ms, 10u);  // clamp floor
  EXPECT_LE(adm_rejected.retry_after_ms, 60000u);
  EXPECT_FALSE(adm_rejected.reason.empty());

  // Drain the backlog; afterwards the same request is admitted — the
  // rejection was load, not a latch.
  scheduler.start(adm_active.id);
  scheduler.start(adm_queued.id);
  active->wait();
  queued->wait();
  const auto adm_retry = scheduler.submit(s, r, capture(rejected));
  EXPECT_TRUE(adm_retry.admitted);
  scheduler.start(adm_retry.id);
  rejected->wait();

  const auto snap = stats.snapshot();
  EXPECT_EQ(snap.requests_admitted, 3u);
  EXPECT_EQ(snap.requests_rejected, 1u);
  EXPECT_EQ(snap.requests_completed, 3u);
}

TEST(ServeScheduler, CancelIsTerminalAndDropsUnstartedWork) {
  const Scenario s = small_scenario();
  obs::ServiceStats stats;
  serve::SchedulerOptions options;
  options.workers = 1;
  options.max_active = 1;
  options.max_queue = 2;
  serve::Scheduler scheduler(options, &stats);

  RunRequest r;
  r.preset = s.name;
  r.seed = 11;
  r.trials = 2;
  auto running = std::make_shared<Outcome>();
  const auto adm_running = scheduler.submit(s, r, capture(running));
  ASSERT_TRUE(adm_running.admitted);

  // A queued request cancelled before it ever ran: terminal cancelled
  // callback with zero completed chunks, synchronously.
  r.seed = 12;
  auto never_ran = std::make_shared<Outcome>();
  const auto adm_never = scheduler.submit(s, r, capture(never_ran));
  ASSERT_TRUE(adm_never.admitted);
  EXPECT_TRUE(scheduler.cancel(adm_never.id));
  never_ran->wait();
  EXPECT_TRUE(never_ran->cancelled);
  EXPECT_FALSE(never_ran->done);
  EXPECT_EQ(never_ran->cancel_chunks, 0u);
  // Terminal means terminal: a second cancel finds nothing.
  EXPECT_FALSE(scheduler.cancel(adm_never.id));
  EXPECT_FALSE(scheduler.cancel(9999));

  scheduler.start(adm_running.id);
  running->wait();
  EXPECT_TRUE(running->done);
  EXPECT_EQ(stats.snapshot().requests_cancelled, 1u);
}

TEST(ServeScheduler, DrainCompletesEverythingAdmitted) {
  const Scenario s = small_scenario();
  obs::ServiceStats stats;
  serve::SchedulerOptions options;
  options.workers = 2;
  options.max_active = 2;
  options.max_queue = 4;
  serve::Scheduler scheduler(options, &stats);

  RunRequest r;
  r.preset = s.name;
  r.trials = 2;
  std::vector<std::shared_ptr<Outcome>> outcomes;
  for (std::uint64_t seed = 21; seed < 25; ++seed) {
    r.seed = seed;
    auto out = std::make_shared<Outcome>();
    const auto adm = scheduler.submit(s, r, capture(out));
    ASSERT_TRUE(adm.admitted);
    scheduler.start(adm.id);
    outcomes.push_back(out);
  }
  scheduler.drain();
  for (const auto& out : outcomes) {
    std::lock_guard<std::mutex> lock(out->mutex);
    EXPECT_TRUE(out->done);  // drain returned -> every callback already ran
  }
  // Draining stops admission with a non-retryable rejection.
  auto late = std::make_shared<Outcome>();
  const auto adm_late = scheduler.submit(s, r, capture(late));
  EXPECT_FALSE(adm_late.admitted);
  EXPECT_EQ(stats.snapshot().requests_completed, 4u);
}

// ---- server: the socket layer end to end -----------------------------------

/// Minimal blocking line client against 127.0.0.1:<port>.
class LineClient {
 public:
  explicit LineClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
  }
  ~LineClient() { close(); }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  void send_line(const std::string& line) {
    const std::string framed = line + "\n";
    ASSERT_EQ(::send(fd_, framed.data(), framed.size(), 0),
              static_cast<ssize_t>(framed.size()));
  }

  /// Blocking read of the next '\n'-terminated line (empty on EOF).
  std::string read_line() {
    for (;;) {
      const auto nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        const std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

struct ServerFixture {
  ServerFixture() {
    serve::ServerOptions options;
    options.tcp_port = 0;
    options.scheduler.workers = 2;
    options.scheduler.max_active = 4;
    options.scheduler.max_queue = 4;
    server = std::make_unique<serve::Server>(options, &stats);
    server->start();
    thread = std::thread([this] { server->run(); });
  }
  ~ServerFixture() {
    server->shutdown();
    thread.join();
  }

  obs::ServiceStats stats;
  std::unique_ptr<serve::Server> server;
  std::thread thread;
};

TEST(ServeServer, ErrorsUnknownPresetAndSurvivesMidStreamDisconnect) {
  ServerFixture fx;
  const std::uint16_t port = fx.server->bound_port();

  {
    LineClient c(port);
    c.send_line(R"({"cmd":"run","preset":"no-such-preset"})");
    const std::string reply = c.read_line();
    EXPECT_NE(reply.find("\"type\":\"error\""), std::string::npos) << reply;
    EXPECT_NE(reply.find("unknown preset"), std::string::npos) << reply;
    // Malformed JSON answers with error but keeps the connection.
    c.send_line("{\"cmd\":");
    EXPECT_NE(c.read_line().find("\"type\":\"error\""), std::string::npos);
    c.send_line(R"({"cmd":"ping"})");
    EXPECT_EQ(c.read_line(), R"({"type":"pong"})");
  }

  // A client that walks away mid-stream: read the admission and a couple
  // of frames, then slam the socket. The server must cancel the orphaned
  // request and keep serving others.
  {
    LineClient rude(port);
    rude.send_line(
        R"({"cmd":"run","preset":"fig9-eaves-ber","seed":5,"trials":2})");
    EXPECT_NE(rude.read_line().find("\"type\":\"admitted\""),
              std::string::npos);
    EXPECT_NE(rude.read_line().find("\"type\":\"header\""),
              std::string::npos);
    rude.close();
  }
  {
    LineClient polite(port);
    polite.send_line(
        R"({"cmd":"run","preset":"fig9-eaves-ber","seed":6,"trials":1})");
    std::string line = polite.read_line();
    EXPECT_NE(line.find("\"type\":\"admitted\""), std::string::npos) << line;
    while (!line.empty() &&
           line.find("\"type\":\"done\"") == std::string::npos) {
      line = polite.read_line();
    }
    EXPECT_NE(line.find("\"type\":\"done\""), std::string::npos)
        << "stream ended before done";
  }
}

TEST(ServeServer, ConcurrentWireClientsGetSerialIdenticalReports) {
  ServerFixture fx;
  const std::uint16_t port = fx.server->bound_port();
  const Scenario* preset = campaign::find_scenario("fig9-eaves-ber");
  ASSERT_NE(preset, nullptr);

  constexpr std::size_t kClients = 4;
  std::vector<std::string> reports(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t i = 0; i < kClients; ++i) {
    clients.emplace_back([port, i, &reports] {
      LineClient c(port);
      c.send_line(R"({"cmd":"run","preset":"fig9-eaves-ber","seed":)" +
                  std::to_string(50 + i) + R"(,"trials":1})");
      for (;;) {
        const std::string line = c.read_line();
        if (line.empty()) break;
        if (line.find("\"type\":\"report\"") != std::string::npos) {
          reports[i] = line;
        }
        if (line.find("\"type\":\"done\"") != std::string::npos) break;
        if (line.find("\"type\":\"rejected\"") != std::string::npos) break;
        if (line.find("\"type\":\"error\"") != std::string::npos) break;
      }
    });
  }
  for (auto& t : clients) t.join();

  for (std::size_t i = 0; i < kClients; ++i) {
    SCOPED_TRACE("client " + std::to_string(i));
    ASSERT_FALSE(reports[i].empty()) << "no report frame";
    RunRequest r;
    r.seed = 50 + i;
    r.trials = 1;
    const auto [want_csv, want_json] = serial_reports(*preset, r);
    // The report frame carries both documents JSON-escaped; the exact
    // escaped bytes must appear — byte identity survives the framing.
    EXPECT_NE(reports[i].find(campaign::json_escape(want_csv)),
              std::string::npos);
    EXPECT_NE(reports[i].find(campaign::json_escape(want_json)),
              std::string::npos);
  }
  EXPECT_EQ(fx.stats.snapshot().requests_completed, kClients);
}

}  // namespace
}  // namespace hs
