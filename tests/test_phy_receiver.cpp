#include <gtest/gtest.h>

#include "dsp/rng.hpp"
#include "dsp/units.hpp"
#include "phy/receiver.hpp"
#include "snapshot/state_io.hpp"

namespace hs::phy {
namespace {

Frame test_frame(std::uint8_t seq = 1, std::size_t payload = 8) {
  Frame f;
  f.device_id = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  f.type = 0x01;
  f.seq = seq;
  f.payload.assign(payload, 0x5A);
  return f;
}

/// Builds noise + frame(s) at given offsets and amplitudes.
dsp::Samples make_air(const FskParams& fsk, std::size_t total,
                      std::initializer_list<std::pair<std::size_t, Frame>>
                          frames,
                      double amplitude, double noise_power,
                      std::uint64_t seed = 1) {
  dsp::Rng rng(seed);
  dsp::Samples air(total);
  rng.fill_awgn(air, noise_power);
  for (const auto& [offset, frame] : frames) {
    const auto wave = fsk_modulate(fsk, encode_frame(frame));
    for (std::size_t i = 0; i < wave.size() && offset + i < total; ++i) {
      air[offset + i] += amplitude * wave[i];
    }
  }
  return air;
}

TEST(Receiver, DecodesFrameInNoise) {
  FskParams fsk;
  const auto air = make_air(fsk, 10000, {{2000, test_frame()}},
                            dsp::db_to_amplitude(-40), dsp::dbm_to_mw(-112));
  FskReceiver rx(fsk);
  rx.push(air);
  auto frame = rx.pop();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->decode.status, DecodeStatus::kOk);
  EXPECT_EQ(frame->start_sample, 2000u);
  EXPECT_EQ(frame->decode.frame.seq, 1);
  EXPECT_FALSE(rx.pop().has_value());
}

TEST(Receiver, RssiMatchesSignalPower) {
  FskParams fsk;
  const double amp = dsp::db_to_amplitude(-30);  // power -30 dB
  const auto air = make_air(fsk, 9000, {{1500, test_frame()}}, amp, 1e-12);
  FskReceiver rx(fsk);
  rx.push(air);
  auto frame = rx.pop();
  ASSERT_TRUE(frame.has_value());
  EXPECT_NEAR(dsp::power_to_db(frame->rssi), -30.0, 1.0);
}

class ReceiverOffsetSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ReceiverOffsetSweep, LocksAtArbitrarySampleOffsets) {
  FskParams fsk;
  const std::size_t offset = 3000 + GetParam();
  const auto air = make_air(fsk, 12000, {{offset, test_frame()}},
                            dsp::db_to_amplitude(-35), dsp::dbm_to_mw(-110),
                            GetParam() + 7);
  FskReceiver rx(fsk);
  rx.push(air);
  auto frame = rx.pop();
  ASSERT_TRUE(frame.has_value()) << "offset " << offset;
  EXPECT_EQ(frame->decode.status, DecodeStatus::kOk);
  EXPECT_EQ(frame->start_sample, offset);
}

INSTANTIATE_TEST_SUITE_P(SubSymbolOffsets, ReceiverOffsetSweep,
                         ::testing::Values(0, 1, 3, 5, 7, 11, 12, 13, 17, 23));

TEST(Receiver, BlockwisePushMatchesOneShot) {
  FskParams fsk;
  const auto air = make_air(fsk, 10000, {{2500, test_frame()}},
                            dsp::db_to_amplitude(-40), dsp::dbm_to_mw(-112));
  FskReceiver one(fsk);
  one.push(air);
  const auto a = one.pop();
  FskReceiver two(fsk);
  for (std::size_t i = 0; i < air.size(); i += 48) {
    const std::size_t n = std::min<std::size_t>(48, air.size() - i);
    two.push(dsp::SampleView(air.data() + i, n));
  }
  const auto b = two.pop();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->start_sample, b->start_sample);
  EXPECT_EQ(a->raw_bits, b->raw_bits);
}

TEST(Receiver, BackToBackFramesBothDecoded) {
  FskParams fsk;
  const std::size_t len = encode_frame(test_frame()).size() * fsk.sps;
  const auto air = make_air(
      fsk, 30000,
      {{2000, test_frame(1)}, {2000 + len + 600, test_frame(2)}},
      dsp::db_to_amplitude(-40), dsp::dbm_to_mw(-112));
  FskReceiver rx(fsk);
  rx.push(air);
  auto f1 = rx.pop();
  auto f2 = rx.pop();
  ASSERT_TRUE(f1.has_value());
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(f1->decode.frame.seq, 1);
  EXPECT_EQ(f2->decode.frame.seq, 2);
}

// output_ is a deque (pop() used to be vector::erase(begin()), O(frames in
// flight)): a burst of frames must still drain strictly FIFO, and a
// snapshot taken with frames queued must document and restore them in
// order — the save format (count + per-frame records) is unchanged.
TEST(Receiver, BurstOfFramesDrainsFifoAndSnapshotsWithQueueIntact) {
  FskParams fsk;
  const std::size_t frame_gap = 6200;
  const std::size_t count = 5;
  std::initializer_list<std::pair<std::size_t, Frame>> placed = {
      {1000, test_frame(1)},          {1000 + frame_gap, test_frame(2)},
      {1000 + 2 * frame_gap, test_frame(3)},
      {1000 + 3 * frame_gap, test_frame(4)},
      {1000 + 4 * frame_gap, test_frame(5)}};
  const auto air = make_air(fsk, 1000 + 5 * frame_gap + 4000, placed,
                            dsp::db_to_amplitude(-40), dsp::dbm_to_mw(-112));
  FskReceiver rx(fsk);
  rx.push(air);

  // Snapshot while all frames are still queued, then drain both receivers
  // and require identical FIFO order.
  snapshot::StateWriter w;
  rx.save_state(w);
  const std::string text = w.finish();
  const snapshot::StateDoc doc = snapshot::StateDoc::parse(text, "rx");
  FskReceiver restored(fsk);
  snapshot::StateReader r(doc);
  restored.load_state(r);
  // Round-trip must re-document byte-identically (deque changed the
  // container, not the format).
  snapshot::StateWriter w2;
  restored.save_state(w2);
  EXPECT_EQ(w2.finish(), text);

  for (std::uint8_t want = 1; want <= count; ++want) {
    auto a = rx.pop();
    auto b = restored.pop();
    ASSERT_TRUE(a.has_value()) << "frame " << int(want);
    ASSERT_TRUE(b.has_value()) << "frame " << int(want);
    EXPECT_EQ(a->decode.frame.seq, want);
    EXPECT_EQ(b->decode.frame.seq, want);
    EXPECT_EQ(a->start_sample, b->start_sample);
  }
  EXPECT_FALSE(rx.pop().has_value());
  EXPECT_FALSE(restored.pop().has_value());
}

TEST(Receiver, SignalBelowMinGateIgnored) {
  FskParams fsk;
  ReceiverOptions opt;
  opt.min_gate_power = dsp::dbm_to_mw(-90);  // IMD-style sensitivity
  const auto air = make_air(fsk, 12000, {{2000, test_frame()}},
                            dsp::db_to_amplitude(-100),  // -100 dBm power
                            dsp::dbm_to_mw(-112));
  FskReceiver rx(fsk, opt);
  rx.push(air);
  EXPECT_FALSE(rx.pop().has_value());
}

TEST(Receiver, SignalAboveMinGateAccepted) {
  FskParams fsk;
  ReceiverOptions opt;
  opt.min_gate_power = dsp::dbm_to_mw(-90);
  const auto air = make_air(fsk, 12000, {{2000, test_frame()}},
                            dsp::db_to_amplitude(-85),  // -85 dBm power
                            dsp::dbm_to_mw(-112));
  FskReceiver rx(fsk, opt);
  rx.push(air);
  EXPECT_TRUE(rx.pop().has_value());
}

TEST(Receiver, DetectsFrameOverSustainedInterferenceFloor) {
  // Regression for the shield's jamming-residual scenario: a steady
  // interference floor precedes the frame; the adaptive gate must re-arm
  // and the alias-escape must find the true preamble peak.
  FskParams fsk;
  dsp::Rng rng(21);
  dsp::Samples air(30000);
  rng.fill_awgn(air, dsp::dbm_to_mw(-78));  // jamming-residual-like floor
  const auto wave = fsk_modulate(fsk, encode_frame(test_frame()));
  const double amp = dsp::db_to_amplitude(-36.0 / 2.0 * 2.0 / 2.0);
  (void)amp;
  const double amplitude = dsp::db_to_amplitude(-18.0);  // -36 dBm power
  const std::size_t offset = 17011;  // deliberately not symbol-aligned
  for (std::size_t i = 0; i < wave.size(); ++i) {
    air[offset + i] += amplitude * wave[i];
  }
  FskReceiver rx(fsk);
  for (std::size_t i = 0; i < air.size(); i += 48) {
    const std::size_t n = std::min<std::size_t>(48, air.size() - i);
    rx.push(dsp::SampleView(air.data() + i, n));
  }
  auto frame = rx.pop();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->decode.status, DecodeStatus::kOk);
  EXPECT_EQ(frame->start_sample, offset);
}

TEST(Receiver, CorruptedPayloadReportsBadCrc) {
  FskParams fsk;
  auto air = make_air(fsk, 12000, {{2000, test_frame(1, 16)}},
                      dsp::db_to_amplitude(-40), dsp::dbm_to_mw(-112));
  // Obliterate a chunk of payload samples with strong noise.
  dsp::Rng rng(5);
  const std::size_t hit = 2000 + 170 * fsk.sps;
  for (std::size_t i = hit; i < hit + 6 * fsk.sps; ++i) {
    air[i] += rng.cgaussian(dsp::dbm_to_mw(-30));  // 10 dB over the signal
  }
  FskReceiver rx(fsk);
  rx.push(air);
  auto frame = rx.pop();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->decode.status, DecodeStatus::kBadCrc);
}

TEST(Receiver, ResetDropsPartialState) {
  FskParams fsk;
  const auto air = make_air(fsk, 8000, {{2000, test_frame()}},
                            dsp::db_to_amplitude(-40), dsp::dbm_to_mw(-112));
  FskReceiver rx(fsk);
  // Push only through the middle of the frame, then reset.
  rx.push(dsp::SampleView(air.data(), 3500));
  EXPECT_TRUE(rx.locked());
  rx.reset();
  EXPECT_FALSE(rx.locked());
  EXPECT_TRUE(rx.partial_bits().empty());
  // The remaining half-frame alone must not decode.
  rx.push(dsp::SampleView(air.data() + 3500, air.size() - 3500));
  auto frame = rx.pop();
  EXPECT_TRUE(!frame.has_value() ||
              frame->decode.status != DecodeStatus::kOk);
}

TEST(Receiver, SamplePositionTracksPushes) {
  FskParams fsk;
  FskReceiver rx(fsk);
  dsp::Samples block(48, dsp::cplx{});
  for (int i = 0; i < 10; ++i) rx.push(block);
  EXPECT_EQ(rx.sample_position(), 480u);
}

TEST(Receiver, PureNoiseNeverLocksLong) {
  FskParams fsk;
  dsp::Rng rng(6);
  dsp::Samples air(60000);
  rng.fill_awgn(air, dsp::dbm_to_mw(-100));
  FskReceiver rx(fsk);
  rx.push(air);
  EXPECT_FALSE(rx.pop().has_value());
}

}  // namespace
}  // namespace hs::phy
