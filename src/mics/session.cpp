#include "mics/session.hpp"

namespace hs::mics {

const char* session_state_name(SessionState s) {
  switch (s) {
    case SessionState::kIdle:
      return "idle";
    case SessionState::kListening:
      return "listening";
    case SessionState::kEstablished:
      return "established";
    case SessionState::kInterfered:
      return "interfered";
  }
  return "unknown";
}

SessionMachine::SessionMachine(std::size_t interference_limit)
    : interference_limit_(interference_limit) {}

void SessionMachine::start_listening(std::size_t channel) {
  channel_ = channel % kChannelCount;
  state_ = SessionState::kListening;
  consecutive_failures_ = 0;
}

void SessionMachine::lbt_result(bool clear) {
  if (state_ != SessionState::kListening) return;
  state_ = clear ? SessionState::kEstablished : SessionState::kInterfered;
}

void SessionMachine::exchange_result(bool success) {
  if (state_ != SessionState::kEstablished) return;
  if (success) {
    consecutive_failures_ = 0;
    return;
  }
  if (++consecutive_failures_ >= interference_limit_) {
    state_ = SessionState::kInterfered;
  }
}

void SessionMachine::end_session() {
  state_ = SessionState::kIdle;
  channel_.reset();
  consecutive_failures_ = 0;
}

std::size_t SessionMachine::next_channel() const {
  return channel_ ? (*channel_ + 1) % kChannelCount : 0;
}

}  // namespace hs::mics
