#include "mics/lbt.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/units.hpp"

namespace hs::mics {

ClearChannelAssessment::ClearChannelAssessment(double fs, double listen_s,
                                               double threshold_dbm)
    : fs_(fs),
      required_quiet_samples_(
          static_cast<std::size_t>(std::lround(listen_s * fs))),
      threshold_power_(dsp::dbm_to_mw(threshold_dbm)),
      threshold_dbm_(threshold_dbm),
      rssi_(std::max<std::size_t>(1, static_cast<std::size_t>(fs * 1e-3))) {}

void ClearChannelAssessment::push_sample(dsp::cplx x) {
  const double p = rssi_.push(x);
  if (rssi_.warmed_up() && p > threshold_power_) {
    quiet_run_ = 0;
  } else {
    ++quiet_run_;
  }
}

void ClearChannelAssessment::push(dsp::SampleView samples) {
  for (dsp::cplx x : samples) push_sample(x);
}

void ClearChannelAssessment::push(dsp::SoaView samples) {
  for (std::size_t i = 0; i < samples.size(); ++i) {
    push_sample({samples.re[i], samples.im[i]});
  }
}

bool ClearChannelAssessment::channel_clear() const {
  return quiet_run_ >= required_quiet_samples_;
}

double ClearChannelAssessment::quiet_time_s() const {
  return static_cast<double>(
             std::min(quiet_run_, required_quiet_samples_)) /
         fs_;
}

void ClearChannelAssessment::reset() {
  rssi_.reset();
  quiet_run_ = 0;
}

}  // namespace hs::mics
