// Listen-before-talk / clear-channel assessment, per the FCC MICS rules:
// a device must monitor a candidate channel for at least 10 ms and use it
// only if unoccupied (paper section 2).
#pragma once

#include <cstddef>

#include "dsp/power.hpp"
#include "dsp/types.hpp"

namespace hs::mics {

class ClearChannelAssessment {
 public:
  /// `fs` sample rate; `listen_s` required quiet duration (default FCC
  /// 10 ms); `threshold_dbm` occupancy threshold.
  ClearChannelAssessment(double fs, double listen_s = 10.0e-3,
                         double threshold_dbm = -95.0);

  /// Feeds received samples. Returns current verdict after this block.
  void push(dsp::SampleView samples);

  /// Split-complex overload; bit-identical verdicts.
  void push(dsp::SoaView samples);

  /// True once the channel has been continuously quiet for the full
  /// listening period.
  bool channel_clear() const;

  /// Seconds of continuous quiet observed so far (saturates at listen_s).
  double quiet_time_s() const;

  /// Restart the assessment (e.g., when switching channels).
  void reset();

  double threshold_dbm() const { return threshold_dbm_; }

 private:
  void push_sample(dsp::cplx x);

  double fs_;
  std::size_t required_quiet_samples_;
  double threshold_power_;  // linear
  double threshold_dbm_;
  dsp::RssiMeter rssi_;
  std::size_t quiet_run_ = 0;
};

}  // namespace hs::mics
