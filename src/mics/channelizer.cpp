#include "mics/channelizer.hpp"

#include <stdexcept>

namespace hs::mics {

Channelizer::Channelizer(std::size_t filter_taps) {
  chains_.reserve(kChannelCount);
  for (std::size_t c = 0; c < kChannelCount; ++c) {
    chains_.push_back(ChannelChain{
        dsp::Mixer(-channel_baseband_offset_hz(c), kWidebandFs),
        dsp::Decimator(kDecimation, filter_taps),
    });
  }
}

void Channelizer::process(dsp::SampleView wideband,
                          std::array<dsp::Samples, kChannelCount>& out) {
  // Split-complex block path end to end: one deinterleave of the wideband
  // block, then the mixer oscillator and the anti-alias FIR run over
  // contiguous planes (bit-identical to their per-sample paths).
  wide_soa_.assign(wideband);
  for (std::size_t c = 0; c < kChannelCount; ++c) {
    shifted_.clear();
    chains_[c].mixer.process(wide_soa_.view(), shifted_);
    decimated_.clear();
    chains_[c].decimator.process(shifted_.view(), decimated_);
    out[c].reserve(out[c].size() + decimated_.size());
    for (std::size_t i = 0; i < decimated_.size(); ++i) {
      out[c].push_back(decimated_[i]);
    }
  }
}

void Channelizer::reset() {
  for (auto& chain : chains_) {
    chain.mixer.reset_phase();
    chain.decimator.reset();
  }
}

ChannelSynthesizer::ChannelSynthesizer(std::size_t filter_taps) {
  chains_.reserve(kChannelCount);
  for (std::size_t c = 0; c < kChannelCount; ++c) {
    chains_.push_back(ChannelChain{
        dsp::Interpolator(kDecimation, filter_taps),
        dsp::Mixer(channel_baseband_offset_hz(c), kWidebandFs),
    });
  }
}

void ChannelSynthesizer::process(std::size_t channel,
                                 dsp::SampleView baseband,
                                 dsp::MutSampleView wideband) {
  if (channel >= kChannelCount) {
    throw std::out_of_range("ChannelSynthesizer: bad channel");
  }
  if (wideband.size() != baseband.size() * kDecimation) {
    throw std::invalid_argument(
        "ChannelSynthesizer: wideband must be 10x baseband length");
  }
  base_soa_.assign(baseband);
  up_.clear();
  chains_[channel].interpolator.process(base_soa_.view(), up_);
  mixed_.clear();
  chains_[channel].mixer.process(up_.view(), mixed_);
  const double* re = mixed_.re();
  const double* im = mixed_.im();
  for (std::size_t i = 0; i < mixed_.size(); ++i) {
    wideband[i] += dsp::cplx{re[i], im[i]};
  }
}

void ChannelSynthesizer::reset() {
  for (auto& chain : chains_) {
    chain.interpolator.reset();
    chain.mixer.reset_phase();
  }
}

}  // namespace hs::mics
