#include "mics/channelizer.hpp"

#include <stdexcept>

namespace hs::mics {

Channelizer::Channelizer(std::size_t filter_taps) {
  chains_.reserve(kChannelCount);
  for (std::size_t c = 0; c < kChannelCount; ++c) {
    chains_.push_back(ChannelChain{
        dsp::Mixer(-channel_baseband_offset_hz(c), kWidebandFs),
        dsp::Decimator(kDecimation, filter_taps),
    });
  }
}

void Channelizer::process(dsp::SampleView wideband,
                          std::array<dsp::Samples, kChannelCount>& out) {
  dsp::Samples shifted;
  for (std::size_t c = 0; c < kChannelCount; ++c) {
    shifted.clear();
    chains_[c].mixer.process(wideband, shifted);
    chains_[c].decimator.process(shifted, out[c]);
  }
}

void Channelizer::reset() {
  for (auto& chain : chains_) {
    chain.mixer.reset_phase();
    chain.decimator.reset();
  }
}

ChannelSynthesizer::ChannelSynthesizer(std::size_t filter_taps) {
  chains_.reserve(kChannelCount);
  for (std::size_t c = 0; c < kChannelCount; ++c) {
    chains_.push_back(ChannelChain{
        dsp::Interpolator(kDecimation, filter_taps),
        dsp::Mixer(channel_baseband_offset_hz(c), kWidebandFs),
    });
  }
}

void ChannelSynthesizer::process(std::size_t channel,
                                 dsp::SampleView baseband,
                                 dsp::MutSampleView wideband) {
  if (channel >= kChannelCount) {
    throw std::out_of_range("ChannelSynthesizer: bad channel");
  }
  if (wideband.size() != baseband.size() * kDecimation) {
    throw std::invalid_argument(
        "ChannelSynthesizer: wideband must be 10x baseband length");
  }
  dsp::Samples up;
  chains_[channel].interpolator.process(baseband, up);
  for (std::size_t i = 0; i < up.size(); ++i) {
    wideband[i] += chains_[channel].mixer.process(up[i]);
  }
}

void ChannelSynthesizer::reset() {
  for (auto& chain : chains_) {
    chain.interpolator.reset();
    chain.mixer.reset_phase();
  }
}

}  // namespace hs::mics
