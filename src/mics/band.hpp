// The 402-405 MHz Medical Implant Communication Services (MICS) band plan:
// ten 300 kHz channels, FCC listen-before-talk rules, and the band's
// sharing arrangement with meteorological aids (paper section 2).
#pragma once

#include <cstddef>

namespace hs::mics {

inline constexpr double kBandStartHz = 402.0e6;
inline constexpr double kBandStopHz = 405.0e6;
inline constexpr double kBandwidthHz = kBandStopHz - kBandStartHz;  // 3 MHz
inline constexpr double kChannelWidthHz = 300.0e3;
inline constexpr std::size_t kChannelCount = 10;

/// FCC-mandated clear-channel monitoring period before claiming a channel.
inline constexpr double kListenBeforeTalkS = 10.0e-3;

/// Center frequency (absolute Hz) of channel `index` in [0, 10).
double channel_center_hz(std::size_t index);

/// Offset of a channel's center from the band center, in Hz (what a 3 MHz
/// wideband front end centered on the band sees at complex baseband).
double channel_baseband_offset_hz(std::size_t index);

/// Channel index whose 300 kHz span contains `freq_hz`; returns
/// kChannelCount if the frequency is outside the band.
std::size_t channel_of_frequency(double freq_hz);

}  // namespace hs::mics
