// Wideband <-> per-channel conversion for the full 3 MHz MICS band.
//
// The shield "can listen to the entire 3 MHz MICS band, transmit in all or
// any subset of the channels ... by making the radio front end as wide as
// 3 MHz and equipping the device with per-channel filters" (paper
// section 7(c)). The Channelizer is that front end: it splits a 3 MHz
// complex stream into ten 300 kHz baseband streams (mix down, lowpass,
// decimate by 10) and synthesizes the reverse direction.
#pragma once

#include <array>
#include <cstddef>
#include <memory>

#include "dsp/mixer.hpp"
#include "dsp/resample.hpp"
#include "dsp/types.hpp"
#include "mics/band.hpp"

namespace hs::mics {

inline constexpr double kWidebandFs = kBandwidthHz;        // 3 MHz
inline constexpr double kChannelFs = kChannelWidthHz;      // 300 kHz
inline constexpr std::size_t kDecimation = 10;

/// Splits a wideband stream into per-channel baseband streams.
class Channelizer {
 public:
  explicit Channelizer(std::size_t filter_taps = 101);

  /// Consumes wideband samples (at 3 MHz); appends each channel's new
  /// baseband samples (at 300 kHz) to `out[channel]`. Internally runs
  /// the mixer + anti-alias FIR on the split-complex (SoA) block path —
  /// bit-identical to the per-sample scalar chain (asserted by
  /// test_dsp_soa).
  void process(dsp::SampleView wideband,
               std::array<dsp::Samples, kChannelCount>& out);

  void reset();

 private:
  struct ChannelChain {
    dsp::Mixer mixer;
    dsp::Decimator decimator;
  };
  std::vector<ChannelChain> chains_;
  dsp::SoaSamples wide_soa_, shifted_, decimated_;  // block-path scratch
};

/// Combines per-channel baseband streams into one wideband stream.
class ChannelSynthesizer {
 public:
  explicit ChannelSynthesizer(std::size_t filter_taps = 101);

  /// Upsamples `baseband` (300 kHz) into the wideband stream (3 MHz) at
  /// the given channel's offset, adding into `wideband` (which must be
  /// sized to 10x the input length). SoA block path; bit-identical to
  /// the scalar chain.
  void process(std::size_t channel, dsp::SampleView baseband,
               dsp::MutSampleView wideband);

  void reset();

 private:
  struct ChannelChain {
    dsp::Interpolator interpolator;
    dsp::Mixer mixer;
  };
  std::vector<ChannelChain> chains_;
  dsp::SoaSamples base_soa_, up_, mixed_;  // block-path scratch
};

}  // namespace hs::mics
