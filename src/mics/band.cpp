#include "mics/band.hpp"

#include <stdexcept>

namespace hs::mics {

double channel_center_hz(std::size_t index) {
  if (index >= kChannelCount) {
    throw std::out_of_range("channel_center_hz: index out of range");
  }
  return kBandStartHz + (static_cast<double>(index) + 0.5) * kChannelWidthHz;
}

double channel_baseband_offset_hz(std::size_t index) {
  const double band_center = (kBandStartHz + kBandStopHz) / 2.0;
  return channel_center_hz(index) - band_center;
}

std::size_t channel_of_frequency(double freq_hz) {
  if (freq_hz < kBandStartHz || freq_hz >= kBandStopHz) return kChannelCount;
  return static_cast<std::size_t>((freq_hz - kBandStartHz) / kChannelWidthHz);
}

}  // namespace hs::mics
