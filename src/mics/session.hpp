// Programmer <-> IMD session state machine, per the MICS sharing rules
// (paper section 2): listen 10 ms for a clear channel, establish a session,
// alternate programmer command / immediate IMD response, stay on the
// channel until the session ends or persistent interference forces a move.
#pragma once

#include <cstddef>
#include <optional>

#include "mics/band.hpp"

namespace hs::mics {

enum class SessionState {
  kIdle,
  kListening,    ///< clear-channel assessment in progress
  kEstablished,  ///< channel claimed, command/response exchange
  kInterfered,   ///< persistent interference; must re-listen elsewhere
};

const char* session_state_name(SessionState s);

class SessionMachine {
 public:
  /// `interference_limit`: consecutive failed exchanges tolerated before
  /// the session declares persistent interference and moves channels.
  explicit SessionMachine(std::size_t interference_limit = 3);

  /// Begin listening on the given channel.
  void start_listening(std::size_t channel);

  /// Clear-channel verdict after the 10 ms LBT window.
  void lbt_result(bool clear);

  /// Outcome of one command/response exchange.
  void exchange_result(bool success);

  /// Ends the session, returning to idle.
  void end_session();

  SessionState state() const { return state_; }
  std::optional<std::size_t> channel() const { return channel_; }
  std::size_t consecutive_failures() const { return consecutive_failures_; }

  /// Next channel to try after interference (simple round-robin).
  std::size_t next_channel() const;

 private:
  SessionState state_ = SessionState::kIdle;
  std::optional<std::size_t> channel_;
  std::size_t interference_limit_;
  std::size_t consecutive_failures_ = 0;
};

}  // namespace hs::mics
