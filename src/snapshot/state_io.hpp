/// @file
/// Versioned, deterministic state serialization for warm-state snapshots.
///
/// A snapshot is a line-based text document:
///
///   line 1    header: `hs-snapshot v1`
///   lines 2+  one entry per line, `<tag> <key> <payload>`:
///               u <key> <decimal u64>
///               f <key> <C99 hex-float>       (exact binary round trip)
///               b <key> 0|1
///               s <key> <escaped string>      (\\ \n \r \t \x.. escapes)
///               v <key> <n> <hex-float>*n     (vector of doubles)
///               y <key> <n> <2n hex chars>    (vector of bytes)
///               ( <name>                      (section open)
///               ) <name>                      (section close)
///   last line  trailer: `sha256 <64 hex chars>` over every byte after
///              the header line through the final entry line.
///
/// Doubles travel as C99 hex-floats ("%a"), the same convention the
/// sharded chunk streams use: the exact bits of the double, no decimal
/// rounding, locale-proof. The reader is strict by design — a wrong
/// version, a mangled line, a tag/key that differs from what the caller
/// asks for, a truncated file or a checksum mismatch is a hard
/// SnapshotError, never a silently partial restore.
///
/// StateWriter produces the text; StateDoc::parse validates and decodes
/// it once into an immutable entry list (shareable across threads);
/// StateReader is a cheap sequential cursor over a StateDoc — every
/// restore walks the same fixed field order the save wrote.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "dsp/types.hpp"

namespace hs::snapshot {

/// Any structural problem with a snapshot: bad version, corruption,
/// truncation, or a read that does not match what was written.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr int kSnapshotVersion = 1;

class StateWriter {
 public:
  /// Section markers make save/load pairs self-checking: a load that
  /// drifts out of sync fails at the next section boundary with both
  /// names in the error.
  void begin(std::string_view section);
  void end(std::string_view section);

  void u64(std::string_view key, std::uint64_t v);
  void f64(std::string_view key, double v);
  void boolean(std::string_view key, bool v);
  void str(std::string_view key, std::string_view v);
  void cx(std::string_view key, dsp::cplx v);
  void f64_vec(std::string_view key, const double* data, std::size_t n);
  void f64_vec(std::string_view key, const std::vector<double>& v);
  void samples(std::string_view key, dsp::SampleView v);
  void soa(std::string_view key, dsp::SoaView v);
  void bytes(std::string_view key, const std::uint8_t* data, std::size_t n);
  void bytes(std::string_view key, const std::vector<std::uint8_t>& v);

  /// Assembles header + entries + sha256 trailer.
  std::string finish() const;

 private:
  void line(char tag, std::string_view key, std::string_view payload);

  std::string body_;
};

/// One decoded entry of a parsed snapshot.
struct StateEntry {
  char tag = 0;          ///< 'u','f','b','s','v' (f64 vec), 'y' (bytes),
                         ///< '(' / ')'
  std::string key;
  std::uint64_t u = 0;   ///< tag 'u' / 'b'
  double f = 0.0;        ///< tag 'f'
  std::string s;         ///< tag 's'
  std::vector<double> fv;        ///< tag 'v'
  std::vector<std::uint8_t> yv;  ///< tag 'y'
};

/// An immutable, fully validated snapshot document. Parsing happens once;
/// restores share the parsed entries (the campaign keeps one StateDoc per
/// cache key and every worker restores from it).
class StateDoc {
 public:
  /// Parses and validates `text` (header, every entry, checksum trailer).
  /// Throws SnapshotError on any deviation; never returns a partial doc.
  /// `source` names the origin (file path) in error messages.
  static StateDoc parse(std::string_view text, std::string_view source);

  const std::vector<StateEntry>& entries() const { return entries_; }

 private:
  std::vector<StateEntry> entries_;
};

/// Sequential typed cursor over a StateDoc. Each read checks the entry's
/// tag and key against the request — save/load skew is a hard error at
/// the first mismatched field, with both sides named.
class StateReader {
 public:
  explicit StateReader(const StateDoc& doc) : doc_(doc) {}

  void begin(std::string_view section);
  void end(std::string_view section);

  std::uint64_t u64(std::string_view key);
  double f64(std::string_view key);
  bool boolean(std::string_view key);
  const std::string& str(std::string_view key);
  dsp::cplx cx(std::string_view key);
  const std::vector<double>& f64_vec(std::string_view key);
  dsp::Samples samples(std::string_view key);
  void soa(std::string_view key, dsp::SoaSamples& out);
  const std::vector<std::uint8_t>& bytes(std::string_view key);

  /// Asserts every entry was consumed (a restore that leaves fields
  /// behind restored a different shape than was saved).
  void expect_exhausted() const;

 private:
  const StateEntry& next(char tag, std::string_view key);

  const StateDoc& doc_;
  std::size_t pos_ = 0;
};

/// sha256 hex digest of `data` — the digest primitive behind both the
/// snapshot trailer and the SnapshotCache keys.
std::string sha256_hex(std::string_view data);

/// Whole-file read shared by the snapshot cache and the campaign chunk
/// streams (each maps the status onto its own error taxonomy).
enum class FileReadStatus { kOk, kOpenFailed, kReadError };
FileReadStatus read_whole_file(const std::string& path, std::string& out);

}  // namespace hs::snapshot

namespace hs::dsp {
class Rng;
}  // namespace hs::dsp

namespace hs::snapshot {

/// Rng stream-position round trip (four xoshiro256++ state words under
/// `<key>.s0` .. `<key>.s3`).
void write_rng(StateWriter& w, std::string_view key, const dsp::Rng& rng);
void read_rng(StateReader& r, std::string_view key, dsp::Rng& rng);

}  // namespace hs::snapshot
