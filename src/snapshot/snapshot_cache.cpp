#include "snapshot/snapshot_cache.hpp"

#include <unistd.h>

#include <cstdio>

namespace hs::snapshot {

namespace {

/// false => file absent; a mid-read I/O error throws.
bool read_file(const std::string& path, std::string& out) {
  switch (read_whole_file(path, out)) {
    case FileReadStatus::kOk: return true;
    case FileReadStatus::kOpenFailed: return false;
    case FileReadStatus::kReadError:
      throw SnapshotError("snapshot: error reading " + path);
  }
  return false;
}

}  // namespace

StateDoc load_snapshot_file(const std::string& path) {
  std::string text;
  if (!read_file(path, text)) {
    throw SnapshotError("snapshot: cannot open " + path);
  }
  return StateDoc::parse(text, path);
}

SnapshotCache::SnapshotCache(std::string dir) : dir_(std::move(dir)) {}

std::string SnapshotCache::file_path(const std::string& key) const {
  return dir_ + "/" + key + ".hsnap";
}

std::shared_ptr<const StateDoc> SnapshotCache::find(const std::string& key) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = docs_.find(key); it != docs_.end()) {
      ++hits_;
      return it->second;
    }
  }
  if (!dir_.empty()) {
    const std::string path = file_path(key);
    std::string text;
    bool opened = false;
    try {
      opened = read_file(path, text);
      if (opened) {
        auto doc = std::make_shared<const StateDoc>(
            StateDoc::parse(text, path));
        std::lock_guard<std::mutex> lock(mutex_);
        ++disk_loads_;
        ++hits_;
        // Another thread may have loaded it concurrently; keep the first.
        const auto [it, inserted] = docs_.emplace(key, std::move(doc));
        return it->second;
      }
    } catch (const SnapshotError& e) {
      // An unusable file on disk must never half-apply: report it and
      // fall back to a cold warm-up (the caller will re-store a good
      // snapshot over it).
      std::fprintf(stderr,
                   "snapshot: ignoring unusable snapshot file (%s); "
                   "falling back to cold warm-up\n",
                   e.what());
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++misses_;
  return nullptr;
}

std::shared_ptr<const StateDoc> SnapshotCache::store(
    const std::string& key, const std::string& payload) {
  // Parse before taking the map slot: a payload this process cannot read
  // back must never be published.
  auto doc = std::make_shared<const StateDoc>(
      StateDoc::parse(payload, "store:" + key));
  bool first = false;
  std::shared_ptr<const StateDoc> stored;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, inserted] = docs_.emplace(key, std::move(doc));
    first = inserted;
    stored = it->second;
  }
  if (first && !dir_.empty()) {
    // Atomic publish: a concurrent shard either sees the complete file or
    // none. pid + cache address make the temp name unique across racing
    // shard processes AND across caches within one process; rename()
    // replaces atomically.
    char suffix[48];
    std::snprintf(suffix, sizeof suffix, ".tmp.%ld.%p",
                  static_cast<long>(getpid()),
                  static_cast<const void*>(this));
    const std::string tmp = file_path(key) + suffix;
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f != nullptr) {
      const std::size_t n = std::fwrite(payload.data(), 1, payload.size(), f);
      // Close unconditionally — a short write (disk full) must not leak
      // the handle.
      const bool closed = std::fclose(f) == 0;
      const bool ok = n == payload.size() && closed;
      if (!ok || std::rename(tmp.c_str(), file_path(key).c_str()) != 0) {
        std::remove(tmp.c_str());
        std::fprintf(stderr,
                     "snapshot: could not persist %s (in-memory cache "
                     "still active)\n",
                     file_path(key).c_str());
      }
    } else {
      std::fprintf(stderr,
                   "snapshot: cannot write to snapshot dir '%s' "
                   "(in-memory cache still active)\n",
                   dir_.c_str());
    }
  }
  return stored;
}

std::size_t SnapshotCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::size_t SnapshotCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::size_t SnapshotCache::disk_loads() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return disk_loads_;
}

}  // namespace hs::snapshot
