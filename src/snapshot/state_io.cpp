#include "snapshot/state_io.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "crypto/sha256.hpp"
#include "dsp/rng.hpp"

namespace hs::snapshot {

namespace {

constexpr std::string_view kHeader = "hs-snapshot v1\n";

[[noreturn]] void fail(std::string_view source, std::size_t lineno,
                       const std::string& what) {
  throw SnapshotError("snapshot: " + std::string(source) + " line " +
                      std::to_string(lineno) + ": " + what);
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\x%02x",
                        static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string unescape(std::string_view s, std::string_view source,
                     std::size_t lineno) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c != '\\') {
      out += c;
      continue;
    }
    if (++i >= s.size()) fail(source, lineno, "unterminated escape");
    switch (s[i]) {
      case '\\': out += '\\'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'x': {
        if (i + 2 >= s.size()) fail(source, lineno, "truncated \\x escape");
        const std::string hex(s.substr(i + 1, 2));
        char* endp = nullptr;
        const long v = std::strtol(hex.c_str(), &endp, 16);
        if (endp != hex.c_str() + 2) {
          fail(source, lineno, "malformed \\x escape");
        }
        out += static_cast<char>(v);
        i += 2;
        break;
      }
      default: fail(source, lineno, "unsupported string escape");
    }
  }
  return out;
}

void append_hex_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%a", v);
  out += buf;
}

double parse_hex_double(std::string_view text, std::string_view source,
                        std::size_t lineno) {
  const std::string s(text);
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (s.empty() || end != s.c_str() + s.size()) {
    fail(source, lineno, "malformed hex-float '" + s + "'");
  }
  return v;
}

/// Splits off the next space-separated token of `line`, advancing `pos`.
std::string_view token(std::string_view line, std::size_t& pos,
                       std::string_view source, std::size_t lineno) {
  if (pos >= line.size()) fail(source, lineno, "truncated entry");
  const std::size_t sp = line.find(' ', pos);
  const std::size_t end = sp == std::string_view::npos ? line.size() : sp;
  std::string_view t = line.substr(pos, end - pos);
  pos = sp == std::string_view::npos ? line.size() : sp + 1;
  return t;
}

std::uint64_t parse_u64(std::string_view text, std::string_view source,
                        std::size_t lineno) {
  if (text.empty()) fail(source, lineno, "expected unsigned integer");
  std::uint64_t v = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      fail(source, lineno,
           "malformed unsigned integer '" + std::string(text) + "'");
    }
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) {
      fail(source, lineno, "integer overflows 64 bits");
    }
    v = v * 10 + digit;
  }
  return v;
}

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

FileReadStatus read_whole_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return FileReadStatus::kOpenFailed;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  return read_error ? FileReadStatus::kReadError : FileReadStatus::kOk;
}

std::string sha256_hex(std::string_view data) {
  const auto digest = crypto::Sha256::hash(crypto::ByteView(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
  static const char* hex = "0123456789abcdef";
  std::string out;
  out.reserve(2 * digest.size());
  for (std::uint8_t b : digest) {
    out += hex[b >> 4];
    out += hex[b & 0xf];
  }
  return out;
}

// ---- StateWriter ----------------------------------------------------------

void StateWriter::line(char tag, std::string_view key,
                       std::string_view payload) {
  body_ += tag;
  body_ += ' ';
  body_ += key;
  if (!payload.empty()) {
    body_ += ' ';
    body_ += payload;
  }
  body_ += '\n';
}

void StateWriter::begin(std::string_view section) { line('(', section, {}); }
void StateWriter::end(std::string_view section) { line(')', section, {}); }

// std::to_string below is allowlisted in LINT.toml
// (to-string-serializer): every use is integer-only (exact in decimal);
// doubles go through the '%a' hex-float path in f64().
void StateWriter::u64(std::string_view key, std::uint64_t v) {
  line('u', key, std::to_string(v));
}

void StateWriter::f64(std::string_view key, double v) {
  std::string payload;
  append_hex_double(payload, v);
  line('f', key, payload);
}

void StateWriter::boolean(std::string_view key, bool v) {
  line('b', key, v ? "1" : "0");
}

void StateWriter::str(std::string_view key, std::string_view v) {
  // Strings may be empty; keep the separating space so the payload is
  // unambiguous ("s key " vs a truncated line).
  body_ += 's';
  body_ += ' ';
  body_ += key;
  body_ += ' ';
  body_ += escape(v);
  body_ += '\n';
}

void StateWriter::cx(std::string_view key, dsp::cplx v) {
  std::string payload = "2 ";
  append_hex_double(payload, v.real());
  payload += ' ';
  append_hex_double(payload, v.imag());
  line('v', key, payload);
}

void StateWriter::f64_vec(std::string_view key, const double* data,
                          std::size_t n) {
  std::string payload = std::to_string(n);
  for (std::size_t i = 0; i < n; ++i) {
    payload += ' ';
    append_hex_double(payload, data[i]);
  }
  line('v', key, payload);
}

void StateWriter::f64_vec(std::string_view key,
                          const std::vector<double>& v) {
  f64_vec(key, v.data(), v.size());
}

void StateWriter::samples(std::string_view key, dsp::SampleView v) {
  // Interleaved re/im — 2n doubles.
  std::string payload = std::to_string(2 * v.size());
  for (const dsp::cplx& x : v) {
    payload += ' ';
    append_hex_double(payload, x.real());
    payload += ' ';
    append_hex_double(payload, x.imag());
  }
  line('v', key, payload);
}

void StateWriter::soa(std::string_view key, dsp::SoaView v) {
  // Plane order (all re, then all im) so restore is two straight copies.
  std::string payload = std::to_string(2 * v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    payload += ' ';
    append_hex_double(payload, v.re[i]);
  }
  for (std::size_t i = 0; i < v.size(); ++i) {
    payload += ' ';
    append_hex_double(payload, v.im[i]);
  }
  line('v', key, payload);
}

void StateWriter::bytes(std::string_view key, const std::uint8_t* data,
                        std::size_t n) {
  static const char* hex = "0123456789abcdef";
  std::string payload = std::to_string(n);
  payload += ' ';
  for (std::size_t i = 0; i < n; ++i) {
    payload += hex[data[i] >> 4];
    payload += hex[data[i] & 0xf];
  }
  if (n == 0) payload.pop_back();  // no trailing space for empty runs
  line('y', key, payload);
}

void StateWriter::bytes(std::string_view key,
                        const std::vector<std::uint8_t>& v) {
  bytes(key, v.data(), v.size());
}

std::string StateWriter::finish() const {
  std::string out(kHeader);
  out += body_;
  out += "sha256 ";
  out += sha256_hex(body_);
  out += '\n';
  return out;
}

// ---- StateDoc -------------------------------------------------------------

StateDoc StateDoc::parse(std::string_view text, std::string_view source) {
  if (text.size() < kHeader.size() ||
      text.substr(0, kHeader.size()) != kHeader) {
    // Distinguish "not a snapshot" from "snapshot of another version" for
    // actionable errors on format evolution.
    const std::size_t nl = text.find('\n');
    const std::string first(text.substr(0, std::min<std::size_t>(
                                               nl == std::string_view::npos
                                                   ? text.size()
                                                   : nl,
                                               64)));
    if (first.rfind("hs-snapshot ", 0) == 0) {
      throw SnapshotError("snapshot: " + std::string(source) +
                          ": unsupported version '" + first +
                          "' (this build reads v" +
                          std::to_string(kSnapshotVersion) + ")");
    }
    throw SnapshotError("snapshot: " + std::string(source) +
                        ": not an hs-snapshot file");
  }
  if (text.back() != '\n') {
    throw SnapshotError("snapshot: " + std::string(source) +
                        ": truncated file (missing final newline)");
  }

  // Separate the trailer line and verify the checksum over the body.
  const std::size_t last_nl = text.find_last_of('\n', text.size() - 2);
  if (last_nl == std::string_view::npos || last_nl < kHeader.size() - 1) {
    throw SnapshotError("snapshot: " + std::string(source) +
                        ": missing checksum trailer");
  }
  const std::string_view trailer =
      text.substr(last_nl + 1, text.size() - last_nl - 2);
  if (trailer.rfind("sha256 ", 0) != 0 || trailer.size() != 7 + 64) {
    throw SnapshotError("snapshot: " + std::string(source) +
                        ": malformed checksum trailer (truncated file?)");
  }
  const std::string_view body =
      text.substr(kHeader.size(), last_nl + 1 - kHeader.size());
  if (sha256_hex(body) != trailer.substr(7)) {
    throw SnapshotError("snapshot: " + std::string(source) +
                        ": checksum mismatch (corrupted file)");
  }

  StateDoc doc;
  std::size_t lineno = 1;  // header was line 1
  std::size_t start = 0;
  std::vector<std::string> open_sections;
  while (start < body.size()) {
    ++lineno;
    const std::size_t end = body.find('\n', start);
    const std::string_view line = body.substr(start, end - start);
    start = end + 1;

    if (line.size() < 2 || line[1] != ' ') {
      fail(source, lineno, "malformed entry line");
    }
    StateEntry e;
    e.tag = line[0];
    std::size_t pos = 2;
    switch (e.tag) {
      case '(':
      case ')': {
        e.key = std::string(token(line, pos, source, lineno));
        if (pos != line.size()) fail(source, lineno, "trailing bytes");
        if (e.tag == '(') {
          open_sections.push_back(e.key);
        } else {
          if (open_sections.empty() || open_sections.back() != e.key) {
            fail(source, lineno, "unbalanced section ')" + e.key + "'");
          }
          open_sections.pop_back();
        }
        break;
      }
      case 'u': {
        e.key = std::string(token(line, pos, source, lineno));
        e.u = parse_u64(token(line, pos, source, lineno), source, lineno);
        if (pos != line.size()) fail(source, lineno, "trailing bytes");
        break;
      }
      case 'b': {
        e.key = std::string(token(line, pos, source, lineno));
        const std::string_view v = token(line, pos, source, lineno);
        if (v != "0" && v != "1") fail(source, lineno, "bool must be 0|1");
        e.u = v == "1" ? 1 : 0;
        if (pos != line.size()) fail(source, lineno, "trailing bytes");
        break;
      }
      case 'f': {
        e.key = std::string(token(line, pos, source, lineno));
        e.f = parse_hex_double(token(line, pos, source, lineno), source,
                               lineno);
        if (pos != line.size()) fail(source, lineno, "trailing bytes");
        break;
      }
      case 's': {
        e.key = std::string(token(line, pos, source, lineno));
        // The remainder (possibly empty) is the escaped payload.
        e.s = unescape(pos <= line.size() ? line.substr(pos)
                                          : std::string_view{},
                       source, lineno);
        break;
      }
      case 'v': {
        e.key = std::string(token(line, pos, source, lineno));
        const std::uint64_t n =
            parse_u64(token(line, pos, source, lineno), source, lineno);
        // Bound the count by the bytes actually present (each element is
        // at least two characters) BEFORE reserving, so a corrupted count
        // fails as a SnapshotError, never as std::length_error/bad_alloc
        // escaping the cold-fallback handlers.
        if (n > line.size() - std::min(pos, line.size())) {
          fail(source, lineno, "vector count exceeds line length");
        }
        e.fv.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i) {
          e.fv.push_back(parse_hex_double(token(line, pos, source, lineno),
                                          source, lineno));
        }
        if (pos != line.size()) fail(source, lineno, "trailing bytes");
        break;
      }
      case 'y': {
        e.key = std::string(token(line, pos, source, lineno));
        const std::uint64_t n =
            parse_u64(token(line, pos, source, lineno), source, lineno);
        std::string_view hexrun =
            n > 0 ? token(line, pos, source, lineno) : std::string_view{};
        if (hexrun.size() != 2 * n) {
          fail(source, lineno, "byte run length mismatch");
        }
        e.yv.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i) {
          const int hi = hex_nibble(hexrun[2 * i]);
          const int lo = hex_nibble(hexrun[2 * i + 1]);
          if (hi < 0 || lo < 0) fail(source, lineno, "malformed byte run");
          e.yv.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
        }
        if (pos != line.size()) fail(source, lineno, "trailing bytes");
        break;
      }
      default:
        fail(source, lineno,
             std::string("unknown entry tag '") + e.tag + "'");
    }
    doc.entries_.push_back(std::move(e));
  }
  if (!open_sections.empty()) {
    throw SnapshotError("snapshot: " + std::string(source) +
                        ": unclosed section '(" + open_sections.back() +
                        "' (truncated file?)");
  }
  return doc;
}

// ---- StateReader ----------------------------------------------------------

const StateEntry& StateReader::next(char tag, std::string_view key) {
  if (pos_ >= doc_.entries().size()) {
    throw SnapshotError("snapshot: read past end at '" + std::string(key) +
                        "' — snapshot shape differs from this build");
  }
  const StateEntry& e = doc_.entries()[pos_++];
  if (e.tag != tag || e.key != key) {
    throw SnapshotError("snapshot: expected '" + std::string(1, tag) + " " +
                        std::string(key) + "', found '" +
                        std::string(1, e.tag) + " " + e.key +
                        "' — snapshot shape differs from this build");
  }
  return e;
}

void StateReader::begin(std::string_view section) { next('(', section); }
void StateReader::end(std::string_view section) { next(')', section); }

std::uint64_t StateReader::u64(std::string_view key) {
  return next('u', key).u;
}

double StateReader::f64(std::string_view key) { return next('f', key).f; }

bool StateReader::boolean(std::string_view key) {
  return next('b', key).u != 0;
}

const std::string& StateReader::str(std::string_view key) {
  return next('s', key).s;
}

dsp::cplx StateReader::cx(std::string_view key) {
  const StateEntry& e = next('v', key);
  if (e.fv.size() != 2) {
    throw SnapshotError("snapshot: '" + std::string(key) +
                        "' is not a complex value");
  }
  return {e.fv[0], e.fv[1]};
}

const std::vector<double>& StateReader::f64_vec(std::string_view key) {
  return next('v', key).fv;
}

dsp::Samples StateReader::samples(std::string_view key) {
  const StateEntry& e = next('v', key);
  if (e.fv.size() % 2 != 0) {
    throw SnapshotError("snapshot: '" + std::string(key) +
                        "' has an odd interleaved length");
  }
  dsp::Samples out(e.fv.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = {e.fv[2 * i], e.fv[2 * i + 1]};
  }
  return out;
}

void StateReader::soa(std::string_view key, dsp::SoaSamples& out) {
  const StateEntry& e = next('v', key);
  if (e.fv.size() % 2 != 0) {
    throw SnapshotError("snapshot: '" + std::string(key) +
                        "' has an odd plane length");
  }
  const std::size_t n = e.fv.size() / 2;
  out.resize(n);
  double* re = out.re();
  double* im = out.im();
  for (std::size_t i = 0; i < n; ++i) re[i] = e.fv[i];
  for (std::size_t i = 0; i < n; ++i) im[i] = e.fv[n + i];
}

const std::vector<std::uint8_t>& StateReader::bytes(std::string_view key) {
  return next('y', key).yv;
}

void write_rng(StateWriter& w, std::string_view key, const dsp::Rng& rng) {
  const auto st = rng.state();
  const std::string base(key);
  for (std::size_t i = 0; i < st.size(); ++i) {
    w.u64(base + ".s" + std::to_string(i), st[i]);
  }
}

void read_rng(StateReader& r, std::string_view key, dsp::Rng& rng) {
  std::array<std::uint64_t, 4> st{};
  const std::string base(key);
  for (std::size_t i = 0; i < st.size(); ++i) {
    st[i] = r.u64(base + ".s" + std::to_string(i));
  }
  rng.set_state(st);
}

void StateReader::expect_exhausted() const {
  if (pos_ != doc_.entries().size()) {
    throw SnapshotError(
        "snapshot: " + std::to_string(doc_.entries().size() - pos_) +
        " unread entries after restore — snapshot shape differs from this "
        "build");
  }
}

}  // namespace hs::snapshot
