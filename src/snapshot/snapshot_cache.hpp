/// @file
/// Keyed cache of parsed warm-state snapshots, shared by every campaign
/// worker in a process and — through an optional directory — by every
/// shard process of a sharded campaign.
///
/// Keys are content digests (sha256 hex of the canonicalized deployment
/// configuration + warm-up seed; see shield::deployment_warm_key), so a
/// snapshot can never be applied to a deployment it was not taken from.
///
/// In-memory entries hold the parsed StateDoc behind a shared_ptr:
/// parsing/validation happens once per process per key, and concurrent
/// workers restore from the same immutable document. With a directory
/// configured, store() also persists `<dir>/<key>.hsnap` via a
/// write-to-temp + rename, so concurrent shard processes racing on the
/// same key each publish a complete file or none — readers never observe
/// a partial snapshot. A corrupted, truncated or version-mismatched file
/// is rejected with a SnapshotError by load_snapshot_file(); find()
/// reports it to stderr once and returns a miss so the caller falls back
/// to a cold warm-up (no partial restores, ever).
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "snapshot/state_io.hpp"

namespace hs::snapshot {

/// Reads and fully validates one snapshot file. Throws SnapshotError on
/// unreadable, corrupt, truncated or version-mismatched content.
StateDoc load_snapshot_file(const std::string& path);

class SnapshotCache {
 public:
  /// `dir` empty => in-memory only. The directory must already exist.
  explicit SnapshotCache(std::string dir = {});

  SnapshotCache(const SnapshotCache&) = delete;
  SnapshotCache& operator=(const SnapshotCache&) = delete;

  /// Looks up `key`: memory first, then `<dir>/<key>.hsnap`. A missing
  /// key returns nullptr; an invalid file is reported to stderr and
  /// treated as a miss (the caller warms up cold). Thread-safe.
  std::shared_ptr<const StateDoc> find(const std::string& key);

  /// Parses `payload` (a StateWriter::finish() document), stores it under
  /// `key`, and — when a directory is configured — publishes it
  /// atomically to disk. First store wins; a concurrent duplicate is
  /// dropped. Returns the stored (parsed) document. Thread-safe.
  std::shared_ptr<const StateDoc> store(const std::string& key,
                                        const std::string& payload);

  bool persistent() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }

  /// Observability counters for the campaign perf snapshot.
  std::size_t hits() const;
  std::size_t misses() const;
  std::size_t disk_loads() const;

 private:
  std::string file_path(const std::string& key) const;

  std::string dir_;
  mutable std::mutex mutex_;
  // Ordering audit (determinism linter: unordered-in-serializer allow
  // entry in LINT.toml): docs_ is keyed by content digest and accessed
  // exclusively through find()/emplace() — it is never iterated, so its
  // bucket order can never reach a report, stream, or snapshot byte.
  // If you add iteration (e.g. an eviction sweep), switch to std::map
  // or sort the keys first, and update LINT.toml.
  std::unordered_map<std::string, std::shared_ptr<const StateDoc>> docs_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t disk_loads_ = 0;
};

}  // namespace hs::snapshot
