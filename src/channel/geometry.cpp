#include "channel/geometry.hpp"

#include <stdexcept>

namespace hs::channel {

const std::array<TestbedLocation, kTestbedLocationCount>& testbed_locations() {
  // Distances and wall counts are chosen so that, under the default
  // path-loss model and link budget, the location-sweep experiments land
  // where the paper's did: an FCC-power adversary stops succeeding around
  // location 8 (14 m, through a wall) and a 100x-power adversary around
  // location 13 (27 m, non-line-of-sight) — see Figs. 11-13.
  static const std::array<TestbedLocation, kTestbedLocationCount> locations = {{
      {1, 0.2, 0},   // the "even nearby eavesdroppers fail" location
      {2, 0.6, 0},
      {3, 1.2, 0},
      {4, 2.5, 0},
      {5, 4.0, 0},
      {6, 6.5, 0},
      {7, 11.0, 1},
      {8, 14.0, 1},  // FCC-power adversary's outermost success (Fig. 11)
      {9, 17.0, 2},
      {10, 18.0, 2},
      {11, 20.0, 3},
      {12, 22.0, 3},
      {13, 27.0, 3},  // 100x-power adversary's outermost success (Fig. 13)
      {14, 24.0, 4},
      {15, 30.0, 4},
      {16, 28.0, 5},
      {17, 30.0, 5},
      {18, 30.0, 6},
  }};
  return locations;
}

const TestbedLocation& testbed_location(int index) {
  if (index < 1 || index > static_cast<int>(kTestbedLocationCount)) {
    throw std::out_of_range("testbed_location: index must be in [1, 18]");
  }
  return testbed_locations()[static_cast<std::size_t>(index - 1)];
}

}  // namespace hs::channel
