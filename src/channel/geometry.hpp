// Testbed geometry reproducing Fig. 6 of the paper: the IMD (under 1 cm of
// bacon and 4 cm of ground beef), the shield sitting on the body surface
// next to it, and 18 adversary/eavesdropper locations ordered in descending
// order of received signal strength at the shield, spanning 20 cm to 30 m
// with both line-of-sight and non-line-of-sight (through-wall) placements.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>

namespace hs::channel {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;
};

inline double distance(const Vec2& a, const Vec2& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// One adversary location of the Fig. 6 floor plan.
struct TestbedLocation {
  int index = 0;          ///< 1-based, as in Fig. 6
  double distance_m = 0;  ///< range to the IMD/shield cluster
  int walls = 0;          ///< intervening walls (0 => line of sight)
  bool line_of_sight() const { return walls == 0; }
  Vec2 position() const { return {distance_m, 0.0}; }
};

inline constexpr std::size_t kTestbedLocationCount = 18;

/// The 18 locations. Indices 1..18 are ordered by descending RSSI at the
/// shield under the default path-loss model, as the paper orders them.
/// Figures 11/12 use locations 1..14; Fig. 13 uses all 18.
const std::array<TestbedLocation, kTestbedLocationCount>& testbed_locations();

/// Look up a location by its 1-based Fig. 6 index.
const TestbedLocation& testbed_location(int index);

/// Fixed cluster geometry: IMD at the origin (implanted), shield worn on
/// the body surface 2 cm away, in-body observer co-located with the IMD.
inline constexpr Vec2 kImdPosition{0.0, 0.0};
inline constexpr Vec2 kShieldPosition{0.0, 0.02};
inline constexpr double kShieldImdDistanceM = 0.02;

/// Extra attenuation from the shield's antennas toward the IMD beyond air
/// and body loss: the necklace's antennas face outward, away from the
/// chest, so only a fraction of the jamming energy couples inward. This is
/// the knob calibrated against Table 1 (P_thresh) of the paper.
inline constexpr double kShieldToImdDirectivityLossDb = 3.0;

}  // namespace hs::channel
