#include "channel/pathloss.hpp"

#include <algorithm>
#include <cmath>

namespace hs::channel {
namespace {
constexpr double kSpeedOfLight = 299792458.0;
constexpr double kPi = 3.141592653589793238462643383279502884;
}  // namespace

double PathLossModel::wavelength_m() const { return kSpeedOfLight / carrier_hz; }

double PathLossModel::reference_loss_db() const {
  // Friis free-space loss at the reference distance.
  const double ratio = 4.0 * kPi * reference_m / wavelength_m();
  return 20.0 * std::log10(ratio);
}

double PathLossModel::air_loss_db(double distance_m, int walls) const {
  const double d = std::max(distance_m, min_distance_m);
  const double loss = reference_loss_db() +
                      10.0 * exponent * std::log10(d / reference_m) +
                      wall_loss_db * static_cast<double>(walls);
  return std::max(loss, 0.0);
}

}  // namespace hs::channel
