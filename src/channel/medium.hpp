// The shared wireless medium: complex flat-fading gains between every pair
// of antennas, linear superposition of all concurrent transmissions, and
// thermal noise at every receive port.
//
// This is the simulator's replacement for the paper's over-the-air USRP2
// testbed. Two properties the paper's security argument rests on are
// faithfully modelled:
//  * linearity — the channel adds concurrently transmitted signals, which
//    is what makes random jamming act as a one-time pad (section 6), and
//  * per-pair channels — H_self (the wire between the shield receive
//    antenna's transmit and receive chains) and H_jam->rec (the coupling
//    between the shield's adjacent antennas) are explicit overridable
//    gains, with |H_jam->rec / H_self| ~ -27 dB as measured on the
//    paper's USRP2 prototype (section 5).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "channel/geometry.hpp"
#include "channel/pathloss.hpp"
#include "dsp/rng.hpp"
#include "dsp/types.hpp"

namespace hs::snapshot {
class StateWriter;
class StateReader;
}  // namespace hs::snapshot

namespace hs::channel {

using AntennaId = std::size_t;

struct AntennaDesc {
  std::string name;
  Vec2 position{};
  int walls = 0;             ///< walls between this antenna and the cluster
  double body_loss_db = 0;   ///< crossing into/out of the body at this port
  double extra_loss_db = 0;  ///< miscellaneous fixed loss on all its links
};

struct LinkBudgetConfig {
  PathLossModel pathloss{};
  double noise_floor_dbm = -112.0;  ///< kTB over 300 kHz + 7 dB noise figure
  double fcc_limit_dbm = -16.0;     ///< MICS EIRP limit (25 uW)
  double shadowing_sigma_db = 2.5;  ///< per-link log-normal shadowing
  /// Links shorter than this never shadow (rigid co-located cluster).
  double shadowing_min_distance_m = 1.0;
};

class Medium {
 public:
  Medium(double fs, std::size_t block_size, std::uint64_t seed,
         LinkBudgetConfig budget = {});

  /// Returns the medium to its just-constructed state under a new seed:
  /// all antennas, pair overrides and buffered samples are dropped and the
  /// RNG is reseeded. Nodes re-register their antennas afterwards, in the
  /// same order as at construction, so the per-pair phase/shadowing draws
  /// replay exactly and a reset+rewire deployment is bit-identical to a
  /// freshly constructed one. Buffer capacity is retained (the point of
  /// resetting instead of reconstructing).
  void reset(double fs, std::size_t block_size, std::uint64_t seed,
             const LinkBudgetConfig& budget);

  AntennaId add_antenna(const AntennaDesc& desc);
  std::size_t antenna_count() const { return antennas_.size(); }
  const AntennaDesc& antenna(AntennaId id) const { return antennas_.at(id); }

  /// Overrides the directional gain a->b with an exact complex value
  /// (used for H_self and H_jam->rec).
  void set_pair_gain(AntennaId from, AntennaId to, dsp::cplx gain);

  /// Adds a symmetric extra loss on the link a<->b (e.g., the shield's
  /// outward-facing antenna directivity toward the IMD).
  void add_pair_loss(AntennaId a, AntennaId b, double extra_db);

  /// Redraws link phases and shadowing (a new experiment trial).
  void rerandomize();

  /// Two-phase seeding, trial half: reseeds the medium's stream from the
  /// per-trial seed and redraws every link realization from it. Override
  /// gains (H_self, H_jam->rec) and pair losses are calibration, not
  /// randomness — they survive. Construction/warm-up randomness stays on
  /// the warm-up stream, which is what makes post-warmup snapshots
  /// shareable across trials (see shield::Deployment::begin_trial).
  void reseed_trial(std::uint64_t trial_seed);

  /// Warm-state snapshot round trip: antennas, per-pair channel state,
  /// RNG stream position, and the link-budget configuration. The lazy
  /// per-pair gain caches are NOT serialized — gain() is a pure function
  /// of the restored fields, so they repopulate with identical values.
  /// Block buffers restore empty (the next mix() overwrites them; no
  /// caller reads rx() before stepping a restored deployment).
  void save_state(snapshot::StateWriter& w) const;
  void load_state(snapshot::StateReader& r);

  /// Current complex amplitude gain from one antenna to another.
  dsp::cplx gain(AntennaId from, AntennaId to) const;

  /// Deterministic (non-shadowed) path loss in dB between two antennas.
  double nominal_loss_db(AntennaId from, AntennaId to) const;

  // ---- Block interface -------------------------------------------------
  /// Clears all transmit buffers for a new block.
  void begin_block();

  /// Adds `samples` (length <= block_size) to `from`'s transmit buffer for
  /// the current block. Multiple calls accumulate.
  void set_tx(AntennaId from, dsp::SampleView samples);

  /// Split-complex overload: accumulates plane-wise with no layout
  /// conversion (the fast path for SoA producers like the jamming
  /// generator).
  void set_tx(AntennaId from, dsp::SoaView samples);

  /// Superposes all transmissions plus thermal noise at every antenna.
  /// Internally everything runs on split re/im planes so the per-pair
  /// multiply-accumulate and the noise fill autovectorize.
  void mix();

  /// Received samples at `at` for the block just mixed (AoS view,
  /// materialized lazily from the internal planes on first call per
  /// block; SoA consumers should prefer rx_soa()). NOTE: despite being
  /// const, the lazy materialization mutates a per-antenna cache, so
  /// concurrent rx() calls on a shared Medium race; rx_soa() is the
  /// read-only accessor. (Today every campaign worker owns its Medium.)
  dsp::SampleView rx(AntennaId at) const;

  /// Received samples at `at` as split-complex planes — no conversion
  /// cost; bit-identical sample values to rx().
  dsp::SoaView rx_soa(AntennaId at) const;

  /// Mean received power (linear mW) at `at` for the block just mixed.
  double rx_power(AntennaId at) const;

  double fs() const { return fs_; }
  std::size_t block_size() const { return block_size_; }
  const LinkBudgetConfig& budget() const { return budget_; }

  /// Disables thermal noise (for calibration-style unit tests).
  void set_noise_enabled(bool enabled) { noise_enabled_ = enabled; }

  /// Linear noise power corresponding to the configured floor.
  double noise_power() const;

 private:
  struct PairState {
    std::optional<dsp::cplx> override_gain;
    double extra_loss_db = 0.0;
    dsp::cplx phase{1.0, 0.0};
    double shadow_db = 0.0;
    /// Lazily computed gain() result — the dB-to-amplitude conversion
    /// costs a log10 and a pow per call and mix() asks for every active
    /// pair every block. Pure function of the fields above and the
    /// antenna descriptors, so caching is exact; invalidated whenever
    /// any input changes.
    mutable std::optional<dsp::cplx> cached_gain;
  };

  PairState& pair(AntennaId from, AntennaId to);
  const PairState& pair(AntennaId from, AntennaId to) const;
  void redraw_pair(AntennaId a, AntennaId b);

  double fs_;
  std::size_t block_size_;
  LinkBudgetConfig budget_;
  dsp::Rng rng_;

  std::vector<AntennaDesc> antennas_;
  std::vector<PairState> pairs_;  // row-major [from][to]
  std::vector<dsp::SoaSamples> tx_;
  std::vector<bool> tx_active_;
  std::vector<dsp::SoaSamples> rx_;
  /// Lazily interleaved copies of rx_ for AoS consumers; entry `a` is
  /// valid only when rx_aos_valid_[a]. Invalidated by mix()/reset().
  mutable std::vector<dsp::Samples> rx_aos_;
  mutable std::vector<bool> rx_aos_valid_;
  bool noise_enabled_ = true;
};

}  // namespace hs::channel
