#include "channel/medium.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/kernels.hpp"
#include "dsp/units.hpp"
#include "obs/metrics.hpp"
#include "snapshot/state_io.hpp"

namespace hs::channel {

using dsp::cplx;

Medium::Medium(double fs, std::size_t block_size, std::uint64_t seed,
               LinkBudgetConfig budget)
    : fs_(fs),
      block_size_(block_size),
      budget_(budget),
      rng_(seed, "medium") {
  if (fs_ <= 0 || block_size_ == 0) {
    throw std::invalid_argument("Medium: invalid fs/block size");
  }
}

void Medium::reset(double fs, std::size_t block_size, std::uint64_t seed,
                   const LinkBudgetConfig& budget) {
  if (fs <= 0 || block_size == 0) {
    throw std::invalid_argument("Medium::reset: invalid fs/block size");
  }
  fs_ = fs;
  block_size_ = block_size;
  budget_ = budget;
  rng_ = dsp::Rng(seed, "medium");
  antennas_.clear();
  pairs_.clear();
  tx_.clear();
  tx_active_.clear();
  rx_.clear();
  rx_aos_.clear();
  rx_aos_valid_.clear();
  noise_enabled_ = true;
}

AntennaId Medium::add_antenna(const AntennaDesc& desc) {
  const AntennaId id = antennas_.size();
  antennas_.push_back(desc);
  tx_.emplace_back(block_size_);
  tx_active_.push_back(false);
  rx_.emplace_back(block_size_);
  rx_aos_.emplace_back();
  rx_aos_valid_.push_back(false);

  // Grow the pair matrix to (n+1)^2, preserving existing entries.
  const std::size_t n = antennas_.size();
  std::vector<PairState> grown(n * n);
  for (std::size_t f = 0; f + 1 < n; ++f) {
    for (std::size_t t = 0; t + 1 < n; ++t) {
      grown[f * n + t] = pairs_[f * (n - 1) + t];
    }
  }
  pairs_ = std::move(grown);

  // Draw initial phase/shadowing for links touching the new antenna.
  for (AntennaId other = 0; other < id; ++other) redraw_pair(other, id);
  return id;
}

Medium::PairState& Medium::pair(AntennaId from, AntennaId to) {
  return pairs_.at(from * antennas_.size() + to);
}

const Medium::PairState& Medium::pair(AntennaId from, AntennaId to) const {
  return pairs_.at(from * antennas_.size() + to);
}

void Medium::redraw_pair(AntennaId a, AntennaId b) {
  const double d = distance(antennas_[a].position, antennas_[b].position);
  const cplx phase = rng_.random_phase();
  double shadow = 0.0;
  if (d >= budget_.shadowing_min_distance_m &&
      budget_.shadowing_sigma_db > 0.0) {
    shadow = rng_.gaussian(0.0, budget_.shadowing_sigma_db);
  }
  // Reciprocal channel: same draw in both directions.
  pair(a, b).phase = phase;
  pair(a, b).shadow_db = shadow;
  pair(a, b).cached_gain.reset();
  pair(b, a).phase = phase;
  pair(b, a).shadow_db = shadow;
  pair(b, a).cached_gain.reset();
}

void Medium::set_pair_gain(AntennaId from, AntennaId to, cplx gain) {
  pair(from, to).override_gain = gain;
  pair(from, to).cached_gain.reset();
}

void Medium::add_pair_loss(AntennaId a, AntennaId b, double extra_db) {
  pair(a, b).extra_loss_db += extra_db;
  pair(a, b).cached_gain.reset();
  pair(b, a).extra_loss_db += extra_db;
  pair(b, a).cached_gain.reset();
}

void Medium::rerandomize() {
  for (AntennaId a = 0; a < antennas_.size(); ++a) {
    for (AntennaId b = a + 1; b < antennas_.size(); ++b) {
      redraw_pair(a, b);
    }
  }
}

void Medium::reseed_trial(std::uint64_t trial_seed) {
  rng_ = dsp::Rng(trial_seed, "medium");
  rerandomize();
}

void Medium::save_state(snapshot::StateWriter& w) const {
  w.begin("medium");
  w.f64("fs", fs_);
  w.u64("block_size", block_size_);
  w.f64("pathloss.carrier_hz", budget_.pathloss.carrier_hz);
  w.f64("pathloss.exponent", budget_.pathloss.exponent);
  w.f64("pathloss.wall_loss_db", budget_.pathloss.wall_loss_db);
  w.f64("pathloss.reference_m", budget_.pathloss.reference_m);
  w.f64("pathloss.min_distance_m", budget_.pathloss.min_distance_m);
  w.f64("noise_floor_dbm", budget_.noise_floor_dbm);
  w.f64("fcc_limit_dbm", budget_.fcc_limit_dbm);
  w.f64("shadowing_sigma_db", budget_.shadowing_sigma_db);
  w.f64("shadowing_min_distance_m", budget_.shadowing_min_distance_m);
  snapshot::write_rng(w, "rng", rng_);
  w.boolean("noise_enabled", noise_enabled_);
  w.u64("antennas", antennas_.size());
  for (const AntennaDesc& a : antennas_) {
    w.str("name", a.name);
    w.f64("x", a.position.x);
    w.f64("y", a.position.y);
    w.u64("walls", static_cast<std::uint64_t>(a.walls));
    w.f64("body_loss_db", a.body_loss_db);
    w.f64("extra_loss_db", a.extra_loss_db);
  }
  for (const PairState& p : pairs_) {
    w.boolean("override", p.override_gain.has_value());
    w.cx("override_gain", p.override_gain.value_or(dsp::cplx{}));
    w.f64("extra_loss_db", p.extra_loss_db);
    w.cx("phase", p.phase);
    w.f64("shadow_db", p.shadow_db);
  }
  w.end("medium");
}

void Medium::load_state(snapshot::StateReader& r) {
  r.begin("medium");
  fs_ = r.f64("fs");
  block_size_ = r.u64("block_size");
  budget_.pathloss.carrier_hz = r.f64("pathloss.carrier_hz");
  budget_.pathloss.exponent = r.f64("pathloss.exponent");
  budget_.pathloss.wall_loss_db = r.f64("pathloss.wall_loss_db");
  budget_.pathloss.reference_m = r.f64("pathloss.reference_m");
  budget_.pathloss.min_distance_m = r.f64("pathloss.min_distance_m");
  budget_.noise_floor_dbm = r.f64("noise_floor_dbm");
  budget_.fcc_limit_dbm = r.f64("fcc_limit_dbm");
  budget_.shadowing_sigma_db = r.f64("shadowing_sigma_db");
  budget_.shadowing_min_distance_m = r.f64("shadowing_min_distance_m");
  snapshot::read_rng(r, "rng", rng_);
  noise_enabled_ = r.boolean("noise_enabled");
  const std::uint64_t n = r.u64("antennas");
  antennas_.clear();
  antennas_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    AntennaDesc a;
    a.name = r.str("name");
    a.position.x = r.f64("x");
    a.position.y = r.f64("y");
    a.walls = static_cast<int>(r.u64("walls"));
    a.body_loss_db = r.f64("body_loss_db");
    a.extra_loss_db = r.f64("extra_loss_db");
    antennas_.push_back(std::move(a));
  }
  pairs_.assign(n * n, PairState{});
  for (PairState& p : pairs_) {
    const bool has_override = r.boolean("override");
    const dsp::cplx og = r.cx("override_gain");
    if (has_override) {
      p.override_gain = og;
    } else {
      p.override_gain.reset();
    }
    p.extra_loss_db = r.f64("extra_loss_db");
    p.phase = r.cx("phase");
    p.shadow_db = r.f64("shadow_db");
    p.cached_gain.reset();
  }
  tx_.assign(n, dsp::SoaSamples(block_size_));
  tx_active_.assign(n, false);
  rx_.assign(n, dsp::SoaSamples(block_size_));
  rx_aos_.assign(n, dsp::Samples{});
  rx_aos_valid_.assign(n, false);
  r.end("medium");
}

double Medium::nominal_loss_db(AntennaId from, AntennaId to) const {
  const AntennaDesc& f = antennas_.at(from);
  const AntennaDesc& t = antennas_.at(to);
  const double d = distance(f.position, t.position);
  const int walls = f.walls + t.walls;
  return budget_.pathloss.air_loss_db(d, walls) + f.body_loss_db +
         t.body_loss_db + f.extra_loss_db + t.extra_loss_db +
         pair(from, to).extra_loss_db;
}

cplx Medium::gain(AntennaId from, AntennaId to) const {
  const PairState& p = pair(from, to);
  if (p.override_gain) return *p.override_gain;
  if (from == to) return cplx{};  // no implicit self-coupling
  if (!p.cached_gain) {
    const double loss_db = nominal_loss_db(from, to) + p.shadow_db;
    p.cached_gain = dsp::db_to_amplitude(-loss_db) * p.phase;
  }
  return *p.cached_gain;
}

void Medium::begin_block() {
  for (std::size_t i = 0; i < tx_.size(); ++i) {
    if (tx_active_[i]) {
      tx_[i].fill_zero();
      tx_active_[i] = false;
    }
  }
}

void Medium::set_tx(AntennaId from, dsp::SampleView samples) {
  if (samples.size() > block_size_) {
    throw std::invalid_argument("Medium::set_tx: block too large");
  }
  auto& buf = tx_.at(from);
  double* re = buf.re();
  double* im = buf.im();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    re[i] += samples[i].real();
    im[i] += samples[i].imag();
  }
  tx_active_[from] = true;
}

void Medium::set_tx(AntennaId from, dsp::SoaView samples) {
  if (samples.size() > block_size_) {
    throw std::invalid_argument("Medium::set_tx: block too large");
  }
  auto& buf = tx_.at(from);
  double* re = buf.re();
  double* im = buf.im();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    re[i] += samples.re[i];
    im[i] += samples.im[i];
  }
  tx_active_[from] = true;
}

double Medium::noise_power() const {
  return dsp::dbm_to_mw(budget_.noise_floor_dbm);
}

void Medium::mix() {
  obs::ScopedTimer obs_timer(obs::Phase::kMediumMix);
  const double n0 = noise_enabled_ ? noise_power() : 0.0;
  for (AntennaId to = 0; to < antennas_.size(); ++to) {
    auto& out = rx_[to];
    if (n0 > 0.0) {
      rng_.fill_awgn(out.view(), n0);
    } else {
      out.fill_zero();
    }
    double* ore = out.re();
    double* oim = out.im();
    for (AntennaId from = 0; from < antennas_.size(); ++from) {
      if (!tx_active_[from]) continue;
      const cplx g = gain(from, to);
      if (std::norm(g) <= 0.0) continue;
      const double gr = g.real();
      const double gi = g.imag();
      // out[i] += g * in[i] over four contiguous planes; dsp::kernels
      // dispatches to SIMD while staying bit-identical to the original
      // -fcx-limited-range expansion.
      dsp::kernels::cmac(ore, oim, tx_[from].re(), tx_[from].im(), gr, gi,
                         block_size_);
    }
    rx_aos_valid_[to] = false;
  }
}

dsp::SampleView Medium::rx(AntennaId at) const {
  dsp::Samples& aos = rx_aos_.at(at);
  if (!rx_aos_valid_.at(at)) {
    aos.resize(block_size_);
    dsp::to_aos(rx_.at(at).view(), aos);
    rx_aos_valid_[at] = true;
  }
  return aos;
}

dsp::SoaView Medium::rx_soa(AntennaId at) const { return rx_.at(at).view(); }

double Medium::rx_power(AntennaId at) const {
  const auto& x = rx_.at(at);
  const double* re = x.re();
  const double* im = x.im();
  double s = 0.0;
  for (std::size_t i = 0; i < block_size_; ++i) {
    s += re[i] * re[i] + im[i] * im[i];
  }
  return s / static_cast<double>(block_size_);
}

}  // namespace hs::channel
