// Path-loss models for the MICS-band link budget.
//
// The paper's link budget (section 6(b)) decomposes the IMD->anyone loss as
// L = L_body + L_air, with L_air shared between the co-located shield and
// IMD toward any third location (equation 7). We model L_air as free-space
// loss at 403 MHz plus a log-distance slope and a per-wall penetration
// penalty for the non-line-of-sight testbed locations of Fig. 6, and
// L_body as a fixed in-body attenuation (up to 40 dB per [47]; default 20).
#pragma once

namespace hs::channel {

struct PathLossModel {
  double carrier_hz = 403.5e6;     ///< middle of the 402-405 MHz MICS band
  double exponent = 2.0;           ///< log-distance slope
  double wall_loss_db = 8.0;       ///< penetration loss per intervening wall
  double reference_m = 1.0;        ///< reference distance for the model
  double min_distance_m = 0.02;    ///< clamp for near-field adjacency

  /// Free-space reference loss at `reference_m` (about 24.5 dB at 403 MHz).
  double reference_loss_db() const;

  /// Air path loss in dB over `distance_m` crossing `walls` walls.
  /// Clamped to be >= 0.
  double air_loss_db(double distance_m, int walls = 0) const;

  /// Wavelength in meters (~0.744 m; why MICS antennas cannot be separated
  /// by half a wavelength on a wearable, which motivates the paper).
  double wavelength_m() const;
};

/// Default in-body attenuation applied to links that cross into the body
/// (the IMD's transmissions out, and anything transmitted toward the IMD).
inline constexpr double kDefaultBodyLossDb = 20.0;

}  // namespace hs::channel
