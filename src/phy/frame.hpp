// MICS air-frame format shared by the IMD, the programmer, the shield, and
// adversaries.
//
// Layout (bytes, before FSK modulation):
//   [ preamble 4B = 0xAA.. | sync 2B = 0x2D 0xD4 | device id 10B |
//     type 1B | seq 1B | len 1B | payload 0..44B | crc16 2B ]
//
// The preamble + sync + 10-byte device serial number form the identifying
// sequence S_id the shield matches adversarial transmissions against
// (paper section 7(a): Medtronic IMDs use FSK, a known preamble, a header
// and the device's 10-byte serial number).
//
// The CRC covers device id .. payload; the IMD discards packets whose CRC
// fails, which is what makes the shield's reactive jamming effective.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "phy/bits.hpp"

namespace hs::phy {

inline constexpr std::size_t kPreambleBytes = 4;
inline constexpr std::size_t kSyncBytes = 2;
inline constexpr std::size_t kDeviceIdBytes = 10;
inline constexpr std::size_t kMaxPayloadBytes = 44;
inline constexpr std::uint8_t kPreambleByte = 0xAA;
inline constexpr std::array<std::uint8_t, kSyncBytes> kSyncWord = {0x2D, 0xD4};

using DeviceId = std::array<std::uint8_t, kDeviceIdBytes>;

struct Frame {
  DeviceId device_id{};
  std::uint8_t type = 0;
  std::uint8_t seq = 0;
  ByteVec payload;
};

/// Total over-the-air byte count for a frame with the given payload length.
std::size_t frame_total_bytes(std::size_t payload_len);

/// Total over-the-air bit count.
std::size_t frame_total_bits(std::size_t payload_len);

/// Identifying-sequence length in bits: preamble + sync + device id.
inline constexpr std::size_t kSidBits =
    (kPreambleBytes + kSyncBytes + kDeviceIdBytes) * 8;

/// Serializes a frame to over-the-air bits (preamble through CRC).
/// Throws if the payload exceeds kMaxPayloadBytes.
BitVec encode_frame(const Frame& frame);

/// The identifying sequence S_id for a device: preamble + sync + device id,
/// as bits — what the shield's active protector matches against.
BitVec make_sid(const DeviceId& id);

enum class DecodeStatus {
  kOk,
  kTooShort,        ///< not enough bits for even a header
  kBadSync,         ///< sync word mismatch beyond tolerance
  kBadLength,       ///< length field exceeds the maximum
  kTruncated,       ///< length field valid but bits end early
  kBadCrc,          ///< checksum failed (how jammed packets die at the IMD)
};

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kTooShort;
  Frame frame;                 ///< valid only when status == kOk
  std::size_t consumed_bits = 0;
  std::size_t sync_errors = 0;  ///< bit errors observed in preamble+sync
};

/// Decodes a frame from bits that start at the first preamble bit. Bit
/// errors in the preamble/sync are tolerated up to `sync_tolerance` flipped
/// bits (receivers lock on correlation, not exact match).
DecodeResult decode_frame(BitView bits, std::size_t sync_tolerance = 4);

}  // namespace hs::phy
