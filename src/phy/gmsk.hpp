// GMSK modem modelling the Vaisala RS92-AGP radiosonde cross-traffic of the
// coexistence experiment (paper section 11, Table 2). Meteorological aids
// are the primary users of the 402-405 MHz band; the shield must never jam
// them, and the coexistence bench verifies it does not.
#pragma once

#include <cstddef>

#include "dsp/types.hpp"
#include "phy/bits.hpp"

namespace hs::phy {

struct GmskParams {
  double fs = 300e3;       ///< baseband sample rate (Hz)
  std::size_t sps = 12;    ///< samples per symbol
  double bt = 0.5;         ///< Gaussian bandwidth-time product
  std::size_t span = 3;    ///< pulse-shaping span in symbols
};

/// GMSK modulator: NRZ bits -> Gaussian-filtered frequency pulses ->
/// phase integration -> unit-amplitude complex exponential.
class GmskModulator {
 public:
  explicit GmskModulator(const GmskParams& params);

  dsp::Samples modulate(BitView bits);

  void reset();
  const GmskParams& params() const { return params_; }

 private:
  GmskParams params_;
  std::vector<double> pulse_;    // gaussian frequency pulse taps
  std::vector<double> history_;  // NRZ sample history for the pulse filter
  std::size_t pos_ = 0;
  double phase_ = 0.0;
};

/// Noncoherent GMSK demodulator via differential phase detection.
class GmskDemodulator {
 public:
  explicit GmskDemodulator(const GmskParams& params);

  /// Demodulates `count` symbols starting `offset` samples into `rx`.
  /// `group_delay_symbols` accounts for the modulator's pulse delay; the
  /// default matches GmskModulator's span.
  BitVec demodulate(dsp::SampleView rx, std::size_t offset,
                    std::size_t count) const;

  const GmskParams& params() const { return params_; }

 private:
  GmskParams params_;
};

}  // namespace hs::phy
