// CRC-16/CCITT-FALSE: the checksum that gates command acceptance at the
// IMD. The paper's active defense relies on the IMD discarding any packet
// whose checksum fails after the shield's jamming flips bits (section 7).
#pragma once

#include <cstdint>

#include "phy/bits.hpp"

namespace hs::phy {

/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF, no reflection, no xorout).
std::uint16_t crc16_ccitt(ByteView data);

/// Incremental variant for streaming use.
class Crc16 {
 public:
  void update(std::uint8_t byte);
  void update(ByteView data);
  std::uint16_t value() const { return crc_; }
  void reset() { crc_ = 0xFFFF; }

 private:
  std::uint16_t crc_ = 0xFFFF;
};

}  // namespace hs::phy
