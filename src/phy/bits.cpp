#include "phy/bits.hpp"

#include <stdexcept>

namespace hs::phy {

BitVec bytes_to_bits(ByteView bytes) {
  BitVec bits;
  bits.reserve(bytes.size() * 8);
  for (std::uint8_t b : bytes) {
    for (int i = 7; i >= 0; --i) {
      bits.push_back(static_cast<std::uint8_t>((b >> i) & 1));
    }
  }
  return bits;
}

ByteVec bits_to_bytes(BitView bits) {
  if (bits.size() % 8 != 0) {
    throw std::invalid_argument("bits_to_bytes: size must be multiple of 8");
  }
  ByteVec bytes;
  bytes.reserve(bits.size() / 8);
  for (std::size_t i = 0; i < bits.size(); i += 8) {
    std::uint8_t b = 0;
    for (std::size_t j = 0; j < 8; ++j) {
      b = static_cast<std::uint8_t>((b << 1) | (bits[i + j] & 1));
    }
    bytes.push_back(b);
  }
  return bytes;
}

std::size_t hamming_distance(BitView a, BitView b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("hamming_distance: length mismatch");
  }
  std::size_t d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) d += (a[i] ^ b[i]) & 1;
  return d;
}

std::size_t hamming_distance_at(BitView stream, std::size_t offset,
                                BitView pattern) {
  if (offset + pattern.size() > stream.size()) {
    throw std::out_of_range("hamming_distance_at: window out of range");
  }
  std::size_t d = 0;
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    d += (stream[offset + i] ^ pattern[i]) & 1;
  }
  return d;
}

double bit_error_rate(BitView sent, BitView received) {
  const std::size_t n = std::min(sent.size(), received.size());
  if (n == 0) return 0.5;
  std::size_t errors = 0;
  for (std::size_t i = 0; i < n; ++i) errors += (sent[i] ^ received[i]) & 1;
  // Bits the receiver never produced count as coin flips in expectation;
  // charge them at 1/2 so truncated captures do not look artificially good.
  const std::size_t missing = sent.size() > n ? sent.size() - n : 0;
  return (static_cast<double>(errors) + 0.5 * static_cast<double>(missing)) /
         static_cast<double>(n + missing);
}

void append_uint(BitVec& bits, std::uint64_t value, std::size_t bit_count) {
  for (std::size_t i = 0; i < bit_count; ++i) {
    bits.push_back(
        static_cast<std::uint8_t>((value >> (bit_count - 1 - i)) & 1));
  }
}

std::uint64_t read_uint(BitView bits, std::size_t offset,
                        std::size_t bit_count) {
  if (offset + bit_count > bits.size()) {
    throw std::out_of_range("read_uint: out of range");
  }
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bit_count; ++i) {
    v = (v << 1) | (bits[offset + i] & 1);
  }
  return v;
}

void flip_bits(BitVec& bits, std::span<const std::size_t> positions) {
  for (std::size_t p : positions) {
    if (p < bits.size()) bits[p] ^= 1;
  }
}

}  // namespace hs::phy
