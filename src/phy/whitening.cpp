#include "phy/whitening.hpp"

namespace hs::phy {

Whitener::Whitener(std::uint16_t seed) : state_(seed & 0x1FF) {
  if (state_ == 0) state_ = 0x1FF;  // all-zero state would lock the LFSR
}

void Whitener::reset(std::uint16_t seed) {
  state_ = seed & 0x1FF;
  if (state_ == 0) state_ = 0x1FF;
}

std::uint8_t Whitener::next_bit() {
  // x^9 + x^5 + 1: output bit 0, feedback = bit0 ^ bit5.
  const std::uint8_t out = static_cast<std::uint8_t>(state_ & 1);
  const std::uint16_t fb = ((state_ >> 0) ^ (state_ >> 5)) & 1;
  state_ = static_cast<std::uint16_t>((state_ >> 1) | (fb << 8));
  return out;
}

void Whitener::apply(BitVec& bits) {
  for (auto& b : bits) b = static_cast<std::uint8_t>((b ^ next_bit()) & 1);
}

BitVec Whitener::applied(BitView bits) {
  BitVec out(bits.begin(), bits.end());
  apply(out);
  return out;
}

}  // namespace hs::phy
