// Bit-vector utilities shared by all PHY codecs.
//
// Bits travel through the PHY as one byte per bit (0 or 1), MSB-first
// relative to the byte stream, which keeps demodulator output trivially
// inspectable in tests and in the shield's identifying-sequence matcher.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace hs::phy {

using BitVec = std::vector<std::uint8_t>;  // each element is 0 or 1
using BitView = std::span<const std::uint8_t>;
using ByteVec = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Expands bytes to bits, MSB first.
BitVec bytes_to_bits(ByteView bytes);

/// Packs bits (MSB first) into bytes. `bits.size()` must be a multiple of 8.
ByteVec bits_to_bytes(BitView bits);

/// Hamming distance between two equal-length bit vectors.
std::size_t hamming_distance(BitView a, BitView b);

/// Hamming distance between `pattern` and the window of `stream` starting at
/// `offset` (both must fit).
std::size_t hamming_distance_at(BitView stream, std::size_t offset,
                                BitView pattern);

/// Bit error rate between transmitted and received bit vectors (compared up
/// to the shorter length; returns 0.5 for empty input, the "pure guessing"
/// convention used in the paper's BER plots).
double bit_error_rate(BitView sent, BitView received);

/// Appends the bits of `value`, MSB first, using `bit_count` bits.
void append_uint(BitVec& bits, std::uint64_t value, std::size_t bit_count);

/// Reads `bit_count` bits MSB-first starting at `offset`.
std::uint64_t read_uint(BitView bits, std::size_t offset,
                        std::size_t bit_count);

/// Flips `count` random-ish bit positions given by `positions` (clamped to
/// size); helper for fault-injection tests.
void flip_bits(BitVec& bits, std::span<const std::size_t> positions);

}  // namespace hs::phy
