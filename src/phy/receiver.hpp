// Streaming FSK frame receiver.
//
// All listening nodes (the IMD, the shield's monitor, eavesdroppers, the
// USRP "observer" of section 10.3) are built on this: it watches the sample
// stream for the modulated preamble+sync, locks symbol timing on the
// correlation peak, then demodulates bits until a frame completes or sync
// is abandoned.
//
// It is deliberately incremental — push() may be called with arbitrarily
// small blocks and behaves identically to one-shot processing — because the
// shield must make jam/no-jam decisions *mid-packet* (paper section 7).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dsp/types.hpp"
#include "phy/frame.hpp"
#include "phy/fsk.hpp"

namespace hs::snapshot {
class StateWriter;
class StateReader;
}  // namespace hs::snapshot

namespace hs::phy {

struct ReceivedFrame {
  DecodeResult decode;
  std::size_t start_sample = 0;  ///< absolute index of first preamble sample
  double rssi = 0.0;             ///< mean power over the frame's samples
  BitVec raw_bits;               ///< everything demodulated for this frame
};

/// Warm-state snapshot round trip for a completed frame (decode result,
/// frame contents, timing, RSSI, raw bits) — used by the receiver's
/// output queue and by nodes that retain frames across blocks.
void save_received_frame(snapshot::StateWriter& w, const ReceivedFrame& f);
ReceivedFrame load_received_frame(snapshot::StateReader& r);

struct ReceiverOptions {
  /// Normalized correlation threshold for declaring preamble detection.
  /// Must exceed ~0.75: the alternating preamble correlates at ~0.72 with
  /// a copy of itself shifted by two symbols, and accepting such an alias
  /// mis-locks the receiver (a frame at usable SNR correlates >= 0.9).
  double detect_threshold = 0.82;
  /// Preamble+sync bit errors tolerated by the frame decoder.
  std::size_t sync_tolerance = 4;
  /// Give up on a locked frame if this many bits arrive without completing
  /// a decodable frame (bounds buffering; > max frame bits).
  std::size_t max_frame_bits = 1024;
  /// A window must exceed the adaptive noise floor by this power factor to
  /// trigger a correlation sweep (cheap CCA-style gate).
  double gate_factor = 4.0;
  /// Absolute minimum window power to consider (0 disables).
  double min_gate_power = 0.0;
};

class FskReceiver {
 public:
  FskReceiver(const FskParams& params, ReceiverOptions options = {});

  /// Feeds samples; any frames completed within them are appended to the
  /// internal output queue.
  void push(dsp::SampleView samples);

  /// Split-complex overload: appends the planes directly to the internal
  /// SoA scan buffer (no interleaving). Behaviour and every decision are
  /// bit-identical to the AoS overload; Medium::rx_soa() consumers use
  /// this to keep the whole rx path in SoA layout.
  void push(dsp::SoaView samples);

  /// Pops the next completed frame, if any.
  std::optional<ReceivedFrame> pop();

  /// True while the receiver is locked onto a partially received frame.
  bool locked() const { return locked_; }

  /// Bits demodulated so far for the currently locked frame (empty when
  /// unlocked). The shield's S_id matcher consumes these as they appear.
  const BitVec& partial_bits() const { return partial_bits_; }

  /// Absolute sample index of the current lock's first preamble sample.
  std::size_t lock_start_sample() const { return lock_start_; }

  /// Total samples consumed so far.
  std::size_t sample_position() const { return total_consumed_; }

  /// Drops any partial lock and clears buffered samples.
  void reset();

  /// Warm-state snapshot round trip of the full streaming state: scan
  /// buffer planes, lock/partial-frame state, adaptive noise floor and
  /// the output queue. The correlation memo is deliberately NOT
  /// serialized — it is a pure function of the (restored) sample stream,
  /// so a restored receiver recomputes identical values and makes
  /// identical decisions. The load target must share this receiver's
  /// FskParams (modem geometry is configuration, not state).
  void save_state(snapshot::StateWriter& w) const;
  void load_state(snapshot::StateReader& r);

  const FskParams& params() const { return params_; }

 private:
  /// Compact the scan buffer once the cursor is this far in (bounds the
  /// buffer near 64 KiB during noise-only stretches).
  static constexpr std::size_t kCompactScanSamples = 4096;

  void try_detect();
  void demodulate_available();
  void finish_frame(const DecodeResult& decode);
  void drop_lock(std::size_t resume_offset);
  void compact_buffer(std::size_t keep_from);
  void scan_after_append();
  double correlation_at(std::size_t lag) const;

  FskParams params_;
  ReceiverOptions options_;
  NoncoherentFskDemod demod_;
  dsp::Samples sync_waveform_;       ///< modulated preamble+sync reference
  dsp::SoaSamples sync_soa_;         ///< split copy of the reference
  double ref_energy_ = 0.0;
  double noise_floor_ = 0.0;  ///< adaptive per-sample power floor
  bool floor_ready_ = false;

  dsp::SoaSamples buffer_;       ///< samples not yet fully consumed (SoA)
  std::size_t buffer_base_ = 0;  ///< absolute index of buffer_[0]
  /// Memo of correlation_at results keyed by absolute lag. The
  /// correlation is a pure function of the (append-only) sample stream,
  /// and consecutive detection sweeps overlap roughly half their lags
  /// during noise-floor adaptation runs, so reusing the exact values
  /// halves the receiver's dominant cost without changing a single
  /// decision. Pruned on buffer compaction.
  ///
  /// Ordering audit (determinism linter: unordered-iteration allow
  /// entry in LINT.toml): the only iteration is the erase_if prune in
  /// compact_buffer(), which removes entries by a pure key predicate
  /// (lag < buffer_base_). The surviving *set* is identical whatever
  /// order the buckets are visited in, values are never read during the
  /// sweep, and cached values are bit-identical to recomputation — so
  /// bucket order cannot reach any decision or output byte.
  mutable std::unordered_map<std::size_t, double> corr_cache_;
  std::size_t total_consumed_ = 0;
  std::size_t scan_pos_ = 0;  ///< buffer-relative scan cursor when unlocked

  bool locked_ = false;
  std::size_t lock_start_ = 0;  ///< absolute sample of preamble start
  BitVec partial_bits_;
  std::size_t next_symbol_ = 0;  ///< symbols demodulated so far in lock

  // Deque: pop() trims the front per received frame while run() appends;
  // vector::erase(begin()) made that O(frames in flight).
  std::deque<ReceivedFrame> output_;
};

}  // namespace hs::phy
