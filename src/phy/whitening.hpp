// LFSR data whitening (x^9 + x^5 + 1, 802.15.4g-style), applied to frame
// payloads to avoid long constant-tone runs that would bias FSK symbol
// timing. Self-inverse: applying twice restores the input.
#pragma once

#include <cstdint>

#include "phy/bits.hpp"

namespace hs::phy {

class Whitener {
 public:
  explicit Whitener(std::uint16_t seed = 0x1FF);

  /// XORs the LFSR sequence into the bits in place.
  void apply(BitVec& bits);

  /// Out-of-place variant.
  BitVec applied(BitView bits);

  void reset(std::uint16_t seed = 0x1FF);

 private:
  std::uint8_t next_bit();
  std::uint16_t state_;
};

}  // namespace hs::phy
