// 2-FSK modem modelling the MICS-band PHY of the Medtronic Virtuoso ICD
// and Concerto CRT: a '0' bit at tone f0 and a '1' bit at tone f1, with
// most energy near +-50 kHz of the 300 kHz channel (paper Fig. 4).
//
// Two demodulators are provided:
//  * NoncoherentFskDemod — the "optimal FSK decoder [38]" the paper's
//    eavesdropper uses: per-symbol tone matched filters, pick the larger
//    envelope. Needs no carrier phase.
//  * CoherentFskDemod — genie-phase variant used in tests as an upper
//    bound on decoding performance.
#pragma once

#include <cstddef>
#include <vector>

#include "dsp/types.hpp"
#include "phy/bits.hpp"

namespace hs::phy {

struct FskParams {
  double fs = 300e3;        ///< complex baseband sample rate (Hz)
  std::size_t sps = 12;     ///< samples per symbol (=> 25 kbaud default)
  double f0 = -50e3;        ///< tone for bit 0 (Hz)
  double f1 = +50e3;        ///< tone for bit 1 (Hz)

  double bit_rate() const { return fs / static_cast<double>(sps); }
  double symbol_duration_s() const { return static_cast<double>(sps) / fs; }

  /// Tones are orthogonal over a symbol iff their separation is an integer
  /// multiple of the symbol rate; the defaults give |f1-f0| = 4 * 25 kHz.
  bool tones_orthogonal() const;
};

/// Phase-continuous 2-FSK modulator. Amplitude 1 per sample (unit power).
class FskModulator {
 public:
  explicit FskModulator(const FskParams& params);

  /// Modulates a bit vector into sps*bits.size() samples. Phase is
  /// continuous across calls (hardware oscillators do not reset).
  dsp::Samples modulate(BitView bits);

  void reset_phase() { phase_ = 0.0; }
  const FskParams& params() const { return params_; }

  /// Oscillator phase (radians) — serialized by warm-state snapshots so a
  /// restored modulator stays phase-continuous with the saved one.
  double phase() const { return phase_; }
  void set_phase(double phase) { phase_ = phase; }

 private:
  FskParams params_;
  double phase_ = 0.0;
};

/// Convenience: one-shot modulation with fresh phase.
dsp::Samples fsk_modulate(const FskParams& params, BitView bits);

/// Optimal noncoherent 2-FSK demodulator (envelope detector per tone).
class NoncoherentFskDemod {
 public:
  explicit NoncoherentFskDemod(const FskParams& params);

  /// Demodulates `count` symbols starting at `offset` samples into `rx`.
  /// Stops early if the buffer runs out; returns the bits produced.
  BitVec demodulate(dsp::SampleView rx, std::size_t offset,
                    std::size_t count) const;

  /// Split-complex overload; bit-identical decisions and metrics.
  BitVec demodulate(dsp::SoaView rx, std::size_t offset,
                    std::size_t count) const;

  /// Demodulates one symbol; also reports the decision metric
  /// (|corr1| - |corr0|, positive => bit 1).
  std::uint8_t demod_symbol(dsp::SampleView rx, std::size_t offset,
                            double* metric = nullptr) const;

  /// Split-complex overload: the two tone correlations run over the
  /// buffer's re/im planes against pre-split tone planes (the streaming
  /// receiver's hot path). Bit-identical to the AoS overload.
  std::uint8_t demod_symbol(dsp::SoaView rx, std::size_t offset,
                            double* metric = nullptr) const;

  const FskParams& params() const { return params_; }

 private:
  FskParams params_;
  dsp::Samples tone0_;  // conjugated reference, one symbol long
  dsp::Samples tone1_;
  dsp::SoaSamples tone0_soa_;  // split copies of the references
  dsp::SoaSamples tone1_soa_;
  // Both tone references interleaved into the dsp::kernels::dual_tone_mac
  // layout (4 doubles per sample, imaginary parts pre-negated in tone_b_)
  // so the SoA demod hot path is a single packed MAC kernel call.
  std::vector<double> tone_a_;
  std::vector<double> tone_b_;
};

/// Coherent 2-FSK demodulator (uses the complex channel estimate `h` to
/// derotate before correlating; a performance upper bound).
class CoherentFskDemod {
 public:
  explicit CoherentFskDemod(const FskParams& params);

  BitVec demodulate(dsp::SampleView rx, std::size_t offset, std::size_t count,
                    dsp::cplx channel) const;

  const FskParams& params() const { return params_; }

 private:
  FskParams params_;
  dsp::Samples tone0_;
  dsp::Samples tone1_;
};

}  // namespace hs::phy
