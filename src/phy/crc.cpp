#include "phy/crc.hpp"

namespace hs::phy {

void Crc16::update(std::uint8_t byte) {
  crc_ ^= static_cast<std::uint16_t>(byte) << 8;
  for (int i = 0; i < 8; ++i) {
    if (crc_ & 0x8000) {
      crc_ = static_cast<std::uint16_t>((crc_ << 1) ^ 0x1021);
    } else {
      crc_ = static_cast<std::uint16_t>(crc_ << 1);
    }
  }
}

void Crc16::update(ByteView data) {
  for (std::uint8_t b : data) update(b);
}

std::uint16_t crc16_ccitt(ByteView data) {
  Crc16 crc;
  crc.update(data);
  return crc.value();
}

}  // namespace hs::phy
