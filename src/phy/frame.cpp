#include "phy/frame.hpp"

#include <stdexcept>

#include "phy/crc.hpp"

namespace hs::phy {
namespace {

constexpr std::size_t kHeaderBytes =
    kPreambleBytes + kSyncBytes + kDeviceIdBytes + 3;  // type, seq, len
constexpr std::size_t kCrcBytes = 2;

}  // namespace

std::size_t frame_total_bytes(std::size_t payload_len) {
  return kHeaderBytes + payload_len + kCrcBytes;
}

std::size_t frame_total_bits(std::size_t payload_len) {
  return frame_total_bytes(payload_len) * 8;
}

BitVec encode_frame(const Frame& frame) {
  if (frame.payload.size() > kMaxPayloadBytes) {
    throw std::invalid_argument("encode_frame: payload too large");
  }
  ByteVec bytes;
  bytes.reserve(frame_total_bytes(frame.payload.size()));
  for (std::size_t i = 0; i < kPreambleBytes; ++i) {
    bytes.push_back(kPreambleByte);
  }
  bytes.insert(bytes.end(), kSyncWord.begin(), kSyncWord.end());

  const std::size_t crc_start = bytes.size();
  bytes.insert(bytes.end(), frame.device_id.begin(), frame.device_id.end());
  bytes.push_back(frame.type);
  bytes.push_back(frame.seq);
  bytes.push_back(static_cast<std::uint8_t>(frame.payload.size()));
  bytes.insert(bytes.end(), frame.payload.begin(), frame.payload.end());

  const std::uint16_t crc = crc16_ccitt(
      ByteView(bytes.data() + crc_start, bytes.size() - crc_start));
  bytes.push_back(static_cast<std::uint8_t>(crc >> 8));
  bytes.push_back(static_cast<std::uint8_t>(crc & 0xFF));
  return bytes_to_bits(bytes);
}

BitVec make_sid(const DeviceId& id) {
  ByteVec bytes;
  bytes.reserve(kPreambleBytes + kSyncBytes + kDeviceIdBytes);
  for (std::size_t i = 0; i < kPreambleBytes; ++i) {
    bytes.push_back(kPreambleByte);
  }
  bytes.insert(bytes.end(), kSyncWord.begin(), kSyncWord.end());
  bytes.insert(bytes.end(), id.begin(), id.end());
  return bytes_to_bits(bytes);
}

DecodeResult decode_frame(BitView bits, std::size_t sync_tolerance) {
  DecodeResult result;
  if (bits.size() < kHeaderBytes * 8) {
    result.status = DecodeStatus::kTooShort;
    return result;
  }
  // Check preamble + sync with tolerance.
  ByteVec expected;
  for (std::size_t i = 0; i < kPreambleBytes; ++i) {
    expected.push_back(kPreambleByte);
  }
  expected.insert(expected.end(), kSyncWord.begin(), kSyncWord.end());
  const BitVec expected_bits = bytes_to_bits(expected);
  result.sync_errors =
      hamming_distance_at(bits, 0, BitView(expected_bits));
  if (result.sync_errors > sync_tolerance) {
    result.status = DecodeStatus::kBadSync;
    return result;
  }

  std::size_t offset = (kPreambleBytes + kSyncBytes) * 8;
  Frame frame;
  for (auto& b : frame.device_id) {
    b = static_cast<std::uint8_t>(read_uint(bits, offset, 8));
    offset += 8;
  }
  frame.type = static_cast<std::uint8_t>(read_uint(bits, offset, 8));
  offset += 8;
  frame.seq = static_cast<std::uint8_t>(read_uint(bits, offset, 8));
  offset += 8;
  const auto len = static_cast<std::size_t>(read_uint(bits, offset, 8));
  offset += 8;
  if (len > kMaxPayloadBytes) {
    result.status = DecodeStatus::kBadLength;
    return result;
  }
  if (bits.size() < offset + (len + kCrcBytes) * 8) {
    result.status = DecodeStatus::kTruncated;
    return result;
  }
  frame.payload.resize(len);
  for (auto& b : frame.payload) {
    b = static_cast<std::uint8_t>(read_uint(bits, offset, 8));
    offset += 8;
  }
  const auto rx_crc = static_cast<std::uint16_t>(read_uint(bits, offset, 16));
  offset += 16;

  ByteVec covered;
  covered.insert(covered.end(), frame.device_id.begin(),
                 frame.device_id.end());
  covered.push_back(frame.type);
  covered.push_back(frame.seq);
  covered.push_back(static_cast<std::uint8_t>(len));
  covered.insert(covered.end(), frame.payload.begin(), frame.payload.end());
  const std::uint16_t crc =
      crc16_ccitt(ByteView(covered.data(), covered.size()));

  result.consumed_bits = offset;
  if (crc != rx_crc) {
    result.status = DecodeStatus::kBadCrc;
    result.frame = std::move(frame);  // available for diagnostics
    return result;
  }
  result.status = DecodeStatus::kOk;
  result.frame = std::move(frame);
  return result;
}

}  // namespace hs::phy
