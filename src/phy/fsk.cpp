#include "phy/fsk.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/kernels.hpp"

namespace hs::phy {

using dsp::cplx;
using dsp::kTwoPi;
using dsp::Samples;

bool FskParams::tones_orthogonal() const {
  const double sep = std::abs(f1 - f0);
  const double sym_rate = bit_rate();
  const double k = sep / sym_rate;
  return std::abs(k - std::round(k)) < 1e-9 && k >= 1.0;
}

FskModulator::FskModulator(const FskParams& params) : params_(params) {
  if (params_.sps == 0 || params_.fs <= 0) {
    throw std::invalid_argument("FskModulator: invalid params");
  }
}

Samples FskModulator::modulate(BitView bits) {
  Samples out;
  out.reserve(bits.size() * params_.sps);
  for (std::uint8_t bit : bits) {
    const double f = bit ? params_.f1 : params_.f0;
    const double step = kTwoPi * f / params_.fs;
    for (std::size_t i = 0; i < params_.sps; ++i) {
      out.emplace_back(std::cos(phase_), std::sin(phase_));
      phase_ += step;
      if (phase_ > kTwoPi) phase_ -= kTwoPi;
      if (phase_ < -kTwoPi) phase_ += kTwoPi;
    }
  }
  return out;
}

Samples fsk_modulate(const FskParams& params, BitView bits) {
  FskModulator mod(params);
  return mod.modulate(bits);
}

namespace {

Samples make_tone_reference(double freq, const FskParams& p) {
  Samples tone(p.sps);
  for (std::size_t i = 0; i < p.sps; ++i) {
    const double phase = kTwoPi * freq / p.fs * static_cast<double>(i);
    // Stored conjugated so demod is a straight multiply-accumulate.
    tone[i] = cplx(std::cos(phase), -std::sin(phase));
  }
  return tone;
}

}  // namespace

NoncoherentFskDemod::NoncoherentFskDemod(const FskParams& params)
    : params_(params),
      tone0_(make_tone_reference(params.f0, params)),
      tone1_(make_tone_reference(params.f1, params)),
      tone0_soa_(dsp::to_soa(tone0_)),
      tone1_soa_(dsp::to_soa(tone1_)),
      tone_a_(4 * params.sps),
      tone_b_(4 * params.sps) {
  dsp::kernels::pack_dual_tones(tone0_soa_.re(), tone0_soa_.im(),
                                tone1_soa_.re(), tone1_soa_.im(), params.sps,
                                tone_a_.data(), tone_b_.data());
}

std::uint8_t NoncoherentFskDemod::demod_symbol(dsp::SampleView rx,
                                               std::size_t offset,
                                               double* metric) const {
  cplx c0{}, c1{};
  for (std::size_t i = 0; i < params_.sps; ++i) {
    const cplx x = rx[offset + i];
    c0 += x * tone0_[i];
    c1 += x * tone1_[i];
  }
  const double m = std::abs(c1) - std::abs(c0);
  if (metric != nullptr) *metric = m;
  return m > 0.0 ? 1 : 0;
}

std::uint8_t NoncoherentFskDemod::demod_symbol(dsp::SoaView rx,
                                               std::size_t offset,
                                               double* metric) const {
  // Both tone correlations in one packed MAC over the buffer planes and
  // the pre-interleaved tone planes (see dsp::kernels::pack_dual_tones);
  // bit-identical to the AoS overload's -fcx-limited-range expansion.
  const dsp::kernels::DualToneAccum acc = dsp::kernels::dual_tone_mac(
      rx.re + offset, rx.im + offset, tone_a_.data(), tone_b_.data(),
      params_.sps);
  const double m = std::abs(cplx(acc.c1_re, acc.c1_im)) -
                   std::abs(cplx(acc.c0_re, acc.c0_im));
  if (metric != nullptr) *metric = m;
  return m > 0.0 ? 1 : 0;
}

BitVec NoncoherentFskDemod::demodulate(dsp::SampleView rx, std::size_t offset,
                                       std::size_t count) const {
  BitVec bits;
  bits.reserve(count);
  for (std::size_t s = 0; s < count; ++s) {
    const std::size_t start = offset + s * params_.sps;
    if (start + params_.sps > rx.size()) break;
    bits.push_back(demod_symbol(rx, start));
  }
  return bits;
}

BitVec NoncoherentFskDemod::demodulate(dsp::SoaView rx, std::size_t offset,
                                       std::size_t count) const {
  BitVec bits;
  bits.reserve(count);
  for (std::size_t s = 0; s < count; ++s) {
    const std::size_t start = offset + s * params_.sps;
    if (start + params_.sps > rx.size()) break;
    bits.push_back(demod_symbol(rx, start));
  }
  return bits;
}

CoherentFskDemod::CoherentFskDemod(const FskParams& params)
    : params_(params),
      tone0_(make_tone_reference(params.f0, params)),
      tone1_(make_tone_reference(params.f1, params)) {}

BitVec CoherentFskDemod::demodulate(dsp::SampleView rx, std::size_t offset,
                                    std::size_t count, cplx channel) const {
  BitVec bits;
  bits.reserve(count);
  const double mag = std::abs(channel);
  const cplx derot = mag > 0 ? std::conj(channel) / mag : cplx(1.0, 0.0);
  for (std::size_t s = 0; s < count; ++s) {
    const std::size_t start = offset + s * params_.sps;
    if (start + params_.sps > rx.size()) break;
    cplx c0{}, c1{};
    for (std::size_t i = 0; i < params_.sps; ++i) {
      const cplx x = rx[start + i] * derot;
      c0 += x * tone0_[i];
      c1 += x * tone1_[i];
    }
    bits.push_back(c1.real() > c0.real() ? 1 : 0);
  }
  return bits;
}

}  // namespace hs::phy
