#include "phy/fsk.hpp"

#include <cmath>
#include <stdexcept>

namespace hs::phy {

using dsp::cplx;
using dsp::kTwoPi;
using dsp::Samples;

bool FskParams::tones_orthogonal() const {
  const double sep = std::abs(f1 - f0);
  const double sym_rate = bit_rate();
  const double k = sep / sym_rate;
  return std::abs(k - std::round(k)) < 1e-9 && k >= 1.0;
}

FskModulator::FskModulator(const FskParams& params) : params_(params) {
  if (params_.sps == 0 || params_.fs <= 0) {
    throw std::invalid_argument("FskModulator: invalid params");
  }
}

Samples FskModulator::modulate(BitView bits) {
  Samples out;
  out.reserve(bits.size() * params_.sps);
  for (std::uint8_t bit : bits) {
    const double f = bit ? params_.f1 : params_.f0;
    const double step = kTwoPi * f / params_.fs;
    for (std::size_t i = 0; i < params_.sps; ++i) {
      out.emplace_back(std::cos(phase_), std::sin(phase_));
      phase_ += step;
      if (phase_ > kTwoPi) phase_ -= kTwoPi;
      if (phase_ < -kTwoPi) phase_ += kTwoPi;
    }
  }
  return out;
}

Samples fsk_modulate(const FskParams& params, BitView bits) {
  FskModulator mod(params);
  return mod.modulate(bits);
}

namespace {

Samples make_tone_reference(double freq, const FskParams& p) {
  Samples tone(p.sps);
  for (std::size_t i = 0; i < p.sps; ++i) {
    const double phase = kTwoPi * freq / p.fs * static_cast<double>(i);
    // Stored conjugated so demod is a straight multiply-accumulate.
    tone[i] = cplx(std::cos(phase), -std::sin(phase));
  }
  return tone;
}

}  // namespace

NoncoherentFskDemod::NoncoherentFskDemod(const FskParams& params)
    : params_(params),
      tone0_(make_tone_reference(params.f0, params)),
      tone1_(make_tone_reference(params.f1, params)),
      tone0_soa_(dsp::to_soa(tone0_)),
      tone1_soa_(dsp::to_soa(tone1_)) {}

std::uint8_t NoncoherentFskDemod::demod_symbol(dsp::SampleView rx,
                                               std::size_t offset,
                                               double* metric) const {
  cplx c0{}, c1{};
  for (std::size_t i = 0; i < params_.sps; ++i) {
    const cplx x = rx[offset + i];
    c0 += x * tone0_[i];
    c1 += x * tone1_[i];
  }
  const double m = std::abs(c1) - std::abs(c0);
  if (metric != nullptr) *metric = m;
  return m > 0.0 ? 1 : 0;
}

std::uint8_t NoncoherentFskDemod::demod_symbol(dsp::SoaView rx,
                                               std::size_t offset,
                                               double* metric) const {
  const double* xr = rx.re + offset;
  const double* xi = rx.im + offset;
  const double* t0r = tone0_soa_.re();
  const double* t0i = tone0_soa_.im();
  const double* t1r = tone1_soa_.re();
  const double* t1i = tone1_soa_.im();
  // x * tone expanded exactly as -fcx-limited-range compiles the complex
  // multiply in the AoS overload; four independent accumulation chains
  // over six contiguous planes.
  double c0r = 0.0, c0i = 0.0, c1r = 0.0, c1i = 0.0;
  for (std::size_t i = 0; i < params_.sps; ++i) {
    c0r += xr[i] * t0r[i] - xi[i] * t0i[i];
    c0i += xr[i] * t0i[i] + xi[i] * t0r[i];
    c1r += xr[i] * t1r[i] - xi[i] * t1i[i];
    c1i += xr[i] * t1i[i] + xi[i] * t1r[i];
  }
  const double m = std::abs(cplx(c1r, c1i)) - std::abs(cplx(c0r, c0i));
  if (metric != nullptr) *metric = m;
  return m > 0.0 ? 1 : 0;
}

BitVec NoncoherentFskDemod::demodulate(dsp::SampleView rx, std::size_t offset,
                                       std::size_t count) const {
  BitVec bits;
  bits.reserve(count);
  for (std::size_t s = 0; s < count; ++s) {
    const std::size_t start = offset + s * params_.sps;
    if (start + params_.sps > rx.size()) break;
    bits.push_back(demod_symbol(rx, start));
  }
  return bits;
}

BitVec NoncoherentFskDemod::demodulate(dsp::SoaView rx, std::size_t offset,
                                       std::size_t count) const {
  BitVec bits;
  bits.reserve(count);
  for (std::size_t s = 0; s < count; ++s) {
    const std::size_t start = offset + s * params_.sps;
    if (start + params_.sps > rx.size()) break;
    bits.push_back(demod_symbol(rx, start));
  }
  return bits;
}

CoherentFskDemod::CoherentFskDemod(const FskParams& params)
    : params_(params),
      tone0_(make_tone_reference(params.f0, params)),
      tone1_(make_tone_reference(params.f1, params)) {}

BitVec CoherentFskDemod::demodulate(dsp::SampleView rx, std::size_t offset,
                                    std::size_t count, cplx channel) const {
  BitVec bits;
  bits.reserve(count);
  const double mag = std::abs(channel);
  const cplx derot = mag > 0 ? std::conj(channel) / mag : cplx(1.0, 0.0);
  for (std::size_t s = 0; s < count; ++s) {
    const std::size_t start = offset + s * params_.sps;
    if (start + params_.sps > rx.size()) break;
    cplx c0{}, c1{};
    for (std::size_t i = 0; i < params_.sps; ++i) {
      const cplx x = rx[start + i] * derot;
      c0 += x * tone0_[i];
      c1 += x * tone1_[i];
    }
    bits.push_back(c1.real() > c0.real() ? 1 : 0);
  }
  return bits;
}

}  // namespace hs::phy
