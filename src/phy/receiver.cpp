#include "phy/receiver.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cmath>

#include "dsp/correlate.hpp"
#include "dsp/kernels.hpp"
#include "dsp/power.hpp"
#include "obs/metrics.hpp"
#include "snapshot/state_io.hpp"

namespace hs::phy {

using dsp::cplx;
using dsp::Samples;

namespace {

/// Bits of the preamble+sync prefix every frame starts with.
BitVec sync_prefix_bits() {
  ByteVec bytes;
  for (std::size_t i = 0; i < kPreambleBytes; ++i) {
    bytes.push_back(kPreambleByte);
  }
  bytes.insert(bytes.end(), kSyncWord.begin(), kSyncWord.end());
  return bytes_to_bits(bytes);
}

constexpr std::size_t kHeaderBitsThroughLen =
    (kPreambleBytes + kSyncBytes + kDeviceIdBytes + 3) * 8;

}  // namespace

FskReceiver::FskReceiver(const FskParams& params, ReceiverOptions options)
    : params_(params), options_(options), demod_(params) {
  FskModulator mod(params_);
  sync_waveform_ = mod.modulate(sync_prefix_bits());
  sync_soa_.assign(sync_waveform_);
  ref_energy_ = 0.0;
  for (const cplx& r : sync_waveform_) ref_energy_ += std::norm(r);
}

void FskReceiver::reset() {
  buffer_.clear();
  corr_cache_.clear();
  buffer_base_ = total_consumed_;
  scan_pos_ = 0;
  locked_ = false;
  partial_bits_.clear();
  next_symbol_ = 0;
  noise_floor_ = 0.0;
  floor_ready_ = false;
}

void FskReceiver::push(dsp::SampleView samples) {
  obs::ScopedTimer obs_timer(obs::Phase::kReceiverDemod);
  // While scanning unlocked, everything before the sweep's look-back
  // window (scan_pos_ - sps) is dead; trim it periodically so long idle
  // or noise-only stretches do not grow the buffer without bound. Purely
  // an eviction — every index the scan logic can touch is preserved, so
  // results are bit-identical.
  if (!locked_ && scan_pos_ > kCompactScanSamples + params_.sps) {
    compact_buffer(scan_pos_ - params_.sps);
  }
  buffer_.append(samples);
  total_consumed_ += samples.size();
  scan_after_append();
}

void FskReceiver::push(dsp::SoaView samples) {
  obs::ScopedTimer obs_timer(obs::Phase::kReceiverDemod);
  if (!locked_ && scan_pos_ > kCompactScanSamples + params_.sps) {
    compact_buffer(scan_pos_ - params_.sps);
  }
  buffer_.append(samples);
  total_consumed_ += samples.size();
  scan_after_append();
}

void FskReceiver::scan_after_append() {
  // Alternate detection and demodulation until no further progress: a
  // single push may contain the tail of one frame and the start of another.
  for (;;) {
    const bool was_locked = locked_;
    const std::size_t before_outputs = output_.size();
    const std::size_t before_scan = scan_pos_;
    const std::size_t before_bits = partial_bits_.size();
    if (locked_) {
      demodulate_available();
    } else {
      try_detect();
    }
    const bool progressed = locked_ != was_locked ||
                            output_.size() != before_outputs ||
                            scan_pos_ != before_scan ||
                            partial_bits_.size() != before_bits;
    if (!progressed) break;
  }
}

std::optional<ReceivedFrame> FskReceiver::pop() {
  if (output_.empty()) return std::nullopt;
  ReceivedFrame f = std::move(output_.front());
  output_.pop_front();  // O(1): output_ is a deque precisely for this
  return f;
}

double FskReceiver::correlation_at(std::size_t lag) const {
  const std::size_t abs_lag = buffer_base_ + lag;
  if (const auto it = corr_cache_.find(abs_lag); it != corr_cache_.end()) {
    return it->second;
  }
  // Segmented (noncoherent) correlation: the reference is split into 6
  // segments whose partial correlations are combined by magnitude. A
  // residual carrier-frequency offset rotates the phase across the
  // reference; fully coherent correlation would collapse beyond ~130 Hz,
  // while magnitude-combining 6 segments rides out crystal-grade offsets
  // (several hundred Hz) at a negligible noise penalty.
  //
  // This is the receiver's hot loop (every power step on the medium pays a
  // full sweep of these); the segment/lane arithmetic lives in
  // dsp::kernels so it can dispatch to real vector instructions while the
  // scalar reference stays pinned bit-for-bit.
  const double corr = dsp::kernels::segmented_sync_correlation(
      buffer_.re() + lag, buffer_.im() + lag, sync_soa_.re(), sync_soa_.im(),
      sync_waveform_.size(), ref_energy_);
  corr_cache_.emplace(abs_lag, corr);
  return corr;
}

void FskReceiver::try_detect() {
  const std::size_t ref = sync_waveform_.size();
  const std::size_t sps = params_.sps;
  // Stride over the buffer one symbol at a time. A cheap adaptive power
  // gate decides whether to pay for correlation: the medium is idle (or at
  // a steady level this receiver has adapted to) most of the time, and a
  // frame announces itself with a power step.
  while (scan_pos_ + sps <= buffer_.size()) {
    // Require enough lookahead for a full correlation sweep (including the
    // alias-escape extension below) before evaluating this window at all,
    // so each window is judged exactly once (re-evaluating would
    // double-count it in the noise-floor EWMA).
    if (scan_pos_ + 8 * sps + ref > buffer_.size()) return;
    const double* bre = buffer_.re() + scan_pos_;
    const double* bim = buffer_.im() + scan_pos_;
    double win_power = 0.0;
    for (std::size_t i = 0; i < sps; ++i) {
      win_power += bre[i] * bre[i] + bim[i] * bim[i];
    }
    win_power /= static_cast<double>(sps);

    const bool candidate =
        floor_ready_ && win_power > options_.gate_factor * noise_floor_ &&
        win_power > options_.min_gate_power;

    if (!floor_ready_) {
      noise_floor_ = win_power;
      floor_ready_ = true;
    } else if (win_power < noise_floor_) {
      // Quiet windows pull the floor down immediately (minimum tracking),
      // so one loud power-on window cannot deafen the gate for long.
      noise_floor_ = win_power;
    } else {
      // Slow EWMA upward; adapts under sustained occupancy (e.g., a
      // jamming residual) so the gate re-arms for the *next* power step.
      noise_floor_ = 0.95 * noise_floor_ + 0.05 * win_power;
    }

    if (!candidate) {
      scan_pos_ += sps;
      continue;
    }
    // The rise happened within the last two symbols; sweep those lags.
    const std::size_t sweep_lo = scan_pos_ >= sps ? scan_pos_ - sps : 0;
    const std::size_t sweep_hi = scan_pos_ + sps;

    std::size_t best = sweep_lo;
    double best_corr = -1.0;
    for (std::size_t lag = sweep_lo; lag <= sweep_hi; ++lag) {
      const double c = correlation_at(lag);
      if (c > best_corr) {
        best_corr = c;
        best = lag;
      }
    }
    if (best_corr < options_.detect_threshold) {
      scan_pos_ += sps;  // false alarm; floor keeps adapting
      continue;
    }
    // Escape preamble-periodicity aliases. The phase-continuous
    // alternating preamble is exactly periodic in 2 symbols, so a copy of
    // the reference shifted 2k symbols EARLY still correlates strongly
    // (~0.83 observed). If such an alias crossed the threshold while the
    // true start lies just beyond the sweep, climbing right finds the
    // genuine (higher) peak.
    for (std::size_t lag = best + 1;
         lag <= best + 6 * sps && lag + ref <= buffer_.size(); ++lag) {
      const double c = correlation_at(lag);
      if (c > best_corr) {
        best_corr = c;
        best = lag;
      }
    }
    if (std::getenv("HS_RX_DEBUG") != nullptr) {
      std::fprintf(stderr, "LOCK at %zu corr=%.3f scan=%zu\n",
                   buffer_base_ + best, best_corr, buffer_base_ + scan_pos_);
    }
    locked_ = true;
    lock_start_ = buffer_base_ + best;
    partial_bits_.clear();
    next_symbol_ = 0;
    scan_pos_ = best;
    demodulate_available();
    return;
  }
}

void FskReceiver::demodulate_available() {
  const std::size_t sps = params_.sps;
  const std::size_t lock_rel = lock_start_ - buffer_base_;
  for (;;) {
    const std::size_t sym_start = lock_rel + next_symbol_ * sps;
    if (sym_start + sps > buffer_.size()) return;  // wait for more samples

    partial_bits_.push_back(demod_.demod_symbol(buffer_, sym_start));
    ++next_symbol_;

    if (partial_bits_.size() == kHeaderBitsThroughLen) {
      // Sanity-check sync before committing to a full frame length.
      static const BitVec prefix = sync_prefix_bits();
      const std::size_t errors =
          hamming_distance_at(partial_bits_, 0, BitView(prefix));
      if (errors > options_.sync_tolerance + 8) {
        drop_lock(2 * sps);
        return;
      }
    }
    if (partial_bits_.size() >= kHeaderBitsThroughLen) {
      const auto len = static_cast<std::size_t>(
          read_uint(partial_bits_, kHeaderBitsThroughLen - 8, 8));
      if (len > kMaxPayloadBytes) {
        // Bogus length: report what we have as a failed decode.
        finish_frame(decode_frame(partial_bits_, options_.sync_tolerance));
        return;
      }
      const std::size_t total_bits = frame_total_bits(len);
      if (partial_bits_.size() >= total_bits) {
        finish_frame(decode_frame(partial_bits_, options_.sync_tolerance));
        return;
      }
    }
    if (partial_bits_.size() > options_.max_frame_bits) {
      drop_lock(2 * sps);
      return;
    }
  }
}

void FskReceiver::finish_frame(const DecodeResult& decode) {
  ReceivedFrame out;
  out.decode = decode;
  out.start_sample = lock_start_;
  out.raw_bits = partial_bits_;
  const std::size_t lock_rel = lock_start_ - buffer_base_;
  const std::size_t frame_samples = partial_bits_.size() * params_.sps;
  out.rssi = dsp::mean_power(buffer_.view().subview(
      lock_rel, std::min(frame_samples, buffer_.size() - lock_rel)));
  output_.push_back(std::move(out));

  // Resume scanning after the decoded region.
  const std::size_t resume = lock_rel + frame_samples;
  locked_ = false;
  partial_bits_.clear();
  next_symbol_ = 0;
  scan_pos_ = resume;
  compact_buffer(resume);
}

void FskReceiver::drop_lock(std::size_t resume_offset) {
  const std::size_t lock_rel = lock_start_ - buffer_base_;
  locked_ = false;
  partial_bits_.clear();
  next_symbol_ = 0;
  scan_pos_ = lock_rel + resume_offset;
  compact_buffer(scan_pos_);
}

void FskReceiver::compact_buffer(std::size_t keep_from) {
  if (keep_from == 0) return;
  const std::size_t drop = std::min(keep_from, buffer_.size());
  buffer_.erase_front(drop);
  buffer_base_ += drop;
  scan_pos_ = (scan_pos_ >= drop) ? scan_pos_ - drop : 0;
  // Unordered iteration is deliberate and safe here (LINT.toml
  // unordered-iteration allow entry): the predicate depends only on the
  // key, so the pruned set — and every later lookup — is independent of
  // bucket visit order. See the audit note on corr_cache_'s declaration.
  std::erase_if(corr_cache_, [this](const auto& entry) {
    return entry.first < buffer_base_;
  });
}

void save_received_frame(snapshot::StateWriter& w, const ReceivedFrame& f) {
  w.begin("frame");
  w.u64("status", static_cast<std::uint64_t>(f.decode.status));
  w.bytes("device_id", f.decode.frame.device_id.data(),
          f.decode.frame.device_id.size());
  w.u64("type", f.decode.frame.type);
  w.u64("seq", f.decode.frame.seq);
  w.bytes("payload", f.decode.frame.payload);
  w.u64("consumed_bits", f.decode.consumed_bits);
  w.u64("sync_errors", f.decode.sync_errors);
  w.u64("start_sample", f.start_sample);
  w.f64("rssi", f.rssi);
  w.bytes("raw_bits", f.raw_bits);
  w.end("frame");
}

ReceivedFrame load_received_frame(snapshot::StateReader& r) {
  ReceivedFrame f;
  r.begin("frame");
  const std::uint64_t status = r.u64("status");
  if (status > static_cast<std::uint64_t>(DecodeStatus::kBadCrc)) {
    throw snapshot::SnapshotError("snapshot: unknown decode status " +
                                  std::to_string(status));
  }
  f.decode.status = static_cast<DecodeStatus>(status);
  const auto& id = r.bytes("device_id");
  if (id.size() != f.decode.frame.device_id.size()) {
    throw snapshot::SnapshotError("snapshot: device id length mismatch");
  }
  std::copy(id.begin(), id.end(), f.decode.frame.device_id.begin());
  f.decode.frame.type = static_cast<std::uint8_t>(r.u64("type"));
  f.decode.frame.seq = static_cast<std::uint8_t>(r.u64("seq"));
  f.decode.frame.payload = r.bytes("payload");
  f.decode.consumed_bits = r.u64("consumed_bits");
  f.decode.sync_errors = r.u64("sync_errors");
  f.start_sample = r.u64("start_sample");
  f.rssi = r.f64("rssi");
  f.raw_bits = r.bytes("raw_bits");
  r.end("frame");
  return f;
}

void FskReceiver::save_state(snapshot::StateWriter& w) const {
  w.begin("fsk-receiver");
  // Modem geometry, pinned so a snapshot can never restore into a
  // receiver built for a different PHY.
  w.f64("fs", params_.fs);
  w.u64("sps", params_.sps);
  w.f64("noise_floor", noise_floor_);
  w.boolean("floor_ready", floor_ready_);
  w.soa("buffer", buffer_.view());
  w.u64("buffer_base", buffer_base_);
  w.u64("total_consumed", total_consumed_);
  w.u64("scan_pos", scan_pos_);
  w.boolean("locked", locked_);
  w.u64("lock_start", lock_start_);
  w.bytes("partial_bits", partial_bits_);
  w.u64("next_symbol", next_symbol_);
  w.u64("output", output_.size());
  for (const ReceivedFrame& f : output_) save_received_frame(w, f);
  w.end("fsk-receiver");
}

void FskReceiver::load_state(snapshot::StateReader& r) {
  r.begin("fsk-receiver");
  if (r.f64("fs") != params_.fs || r.u64("sps") != params_.sps) {
    throw snapshot::SnapshotError(
        "snapshot: FSK receiver modem geometry mismatch");
  }
  noise_floor_ = r.f64("noise_floor");
  floor_ready_ = r.boolean("floor_ready");
  r.soa("buffer", buffer_);
  buffer_base_ = r.u64("buffer_base");
  total_consumed_ = r.u64("total_consumed");
  scan_pos_ = r.u64("scan_pos");
  locked_ = r.boolean("locked");
  lock_start_ = r.u64("lock_start");
  partial_bits_ = r.bytes("partial_bits");
  next_symbol_ = r.u64("next_symbol");
  const std::uint64_t frames = r.u64("output");
  output_.clear();
  for (std::uint64_t i = 0; i < frames; ++i) {
    output_.push_back(load_received_frame(r));
  }
  // The memo holds values for lags of the *previous* stream; they would
  // be stale (and the restored stream recomputes its own exactly).
  corr_cache_.clear();
  r.end("fsk-receiver");
}

}  // namespace hs::phy
