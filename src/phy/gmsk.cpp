#include "phy/gmsk.hpp"

#include <cmath>

#include "dsp/fir.hpp"

namespace hs::phy {

using dsp::cplx;
using dsp::kPi;
using dsp::Samples;

GmskModulator::GmskModulator(const GmskParams& params)
    : params_(params),
      pulse_(dsp::design_gaussian(params.bt, params.sps, params.span)) {
  history_.assign(pulse_.size(), 0.0);
}

void GmskModulator::reset() {
  history_.assign(pulse_.size(), 0.0);
  pos_ = 0;
  phase_ = 0.0;
}

Samples GmskModulator::modulate(BitView bits) {
  Samples out;
  out.reserve(bits.size() * params_.sps);
  // MSK modulation index h = 0.5: each symbol advances phase by +-pi/2,
  // smoothed by the Gaussian frequency pulse.
  const double phase_per_sample = kPi / 2.0 / static_cast<double>(params_.sps);
  for (std::uint8_t bit : bits) {
    const double nrz = bit ? 1.0 : -1.0;
    for (std::size_t i = 0; i < params_.sps; ++i) {
      // Push the NRZ value through the Gaussian pulse filter.
      history_[pos_] = nrz;
      double freq = 0.0;
      std::size_t idx = pos_;
      for (std::size_t k = 0; k < pulse_.size(); ++k) {
        freq += pulse_[k] * history_[idx];
        idx = (idx == 0) ? history_.size() - 1 : idx - 1;
      }
      pos_ = (pos_ + 1) % history_.size();
      phase_ += freq * phase_per_sample;
      out.emplace_back(std::cos(phase_), std::sin(phase_));
    }
  }
  return out;
}

GmskDemodulator::GmskDemodulator(const GmskParams& params) : params_(params) {}

BitVec GmskDemodulator::demodulate(dsp::SampleView rx, std::size_t offset,
                                   std::size_t count) const {
  BitVec bits;
  bits.reserve(count);
  const std::size_t sps = params_.sps;
  // Group delay of the Gaussian pulse: half its span.
  const std::size_t delay = params_.span * sps / 2;
  for (std::size_t s = 0; s < count; ++s) {
    const std::size_t a = offset + delay + s * sps;
    const std::size_t b = a + sps;
    if (b >= rx.size()) break;
    // Net phase advance over the symbol: positive => bit 1.
    const cplx rot = rx[b] * std::conj(rx[a]);
    bits.push_back(std::arg(rot) > 0.0 ? 1 : 0);
  }
  return bits;
}

}  // namespace hs::phy
