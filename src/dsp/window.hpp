// Window functions for FIR design and spectral estimation.
#pragma once

#include <cstddef>
#include <vector>

namespace hs::dsp {

enum class WindowType {
  kRectangular,
  kHann,
  kHamming,
  kBlackman,
};

/// Returns the n-point window of the given type (symmetric form).
std::vector<double> make_window(WindowType type, std::size_t n);

/// Sum of squared window coefficients; normalizes Welch PSD estimates.
double window_power(const std::vector<double>& w);

}  // namespace hs::dsp
