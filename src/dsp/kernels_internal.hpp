// Internal glue between the kernel dispatch (kernels.cpp) and the
// per-ISA translation units (kernels_sse2.cpp, kernels_avx2.cpp). Each ISA
// TU is compiled with exactly its target flag plus -ffp-contract=off and
// returns nullptr when the build could not enable that ISA, so dispatch
// degrades gracefully on non-x86 hosts and conservative toolchains.
#pragma once

#include "dsp/kernels.hpp"

namespace hs::dsp::kernels {

/// SSE2 table, or nullptr when this build has no SSE2 code paths.
const KernelTable* sse2_kernel_table();

/// AVX2 table, or nullptr when this build has no AVX2 code paths.
const KernelTable* avx2_kernel_table();

}  // namespace hs::dsp::kernels
