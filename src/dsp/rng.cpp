#include "dsp/rng.hpp"

#include <cmath>
#include <cstdlib>

namespace hs::dsp {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t hash_stream_name(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : name) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng::Rng(std::uint64_t seed, std::string_view stream_name)
    : Rng(seed ^ hash_stream_name(stream_name)) {}

std::uint64_t derive_seed(std::uint64_t seed, std::string_view stream_name) {
  return Rng(seed, stream_name).next_u64();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 top bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_u64(std::uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = n * ((~std::uint64_t{0}) / n);
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % n;
}

namespace {

// Marsaglia-Tsang ziggurat tables for the standard normal (128 layers).
// The common case is one 64-bit draw, one table compare and one multiply
// — roughly 6x faster than Box-Muller's log/sqrt/sincos per sample, which
// matters because thermal noise (Medium::mix -> fill_awgn) is drawn for
// every antenna of every simulated block.
struct ZigguratTables {
  static constexpr double kR = 3.442619855899;  // start of the tail
  std::int64_t kn[128];
  double wn[128];
  double fn[128];

  ZigguratTables() {
    constexpr double m = 2147483648.0;  // 2^31, the |hz| scale
    const double vn = 9.91256303526217e-3;
    double dn = kR, tn = kR;
    const double q = vn / std::exp(-0.5 * dn * dn);
    kn[0] = static_cast<std::int64_t>((dn / q) * m);
    kn[1] = 0;
    wn[0] = q / m;
    wn[127] = dn / m;
    fn[0] = 1.0;
    fn[127] = std::exp(-0.5 * dn * dn);
    for (int i = 126; i >= 1; --i) {
      dn = std::sqrt(-2.0 * std::log(vn / dn + std::exp(-0.5 * dn * dn)));
      kn[i + 1] = static_cast<std::int64_t>((dn / tn) * m);
      tn = dn;
      fn[i] = std::exp(-0.5 * dn * dn);
      wn[i] = dn / m;
    }
  }
};

const ZigguratTables& ziggurat() {
  static const ZigguratTables tables;
  return tables;
}

}  // namespace

double Rng::gaussian() {
  const ZigguratTables& z = ziggurat();
  for (;;) {
    const auto hz = static_cast<std::int32_t>(next_u64());
    const std::size_t iz = static_cast<std::uint32_t>(hz) & 127u;
    if (std::abs(static_cast<std::int64_t>(hz)) < z.kn[iz]) {
      return hz * z.wn[iz];  // inside the layer rectangle: accept
    }
    if (iz == 0) {
      // Tail beyond kR (Marsaglia's exact tail method).
      double x, y;
      do {
        x = -std::log(1.0 - uniform()) / ZigguratTables::kR;
        y = -std::log(1.0 - uniform());
      } while (y + y < x * x);
      return hz > 0 ? ZigguratTables::kR + x : -ZigguratTables::kR - x;
    }
    // Wedge: exact accept/reject against the density.
    const double x = hz * z.wn[iz];
    if (z.fn[iz] + uniform() * (z.fn[iz - 1] - z.fn[iz]) <
        std::exp(-0.5 * x * x)) {
      return x;
    }
  }
}

double Rng::gaussian(double mean, double stddev) {
  return mean + stddev * gaussian();
}

cplx Rng::cgaussian(double variance) {
  const double s = std::sqrt(variance / 2.0);
  return {s * gaussian(), s * gaussian()};
}

cplx Rng::random_phase() {
  const double phi = uniform(0.0, kTwoPi);
  return {std::cos(phi), std::sin(phi)};
}

// The fill loops below are the batched ziggurat: gaussian() is defined in
// this TU, so the compiler inlines it here and hoists the table pointer
// and the per-sample amplitude out of the loop — the common accept path
// collapses to draw/mask/compare/multiply per variate. The rare
// wedge/tail rejections run the identical code `gaussian()` runs, so a
// fill consumes exactly the same stream draws as the equivalent sequence
// of scalar calls.

void Rng::fill_awgn(MutSampleView out, double power) {
  const double s = std::sqrt(power / 2.0);
  for (auto& x : out) x = {s * gaussian(), s * gaussian()};
}

void Rng::fill_awgn(MutSoaView out, double power) {
  const double s = std::sqrt(power / 2.0);
  double* re = out.re;
  double* im = out.im;
  for (std::size_t i = 0; i < out.n; ++i) {
    re[i] = s * gaussian();
    im[i] = s * gaussian();
  }
}

bool Rng::bernoulli(double p) { return uniform() < p; }

}  // namespace hs::dsp
