#include "dsp/rng.hpp"

#include <cmath>

namespace hs::dsp {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t hash_stream_name(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : name) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng::Rng(std::uint64_t seed, std::string_view stream_name)
    : Rng(seed ^ hash_stream_name(stream_name)) {}

std::uint64_t derive_seed(std::uint64_t seed, std::string_view stream_name) {
  return Rng(seed, stream_name).next_u64();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 top bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_u64(std::uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = n * ((~std::uint64_t{0}) / n);
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % n;
}

double Rng::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 strictly in (0,1] to keep log() finite.
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = r * std::sin(kTwoPi * u2);
  has_cached_gaussian_ = true;
  return r * std::cos(kTwoPi * u2);
}

double Rng::gaussian(double mean, double stddev) {
  return mean + stddev * gaussian();
}

cplx Rng::cgaussian(double variance) {
  const double s = std::sqrt(variance / 2.0);
  return {s * gaussian(), s * gaussian()};
}

cplx Rng::random_phase() {
  const double phi = uniform(0.0, kTwoPi);
  return {std::cos(phi), std::sin(phi)};
}

void Rng::fill_awgn(MutSampleView out, double power) {
  for (auto& x : out) x = cgaussian(power);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

}  // namespace hs::dsp
