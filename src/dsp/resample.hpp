// Integer-factor decimation and interpolation with anti-alias filtering.
// The MICS channelizer decimates the 3 MHz wideband stream by 10 to obtain
// per-channel 300 kHz baseband, and interpolates by 10 on the way back up.
#pragma once

#include <cstddef>

#include "dsp/fir.hpp"
#include "dsp/types.hpp"

namespace hs::dsp {

/// Streaming decimator: anti-alias lowpass followed by keep-every-Mth.
class Decimator {
 public:
  /// `factor` >= 1; `taps` odd count for the anti-alias filter.
  Decimator(std::size_t factor, std::size_t taps = 101);

  /// Consumes a block; appends decimated output samples to `out`.
  void process(SampleView in, Samples& out);
  Samples process(SampleView in);

  /// Split-complex block path, appending to `out`: the whole block runs
  /// through the FIR's SoA convolution, then every Mth output is kept,
  /// continuing the streaming decimation phase. Bit-identical to
  /// per-sample process() (the FIR block path is; keeping every Mth
  /// commutes). `in` must not view `out`.
  void process(SoaView in, SoaSamples& out);

  std::size_t factor() const { return factor_; }
  void reset();

 private:
  std::size_t factor_;
  FirFilter filter_;
  std::size_t phase_ = 0;
  SoaSamples filtered_;  // block-path scratch
};

/// Streaming interpolator: zero-stuff by L then image-reject lowpass
/// (gain L to preserve amplitude).
class Interpolator {
 public:
  Interpolator(std::size_t factor, std::size_t taps = 101);

  void process(SampleView in, Samples& out);
  Samples process(SampleView in);

  /// Split-complex block path, appending factor()*in.size() samples to
  /// `out`: zero-stuffs into a scratch plane pair, then runs the FIR's
  /// SoA convolution — the same sample sequence the scalar loop feeds,
  /// so output and filter state are bit-identical. `in` must not view
  /// `out`.
  void process(SoaView in, SoaSamples& out);

  std::size_t factor() const { return factor_; }
  void reset();

 private:
  std::size_t factor_;
  FirFilter filter_;
  SoaSamples stuffed_;  // block-path scratch
};

}  // namespace hs::dsp
