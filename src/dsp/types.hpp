// Core numeric types shared by every DSP and PHY module.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace hs::dsp {

/// Complex baseband sample. Double precision: the antidote-cancellation
/// experiments measure power ratios down to -40 dB, where float rounding
/// noise would contaminate the result.
using cplx = std::complex<double>;

/// A contiguous run of complex baseband samples.
using Samples = std::vector<cplx>;

/// Read-only view over samples (preferred for function parameters).
using SampleView = std::span<const cplx>;

/// Mutable view over samples.
using MutSampleView = std::span<cplx>;

inline constexpr double kPi = 3.141592653589793238462643383279502884;
inline constexpr double kTwoPi = 2.0 * kPi;

}  // namespace hs::dsp
