// Core numeric types shared by every DSP and PHY module.
//
// Two sample-buffer layouts coexist:
//  * AoS (`Samples` = vector<complex<double>>) — the interchange format
//    every public API accepts, and what the FFT operates on.
//  * SoA (`SoaSamples` = separate re[]/im[] planes) — the hot-path format.
//    Split-complex planes let the compiler autovectorize the inner loops
//    of channel mixing, correlation, FIR filtering and mixing across
//    contiguous doubles instead of shuffling interleaved re/im pairs.
// Every SoA fast path in the dsp layer is *sample-exact* against its AoS
// scalar reference: the split arithmetic uses the same naive
// complex-multiply formula `-fcx-limited-range` compiles the AoS code to,
// in the same accumulation order, so adopting a SoA path never changes a
// result bit.
#pragma once

#include <algorithm>
#include <cassert>
#include <complex>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace hs::dsp {

/// Complex baseband sample. Double precision: the antidote-cancellation
/// experiments measure power ratios down to -40 dB, where float rounding
/// noise would contaminate the result.
using cplx = std::complex<double>;

/// A contiguous run of complex baseband samples.
using Samples = std::vector<cplx>;

/// Read-only view over samples (preferred for function parameters).
using SampleView = std::span<const cplx>;

/// Mutable view over samples.
using MutSampleView = std::span<cplx>;

inline constexpr double kPi = 3.141592653589793238462643383279502884;
inline constexpr double kTwoPi = 2.0 * kPi;

/// Read-only view over a split-complex (SoA) sample run: two parallel
/// planes of equal length holding the real and imaginary parts.
struct SoaView {
  const double* re = nullptr;
  const double* im = nullptr;
  std::size_t n = 0;

  std::size_t size() const { return n; }
  bool empty() const { return n == 0; }
  cplx operator[](std::size_t i) const { return {re[i], im[i]}; }

  /// Subrange [offset, offset + count).
  SoaView subview(std::size_t offset, std::size_t count) const {
    assert(offset + count <= n);
    return {re + offset, im + offset, count};
  }
};

/// Mutable view over a split-complex sample run.
struct MutSoaView {
  double* re = nullptr;
  double* im = nullptr;
  std::size_t n = 0;

  std::size_t size() const { return n; }
  bool empty() const { return n == 0; }
  cplx operator[](std::size_t i) const { return {re[i], im[i]}; }
  void set(std::size_t i, cplx v) {
    re[i] = v.real();
    im[i] = v.imag();
  }

  operator SoaView() const { return {re, im, n}; }
  MutSoaView subview(std::size_t offset, std::size_t count) const {
    assert(offset + count <= n);
    return {re + offset, im + offset, count};
  }
};

/// Owning split-complex sample buffer: `re()[i] + j*im()[i]` is sample i.
/// The planes always have identical length.
class SoaSamples {
 public:
  SoaSamples() = default;
  explicit SoaSamples(std::size_t n) : re_(n, 0.0), im_(n, 0.0) {}

  std::size_t size() const { return re_.size(); }
  bool empty() const { return re_.empty(); }
  void clear() {
    re_.clear();
    im_.clear();
  }
  void resize(std::size_t n) {
    re_.resize(n, 0.0);
    im_.resize(n, 0.0);
  }
  void reserve(std::size_t n) {
    re_.reserve(n);
    im_.reserve(n);
  }
  void fill_zero() {
    std::fill(re_.begin(), re_.end(), 0.0);
    std::fill(im_.begin(), im_.end(), 0.0);
  }

  double* re() { return re_.data(); }
  double* im() { return im_.data(); }
  const double* re() const { return re_.data(); }
  const double* im() const { return im_.data(); }

  cplx operator[](std::size_t i) const { return {re_[i], im_[i]}; }
  void set(std::size_t i, cplx v) {
    re_[i] = v.real();
    im_[i] = v.imag();
  }

  SoaView view() const { return {re_.data(), im_.data(), re_.size()}; }
  MutSoaView view() { return {re_.data(), im_.data(), re_.size()}; }
  operator SoaView() const { return view(); }

  /// Replaces the contents with a deinterleaved copy of `aos`.
  void assign(SampleView aos) {
    resize(aos.size());
    for (std::size_t i = 0; i < aos.size(); ++i) {
      re_[i] = aos[i].real();
      im_[i] = aos[i].imag();
    }
  }

  /// Replaces the contents with a copy of another SoA run (plane memcpy).
  void assign(SoaView soa) {
    re_.assign(soa.re, soa.re + soa.n);
    im_.assign(soa.im, soa.im + soa.n);
  }

  /// Appends a deinterleaved copy of `aos`.
  void append(SampleView aos) {
    const std::size_t base = re_.size();
    resize(base + aos.size());
    for (std::size_t i = 0; i < aos.size(); ++i) {
      re_[base + i] = aos[i].real();
      im_[base + i] = aos[i].imag();
    }
  }

  /// Appends a copy of another SoA run (plane-wise, no format conversion).
  void append(SoaView soa) {
    re_.insert(re_.end(), soa.re, soa.re + soa.n);
    im_.insert(im_.end(), soa.im, soa.im + soa.n);
  }

  /// Drops the first `count` samples (receiver-style buffer compaction).
  void erase_front(std::size_t count) {
    re_.erase(re_.begin(), re_.begin() + static_cast<long>(count));
    im_.erase(im_.begin(), im_.begin() + static_cast<long>(count));
  }

 private:
  std::vector<double> re_;
  std::vector<double> im_;
};

/// True if two SoA views share any plane storage (re-vs-re or im-vs-im).
/// Debug-contract helper for block paths whose output may reallocate:
/// such paths require non-aliasing input. Uses std::less for a total
/// pointer order across allocations.
inline bool soa_views_overlap(SoaView a, SoaView b) {
  if (a.n == 0 || b.n == 0) return false;
  const std::less<const double*> lt;
  const bool re_disjoint = !lt(a.re, b.re + b.n) || !lt(b.re, a.re + a.n);
  const bool im_disjoint = !lt(a.im, b.im + b.n) || !lt(b.im, a.im + a.n);
  return !(re_disjoint && im_disjoint);
}

/// Interleaves a SoA run into `out` (sizes must match).
inline void to_aos(SoaView in, MutSampleView out) {
  assert(in.size() == out.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = {in.re[i], in.im[i]};
  }
}

/// Interleaves a SoA run into a fresh AoS vector.
inline Samples to_aos(SoaView in) {
  Samples out(in.size());
  to_aos(in, out);
  return out;
}

/// Deinterleaves an AoS run into `out` (sizes must match).
inline void to_soa(SampleView in, MutSoaView out) {
  assert(in.size() == out.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out.re[i] = in[i].real();
    out.im[i] = in[i].imag();
  }
}

/// Deinterleaves an AoS run into a fresh SoA buffer.
inline SoaSamples to_soa(SampleView in) {
  SoaSamples out;
  out.assign(in);
  return out;
}

}  // namespace hs::dsp
