// Kernel dispatch and the pinned scalar reference implementations.
//
// The scalar bodies below are the contract: they reproduce, operation for
// operation, the loops that used to live inline at the call sites, and the
// SIMD backends must match them bit for bit (see kernels.hpp). This file
// is compiled with -ffp-contract=off (CMakeLists.txt pins it for every
// kernels* TU) so no build flavor can fuse the multiplies and adds into
// FMAs and silently change the reference.

#include "dsp/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "dsp/kernels_internal.hpp"

namespace hs::dsp::kernels {
namespace {

// ---- scalar reference ----------------------------------------------------

double segcorr_scalar(const double* sig_re, const double* sig_im,
                      const double* ref_re, const double* ref_im,
                      std::size_t ref_len, double ref_energy) {
  // Mirrors the original FskReceiver::correlation_at loop: 6 segments
  // combined by magnitude (rides out carrier-frequency offset), each
  // running 4 independent accumulator lanes with the tail folded into
  // lane 0 and the lanes reduced pairwise.
  constexpr std::size_t kSegments = 6;
  constexpr std::size_t kLanes = 4;
  const std::size_t seg = ref_len / kSegments;
  double acc_mag = 0.0;
  double sig_energy = 0.0;
  for (std::size_t s = 0; s < kSegments; ++s) {
    const std::size_t from = s * seg;
    const std::size_t to = (s + 1 == kSegments) ? ref_len : from + seg;
    double acc_re[kLanes] = {};
    double acc_im[kLanes] = {};
    double energy[kLanes] = {};
    std::size_t i = from;
    for (; i + kLanes <= to; i += kLanes) {
      for (std::size_t l = 0; l < kLanes; ++l) {
        const double br = sig_re[i + l];
        const double bi = sig_im[i + l];
        const double rr = ref_re[i + l];
        const double ri = ref_im[i + l];
        // b * conj(r)
        acc_re[l] += br * rr + bi * ri;
        acc_im[l] += bi * rr - br * ri;
        energy[l] += br * br + bi * bi;
      }
    }
    for (; i < to; ++i) {
      const double br = sig_re[i];
      const double bi = sig_im[i];
      acc_re[0] += br * ref_re[i] + bi * ref_im[i];
      acc_im[0] += bi * ref_re[i] - br * ref_im[i];
      energy[0] += br * br + bi * bi;
    }
    const double re = (acc_re[0] + acc_re[1]) + (acc_re[2] + acc_re[3]);
    const double im = (acc_im[0] + acc_im[1]) + (acc_im[2] + acc_im[3]);
    acc_mag += std::sqrt(re * re + im * im);
    sig_energy += (energy[0] + energy[1]) + (energy[2] + energy[3]);
  }
  return acc_mag / std::sqrt(std::max(sig_energy * ref_energy, 1e-30));
}

DualToneAccum dual_tone_scalar(const double* x_re, const double* x_im,
                               const double* tone_a, const double* tone_b,
                               std::size_t n) {
  // Four independent accumulation chains, one per packed lane. With the
  // tone_b plane holding the pre-negated imaginary parts, lane 0 computes
  // xr*t0r + xi*(-t0i), which is bit-equal to the original loop's
  // xr*t0r - xi*t0i (IEEE-754: x*(-y) == -(x*y) and a + (-b) == a - b).
  DualToneAccum acc;
  for (std::size_t i = 0; i < n; ++i) {
    const double xr = x_re[i];
    const double xi = x_im[i];
    const double* a = tone_a + 4 * i;
    const double* b = tone_b + 4 * i;
    acc.c0_re += xr * a[0] + xi * b[0];
    acc.c0_im += xr * a[1] + xi * b[1];
    acc.c1_re += xr * a[2] + xi * b[2];
    acc.c1_im += xr * a[3] + xi * b[3];
  }
  return acc;
}

void cmac_scalar(double* out_re, double* out_im, const double* in_re,
                 const double* in_im, double gr, double gi, std::size_t n) {
  // out[i] += g * in[i], expanded exactly as -fcx-limited-range compiles
  // the complex form (the original Medium::mix plane loop).
  for (std::size_t i = 0; i < n; ++i) {
    out_re[i] += gr * in_re[i] - gi * in_im[i];
    out_im[i] += gr * in_im[i] + gi * in_re[i];
  }
}

void fir_real_scalar(const double* taps, std::size_t t, const double* x_re,
                     const double* x_im, double* out_re, double* out_im,
                     std::size_t m) {
  const std::size_t hist = t - 1;
  for (std::size_t i = 0; i < m; ++i) {
    double ar = 0.0, ai = 0.0;
    for (std::size_t k = 0; k < t; ++k) {
      ar += taps[k] * x_re[hist + i - k];
      ai += taps[k] * x_im[hist + i - k];
    }
    out_re[i] = ar;
    out_im[i] = ai;
  }
}

void fir_cplx_scalar(const double* tap_re, const double* tap_im,
                     std::size_t t, const double* x_re, const double* x_im,
                     double* out_re, double* out_im, std::size_t m) {
  const std::size_t hist = t - 1;
  for (std::size_t i = 0; i < m; ++i) {
    double ar = 0.0, ai = 0.0;
    for (std::size_t k = 0; k < t; ++k) {
      const double vr = x_re[hist + i - k];
      const double vi = x_im[hist + i - k];
      ar += tap_re[k] * vr - tap_im[k] * vi;
      ai += tap_re[k] * vi + tap_im[k] * vr;
    }
    out_re[i] = ar;
    out_im[i] = ai;
  }
}

const KernelTable kScalarTable = {
    &segcorr_scalar, &dual_tone_scalar, &cmac_scalar, &fir_real_scalar,
    &fir_cplx_scalar,
};

// ---- runtime dispatch ----------------------------------------------------

bool cpu_can_run(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return true;
    case Backend::kSse2:
#if defined(__x86_64__)
      return true;  // SSE2 is the x86-64 baseline
#elif defined(__i386__)
      return __builtin_cpu_supports("sse2");
#else
      return false;
#endif
    case Backend::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
  }
  return false;
}

struct Dispatch {
  const KernelTable* table = &kScalarTable;
  Backend backend = Backend::kScalar;
};

bool backend_from_name(const char* name, Backend* out) {
  if (std::strcmp(name, "scalar") == 0) *out = Backend::kScalar;
  else if (std::strcmp(name, "sse2") == 0) *out = Backend::kSse2;
  else if (std::strcmp(name, "avx2") == 0) *out = Backend::kAvx2;
  else return false;
  return true;
}

Dispatch init_dispatch() {
  Dispatch d;
  Backend want = best_supported_backend();
  // Perf A/B escape hatch only: every backend is bit-exact against the
  // scalar reference, so this can change speed but never a result byte.
  if (const char* env = std::getenv("HS_KERNELS")) {
    Backend forced;
    if (backend_from_name(env, &forced) && backend_table(forced) != nullptr) {
      want = forced;
    }
  }
  d.table = backend_table(want);
  d.backend = want;
  return d;
}

Dispatch& dispatch() {
  static Dispatch d = init_dispatch();  // magic static: thread-safe init
  return d;
}

}  // namespace

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kSse2:
      return "sse2";
    case Backend::kAvx2:
      return "avx2";
  }
  return "unknown";
}

const KernelTable* backend_table(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return &kScalarTable;
    case Backend::kSse2:
      return cpu_can_run(b) ? sse2_kernel_table() : nullptr;
    case Backend::kAvx2:
      return cpu_can_run(b) ? avx2_kernel_table() : nullptr;
  }
  return nullptr;
}

Backend best_supported_backend() {
  if (backend_table(Backend::kAvx2) != nullptr) return Backend::kAvx2;
  if (backend_table(Backend::kSse2) != nullptr) return Backend::kSse2;
  return Backend::kScalar;
}

Backend active_backend() { return dispatch().backend; }

bool set_backend(Backend b) {
  const KernelTable* table = backend_table(b);
  if (table == nullptr) return false;
  dispatch().table = table;
  dispatch().backend = b;
  return true;
}

void pack_dual_tones(const double* t0_re, const double* t0_im,
                     const double* t1_re, const double* t1_im, std::size_t n,
                     double* tone_a, double* tone_b) {
  for (std::size_t i = 0; i < n; ++i) {
    tone_a[4 * i + 0] = t0_re[i];
    tone_a[4 * i + 1] = t0_im[i];
    tone_a[4 * i + 2] = t1_re[i];
    tone_a[4 * i + 3] = t1_im[i];
    tone_b[4 * i + 0] = -t0_im[i];
    tone_b[4 * i + 1] = t0_re[i];
    tone_b[4 * i + 2] = -t1_im[i];
    tone_b[4 * i + 3] = t1_re[i];
  }
}

double segmented_sync_correlation(const double* sig_re, const double* sig_im,
                                  const double* ref_re, const double* ref_im,
                                  std::size_t ref_len, double ref_energy) {
  return dispatch().table->segmented_sync_correlation(
      sig_re, sig_im, ref_re, ref_im, ref_len, ref_energy);
}

DualToneAccum dual_tone_mac(const double* x_re, const double* x_im,
                            const double* tone_a, const double* tone_b,
                            std::size_t n) {
  return dispatch().table->dual_tone_mac(x_re, x_im, tone_a, tone_b, n);
}

void cmac(double* out_re, double* out_im, const double* in_re,
          const double* in_im, double gr, double gi, std::size_t n) {
  dispatch().table->cmac(out_re, out_im, in_re, in_im, gr, gi, n);
}

void fir_block_real(const double* taps, std::size_t t, const double* x_re,
                    const double* x_im, double* out_re, double* out_im,
                    std::size_t m) {
  dispatch().table->fir_block_real(taps, t, x_re, x_im, out_re, out_im, m);
}

void fir_block_cplx(const double* tap_re, const double* tap_im,
                    std::size_t t, const double* x_re, const double* x_im,
                    double* out_re, double* out_im, std::size_t m) {
  dispatch().table->fir_block_cplx(tap_re, tap_im, t, x_re, x_im, out_re,
                                   out_im, m);
}

}  // namespace hs::dsp::kernels
