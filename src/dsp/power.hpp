// Power measurement: block averages and streaming RSSI with a sliding
// window. The shield's clear-channel assessment, P_thresh alarm and
// calibration routines are all built on these meters.
#pragma once

#include <cstddef>
#include <deque>

#include "dsp/types.hpp"

namespace hs::dsp {

/// Mean per-sample power of a block (|x|^2 averaged).
double mean_power(SampleView x);

/// Split-complex overload; bit-identical to the AoS result.
double mean_power(SoaView x);

/// Peak per-sample power of a block.
double peak_power(SampleView x);

/// Total energy (sum |x|^2).
double energy(SampleView x);

/// Split-complex overload; bit-identical to the AoS result.
double energy(SoaView x);

/// Scales `x` in place so its mean power equals `target_power`.
/// No-op on all-zero input.
void set_mean_power(MutSampleView x, double target_power);

/// Streaming sliding-window RSSI meter.
class RssiMeter {
 public:
  /// `window` is the averaging length in samples.
  explicit RssiMeter(std::size_t window);

  /// Consumes one sample, returns current windowed mean power.
  double push(cplx x);

  /// Consumes a block, returns the final windowed mean power.
  double push(SampleView x);

  /// Split-complex overload; bit-identical to the AoS push.
  double push(SoaView x);

  /// Current windowed mean power (0 before any sample).
  double value() const;

  /// True once a full window has been observed.
  bool warmed_up() const { return count_ >= window_; }

  void reset();

 private:
  std::size_t window_;
  std::deque<double> buf_;
  double sum_ = 0.0;
  std::size_t count_ = 0;
};

}  // namespace hs::dsp
