#include "dsp/fft.hpp"

#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <utility>

namespace hs::dsp {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

namespace {

// Per-size cache of forward twiddle factors w[k] = exp(-i 2 pi k / n),
// k in [0, n/2). Each factor is computed directly by std::polar, so it is
// accurate to ~1 ulp regardless of n — unlike the previous per-butterfly
// `w *= wlen` recurrence, whose phase error grows with the number of
// multiplies (O(n * eps) by the last stage) exactly where the jamming
// profile and cancellation benches measure -40 dB features.
//
// The cache is shared by all threads: campaign workers transform
// concurrently, so the map is mutex-guarded. Entries are never evicted and
// their storage never moves, so the returned reference stays valid for the
// program's lifetime while later insertions proceed.
struct TwiddleTable {
  std::size_t n = 0;
  std::vector<cplx> w;  // forward twiddles, size n/2

  explicit TwiddleTable(std::size_t size) : n(size), w(size / 2) {
    for (std::size_t k = 0; k < w.size(); ++k) {
      w[k] = std::polar(1.0, -kTwoPi * static_cast<double>(k) /
                                 static_cast<double>(n));
    }
  }
};

const TwiddleTable& twiddles_for(std::size_t n) {
  // Each worker thread transforms at one or two fixed sizes (jamgen
  // fft_size, equalizer taps), so a thread-local memo of the last table
  // keeps the steady state lock-free; the mutex is only taken when a
  // thread first meets a size. Entries are never deleted, so the cached
  // pointer can never dangle.
  thread_local const TwiddleTable* last = nullptr;
  if (last != nullptr && last->n == n) return *last;
  static std::mutex mu;
  static std::map<std::size_t, std::unique_ptr<const TwiddleTable>> cache;
  std::lock_guard<std::mutex> lock(mu);
  auto& slot = cache[n];
  if (!slot) slot = std::make_unique<const TwiddleTable>(n);
  last = slot.get();
  return *slot;
}

void transform(MutSampleView data, bool inverse) {
  const std::size_t n = data.size();
  if (!is_pow2(n)) {
    throw std::invalid_argument("fft: size must be a power of two");
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  if (n < 2) return;
  // Butterflies, twiddles read from the cached table: the stage of length
  // `len` uses every (n/len)-th entry. The inverse transform conjugates on
  // the fly (one negation per butterfly, cheaper than a second table).
  const TwiddleTable& table = twiddles_for(n);
  const cplx* tw = table.w.data();
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t stride = n / len;
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cplx wk = tw[k * stride];
        const cplx w = inverse ? std::conj(wk) : wk;
        const cplx u = data[i + k];
        const cplx v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
      }
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& x : data) x *= inv_n;
  }
}

}  // namespace

void fft_inplace(MutSampleView data) { transform(data, /*inverse=*/false); }

void ifft_inplace(MutSampleView data) { transform(data, /*inverse=*/true); }

Samples fft(SampleView input) {
  Samples out(input.begin(), input.end());
  out.resize(next_pow2(out.empty() ? 1 : out.size()));
  fft_inplace(out);
  return out;
}

Samples ifft(SampleView input) {
  if (!is_pow2(input.size())) {
    // Padding a *spectrum* would silently rescale and re-grid the signal,
    // which is how the old pad-anything behavior corrupted
    // ifft(fft(x)) round-trips for non-power-of-two x. A non-2^k bin
    // vector is a caller bug, not something to paper over.
    throw std::invalid_argument(
        "ifft: bin count must be a power of two (fft() zero-pads its "
        "time-domain input, so spectra are always 2^k bins)");
  }
  Samples out(input.begin(), input.end());
  ifft_inplace(out);
  return out;
}

Samples fftshift(SampleView input) {
  const std::size_t n = input.size();
  Samples out(n);
  const std::size_t half = (n + 1) / 2;  // first half moves to the back
  for (std::size_t i = 0; i < n; ++i) out[i] = input[(i + half) % n];
  return out;
}

Samples ifftshift(SampleView input) {
  const std::size_t n = input.size();
  Samples out(n);
  const std::size_t half = n / 2;
  for (std::size_t i = 0; i < n; ++i) out[i] = input[(i + half) % n];
  return out;
}

double bin_frequency(std::size_t k, std::size_t n, double fs) {
  const double f = static_cast<double>(k) * fs / static_cast<double>(n);
  return (k < (n + 1) / 2) ? f : f - fs;
}

std::size_t frequency_bin(double freq_hz, std::size_t n, double fs) {
  double f = freq_hz;
  if (f < 0) f += fs;
  auto k = static_cast<long long>(std::llround(f * static_cast<double>(n) / fs));
  if (k < 0) k = 0;
  if (k >= static_cast<long long>(n)) k = static_cast<long long>(n) - 1;
  return static_cast<std::size_t>(k);
}

}  // namespace hs::dsp
