#include "dsp/fft.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace hs::dsp {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

namespace {

void transform(MutSampleView data, bool inverse) {
  const std::size_t n = data.size();
  if (!is_pow2(n)) {
    throw std::invalid_argument("fft: size must be a power of two");
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = (inverse ? kTwoPi : -kTwoPi) / static_cast<double>(len);
    const cplx wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      cplx w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cplx u = data[i + k];
        const cplx v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& x : data) x *= inv_n;
  }
}

}  // namespace

void fft_inplace(MutSampleView data) { transform(data, /*inverse=*/false); }

void ifft_inplace(MutSampleView data) { transform(data, /*inverse=*/true); }

Samples fft(SampleView input) {
  Samples out(input.begin(), input.end());
  out.resize(next_pow2(out.empty() ? 1 : out.size()));
  fft_inplace(out);
  return out;
}

Samples ifft(SampleView input) {
  Samples out(input.begin(), input.end());
  out.resize(next_pow2(out.empty() ? 1 : out.size()));
  ifft_inplace(out);
  return out;
}

Samples fftshift(SampleView input) {
  const std::size_t n = input.size();
  Samples out(n);
  const std::size_t half = (n + 1) / 2;  // first half moves to the back
  for (std::size_t i = 0; i < n; ++i) out[i] = input[(i + half) % n];
  return out;
}

Samples ifftshift(SampleView input) {
  const std::size_t n = input.size();
  Samples out(n);
  const std::size_t half = n / 2;
  for (std::size_t i = 0; i < n; ++i) out[i] = input[(i + half) % n];
  return out;
}

double bin_frequency(std::size_t k, std::size_t n, double fs) {
  const double f = static_cast<double>(k) * fs / static_cast<double>(n);
  return (k < (n + 1) / 2) ? f : f - fs;
}

std::size_t frequency_bin(double freq_hz, std::size_t n, double fs) {
  double f = freq_hz;
  if (f < 0) f += fs;
  auto k = static_cast<long long>(std::llround(f * static_cast<double>(n) / fs));
  if (k < 0) k = 0;
  if (k >= static_cast<long long>(n)) k = static_cast<long long>(n) - 1;
  return static_cast<std::size_t>(k);
}

}  // namespace hs::dsp
