#include "dsp/fir.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "dsp/kernels.hpp"
#include "dsp/window.hpp"
#include "snapshot/state_io.hpp"

namespace hs::dsp {
namespace {

double sinc(double x) {
  if (std::abs(x) < 1e-12) return 1.0;
  return std::sin(kPi * x) / (kPi * x);
}

}  // namespace

std::vector<double> design_lowpass(double normalized_cutoff,
                                   std::size_t taps) {
  // NaN fails every ordered comparison, so test for the valid range and
  // negate — a NaN cutoff (e.g. 0.0/0.0 upstream) must not slip through.
  if (!(normalized_cutoff > 0.0 && normalized_cutoff < 0.5)) {
    throw std::invalid_argument("design_lowpass: cutoff must be in (0, 0.5)");
  }
  if (taps % 2 == 0) {
    throw std::invalid_argument("design_lowpass: tap count must be odd");
  }
  const auto w = make_window(WindowType::kHamming, taps);
  std::vector<double> h(taps);
  const double m = static_cast<double>(taps - 1) / 2.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < taps; ++i) {
    const double t = static_cast<double>(i) - m;
    h[i] = 2.0 * normalized_cutoff * sinc(2.0 * normalized_cutoff * t) * w[i];
    sum += h[i];
  }
  // Normalize to unit DC gain.
  for (auto& v : h) v /= sum;
  return h;
}

Samples design_bandpass(double center_hz, double half_width_hz, double fs,
                        std::size_t taps) {
  // Validate here rather than relying on design_lowpass: fs <= 0 (or NaN)
  // would turn half_width_hz/fs into a nonsense cutoff with an error
  // message pointing at the wrong function.
  if (!(fs > 0.0)) {
    throw std::invalid_argument("design_bandpass: fs must be positive");
  }
  if (!(half_width_hz > 0.0)) {
    throw std::invalid_argument(
        "design_bandpass: half_width_hz must be positive");
  }
  const auto lp = design_lowpass(half_width_hz / fs, taps);
  Samples h(taps);
  const double m = static_cast<double>(taps - 1) / 2.0;
  for (std::size_t i = 0; i < taps; ++i) {
    const double phase =
        kTwoPi * center_hz / fs * (static_cast<double>(i) - m);
    h[i] = lp[i] * cplx(std::cos(phase), std::sin(phase));
  }
  return h;
}

std::vector<double> design_gaussian(double bt, std::size_t sps,
                                    std::size_t span_symbols) {
  if (bt <= 0.0 || sps == 0 || span_symbols == 0) {
    throw std::invalid_argument("design_gaussian: invalid parameters");
  }
  const std::size_t n = sps * span_symbols + 1;
  std::vector<double> h(n);
  // Standard GMSK Gaussian shaping: h(t) ~ exp(-2 pi^2 bt^2 t^2 / ln 2),
  // t in symbol units.
  const double alpha = 2.0 * kPi * kPi * bt * bt / std::log(2.0);
  const double m = static_cast<double>(n - 1) / 2.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = (static_cast<double>(i) - m) / static_cast<double>(sps);
    h[i] = std::exp(-alpha * t * t);
    sum += h[i];
  }
  for (auto& v : h) v /= sum;
  return h;
}

FirFilter::FirFilter(std::vector<double> taps) : taps_(std::move(taps)) {
  if (taps_.empty()) throw std::invalid_argument("FirFilter: empty taps");
  history_.assign(taps_.size(), cplx{});
}

cplx FirFilter::process(cplx x) {
  history_[pos_] = x;
  cplx acc{};
  std::size_t idx = pos_;
  for (std::size_t k = 0; k < taps_.size(); ++k) {
    acc += taps_[k] * history_[idx];
    idx = (idx == 0) ? history_.size() - 1 : idx - 1;
  }
  pos_ = (pos_ + 1) % history_.size();
  return acc;
}

void FirFilter::process(SampleView in, Samples& out) {
  out.reserve(out.size() + in.size());
  for (cplx x : in) out.push_back(process(x));
}

Samples FirFilter::process(SampleView in) {
  Samples out;
  process(in, out);
  return out;
}

void FirFilter::process(SoaView in, SoaSamples& out) {
  // `in` must not view `out`: the resize below may reallocate the planes.
  assert(!soa_views_overlap(in, out.view()));
  const std::size_t t = taps_.size();
  const std::size_t m = in.size();
  if (m == 0) return;
  const std::size_t hist = t - 1;
  // Contiguous split-plane window: the last t-1 samples in chronological
  // order followed by the new block. out[i] is then the tap dot-product
  // against ext[hist + i - k], k ascending — the same newest-first order
  // (and therefore the same rounding) as the per-sample path, but over
  // plane loads the vectorizer can work with.
  ext_re_.resize(hist + m);
  ext_im_.resize(hist + m);
  for (std::size_t j = 0; j < hist; ++j) {
    const cplx& h = history_[(pos_ + t - 1 - j) % t];
    ext_re_[hist - 1 - j] = h.real();
    ext_im_[hist - 1 - j] = h.imag();
  }
  std::copy(in.re, in.re + m, ext_re_.begin() + static_cast<long>(hist));
  std::copy(in.im, in.im + m, ext_im_.begin() + static_cast<long>(hist));

  const std::size_t base = out.size();
  out.resize(base + m);
  double* ore = out.re() + base;
  double* oim = out.im() + base;
  const double* xr = ext_re_.data();
  const double* xi = ext_im_.data();
  kernels::fir_block_real(taps_.data(), t, xr, xi, ore, oim, m);
  // Streaming-state writeback, identical to what m scalar calls leave.
  // Values come from the ext_ scratch (which holds the whole block and
  // cannot dangle) rather than `in`, belt-and-braces against callers
  // that violate the no-aliasing contract.
  for (std::size_t i = m - std::min(t, m); i < m; ++i) {
    history_[(pos_ + i) % t] = {xr[hist + i], xi[hist + i]};
  }
  pos_ = (pos_ + m) % t;
}

void FirFilter::reset() {
  history_.assign(taps_.size(), cplx{});
  pos_ = 0;
}

namespace {

void save_fir_state(snapshot::StateWriter& w, std::size_t taps,
                    const Samples& history, std::size_t pos) {
  w.begin("fir");
  w.u64("taps", taps);
  w.u64("pos", pos);
  w.samples("history", history);
  w.end("fir");
}

void load_fir_state(snapshot::StateReader& r, std::size_t taps,
                    Samples& history, std::size_t& pos) {
  r.begin("fir");
  const std::uint64_t saved_taps = r.u64("taps");
  if (saved_taps != taps) {
    throw snapshot::SnapshotError(
        "snapshot: FIR tap count mismatch (saved " +
        std::to_string(saved_taps) + ", target " + std::to_string(taps) +
        ")");
  }
  pos = r.u64("pos");
  history = r.samples("history");
  if (history.size() != taps || pos >= taps) {
    throw snapshot::SnapshotError("snapshot: FIR history shape invalid");
  }
  r.end("fir");
}

}  // namespace

void FirFilter::save_state(snapshot::StateWriter& w) const {
  save_fir_state(w, taps_.size(), history_, pos_);
}

void FirFilter::load_state(snapshot::StateReader& r) {
  load_fir_state(r, taps_.size(), history_, pos_);
}

ComplexFirFilter::ComplexFirFilter(Samples taps) : taps_(std::move(taps)) {
  if (taps_.empty()) {
    throw std::invalid_argument("ComplexFirFilter: empty taps");
  }
  history_.assign(taps_.size(), cplx{});
  tap_re_.resize(taps_.size());
  tap_im_.resize(taps_.size());
  for (std::size_t k = 0; k < taps_.size(); ++k) {
    tap_re_[k] = taps_[k].real();
    tap_im_[k] = taps_[k].imag();
  }
}

cplx ComplexFirFilter::process(cplx x) {
  history_[pos_] = x;
  cplx acc{};
  std::size_t idx = pos_;
  for (std::size_t k = 0; k < taps_.size(); ++k) {
    acc += taps_[k] * history_[idx];
    idx = (idx == 0) ? history_.size() - 1 : idx - 1;
  }
  pos_ = (pos_ + 1) % history_.size();
  return acc;
}

void ComplexFirFilter::process(SampleView in, Samples& out) {
  out.reserve(out.size() + in.size());
  for (cplx x : in) out.push_back(process(x));
}

Samples ComplexFirFilter::process(SampleView in) {
  Samples out;
  process(in, out);
  return out;
}

void ComplexFirFilter::process(SoaView in, SoaSamples& out) {
  // `in` must not view `out`: the resize below may reallocate the planes.
  assert(!soa_views_overlap(in, out.view()));
  const std::size_t t = taps_.size();
  const std::size_t m = in.size();
  if (m == 0) return;
  const std::size_t hist = t - 1;
  ext_re_.resize(hist + m);
  ext_im_.resize(hist + m);
  for (std::size_t j = 0; j < hist; ++j) {
    const cplx& h = history_[(pos_ + t - 1 - j) % t];
    ext_re_[hist - 1 - j] = h.real();
    ext_im_[hist - 1 - j] = h.imag();
  }
  std::copy(in.re, in.re + m, ext_re_.begin() + static_cast<long>(hist));
  std::copy(in.im, in.im + m, ext_im_.begin() + static_cast<long>(hist));

  const std::size_t base = out.size();
  out.resize(base + m);
  double* ore = out.re() + base;
  double* oim = out.im() + base;
  const double* xr = ext_re_.data();
  const double* xi = ext_im_.data();
  kernels::fir_block_cplx(tap_re_.data(), tap_im_.data(), t, xr, xi, ore,
                          oim, m);
  for (std::size_t i = m - std::min(t, m); i < m; ++i) {
    history_[(pos_ + i) % t] = {xr[hist + i], xi[hist + i]};
  }
  pos_ = (pos_ + m) % t;
}

void ComplexFirFilter::reset() {
  history_.assign(taps_.size(), cplx{});
  pos_ = 0;
}

void ComplexFirFilter::save_state(snapshot::StateWriter& w) const {
  save_fir_state(w, taps_.size(), history_, pos_);
}

void ComplexFirFilter::load_state(snapshot::StateReader& r) {
  load_fir_state(r, taps_.size(), history_, pos_);
}

double fir_power_response(const std::vector<double>& taps, double freq_hz,
                          double fs) {
  cplx acc{};
  for (std::size_t i = 0; i < taps.size(); ++i) {
    const double phase = -kTwoPi * freq_hz / fs * static_cast<double>(i);
    acc += taps[i] * cplx(std::cos(phase), std::sin(phase));
  }
  return std::norm(acc);
}

}  // namespace hs::dsp
