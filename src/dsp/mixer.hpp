// Phase-continuous complex mixing (frequency shifting) and carrier
// frequency offset (CFO) modelling.
//
// The shield "compensates for any carrier frequency offset between its RF
// chain and that of the IMD" (paper section 6(a)); the Mixer and the CFO
// estimator below provide that machinery, and the MICS channelizer uses the
// Mixer to move 300 kHz channels to and from the 3 MHz wideband view.
#pragma once

#include <cstddef>

#include "dsp/types.hpp"

namespace hs::dsp {

/// Streaming frequency shifter: multiplies by exp(j*2*pi*f/fs*n) with phase
/// continuity across blocks.
class Mixer {
 public:
  Mixer(double shift_hz, double fs);

  cplx process(cplx x);
  void process(SampleView in, Samples& out);
  Samples process(SampleView in);

  /// Split-complex block path, appending to `out`. The oscillator phase
  /// recurrence and the multiply expansion match the per-sample path, so
  /// output and phase state are bit-identical to scalar process() calls.
  /// `in` must not view `out` (growing `out` may reallocate its planes).
  void process(SoaView in, SoaSamples& out);

  /// Retunes the oscillator without resetting phase.
  void set_shift(double shift_hz);

  double shift_hz() const { return shift_hz_; }

  void reset_phase() { phase_ = 0.0; }

 private:
  double shift_hz_;
  double fs_;
  double phase_ = 0.0;       // radians
  double phase_step_ = 0.0;  // radians/sample
};

/// Applies a static CFO of `offset_hz` to a copy of the signal.
Samples apply_cfo(SampleView in, double offset_hz, double fs);

/// Data-aided CFO estimate: given received = cfo(reference) * h, estimates
/// the frequency offset in Hz by the phase slope of received .* conj(ref).
/// Accurate within +-fs/(2*span) of zero. Returns 0 on degenerate input.
double estimate_cfo(SampleView received, SampleView reference, double fs);

}  // namespace hs::dsp
