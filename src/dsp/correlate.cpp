#include "dsp/correlate.hpp"

#include <cmath>

namespace hs::dsp {

Samples cross_correlate(SampleView signal, SampleView reference) {
  if (signal.size() < reference.size() || reference.empty()) return {};
  const std::size_t lags = signal.size() - reference.size() + 1;
  Samples out(lags);
  for (std::size_t k = 0; k < lags; ++k) {
    cplx acc{};
    for (std::size_t i = 0; i < reference.size(); ++i) {
      acc += signal[k + i] * std::conj(reference[i]);
    }
    out[k] = acc;
  }
  return out;
}

std::vector<double> normalized_correlation(SampleView signal,
                                           SampleView reference) {
  if (signal.size() < reference.size() || reference.empty()) return {};
  const std::size_t lags = signal.size() - reference.size() + 1;
  double ref_energy = 0.0;
  for (cplx r : reference) ref_energy += std::norm(r);
  if (ref_energy <= 0.0) return std::vector<double>(lags, 0.0);

  // Running local energy of the signal window.
  double win_energy = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    win_energy += std::norm(signal[i]);
  }
  std::vector<double> out(lags);
  for (std::size_t k = 0; k < lags; ++k) {
    cplx acc{};
    for (std::size_t i = 0; i < reference.size(); ++i) {
      acc += signal[k + i] * std::conj(reference[i]);
    }
    const double denom = std::sqrt(ref_energy * std::max(win_energy, 1e-30));
    out[k] = std::abs(acc) / denom;
    if (k + 1 < lags) {
      win_energy += std::norm(signal[k + reference.size()]);
      win_energy -= std::norm(signal[k]);
    }
  }
  return out;
}

CorrelationPeak find_peak(SampleView signal, SampleView reference) {
  CorrelationPeak peak;
  const auto mags = normalized_correlation(signal, reference);
  if (mags.empty()) return peak;
  for (std::size_t k = 0; k < mags.size(); ++k) {
    if (mags[k] > peak.magnitude) {
      peak.magnitude = mags[k];
      peak.lag = k;
    }
  }
  cplx acc{};
  for (std::size_t i = 0; i < reference.size(); ++i) {
    acc += signal[peak.lag + i] * std::conj(reference[i]);
  }
  peak.value = acc;
  return peak;
}

cplx estimate_flat_channel(SampleView received, SampleView reference) {
  cplx num{};
  double denom = 0.0;
  const std::size_t n = std::min(received.size(), reference.size());
  for (std::size_t i = 0; i < n; ++i) {
    num += received[i] * std::conj(reference[i]);
    denom += std::norm(reference[i]);
  }
  if (denom <= 0.0) return {};
  return num / denom;
}

}  // namespace hs::dsp
