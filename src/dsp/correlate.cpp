#include "dsp/correlate.hpp"

#include <cmath>

namespace hs::dsp {
namespace {

/// acc = sum_i a[i] * conj(b[i]) over split planes. The expansion
/// (ar*br + ai*bi, ai*br - ar*bi) and the sequential accumulation order
/// match what -fcx-limited-range compiles the AoS loop to, so AoS and SoA
/// callers get bit-identical sums; the independent re/im chains and the
/// contiguous plane loads are what the vectorizer works with.
inline cplx dot_conj(const double* ar, const double* ai, const double* br,
                     const double* bi, std::size_t n) {
  double acc_re = 0.0;
  double acc_im = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc_re += ar[i] * br[i] + ai[i] * bi[i];
    acc_im += ai[i] * br[i] - ar[i] * bi[i];
  }
  return {acc_re, acc_im};
}

inline double plane_energy(const double* re, const double* im,
                           std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += re[i] * re[i] + im[i] * im[i];
  return s;
}

}  // namespace

Samples cross_correlate(SampleView signal, SampleView reference) {
  if (signal.size() < reference.size() || reference.empty()) return {};
  const std::size_t lags = signal.size() - reference.size() + 1;
  Samples out(lags);
  for (std::size_t k = 0; k < lags; ++k) {
    cplx acc{};
    for (std::size_t i = 0; i < reference.size(); ++i) {
      acc += signal[k + i] * std::conj(reference[i]);
    }
    out[k] = acc;
  }
  return out;
}

std::vector<double> normalized_correlation(SampleView signal,
                                           SampleView reference) {
  if (signal.size() < reference.size() || reference.empty()) return {};
  const std::size_t lags = signal.size() - reference.size() + 1;
  double ref_energy = 0.0;
  for (cplx r : reference) ref_energy += std::norm(r);
  if (ref_energy <= 0.0) return std::vector<double>(lags, 0.0);

  // Running local energy of the signal window. The O(1) sliding update
  // (+= entering sample, -= leaving sample) accumulates rounding error
  // without bound on long high-dynamic-range signals — after a loud burst
  // the residual can dwarf a quiet tail's true energy and even go
  // negative (masked into the 1e-30 floor, collapsing the denominator).
  // Recomputing the window exactly every reference.size() lags bounds the
  // drift to one window's worth of updates. The SoA overload below uses
  // the same cadence and accumulation order, keeping the two overloads
  // bit-identical.
  double win_energy = 0.0;
  std::vector<double> out(lags);
  for (std::size_t k = 0; k < lags; ++k) {
    if (k % reference.size() == 0) {
      win_energy = 0.0;
      for (std::size_t i = 0; i < reference.size(); ++i) {
        win_energy += std::norm(signal[k + i]);
      }
    }
    cplx acc{};
    for (std::size_t i = 0; i < reference.size(); ++i) {
      acc += signal[k + i] * std::conj(reference[i]);
    }
    const double denom = std::sqrt(ref_energy * std::max(win_energy, 1e-30));
    out[k] = std::abs(acc) / denom;
    if (k + 1 < lags && (k + 1) % reference.size() != 0) {
      win_energy += std::norm(signal[k + reference.size()]);
      win_energy -= std::norm(signal[k]);
    }
  }
  return out;
}

Samples cross_correlate(SoaView signal, SoaView reference) {
  if (signal.size() < reference.size() || reference.empty()) return {};
  const std::size_t lags = signal.size() - reference.size() + 1;
  Samples out(lags);
  for (std::size_t k = 0; k < lags; ++k) {
    out[k] = dot_conj(signal.re + k, signal.im + k, reference.re,
                      reference.im, reference.size());
  }
  return out;
}

std::vector<double> normalized_correlation(SoaView signal,
                                           SoaView reference) {
  if (signal.size() < reference.size() || reference.empty()) return {};
  const std::size_t lags = signal.size() - reference.size() + 1;
  const double ref_energy =
      plane_energy(reference.re, reference.im, reference.size());
  if (ref_energy <= 0.0) return std::vector<double>(lags, 0.0);

  // Same periodic exact recompute cadence as the AoS overload above (see
  // the drift note there); plane_energy accumulates in the same order as
  // std::norm over the AoS samples, so the overloads stay bit-identical.
  double win_energy = 0.0;
  std::vector<double> out(lags);
  for (std::size_t k = 0; k < lags; ++k) {
    if (k % reference.size() == 0) {
      win_energy =
          plane_energy(signal.re + k, signal.im + k, reference.size());
    }
    const cplx acc = dot_conj(signal.re + k, signal.im + k, reference.re,
                              reference.im, reference.size());
    const double denom = std::sqrt(ref_energy * std::max(win_energy, 1e-30));
    out[k] = std::abs(acc) / denom;
    if (k + 1 < lags && (k + 1) % reference.size() != 0) {
      const std::size_t next = k + reference.size();
      win_energy +=
          signal.re[next] * signal.re[next] + signal.im[next] * signal.im[next];
      win_energy -=
          signal.re[k] * signal.re[k] + signal.im[k] * signal.im[k];
    }
  }
  return out;
}

CorrelationPeak find_peak(SampleView signal, SampleView reference) {
  CorrelationPeak peak;
  const auto mags = normalized_correlation(signal, reference);
  if (mags.empty()) return peak;
  for (std::size_t k = 0; k < mags.size(); ++k) {
    if (mags[k] > peak.magnitude) {
      peak.magnitude = mags[k];
      peak.lag = k;
    }
  }
  cplx acc{};
  for (std::size_t i = 0; i < reference.size(); ++i) {
    acc += signal[peak.lag + i] * std::conj(reference[i]);
  }
  peak.value = acc;
  return peak;
}

cplx estimate_flat_channel(SampleView received, SampleView reference) {
  cplx num{};
  double denom = 0.0;
  const std::size_t n = std::min(received.size(), reference.size());
  for (std::size_t i = 0; i < n; ++i) {
    num += received[i] * std::conj(reference[i]);
    denom += std::norm(reference[i]);
  }
  if (denom <= 0.0) return {};
  return num / denom;
}

cplx estimate_flat_channel(SoaView received, SoaView reference) {
  const std::size_t n = std::min(received.size(), reference.size());
  const cplx num =
      dot_conj(received.re, received.im, reference.re, reference.im, n);
  const double denom = plane_energy(reference.re, reference.im, n);
  if (denom <= 0.0) return {};
  return num / denom;
}

}  // namespace hs::dsp
