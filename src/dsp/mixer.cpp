#include "dsp/mixer.hpp"

#include <cassert>
#include <cmath>

namespace hs::dsp {

Mixer::Mixer(double shift_hz, double fs) : shift_hz_(shift_hz), fs_(fs) {
  phase_step_ = kTwoPi * shift_hz_ / fs_;
}

cplx Mixer::process(cplx x) {
  const cplx osc(std::cos(phase_), std::sin(phase_));
  phase_ += phase_step_;
  // Keep phase bounded for numeric stability over long runs.
  if (phase_ > kTwoPi) phase_ -= kTwoPi;
  if (phase_ < -kTwoPi) phase_ += kTwoPi;
  return x * osc;
}

void Mixer::process(SampleView in, Samples& out) {
  out.reserve(out.size() + in.size());
  for (cplx x : in) out.push_back(process(x));
}

Samples Mixer::process(SampleView in) {
  Samples out;
  process(in, out);
  return out;
}

void Mixer::process(SoaView in, SoaSamples& out) {
  // `in` must not view `out`: the resize below may reallocate the planes.
  assert(!soa_views_overlap(in, out.view()));
  const std::size_t base = out.size();
  out.resize(base + in.size());
  double* ore = out.re() + base;
  double* oim = out.im() + base;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const double c = std::cos(phase_);
    const double s = std::sin(phase_);
    phase_ += phase_step_;
    if (phase_ > kTwoPi) phase_ -= kTwoPi;
    if (phase_ < -kTwoPi) phase_ += kTwoPi;
    ore[i] = in.re[i] * c - in.im[i] * s;
    oim[i] = in.re[i] * s + in.im[i] * c;
  }
}

void Mixer::set_shift(double shift_hz) {
  shift_hz_ = shift_hz;
  phase_step_ = kTwoPi * shift_hz_ / fs_;
}

Samples apply_cfo(SampleView in, double offset_hz, double fs) {
  Mixer m(offset_hz, fs);
  return m.process(in);
}

double estimate_cfo(SampleView received, SampleView reference, double fs) {
  const std::size_t n = std::min(received.size(), reference.size());
  if (n < 2) return 0.0;
  // Remove the data: z[i] = received[i] * conj(reference[i]) ~ h*e^{j w i}.
  // Estimate w by averaging the phase of lag-1 products (Kay-style).
  cplx acc{};
  for (std::size_t i = 1; i < n; ++i) {
    const cplx z0 = received[i - 1] * std::conj(reference[i - 1]);
    const cplx z1 = received[i] * std::conj(reference[i]);
    acc += z1 * std::conj(z0);
  }
  if (std::abs(acc) <= 0.0) return 0.0;
  const double w = std::arg(acc);  // radians per sample
  return w * fs / kTwoPi;
}

}  // namespace hs::dsp
