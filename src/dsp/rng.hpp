// Deterministic, named random-number streams.
//
// Every stochastic element of the simulator (thermal noise, jamming noise,
// link phases, device jitter) draws from its own named stream derived from a
// single experiment seed, so that (a) experiments are reproducible and (b)
// changing how many draws one component makes does not perturb the others.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "dsp/types.hpp"

namespace hs::dsp {

/// xoshiro256++ PRNG seeded via SplitMix64. Small, fast, and good enough
/// statistical quality for signal simulation (not for cryptography; the
/// crypto module has its own primitives).
class Rng {
 public:
  /// Seeds the stream from a 64-bit seed.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Derives a stream from a parent seed and a stream name, so components
  /// can own independent reproducible streams: Rng(seed, "thermal-noise").
  Rng(std::uint64_t seed, std::string_view stream_name);

  /// Next raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). `n` must be > 0.
  std::uint64_t uniform_u64(std::uint64_t n);

  /// Standard normal variate (Marsaglia-Tsang ziggurat).
  double gaussian();

  /// Normal variate with the given mean and standard deviation.
  double gaussian(double mean, double stddev);

  /// Circularly symmetric complex Gaussian with E[|z|^2] = variance.
  cplx cgaussian(double variance = 1.0);

  /// Uniform phase on the unit circle.
  cplx random_phase();

  /// Fills `out` with complex AWGN of the given per-sample power.
  void fill_awgn(MutSampleView out, double power);

  /// Split-complex overload. Draw order is identical to the AoS overload
  /// (re then im, sample by sample), so both layouts produce bit-identical
  /// noise from the same stream state.
  void fill_awgn(MutSoaView out, double power);

  /// True with probability p.
  bool bernoulli(double p);

  /// Raw xoshiro256++ state, four 64-bit words — the warm-state snapshot
  /// subsystem serializes stream *positions* with these, so a restored
  /// stream continues exactly where the saved one stopped.
  std::array<std::uint64_t, 4> state() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    for (std::size_t i = 0; i < 4; ++i) s_[i] = s[i];
  }

 private:
  std::uint64_t s_[4];
};

/// Hashes a stream name into a 64-bit value (FNV-1a), used to derive
/// independent named substreams from one experiment seed.
std::uint64_t hash_stream_name(std::string_view name);

/// Derives a fresh 64-bit seed from a parent seed and a substream name —
/// the Rng(seed, name) mechanism for callers that need a seed rather
/// than a stream (e.g. the campaign runner's per-trial seeds). Unlike
/// `seed ^ hash_stream_name(name)`, the result is passed through the
/// generator so related names do not yield correlated seeds.
std::uint64_t derive_seed(std::uint64_t seed, std::string_view stream_name);

}  // namespace hs::dsp
