#include "dsp/power.hpp"

#include <cmath>
#include <stdexcept>

namespace hs::dsp {

double mean_power(SampleView x) {
  if (x.empty()) return 0.0;
  double s = 0.0;
  for (cplx v : x) s += std::norm(v);
  return s / static_cast<double>(x.size());
}

double mean_power(SoaView x) {
  if (x.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < x.n; ++i) {
    s += x.re[i] * x.re[i] + x.im[i] * x.im[i];
  }
  return s / static_cast<double>(x.n);
}

double peak_power(SampleView x) {
  double p = 0.0;
  for (cplx v : x) p = std::max(p, std::norm(v));
  return p;
}

double energy(SampleView x) {
  double s = 0.0;
  for (cplx v : x) s += std::norm(v);
  return s;
}

double energy(SoaView x) {
  double s = 0.0;
  for (std::size_t i = 0; i < x.n; ++i) {
    s += x.re[i] * x.re[i] + x.im[i] * x.im[i];
  }
  return s;
}

void set_mean_power(MutSampleView x, double target_power) {
  const double p = mean_power(x);
  if (p <= 0.0) return;
  const double scale = std::sqrt(target_power / p);
  for (auto& v : x) v *= scale;
}

RssiMeter::RssiMeter(std::size_t window) : window_(window) {
  if (window_ == 0) throw std::invalid_argument("RssiMeter: window == 0");
}

double RssiMeter::push(cplx x) {
  const double p = std::norm(x);
  buf_.push_back(p);
  sum_ += p;
  if (buf_.size() > window_) {
    sum_ -= buf_.front();
    buf_.pop_front();
  }
  ++count_;
  return value();
}

double RssiMeter::push(SampleView x) {
  double v = value();
  for (cplx s : x) v = push(s);
  return v;
}

double RssiMeter::push(SoaView x) {
  double v = value();
  for (std::size_t i = 0; i < x.n; ++i) v = push(cplx{x.re[i], x.im[i]});
  return v;
}

double RssiMeter::value() const {
  if (buf_.empty()) return 0.0;
  return sum_ / static_cast<double>(buf_.size());
}

void RssiMeter::reset() {
  buf_.clear();
  sum_ = 0.0;
  count_ = 0;
}

}  // namespace hs::dsp
