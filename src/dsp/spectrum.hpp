// Power-spectral-density estimation (Welch) and band-power measurement.
//
// Regenerates the frequency profiles of Fig. 4 (captured FSK signal) and
// Fig. 5 (shaped vs constant jamming), and supplies the per-bin IMD power
// profile that the shield's shaped jammer matches.
#pragma once

#include <cstddef>
#include <vector>

#include "dsp/types.hpp"
#include "dsp/window.hpp"

namespace hs::dsp {

struct PsdEstimate {
  std::vector<double> power;  ///< per-bin power, DC-centered (fftshifted)
  std::vector<double> freq_hz;  ///< bin center frequencies, ascending
  double fs = 0.0;
};

struct WelchOptions {
  std::size_t segment_size = 256;  ///< must be a power of two
  double overlap = 0.5;            ///< fraction of segment, [0, 1)
  WindowType window = WindowType::kHann;
};

/// Welch-averaged periodogram of `signal` at sample rate `fs`.
PsdEstimate welch_psd(SampleView signal, double fs,
                      const WelchOptions& options = {});

/// Total power of `signal` restricted to [f_lo, f_hi] (Hz), via FFT binning.
double band_power(SampleView signal, double fs, double f_lo, double f_hi);

/// Mean power of a PSD estimate within [f_lo, f_hi].
double psd_band_power(const PsdEstimate& psd, double f_lo, double f_hi);

/// Normalizes a PSD so its peak bin is 1.0 (for printing relative profiles).
void normalize_peak(PsdEstimate& psd);

}  // namespace hs::dsp
