#include "dsp/spectrum.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/fft.hpp"

namespace hs::dsp {

PsdEstimate welch_psd(SampleView signal, double fs,
                      const WelchOptions& options) {
  const std::size_t seg = options.segment_size;
  if (!is_pow2(seg)) {
    throw std::invalid_argument("welch_psd: segment_size must be power of 2");
  }
  if (options.overlap < 0.0 || options.overlap >= 1.0) {
    throw std::invalid_argument("welch_psd: overlap must be in [0, 1)");
  }
  const auto w = make_window(options.window, seg);
  const double wp = window_power(w);
  const auto hop = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::lround(static_cast<double>(seg) * (1.0 - options.overlap))));

  PsdEstimate psd;
  psd.fs = fs;
  psd.power.assign(seg, 0.0);
  std::size_t segments = 0;
  Samples buf(seg);
  for (std::size_t start = 0; start + seg <= signal.size(); start += hop) {
    for (std::size_t i = 0; i < seg; ++i) buf[i] = signal[start + i] * w[i];
    fft_inplace(buf);
    for (std::size_t i = 0; i < seg; ++i) psd.power[i] += std::norm(buf[i]);
    ++segments;
  }
  if (segments == 0) {
    // Signal shorter than one segment: zero-pad a single segment.
    buf.assign(seg, cplx{});
    for (std::size_t i = 0; i < std::min(seg, signal.size()); ++i) {
      buf[i] = signal[i] * w[i];
    }
    fft_inplace(buf);
    for (std::size_t i = 0; i < seg; ++i) psd.power[i] += std::norm(buf[i]);
    segments = 1;
  }
  const double norm = 1.0 / (static_cast<double>(segments) * wp);
  for (auto& p : psd.power) p *= norm;

  // DC-center the result.
  std::vector<double> shifted(seg);
  const std::size_t half = (seg + 1) / 2;
  for (std::size_t i = 0; i < seg; ++i) {
    shifted[i] = psd.power[(i + half) % seg];
  }
  psd.power = std::move(shifted);
  psd.freq_hz.resize(seg);
  for (std::size_t i = 0; i < seg; ++i) {
    psd.freq_hz[i] =
        (static_cast<double>(i) - static_cast<double>(seg / 2)) * fs /
        static_cast<double>(seg);
  }
  return psd;
}

double band_power(SampleView signal, double fs, double f_lo, double f_hi) {
  if (signal.empty()) return 0.0;
  Samples buf(signal.begin(), signal.end());
  buf.resize(next_pow2(buf.size()));
  const std::size_t n = buf.size();
  fft_inplace(buf);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double f = bin_frequency(k, n, fs);
    if (f >= f_lo && f <= f_hi) total += std::norm(buf[k]);
  }
  // Parseval: sum |X_k|^2 / N^2 gives mean power * (N / signal length);
  // normalize to mean per-sample power over the original signal length.
  return total / (static_cast<double>(n) * static_cast<double>(signal.size()));
}

double psd_band_power(const PsdEstimate& psd, double f_lo, double f_hi) {
  double total = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < psd.power.size(); ++i) {
    if (psd.freq_hz[i] >= f_lo && psd.freq_hz[i] <= f_hi) {
      total += psd.power[i];
      ++count;
    }
  }
  return count ? total : 0.0;
}

void normalize_peak(PsdEstimate& psd) {
  const double peak =
      *std::max_element(psd.power.begin(), psd.power.end());
  if (peak <= 0.0) return;
  for (auto& p : psd.power) p /= peak;
}

}  // namespace hs::dsp
