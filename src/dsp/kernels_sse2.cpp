// SSE2 kernel backend: 2-wide double vectors (x86-64 baseline ISA).
//
// Compiled with -ffp-contract=off (CMakeLists.txt). Bit-exactness against
// the scalar reference follows the same rule as the AVX2 backend: only
// dimensions that are already independent accumulation chains get a vector
// lane. The segmented correlation and dual-tone kernels therefore still
// step FOUR lanes per iteration — as two __m128d vectors each — so the
// main-loop/tail boundary and per-lane operation order match the reference
// exactly; `test_dsp_kernels` enforces the match.
//
// Raw intrinsics are allowed in this file only (LINT.toml raw-intrinsics
// allowlist); everything else goes through the dispatch table.

#include "dsp/kernels_internal.hpp"

#if defined(__SSE2__)

#include <emmintrin.h>

#include <algorithm>
#include <cmath>

namespace hs::dsp::kernels {
namespace {

double segcorr_sse2(const double* sig_re, const double* sig_im,
                    const double* ref_re, const double* ref_im,
                    std::size_t ref_len, double ref_energy) {
  constexpr std::size_t kSegments = 6;
  constexpr std::size_t kLanes = 4;
  const std::size_t seg = ref_len / kSegments;
  double acc_mag = 0.0;
  double sig_energy = 0.0;
  for (std::size_t s = 0; s < kSegments; ++s) {
    const std::size_t from = s * seg;
    const std::size_t to = (s + 1 == kSegments) ? ref_len : from + seg;
    // Lanes 0-1 and 2-3 of the scalar reference, as two vectors each.
    __m128d vre01 = _mm_setzero_pd(), vre23 = _mm_setzero_pd();
    __m128d vim01 = _mm_setzero_pd(), vim23 = _mm_setzero_pd();
    __m128d ven01 = _mm_setzero_pd(), ven23 = _mm_setzero_pd();
    std::size_t i = from;
    for (; i + kLanes <= to; i += kLanes) {
      const __m128d br0 = _mm_loadu_pd(sig_re + i);
      const __m128d br1 = _mm_loadu_pd(sig_re + i + 2);
      const __m128d bi0 = _mm_loadu_pd(sig_im + i);
      const __m128d bi1 = _mm_loadu_pd(sig_im + i + 2);
      const __m128d rr0 = _mm_loadu_pd(ref_re + i);
      const __m128d rr1 = _mm_loadu_pd(ref_re + i + 2);
      const __m128d ri0 = _mm_loadu_pd(ref_im + i);
      const __m128d ri1 = _mm_loadu_pd(ref_im + i + 2);
      vre01 = _mm_add_pd(vre01, _mm_add_pd(_mm_mul_pd(br0, rr0),
                                           _mm_mul_pd(bi0, ri0)));
      vre23 = _mm_add_pd(vre23, _mm_add_pd(_mm_mul_pd(br1, rr1),
                                           _mm_mul_pd(bi1, ri1)));
      vim01 = _mm_add_pd(vim01, _mm_sub_pd(_mm_mul_pd(bi0, rr0),
                                           _mm_mul_pd(br0, ri0)));
      vim23 = _mm_add_pd(vim23, _mm_sub_pd(_mm_mul_pd(bi1, rr1),
                                           _mm_mul_pd(br1, ri1)));
      ven01 = _mm_add_pd(ven01, _mm_add_pd(_mm_mul_pd(br0, br0),
                                           _mm_mul_pd(bi0, bi0)));
      ven23 = _mm_add_pd(ven23, _mm_add_pd(_mm_mul_pd(br1, br1),
                                           _mm_mul_pd(bi1, bi1)));
    }
    double acc_re[kLanes], acc_im[kLanes], energy[kLanes];
    _mm_storeu_pd(acc_re, vre01);
    _mm_storeu_pd(acc_re + 2, vre23);
    _mm_storeu_pd(acc_im, vim01);
    _mm_storeu_pd(acc_im + 2, vim23);
    _mm_storeu_pd(energy, ven01);
    _mm_storeu_pd(energy + 2, ven23);
    for (; i < to; ++i) {
      const double br = sig_re[i];
      const double bi = sig_im[i];
      acc_re[0] += br * ref_re[i] + bi * ref_im[i];
      acc_im[0] += bi * ref_re[i] - br * ref_im[i];
      energy[0] += br * br + bi * bi;
    }
    const double re = (acc_re[0] + acc_re[1]) + (acc_re[2] + acc_re[3]);
    const double im = (acc_im[0] + acc_im[1]) + (acc_im[2] + acc_im[3]);
    acc_mag += std::sqrt(re * re + im * im);
    sig_energy += (energy[0] + energy[1]) + (energy[2] + energy[3]);
  }
  return acc_mag / std::sqrt(std::max(sig_energy * ref_energy, 1e-30));
}

DualToneAccum dual_tone_sse2(const double* x_re, const double* x_im,
                             const double* tone_a, const double* tone_b,
                             std::size_t n) {
  // Accumulators (c0r, c0i) and (c1r, c1i) as two vectors.
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  for (std::size_t i = 0; i < n; ++i) {
    const __m128d xr = _mm_load1_pd(x_re + i);
    const __m128d xi = _mm_load1_pd(x_im + i);
    const double* a = tone_a + 4 * i;
    const double* b = tone_b + 4 * i;
    acc01 = _mm_add_pd(acc01,
                       _mm_add_pd(_mm_mul_pd(xr, _mm_loadu_pd(a)),
                                  _mm_mul_pd(xi, _mm_loadu_pd(b))));
    acc23 = _mm_add_pd(acc23,
                       _mm_add_pd(_mm_mul_pd(xr, _mm_loadu_pd(a + 2)),
                                  _mm_mul_pd(xi, _mm_loadu_pd(b + 2))));
  }
  double lanes[4];
  _mm_storeu_pd(lanes, acc01);
  _mm_storeu_pd(lanes + 2, acc23);
  return {lanes[0], lanes[1], lanes[2], lanes[3]};
}

void cmac_sse2(double* out_re, double* out_im, const double* in_re,
               const double* in_im, double gr, double gi, std::size_t n) {
  const __m128d vgr = _mm_set1_pd(gr);
  const __m128d vgi = _mm_set1_pd(gi);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d ir = _mm_loadu_pd(in_re + i);
    const __m128d ii = _mm_loadu_pd(in_im + i);
    __m128d orr = _mm_loadu_pd(out_re + i);
    __m128d oii = _mm_loadu_pd(out_im + i);
    orr = _mm_add_pd(orr, _mm_sub_pd(_mm_mul_pd(vgr, ir),
                                     _mm_mul_pd(vgi, ii)));
    oii = _mm_add_pd(oii, _mm_add_pd(_mm_mul_pd(vgr, ii),
                                     _mm_mul_pd(vgi, ir)));
    _mm_storeu_pd(out_re + i, orr);
    _mm_storeu_pd(out_im + i, oii);
  }
  for (; i < n; ++i) {
    out_re[i] += gr * in_re[i] - gi * in_im[i];
    out_im[i] += gr * in_im[i] + gi * in_re[i];
  }
}

void fir_real_sse2(const double* taps, std::size_t t, const double* x_re,
                   const double* x_im, double* out_re, double* out_im,
                   std::size_t m) {
  const std::size_t hist = t - 1;
  std::size_t i = 0;
  // Two outputs per iteration; each lane is one output's own sequential
  // accumulation over k.
  for (; i + 2 <= m; i += 2) {
    __m128d ar = _mm_setzero_pd();
    __m128d ai = _mm_setzero_pd();
    const double* xr0 = x_re + hist + i;
    const double* xi0 = x_im + hist + i;
    for (std::size_t k = 0; k < t; ++k) {
      const __m128d tap = _mm_load1_pd(taps + k);
      ar = _mm_add_pd(ar, _mm_mul_pd(tap, _mm_loadu_pd(xr0 - k)));
      ai = _mm_add_pd(ai, _mm_mul_pd(tap, _mm_loadu_pd(xi0 - k)));
    }
    _mm_storeu_pd(out_re + i, ar);
    _mm_storeu_pd(out_im + i, ai);
  }
  for (; i < m; ++i) {
    double ar = 0.0, ai = 0.0;
    for (std::size_t k = 0; k < t; ++k) {
      ar += taps[k] * x_re[hist + i - k];
      ai += taps[k] * x_im[hist + i - k];
    }
    out_re[i] = ar;
    out_im[i] = ai;
  }
}

void fir_cplx_sse2(const double* tap_re, const double* tap_im, std::size_t t,
                   const double* x_re, const double* x_im, double* out_re,
                   double* out_im, std::size_t m) {
  const std::size_t hist = t - 1;
  std::size_t i = 0;
  for (; i + 2 <= m; i += 2) {
    __m128d ar = _mm_setzero_pd();
    __m128d ai = _mm_setzero_pd();
    const double* xr0 = x_re + hist + i;
    const double* xi0 = x_im + hist + i;
    for (std::size_t k = 0; k < t; ++k) {
      const __m128d tr = _mm_load1_pd(tap_re + k);
      const __m128d ti = _mm_load1_pd(tap_im + k);
      const __m128d vr = _mm_loadu_pd(xr0 - k);
      const __m128d vi = _mm_loadu_pd(xi0 - k);
      ar = _mm_add_pd(ar,
                      _mm_sub_pd(_mm_mul_pd(tr, vr), _mm_mul_pd(ti, vi)));
      ai = _mm_add_pd(ai,
                      _mm_add_pd(_mm_mul_pd(tr, vi), _mm_mul_pd(ti, vr)));
    }
    _mm_storeu_pd(out_re + i, ar);
    _mm_storeu_pd(out_im + i, ai);
  }
  for (; i < m; ++i) {
    double ar = 0.0, ai = 0.0;
    for (std::size_t k = 0; k < t; ++k) {
      const double vr = x_re[hist + i - k];
      const double vi = x_im[hist + i - k];
      ar += tap_re[k] * vr - tap_im[k] * vi;
      ai += tap_re[k] * vi + tap_im[k] * vr;
    }
    out_re[i] = ar;
    out_im[i] = ai;
  }
}

const KernelTable kSse2Table = {
    &segcorr_sse2, &dual_tone_sse2, &cmac_sse2, &fir_real_sse2,
    &fir_cplx_sse2,
};

}  // namespace

const KernelTable* sse2_kernel_table() { return &kSse2Table; }

}  // namespace hs::dsp::kernels

#else  // !defined(__SSE2__)

namespace hs::dsp::kernels {

const KernelTable* sse2_kernel_table() { return nullptr; }

}  // namespace hs::dsp::kernels

#endif
