#include "dsp/resample.hpp"

#include <stdexcept>

namespace hs::dsp {
namespace {

std::vector<double> antialias_taps(std::size_t factor, std::size_t taps) {
  if (factor == 0) throw std::invalid_argument("resample: factor == 0");
  if (factor == 1) return {1.0};
  // Cutoff at 80% of Nyquist of the low rate to keep a usable passband.
  return design_lowpass(0.4 / static_cast<double>(factor), taps);
}

}  // namespace

Decimator::Decimator(std::size_t factor, std::size_t taps)
    : factor_(factor), filter_(antialias_taps(factor, taps)) {}

void Decimator::process(SampleView in, Samples& out) {
  for (cplx x : in) {
    const cplx y = filter_.process(x);
    if (phase_ == 0) out.push_back(y);
    phase_ = (phase_ + 1) % factor_;
  }
}

Samples Decimator::process(SampleView in) {
  Samples out;
  process(in, out);
  return out;
}

void Decimator::process(SoaView in, SoaSamples& out) {
  filtered_.clear();
  filter_.process(in, filtered_);
  const double* fre = filtered_.re();
  const double* fim = filtered_.im();
  // First kept index under the carried-over phase, then every factor_-th.
  const std::size_t first = phase_ == 0 ? 0 : factor_ - phase_;
  const std::size_t n = in.size();
  const std::size_t kept = n > first ? (n - first + factor_ - 1) / factor_ : 0;
  std::size_t base = out.size();
  out.resize(base + kept);
  double* ore = out.re();
  double* oim = out.im();
  for (std::size_t i = first; i < n; i += factor_, ++base) {
    ore[base] = fre[i];
    oim[base] = fim[i];
  }
  phase_ = (phase_ + n) % factor_;
}

void Decimator::reset() {
  filter_.reset();
  phase_ = 0;
}

Interpolator::Interpolator(std::size_t factor, std::size_t taps)
    : factor_(factor), filter_(antialias_taps(factor, taps)) {}

void Interpolator::process(SampleView in, Samples& out) {
  const double gain = static_cast<double>(factor_);
  for (cplx x : in) {
    out.push_back(filter_.process(x * gain));
    for (std::size_t i = 1; i < factor_; ++i) {
      out.push_back(filter_.process(cplx{}));
    }
  }
}

Samples Interpolator::process(SampleView in) {
  Samples out;
  process(in, out);
  return out;
}

void Interpolator::process(SoaView in, SoaSamples& out) {
  const double gain = static_cast<double>(factor_);
  stuffed_.resize(in.size() * factor_);
  stuffed_.fill_zero();
  double* sre = stuffed_.re();
  double* sim = stuffed_.im();
  for (std::size_t i = 0; i < in.size(); ++i) {
    sre[i * factor_] = in.re[i] * gain;
    sim[i * factor_] = in.im[i] * gain;
  }
  filter_.process(stuffed_.view(), out);
}

void Interpolator::reset() { filter_.reset(); }

}  // namespace hs::dsp
