#include "dsp/resample.hpp"

#include <stdexcept>

namespace hs::dsp {
namespace {

std::vector<double> antialias_taps(std::size_t factor, std::size_t taps) {
  if (factor == 0) throw std::invalid_argument("resample: factor == 0");
  if (factor == 1) return {1.0};
  // Cutoff at 80% of Nyquist of the low rate to keep a usable passband.
  return design_lowpass(0.4 / static_cast<double>(factor), taps);
}

}  // namespace

Decimator::Decimator(std::size_t factor, std::size_t taps)
    : factor_(factor), filter_(antialias_taps(factor, taps)) {}

void Decimator::process(SampleView in, Samples& out) {
  for (cplx x : in) {
    const cplx y = filter_.process(x);
    if (phase_ == 0) out.push_back(y);
    phase_ = (phase_ + 1) % factor_;
  }
}

Samples Decimator::process(SampleView in) {
  Samples out;
  process(in, out);
  return out;
}

void Decimator::reset() {
  filter_.reset();
  phase_ = 0;
}

Interpolator::Interpolator(std::size_t factor, std::size_t taps)
    : factor_(factor), filter_(antialias_taps(factor, taps)) {}

void Interpolator::process(SampleView in, Samples& out) {
  const double gain = static_cast<double>(factor_);
  for (cplx x : in) {
    out.push_back(filter_.process(x * gain));
    for (std::size_t i = 1; i < factor_; ++i) {
      out.push_back(filter_.process(cplx{}));
    }
  }
}

Samples Interpolator::process(SampleView in) {
  Samples out;
  process(in, out);
  return out;
}

void Interpolator::reset() { filter_.reset(); }

}  // namespace hs::dsp
