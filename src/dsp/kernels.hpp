// Hand-vectorized SIMD kernels for the DSP hot paths, behind a runtime
// dispatch table.
//
// The profile (BENCH_campaign.json phase_breakdown) puts ~62% of per-trial
// wall time in the receiver demod path and ~18% in Medium::mix; the SoA
// plane refactor (PR 3/PR 5) made those loops contiguous-plane arithmetic,
// and this layer is where they become real vector instructions on purpose.
//
// Contract — every backend is BIT-EXACT against the scalar reference:
//  * The scalar implementations in kernels.cpp are the pinned reference;
//    they reproduce, operation for operation, the loops the call sites
//    (FskReceiver::correlation_at, NoncoherentFskDemod::demod_symbol,
//    Medium::mix, FirFilter/ComplexFirFilter::process) ran before this
//    layer existed.
//  * SIMD backends only vectorize along dimensions that were already
//    independent accumulation chains in the reference (the receiver's four
//    correlation lanes, the demod's four accumulators, one FIR output per
//    vector lane, elementwise channel MAC), so every floating-point
//    operation happens in the same order with the same operands and the
//    results match bit for bit. `test_dsp_kernels` enforces this over
//    randomized planes for every backend the host can run.
//  * All kernel translation units are compiled with -ffp-contract=off, so
//    kernel results are also invariant across build flavors (the HS_NATIVE
//    flavor changes the surrounding code's rounding, never the kernels').
//
// Raw intrinsics are forbidden outside src/dsp/kernels.* (determinism
// linter rule `raw-intrinsics`); new vector code goes through this table.
#pragma once

#include <cstddef>

namespace hs::dsp::kernels {

/// Instruction-set backend of the kernel dispatch table.
enum class Backend {
  kScalar = 0,  ///< pinned reference (always available)
  kSse2 = 1,    ///< 2-wide double vectors (x86-64 baseline)
  kAvx2 = 2,    ///< 4-wide double vectors (runtime-detected)
};

/// Human-readable backend name ("scalar", "sse2", "avx2").
const char* backend_name(Backend b);

/// Best backend this host supports (compile-time availability AND runtime
/// CPU feature detection).
Backend best_supported_backend();

/// The backend hot paths currently dispatch to. Defaults to
/// best_supported_backend(); the HS_KERNELS environment variable
/// ("scalar", "sse2", "avx2") overrides the default at first use.
Backend active_backend();

/// Forces the dispatch table to `b` (for tests and A/B benchmarking).
/// Returns false (and leaves the table unchanged) if this host cannot run
/// `b`. Not thread-safe: call only while no campaign threads are running.
bool set_backend(Backend b);

/// Segmented noncoherent sync correlation — the FskReceiver::correlation_at
/// hot loop. The reference `ref_len` samples are split into 6 segments
/// (each running 4 independent accumulator lanes, tail into lane 0, lanes
/// reduced pairwise); the per-segment complex correlations are combined by
/// magnitude and normalized by sqrt(sig_energy * ref_energy), floored at
/// 1e-30. `sig_*` must have at least `ref_len` readable samples.
///
/// Edge geometry, pinned by KernelsEdge.ShortReferenceFewerThanSegments:
/// when ref_len < 6 the integer segment stride is 0, the first 5 segments
/// are empty, and the entire reference lands in the final segment — the
/// result is still the plain normalized correlation magnitude.
double segmented_sync_correlation(const double* sig_re, const double* sig_im,
                                  const double* ref_re, const double* ref_im,
                                  std::size_t ref_len, double ref_energy);

/// Accumulators of the dual-tone noncoherent FSK symbol MAC.
struct DualToneAccum {
  double c0_re = 0.0;
  double c0_im = 0.0;
  double c1_re = 0.0;
  double c1_im = 0.0;
};

/// Dual-tone multiply-accumulate — the NoncoherentFskDemod::demod_symbol
/// hot loop: c0 += x[i] * tone0[i], c1 += x[i] * tone1[i] over n samples,
/// with the tones pre-packed into two interleaved planes of 4 doubles per
/// sample (see pack_dual_tones):
///   tone_a[4i..4i+3] = { t0r[i],  t0i[i],  t1r[i],  t1i[i] }
///   tone_b[4i..4i+3] = { -t0i[i], t0r[i], -t1i[i], t1r[i] }
/// so each accumulator lane is x_re*a + x_im*b (a + (-b) == a - b exactly
/// in IEEE-754, which is why the packed negation is bit-exact against the
/// reference's explicit subtraction).
DualToneAccum dual_tone_mac(const double* x_re, const double* x_im,
                            const double* tone_a, const double* tone_b,
                            std::size_t n);

/// Packs two split-complex tone references (length n each) into the
/// interleaved tone_a/tone_b planes dual_tone_mac consumes. The output
/// arrays must hold 4*n doubles each.
void pack_dual_tones(const double* t0_re, const double* t0_im,
                     const double* t1_re, const double* t1_im, std::size_t n,
                     double* tone_a, double* tone_b);

/// Elementwise complex multiply-accumulate — the Medium::mix plane loop:
/// out[i] += (gr + j*gi) * in[i] over n samples, expanded exactly as
/// -fcx-limited-range compiles the complex form.
void cmac(double* out_re, double* out_im, const double* in_re,
          const double* in_im, double gr, double gi, std::size_t n);

/// Real-tap FIR over split planes — the FirFilter::process(SoaView) inner
/// loop. `x_*` point at the extended window (t-1 history samples followed
/// by the block); out[i] = sum_k taps[k] * x[(t-1) + i - k], k ascending,
/// for i in [0, m). Each output keeps the reference's sequential
/// accumulation order over k (SIMD lanes are distinct outputs).
void fir_block_real(const double* taps, std::size_t t, const double* x_re,
                    const double* x_im, double* out_re, double* out_im,
                    std::size_t m);

/// Complex-tap FIR over split planes — the ComplexFirFilter::process
/// inner loop; same geometry as fir_block_real with split taps.
void fir_block_cplx(const double* tap_re, const double* tap_im,
                    std::size_t t, const double* x_re, const double* x_im,
                    double* out_re, double* out_im, std::size_t m);

/// Function-pointer dispatch table (one entry per kernel above, minus the
/// layout helpers). Exposed so tests can exercise a specific backend's
/// table directly; hot paths go through the free functions.
struct KernelTable {
  double (*segmented_sync_correlation)(const double*, const double*,
                                       const double*, const double*,
                                       std::size_t, double);
  DualToneAccum (*dual_tone_mac)(const double*, const double*, const double*,
                                 const double*, std::size_t);
  void (*cmac)(double*, double*, const double*, const double*, double,
               double, std::size_t);
  void (*fir_block_real)(const double*, std::size_t, const double*,
                         const double*, double*, double*, std::size_t);
  void (*fir_block_cplx)(const double*, const double*, std::size_t,
                         const double*, const double*, double*, double*,
                         std::size_t);
};

/// Backend `b`'s table, or nullptr when this build/host cannot run it.
/// (kScalar is never null.)
const KernelTable* backend_table(Backend b);

}  // namespace hs::dsp::kernels
