// Cross-correlation and matched filtering, used for preamble detection,
// symbol timing recovery, and channel probing (the shield correlates its
// known probe against the receive-antenna signal to estimate H_self and
// H_jam->rec).
#pragma once

#include <cstddef>

#include "dsp/types.hpp"

namespace hs::dsp {

/// Sliding cross-correlation of `signal` against `reference`:
/// out[k] = sum_i signal[k + i] * conj(reference[i]),
/// for k in [0, signal.size() - reference.size()].
Samples cross_correlate(SampleView signal, SampleView reference);

/// Split-complex overload. The inner multiply-accumulate runs on the
/// re/im planes (autovectorizable) using the same naive complex-multiply
/// expansion and accumulation order as the AoS path, so the result is
/// bit-identical.
Samples cross_correlate(SoaView signal, SoaView reference);

/// Normalized correlation magnitude in [0, 1] at each lag (correlation
/// coefficient against the reference's energy and the local signal energy).
std::vector<double> normalized_correlation(SampleView signal,
                                           SampleView reference);

/// Split-complex overload; bit-identical to the AoS path.
std::vector<double> normalized_correlation(SoaView signal,
                                           SoaView reference);

struct CorrelationPeak {
  std::size_t lag = 0;
  double magnitude = 0.0;  ///< normalized in [0, 1]
  cplx value;              ///< raw complex correlation at the peak
};

/// Finds the strongest normalized correlation peak. Returns magnitude 0 if
/// `signal` is shorter than `reference`.
CorrelationPeak find_peak(SampleView signal, SampleView reference);

/// Least-squares estimate of a flat channel h given y ~= h * x:
/// h = <y, x> / <x, x>. Returns 0 when x has no energy.
cplx estimate_flat_channel(SampleView received, SampleView reference);

/// Split-complex overload; bit-identical to the AoS path.
cplx estimate_flat_channel(SoaView received, SoaView reference);

}  // namespace hs::dsp
