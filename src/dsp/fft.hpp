// Radix-2 FFT used for jamming-signal shaping (per-bin Gaussian noise ->
// IFFT, paper section 6(a)) and for spectrum estimation (Figs. 4 and 5).
#pragma once

#include <cstddef>

#include "dsp/types.hpp"

namespace hs::dsp {

/// Returns the smallest power of two >= n (n >= 1).
std::size_t next_pow2(std::size_t n);

/// True if n is a power of two (and non-zero).
bool is_pow2(std::size_t n);

/// In-place iterative radix-2 DIT FFT. `data.size()` must be a power of two.
/// Forward transform, no normalization.
void fft_inplace(MutSampleView data);

/// In-place inverse FFT with 1/N normalization.
void ifft_inplace(MutSampleView data);

/// Out-of-place convenience wrappers (input is zero-padded to a power of
/// two when necessary).
Samples fft(SampleView input);
Samples ifft(SampleView input);

/// Reorders an FFT output so the DC bin sits at the center (matplotlib-style
/// fftshift); used when printing spectra against physical frequency axes.
Samples fftshift(SampleView input);

/// Inverse of fftshift.
Samples ifftshift(SampleView input);

/// Frequency (Hz) of FFT bin `k` out of `n` at sample rate `fs`, mapped to
/// the range [-fs/2, fs/2).
double bin_frequency(std::size_t k, std::size_t n, double fs);

/// Bin index (0..n-1) whose center frequency is closest to `freq_hz`
/// (freq in [-fs/2, fs/2)).
std::size_t frequency_bin(double freq_hz, std::size_t n, double fs);

}  // namespace hs::dsp
