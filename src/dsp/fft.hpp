/// @file
/// Radix-2 FFT used for jamming-signal shaping (per-bin Gaussian noise ->
/// IFFT, paper section 6(a)) and for spectrum estimation (Figs. 4 and 5).
///
/// Twiddle factors come from a per-size cache computed directly with
/// std::polar (1-ulp accuracy at every index), not from the multiplicative
/// recurrence whose phase error grows O(n*eps) across a transform. The
/// cache is shared across threads and lives for the program's lifetime.
///
/// Size contract: the in-place transforms require power-of-two input and
/// throw otherwise. The out-of-place `fft()` convenience wrapper
/// zero-pads its *time-domain* input up to the next power of two (the
/// output therefore has next_pow2(input.size()) bins); `ifft()` requires
/// a power-of-two bin vector and throws otherwise — zero-padding a
/// spectrum would silently rescale the reconstructed signal.
#pragma once

#include <cstddef>

#include "dsp/types.hpp"

namespace hs::dsp {

/// Returns the smallest power of two >= n (n >= 1).
std::size_t next_pow2(std::size_t n);

/// True if n is a power of two (and non-zero).
bool is_pow2(std::size_t n);

/// In-place iterative radix-2 DIT FFT. `data.size()` must be a power of two.
/// Forward transform, no normalization.
void fft_inplace(MutSampleView data);

/// In-place inverse FFT with 1/N normalization.
void ifft_inplace(MutSampleView data);

/// Out-of-place forward transform. The time-domain input is zero-padded to
/// next_pow2(input.size()), so the result has that many bins and
/// `ifft(fft(x))` reconstructs x followed by the padding zeros. Callers
/// that need an exact-length round trip must truncate back to
/// `input.size()` themselves (or supply power-of-two input).
Samples fft(SampleView input);

/// Out-of-place inverse transform with 1/N normalization. `input` is a bin
/// vector and must already be a power of two; throws std::invalid_argument
/// otherwise (a spectrum cannot be meaningfully zero-padded).
Samples ifft(SampleView input);

/// Reorders an FFT output so the DC bin sits at the center (matplotlib-style
/// fftshift); used when printing spectra against physical frequency axes.
Samples fftshift(SampleView input);

/// Inverse of fftshift.
Samples ifftshift(SampleView input);

/// Frequency (Hz) of FFT bin `k` out of `n` at sample rate `fs`, mapped to
/// the range [-fs/2, fs/2).
double bin_frequency(std::size_t k, std::size_t n, double fs);

/// Bin index (0..n-1) whose center frequency is closest to `freq_hz`
/// (freq in [-fs/2, fs/2)).
std::size_t frequency_bin(double freq_hz, std::size_t n, double fs);

}  // namespace hs::dsp
