// Windowed-sinc FIR design and streaming FIR filtering.
//
// Used by the MICS channelizer (per-channel selection filters), by the
// eavesdropper's band-pass-filtering attack on an obliviously jamming shield
// (paper section 6(a)), and by the GMSK pulse shaper.
#pragma once

#include <cstddef>
#include <vector>

#include "dsp/types.hpp"

namespace hs::snapshot {
class StateWriter;
class StateReader;
}  // namespace hs::snapshot

namespace hs::dsp {

/// Designs a linear-phase lowpass FIR with the given normalized cutoff
/// (cutoff_hz / fs in (0, 0.5)) and odd tap count, Hamming-windowed sinc.
std::vector<double> design_lowpass(double normalized_cutoff, std::size_t taps);

/// Designs a complex band-pass FIR centered at `center_hz` with one-sided
/// width `half_width_hz`, both relative to sample rate `fs`.
Samples design_bandpass(double center_hz, double half_width_hz, double fs,
                        std::size_t taps);

/// Gaussian pulse-shaping filter for GMSK with bandwidth-time product `bt`,
/// spanning `span_symbols` symbols at `sps` samples/symbol. Normalized to
/// unit DC gain.
std::vector<double> design_gaussian(double bt, std::size_t sps,
                                    std::size_t span_symbols);

/// Streaming FIR filter with real taps over complex samples. Keeps history
/// between calls so block-wise processing matches one-shot processing.
class FirFilter {
 public:
  explicit FirFilter(std::vector<double> taps);

  /// Filters one sample.
  cplx process(cplx x);

  /// Filters a block, appending to `out`.
  void process(SampleView in, Samples& out);

  /// Filters a whole buffer (stateful; continues from previous calls).
  Samples process(SampleView in);

  /// Split-complex block path, appending to `out`. Real taps over split
  /// planes reduce to two independent real convolutions over contiguous
  /// doubles, which autovectorize; the tap order and accumulation order
  /// match the scalar path, so results (and subsequent streaming state)
  /// are bit-identical to per-sample process() calls. `in` must not view
  /// `out` (growing `out` may reallocate its planes).
  void process(SoaView in, SoaSamples& out);

  /// Clears filter history.
  void reset();

  /// Warm-state snapshot round trip of the streaming state (history ring
  /// + cursor). The load target must have been built with the same tap
  /// count; taps themselves are configuration, not state.
  void save_state(snapshot::StateWriter& w) const;
  void load_state(snapshot::StateReader& r);

  std::size_t tap_count() const { return taps_.size(); }

  /// Group delay in samples for the linear-phase designs above.
  double group_delay() const {
    return (static_cast<double>(taps_.size()) - 1.0) / 2.0;
  }

 private:
  std::vector<double> taps_;
  Samples history_;  // circular
  std::size_t pos_ = 0;
  std::vector<double> ext_re_, ext_im_;  // block-path scratch
};

/// Streaming FIR with complex taps (for band-pass filters).
class ComplexFirFilter {
 public:
  explicit ComplexFirFilter(Samples taps);

  cplx process(cplx x);
  void process(SampleView in, Samples& out);
  Samples process(SampleView in);

  /// Split-complex block path; bit-identical to per-sample process().
  /// `in` must not view `out` (growing `out` may reallocate its planes).
  void process(SoaView in, SoaSamples& out);

  void reset();

  /// Warm-state snapshot round trip (see FirFilter::save_state).
  void save_state(snapshot::StateWriter& w) const;
  void load_state(snapshot::StateReader& r);

  std::size_t tap_count() const { return taps_.size(); }

 private:
  Samples taps_;
  Samples history_;
  std::size_t pos_ = 0;
  std::vector<double> tap_re_, tap_im_;  // split copy of taps_
  std::vector<double> ext_re_, ext_im_;  // block-path scratch
};

/// Evaluates the frequency response of a real-tap FIR at `freq_hz` given
/// sample rate `fs` (power gain, linear).
double fir_power_response(const std::vector<double>& taps, double freq_hz,
                          double fs);

}  // namespace hs::dsp
