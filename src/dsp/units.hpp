// dB <-> linear conversions and small power helpers used across the stack.
#pragma once

#include <cmath>

#include "dsp/types.hpp"

namespace hs::dsp {

/// Convert a linear power ratio to decibels. `p` must be > 0.
inline double power_to_db(double p) { return 10.0 * std::log10(p); }

/// Convert decibels to a linear power ratio.
inline double db_to_power(double db) { return std::pow(10.0, db / 10.0); }

/// Convert a linear amplitude ratio to decibels.
inline double amplitude_to_db(double a) { return 20.0 * std::log10(a); }

/// Convert decibels to a linear amplitude ratio.
inline double db_to_amplitude(double db) { return std::pow(10.0, db / 20.0); }

/// Convert milliwatts to dBm.
inline double mw_to_dbm(double mw) { return 10.0 * std::log10(mw); }

/// Convert dBm to milliwatts.
inline double dbm_to_mw(double dbm) { return std::pow(10.0, dbm / 10.0); }

}  // namespace hs::dsp
