// AVX2 kernel backend: 4-wide double vectors.
//
// Compiled with -mavx2 -ffp-contract=off (CMakeLists.txt); every function
// here is reached only through the dispatch table after a runtime
// __builtin_cpu_supports("avx2") check. Each kernel vectorizes a dimension
// that is already an independent accumulation chain in the scalar
// reference (kernels.cpp), so the per-chain operation order is unchanged
// and results are bit-identical — `test_dsp_kernels` enforces it.
//
// Raw intrinsics are allowed in this file only (LINT.toml raw-intrinsics
// allowlist); everything else goes through the dispatch table.

#include "dsp/kernels_internal.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>

namespace hs::dsp::kernels {
namespace {

double segcorr_avx2(const double* sig_re, const double* sig_im,
                    const double* ref_re, const double* ref_im,
                    std::size_t ref_len, double ref_energy) {
  constexpr std::size_t kSegments = 6;
  constexpr std::size_t kLanes = 4;
  const std::size_t seg = ref_len / kSegments;
  double acc_mag = 0.0;
  double sig_energy = 0.0;
  for (std::size_t s = 0; s < kSegments; ++s) {
    const std::size_t from = s * seg;
    const std::size_t to = (s + 1 == kSegments) ? ref_len : from + seg;
    // Vector lane l IS scalar accumulator lane l.
    __m256d vre = _mm256_setzero_pd();
    __m256d vim = _mm256_setzero_pd();
    __m256d ven = _mm256_setzero_pd();
    std::size_t i = from;
    for (; i + kLanes <= to; i += kLanes) {
      const __m256d br = _mm256_loadu_pd(sig_re + i);
      const __m256d bi = _mm256_loadu_pd(sig_im + i);
      const __m256d rr = _mm256_loadu_pd(ref_re + i);
      const __m256d ri = _mm256_loadu_pd(ref_im + i);
      vre = _mm256_add_pd(vre, _mm256_add_pd(_mm256_mul_pd(br, rr),
                                             _mm256_mul_pd(bi, ri)));
      vim = _mm256_add_pd(vim, _mm256_sub_pd(_mm256_mul_pd(bi, rr),
                                             _mm256_mul_pd(br, ri)));
      ven = _mm256_add_pd(ven, _mm256_add_pd(_mm256_mul_pd(br, br),
                                             _mm256_mul_pd(bi, bi)));
    }
    double acc_re[kLanes], acc_im[kLanes], energy[kLanes];
    _mm256_storeu_pd(acc_re, vre);
    _mm256_storeu_pd(acc_im, vim);
    _mm256_storeu_pd(energy, ven);
    for (; i < to; ++i) {
      const double br = sig_re[i];
      const double bi = sig_im[i];
      acc_re[0] += br * ref_re[i] + bi * ref_im[i];
      acc_im[0] += bi * ref_re[i] - br * ref_im[i];
      energy[0] += br * br + bi * bi;
    }
    const double re = (acc_re[0] + acc_re[1]) + (acc_re[2] + acc_re[3]);
    const double im = (acc_im[0] + acc_im[1]) + (acc_im[2] + acc_im[3]);
    acc_mag += std::sqrt(re * re + im * im);
    sig_energy += (energy[0] + energy[1]) + (energy[2] + energy[3]);
  }
  return acc_mag / std::sqrt(std::max(sig_energy * ref_energy, 1e-30));
}

DualToneAccum dual_tone_avx2(const double* x_re, const double* x_im,
                             const double* tone_a, const double* tone_b,
                             std::size_t n) {
  // One vector holds all four accumulators (c0r, c0i, c1r, c1i).
  __m256d acc = _mm256_setzero_pd();
  for (std::size_t i = 0; i < n; ++i) {
    const __m256d xr = _mm256_broadcast_sd(x_re + i);
    const __m256d xi = _mm256_broadcast_sd(x_im + i);
    const __m256d a = _mm256_loadu_pd(tone_a + 4 * i);
    const __m256d b = _mm256_loadu_pd(tone_b + 4 * i);
    acc = _mm256_add_pd(
        acc, _mm256_add_pd(_mm256_mul_pd(xr, a), _mm256_mul_pd(xi, b)));
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  return {lanes[0], lanes[1], lanes[2], lanes[3]};
}

void cmac_avx2(double* out_re, double* out_im, const double* in_re,
               const double* in_im, double gr, double gi, std::size_t n) {
  const __m256d vgr = _mm256_set1_pd(gr);
  const __m256d vgi = _mm256_set1_pd(gi);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d ir = _mm256_loadu_pd(in_re + i);
    const __m256d ii = _mm256_loadu_pd(in_im + i);
    __m256d orr = _mm256_loadu_pd(out_re + i);
    __m256d oii = _mm256_loadu_pd(out_im + i);
    orr = _mm256_add_pd(orr, _mm256_sub_pd(_mm256_mul_pd(vgr, ir),
                                           _mm256_mul_pd(vgi, ii)));
    oii = _mm256_add_pd(oii, _mm256_add_pd(_mm256_mul_pd(vgr, ii),
                                           _mm256_mul_pd(vgi, ir)));
    _mm256_storeu_pd(out_re + i, orr);
    _mm256_storeu_pd(out_im + i, oii);
  }
  for (; i < n; ++i) {
    out_re[i] += gr * in_re[i] - gi * in_im[i];
    out_im[i] += gr * in_im[i] + gi * in_re[i];
  }
}

void fir_real_avx2(const double* taps, std::size_t t, const double* x_re,
                   const double* x_im, double* out_re, double* out_im,
                   std::size_t m) {
  const std::size_t hist = t - 1;
  std::size_t i = 0;
  // Four outputs per iteration; each vector lane is one output's own
  // sequential accumulation over k.
  for (; i + 4 <= m; i += 4) {
    __m256d ar = _mm256_setzero_pd();
    __m256d ai = _mm256_setzero_pd();
    const double* xr0 = x_re + hist + i;
    const double* xi0 = x_im + hist + i;
    for (std::size_t k = 0; k < t; ++k) {
      const __m256d tap = _mm256_broadcast_sd(taps + k);
      ar = _mm256_add_pd(ar, _mm256_mul_pd(tap, _mm256_loadu_pd(xr0 - k)));
      ai = _mm256_add_pd(ai, _mm256_mul_pd(tap, _mm256_loadu_pd(xi0 - k)));
    }
    _mm256_storeu_pd(out_re + i, ar);
    _mm256_storeu_pd(out_im + i, ai);
  }
  for (; i < m; ++i) {
    double ar = 0.0, ai = 0.0;
    for (std::size_t k = 0; k < t; ++k) {
      ar += taps[k] * x_re[hist + i - k];
      ai += taps[k] * x_im[hist + i - k];
    }
    out_re[i] = ar;
    out_im[i] = ai;
  }
}

void fir_cplx_avx2(const double* tap_re, const double* tap_im, std::size_t t,
                   const double* x_re, const double* x_im, double* out_re,
                   double* out_im, std::size_t m) {
  const std::size_t hist = t - 1;
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    __m256d ar = _mm256_setzero_pd();
    __m256d ai = _mm256_setzero_pd();
    const double* xr0 = x_re + hist + i;
    const double* xi0 = x_im + hist + i;
    for (std::size_t k = 0; k < t; ++k) {
      const __m256d tr = _mm256_broadcast_sd(tap_re + k);
      const __m256d ti = _mm256_broadcast_sd(tap_im + k);
      const __m256d vr = _mm256_loadu_pd(xr0 - k);
      const __m256d vi = _mm256_loadu_pd(xi0 - k);
      ar = _mm256_add_pd(
          ar, _mm256_sub_pd(_mm256_mul_pd(tr, vr), _mm256_mul_pd(ti, vi)));
      ai = _mm256_add_pd(
          ai, _mm256_add_pd(_mm256_mul_pd(tr, vi), _mm256_mul_pd(ti, vr)));
    }
    _mm256_storeu_pd(out_re + i, ar);
    _mm256_storeu_pd(out_im + i, ai);
  }
  for (; i < m; ++i) {
    double ar = 0.0, ai = 0.0;
    for (std::size_t k = 0; k < t; ++k) {
      const double vr = x_re[hist + i - k];
      const double vi = x_im[hist + i - k];
      ar += tap_re[k] * vr - tap_im[k] * vi;
      ai += tap_re[k] * vi + tap_im[k] * vr;
    }
    out_re[i] = ar;
    out_im[i] = ai;
  }
}

const KernelTable kAvx2Table = {
    &segcorr_avx2, &dual_tone_avx2, &cmac_avx2, &fir_real_avx2,
    &fir_cplx_avx2,
};

}  // namespace

const KernelTable* avx2_kernel_table() { return &kAvx2Table; }

}  // namespace hs::dsp::kernels

#else  // !defined(__AVX2__)

namespace hs::dsp::kernels {

const KernelTable* avx2_kernel_table() { return nullptr; }

}  // namespace hs::dsp::kernels

#endif
