#include "imd/profiles.hpp"

namespace hs::imd {

ImdProfile virtuoso_profile() {
  ImdProfile p;
  p.model_name = "Medtronic Virtuoso DR ICD";
  // 10-byte serial number, as on the devices the paper tested (7(a)).
  p.serial = {'V', 'I', 'R', '2', '0', '1', '1', '0', '0', '7'};
  return p;
}

ImdProfile concerto_profile() {
  ImdProfile p;
  p.model_name = "Medtronic Concerto CRT-D";
  p.serial = {'C', 'O', 'N', '2', '0', '1', '1', '0', '4', '2'};
  // Slightly different reply latency within the shield's [T1, T2] bounds.
  p.reply_delay_mean_s = 3.3e-3;
  return p;
}

}  // namespace hs::imd
