#include "imd/protocol.hpp"

namespace hs::imd {

const char* message_type_name(MessageType t) {
  switch (t) {
    case MessageType::kInterrogate:
      return "interrogate";
    case MessageType::kReadTherapy:
      return "read-therapy";
    case MessageType::kSetTherapy:
      return "set-therapy";
    case MessageType::kDataResponse:
      return "data-response";
    case MessageType::kTherapyResponse:
      return "therapy-response";
    case MessageType::kAck:
      return "ack";
  }
  return "unknown";
}

bool is_command(MessageType t) {
  return t == MessageType::kInterrogate || t == MessageType::kReadTherapy ||
         t == MessageType::kSetTherapy;
}

namespace {

phy::Frame base_frame(const phy::DeviceId& id, MessageType type,
                      std::uint8_t seq) {
  phy::Frame f;
  f.device_id = id;
  f.type = static_cast<std::uint8_t>(type);
  f.seq = seq;
  return f;
}

}  // namespace

phy::Frame make_interrogate(const phy::DeviceId& id, std::uint8_t seq) {
  return base_frame(id, MessageType::kInterrogate, seq);
}

phy::Frame make_read_therapy(const phy::DeviceId& id, std::uint8_t seq) {
  return base_frame(id, MessageType::kReadTherapy, seq);
}

phy::Frame make_set_therapy(const phy::DeviceId& id, std::uint8_t seq,
                            const TherapySettings& settings) {
  phy::Frame f = base_frame(id, MessageType::kSetTherapy, seq);
  f.payload = settings.encode();
  return f;
}

phy::Frame make_data_response(const phy::DeviceId& id, std::uint8_t seq,
                              phy::ByteView data) {
  phy::Frame f = base_frame(id, MessageType::kDataResponse, seq);
  f.payload.assign(data.begin(), data.end());
  return f;
}

phy::Frame make_therapy_response(const phy::DeviceId& id, std::uint8_t seq,
                                 const TherapySettings& settings) {
  phy::Frame f = base_frame(id, MessageType::kTherapyResponse, seq);
  f.payload = settings.encode();
  return f;
}

phy::Frame make_ack(const phy::DeviceId& id, std::uint8_t seq,
                    MessageType acked) {
  phy::Frame f = base_frame(id, MessageType::kAck, seq);
  f.payload = {static_cast<std::uint8_t>(acked)};
  return f;
}

std::optional<TherapySettings> parse_therapy(const phy::Frame& frame) {
  TherapySettings settings;
  if (!TherapySettings::decode(
          phy::ByteView(frame.payload.data(), frame.payload.size()),
          settings)) {
    return std::nullopt;
  }
  return settings;
}

}  // namespace hs::imd
