// The IMD programmer as a simulation node: sends commands, collects
// responses, optionally performing the FCC 10 ms listen-before-talk.
// Also the signal source the paper's replay adversary records (section 9).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "channel/medium.hpp"
#include "imd/protocol.hpp"
#include "mics/lbt.hpp"
#include "phy/receiver.hpp"
#include "sim/node.hpp"
#include "sim/trace.hpp"
#include "sim/transmit_scheduler.hpp"

namespace hs::imd {

struct ProgrammerConfig {
  channel::Vec2 position{1.5, 0.0};
  double tx_power_dbm = -16.0;  ///< FCC MICS limit
  phy::FskParams fsk{};
  bool lbt_enabled = false;     ///< perform 10 ms CCA before transmitting
};

class ProgrammerNode : public sim::RadioNode {
 public:
  ProgrammerNode(const ProgrammerConfig& config, channel::Medium& medium,
                 sim::EventLog* log);

  /// Returns the node to the state a fresh `ProgrammerNode(config,
  /// medium, log)` would have, re-registering its antenna with `medium`
  /// (which the caller has just reset); campaign trial-pool hook.
  void reset(const ProgrammerConfig& config, channel::Medium& medium,
             sim::EventLog* log);

  // sim::RadioNode
  void produce(const sim::StepContext& ctx, channel::Medium& medium) override;
  void consume(const sim::StepContext& ctx, channel::Medium& medium) override;
  std::string_view name() const override { return name_; }

  channel::AntennaId antenna() const { return antenna_; }

  /// Queues a command for transmission as soon as allowed (immediately, or
  /// after LBT declares the channel clear when enabled).
  void send(const phy::Frame& frame);

  /// Schedules a frame at an absolute sample index (used by the Fig. 3
  /// experiment to transmit while the medium is known to be busy).
  void send_at(const phy::Frame& frame, std::size_t start_sample);

  /// Responses decoded so far (CRC-valid frames from the IMD).
  const std::vector<phy::ReceivedFrame>& responses() const {
    return responses_;
  }
  void clear_responses() { responses_.clear(); }

  /// True while a queued command is waiting for LBT clearance.
  bool waiting_for_clear_channel() const { return !pending_.empty(); }

 private:
  void register_with_medium(channel::Medium& medium);

  ProgrammerConfig config_;
  std::string name_;
  channel::AntennaId antenna_;
  sim::EventLog* log_;

  phy::FskModulator modulator_;
  phy::FskReceiver receiver_;
  mics::ClearChannelAssessment cca_;
  sim::TransmitScheduler tx_;
  double tx_amplitude_;

  std::vector<phy::Frame> pending_;
  std::vector<phy::ReceivedFrame> responses_;
};

}  // namespace hs::imd
