// Behavioural profiles of the two commercial IMDs the paper evaluates
// against: the Medtronic Virtuoso DR implantable cardiac defibrillator and
// the Medtronic Concerto cardiac resynchronization therapy device. Both
// behaved identically in the paper's experiments (section 10), so the
// profiles differ only in identity; the timing parameters are those the
// paper measured and calibrated (sections 6 and 10.1):
//   reply delay ~3.5 ms after the programmer's message (Fig. 3),
//   shield bounds T1 = 2.8 ms, T2 = 3.7 ms, max packet P = 21 ms.
#pragma once

#include <cstdint>
#include <string>

#include "phy/frame.hpp"
#include "phy/fsk.hpp"

namespace hs::imd {

struct ImdProfile {
  std::string model_name;
  phy::DeviceId serial{};

  phy::FskParams fsk{};  ///< 2-FSK at +-50 kHz in a 300 kHz channel (Fig. 4)

  double reply_delay_mean_s = 3.5e-3;    ///< Fig. 3's fixed interval
  double reply_delay_jitter_s = 0.15e-3; ///< stays within [T1, T2]
  double max_packet_duration_s = 21e-3;  ///< P

  double tx_power_dbm = -16.0;  ///< at the radio; body loss applies outside
  double body_loss_db = 20.0;   ///< in-body attenuation (up to 40 dB [47])

  /// Receive sensitivity: minimum RSSI at which the device wakes and
  /// attempts decoding. Calibrated so an FCC-power programmer reaches the
  /// device to about 14 m through one wall, as in Fig. 11.
  double sensitivity_dbm = -91.5;

  /// Patient data returned per interrogation (bytes per response frame).
  std::size_t data_chunk_bytes = 32;
};

/// Medtronic Virtuoso DR ICD profile.
ImdProfile virtuoso_profile();

/// Medtronic Concerto CRT profile.
ImdProfile concerto_profile();

}  // namespace hs::imd
