#include "imd/battery.hpp"

#include <algorithm>

namespace hs::imd {

Battery::Battery(double capacity_mj, double tx_power_mw, double idle_power_mw)
    : capacity_mj_(capacity_mj),
      tx_power_mw_(tx_power_mw),
      idle_power_mw_(idle_power_mw),
      remaining_mj_(capacity_mj) {}

void Battery::drain_tx(double seconds) {
  const double spent = tx_power_mw_ * seconds;
  tx_spent_mj_ += spent;
  remaining_mj_ = std::max(0.0, remaining_mj_ - spent);
}

void Battery::drain_idle(double seconds) {
  remaining_mj_ = std::max(0.0, remaining_mj_ - idle_power_mw_ * seconds);
}

}  // namespace hs::imd
