#include "imd/battery.hpp"

#include <algorithm>

#include "snapshot/state_io.hpp"

namespace hs::imd {

Battery::Battery(double capacity_mj, double tx_power_mw, double idle_power_mw)
    : capacity_mj_(capacity_mj),
      tx_power_mw_(tx_power_mw),
      idle_power_mw_(idle_power_mw),
      remaining_mj_(capacity_mj) {}

void Battery::drain_tx(double seconds) {
  const double spent = tx_power_mw_ * seconds;
  tx_spent_mj_ += spent;
  remaining_mj_ = std::max(0.0, remaining_mj_ - spent);
}

void Battery::drain_idle(double seconds) {
  remaining_mj_ = std::max(0.0, remaining_mj_ - idle_power_mw_ * seconds);
}

void Battery::save_state(snapshot::StateWriter& w) const {
  w.begin("battery");
  w.f64("capacity_mj", capacity_mj_);
  w.f64("tx_power_mw", tx_power_mw_);
  w.f64("idle_power_mw", idle_power_mw_);
  w.f64("remaining_mj", remaining_mj_);
  w.f64("tx_spent_mj", tx_spent_mj_);
  w.end("battery");
}

void Battery::load_state(snapshot::StateReader& r) {
  r.begin("battery");
  capacity_mj_ = r.f64("capacity_mj");
  tx_power_mw_ = r.f64("tx_power_mw");
  idle_power_mw_ = r.f64("idle_power_mw");
  remaining_mj_ = r.f64("remaining_mj");
  tx_spent_mj_ = r.f64("tx_spent_mj");
  r.end("battery");
}

}  // namespace hs::imd
