#include "imd/device.hpp"

#include <cmath>

#include "channel/geometry.hpp"
#include "dsp/units.hpp"
#include "snapshot/state_io.hpp"

namespace hs::imd {

using channel::AntennaDesc;

namespace {

phy::ReceiverOptions imd_receiver_options(const ImdProfile& profile) {
  return phy::ReceiverOptions{
      .detect_threshold = 0.82,
      .sync_tolerance = 4,
      .max_frame_bits = 1024,
      .gate_factor = 4.0,
      .min_gate_power = dsp::dbm_to_mw(profile.sensitivity_dbm),
  };
}

}  // namespace

ImdDevice::ImdDevice(const ImdProfile& profile, channel::Medium& medium,
                     sim::EventLog* log, std::uint64_t seed)
    : profile_(profile),
      name_("imd/" + profile.model_name),
      log_(log),
      rng_(seed, "imd-device"),
      receiver_(profile.fsk, imd_receiver_options(profile)),
      modulator_(profile.fsk),
      tx_amplitude_(std::sqrt(dsp::dbm_to_mw(profile.tx_power_dbm))) {
  register_with_medium(medium);
  fill_patient_data();
}

void ImdDevice::register_with_medium(channel::Medium& medium) {
  AntennaDesc desc;
  desc.name = name_ + "/antenna";
  desc.position = channel::kImdPosition;
  desc.body_loss_db = profile_.body_loss_db;
  antenna_ = medium.add_antenna(desc);
}

void ImdDevice::fill_patient_data() {
  // Synthetic "patient data" the device returns on interrogation.
  patient_data_.resize(1024);
  for (std::size_t i = 0; i < patient_data_.size(); ++i) {
    patient_data_[i] = static_cast<std::uint8_t>(rng_.next_u64());
  }
}

void ImdDevice::reset(const ImdProfile& profile, channel::Medium& medium,
                      sim::EventLog* log, std::uint64_t seed) {
  // Mirror of the constructor, member for member (the campaign trial-pool
  // determinism test asserts the equivalence).
  profile_ = profile;
  name_ = "imd/" + profile.model_name;
  log_ = log;
  rng_ = dsp::Rng(seed, "imd-device");
  receiver_ = phy::FskReceiver(profile.fsk, imd_receiver_options(profile));
  modulator_ = phy::FskModulator(profile.fsk);
  tx_ = sim::TransmitScheduler();
  tx_amplitude_ = std::sqrt(dsp::dbm_to_mw(profile.tx_power_dbm));
  therapy_ = TherapySettings{};
  battery_ = Battery();
  stats_ = ImdStats{};
  data_cursor_ = 0;
  last_tx_bits_.clear();
  last_tx_start_ = 0;
  register_with_medium(medium);
  fill_patient_data();
}

void ImdDevice::reseed(std::uint64_t trial_seed) {
  rng_ = dsp::Rng(trial_seed, "imd-device");
}

void ImdDevice::save_state(snapshot::StateWriter& w) const {
  w.begin("imd-device");
  w.str("model", profile_.model_name);
  w.u64("antenna", antenna_);
  snapshot::write_rng(w, "rng", rng_);
  receiver_.save_state(w);
  w.f64("mod_phase", modulator_.phase());
  tx_.save_state(w);
  w.u64("therapy.pacing_rate_bpm", therapy_.pacing_rate_bpm);
  w.u64("therapy.shock_energy", therapy_.shock_energy_half_joules);
  w.u64("therapy.mode", static_cast<std::uint64_t>(therapy_.mode));
  w.u64("therapy.tachy_threshold_bpm", therapy_.tachy_threshold_bpm);
  battery_.save_state(w);
  w.u64("stats.frames_detected", stats_.frames_detected);
  w.u64("stats.frames_accepted", stats_.frames_accepted);
  w.u64("stats.crc_failures", stats_.crc_failures);
  w.u64("stats.wrong_device", stats_.wrong_device);
  w.u64("stats.replies_sent", stats_.replies_sent);
  w.u64("stats.therapy_changes", stats_.therapy_changes);
  w.bytes("patient_data", patient_data_);
  w.u64("data_cursor", data_cursor_);
  w.bytes("last_tx_bits", last_tx_bits_);
  w.u64("last_tx_start", last_tx_start_);
  w.end("imd-device");
}

void ImdDevice::load_state(snapshot::StateReader& r) {
  r.begin("imd-device");
  if (r.str("model") != profile_.model_name) {
    throw snapshot::SnapshotError("snapshot: IMD profile mismatch");
  }
  antenna_ = r.u64("antenna");
  snapshot::read_rng(r, "rng", rng_);
  receiver_.load_state(r);
  modulator_.set_phase(r.f64("mod_phase"));
  tx_.load_state(r);
  therapy_.pacing_rate_bpm =
      static_cast<std::uint8_t>(r.u64("therapy.pacing_rate_bpm"));
  therapy_.shock_energy_half_joules =
      static_cast<std::uint8_t>(r.u64("therapy.shock_energy"));
  const std::uint64_t mode = r.u64("therapy.mode");
  if (mode > static_cast<std::uint64_t>(PacingMode::kOff)) {
    throw snapshot::SnapshotError("snapshot: unknown pacing mode");
  }
  therapy_.mode = static_cast<PacingMode>(mode);
  therapy_.tachy_threshold_bpm =
      static_cast<std::uint8_t>(r.u64("therapy.tachy_threshold_bpm"));
  battery_.load_state(r);
  stats_.frames_detected = r.u64("stats.frames_detected");
  stats_.frames_accepted = r.u64("stats.frames_accepted");
  stats_.crc_failures = r.u64("stats.crc_failures");
  stats_.wrong_device = r.u64("stats.wrong_device");
  stats_.replies_sent = r.u64("stats.replies_sent");
  stats_.therapy_changes = r.u64("stats.therapy_changes");
  patient_data_ = r.bytes("patient_data");
  data_cursor_ = r.u64("data_cursor");
  last_tx_bits_ = r.bytes("last_tx_bits");
  last_tx_start_ = r.u64("last_tx_start");
  r.end("imd-device");
}

void ImdDevice::produce(const sim::StepContext& ctx, channel::Medium& medium) {
  dsp::Samples block;
  if (tx_.fill(ctx.block_start_sample(), ctx.block_size, block)) {
    std::size_t active = 0;
    for (auto& x : block) {
      if (std::norm(x) > 0.0) {
        x *= tx_amplitude_;
        ++active;
      }
    }
    medium.set_tx(antenna_, block);
    battery_.drain_tx(static_cast<double>(active) / ctx.fs);
  }
  battery_.drain_idle(static_cast<double>(ctx.block_size) / ctx.fs);
}

void ImdDevice::consume(const sim::StepContext& ctx, channel::Medium& medium) {
  receiver_.push(medium.rx_soa(antenna_));
  while (auto rx = receiver_.pop()) {
    ++stats_.frames_detected;
    handle_frame(*rx, ctx);
  }
}

void ImdDevice::handle_frame(const phy::ReceivedFrame& rx,
                             const sim::StepContext& ctx) {
  const double t = ctx.block_start_s();
  if (rx.decode.status != phy::DecodeStatus::kOk) {
    ++stats_.crc_failures;
    if (log_ != nullptr) {
      log_->record(t, name_, sim::EventKind::kFrameCorrupted,
                   "checksum/decode failure");
    }
    return;
  }
  const phy::Frame& frame = rx.decode.frame;
  if (frame.device_id != profile_.serial) {
    ++stats_.wrong_device;
    return;
  }
  const auto type = static_cast<MessageType>(frame.type);
  if (!is_command(type)) return;  // we only react to programmer commands
  ++stats_.frames_accepted;
  if (log_ != nullptr) {
    log_->record(t, name_, sim::EventKind::kFrameReceived,
                 message_type_name(type));
  }

  // The reply goes out a fixed interval after the command's last sample,
  // regardless of what is on the medium (no carrier sense; Fig. 3).
  const std::size_t frame_end =
      rx.start_sample + rx.raw_bits.size() * profile_.fsk.sps;
  const double delay_s =
      rng_.uniform(profile_.reply_delay_mean_s - profile_.reply_delay_jitter_s,
                   profile_.reply_delay_mean_s + profile_.reply_delay_jitter_s);
  const auto delay_samples =
      static_cast<std::size_t>(std::lround(delay_s * ctx.fs));
  const std::size_t reply_at = frame_end + delay_samples;

  switch (type) {
    case MessageType::kInterrogate: {
      // Return the next chunk of stored patient data.
      const std::size_t n = profile_.data_chunk_bytes;
      phy::ByteVec chunk(n);
      for (std::size_t i = 0; i < n; ++i) {
        chunk[i] = patient_data_[(data_cursor_ + i) % patient_data_.size()];
      }
      data_cursor_ = (data_cursor_ + n) % patient_data_.size();
      schedule_reply(make_data_response(profile_.serial, frame.seq,
                                        phy::ByteView(chunk.data(), n)),
                     reply_at);
      break;
    }
    case MessageType::kReadTherapy:
      schedule_reply(
          make_therapy_response(profile_.serial, frame.seq, therapy_),
          reply_at);
      break;
    case MessageType::kSetTherapy: {
      const auto settings = parse_therapy(frame);
      if (!settings || !settings->plausible()) return;
      therapy_ = *settings;
      ++stats_.therapy_changes;
      if (log_ != nullptr) {
        log_->record(t, name_, sim::EventKind::kCommandExecuted,
                     "therapy modified");
      }
      schedule_reply(make_ack(profile_.serial, frame.seq, type), reply_at);
      break;
    }
    default:
      break;
  }
}

void ImdDevice::schedule_reply(const phy::Frame& reply,
                               std::size_t at_sample) {
  const phy::BitVec bits = phy::encode_frame(reply);
  last_tx_bits_ = bits;
  last_tx_start_ = at_sample;
  tx_.schedule(at_sample, modulator_.modulate(bits));
  ++stats_.replies_sent;
  if (log_ != nullptr) {
    log_->record(static_cast<double>(at_sample) / profile_.fsk.fs, name_,
                 sim::EventKind::kTxStart,
                 message_type_name(static_cast<MessageType>(reply.type)));
  }
}

}  // namespace hs::imd
