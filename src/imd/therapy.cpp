#include "imd/therapy.hpp"

namespace hs::imd {

phy::ByteVec TherapySettings::encode() const {
  return {pacing_rate_bpm, shock_energy_half_joules,
          static_cast<std::uint8_t>(mode), tachy_threshold_bpm};
}

bool TherapySettings::decode(phy::ByteView bytes, TherapySettings& out) {
  if (bytes.size() != 4) return false;
  if (bytes[2] > static_cast<std::uint8_t>(PacingMode::kOff)) return false;
  out.pacing_rate_bpm = bytes[0];
  out.shock_energy_half_joules = bytes[1];
  out.mode = static_cast<PacingMode>(bytes[2]);
  out.tachy_threshold_bpm = bytes[3];
  return true;
}

bool TherapySettings::plausible() const {
  if (pacing_rate_bpm < 30 || pacing_rate_bpm > 185) return false;
  if (tachy_threshold_bpm < 100) return false;
  return true;
}

}  // namespace hs::imd
