// The implantable medical device as a simulation node.
//
// Externally visible behaviour (all of which the shield's design leans on):
//  * transmits only in response to a decoded, checksum-valid command
//    addressed to its serial number (FCC rule; paper section 2),
//  * replies a fixed ~3.5 ms after the command ends, WITHOUT sensing the
//    medium (Fig. 3) — this is what lets the shield predict and jam the
//    reply window,
//  * discards any frame whose CRC fails (section 3.1's checksum
//    assumption) — this is why reactive jamming defeats active
//    adversaries,
//  * has limited receive sensitivity, and an in-body path loss applies to
//    everything it sends or receives.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dsp/rng.hpp"
#include "imd/battery.hpp"
#include "imd/profiles.hpp"
#include "imd/protocol.hpp"
#include "imd/therapy.hpp"
#include "phy/receiver.hpp"
#include "sim/node.hpp"
#include "sim/transmit_scheduler.hpp"
#include "sim/trace.hpp"

namespace hs::snapshot {
class StateWriter;
class StateReader;
}  // namespace hs::snapshot

namespace hs::imd {

struct ImdStats {
  std::size_t frames_detected = 0;   ///< sync acquired
  std::size_t frames_accepted = 0;   ///< CRC valid and addressed to us
  std::size_t crc_failures = 0;      ///< detected but checksum failed
  std::size_t wrong_device = 0;      ///< CRC valid but not our serial
  std::size_t replies_sent = 0;
  std::size_t therapy_changes = 0;
};

class ImdDevice : public sim::RadioNode {
 public:
  ImdDevice(const ImdProfile& profile, channel::Medium& medium,
            sim::EventLog* log, std::uint64_t seed);

  /// Returns the device to the state a fresh `ImdDevice(profile, medium,
  /// log, seed)` would have, re-registering its antenna with `medium`
  /// (which the caller has just reset). Part of the campaign engine's
  /// trial-context pool: reused devices behave bit-identically to newly
  /// constructed ones.
  void reset(const ImdProfile& profile, channel::Medium& medium,
             sim::EventLog* log, std::uint64_t seed);

  // sim::RadioNode
  void produce(const sim::StepContext& ctx, channel::Medium& medium) override;
  void consume(const sim::StepContext& ctx, channel::Medium& medium) override;
  std::string_view name() const override { return name_; }

  channel::AntennaId antenna() const { return antenna_; }
  const ImdProfile& profile() const { return profile_; }

  const TherapySettings& therapy() const { return therapy_; }
  void set_therapy(const TherapySettings& t) { therapy_ = t; }

  Battery& battery() { return battery_; }
  const Battery& battery() const { return battery_; }

  const ImdStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  /// Over-the-air bits of the most recent reply (ground truth for
  /// eavesdropper BER measurements) and its scheduled start sample.
  const phy::BitVec& last_tx_bits() const { return last_tx_bits_; }
  std::size_t last_tx_start_sample() const { return last_tx_start_; }

  /// Two-phase seeding, trial half: reply-jitter draws (the device's only
  /// per-trial randomness) move to the per-trial stream. Patient data,
  /// battery and protocol state stay at their post-warm-up values.
  void reseed(std::uint64_t trial_seed);

  /// Warm-state snapshot round trip of everything the device accumulates:
  /// receiver stream, scheduled replies, RNG position, modulator phase,
  /// therapy, battery, stats, patient-data cursor and ground-truth bits.
  /// The load target must have been built with the same profile; `log`
  /// and the medium registration come from the restoring deployment.
  void save_state(snapshot::StateWriter& w) const;
  void load_state(snapshot::StateReader& r);

 private:
  void handle_frame(const phy::ReceivedFrame& rx, const sim::StepContext& ctx);
  void schedule_reply(const phy::Frame& reply, std::size_t at_sample);
  void register_with_medium(channel::Medium& medium);
  void fill_patient_data();

  ImdProfile profile_;
  std::string name_;
  channel::AntennaId antenna_;
  sim::EventLog* log_;
  dsp::Rng rng_;

  phy::FskReceiver receiver_;
  phy::FskModulator modulator_;
  sim::TransmitScheduler tx_;
  double tx_amplitude_;

  TherapySettings therapy_;
  Battery battery_;
  ImdStats stats_;
  std::vector<std::uint8_t> patient_data_;
  std::size_t data_cursor_ = 0;
  phy::BitVec last_tx_bits_;
  std::size_t last_tx_start_ = 0;
};

}  // namespace hs::imd
