#include "imd/programmer.hpp"

#include <cmath>

#include "dsp/units.hpp"

namespace hs::imd {

ProgrammerNode::ProgrammerNode(const ProgrammerConfig& config,
                               channel::Medium& medium, sim::EventLog* log)
    : config_(config),
      name_("programmer"),
      log_(log),
      modulator_(config.fsk),
      receiver_(config.fsk),
      cca_(config.fsk.fs),
      tx_amplitude_(std::sqrt(dsp::dbm_to_mw(config.tx_power_dbm))) {
  register_with_medium(medium);
}

void ProgrammerNode::register_with_medium(channel::Medium& medium) {
  channel::AntennaDesc desc;
  desc.name = "programmer/antenna";
  desc.position = config_.position;
  antenna_ = medium.add_antenna(desc);
}

void ProgrammerNode::reset(const ProgrammerConfig& config,
                           channel::Medium& medium, sim::EventLog* log) {
  config_ = config;
  log_ = log;
  modulator_ = phy::FskModulator(config.fsk);
  receiver_ = phy::FskReceiver(config.fsk);
  cca_ = mics::ClearChannelAssessment(config.fsk.fs);
  tx_ = sim::TransmitScheduler();
  tx_amplitude_ = std::sqrt(dsp::dbm_to_mw(config.tx_power_dbm));
  pending_.clear();
  responses_.clear();
  register_with_medium(medium);
}

void ProgrammerNode::send(const phy::Frame& frame) {
  pending_.push_back(frame);
}

void ProgrammerNode::send_at(const phy::Frame& frame,
                             std::size_t start_sample) {
  tx_.schedule(start_sample, modulator_.modulate(phy::encode_frame(frame)));
}

void ProgrammerNode::produce(const sim::StepContext& ctx,
                             channel::Medium& medium) {
  // Release pending commands: immediately, or once the channel is clear.
  if (!pending_.empty() && (!config_.lbt_enabled || cca_.channel_clear())) {
    std::size_t at = ctx.block_start_sample();
    for (const auto& frame : pending_) {
      dsp::Samples wave = modulator_.modulate(phy::encode_frame(frame));
      const std::size_t len = wave.size();
      tx_.schedule(at, std::move(wave));
      if (log_ != nullptr) {
        log_->record(static_cast<double>(at) / ctx.fs, name_,
                     sim::EventKind::kTxStart,
                     message_type_name(static_cast<MessageType>(frame.type)));
      }
      at += len + static_cast<std::size_t>(ctx.fs * 1e-3);  // 1 ms spacing
    }
    pending_.clear();
  }
  dsp::Samples block;
  if (tx_.fill(ctx.block_start_sample(), ctx.block_size, block)) {
    for (auto& x : block) x *= tx_amplitude_;
    medium.set_tx(antenna_, block);
  }
}

void ProgrammerNode::consume(const sim::StepContext& ctx,
                             channel::Medium& medium) {
  const auto rx = medium.rx_soa(antenna_);
  cca_.push(rx);
  receiver_.push(rx);
  while (auto frame = receiver_.pop()) {
    if (frame->decode.status == phy::DecodeStatus::kOk) {
      if (log_ != nullptr) {
        log_->record(ctx.block_start_s(), name_,
                     sim::EventKind::kFrameReceived,
                     message_type_name(
                         static_cast<MessageType>(frame->decode.frame.type)));
      }
      responses_.push_back(std::move(*frame));
    }
  }
}

}  // namespace hs::imd
