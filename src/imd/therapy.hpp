// Therapy parameters of a cardiac device: what the paper's active
// adversary tries to modify and the shield protects (section 10.3, Fig. 12).
#pragma once

#include <cstdint>

#include "phy/bits.hpp"

namespace hs::imd {

enum class PacingMode : std::uint8_t {
  kVVI = 0,  ///< ventricular pacing, ventricular sensing, inhibited
  kAAI = 1,
  kDDD = 2,
  kOff = 3,
};

struct TherapySettings {
  std::uint8_t pacing_rate_bpm = 60;
  std::uint8_t shock_energy_half_joules = 70;  ///< 35 J defibrillation
  PacingMode mode = PacingMode::kDDD;
  std::uint8_t tachy_threshold_bpm = 180;

  bool operator==(const TherapySettings&) const = default;

  /// Fixed-size wire encoding (4 bytes).
  phy::ByteVec encode() const;

  /// Decodes; returns false on wrong size or invalid mode.
  static bool decode(phy::ByteView bytes, TherapySettings& out);

  /// Safety envelope check: values a real device would reject outright.
  bool plausible() const;
};

}  // namespace hs::imd
