// Battery model for a non-rechargeable IMD. The paper's first attack class
// triggers the IMD to transmit "using precious battery energy" (Fig. 11);
// this model quantifies the depletion those attacks cause.
#pragma once

#include <cstddef>

namespace hs::snapshot {
class StateWriter;
class StateReader;
}  // namespace hs::snapshot

namespace hs::imd {

class Battery {
 public:
  /// `capacity_mj` total energy in millijoules (default a small fraction
  /// of a real device's ~ 7 kJ so tests can observe depletion).
  /// `tx_power_mw` radio power draw while transmitting.
  explicit Battery(double capacity_mj = 7.0e6, double tx_power_mw = 30.0,
                   double idle_power_mw = 0.01);

  /// Accounts for transmitting for `seconds`.
  void drain_tx(double seconds);

  /// Accounts for `seconds` of baseline operation.
  void drain_idle(double seconds);

  double remaining_mj() const { return remaining_mj_; }
  double capacity_mj() const { return capacity_mj_; }
  double fraction_remaining() const { return remaining_mj_ / capacity_mj_; }
  bool depleted() const { return remaining_mj_ <= 0.0; }

  /// Total energy spent on transmissions (the attack's damage metric).
  double tx_energy_spent_mj() const { return tx_spent_mj_; }

  /// Warm-state snapshot round trip (all five energy fields).
  void save_state(snapshot::StateWriter& w) const;
  void load_state(snapshot::StateReader& r);

 private:
  double capacity_mj_;
  double tx_power_mw_;
  double idle_power_mw_;
  double remaining_mj_;
  double tx_spent_mj_ = 0.0;
};

}  // namespace hs::imd
