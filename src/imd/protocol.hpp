// Application-layer wire protocol between programmers and IMDs.
//
// Modelled on the externally observable behaviour of the Medtronic
// Virtuoso ICD / Concerto CRT sessions the paper experiments with: a
// programmer either queries the IMD for data (patient name, ECG) or sends
// it commands (therapy modification), and the IMD responds immediately
// (section 2). The two adversarial commands of section 10.3 — "trigger the
// IMD to transmit to deplete its battery" and "change therapy parameters"
// — are kInterrogate and kSetTherapy respectively.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "imd/therapy.hpp"
#include "phy/frame.hpp"

namespace hs::imd {

enum class MessageType : std::uint8_t {
  kInterrogate = 0x01,     ///< request stored patient data / ECG
  kReadTherapy = 0x02,     ///< read current therapy parameters
  kSetTherapy = 0x03,      ///< modify therapy parameters
  kDataResponse = 0x81,    ///< IMD -> programmer: patient data
  kTherapyResponse = 0x82, ///< IMD -> programmer: current therapy
  kAck = 0x83,             ///< IMD -> programmer: command accepted
};

const char* message_type_name(MessageType t);

/// True for the message types a programmer sends to an IMD.
bool is_command(MessageType t);

/// Builds an interrogation command frame.
phy::Frame make_interrogate(const phy::DeviceId& id, std::uint8_t seq);

/// Builds a read-therapy command frame.
phy::Frame make_read_therapy(const phy::DeviceId& id, std::uint8_t seq);

/// Builds a set-therapy command frame.
phy::Frame make_set_therapy(const phy::DeviceId& id, std::uint8_t seq,
                            const TherapySettings& settings);

/// Builds the IMD's data response (payload carries a patient-data chunk).
phy::Frame make_data_response(const phy::DeviceId& id, std::uint8_t seq,
                              phy::ByteView data);

/// Builds the IMD's therapy response.
phy::Frame make_therapy_response(const phy::DeviceId& id, std::uint8_t seq,
                                 const TherapySettings& settings);

/// Builds the IMD's acknowledgment.
phy::Frame make_ack(const phy::DeviceId& id, std::uint8_t seq,
                    MessageType acked);

/// Parses the therapy settings out of a kSetTherapy / kTherapyResponse
/// frame payload. Returns nullopt on malformed payload.
std::optional<TherapySettings> parse_therapy(const phy::Frame& frame);

}  // namespace hs::imd
