/// @file
/// Low-overhead observability: named counters and nanosecond phase timers
/// with thread-local accumulation, merged at chunk boundaries.
///
/// Design constraints, in order:
///   1. Instrumentation must never perturb results. Counters and timers
///      read clocks and integers only — no RNG draws, no allocation in
///      the timer path — and each worker accumulates into its own
///      thread-local block, merging into the shared `MetricsRegistry`
///      only at chunk boundaries (where the campaign engine already
///      synchronizes). Aggregates are bit-identical with metrics on or
///      off by construction.
///   2. Near-zero cost when off. Instrumentation sites call `tls()`
///      (one thread-local read + branch); timers additionally check the
///      per-thread `timers` flag snapshotted at attach time, so a run
///      without `--metrics-json` never reads the clock in a hot loop.
///   3. Associative merging. `Report::merge` is integer addition, so
///      thread-, chunk- and shard-level aggregation all commute and the
///      shard trailer merge (chunk_stream.hpp) is order-independent.
///
/// Instrumentation sites are enum-indexed (`Counter`, `Phase`) rather
/// than string-keyed: fixed arrays, no hashing on the hot path. The
/// names surface in the `--metrics-json` schema (docs/REPRODUCING.md).
/// Phases nest (a trial contains medium mixing, which a warm-up also
/// contains), so phase time shares are overlapping, not a partition.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"

namespace hs::obs {

/// Schema version of the metrics report (--metrics-json document and the
/// chunk-stream metrics trailer). v2 added the fault-tolerant dispatch
/// counters (chunks_redealt, chunks_duplicate, shards_dead,
/// shards_straggler, tasks_retried).
inline constexpr int kMetricsVersion = 2;

enum class Counter : unsigned {
  kTrials,
  kChunks,
  kChunksStolen,
  kDeploymentsBuilt,
  kDeploymentsReused,
  kSnapshotsRestored,
  kSnapshotsSaved,
  /// Chunks whose original shard lost them (dead/straggler/corrupt) and
  /// that the dispatcher handed to a repair task (src/campaign/dispatch).
  kChunksRedealt,
  /// Chunk records that arrived more than once (a straggler finishing
  /// after its chunks were re-dealt) and were suppressed before the merge.
  kChunksDuplicate,
  /// Shard tasks whose stream never completed (killed / truncated /
  /// corrupt past salvage).
  kShardsDead,
  /// Shard tasks whose results arrived only after their chunks had been
  /// re-dealt.
  kShardsStraggler,
  /// Repair tasks launched by the recovery loop.
  kTasksRetried,
  kCount_,
};
inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCount_);

std::string_view counter_name(Counter c);
/// Inverse of counter_name; returns false for unknown names.
bool counter_from_name(std::string_view name, Counter* out);

/// Instrumented phases of a campaign. Wall-clock per phase accumulates
/// only while timers are enabled for the attached thread.
enum class Phase : unsigned {
  kWarmup,           ///< deployment warm-up simulation (cold path)
  kSnapshotSave,     ///< warm-state capture + publish to the cache
  kSnapshotRestore,  ///< warm-state restore from a cached snapshot
  kMediumMix,        ///< channel::Medium::mix per-block TX->RX mixing
  kJamgen,           ///< jamming waveform synthesis (IFFT shaping)
  kReceiverDemod,    ///< FSK receiver push: detection + demodulation
  kTrial,            ///< one whole Monte Carlo trial
  kStatsMerge,       ///< sample accumulation + fixed-order chunk folds
  kChunkAcquire,     ///< dequeue/steal wait between chunks
  kCount_,
};
inline constexpr std::size_t kPhaseCount =
    static_cast<std::size_t>(Phase::kCount_);

std::string_view phase_name(Phase p);
bool phase_from_name(std::string_view name, Phase* out);

struct PhaseTotals {
  std::uint64_t calls = 0;
  std::uint64_t ns = 0;

  bool operator==(const PhaseTotals&) const = default;
};

/// One mergeable block of observability data: every counter and every
/// phase timer, fixed-size. Used as the thread-local accumulation block,
/// the registry total, and the shard-trailer payload.
struct Report {
  std::array<std::uint64_t, kCounterCount> counters{};
  std::array<PhaseTotals, kPhaseCount> phases{};

  void merge(const Report& other);
  void clear();
  bool empty() const;

  std::uint64_t counter(Counter c) const {
    return counters[static_cast<std::size_t>(c)];
  }
  const PhaseTotals& phase(Phase p) const {
    return phases[static_cast<std::size_t>(p)];
  }

  bool operator==(const Report&) const = default;
};

/// Shared sink for the thread-local blocks. One registry per campaign
/// shard execution; the timers flag is fixed at construction so attached
/// threads can snapshot it without atomics.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(bool timers_enabled = false)
      : timers_(timers_enabled) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  bool timers_enabled() const { return timers_; }

  /// Folds one thread block into the total. Thread-safe.
  void merge(const Report& block);

  /// The merged-across-threads totals. Thread-safe.
  Report report() const;

 private:
  bool timers_;
  mutable std::mutex mutex_;
  Report total_;
};

/// Per-thread observability state. Instrumentation sites reach it through
/// tls(); a null pointer (thread not attached) makes every site a no-op.
struct ThreadState {
  Report block;
  bool timers = false;
  TraceRecorder* trace = nullptr;
  std::uint32_t tid = 0;
  std::vector<TraceEvent> pending;
};

namespace detail {
extern thread_local ThreadState* t_state;
}  // namespace detail

inline ThreadState* tls() { return detail::t_state; }

/// Attaches the calling thread to a registry (and optionally a trace
/// recorder) for its lifetime. The campaign runner creates one per
/// worker; flush() is called at chunk boundaries so the shared sinks are
/// only touched between chunks. Nesting-safe: the previous attachment is
/// restored on destruction.
class WorkerScope {
 public:
  WorkerScope(MetricsRegistry* registry, TraceRecorder* trace,
              const std::string& thread_name);
  ~WorkerScope();

  WorkerScope(const WorkerScope&) = delete;
  WorkerScope& operator=(const WorkerScope&) = delete;

  /// Merges the thread block into the registry and hands pending trace
  /// events to the recorder. Call at chunk boundaries.
  void flush();

 private:
  MetricsRegistry* registry_;
  ThreadState state_;
  ThreadState* previous_;
};

/// Adds to a named counter on the attached thread's block; a detached
/// thread (tests, examples, non-campaign callers) is a no-op.
inline void count(Counter c, std::uint64_t n = 1) {
  ThreadState* ts = tls();
  if (ts != nullptr) ts->block.counters[static_cast<std::size_t>(c)] += n;
}

/// RAII phase timer. Reads the clock only when the attached thread has
/// timers enabled; otherwise costs one thread-local read and a branch.
///
/// steady_clock use is allowlisted in LINT.toml (steady-clock-scope):
/// phase timings are observability output by design (invariant 1 above)
/// and never reach campaign aggregates.
class ScopedTimer {
 public:
  explicit ScopedTimer(Phase phase) {
    ThreadState* ts = tls();
    if (ts != nullptr && ts->timers) {
      state_ = ts;
      phase_ = phase;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedTimer() {
    if (state_ != nullptr) {
      PhaseTotals& t = state_->block.phases[static_cast<std::size_t>(phase_)];
      ++t.calls;
      t.ns += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start_)
              .count());
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  ThreadState* state_ = nullptr;
  Phase phase_{};
  std::chrono::steady_clock::time_point start_{};
};

/// RAII trace span: buffers a B event at construction and the matching E
/// event at destruction on the attached thread. No-op without a trace
/// recorder. `args_json` (a preformatted JSON object) rides on the B
/// event.
class TraceSpan {
 public:
  TraceSpan(const char* category, std::string name,
            std::string args_json = {});
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  ThreadState* state_ = nullptr;
  const char* category_ = nullptr;
  std::string name_;
};

/// Buffers an instant event on the attached thread; no-op when detached
/// or not tracing.
void trace_instant(const char* category, std::string name,
                   std::string args_json = {});

}  // namespace hs::obs
