#include "obs/trace.hpp"

#include <cstdio>

namespace hs::obs {

namespace {

/// Minimal JSON string escaping for event/thread names (obs is a leaf
/// library; it cannot reuse campaign::json_escape without a cycle).
std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

TraceRecorder::TraceRecorder(std::uint32_t pid)
    : pid_(pid), epoch_(std::chrono::steady_clock::now()) {}

std::uint32_t TraceRecorder::register_thread(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint32_t tid = next_tid_++;
  TraceEvent meta;
  meta.name = "thread_name";
  meta.category = "__metadata";
  meta.phase = 'M';
  meta.ts_ns = 0;
  meta.tid = tid;
  meta.args_json = "{\"name\":\"" + escape(name) + "\"}";
  events_.push_back(std::move(meta));
  return tid;
}

void TraceRecorder::add(std::vector<TraceEvent>& events) {
  if (events.empty()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  for (TraceEvent& e : events) events_.push_back(std::move(e));
  events.clear();
}

// steady_clock and the %.3f timestamp rendering below are allowlisted
// in LINT.toml (steady-clock-scope, float-format): trace timestamps
// label the timeline for humans and are excluded from every
// byte-identity comparison.
std::uint64_t TraceRecorder::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::string TraceRecorder::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  out.reserve(events_.size() * 96 + 128);
  char buf[64];
  std::snprintf(buf, sizeof buf,
                "{\"otherData\":{\"format\":\"hs-trace\",\"version\":%d},\n",
                kTraceVersion);
  out += buf;
  out += "\"displayTimeUnit\":\"ms\",\n\"traceEvents\":[\n";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    out += "{\"name\":\"";
    out += escape(e.name);
    out += "\",\"cat\":\"";
    out += escape(e.category);
    out += "\",\"ph\":\"";
    out += e.phase;
    // Microseconds with nanosecond resolution, the trace-event ts unit.
    std::snprintf(buf, sizeof buf, "\",\"ts\":%.3f,\"pid\":%u,\"tid\":%u",
                  static_cast<double>(e.ts_ns) / 1e3, pid_, e.tid);
    out += buf;
    if (e.phase == 'i') out += ",\"s\":\"t\"";
    if (!e.args_json.empty()) {
      out += ",\"args\":";
      out += e.args_json;
    }
    out += i + 1 < events_.size() ? "},\n" : "}\n";
  }
  out += "]}\n";
  return out;
}

}  // namespace hs::obs
