/// @file
/// Chrome-trace span recorder: collects duration (B/E), instant (i) and
/// metadata (M) events from many threads and serializes them as a
/// `chrome://tracing` / Perfetto-loadable JSON document.
///
/// The recorder is deliberately dumb: threads buffer their events locally
/// (see obs/metrics.hpp WorkerScope) and hand them over in batches at
/// chunk boundaries, so recording never takes a lock inside a trial.
/// Timestamps are steady-clock nanoseconds since the recorder's epoch;
/// each thread's events are appended in capture order, so per-tid
/// timestamps are monotonic in the output — the property
/// tools/check_obs.py verifies.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace hs::obs {

/// Version of the emitted trace document ("hs-trace" in its metadata).
inline constexpr int kTraceVersion = 1;

/// One trace event. `phase` follows the Chrome trace-event format:
/// 'B'/'E' open/close a duration span on (pid, tid), 'i' is an instant,
/// 'M' carries thread metadata (thread_name).
struct TraceEvent {
  std::string name;
  const char* category = "";
  char phase = 'i';
  std::uint64_t ts_ns = 0;
  std::uint32_t tid = 0;
  std::string args_json;  ///< preformatted JSON object body, may be empty
};

class TraceRecorder {
 public:
  /// `pid` labels this process in the timeline; shard processes pass
  /// their shard index so merged-by-eye timelines stay distinguishable.
  explicit TraceRecorder(std::uint32_t pid = 0);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Assigns the calling thread a tid and records its thread_name
  /// metadata event. Thread-safe.
  std::uint32_t register_thread(const std::string& name);

  /// Appends a batch of events (a thread's pending buffer) and clears the
  /// input. Thread-safe; called at chunk boundaries, never per sample.
  void add(std::vector<TraceEvent>& events);

  /// Nanoseconds since the recorder's construction (the trace epoch).
  std::uint64_t now_ns() const;

  std::uint32_t pid() const { return pid_; }

  /// The Chrome trace-event JSON document: {"traceEvents": [...], ...}.
  std::string to_json() const;

  /// Snapshot of the recorded events, for tests. Thread-safe.
  std::vector<TraceEvent> events() const;

 private:
  std::uint32_t pid_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::uint32_t next_tid_ = 1;
  std::vector<TraceEvent> events_;
};

}  // namespace hs::obs
