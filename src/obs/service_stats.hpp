/// @file
/// Request-level observability for the campaign service daemon
/// (src/serve/): admission counters, queue-depth / active-request
/// gauges, and per-request wall + queue-wait latency windows surfaced
/// through the protocol's `{"cmd":"stats"}` endpoint.
///
/// Deliberately separate from the campaign engine's obs::Counter /
/// obs::Phase enums: those are serialized in the versioned chunk-stream
/// metrics trailer (kMetricsVersion), so growing them would force a
/// schema bump through every parser and test. Service stats are
/// process-local, never serialized into campaign artifacts, and never
/// reach byte-compared output — reports stay canonical with the service
/// layer present or absent.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace hs::obs {

/// Fixed-capacity sliding window of latency samples (most recent N),
/// with nearest-rank percentiles over the retained window. `count` is
/// the lifetime total, so a saturated window still reports how many
/// requests it summarizes a tail of. Thread-safe; recording is a mutex
/// + one store, far off any trial path.
class LatencyWindow {
 public:
  explicit LatencyWindow(std::size_t capacity = 4096);

  void record(double ms);

  struct Percentiles {
    std::uint64_t count = 0;  ///< lifetime samples, not window size
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
  };
  Percentiles percentiles() const;

 private:
  mutable std::mutex mutex_;
  std::vector<double> ring_;
  std::size_t capacity_;
  std::size_t next_ = 0;
  std::uint64_t total_ = 0;
};

/// One coherent read of every service counter/gauge; the protocol's
/// stats response is rendered from this.
struct ServiceStatsSnapshot {
  std::uint64_t requests_admitted = 0;
  std::uint64_t requests_rejected = 0;
  std::uint64_t requests_cancelled = 0;
  std::uint64_t requests_completed = 0;
  std::uint64_t chunks_executed = 0;
  std::size_t queue_depth = 0;      ///< admitted but not yet scheduled
  std::size_t active_requests = 0;  ///< in the weighted-fair set
  LatencyWindow::Percentiles wall_ms;        ///< admission -> final report
  LatencyWindow::Percentiles queue_wait_ms;  ///< admission -> first schedule
};

/// Shared by the server (admission/rejection sites) and the scheduler
/// (gauges, completion timers). All methods are thread-safe.
class ServiceStats {
 public:
  void on_admitted() { requests_admitted_.fetch_add(1, relaxed); }
  void on_rejected() { requests_rejected_.fetch_add(1, relaxed); }
  void on_cancelled() { requests_cancelled_.fetch_add(1, relaxed); }
  void on_chunk() { chunks_executed_.fetch_add(1, relaxed); }
  void on_completed(double wall_ms, double queue_wait_ms);

  void set_queue_depth(std::size_t depth) {
    queue_depth_.store(depth, relaxed);
  }
  void set_active_requests(std::size_t active) {
    active_requests_.store(active, relaxed);
  }

  ServiceStatsSnapshot snapshot() const;

 private:
  static constexpr std::memory_order relaxed = std::memory_order_relaxed;

  std::atomic<std::uint64_t> requests_admitted_{0};
  std::atomic<std::uint64_t> requests_rejected_{0};
  std::atomic<std::uint64_t> requests_cancelled_{0};
  std::atomic<std::uint64_t> requests_completed_{0};
  std::atomic<std::uint64_t> chunks_executed_{0};
  std::atomic<std::size_t> queue_depth_{0};
  std::atomic<std::size_t> active_requests_{0};
  LatencyWindow wall_ms_;
  LatencyWindow queue_wait_ms_;
};

}  // namespace hs::obs
