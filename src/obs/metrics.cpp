#include "obs/metrics.hpp"

namespace hs::obs {

namespace detail {
thread_local ThreadState* t_state = nullptr;
}  // namespace detail

namespace {

constexpr std::array<std::string_view, kCounterCount> kCounterNames = {
    "trials",
    "chunks",
    "chunks_stolen",
    "deployments_built",
    "deployments_reused",
    "snapshots_restored",
    "snapshots_saved",
    "chunks_redealt",
    "chunks_duplicate",
    "shards_dead",
    "shards_straggler",
    "tasks_retried",
};

constexpr std::array<std::string_view, kPhaseCount> kPhaseNames = {
    "warmup",
    "snapshot_save",
    "snapshot_restore",
    "medium_mix",
    "jamgen",
    "receiver_demod",
    "trial",
    "stats_merge",
    "chunk_acquire",
};

}  // namespace

std::string_view counter_name(Counter c) {
  return kCounterNames[static_cast<std::size_t>(c)];
}

bool counter_from_name(std::string_view name, Counter* out) {
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    if (kCounterNames[i] == name) {
      *out = static_cast<Counter>(i);
      return true;
    }
  }
  return false;
}

std::string_view phase_name(Phase p) {
  return kPhaseNames[static_cast<std::size_t>(p)];
}

bool phase_from_name(std::string_view name, Phase* out) {
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    if (kPhaseNames[i] == name) {
      *out = static_cast<Phase>(i);
      return true;
    }
  }
  return false;
}

void Report::merge(const Report& other) {
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    counters[i] += other.counters[i];
  }
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    phases[i].calls += other.phases[i].calls;
    phases[i].ns += other.phases[i].ns;
  }
}

void Report::clear() { *this = Report{}; }

bool Report::empty() const { return *this == Report{}; }

void MetricsRegistry::merge(const Report& block) {
  std::lock_guard<std::mutex> lock(mutex_);
  total_.merge(block);
}

Report MetricsRegistry::report() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

WorkerScope::WorkerScope(MetricsRegistry* registry, TraceRecorder* trace,
                         const std::string& thread_name)
    : registry_(registry), previous_(detail::t_state) {
  state_.timers = registry != nullptr && registry->timers_enabled();
  state_.trace = trace;
  if (trace != nullptr) state_.tid = trace->register_thread(thread_name);
  detail::t_state = &state_;
}

WorkerScope::~WorkerScope() {
  flush();
  detail::t_state = previous_;
}

void WorkerScope::flush() {
  if (registry_ != nullptr && !state_.block.empty()) {
    registry_->merge(state_.block);
    state_.block.clear();
  }
  if (state_.trace != nullptr) state_.trace->add(state_.pending);
}

TraceSpan::TraceSpan(const char* category, std::string name,
                     std::string args_json) {
  ThreadState* ts = tls();
  if (ts == nullptr || ts->trace == nullptr) return;
  state_ = ts;
  category_ = category;
  name_ = std::move(name);
  TraceEvent e;
  e.name = name_;
  e.category = category_;
  e.phase = 'B';
  e.ts_ns = ts->trace->now_ns();
  e.tid = ts->tid;
  e.args_json = std::move(args_json);
  ts->pending.push_back(std::move(e));
}

TraceSpan::~TraceSpan() {
  if (state_ == nullptr) return;
  TraceEvent e;
  e.name = std::move(name_);
  e.category = category_;
  e.phase = 'E';
  e.ts_ns = state_->trace->now_ns();
  e.tid = state_->tid;
  state_->pending.push_back(std::move(e));
}

void trace_instant(const char* category, std::string name,
                   std::string args_json) {
  ThreadState* ts = tls();
  if (ts == nullptr || ts->trace == nullptr) return;
  TraceEvent e;
  e.name = std::move(name);
  e.category = category;
  e.phase = 'i';
  e.ts_ns = ts->trace->now_ns();
  e.tid = ts->tid;
  e.args_json = std::move(args_json);
  ts->pending.push_back(std::move(e));
}

}  // namespace hs::obs
