#include "obs/service_stats.hpp"

#include <algorithm>
#include <cmath>

namespace hs::obs {

LatencyWindow::LatencyWindow(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  ring_.reserve(capacity_);
}

void LatencyWindow::record(double ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(ms);
  } else {
    ring_[next_] = ms;
  }
  next_ = (next_ + 1) % capacity_;
  ++total_;
}

LatencyWindow::Percentiles LatencyWindow::percentiles() const {
  std::vector<double> sorted;
  std::uint64_t total;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sorted = ring_;
    total = total_;
  }
  Percentiles out;
  out.count = total;
  if (sorted.empty()) return out;
  std::sort(sorted.begin(), sorted.end());
  // Nearest-rank: p-th percentile is element ceil(p/100 * n), 1-based.
  const auto rank = [&](double p) {
    const auto n = static_cast<double>(sorted.size());
    const auto r = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
    return sorted[std::min(std::max<std::size_t>(r, 1), sorted.size()) - 1];
  };
  out.p50 = rank(50.0);
  out.p90 = rank(90.0);
  out.p99 = rank(99.0);
  out.max = sorted.back();
  return out;
}

void ServiceStats::on_completed(double wall_ms, double queue_wait_ms) {
  requests_completed_.fetch_add(1, relaxed);
  wall_ms_.record(wall_ms);
  queue_wait_ms_.record(queue_wait_ms);
}

ServiceStatsSnapshot ServiceStats::snapshot() const {
  ServiceStatsSnapshot s;
  s.requests_admitted = requests_admitted_.load(relaxed);
  s.requests_rejected = requests_rejected_.load(relaxed);
  s.requests_cancelled = requests_cancelled_.load(relaxed);
  s.requests_completed = requests_completed_.load(relaxed);
  s.chunks_executed = chunks_executed_.load(relaxed);
  s.queue_depth = queue_depth_.load(relaxed);
  s.active_requests = active_requests_.load(relaxed);
  s.wall_ms = wall_ms_.percentiles();
  s.queue_wait_ms = queue_wait_ms_.percentiles();
  return s;
}

}  // namespace hs::obs
