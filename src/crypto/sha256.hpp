// SHA-256 (FIPS 180-4), from scratch. Backs HMAC/HKDF key derivation for
// the shield <-> programmer secure channel the paper assumes in section 4.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace hs::crypto {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256();

  /// Absorbs more input. May be called repeatedly.
  void update(ByteView data);

  /// Finalizes and returns the digest. The object must not be reused
  /// afterwards without calling reset().
  Digest finalize();

  /// Resets to the initial state.
  void reset();

  /// One-shot convenience.
  static Digest hash(ByteView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// HMAC-SHA256 (RFC 2104).
Sha256::Digest hmac_sha256(ByteView key, ByteView message);

/// HKDF-SHA256 extract+expand (RFC 5869). `length` <= 255*32.
Bytes hkdf_sha256(ByteView salt, ByteView ikm, ByteView info,
                  std::size_t length);

}  // namespace hs::crypto
