// ChaCha20-Poly1305 AEAD (RFC 8439 section 2.8).
#pragma once

#include <optional>

#include "crypto/chacha20.hpp"
#include "crypto/poly1305.hpp"

namespace hs::crypto {

class Aead {
 public:
  using Key = ChaCha20::Key;
  using Nonce = ChaCha20::Nonce;
  using Tag = Poly1305::Tag;

  struct Sealed {
    Bytes ciphertext;
    Tag tag;
  };

  /// Encrypts `plaintext` and authenticates it together with `aad`.
  static Sealed seal(const Key& key, const Nonce& nonce, ByteView plaintext,
                     ByteView aad);

  /// Verifies and decrypts. Returns nullopt if authentication fails.
  static std::optional<Bytes> open(const Key& key, const Nonce& nonce,
                                   ByteView ciphertext, const Tag& tag,
                                   ByteView aad);
};

}  // namespace hs::crypto
