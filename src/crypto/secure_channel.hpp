// Authenticated encrypted session between the shield and an authorized
// programmer (paper section 4: "We assume the existence of an authenticated,
// encrypted channel between the shield and the programmer").
//
// The channel derives directional keys from a pre-shared secret with
// HKDF-SHA256, encrypts each message with ChaCha20-Poly1305 under a
// monotonically increasing sequence-number nonce, and rejects replays and
// reordering beyond a sliding window.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "crypto/aead.hpp"

namespace hs::crypto {

/// Identifies which end of the channel this endpoint is; the two directions
/// use independent keys.
enum class ChannelRole { kShield, kProgrammer };

class SecureChannel {
 public:
  /// `psk` is the pre-shared pairing secret (e.g., provisioned by the
  /// clinic); `session_id` must be unique per session (the shield picks a
  /// random one and sends it in the clear during session setup).
  SecureChannel(ChannelRole role, ByteView psk, std::uint64_t session_id);

  struct Envelope {
    std::uint64_t sequence = 0;
    Bytes ciphertext;
    Aead::Tag tag;
  };

  /// Encrypts and authenticates an outgoing message.
  Envelope send(ByteView plaintext);

  /// Verifies, decrypts, and replay-checks an incoming envelope.
  /// Returns nullopt on authentication failure or replay.
  std::optional<Bytes> receive(const Envelope& envelope);

  std::uint64_t session_id() const { return session_id_; }
  std::uint64_t next_send_sequence() const { return send_seq_; }

 private:
  Aead::Nonce make_nonce(std::uint64_t sequence, bool sending) const;

  Aead::Key send_key_;
  Aead::Key recv_key_;
  std::uint64_t session_id_;
  std::uint64_t send_seq_ = 0;
  // Sliding replay window over receive sequence numbers.
  std::uint64_t recv_highest_ = 0;
  std::uint64_t recv_window_ = 0;  // bit i => (recv_highest_ - i) seen
  bool recv_any_ = false;
};

}  // namespace hs::crypto
