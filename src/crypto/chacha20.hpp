// ChaCha20 stream cipher (RFC 8439), from scratch.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "crypto/sha256.hpp"  // for Bytes/ByteView aliases

namespace hs::crypto {

class ChaCha20 {
 public:
  static constexpr std::size_t kKeySize = 32;
  static constexpr std::size_t kNonceSize = 12;
  static constexpr std::size_t kBlockSize = 64;

  using Key = std::array<std::uint8_t, kKeySize>;
  using Nonce = std::array<std::uint8_t, kNonceSize>;

  ChaCha20(const Key& key, const Nonce& nonce, std::uint32_t counter = 0);

  /// XORs the keystream into `data` (encrypt == decrypt).
  void apply(std::uint8_t* data, std::size_t len);
  Bytes apply(ByteView data);

  /// Generates one raw 64-byte keystream block at the given counter
  /// (used by Poly1305 key derivation, which needs block 0).
  static std::array<std::uint8_t, kBlockSize> block(const Key& key,
                                                    const Nonce& nonce,
                                                    std::uint32_t counter);

 private:
  void refill();

  std::array<std::uint32_t, 16> state_;
  std::array<std::uint8_t, kBlockSize> keystream_;
  std::size_t keystream_pos_ = kBlockSize;  // forces refill on first use
};

}  // namespace hs::crypto
