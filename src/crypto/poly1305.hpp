// Poly1305 one-time authenticator (RFC 8439), from scratch.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "crypto/sha256.hpp"  // Bytes/ByteView

namespace hs::crypto {

class Poly1305 {
 public:
  static constexpr std::size_t kKeySize = 32;
  static constexpr std::size_t kTagSize = 16;

  using Key = std::array<std::uint8_t, kKeySize>;
  using Tag = std::array<std::uint8_t, kTagSize>;

  explicit Poly1305(const Key& key);

  void update(ByteView data);
  Tag finalize();

  /// One-shot MAC.
  static Tag mac(const Key& key, ByteView data);

  /// Constant-time tag comparison.
  static bool verify(const Tag& a, const Tag& b);

 private:
  void process_block(const std::uint8_t* block, std::size_t len, bool final);

  // 130-bit accumulator in 26-bit limbs.
  std::uint32_t r_[5];
  std::uint32_t h_[5];
  std::uint32_t pad_[4];
  std::array<std::uint8_t, 16> buffer_;
  std::size_t buffer_len_ = 0;
};

}  // namespace hs::crypto
