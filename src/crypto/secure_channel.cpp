#include "crypto/secure_channel.hpp"

#include <cstring>

namespace hs::crypto {
namespace {

constexpr std::uint64_t kReplayWindowBits = 64;

Aead::Key derive_key(ByteView psk, std::uint64_t session_id,
                     std::string_view label) {
  std::uint8_t salt[8];
  for (int i = 0; i < 8; ++i) {
    salt[i] = static_cast<std::uint8_t>(session_id >> (8 * i));
  }
  const auto okm = hkdf_sha256(
      ByteView(salt, 8), psk,
      ByteView(reinterpret_cast<const std::uint8_t*>(label.data()),
               label.size()),
      Aead::Key{}.size());
  Aead::Key key;
  std::memcpy(key.data(), okm.data(), key.size());
  return key;
}

}  // namespace

SecureChannel::SecureChannel(ChannelRole role, ByteView psk,
                             std::uint64_t session_id)
    : session_id_(session_id) {
  const auto shield_to_prog = derive_key(psk, session_id, "shield->prog");
  const auto prog_to_shield = derive_key(psk, session_id, "prog->shield");
  if (role == ChannelRole::kShield) {
    send_key_ = shield_to_prog;
    recv_key_ = prog_to_shield;
  } else {
    send_key_ = prog_to_shield;
    recv_key_ = shield_to_prog;
  }
}

Aead::Nonce SecureChannel::make_nonce(std::uint64_t sequence,
                                      bool /*sending*/) const {
  // 12-byte nonce: 4 bytes of session id low bits, 8 bytes of sequence.
  Aead::Nonce nonce{};
  for (int i = 0; i < 4; ++i) {
    nonce[i] = static_cast<std::uint8_t>(session_id_ >> (8 * i));
  }
  for (int i = 0; i < 8; ++i) {
    nonce[4 + i] = static_cast<std::uint8_t>(sequence >> (8 * i));
  }
  return nonce;
}

SecureChannel::Envelope SecureChannel::send(ByteView plaintext) {
  Envelope env;
  env.sequence = send_seq_++;
  std::uint8_t aad[16];
  for (int i = 0; i < 8; ++i) {
    aad[i] = static_cast<std::uint8_t>(session_id_ >> (8 * i));
    aad[8 + i] = static_cast<std::uint8_t>(env.sequence >> (8 * i));
  }
  const auto sealed = Aead::seal(send_key_, make_nonce(env.sequence, true),
                                 plaintext, ByteView(aad, 16));
  env.ciphertext = sealed.ciphertext;
  env.tag = sealed.tag;
  return env;
}

std::optional<Bytes> SecureChannel::receive(const Envelope& envelope) {
  // Replay check before decryption work.
  if (recv_any_) {
    if (envelope.sequence <= recv_highest_) {
      const std::uint64_t age = recv_highest_ - envelope.sequence;
      if (age >= kReplayWindowBits) return std::nullopt;     // too old
      if (recv_window_ & (1ULL << age)) return std::nullopt;  // replay
    }
  }
  std::uint8_t aad[16];
  for (int i = 0; i < 8; ++i) {
    aad[i] = static_cast<std::uint8_t>(session_id_ >> (8 * i));
    aad[8 + i] = static_cast<std::uint8_t>(envelope.sequence >> (8 * i));
  }
  auto plain = Aead::open(
      recv_key_, make_nonce(envelope.sequence, false),
      ByteView(envelope.ciphertext.data(), envelope.ciphertext.size()),
      envelope.tag, ByteView(aad, 16));
  if (!plain) return std::nullopt;

  // Advance the replay window only after successful authentication.
  if (!recv_any_ || envelope.sequence > recv_highest_) {
    const std::uint64_t shift =
        recv_any_ ? envelope.sequence - recv_highest_ : 0;
    recv_window_ = (shift >= kReplayWindowBits) ? 0 : (recv_window_ << shift);
    recv_window_ |= 1ULL;
    recv_highest_ = envelope.sequence;
    recv_any_ = true;
  } else {
    recv_window_ |= (1ULL << (recv_highest_ - envelope.sequence));
  }
  return plain;
}

}  // namespace hs::crypto
