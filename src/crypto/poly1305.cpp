#include "crypto/poly1305.hpp"

#include <cstring>

namespace hs::crypto {
namespace {

std::uint32_t load_le32(const std::uint8_t* p) {
  return std::uint32_t(p[0]) | (std::uint32_t(p[1]) << 8) |
         (std::uint32_t(p[2]) << 16) | (std::uint32_t(p[3]) << 24);
}

}  // namespace

Poly1305::Poly1305(const Key& key) {
  // r with required clamping.
  r_[0] = load_le32(key.data() + 0) & 0x3ffffff;
  r_[1] = (load_le32(key.data() + 3) >> 2) & 0x3ffff03;
  r_[2] = (load_le32(key.data() + 6) >> 4) & 0x3ffc0ff;
  r_[3] = (load_le32(key.data() + 9) >> 6) & 0x3f03fff;
  r_[4] = (load_le32(key.data() + 12) >> 8) & 0x00fffff;
  for (int i = 0; i < 5; ++i) h_[i] = 0;
  for (int i = 0; i < 4; ++i) pad_[i] = load_le32(key.data() + 16 + 4 * i);
}

void Poly1305::process_block(const std::uint8_t* block, std::size_t len,
                             bool final) {
  std::uint8_t tmp[17] = {0};
  std::memcpy(tmp, block, len);
  const std::uint32_t hibit = final && len < 16 ? 0 : (1 << 24);
  if (final && len < 16) tmp[len] = 1;

  h_[0] += load_le32(tmp + 0) & 0x3ffffff;
  h_[1] += (load_le32(tmp + 3) >> 2) & 0x3ffffff;
  h_[2] += (load_le32(tmp + 6) >> 4) & 0x3ffffff;
  h_[3] += (load_le32(tmp + 9) >> 6) & 0x3ffffff;
  h_[4] += (load_le32(tmp + 12) >> 8) | hibit;

  const std::uint64_t s1 = r_[1] * 5, s2 = r_[2] * 5, s3 = r_[3] * 5,
                      s4 = r_[4] * 5;
  std::uint64_t d0 = (std::uint64_t)h_[0] * r_[0] + (std::uint64_t)h_[1] * s4 +
                     (std::uint64_t)h_[2] * s3 + (std::uint64_t)h_[3] * s2 +
                     (std::uint64_t)h_[4] * s1;
  std::uint64_t d1 = (std::uint64_t)h_[0] * r_[1] +
                     (std::uint64_t)h_[1] * r_[0] + (std::uint64_t)h_[2] * s4 +
                     (std::uint64_t)h_[3] * s3 + (std::uint64_t)h_[4] * s2;
  std::uint64_t d2 = (std::uint64_t)h_[0] * r_[2] +
                     (std::uint64_t)h_[1] * r_[1] +
                     (std::uint64_t)h_[2] * r_[0] + (std::uint64_t)h_[3] * s4 +
                     (std::uint64_t)h_[4] * s3;
  std::uint64_t d3 = (std::uint64_t)h_[0] * r_[3] +
                     (std::uint64_t)h_[1] * r_[2] +
                     (std::uint64_t)h_[2] * r_[1] +
                     (std::uint64_t)h_[3] * r_[0] + (std::uint64_t)h_[4] * s4;
  std::uint64_t d4 = (std::uint64_t)h_[0] * r_[4] +
                     (std::uint64_t)h_[1] * r_[3] +
                     (std::uint64_t)h_[2] * r_[2] +
                     (std::uint64_t)h_[3] * r_[1] +
                     (std::uint64_t)h_[4] * r_[0];

  std::uint64_t c = d0 >> 26;
  h_[0] = d0 & 0x3ffffff;
  d1 += c;
  c = d1 >> 26;
  h_[1] = d1 & 0x3ffffff;
  d2 += c;
  c = d2 >> 26;
  h_[2] = d2 & 0x3ffffff;
  d3 += c;
  c = d3 >> 26;
  h_[3] = d3 & 0x3ffffff;
  d4 += c;
  c = d4 >> 26;
  h_[4] = d4 & 0x3ffffff;
  h_[0] += static_cast<std::uint32_t>(c * 5);
  c = h_[0] >> 26;
  h_[0] &= 0x3ffffff;
  h_[1] += static_cast<std::uint32_t>(c);
}

void Poly1305::update(ByteView data) {
  std::size_t offset = 0;
  if (buffer_len_ > 0) {
    const std::size_t take = std::min(data.size(), 16 - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == 16) {
      process_block(buffer_.data(), 16, false);
      buffer_len_ = 0;
    }
  }
  while (offset + 16 <= data.size()) {
    process_block(data.data() + offset, 16, false);
    offset += 16;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffer_len_ = data.size() - offset;
  }
}

Poly1305::Tag Poly1305::finalize() {
  if (buffer_len_ > 0) {
    process_block(buffer_.data(), buffer_len_, true);
    buffer_len_ = 0;
  }
  // Full carry + compute h + -p.
  std::uint32_t h0 = h_[0], h1 = h_[1], h2 = h_[2], h3 = h_[3], h4 = h_[4];
  std::uint32_t c = h1 >> 26;
  h1 &= 0x3ffffff;
  h2 += c;
  c = h2 >> 26;
  h2 &= 0x3ffffff;
  h3 += c;
  c = h3 >> 26;
  h3 &= 0x3ffffff;
  h4 += c;
  c = h4 >> 26;
  h4 &= 0x3ffffff;
  h0 += c * 5;
  c = h0 >> 26;
  h0 &= 0x3ffffff;
  h1 += c;

  std::uint32_t g0 = h0 + 5;
  c = g0 >> 26;
  g0 &= 0x3ffffff;
  std::uint32_t g1 = h1 + c;
  c = g1 >> 26;
  g1 &= 0x3ffffff;
  std::uint32_t g2 = h2 + c;
  c = g2 >> 26;
  g2 &= 0x3ffffff;
  std::uint32_t g3 = h3 + c;
  c = g3 >> 26;
  g3 &= 0x3ffffff;
  std::uint32_t g4 = h4 + c - (1u << 26);

  const std::uint32_t mask = (g4 >> 31) - 1;  // all-ones if h >= p
  h0 = (h0 & ~mask) | (g0 & mask);
  h1 = (h1 & ~mask) | (g1 & mask);
  h2 = (h2 & ~mask) | (g2 & mask);
  h3 = (h3 & ~mask) | (g3 & mask);
  h4 = (h4 & ~mask) | (g4 & mask);

  // h = h % 2^128, then add pad.
  const std::uint32_t hh0 = h0 | (h1 << 26);
  const std::uint32_t hh1 = (h1 >> 6) | (h2 << 20);
  const std::uint32_t hh2 = (h2 >> 12) | (h3 << 14);
  const std::uint32_t hh3 = (h3 >> 18) | (h4 << 8);

  std::uint64_t f = (std::uint64_t)hh0 + pad_[0];
  Tag tag;
  tag[0] = static_cast<std::uint8_t>(f);
  tag[1] = static_cast<std::uint8_t>(f >> 8);
  tag[2] = static_cast<std::uint8_t>(f >> 16);
  tag[3] = static_cast<std::uint8_t>(f >> 24);
  f = (f >> 32) + hh1 + pad_[1];
  tag[4] = static_cast<std::uint8_t>(f);
  tag[5] = static_cast<std::uint8_t>(f >> 8);
  tag[6] = static_cast<std::uint8_t>(f >> 16);
  tag[7] = static_cast<std::uint8_t>(f >> 24);
  f = (f >> 32) + hh2 + pad_[2];
  tag[8] = static_cast<std::uint8_t>(f);
  tag[9] = static_cast<std::uint8_t>(f >> 8);
  tag[10] = static_cast<std::uint8_t>(f >> 16);
  tag[11] = static_cast<std::uint8_t>(f >> 24);
  f = (f >> 32) + hh3 + pad_[3];
  tag[12] = static_cast<std::uint8_t>(f);
  tag[13] = static_cast<std::uint8_t>(f >> 8);
  tag[14] = static_cast<std::uint8_t>(f >> 16);
  tag[15] = static_cast<std::uint8_t>(f >> 24);
  return tag;
}

Poly1305::Tag Poly1305::mac(const Key& key, ByteView data) {
  Poly1305 p(key);
  p.update(data);
  return p.finalize();
}

bool Poly1305::verify(const Tag& a, const Tag& b) {
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < kTagSize; ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace hs::crypto
