#include "crypto/aead.hpp"

#include <cstring>

namespace hs::crypto {
namespace {

Poly1305::Key poly_key(const Aead::Key& key, const Aead::Nonce& nonce) {
  const auto block = ChaCha20::block(key, nonce, 0);
  Poly1305::Key pk;
  std::memcpy(pk.data(), block.data(), pk.size());
  return pk;
}

Poly1305::Tag compute_tag(const Poly1305::Key& pk, ByteView aad,
                          ByteView ciphertext) {
  Poly1305 mac(pk);
  const std::uint8_t zeros[16] = {0};
  mac.update(aad);
  if (aad.size() % 16 != 0) {
    mac.update(ByteView(zeros, 16 - aad.size() % 16));
  }
  mac.update(ciphertext);
  if (ciphertext.size() % 16 != 0) {
    mac.update(ByteView(zeros, 16 - ciphertext.size() % 16));
  }
  std::uint8_t lengths[16];
  const std::uint64_t aad_len = aad.size();
  const std::uint64_t ct_len = ciphertext.size();
  for (int i = 0; i < 8; ++i) {
    lengths[i] = static_cast<std::uint8_t>(aad_len >> (8 * i));
    lengths[8 + i] = static_cast<std::uint8_t>(ct_len >> (8 * i));
  }
  mac.update(ByteView(lengths, 16));
  return mac.finalize();
}

}  // namespace

Aead::Sealed Aead::seal(const Key& key, const Nonce& nonce, ByteView plaintext,
                        ByteView aad) {
  ChaCha20 cipher(key, nonce, /*counter=*/1);
  Sealed out;
  out.ciphertext = cipher.apply(plaintext);
  out.tag = compute_tag(poly_key(key, nonce), aad,
                        ByteView(out.ciphertext.data(), out.ciphertext.size()));
  return out;
}

std::optional<Bytes> Aead::open(const Key& key, const Nonce& nonce,
                                ByteView ciphertext, const Tag& tag,
                                ByteView aad) {
  const auto expected = compute_tag(poly_key(key, nonce), aad, ciphertext);
  if (!Poly1305::verify(expected, tag)) return std::nullopt;
  ChaCha20 cipher(key, nonce, /*counter=*/1);
  return cipher.apply(ciphertext);
}

}  // namespace hs::crypto
