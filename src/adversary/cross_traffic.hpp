// Legitimate GMSK cross-traffic source modelling the Vaisala RS92-AGP
// radiosonde of the coexistence experiment (section 11): meteorological
// aids are primary users of the band and may transmit on occupied
// channels; the shield must leave them alone.
#pragma once

#include <cstdint>
#include <string>

#include "channel/medium.hpp"
#include "dsp/rng.hpp"
#include "phy/gmsk.hpp"
#include "sim/node.hpp"
#include "sim/transmit_scheduler.hpp"

namespace hs::adversary {

struct CrossTrafficConfig {
  std::string name = "radiosonde";
  channel::Vec2 position{8.0, 3.0};
  int walls = 0;
  double tx_power_dbm = -16.0;
  phy::GmskParams gmsk{};
  std::size_t frame_bits = 256;
};

class CrossTrafficNode : public sim::RadioNode {
 public:
  CrossTrafficNode(const CrossTrafficConfig& config, channel::Medium& medium,
                   std::uint64_t seed);

  /// Returns the node to the state a fresh `CrossTrafficNode(config,
  /// medium, seed)` would have, re-registering its antenna with `medium`
  /// (which the caller has just reset); campaign trial-pool hook.
  void reset(const CrossTrafficConfig& config, channel::Medium& medium,
             std::uint64_t seed);

  void produce(const sim::StepContext& ctx, channel::Medium& medium) override;
  void consume(const sim::StepContext& ctx, channel::Medium& medium) override;
  std::string_view name() const override { return config_.name; }

  channel::AntennaId antenna() const { return antenna_; }

  /// Schedules one telemetry frame of random payload at `at_sample`.
  /// Returns the [start, end) sample range it will occupy.
  std::pair<std::size_t, std::size_t> send_frame(std::size_t at_sample);

  std::size_t frames_sent() const { return frames_sent_; }

 private:
  void register_with_medium(channel::Medium& medium);

  CrossTrafficConfig config_;
  channel::AntennaId antenna_;
  dsp::Rng rng_;
  phy::GmskModulator modulator_;
  sim::TransmitScheduler tx_;
  double tx_amplitude_;
  std::size_t frames_sent_ = 0;
};

}  // namespace hs::adversary
