#include "adversary/cross_traffic.hpp"

#include <cmath>

#include "dsp/units.hpp"

namespace hs::adversary {

CrossTrafficNode::CrossTrafficNode(const CrossTrafficConfig& config,
                                   channel::Medium& medium,
                                   std::uint64_t seed)
    : config_(config),
      rng_(seed, "cross-traffic"),
      modulator_(config.gmsk),
      tx_amplitude_(std::sqrt(dsp::dbm_to_mw(config.tx_power_dbm))) {
  register_with_medium(medium);
}

void CrossTrafficNode::register_with_medium(channel::Medium& medium) {
  channel::AntennaDesc desc;
  desc.name = config_.name + "/antenna";
  desc.position = config_.position;
  desc.walls = config_.walls;
  antenna_ = medium.add_antenna(desc);
}

void CrossTrafficNode::reset(const CrossTrafficConfig& config,
                             channel::Medium& medium, std::uint64_t seed) {
  config_ = config;
  rng_ = dsp::Rng(seed, "cross-traffic");
  modulator_ = phy::GmskModulator(config.gmsk);
  tx_ = sim::TransmitScheduler();
  tx_amplitude_ = std::sqrt(dsp::dbm_to_mw(config.tx_power_dbm));
  frames_sent_ = 0;
  register_with_medium(medium);
}

std::pair<std::size_t, std::size_t> CrossTrafficNode::send_frame(
    std::size_t at_sample) {
  phy::BitVec bits(config_.frame_bits);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng_.next_u64() & 1);
  dsp::Samples wave = modulator_.modulate(bits);
  const std::size_t len = wave.size();
  tx_.schedule(at_sample, std::move(wave));
  ++frames_sent_;
  return {at_sample, at_sample + len};
}

void CrossTrafficNode::produce(const sim::StepContext& ctx,
                               channel::Medium& medium) {
  dsp::Samples block;
  if (tx_.fill(ctx.block_start_sample(), ctx.block_size, block)) {
    for (auto& x : block) x *= tx_amplitude_;
    medium.set_tx(antenna_, block);
  }
}

void CrossTrafficNode::consume(const sim::StepContext&, channel::Medium&) {}

}  // namespace hs::adversary
