// Passive monitor node: an antenna at an arbitrary location feeding a
// frame receiver and (optionally) a raw sample capture.
//
// Plays three roles from the paper's testbed:
//  * the eavesdropping adversary's front end (section 10.2),
//  * the in-body "USRP observer" sandwiched next to the IMD that checks
//    whether the IMD replied (section 10.3), and
//  * the shield log's ground-truth check in the coexistence experiment.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "channel/medium.hpp"
#include "phy/receiver.hpp"
#include "sim/node.hpp"

namespace hs::snapshot {
class StateWriter;
class StateReader;
}  // namespace hs::snapshot

namespace hs::adversary {

struct MonitorConfig {
  std::string name = "monitor";
  channel::Vec2 position{};
  int walls = 0;
  double body_loss_db = 0.0;   ///< >0 for the in-body observer
  phy::FskParams fsk{};
  bool capture_samples = false;
  std::size_t capture_limit = 1 << 22;  ///< max samples retained
  /// Run the streaming frame receiver on every block. Capture-only
  /// monitors (the eavesdropper front end, which is decoded offline with
  /// genie timing) disable this: it never affects the medium or any other
  /// node, only this monitor's frames() output.
  bool decode_enabled = true;
};

class MonitorNode : public sim::RadioNode {
 public:
  MonitorNode(const MonitorConfig& config, channel::Medium& medium);

  /// Returns the node to the state a fresh `MonitorNode(config, medium)`
  /// would have, re-registering its antenna with `medium` (which the
  /// caller has just reset). The new config may move the monitor — the
  /// campaign trial pool reuses one eavesdropper across sweep points.
  void reset(const MonitorConfig& config, channel::Medium& medium);

  void produce(const sim::StepContext& ctx, channel::Medium& medium) override;
  void consume(const sim::StepContext& ctx, channel::Medium& medium) override;
  std::string_view name() const override { return config_.name; }

  channel::AntennaId antenna() const { return antenna_; }

  /// All frames whose sync was acquired (decode status may be any).
  const std::vector<phy::ReceivedFrame>& frames() const { return frames_; }
  void clear_frames() { frames_.clear(); }

  /// Raw captured samples (empty unless capture_samples).
  const dsp::Samples& capture() const { return capture_; }
  void clear_capture() { capture_.clear(); }

  /// Absolute sample index corresponding to capture()[0].
  std::size_t capture_start() const { return capture_start_; }

  /// Warm-state snapshot round trip (receiver stream, retained frames,
  /// raw capture). Only the deployment's in-body observer is ever
  /// snapshotted; per-trial eavesdroppers are reset fresh each trial.
  void save_state(snapshot::StateWriter& w) const;
  void load_state(snapshot::StateReader& r);

 private:
  void register_with_medium(channel::Medium& medium);

  MonitorConfig config_;
  channel::AntennaId antenna_;
  phy::FskReceiver receiver_;
  std::vector<phy::ReceivedFrame> frames_;
  dsp::Samples capture_;
  std::size_t capture_start_ = 0;
};

}  // namespace hs::adversary
