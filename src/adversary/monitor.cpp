#include "adversary/monitor.hpp"

namespace hs::adversary {

MonitorNode::MonitorNode(const MonitorConfig& config, channel::Medium& medium)
    : config_(config), receiver_(config.fsk) {
  register_with_medium(medium);
}

void MonitorNode::register_with_medium(channel::Medium& medium) {
  channel::AntennaDesc desc;
  desc.name = config_.name + "/antenna";
  desc.position = config_.position;
  desc.walls = config_.walls;
  desc.body_loss_db = config_.body_loss_db;
  antenna_ = medium.add_antenna(desc);
}

void MonitorNode::reset(const MonitorConfig& config,
                        channel::Medium& medium) {
  config_ = config;
  receiver_ = phy::FskReceiver(config.fsk);
  frames_.clear();
  capture_.clear();
  capture_start_ = 0;
  register_with_medium(medium);
}

void MonitorNode::produce(const sim::StepContext&, channel::Medium&) {
  // Purely passive.
}

void MonitorNode::consume(const sim::StepContext& ctx,
                          channel::Medium& medium) {
  if (config_.capture_samples && capture_.size() < config_.capture_limit) {
    const auto rx = medium.rx(antenna_);
    if (capture_.empty()) capture_start_ = ctx.block_start_sample();
    capture_.insert(capture_.end(), rx.begin(), rx.end());
  }
  if (!config_.decode_enabled) return;
  receiver_.push(medium.rx_soa(antenna_));
  while (auto frame = receiver_.pop()) {
    frames_.push_back(std::move(*frame));
  }
}

}  // namespace hs::adversary
