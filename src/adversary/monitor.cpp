#include "adversary/monitor.hpp"

#include "snapshot/state_io.hpp"

namespace hs::adversary {

MonitorNode::MonitorNode(const MonitorConfig& config, channel::Medium& medium)
    : config_(config), receiver_(config.fsk) {
  register_with_medium(medium);
}

void MonitorNode::register_with_medium(channel::Medium& medium) {
  channel::AntennaDesc desc;
  desc.name = config_.name + "/antenna";
  desc.position = config_.position;
  desc.walls = config_.walls;
  desc.body_loss_db = config_.body_loss_db;
  antenna_ = medium.add_antenna(desc);
}

void MonitorNode::reset(const MonitorConfig& config,
                        channel::Medium& medium) {
  config_ = config;
  receiver_ = phy::FskReceiver(config.fsk);
  frames_.clear();
  capture_.clear();
  capture_start_ = 0;
  register_with_medium(medium);
}

void MonitorNode::save_state(snapshot::StateWriter& w) const {
  w.begin("monitor");
  w.str("name", config_.name);
  w.u64("antenna", antenna_);
  receiver_.save_state(w);
  w.u64("frames", frames_.size());
  for (const phy::ReceivedFrame& f : frames_) phy::save_received_frame(w, f);
  w.samples("capture", capture_);
  w.u64("capture_start", capture_start_);
  w.end("monitor");
}

void MonitorNode::load_state(snapshot::StateReader& r) {
  r.begin("monitor");
  if (r.str("name") != config_.name) {
    throw snapshot::SnapshotError("snapshot: monitor identity mismatch");
  }
  antenna_ = r.u64("antenna");
  receiver_.load_state(r);
  const std::uint64_t frames = r.u64("frames");
  frames_.clear();
  frames_.reserve(frames);
  for (std::uint64_t i = 0; i < frames; ++i) {
    frames_.push_back(phy::load_received_frame(r));
  }
  capture_ = r.samples("capture");
  capture_start_ = r.u64("capture_start");
  r.end("monitor");
}

void MonitorNode::produce(const sim::StepContext&, channel::Medium&) {
  // Purely passive.
}

void MonitorNode::consume(const sim::StepContext& ctx,
                          channel::Medium& medium) {
  if (config_.capture_samples && capture_.size() < config_.capture_limit) {
    const auto rx = medium.rx(antenna_);
    if (capture_.empty()) capture_start_ = ctx.block_start_sample();
    capture_.insert(capture_.end(), rx.begin(), rx.end());
  }
  if (!config_.decode_enabled) return;
  receiver_.push(medium.rx_soa(antenna_));
  while (auto frame = receiver_.pop()) {
    frames_.push_back(std::move(*frame));
  }
}

}  // namespace hs::adversary
