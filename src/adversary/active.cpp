#include "adversary/active.hpp"

#include <cmath>

#include "dsp/units.hpp"

namespace hs::adversary {

ActiveAdversaryNode::ActiveAdversaryNode(const ActiveAdversaryConfig& config,
                                         channel::Medium& medium,
                                         sim::EventLog* log)
    : config_(config),
      log_(log),
      modulator_(config.fsk),
      receiver_(config.fsk),
      tx_amplitude_(std::sqrt(dsp::dbm_to_mw(config.tx_power_dbm))) {
  register_with_medium(medium);
}

void ActiveAdversaryNode::register_with_medium(channel::Medium& medium) {
  channel::AntennaDesc desc;
  desc.name = config_.name + "/antenna";
  desc.position = config_.position;
  desc.walls = config_.walls;
  antenna_ = medium.add_antenna(desc);
}

void ActiveAdversaryNode::reset(const ActiveAdversaryConfig& config,
                                channel::Medium& medium,
                                sim::EventLog* log) {
  config_ = config;
  log_ = log;
  modulator_ = phy::FskModulator(config.fsk);
  receiver_ = phy::FskReceiver(config.fsk);
  tx_ = sim::TransmitScheduler();
  tx_amplitude_ = std::sqrt(dsp::dbm_to_mw(config.tx_power_dbm));
  recordings_.clear();
  next_allowed_sample_ = 0;
  next_block_start_ = 0;
  register_with_medium(medium);
}

void ActiveAdversaryNode::set_tx_power_dbm(double dbm) {
  config_.tx_power_dbm = dbm;
  tx_amplitude_ = std::sqrt(dsp::dbm_to_mw(dbm));
}

void ActiveAdversaryNode::inject(const phy::Frame& frame,
                                 std::size_t at_sample) {
  const std::size_t at =
      std::max({at_sample, next_allowed_sample_, next_block_start_});
  dsp::Samples wave = modulator_.modulate(phy::encode_frame(frame));
  next_allowed_sample_ = at + wave.size();
  tx_.schedule(at, std::move(wave));
  if (log_ != nullptr) {
    log_->record(static_cast<double>(at) / config_.fsk.fs, config_.name,
                 sim::EventKind::kTxStart, "unauthorized command");
  }
}

void ActiveAdversaryNode::replay(const phy::BitVec& recorded_bits,
                                 std::size_t at_sample) {
  const std::size_t at =
      std::max({at_sample, next_allowed_sample_, next_block_start_});
  // Demodulate-then-remodulate: the recording is already bits, so replay
  // is a clean re-modulation (no accumulated channel noise; section 9).
  dsp::Samples wave = modulator_.modulate(recorded_bits);
  next_allowed_sample_ = at + wave.size();
  tx_.schedule(at, std::move(wave));
  if (log_ != nullptr) {
    log_->record(static_cast<double>(at) / config_.fsk.fs, config_.name,
                 sim::EventKind::kTxStart, "replayed command");
  }
}

void ActiveAdversaryNode::produce(const sim::StepContext& ctx,
                                  channel::Medium& medium) {
  next_block_start_ = ctx.block_start_sample() + ctx.block_size;
  dsp::Samples block;
  if (tx_.fill(ctx.block_start_sample(), ctx.block_size, block)) {
    for (auto& x : block) x *= tx_amplitude_;
    medium.set_tx(antenna_, block);
  }
}

void ActiveAdversaryNode::consume(const sim::StepContext&,
                                  channel::Medium& medium) {
  receiver_.push(medium.rx_soa(antenna_));
  while (auto frame = receiver_.pop()) {
    if (frame->decode.status == phy::DecodeStatus::kOk) {
      recordings_.push_back(std::move(*frame));
    }
  }
}

}  // namespace hs::adversary
