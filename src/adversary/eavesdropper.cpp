#include "adversary/eavesdropper.hpp"

#include <cmath>

#include "dsp/fir.hpp"

namespace hs::adversary {

using dsp::cplx;

EavesdropResult eavesdrop_decode(const phy::FskParams& fsk,
                                 dsp::SampleView capture, std::size_t start,
                                 phy::BitView truth) {
  EavesdropResult result;
  phy::NoncoherentFskDemod demod(fsk);
  // One deinterleave pass buys the split-plane symbol correlators.
  const dsp::SoaSamples soa = dsp::to_soa(capture);
  result.bits = demod.demodulate(soa.view(), start, truth.size());
  result.ber = phy::bit_error_rate(truth, result.bits);
  return result;
}

EavesdropResult eavesdrop_decode_bandpass(const phy::FskParams& fsk,
                                          dsp::SampleView capture,
                                          std::size_t start,
                                          phy::BitView truth,
                                          double half_bw_hz) {
  EavesdropResult result;
  // Two narrow filters, one per tone; decode by comparing the energy of
  // the filtered outputs over each symbol.
  constexpr std::size_t kTaps = 65;
  dsp::ComplexFirFilter filter0(
      dsp::design_bandpass(fsk.f0, half_bw_hz, fsk.fs, kTaps));
  dsp::ComplexFirFilter filter1(
      dsp::design_bandpass(fsk.f1, half_bw_hz, fsk.fs, kTaps));
  const dsp::SoaSamples soa = dsp::to_soa(capture);
  dsp::SoaSamples y0, y1;
  filter0.process(soa.view(), y0);
  filter1.process(soa.view(), y1);
  const std::size_t delay = (kTaps - 1) / 2;  // linear-phase group delay

  result.bits.reserve(truth.size());
  for (std::size_t s = 0; s < truth.size(); ++s) {
    const std::size_t a = start + delay + s * fsk.sps;
    const std::size_t b = a + fsk.sps;
    if (b > y0.size()) break;
    double e0 = 0.0, e1 = 0.0;
    for (std::size_t i = a; i < b; ++i) {
      e0 += y0.re()[i] * y0.re()[i] + y0.im()[i] * y0.im()[i];
      e1 += y1.re()[i] * y1.re()[i] + y1.im()[i] * y1.im()[i];
    }
    result.bits.push_back(e1 > e0 ? 1 : 0);
  }
  result.ber = phy::bit_error_rate(truth, result.bits);
  return result;
}

}  // namespace hs::adversary
