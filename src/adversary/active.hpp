// Active adversary node (paper section 3.2(b) and 10.3).
//
// Capabilities, matching the threat model exactly:
//  * forge its own unauthorized command frames (a sophisticated adversary
//    that reverse-engineered the protocol),
//  * record a legitimate programmer's transmissions, demodulate them to
//    bits to strip channel noise, and re-modulate for clean replay
//    (exactly the procedure of section 9),
//  * transmit at the FCC limit (commercial programmer hardware) or at
//    100x the shield's power (custom hardware, Fig. 13).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "channel/medium.hpp"
#include "dsp/rng.hpp"
#include "imd/protocol.hpp"
#include "phy/receiver.hpp"
#include "sim/node.hpp"
#include "sim/trace.hpp"
#include "sim/transmit_scheduler.hpp"

namespace hs::adversary {

struct ActiveAdversaryConfig {
  std::string name = "adversary";
  channel::Vec2 position{5.0, 0.0};
  int walls = 0;
  double tx_power_dbm = -16.0;  ///< FCC limit; +20 dB for the 100x attacker
  phy::FskParams fsk{};
};

class ActiveAdversaryNode : public sim::RadioNode {
 public:
  ActiveAdversaryNode(const ActiveAdversaryConfig& config,
                      channel::Medium& medium, sim::EventLog* log);

  /// Returns the node to the state a fresh `ActiveAdversaryNode(config,
  /// medium, log)` would have, re-registering its antenna with `medium`
  /// (which the caller has just reset). The new config may move the
  /// adversary; campaign trial-pool hook.
  void reset(const ActiveAdversaryConfig& config, channel::Medium& medium,
             sim::EventLog* log);

  void produce(const sim::StepContext& ctx, channel::Medium& medium) override;
  void consume(const sim::StepContext& ctx, channel::Medium& medium) override;
  std::string_view name() const override { return config_.name; }

  channel::AntennaId antenna() const { return antenna_; }
  const ActiveAdversaryConfig& config() const { return config_; }

  /// Forges and schedules an unauthorized command at an absolute sample;
  /// anything in the past (including the default 0) is clamped to the
  /// next block boundary.
  void inject(const phy::Frame& frame, std::size_t at_sample = 0);

  /// Replays previously recorded bits (demodulate-then-remodulate replay).
  void replay(const phy::BitVec& recorded_bits, std::size_t at_sample = 0);

  /// Frames recorded off the air (CRC-valid only), for later replay.
  const std::vector<phy::ReceivedFrame>& recordings() const {
    return recordings_;
  }
  void clear_recordings() { recordings_.clear(); }

  /// True while a scheduled transmission is pending or on the air.
  bool transmitting() const { return !tx_.empty(); }

  /// Retunes the transmit power (e.g., the P_thresh calibration sweep or
  /// switching to the 100x high-power mode).
  void set_tx_power_dbm(double dbm);
  double tx_power_dbm() const { return config_.tx_power_dbm; }

 private:
  void register_with_medium(channel::Medium& medium);

  ActiveAdversaryConfig config_;
  channel::AntennaId antenna_;
  sim::EventLog* log_;
  phy::FskModulator modulator_;
  phy::FskReceiver receiver_;
  sim::TransmitScheduler tx_;
  double tx_amplitude_;
  std::vector<phy::ReceivedFrame> recordings_;
  std::size_t next_allowed_sample_ = 0;
  std::size_t next_block_start_ = 0;  ///< tracked from produce()
};

}  // namespace hs::adversary
