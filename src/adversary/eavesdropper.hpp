// Offline eavesdropper analysis: the strongest-case passive adversary of
// section 10.2. Given a raw capture, ground-truth packet timing and the
// transmitted bits, it decodes with the optimal noncoherent FSK receiver
// [38] and reports its bit error rate. Granting the adversary genie timing
// and the true bits for comparison only *over*-estimates its ability, so a
// measured BER near 50% is a conservative confidentiality result.
//
// decode_with_bandpass_attack() models the countermeasure of section 6(a):
// an adversary that band-pass filters around the two FSK tones to shed
// jamming energy. It defeats an oblivious constant-profile jammer but not
// the shield's shaped jammer (reproduced by bench_ablate_shaping).
#pragma once

#include <cstddef>

#include "dsp/types.hpp"
#include "phy/bits.hpp"
#include "phy/fsk.hpp"

namespace hs::adversary {

struct EavesdropResult {
  phy::BitVec bits;
  double ber = 0.5;  ///< against the supplied ground truth
};

/// Optimal noncoherent FSK decoding at a known start offset.
EavesdropResult eavesdrop_decode(const phy::FskParams& fsk,
                                 dsp::SampleView capture, std::size_t start,
                                 phy::BitView truth);

/// Same, but the adversary first applies two narrow band-pass filters
/// centered on the FSK tones (half-width `half_bw_hz`) and decodes from
/// the filtered streams.
EavesdropResult eavesdrop_decode_bandpass(const phy::FskParams& fsk,
                                          dsp::SampleView capture,
                                          std::size_t start,
                                          phy::BitView truth,
                                          double half_bw_hz = 30e3);

}  // namespace hs::adversary
