#include "campaign/scenario.hpp"

#include <array>

#include "channel/geometry.hpp"
#include "mics/band.hpp"

namespace hs::campaign {

namespace {

std::vector<double> location_range(int lo, int hi) {
  std::vector<double> v;
  for (int i = lo; i <= hi; ++i) v.push_back(static_cast<double>(i));
  return v;
}

std::vector<double> linear_range(double lo, double hi, double step) {
  std::vector<double> v;
  for (double x = lo; x <= hi + 1e-9; x += step) v.push_back(x);
  return v;
}

Scenario eavesdrop_base(std::string name, std::string ref) {
  Scenario s;
  s.name = std::move(name);
  s.paper_ref = std::move(ref);
  s.kind = ExperimentKind::kEavesdrop;
  s.units_per_trial = 4;  // packets per trial
  s.default_trials = 10;
  return s;
}

Scenario attack_base(std::string name, std::string ref,
                     shield::AttackKind kind, bool shield_present) {
  Scenario s;
  s.name = std::move(name);
  s.paper_ref = std::move(ref);
  s.kind = ExperimentKind::kActiveAttack;
  s.attack_kind = kind;
  s.shield_present = shield_present;
  s.units_per_trial = 1;
  s.default_trials = 50;
  return s;
}

std::vector<Scenario> build_presets() {
  const int all_locations = static_cast<int>(channel::kTestbedLocationCount);
  std::vector<Scenario> presets;

  // --- Fig. 3: IMD reply timing, medium idle vs busy -----------------------
  {
    Scenario s;
    s.name = "fig3-imd-timing";
    s.paper_ref = "Figure 3";
    s.description = "IMD reply delay with the medium idle vs kept busy "
                    "(no carrier sense)";
    s.kind = ExperimentKind::kImdTiming;
    s.default_trials = 20;
    presets.push_back(std::move(s));
  }

  // --- Figs. 4-5: spectral profiles ----------------------------------------
  {
    Scenario s;
    s.name = "fig4-fsk-profile";
    s.paper_ref = "Figure 4";
    s.description = "fraction of the IMD's FSK power near the +-50 kHz "
                    "tones";
    s.kind = ExperimentKind::kSpectrum;
    s.spectrum_of_jammer = false;
    s.default_trials = 8;
    presets.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "fig5-jam-shaped";
    s.paper_ref = "Figure 5";
    s.description = "tone-band power fraction of the shaped jamming "
                    "profile";
    s.kind = ExperimentKind::kSpectrum;
    s.spectrum_of_jammer = true;
    s.jam_profile = shield::JamProfile::kShaped;
    s.default_trials = 8;
    presets.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "fig5-jam-constant";
    s.paper_ref = "Figure 5";
    s.description = "tone-band power fraction of the oblivious constant "
                    "jamming profile";
    s.kind = ExperimentKind::kSpectrum;
    s.spectrum_of_jammer = true;
    s.jam_profile = shield::JamProfile::kConstant;
    s.default_trials = 8;
    presets.push_back(std::move(s));
  }

  // --- Fig. 7: antidote cancellation CDF -----------------------------------
  {
    Scenario s;
    s.name = "fig7-cancellation";
    s.paper_ref = "Figure 7";
    s.description = "antidote cancellation depth at the shield's receive "
                    "antenna (~32 dB)";
    s.kind = ExperimentKind::kCancellation;
    s.default_trials = 200;
    presets.push_back(std::move(s));
  }

  // --- Fig. 8: BER/PER vs relative jamming power ---------------------------
  {
    auto s = eavesdrop_base("fig8-tradeoff", "Figures 8(a), 8(b)");
    s.description = "adversary BER vs shield packet loss across jamming "
                    "margins";
    s.use_margin_override = true;
    s.axis = SweepAxis::kJamMarginDb;
    s.axis_values = linear_range(0.0, 25.0, 2.5);
    s.default_trials = 15;
    presets.push_back(std::move(s));
  }

  // --- Fig. 9: eavesdropper BER at every testbed location ------------------
  {
    auto s = eavesdrop_base("fig9-eaves-ber", "Figure 9");
    s.description = "eavesdropper BER (~0.5) at all 18 testbed locations";
    s.axis = SweepAxis::kLocation;
    s.axis_values = location_range(1, all_locations);
    presets.push_back(std::move(s));
  }

  // --- Fig. 10: shield packet loss while jamming ---------------------------
  {
    auto s = eavesdrop_base("fig10-shield-per", "Figure 10");
    s.description = "shield packet loss decoding through its own jamming "
                    "(~0.2%)";
    s.units_per_trial = 200;
    s.default_trials = 12;
    presets.push_back(std::move(s));
  }

  // --- Figs. 11-13: active attacks, shield present and absent --------------
  for (bool shield_present : {true, false}) {
    const char* suffix = shield_present ? "" : "-noshield";
    const char* with = shield_present ? "with" : "without";
    {
      auto s = attack_base(std::string("fig11-trigger") + suffix,
                           "Figure 11",
                           shield::AttackKind::kTriggerTransmission,
                           shield_present);
      s.description = std::string("battery-depletion trigger attack by "
                                  "location, ") + with + " the shield";
      s.axis = SweepAxis::kLocation;
      s.axis_values = location_range(1, 14);
      presets.push_back(std::move(s));
    }
    {
      auto s = attack_base(std::string("fig12-therapy") + suffix,
                           "Figure 12", shield::AttackKind::kChangeTherapy,
                           shield_present);
      s.description = std::string("therapy-modification attack by "
                                  "location, ") + with + " the shield";
      s.axis = SweepAxis::kLocation;
      s.axis_values = location_range(1, 14);
      presets.push_back(std::move(s));
    }
    {
      auto s = attack_base(std::string("fig13-high-power") + suffix,
                           "Figure 13", shield::AttackKind::kChangeTherapy,
                           shield_present);
      s.description = std::string("100x-power therapy attack by "
                                  "location, ") + with + " the shield";
      s.extra_power_db = 20.0;  // the 100x adversary
      s.axis = SweepAxis::kLocation;
      s.axis_values = location_range(1, all_locations);
      presets.push_back(std::move(s));
    }
  }

  // --- Table 1: P_thresh calibration ---------------------------------------
  {
    Scenario s;
    s.name = "table1-pthresh";
    s.paper_ref = "Table 1";
    s.description = "adversarial RSSI at the shield that elicits IMD "
                    "responses despite jamming";
    s.kind = ExperimentKind::kPthresh;
    s.axis = SweepAxis::kAdversaryPowerDbm;
    s.axis_values = linear_range(-16.0, 14.0, 2.0);
    s.units_per_trial = 2;  // packets per power per trial
    s.default_trials = 5;
    presets.push_back(std::move(s));
  }

  // --- Table 2: coexistence and turn-around --------------------------------
  {
    Scenario s;
    s.name = "table2-coexistence";
    s.paper_ref = "Table 2";
    s.description = "IMD commands jammed, radiosonde cross-traffic spared, "
                    "turn-around time";
    s.kind = ExperimentKind::kCoexistence;
    s.axis = SweepAxis::kLocation;
    s.axis_values = {1, 3, 5, 7, 9};
    s.units_per_trial = 1;  // one command + one cross frame per trial
    s.default_trials = 10;
    presets.push_back(std::move(s));
  }

  // --- Section 6(a) ablation: jamming profile vs decoder -------------------
  {
    struct Cell {
      const char* name;
      shield::JamProfile profile;
      bool bandpass;
    };
    const std::array<Cell, 4> cells = {{
        {"ablate-shaping-shaped-opt", shield::JamProfile::kShaped, false},
        {"ablate-shaping-shaped-bpf", shield::JamProfile::kShaped, true},
        {"ablate-shaping-constant-opt", shield::JamProfile::kConstant, false},
        {"ablate-shaping-constant-bpf", shield::JamProfile::kConstant, true},
    }};
    for (const auto& cell : cells) {
      auto s = eavesdrop_base(cell.name, "Section 6(a), Figure 5");
      s.description = "shaping ablation: adversary BER for this jammer/"
                      "decoder pairing";
      s.jam_profile = cell.profile;
      s.bandpass_attack = cell.bandpass;
      s.use_margin_override = true;
      s.axis = SweepAxis::kJamMarginDb;
      s.axis_values = {8.0, 14.0, 20.0};
      s.default_trials = 15;
      presets.push_back(std::move(s));
    }
  }

  // The antidote-accuracy sweep shared by the SINR-gap and positional
  // ablations, so their per-sigma rows line up in the joint bench table.
  const std::vector<double> sigma_sweep = {0.003, 0.01, 0.025,
                                           0.05, 0.10, 0.30};

  // --- SINR-gap ablation: antidote accuracy sweep --------------------------
  {
    auto s = eavesdrop_base("ablate-gap", "Section 6(b), equation 9");
    s.description = "SINR-gap ablation: adversary BER and shield loss vs "
                    "antidote accuracy";
    s.use_margin_override = true;
    s.axis = SweepAxis::kHardwareErrorSigma;
    s.axis_values = sigma_sweep;
    presets.push_back(std::move(s));
  }

  // --- Positional ablation: cancellation vs antidote accuracy --------------
  {
    Scenario s;
    s.name = "ablate-positional";
    s.paper_ref = "Sections 1, 5, 12";
    s.description = "antidote cancellation depth vs hardware accuracy (no "
                    "antenna separation)";
    s.kind = ExperimentKind::kCancellation;
    s.axis = SweepAxis::kHardwareErrorSigma;
    s.axis_values = sigma_sweep;
    s.default_trials = 50;
    presets.push_back(std::move(s));
  }

  // --- Extension: battery-depletion economics (ext bench) ------------------
  for (bool shield_present : {true, false}) {
    auto s = attack_base(
        std::string("ext-battery") + (shield_present ? "" : "-noshield"),
        "Section 10.3 extension",
        shield::AttackKind::kTriggerTransmission, shield_present);
    s.description = "IMD battery energy an interrogation-flood attack "
                    "drains at location 3";
    s.adversary_locations = {3};
    presets.push_back(std::move(s));
  }

  // --- Extension: scalar vs FIR antidote under multipath -------------------
  {
    Scenario s;
    s.name = "ext-multipath";
    s.paper_ref = "Section 5 footnote 2";
    s.description = "scalar vs 64-tap FIR antidote as H_jam->rec grows a "
                    "second tap";
    s.kind = ExperimentKind::kMultipathAntidote;
    s.axis = SweepAxis::kMultipathTapDb;
    s.axis_values = {-40.0, -30.0, -20.0, -12.0, -6.0, -3.0};
    s.default_trials = 6;
    presets.push_back(std::move(s));
  }

  // --- Extension: whole-band monitoring vs a hopping adversary -------------
  {
    Scenario s;
    s.name = "ext-wideband";
    s.paper_ref = "Section 7(c)";
    s.description = "3 MHz monitor detection and reaction point on every "
                    "MICS channel";
    s.kind = ExperimentKind::kWideband;
    s.axis = SweepAxis::kMicsChannel;
    s.axis_values =
        location_range(0, static_cast<int>(mics::kChannelCount) - 1);
    s.default_trials = 3;
    presets.push_back(std::move(s));
  }

  // --- New variant: simultaneous eavesdroppers (best-adversary BER) --------
  {
    auto s = eavesdrop_base("multi-adversary-eaves",
                            "Figure 9 variant: 4 simultaneous eavesdroppers");
    s.description = "per-packet best-of-4 eavesdropper BER across jamming "
                    "margins";
    s.adversary_locations = {1, 4, 7, 10};
    s.axis = SweepAxis::kJamMarginDb;
    s.use_margin_override = true;
    s.axis_values = {10.0, 15.0, 20.0};
    presets.push_back(std::move(s));
  }

  // --- New variant: one shield, two implanted devices ----------------------
  {
    auto s = attack_base("multi-imd-trigger",
                         "Figure 11 variant: Virtuoso + Concerto patient",
                         shield::AttackKind::kTriggerTransmission, true);
    s.description = "trigger attack against a two-IMD patient, shield "
                    "present";
    s.imd_profiles = {imd::virtuoso_profile(), imd::concerto_profile()};
    s.axis = SweepAxis::kLocation;
    s.axis_values = location_range(1, 8);
    presets.push_back(std::move(s));
  }
  {
    auto s = attack_base("multi-imd-trigger-noshield",
                         "Figure 11 variant: Virtuoso + Concerto patient",
                         shield::AttackKind::kTriggerTransmission, false);
    s.description = "trigger attack against a two-IMD patient, shield "
                    "absent";
    s.imd_profiles = {imd::virtuoso_profile(), imd::concerto_profile()};
    s.axis = SweepAxis::kLocation;
    s.axis_values = location_range(1, 8);
    presets.push_back(std::move(s));
  }

  return presets;
}

}  // namespace

std::string_view metric_name(Metric metric) {
  switch (metric) {
    case Metric::kAdversaryBer: return "adversary_ber";
    case Metric::kShieldPacketLoss: return "shield_packet_loss";
    case Metric::kAttackSuccess: return "attack_success";
    case Metric::kAlarm: return "alarm";
    case Metric::kBatteryMj: return "battery_mj";
    case Metric::kCrossTrafficJammed: return "cross_traffic_jammed";
    case Metric::kImdCommandJammed: return "imd_command_jammed";
    case Metric::kTurnaroundUs: return "turnaround_us";
    case Metric::kPthreshSuccess: return "pthresh_success";
    case Metric::kPthreshRssiDbm: return "pthresh_rssi_dbm";
    case Metric::kReplyDelayIdleMs: return "reply_delay_idle_ms";
    case Metric::kReplyDelayBusyMs: return "reply_delay_busy_ms";
    case Metric::kCancellationDb: return "cancellation_db";
    case Metric::kToneBandFraction: return "tone_band_fraction";
    case Metric::kScalarCancellationDb: return "scalar_cancellation_db";
    case Metric::kMultitapCancellationDb: return "multitap_cancellation_db";
    case Metric::kWidebandDetect: return "wideband_detect";
    case Metric::kWidebandReactionMs: return "wideband_reaction_ms";
  }
  return "unknown";
}

bool metric_from_name(std::string_view name, Metric* out) {
  for (std::size_t m = 0; m < kMetricCount; ++m) {
    const Metric metric = static_cast<Metric>(m);
    if (metric_name(metric) == name) {
      *out = metric;
      return true;
    }
  }
  return false;
}

bool metric_is_indicator(Metric metric) {
  switch (metric) {
    case Metric::kAttackSuccess:
    case Metric::kAlarm:
    case Metric::kCrossTrafficJammed:
    case Metric::kImdCommandJammed:
    case Metric::kPthreshSuccess:
    case Metric::kWidebandDetect:
      return true;
    default:
      return false;
  }
}

const std::vector<Metric>& metrics_for(ExperimentKind kind) {
  static const std::vector<Metric> eavesdrop = {
      Metric::kAdversaryBer, Metric::kShieldPacketLoss};
  static const std::vector<Metric> attack = {
      Metric::kAttackSuccess, Metric::kAlarm, Metric::kBatteryMj};
  static const std::vector<Metric> coexistence = {
      Metric::kCrossTrafficJammed, Metric::kImdCommandJammed,
      Metric::kTurnaroundUs};
  static const std::vector<Metric> pthresh = {Metric::kPthreshSuccess,
                                              Metric::kPthreshRssiDbm};
  static const std::vector<Metric> timing = {Metric::kReplyDelayIdleMs,
                                             Metric::kReplyDelayBusyMs};
  static const std::vector<Metric> cancellation = {Metric::kCancellationDb};
  static const std::vector<Metric> spectrum = {Metric::kToneBandFraction};
  static const std::vector<Metric> multipath = {
      Metric::kScalarCancellationDb, Metric::kMultitapCancellationDb};
  static const std::vector<Metric> wideband = {Metric::kWidebandDetect,
                                               Metric::kWidebandReactionMs};
  switch (kind) {
    case ExperimentKind::kEavesdrop: return eavesdrop;
    case ExperimentKind::kActiveAttack: return attack;
    case ExperimentKind::kCoexistence: return coexistence;
    case ExperimentKind::kPthresh: return pthresh;
    case ExperimentKind::kImdTiming: return timing;
    case ExperimentKind::kCancellation: return cancellation;
    case ExperimentKind::kSpectrum: return spectrum;
    case ExperimentKind::kMultipathAntidote: return multipath;
    case ExperimentKind::kWideband: return wideband;
  }
  return eavesdrop;
}

bool experiment_uses_deployments(ExperimentKind kind) {
  switch (kind) {
    case ExperimentKind::kSpectrum:
    case ExperimentKind::kMultipathAntidote:
    case ExperimentKind::kWideband:
      return false;
    default:
      return true;
  }
}

std::string_view experiment_kind_name(ExperimentKind kind) {
  switch (kind) {
    case ExperimentKind::kEavesdrop: return "eavesdrop";
    case ExperimentKind::kActiveAttack: return "active_attack";
    case ExperimentKind::kCoexistence: return "coexistence";
    case ExperimentKind::kPthresh: return "pthresh";
    case ExperimentKind::kImdTiming: return "imd_timing";
    case ExperimentKind::kCancellation: return "cancellation";
    case ExperimentKind::kSpectrum: return "spectrum";
    case ExperimentKind::kMultipathAntidote: return "multipath_antidote";
    case ExperimentKind::kWideband: return "wideband";
  }
  return "eavesdrop";
}

std::string_view axis_name(SweepAxis axis) {
  switch (axis) {
    case SweepAxis::kNone: return "point";
    case SweepAxis::kLocation: return "location";
    case SweepAxis::kJamMarginDb: return "jam_margin_db";
    case SweepAxis::kExtraPowerDb: return "extra_power_db";
    case SweepAxis::kHardwareErrorSigma: return "hardware_error_sigma";
    case SweepAxis::kAdversaryPowerDbm: return "adversary_power_dbm";
    case SweepAxis::kMultipathTapDb: return "multipath_tap_db";
    case SweepAxis::kMicsChannel: return "mics_channel";
  }
  return "point";
}

const std::vector<Scenario>& scenario_presets() {
  static const std::vector<Scenario> presets = build_presets();
  return presets;
}

const Scenario* find_scenario(std::string_view name) {
  for (const auto& s : scenario_presets()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace hs::campaign
