#include "campaign/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "dsp/correlate.hpp"
#include "dsp/rng.hpp"
#include "dsp/spectrum.hpp"
#include "dsp/units.hpp"
#include "imd/programmer.hpp"
#include "imd/protocol.hpp"
#include "mics/band.hpp"
#include "mics/channelizer.hpp"
#include "obs/metrics.hpp"
#include "phy/frame.hpp"
#include "phy/fsk.hpp"
#include "shield/antidote.hpp"
#include "shield/calibrate.hpp"
#include "shield/deployment.hpp"
#include "shield/experiments.hpp"
#include "shield/jamgen.hpp"
#include "shield/multitap_antidote.hpp"
#include "shield/trial_context.hpp"
#include "shield/wideband.hpp"
#include "snapshot/snapshot_cache.hpp"

namespace hs::campaign {

namespace {

using dsp::Samples;

void emit(std::vector<TrialSample>& out, Metric metric, double value) {
  out.push_back(TrialSample{metric, value});
}

/// Emits `successes` ones and `total - successes` zeros so indicator
/// metrics aggregate to per-unit Bernoulli streams.
void emit_indicator(std::vector<TrialSample>& out, Metric metric,
                    std::size_t successes, std::size_t total) {
  for (std::size_t i = 0; i < total; ++i) {
    emit(out, metric, i < successes ? 1.0 : 0.0);
  }
}

int axis_location(const Scenario& s, double axis_value) {
  if (s.axis == SweepAxis::kLocation) return static_cast<int>(axis_value);
  return s.adversary_locations.empty() ? 1 : s.adversary_locations.front();
}

std::vector<TrialSample> run_eavesdrop_trial(const Scenario& s,
                                             double axis_value,
                                             std::uint64_t seed,
                                             shield::TrialContext& pool) {
  std::vector<TrialSample> out;
  std::vector<int> locations = s.adversary_locations;
  if (s.axis == SweepAxis::kLocation) {
    locations = {static_cast<int>(axis_value)};
  }

  // Simultaneous eavesdroppers observe the SAME transmissions (same trial
  // seed), each from its own vantage point; the privacy metric is the
  // per-packet best adversary (elementwise min BER).
  std::vector<double> best_ber;
  double packet_loss = 0.0;
  for (std::size_t a = 0; a < locations.size(); ++a) {
    shield::EavesdropOptions opt;
    opt.seed = seed;
    opt.location_index = locations[a];
    opt.packets = s.units_per_trial;
    opt.jam_profile = s.jam_profile;
    opt.bandpass_attack = s.bandpass_attack;
    opt.shield_present = s.shield_present;
    opt.use_margin_override = s.use_margin_override;
    opt.jam_margin_db = s.axis == SweepAxis::kJamMarginDb
                            ? axis_value
                            : s.jam_margin_db;
    opt.hardware_error_sigma = s.axis == SweepAxis::kHardwareErrorSigma
                                   ? axis_value
                                   : s.hardware_error_sigma;
    const auto result = shield::run_eavesdrop_experiment(opt, &pool);
    if (a == 0) {
      best_ber = result.eavesdropper_ber;
      packet_loss = result.shield_packet_loss();
    } else {
      const std::size_t n =
          std::min(best_ber.size(), result.eavesdropper_ber.size());
      for (std::size_t i = 0; i < n; ++i) {
        best_ber[i] = std::min(best_ber[i], result.eavesdropper_ber[i]);
      }
    }
  }
  for (double ber : best_ber) emit(out, Metric::kAdversaryBer, ber);
  emit(out, Metric::kShieldPacketLoss, packet_loss);
  return out;
}

std::vector<TrialSample> run_attack_trial(const Scenario& s,
                                          double axis_value,
                                          std::uint64_t seed,
                                          shield::TrialContext& pool) {
  std::vector<TrialSample> out;
  bool success = false;
  bool alarm = false;
  double battery_mj = 0.0;
  for (std::size_t i = 0; i < s.imd_profiles.size(); ++i) {
    shield::AttackOptions opt;
    // Per-device substream: a two-IMD patient is two physical downlinks.
    char sub[32];
    std::snprintf(sub, sizeof sub, "imd-%zu", i);
    opt.seed = dsp::derive_seed(seed, sub);
    opt.imd_profile = s.imd_profiles[i];
    opt.location_index = axis_location(s, axis_value);
    opt.trials = 1;
    opt.shield_present = s.shield_present;
    opt.extra_power_db = s.axis == SweepAxis::kExtraPowerDb
                             ? axis_value
                             : s.extra_power_db;
    opt.kind = s.attack_kind;
    const auto result = shield::run_attack_experiment(opt, &pool);
    success = success || result.successes > 0;
    alarm = alarm || result.alarms > 0;
    battery_mj += result.battery_energy_spent_mj;
  }
  emit(out, Metric::kAttackSuccess, success ? 1.0 : 0.0);
  emit(out, Metric::kAlarm, alarm ? 1.0 : 0.0);
  emit(out, Metric::kBatteryMj, battery_mj);
  return out;
}

std::vector<TrialSample> run_coexistence_trial(const Scenario& s,
                                               double axis_value,
                                               std::uint64_t seed,
                                               shield::TrialContext& pool) {
  std::vector<TrialSample> out;
  shield::CoexistenceOptions opt;
  opt.seed = seed;
  opt.location_indices = {axis_location(s, axis_value)};
  opt.rounds_per_location = s.units_per_trial;
  const auto result = shield::run_coexistence_experiment(opt, &pool);
  emit_indicator(out, Metric::kCrossTrafficJammed,
                 result.cross_frames_jammed, result.cross_frames_sent);
  emit_indicator(out, Metric::kImdCommandJammed,
                 result.imd_commands_jammed, result.imd_commands_sent);
  for (double us : result.turnaround_us) {
    emit(out, Metric::kTurnaroundUs, us);
  }
  return out;
}

std::vector<TrialSample> run_pthresh_trial(const Scenario& s,
                                           double axis_value,
                                           std::uint64_t seed,
                                           shield::TrialContext& pool) {
  std::vector<TrialSample> out;
  const double power_dbm = s.axis == SweepAxis::kAdversaryPowerDbm
                               ? axis_value
                               : s.adversary_power_dbm;
  const int location =
      s.adversary_locations.empty() ? 1 : s.adversary_locations.front();
  const auto result = shield::measure_pthresh(
      seed, location, power_dbm, power_dbm, 1.0, s.units_per_trial, &pool);
  emit_indicator(out, Metric::kPthreshSuccess, result.successes,
                 s.units_per_trial);
  for (double rssi : result.success_rssi_dbm) {
    emit(out, Metric::kPthreshRssiDbm, rssi);
  }
  return out;
}

/// Fig. 3 methodology: command the IMD and measure the reply delay, with
/// the medium idle and with a second frame keeping it busy through the
/// reply window. Returns seconds, or a negative value if the IMD stayed
/// silent.
double measure_reply_delay(const Scenario& s, std::uint64_t seed,
                           bool occupy_medium,
                           shield::TrialContext& pool) {
  shield::DeploymentOptions opt;
  opt.seed = seed;
  opt.imd_profile = s.imd_profiles.empty() ? imd::virtuoso_profile()
                                           : s.imd_profiles.front();
  opt.shield_present = false;  // raw IMD/programmer interaction
  shield::Deployment& d = pool.deployment(opt);

  imd::ProgrammerConfig pcfg;
  pcfg.fsk = opt.imd_profile.fsk;
  imd::ProgrammerNode& programmer = pool.programmer(pcfg);
  d.run_for(1e-3);

  const double fs = opt.imd_profile.fsk.fs;
  const std::size_t start =
      d.timeline().sample_position() + d.options().block_size;
  const auto command = imd::make_interrogate(opt.imd_profile.serial, 1);
  programmer.send_at(command, start);
  const std::size_t cmd_samples =
      phy::encode_frame(command).size() * opt.imd_profile.fsk.sps;
  const std::size_t cmd_end = start + cmd_samples;

  if (occupy_medium) {
    phy::Frame other;
    other.device_id = {9, 9, 9, 9, 9, 9, 9, 9, 9, 9};
    other.type = 0x7F;
    other.payload.assign(40, 0x55);
    programmer.send_at(other,
                       cmd_end + static_cast<std::size_t>(1e-3 * fs));
  }
  d.run_for(60e-3);

  if (d.imd().stats().replies_sent == 0) return -1.0;
  const double reply_start_s =
      static_cast<double>(d.imd().last_tx_start_sample()) / fs;
  return reply_start_s - static_cast<double>(cmd_end) / fs;
}

std::vector<TrialSample> run_timing_trial(const Scenario& s,
                                          std::uint64_t seed,
                                          shield::TrialContext& pool) {
  std::vector<TrialSample> out;
  const double idle = measure_reply_delay(s, seed, false, pool);
  const double busy = measure_reply_delay(s, seed, true, pool);
  if (idle > 0) emit(out, Metric::kReplyDelayIdleMs, idle * 1e3);
  if (busy > 0) emit(out, Metric::kReplyDelayBusyMs, busy * 1e3);
  return out;
}

std::vector<TrialSample> run_cancellation_trial(const Scenario& s,
                                                double axis_value,
                                                std::uint64_t seed,
                                                shield::TrialContext& pool) {
  std::vector<TrialSample> out;
  shield::DeploymentOptions opt;
  opt.seed = seed;
  if (s.axis == SweepAxis::kHardwareErrorSigma) {
    opt.shield_config.hardware_error_sigma = axis_value;
  } else if (s.hardware_error_sigma > 0.0) {
    opt.shield_config.hardware_error_sigma = s.hardware_error_sigma;
  }
  shield::Deployment& d = pool.deployment(opt);
  emit(out, Metric::kCancellationDb, shield::measure_cancellation_db(d));
  return out;
}

/// Section 5 footnote 2 extension: how the scalar antidote collapses, and
/// a 64-tap FIR equalizer holds, as the jam->rec coupling grows a second
/// multipath tap `axis_value` dB below the first.
Samples convolve(dsp::SampleView h, dsp::SampleView x) {
  Samples y(x.size(), dsp::cplx{});
  for (std::size_t n = 0; n < x.size(); ++n) {
    for (std::size_t k = 0; k < h.size() && k <= n; ++k) {
      y[n] += h[k] * x[n - k];
    }
  }
  return y;
}

double multipath_cancellation_db(dsp::SampleView hjr, dsp::SampleView hself,
                                 dsp::SampleView jam,
                                 dsp::SampleView antidote) {
  const auto air = convolve(hjr, jam);
  const auto wire = convolve(hself, antidote);
  double jam_power = 0, residual = 0;
  for (std::size_t n = 128; n < air.size(); ++n) {
    jam_power += std::norm(air[n]);
    residual += std::norm(air[n] + wire[n]);
  }
  return 10.0 * std::log10(jam_power / std::max(residual, 1e-30));
}

std::vector<TrialSample> run_multipath_trial(const Scenario& s,
                                             double axis_value,
                                             std::uint64_t seed,
                                             shield::TrialContext& pool) {
  std::vector<TrialSample> out;
  (void)s;
  dsp::Rng rng(seed);
  Samples probe(1024);
  for (auto& x : probe) x = rng.random_phase();
  const Samples hself = {dsp::cplx{0.7, 0.0}};

  phy::FskParams fsk;
  shield::JammingSignalGenerator& gen =
      pool.jamgen(fsk, shield::JamProfile::kShaped, seed);
  gen.set_power(1.0);
  const auto jam = gen.next(1 << 14);

  const double mag = 0.03 * std::pow(10.0, axis_value / 20.0);
  const Samples hjr = {dsp::cplx{0.03, 0.0}, dsp::cplx{0.0, mag}};

  shield::AntidoteController flat(0.0, seed);
  flat.update_jam_channel(
      dsp::estimate_flat_channel(convolve(hjr, probe), probe));
  flat.update_self_channel(
      dsp::estimate_flat_channel(convolve(hself, probe), probe));
  Samples flat_x(jam.size());
  const dsp::cplx coeff = flat.antidote_coefficient();
  for (std::size_t i = 0; i < jam.size(); ++i) flat_x[i] = coeff * jam[i];

  shield::MultitapAntidote multitap(4, 64);
  multitap.update_jam_channel(convolve(hjr, probe), probe);
  multitap.update_self_channel(convolve(hself, probe), probe);
  const auto fir_x = multitap.antidote_for(jam);

  emit(out, Metric::kScalarCancellationDb,
       multipath_cancellation_db(hjr, hself, jam, flat_x));
  emit(out, Metric::kMultitapCancellationDb,
       multipath_cancellation_db(hjr, hself, jam, fir_x));
  return out;
}

/// Section 7(c) extension: an adversary hops its command to the MICS
/// channel `axis_value`; the 3 MHz whole-band monitor must flag it, and
/// the reaction point (ms into the packet) bounds how much of the packet
/// remains jammable.
std::vector<TrialSample> run_wideband_trial(const Scenario& s,
                                            double axis_value,
                                            std::uint64_t seed) {
  std::vector<TrialSample> out;
  const auto profile = s.imd_profiles.empty() ? imd::virtuoso_profile()
                                              : s.imd_profiles.front();
  const std::size_t channel = static_cast<std::size_t>(axis_value);
  const auto cmd = imd::make_interrogate(profile.serial, 1);
  const auto wave = phy::fsk_modulate(profile.fsk, phy::encode_frame(cmd));

  shield::WidebandMonitor monitor(profile.serial, profile.fsk);
  dsp::Samples baseband(2400 + wave.size() + 1200, dsp::cplx{});
  const double amp = dsp::db_to_amplitude(-45.0);
  for (std::size_t i = 0; i < wave.size(); ++i) {
    baseband[2400 + i] = amp * wave[i];
  }
  mics::ChannelSynthesizer synth;
  dsp::Samples wideband(baseband.size() * mics::kDecimation, dsp::cplx{});
  synth.process(channel, baseband, wideband);
  dsp::Rng rng(seed, "wideband-noise");
  for (auto& x : wideband) x += rng.cgaussian(dsp::dbm_to_mw(-112.0));

  // Stream block-wise; note when the jam decision fires. The packet
  // starts at wideband sample 2400 * kDecimation.
  bool detected = false;
  for (std::size_t i = 0; i < wideband.size() && !detected; i += 480) {
    const std::size_t n = std::min<std::size_t>(480, wideband.size() - i);
    monitor.push(dsp::SampleView(wideband.data() + i, n));
    if (monitor.any_match()) {
      detected = true;
      const double reaction_s =
          (static_cast<double>(i + n) -
           static_cast<double>(2400 * mics::kDecimation)) /
          mics::kWidebandFs;
      emit(out, Metric::kWidebandReactionMs, reaction_s * 1e3);
    }
  }
  emit(out, Metric::kWidebandDetect, detected ? 1.0 : 0.0);
  return out;
}

std::vector<TrialSample> run_spectrum_trial(const Scenario& s,
                                            std::uint64_t seed) {
  std::vector<TrialSample> out;
  const auto profile = s.imd_profiles.empty() ? imd::virtuoso_profile()
                                              : s.imd_profiles.front();
  dsp::PsdEstimate psd;
  if (s.spectrum_of_jammer) {
    shield::JammingSignalGenerator gen(profile.fsk, s.jam_profile, seed);
    gen.set_power(1.0);
    const auto wave = gen.next(1 << 14);
    dsp::WelchOptions wopt;
    wopt.segment_size = 128;
    psd = dsp::welch_psd(wave, profile.fsk.fs, wopt);
  } else {
    dsp::Rng rng(seed, "spectrum-payload");
    phy::BitVec bits;
    for (int f = 0; f < 8; ++f) {
      phy::Frame frame;
      frame.device_id = profile.serial;
      frame.type = 0x81;
      frame.seq = static_cast<std::uint8_t>(f);
      frame.payload.resize(profile.data_chunk_bytes);
      for (auto& b : frame.payload) {
        b = static_cast<std::uint8_t>(rng.next_u64());
      }
      const auto fb = phy::encode_frame(frame);
      bits.insert(bits.end(), fb.begin(), fb.end());
    }
    const auto wave = phy::fsk_modulate(profile.fsk, bits);
    dsp::WelchOptions wopt;
    wopt.segment_size = 256;
    psd = dsp::welch_psd(wave, profile.fsk.fs, wopt);
  }
  const double in_band = dsp::psd_band_power(psd, -65e3, -35e3) +
                         dsp::psd_band_power(psd, 35e3, 65e3);
  const double total = dsp::psd_band_power(psd, -150e3, 150e3);
  emit(out, Metric::kToneBandFraction, total > 0.0 ? in_band / total : 0.0);
  return out;
}

/// One worker's share of the shard's chunk list. The owner pops from the
/// front; thieves pop from the back, so an owner streaming through
/// consecutive chunks keeps its deployment-reuse locality for as long as
/// possible.
struct WorkerDeque {
  std::mutex mutex;
  std::deque<std::size_t> chunks;  // indices into plan.chunks

  std::optional<std::size_t> pop(bool steal) {
    std::lock_guard<std::mutex> lock(mutex);
    if (chunks.empty()) return std::nullopt;
    std::size_t c;
    if (steal) {
      c = chunks.back();
      chunks.pop_back();
    } else {
      c = chunks.front();
      chunks.pop_front();
    }
    return c;
  }
};

}  // namespace

std::uint64_t trial_seed(std::uint64_t campaign_seed,
                         std::string_view scenario_name,
                         std::size_t point_index, std::size_t trial_index) {
  char sub[48];
  std::snprintf(sub, sizeof sub, "point-%zu/trial-%zu", point_index,
                trial_index);
  return dsp::derive_seed(dsp::derive_seed(campaign_seed, scenario_name),
                          sub);
}

std::uint64_t campaign_warmup_seed(std::uint64_t campaign_seed,
                                   std::string_view scenario_name) {
  const std::uint64_t seed = dsp::derive_seed(
      dsp::derive_seed(campaign_seed, scenario_name), "warm-up");
  // 0 means "legacy single-phase" to DeploymentOptions; dodge the one
  // colliding value rather than silently changing seeding semantics.
  return seed != 0 ? seed : 1;
}

std::vector<TrialSample> run_trial(const Scenario& scenario,
                                   std::size_t point_index,
                                   double axis_value, std::uint64_t seed,
                                   shield::TrialContext* context) {
  (void)point_index;
  shield::TrialContext scratch;
  shield::TrialContext& pool = context != nullptr ? *context : scratch;
  switch (scenario.kind) {
    case ExperimentKind::kEavesdrop:
      return run_eavesdrop_trial(scenario, axis_value, seed, pool);
    case ExperimentKind::kActiveAttack:
      return run_attack_trial(scenario, axis_value, seed, pool);
    case ExperimentKind::kCoexistence:
      return run_coexistence_trial(scenario, axis_value, seed, pool);
    case ExperimentKind::kPthresh:
      return run_pthresh_trial(scenario, axis_value, seed, pool);
    case ExperimentKind::kImdTiming:
      return run_timing_trial(scenario, seed, pool);
    case ExperimentKind::kCancellation:
      return run_cancellation_trial(scenario, axis_value, seed, pool);
    case ExperimentKind::kSpectrum:
      return run_spectrum_trial(scenario, seed);
    case ExperimentKind::kMultipathAntidote:
      return run_multipath_trial(scenario, axis_value, seed, pool);
    case ExperimentKind::kWideband:
      return run_wideband_trial(scenario, axis_value, seed);
  }
  return {};
}

std::array<StreamingStats, kMetricCount> run_chunk(
    const Scenario& scenario, std::uint64_t campaign_seed,
    const ChunkRef& chunk, shield::TrialContext* context,
    std::uint64_t warmup_seed, snapshot::SnapshotCache* cache,
    ChunkPoolCounters* fresh_counters) {
  std::array<StreamingStats, kMetricCount> metrics{};
  // Re-applying the warm policy is idempotent for a dedicated worker
  // context and required for a shared one: a service worker runs chunks
  // of different campaigns back to back, each with its own warm seed.
  if (context != nullptr) context->set_warm_policy(warmup_seed, cache);
  const double axis_value = scenario.axis_value_at(chunk.point_index);
  for (std::size_t t = chunk.trial_begin; t < chunk.trial_end; ++t) {
    const std::uint64_t seed =
        trial_seed(campaign_seed, scenario.name, chunk.point_index, t);
    std::vector<TrialSample> samples;
    {
      obs::ScopedTimer trial_timer(obs::Phase::kTrial);
      if (context != nullptr) {
        samples =
            run_trial(scenario, chunk.point_index, axis_value, seed, context);
      } else {
        // The A/B baseline: a throwaway context per trial keeps every
        // node freshly constructed (only the warm policy carries over,
        // so aggregates still match the pooled path bit-for-bit).
        shield::TrialContext fresh;
        fresh.set_warm_policy(warmup_seed, cache);
        samples =
            run_trial(scenario, chunk.point_index, axis_value, seed, &fresh);
        if (fresh_counters != nullptr) {
          fresh_counters->deployments_built += fresh.deployments_built();
          fresh_counters->snapshots_restored += fresh.snapshots_restored();
          fresh_counters->snapshots_saved += fresh.snapshots_saved();
        }
      }
    }
    obs::count(obs::Counter::kTrials);
    obs::ScopedTimer merge_timer(obs::Phase::kStatsMerge);
    for (const auto& sample : samples) {
      metrics[static_cast<std::size_t>(sample.metric)].add(sample.value);
    }
  }
  return metrics;
}

ShardExecution run_campaign_chunks(const Scenario& scenario,
                                   const CampaignOptions& options,
                                   ShardPlan plan) {
  ShardExecution exec;
  exec.plan = std::move(plan);
  const std::size_t shard_count = exec.plan.shard_count;
  const std::size_t shard_index = exec.plan.shard_index;
  const std::vector<ChunkRef>& chunks = exec.plan.chunks;
  // Chunk-local accumulators: workers never share one, and the
  // deterministic chunk ids (not the thread schedule) define the final
  // merge order.
  exec.chunk_metrics.resize(chunks.size());

  unsigned thread_count = options.threads > 0
                              ? options.threads
                              : std::max(1u, std::thread::hardware_concurrency());
  thread_count = std::min<unsigned>(
      thread_count, static_cast<unsigned>(std::max<std::size_t>(
                        chunks.size(), 1)));
  exec.threads = thread_count;

  // Deal contiguous blocks of the chunk list into per-worker deques; the
  // work-stealing loop rebalances from there. No chunk is ever added
  // after this point, so "every deque observed empty" is a safe
  // termination condition.
  std::vector<WorkerDeque> queues(thread_count);
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    queues[c * thread_count / std::max<std::size_t>(chunks.size(), 1)]
        .chunks.push_back(c);
  }

  // Two-phase seeding is unconditional for campaign trials: warm-up
  // streams draw from the shared campaign warm-up seed, trial streams
  // from the per-trial seed. Snapshots only change HOW the post-warm-up
  // state is reached (restore vs re-simulation), never what it is — so
  // --no-snapshot runs stay byte-identical to snapshot runs.
  const std::uint64_t warm_seed =
      campaign_warmup_seed(options.seed, scenario.name);
  // One cache per shard execution, shared by every worker thread (it is
  // internally locked; parsed snapshot documents are shared read-only).
  // With a directory it is also shared by concurrent shard processes.
  std::optional<snapshot::SnapshotCache> cache;
  if (options.snapshots) cache.emplace(options.snapshot_dir);
  snapshot::SnapshotCache* cache_ptr = cache ? &*cache : nullptr;

  // Shared observability sink: workers accumulate counters (and, with
  // CampaignOptions::metrics_timers, phase timers) into thread-local
  // blocks and fold them in here only at chunk boundaries — the merge
  // never synchronizes inside a trial and never touches RNG streams.
  obs::MetricsRegistry registry(options.metrics_timers);
  const bool tracing = options.trace != nullptr;

  // Legacy pool-effectiveness counters keep their historical accounting:
  // the no-reuse baseline records only built/restored/saved from its
  // throwaway contexts (within-trial resets excluded), matching what the
  // A/B comparison has always reported. The obs report counts every
  // event at its site and is the superset.
  std::atomic<std::size_t> deployments_built{0};
  std::atomic<std::size_t> deployments_reused{0};
  std::atomic<std::size_t> snapshots_restored{0};
  std::atomic<std::size_t> snapshots_saved{0};
  std::atomic<std::size_t> chunks_done{0};
  const std::size_t progress_every =
      std::max<std::size_t>(std::size_t{1}, chunks.size() / 10);
  const auto worker = [&](unsigned self) {
    obs::WorkerScope oscope(&registry, options.trace,
                            "worker-" + std::to_string(self));
    // One trial-context pool per worker: deployments and experiment nodes
    // are reset-and-reseeded between this worker's trials instead of
    // reconstructed (bit-identical either way; see trial_context.hpp).
    // run_chunk applies the warm policy on every chunk.
    shield::TrialContext pool;
    for (;;) {
      std::optional<std::size_t> c;
      bool stolen = false;
      {
        obs::ScopedTimer acquire(obs::Phase::kChunkAcquire);
        c = queues[self].pop(false);
        for (unsigned v = 1; !c && v < thread_count; ++v) {
          c = queues[(self + v) % thread_count].pop(true);
          if (c) stolen = true;
        }
      }
      if (!c) break;
      const ChunkRef& chunk = chunks[*c];
      if (stolen) {
        obs::count(obs::Counter::kChunksStolen);
        if (tracing) {
          char args[48];
          std::snprintf(args, sizeof args, "{\"chunk\":%zu}",
                        chunk.chunk_index);
          obs::trace_instant("steal", "steal", args);
        }
      }
      {
        std::optional<obs::TraceSpan> chunk_span;
        if (tracing) {
          char args[96];
          std::snprintf(args, sizeof args,
                        "{\"chunk\":%zu,\"point\":%zu,\"trials\":%zu,"
                        "\"stolen\":%s}",
                        chunk.chunk_index, chunk.point_index,
                        chunk.trial_end - chunk.trial_begin,
                        stolen ? "true" : "false");
          chunk_span.emplace("chunk",
                             "chunk " + std::to_string(chunk.chunk_index),
                             std::string(args));
        }
        if (options.reuse_deployments) {
          exec.chunk_metrics[*c] = run_chunk(scenario, options.seed, chunk,
                                             &pool, warm_seed, cache_ptr);
        } else {
          ChunkPoolCounters fresh;
          exec.chunk_metrics[*c] = run_chunk(scenario, options.seed, chunk,
                                             nullptr, warm_seed, cache_ptr,
                                             &fresh);
          deployments_built.fetch_add(fresh.deployments_built);
          snapshots_restored.fetch_add(fresh.snapshots_restored);
          snapshots_saved.fetch_add(fresh.snapshots_saved);
        }
      }
      obs::count(obs::Counter::kChunks);
      oscope.flush();  // chunk boundary: fold the thread block + spans
      const std::size_t done = chunks_done.fetch_add(1) + 1;
      if (options.chunks_completed != nullptr) {
        options.chunks_completed->fetch_add(1, std::memory_order_relaxed);
      }
      if (options.progress) {
        if (done % progress_every == 0 || done == chunks.size()) {
          // One fwrite + flush per line: run_sharded.py multiplexes the
          // stderr of K shard processes, and a buffered or split write
          // could interleave partial lines across shards.
          char line[96];
          const int len =
              std::snprintf(line, sizeof line, "shard %zu/%zu: chunks %zu/%zu\n",
                            shard_index, shard_count, done, chunks.size());
          if (len > 0) {
            std::fwrite(line, 1, static_cast<std::size_t>(len), stderr);
            std::fflush(stderr);
          }
        }
      }
    }
    deployments_built.fetch_add(pool.deployments_built());
    deployments_reused.fetch_add(pool.deployments_reused());
    snapshots_restored.fetch_add(pool.snapshots_restored());
    snapshots_saved.fetch_add(pool.snapshots_saved());
  };

  // steady_clock here is allowlisted in LINT.toml (steady-clock-scope):
  // it measures wall_seconds for the perf report only — never a trial,
  // and --canonical zeroes it out of byte-compared output.
  const auto t0 = std::chrono::steady_clock::now();
  if (thread_count <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(thread_count);
    for (unsigned i = 0; i < thread_count; ++i) {
      pool.emplace_back(worker, i);
    }
    for (auto& th : pool) th.join();
  }
  const auto t1 = std::chrono::steady_clock::now();
  exec.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  exec.metrics = registry.report();
  exec.deployments_built = deployments_built.load();
  exec.deployments_reused = deployments_reused.load();
  exec.chunks_stolen = exec.metrics.counter(obs::Counter::kChunksStolen);
  exec.snapshots_restored = snapshots_restored.load();
  exec.snapshots_saved = snapshots_saved.load();
  return exec;
}

ShardExecution run_campaign_shard(const Scenario& scenario,
                                  const CampaignOptions& options,
                                  std::size_t shard_count,
                                  std::size_t shard_index) {
  return run_campaign_chunks(
      scenario, options, plan_shard(scenario, options, shard_count, shard_index));
}

CampaignResult run_campaign(const Scenario& scenario,
                            const CampaignOptions& options) {
  CampaignResult result;
  result.scenario = scenario;
  result.options = options;

  ShardExecution exec = run_campaign_shard(scenario, options, 1, 0);
  result.options.threads = exec.threads;
  result.wall_seconds = exec.wall_seconds;
  result.deployments_built = exec.deployments_built;
  result.deployments_reused = exec.deployments_reused;
  result.chunks_stolen = exec.chunks_stolen;
  result.snapshots_restored = exec.snapshots_restored;
  result.snapshots_saved = exec.snapshots_saved;
  result.metrics = exec.metrics;

  result.points.resize(exec.plan.point_count);
  for (std::size_t p = 0; p < exec.plan.point_count; ++p) {
    result.points[p].point_index = p;
    result.points[p].axis_value = scenario.axis_value_at(p);
  }
  // A single shard's chunks are already every chunk in ascending id
  // order — fold them exactly as the multi-shard merge does. The fold is
  // timed through its own scope so --metrics-json attributes it to
  // stats_merge alongside the in-worker accumulation.
  {
    obs::MetricsRegistry fold_registry(options.metrics_timers);
    obs::WorkerScope fold_scope(&fold_registry, nullptr, "merge");
    {
      obs::ScopedTimer fold_timer(obs::Phase::kStatsMerge);
      for (std::size_t c = 0; c < exec.plan.chunks.size(); ++c) {
        auto& point = result.points[exec.plan.chunks[c].point_index];
        for (std::size_t m = 0; m < kMetricCount; ++m) {
          point.metrics[m].merge(exec.chunk_metrics[c][m]);
        }
      }
    }
    fold_scope.flush();
    result.metrics.merge(fold_registry.report());
  }
  result.total_trials = exec.plan.point_count * exec.plan.trials_per_point;
  return result;
}

}  // namespace hs::campaign
