#include "campaign/chunk_stream.hpp"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "campaign/report.hpp"
#include "phy/crc.hpp"
#include "snapshot/state_io.hpp"

namespace hs::campaign {

namespace {

/// Hex-float text ("%a"): the exact bits of the double, so parse(print(x))
/// reproduces x with no decimal rounding anywhere. The determinism
/// linter's float-format rule forces every round-tripping double in
/// this file through here; std::to_string stays allowlisted in
/// LINT.toml for integer ids and diagnostics only.
void append_hex_double(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "\"%a\"", v);
  out += buf;
}

/// CRC-16/CCITT over the line as it reads without the crc field: the
/// payload bytes up to the ',"crc"' suffix plus a closing '}'. The writer
/// computes it over the complete v2-style line before splicing the crc
/// field in; the parser reconstructs the same byte sequence.
std::uint16_t line_crc(std::string_view payload_without_close) {
  phy::Crc16 crc;
  for (const char c : payload_without_close) {
    crc.update(static_cast<std::uint8_t>(c));
  }
  crc.update(static_cast<std::uint8_t>('}'));
  return crc.value();
}

/// Replaces a finished line's closing '}' with the checksum suffix:
/// `{...}` -> `{...,"crc":"xxxx"}`.
void seal_line(std::string& line) {
  const std::uint16_t crc =
      line_crc(std::string_view(line).substr(0, line.size() - 1));
  char buf[24];
  std::snprintf(buf, sizeof buf, ",\"crc\":\"%04x\"}", crc);
  line.resize(line.size() - 1);
  line += buf;
}

/// Strict scanner over one serialized line. Any deviation from the
/// writer's byte layout fails with the source/line context — a truncated
/// or hand-edited line cannot parse into a half-read record.
class Scanner {
 public:
  Scanner(std::string_view line, std::string_view source, std::size_t lineno)
      : s_(line), source_(source), lineno_(lineno) {}

  [[noreturn]] void fail(const std::string& what) const {
    throw ChunkStreamError("chunk-stream: " + std::string(source_) +
                           " line " + std::to_string(lineno_) + ": " + what);
  }

  void expect(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) {
      fail("expected '" + std::string(lit) + "'" +
           (pos_ + lit.size() > s_.size() ? " (truncated line?)" : ""));
    }
    pos_ += lit.size();
  }

  bool consume(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  void expect_key(std::string_view name) {
    expect("\"");
    expect(name);
    expect("\":");
  }

  std::string string_value() {
    expect("\"");
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("unterminated escape in string");
        const char e = s_[pos_++];
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          default: fail("unsupported string escape");
        }
      }
      out += c;
    }
    expect("\"");
    return out;
  }

  std::uint64_t u64_value() {
    const std::size_t begin = pos_;
    while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    if (pos_ == begin) fail("expected unsigned integer");
    const std::string digits(s_.substr(begin, pos_ - begin));
    errno = 0;
    const std::uint64_t v = std::strtoull(digits.c_str(), nullptr, 10);
    if (errno == ERANGE) {
      fail("integer '" + digits + "' does not fit in 64 bits");
    }
    return v;
  }

  double hex_double_value() {
    const std::string text = string_value();
    char* end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size() || text.empty()) {
      fail("malformed hex-float '" + text + "'");
    }
    return v;
  }

  /// The v3 line tail: `,"crc":"xxxx"}` then end of line. Verifies the
  /// checksum over every payload byte scanned so far plus the closing
  /// brace the v2 layout would have had — so a mutation anywhere in the
  /// line, even one that still parses field-by-field, is rejected here.
  void expect_crc_and_end() {
    const std::size_t payload_end = pos_;
    expect(",");
    expect_key("crc");
    const std::string hex = string_value();
    expect("}");
    if (pos_ != s_.size()) fail("trailing bytes after record");
    if (hex.size() != 4) fail("crc must be four hex digits");
    char* end = nullptr;
    const unsigned long got = std::strtoul(hex.c_str(), &end, 16);
    if (end != hex.c_str() + hex.size()) {
      fail("malformed crc '" + hex + "'");
    }
    const std::uint16_t want = line_crc(s_.substr(0, payload_end));
    if (static_cast<std::uint16_t>(got) != want) {
      char buf[64];
      std::snprintf(buf, sizeof buf,
                    "crc mismatch (line says %04lx, payload is %04x)", got,
                    want);
      fail(buf);
    }
  }

 private:
  std::string_view s_;
  std::size_t pos_ = 0;
  std::string_view source_;
  std::size_t lineno_;
};

ChunkStreamHeader parse_header(std::string_view line,
                               std::string_view source) {
  Scanner sc(line, source, 1);
  ChunkStreamHeader h;
  sc.expect("{");
  sc.expect_key("format");
  if (sc.string_value() != "hs-chunk-stream") {
    sc.fail("not an hs-chunk-stream file");
  }
  sc.expect(",");
  sc.expect_key("version");
  const std::uint64_t version = sc.u64_value();
  if (version != static_cast<std::uint64_t>(kChunkStreamVersion)) {
    sc.fail("unsupported chunk-stream version " + std::to_string(version) +
            " (this build reads version " +
            std::to_string(kChunkStreamVersion) + ")");
  }
  h.version = static_cast<int>(version);
  sc.expect(",");
  sc.expect_key("scenario");
  h.scenario = sc.string_value();
  sc.expect(",");
  sc.expect_key("seed");
  h.seed = sc.u64_value();
  sc.expect(",");
  sc.expect_key("trials_per_point");
  h.trials_per_point = sc.u64_value();
  sc.expect(",");
  sc.expect_key("chunk_size");
  h.chunk_size = sc.u64_value();
  sc.expect(",");
  sc.expect_key("shard_count");
  h.shard_count = sc.u64_value();
  sc.expect(",");
  sc.expect_key("shard_index");
  h.shard_index = sc.u64_value();
  sc.expect(",");
  sc.expect_key("point_count");
  h.point_count = sc.u64_value();
  sc.expect(",");
  sc.expect_key("total_chunks");
  h.total_chunks = sc.u64_value();
  sc.expect(",");
  sc.expect_key("chunk_count");
  h.chunk_count = sc.u64_value();
  sc.expect(",");
  sc.expect_key("mode");
  const std::string mode = sc.string_value();
  if (mode == "deal") {
    h.repair = false;
  } else if (mode == "repair") {
    h.repair = true;
  } else {
    sc.fail("mode must be 'deal' or 'repair', not '" + mode + "'");
  }
  sc.expect_crc_and_end();

  if (h.shard_count == 0) sc.fail("shard_count must be >= 1");
  if (h.shard_index >= h.shard_count) {
    sc.fail("shard_index " + std::to_string(h.shard_index) +
            " out of range for shard_count " + std::to_string(h.shard_count));
  }
  if (h.chunk_size == 0) sc.fail("chunk_size must be >= 1");
  if (h.trials_per_point == 0) sc.fail("trials_per_point must be >= 1");
  return h;
}

ChunkRecord parse_chunk_record(std::string_view line,
                               std::string_view source, std::size_t lineno,
                               const ChunkStreamHeader& h) {
  Scanner sc(line, source, lineno);
  ChunkRecord rec;
  rec.lineno = lineno;
  sc.expect("{");
  sc.expect_key("chunk");
  rec.ref.chunk_index = sc.u64_value();
  sc.expect(",");
  sc.expect_key("point");
  rec.ref.point_index = sc.u64_value();
  sc.expect(",");
  sc.expect_key("trial_begin");
  rec.ref.trial_begin = sc.u64_value();
  sc.expect(",");
  sc.expect_key("trial_end");
  rec.ref.trial_end = sc.u64_value();
  sc.expect(",");
  sc.expect_key("metrics");
  sc.expect("{");
  std::set<std::size_t> seen;
  if (!sc.consume("}")) {
    for (;;) {
      const std::string name = sc.string_value();
      Metric metric;
      if (!metric_from_name(name, &metric)) {
        sc.fail("unknown metric '" + name + "'");
      }
      if (!seen.insert(static_cast<std::size_t>(metric)).second) {
        sc.fail("duplicate metric '" + name + "'");
      }
      sc.expect(":{");
      StreamingStats::Moments m;
      sc.expect_key("count");
      m.count = sc.u64_value();
      sc.expect(",");
      sc.expect_key("mean");
      m.mean = sc.hex_double_value();
      sc.expect(",");
      sc.expect_key("m2");
      m.m2 = sc.hex_double_value();
      sc.expect(",");
      sc.expect_key("min");
      m.min = sc.hex_double_value();
      sc.expect(",");
      sc.expect_key("max");
      m.max = sc.hex_double_value();
      sc.expect("}");
      if (m.count == 0) sc.fail("metric '" + name + "' with zero count");
      rec.metrics[static_cast<std::size_t>(metric)] =
          StreamingStats::from_moments(m);
      if (sc.consume(",")) continue;
      sc.expect("}");
      break;
    }
  }
  sc.expect_crc_and_end();

  if (rec.ref.chunk_index >= h.total_chunks) {
    sc.fail("chunk id " + std::to_string(rec.ref.chunk_index) +
            " out of range (total_chunks " + std::to_string(h.total_chunks) +
            ")");
  }
  if (!h.repair && rec.ref.chunk_index % h.shard_count != h.shard_index) {
    sc.fail("chunk id " + std::to_string(rec.ref.chunk_index) +
            " does not belong to shard " + std::to_string(h.shard_index) +
            "/" + std::to_string(h.shard_count));
  }
  if (rec.ref.point_index >= h.point_count ||
      rec.ref.trial_begin >= rec.ref.trial_end ||
      rec.ref.trial_end > h.trials_per_point) {
    sc.fail("chunk " + std::to_string(rec.ref.chunk_index) +
            " has an out-of-range point or trial window");
  }
  return rec;
}

/// The metrics trailer is as strict as the records: fixed key order,
/// every counter and phase present (enum order), the line checksum, and
/// nothing after the closing brace.
ShardMetricsTrailer parse_metrics_trailer(std::string_view line,
                                          std::string_view source,
                                          std::size_t lineno) {
  Scanner sc(line, source, lineno);
  ShardMetricsTrailer t;
  sc.expect("{");
  sc.expect_key("trailer");
  if (sc.string_value() != "hs-metrics") {
    sc.fail("expected the hs-metrics trailer record");
  }
  sc.expect(",");
  sc.expect_key("version");
  const std::uint64_t version = sc.u64_value();
  if (version != static_cast<std::uint64_t>(obs::kMetricsVersion)) {
    sc.fail("unsupported metrics trailer version " + std::to_string(version) +
            " (this build reads version " +
            std::to_string(obs::kMetricsVersion) + ")");
  }
  t.version = static_cast<int>(version);
  sc.expect(",");
  sc.expect_key("threads");
  t.threads = static_cast<unsigned>(sc.u64_value());
  if (t.threads == 0) sc.fail("trailer threads must be >= 1");
  sc.expect(",");
  sc.expect_key("wall_ns");
  t.wall_ns = sc.u64_value();
  sc.expect(",");
  sc.expect_key("counters");
  sc.expect("{");
  for (std::size_t i = 0; i < obs::kCounterCount; ++i) {
    if (i > 0) sc.expect(",");
    sc.expect_key(obs::counter_name(static_cast<obs::Counter>(i)));
    t.report.counters[i] = sc.u64_value();
  }
  sc.expect("}");
  sc.expect(",");
  sc.expect_key("phases");
  sc.expect("{");
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
    if (i > 0) sc.expect(",");
    sc.expect_key(obs::phase_name(static_cast<obs::Phase>(i)));
    sc.expect("{");
    sc.expect_key("calls");
    t.report.phases[i].calls = sc.u64_value();
    sc.expect(",");
    sc.expect_key("ns");
    t.report.phases[i].ns = sc.u64_value();
    sc.expect("}");
  }
  sc.expect("}");
  sc.expect_crc_and_end();
  return t;
}

std::vector<std::string_view> split_lines(std::string_view text) {
  std::vector<std::string_view> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) break;  // caller handles the tail
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

}  // namespace

std::string serialize_stream_header(const Scenario& scenario,
                                    const CampaignOptions& options,
                                    const ShardPlan& plan) {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "{\"format\":\"hs-chunk-stream\",\"version\":%d,"
                "\"scenario\":\"%s\",\"seed\":%" PRIu64
                ",\"trials_per_point\":%zu,\"chunk_size\":%zu,"
                "\"shard_count\":%zu,\"shard_index\":%zu,"
                "\"point_count\":%zu,\"total_chunks\":%zu,"
                "\"chunk_count\":%zu,\"mode\":\"%s\"}",
                kChunkStreamVersion, json_escape(scenario.name).c_str(),
                options.seed, plan.trials_per_point, plan.chunk_size,
                plan.shard_count, plan.shard_index, plan.point_count,
                plan.total_chunks, plan.chunks.size(),
                plan.repair ? "repair" : "deal");
  std::string line = buf;
  seal_line(line);
  return line;
}

std::string serialize_chunk_record(
    const ChunkRef& ref,
    const std::array<StreamingStats, kMetricCount>& metrics) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "{\"chunk\":%zu,\"point\":%zu,\"trial_begin\":%zu,"
                "\"trial_end\":%zu,\"metrics\":{",
                ref.chunk_index, ref.point_index, ref.trial_begin,
                ref.trial_end);
  std::string line = buf;
  bool first = true;
  for (std::size_t m = 0; m < kMetricCount; ++m) {
    const auto moments = metrics[m].moments();
    if (moments.count == 0) continue;
    if (!first) line += ',';
    first = false;
    line += '"';
    line += metric_name(static_cast<Metric>(m));
    line += "\":{\"count\":";
    line += std::to_string(moments.count);
    line += ",\"mean\":";
    append_hex_double(line, moments.mean);
    line += ",\"m2\":";
    append_hex_double(line, moments.m2);
    line += ",\"min\":";
    append_hex_double(line, moments.min);
    line += ",\"max\":";
    append_hex_double(line, moments.max);
    line += '}';
  }
  line += "}}";
  seal_line(line);
  return line;
}

std::string serialize_metrics_trailer(unsigned threads, double wall_seconds,
                                      const obs::Report& report) {
  // Always written, every counter and phase in enum order, so the line
  // layout (and the strict parser above) never depends on what a run
  // happened to count.
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "{\"trailer\":\"hs-metrics\",\"version\":%d,\"threads\":%u,"
                "\"wall_ns\":%" PRIu64 ",\"counters\":{",
                obs::kMetricsVersion, threads,
                static_cast<std::uint64_t>(wall_seconds * 1e9));
  std::string line = buf;
  for (std::size_t i = 0; i < obs::kCounterCount; ++i) {
    if (i > 0) line += ',';
    line += '"';
    line += obs::counter_name(static_cast<obs::Counter>(i));
    line += "\":";
    line += std::to_string(report.counters[i]);
  }
  line += "},\"phases\":{";
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
    if (i > 0) line += ',';
    line += '"';
    line += obs::phase_name(static_cast<obs::Phase>(i));
    line += "\":{\"calls\":";
    line += std::to_string(report.phases[i].calls);
    line += ",\"ns\":";
    line += std::to_string(report.phases[i].ns);
    line += '}';
  }
  line += "}}";
  seal_line(line);
  return line;
}

std::string serialize_chunk_stream(const Scenario& scenario,
                                   const CampaignOptions& options,
                                   const ShardExecution& exec) {
  const ShardPlan& plan = exec.plan;
  std::string out;
  out += serialize_stream_header(scenario, options, plan);
  out += '\n';
  for (std::size_t c = 0; c < plan.chunks.size(); ++c) {
    out += serialize_chunk_record(plan.chunks[c], exec.chunk_metrics[c]);
    out += '\n';
  }
  // Trailer: the shard's merged observability report.
  out += serialize_metrics_trailer(exec.threads, exec.wall_seconds,
                                   exec.metrics);
  out += '\n';
  return out;
}

ChunkStream parse_chunk_stream(std::string_view text,
                               std::string_view source) {
  if (text.empty()) {
    throw ChunkStreamError("chunk-stream: " + std::string(source) +
                           ": empty stream");
  }
  if (text.back() != '\n') {
    throw ChunkStreamError("chunk-stream: " + std::string(source) +
                           ": truncated stream (missing final newline)");
  }

  const std::vector<std::string_view> lines = split_lines(text);

  ChunkStream stream;
  stream.source = std::string(source);
  stream.header = parse_header(lines[0], source);
  // Layout: header + chunk_count records + metrics trailer.
  if (lines.size() != 1 + stream.header.chunk_count + 1) {
    throw ChunkStreamError(
        "chunk-stream: " + std::string(source) + ": header promises " +
        std::to_string(stream.header.chunk_count) +
        " chunk records plus a metrics trailer, found " +
        std::to_string(lines.size() - 1) +
        " lines after the header (truncated or padded stream)");
  }
  stream.chunks.reserve(stream.header.chunk_count);
  for (std::size_t i = 1; i + 1 < lines.size(); ++i) {
    ChunkRecord rec =
        parse_chunk_record(lines[i], source, i + 1, stream.header);
    if (!stream.chunks.empty() &&
        rec.ref.chunk_index <= stream.chunks.back().ref.chunk_index) {
      throw ChunkStreamError(
          "chunk-stream: " + std::string(source) + " line " +
          std::to_string(i + 1) + ": duplicate or out-of-order chunk id " +
          std::to_string(rec.ref.chunk_index));
    }
    stream.chunks.push_back(std::move(rec));
  }
  stream.trailer =
      parse_metrics_trailer(lines.back(), source, lines.size());
  return stream;
}

ChunkStream load_chunk_stream(const std::string& path) {
  std::string text;
  switch (snapshot::read_whole_file(path, text)) {
    case snapshot::FileReadStatus::kOpenFailed:
      throw ChunkStreamError("chunk-stream: cannot open " + path);
    case snapshot::FileReadStatus::kReadError:
      throw ChunkStreamError("chunk-stream: error reading " + path);
    case snapshot::FileReadStatus::kOk: break;
  }
  return parse_chunk_stream(text, path);
}

SalvagedStream salvage_chunk_stream(std::string_view text,
                                    std::string_view source) {
  SalvagedStream out;
  out.source = std::string(source);
  if (text.empty()) {
    out.truncation_reason = "empty stream";
    return out;
  }
  // A missing final newline means the last line was cut mid-write; the
  // complete lines before it are still candidates.
  const bool clean_tail = text.back() == '\n';
  const std::vector<std::string_view> lines = split_lines(text);
  if (lines.empty()) {
    out.truncation_reason = "no complete line";
    return out;
  }

  try {
    out.header = parse_header(lines[0], source);
  } catch (const ChunkStreamError& e) {
    out.truncation_reason = e.what();
    return out;
  }
  out.header_valid = true;

  // Accept records under exactly the strict rules; the first offending
  // line ends the salvage. A line that parses as the trailer instead of
  // a record ends record acceptance too (handled below).
  const std::size_t record_lines =
      std::min(lines.size() - 1, out.header.chunk_count);
  std::size_t accepted = 0;
  for (; accepted < record_lines; ++accepted) {
    const std::size_t lineno = accepted + 2;
    try {
      ChunkRecord rec = parse_chunk_record(lines[accepted + 1], source,
                                           lineno, out.header);
      if (!out.chunks.empty() &&
          rec.ref.chunk_index <= out.chunks.back().ref.chunk_index) {
        out.truncation_reason =
            "line " + std::to_string(lineno) +
            ": duplicate or out-of-order chunk id " +
            std::to_string(rec.ref.chunk_index);
        return out;
      }
      out.chunks.push_back(std::move(rec));
    } catch (const ChunkStreamError& e) {
      out.truncation_reason = e.what();
      return out;
    }
  }

  // All promised records were valid; the stream is complete only if the
  // trailer line follows, checks out, and nothing trails it.
  if (accepted < out.header.chunk_count) {
    out.truncation_reason =
        "stream ends after " + std::to_string(accepted) + " of " +
        std::to_string(out.header.chunk_count) + " promised records";
    return out;
  }
  if (lines.size() < out.header.chunk_count + 2 || !clean_tail) {
    out.truncation_reason = "metrics trailer missing or cut short";
    return out;
  }
  if (lines.size() > out.header.chunk_count + 2) {
    out.truncation_reason = "unexpected lines after the metrics trailer";
    return out;
  }
  try {
    out.trailer = parse_metrics_trailer(lines.back(), source, lines.size());
  } catch (const ChunkStreamError& e) {
    out.truncation_reason = e.what();
    return out;
  }
  out.complete = true;
  return out;
}

SalvagedStream salvage_chunk_stream_file(const std::string& path) {
  std::string text;
  switch (snapshot::read_whole_file(path, text)) {
    case snapshot::FileReadStatus::kOpenFailed: {
      SalvagedStream out;
      out.source = path;
      out.truncation_reason = "cannot open stream file";
      return out;
    }
    case snapshot::FileReadStatus::kReadError: {
      SalvagedStream out;
      out.source = path;
      out.truncation_reason = "error reading stream file";
      return out;
    }
    case snapshot::FileReadStatus::kOk: break;
  }
  return salvage_chunk_stream(text, path);
}

CampaignResult merge_chunk_streams(const Scenario& scenario,
                                   const std::vector<ChunkStream>& streams,
                                   MergedMetrics* metrics) {
  if (streams.empty()) {
    throw ChunkStreamError("chunk-stream merge: no streams given");
  }
  // Shard index + source + line locator for every merge diagnostic, so a
  // rejected multi-gigabyte campaign names the record to look at instead
  // of just failing.
  const auto locate = [](const ChunkStream& s, std::size_t lineno) {
    return "shard " + std::to_string(s.header.shard_index) + " (" +
           s.source + ") line " + std::to_string(lineno);
  };
  const ChunkStreamHeader& h0 = streams.front().header;
  if (h0.scenario != scenario.name) {
    throw ChunkStreamError("chunk-stream merge: stream is for scenario '" +
                           h0.scenario + "', not '" + scenario.name + "'");
  }
  if (streams.size() != h0.shard_count) {
    throw ChunkStreamError(
        "chunk-stream merge: campaign was split into " +
        std::to_string(h0.shard_count) + " shards but " +
        std::to_string(streams.size()) + " streams were given");
  }

  CampaignOptions options;
  options.seed = h0.seed;
  options.trials_per_point = h0.trials_per_point;
  options.chunk_size = h0.chunk_size;
  options.threads = 0;

  std::set<std::size_t> shard_indices;
  for (const ChunkStream& s : streams) {
    const ChunkStreamHeader& h = s.header;
    if (h.repair) {
      throw ChunkStreamError(
          "chunk-stream merge: " + s.source + " is a repair stream (shard " +
          std::to_string(h.shard_index) +
          "); recovered campaigns merge through the dispatcher, not "
          "--merge");
    }
    if (h.scenario != h0.scenario || h.seed != h0.seed ||
        h.trials_per_point != h0.trials_per_point ||
        h.chunk_size != h0.chunk_size || h.shard_count != h0.shard_count ||
        h.point_count != h0.point_count ||
        h.total_chunks != h0.total_chunks) {
      throw ChunkStreamError(
          "chunk-stream merge: header of shard " +
          std::to_string(h.shard_index) + " (" + s.source +
          ") disagrees with shard " + std::to_string(h0.shard_index) + " (" +
          streams.front().source +
          ") (scenario/seed/trials_per_point/chunk_size/shard_count/"
          "point_count/total_chunks must match across all shards)");
    }
    if (!shard_indices.insert(h.shard_index).second) {
      throw ChunkStreamError("chunk-stream merge: shard index " +
                             std::to_string(h.shard_index) + " (" + s.source +
                             ") appears in more than one stream");
    }

    // Re-derive this shard's plan from the scenario and reject any stream
    // whose recorded chunk geometry disagrees — the scenario preset (or
    // its trial count) is not the one the shard actually ran.
    const ShardPlan plan =
        plan_shard(scenario, options, h.shard_count, h.shard_index);
    if (plan.point_count != h.point_count ||
        plan.total_chunks != h.total_chunks ||
        plan.chunks.size() != s.chunks.size()) {
      throw ChunkStreamError(
          "chunk-stream merge: shard " + std::to_string(h.shard_index) +
          " (" + s.source + ") geometry disagrees with scenario '" +
          scenario.name + "'");
    }
    for (std::size_t c = 0; c < plan.chunks.size(); ++c) {
      if (!(s.chunks[c].ref == plan.chunks[c])) {
        throw ChunkStreamError(
            "chunk-stream merge: " + locate(s, s.chunks[c].lineno) +
            ": record " + std::to_string(c) +
            " does not match the planned chunk (id " +
            std::to_string(plan.chunks[c].chunk_index) + ")");
      }
    }
  }

  // Every global chunk id exactly once across the shard set.
  std::vector<const ChunkRecord*> by_id(h0.total_chunks, nullptr);
  std::vector<const ChunkStream*> owner(h0.total_chunks, nullptr);
  for (const ChunkStream& s : streams) {
    for (const ChunkRecord& rec : s.chunks) {
      if (by_id[rec.ref.chunk_index] != nullptr) {
        const ChunkRecord* first = by_id[rec.ref.chunk_index];
        throw ChunkStreamError(
            "chunk-stream merge: " + locate(s, rec.lineno) +
            ": duplicate chunk id " + std::to_string(rec.ref.chunk_index) +
            " (first seen at " +
            locate(*owner[rec.ref.chunk_index], first->lineno) + ")");
      }
      by_id[rec.ref.chunk_index] = &rec;
      owner[rec.ref.chunk_index] = &s;
    }
  }
  for (std::size_t id = 0; id < by_id.size(); ++id) {
    if (by_id[id] == nullptr) {
      throw ChunkStreamError("chunk-stream merge: chunk id " +
                             std::to_string(id) +
                             " is missing from every stream");
    }
  }

  CampaignResult result;
  result.scenario = scenario;
  result.options = options;
  result.points.resize(h0.point_count);
  for (std::size_t p = 0; p < h0.point_count; ++p) {
    result.points[p].point_index = p;
    result.points[p].axis_value = scenario.axis_value_at(p);
  }
  // The fixed fold order that makes the merge bit-identical to a serial
  // run: ascending global chunk id, exactly like run_campaign.
  for (const ChunkRecord* rec : by_id) {
    auto& point = result.points[rec->ref.point_index];
    for (std::size_t m = 0; m < kMetricCount; ++m) {
      point.metrics[m].merge(rec->metrics[m]);
    }
  }
  result.total_trials = h0.point_count * h0.trials_per_point;

  if (metrics != nullptr) {
    *metrics = MergedMetrics{};
    metrics->shards = streams.size();
    for (const ChunkStream& s : streams) {
      metrics->threads += s.trailer.threads;
      metrics->wall_ns += s.trailer.wall_ns;
      metrics->report.merge(s.trailer.report);
    }
  }
  return result;
}

}  // namespace hs::campaign
