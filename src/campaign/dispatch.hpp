/// @file
/// Fault-tolerant campaign dispatcher: launches the K shards of a
/// sharded campaign through a pluggable Executor, watches their chunk
/// streams, and re-deals exactly the chunks that were lost to dead,
/// truncated, corrupted or straggling shards — with the merged report
/// still byte-identical to the serial run.
///
/// Why recovery can be exact: shard work is a pure function of
/// (scenario, seed, trials, chunk_size, K, i) and every trial seed is
/// keyed by global chunk identity, never by which worker executed it
/// (runner.hpp). So a chunk re-run by a repair task produces the same
/// bits the dead shard would have produced, and folding records in
/// ascending chunk id erases the recovery history from the result:
///
///     deal tasks ──Executor──▶ streams ──salvage──▶ valid-prefix
///        ▲                                           records
///        │                                              │
///     re-deal  ◀── missing chunk ids ◀── first-wins dedup by id
///     (repair                                           │
///      plans)                              all ids covered? ──▶ fold
///                                                              (ascending)
///
/// The recovery loop trusts nothing but validated records: streams are
/// parsed in salvage mode (chunk_stream.hpp) so only lines the strict
/// parser would accept survive, per-line CRCs reject silent corruption,
/// and every record must match the global chunk enumeration recomputed
/// from the scenario. Duplicates (a straggler finishing after its chunks
/// were re-dealt) are suppressed first-wins — harmless either way, since
/// determinism makes both copies bit-identical.
///
/// Every recovery path is exercised deterministically through FaultPlan:
/// a declarative list of faults (kill after N records, truncate at a
/// byte/line, delay delivery by N waves, corrupt one line) that both
/// executors inject into generation-0 tasks. Faults are data, not race
/// conditions, so tests/test_dispatch.cpp can sweep the full
/// kill-each-shard-at-each-chunk matrix reproducibly.
#pragma once

#include <cstddef>
#include <deque>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/chunk_stream.hpp"
#include "campaign/runner.hpp"

namespace hs::campaign {

/// Dispatch-layer failure (unrecoverable loss, executor misuse, bad
/// fault spec).
class DispatchError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class FaultKind {
  kKill,           ///< shard dies after writing N chunk records (no trailer)
  kTruncateBytes,  ///< stream cut to its first N bytes
  kTruncateLines,  ///< stream cut to its first N lines
  kDelay,          ///< delivery withheld for N collect waves (straggler)
  kCorrupt,        ///< one byte of line N (1-based) flipped
};

/// One injected fault, targeting generation-0 task `shard`. Repair tasks
/// are never faulted: the matrix proves recovery from every single
/// fault, and a fault-plan that also killed repairs would only retest
/// max_rounds.
struct Fault {
  FaultKind kind = FaultKind::kKill;
  std::size_t shard = 0;
  /// kill: records completed; truncate: bytes/lines kept; delay: waves
  /// withheld; corrupt: 1-based line mutated.
  std::size_t arg = 0;

  bool operator==(const Fault&) const = default;
};

/// A deterministic fault schedule. Text form (CLI `--fault-plan`,
/// run_sharded.py `--inject`) is comma-separated `kind:shard@arg`:
///
///   kill:1@3      shard 1 dies after its 3rd chunk record
///   trunc:0@140   shard 0's stream keeps only its first 140 bytes
///   truncl:2@4    shard 2's stream keeps only its first 4 lines
///   delay:1@2     shard 1's stream is delivered 2 collect waves late
///   corrupt:0@5   one byte of line 5 of shard 0's stream is flipped
struct FaultPlan {
  std::vector<Fault> faults;

  bool empty() const { return faults.empty(); }

  /// Parses the text form. Throws DispatchError with the offending
  /// token named.
  static FaultPlan parse(std::string_view spec);

  /// The canonical text form (round-trips through parse).
  std::string to_string() const;

  /// The subset targeting one shard (what a subprocess child is told).
  FaultPlan for_shard(std::size_t shard) const;

  /// Collect waves shard `shard`'s delivery is withheld (0 = none).
  std::size_t delay_waves(std::size_t shard) const;
};

/// Applies the stream-mutating faults (kill / truncate / corrupt — not
/// delay, which is a delivery fault) for `shard` to a serialized stream.
/// Sets *killed when a kill fault applied, so the caller can also fail
/// the task's exit status. Deterministic: same plan + same stream →
/// same bytes.
std::string apply_stream_faults(const FaultPlan& plan, std::size_t shard,
                                std::string text, bool* killed);

/// One unit of executor work: run `plan`'s chunks, emit the stream.
/// generation 0 is the initial round-robin deal (fault injection
/// applies); generation g >= 1 is the g-th repair wave.
struct ShardTask {
  std::size_t slot = 0;  ///< worker slot == plan.shard_index
  std::size_t generation = 0;
  ShardPlan plan;
};

/// What came back from a task: the stream text as it exists after any
/// faults (possibly truncated, corrupted, or empty), plus whether the
/// task itself finished cleanly. The dispatcher never trusts exited_ok —
/// a clean exit with a corrupt stream is still a corrupt stream — it
/// salvages the text regardless.
struct TaskOutcome {
  std::size_t slot = 0;
  std::size_t generation = 0;
  bool exited_ok = false;
  std::string stream_text;
  std::string source;  ///< label for diagnostics ("thread 1 gen 0", a path)
};

/// Where shard tasks actually run. Implementations must deliver every
/// task exactly once across run_wave / collect_delayed / drain, and must
/// inject the FaultPlan they were built with into generation-0 tasks
/// only. The ssh/slurm transports of the multi-host fabric implement
/// this same interface later.
class Executor {
 public:
  virtual ~Executor() = default;

  /// Runs the wave's tasks concurrently and returns the outcomes that
  /// are due now (delay-faulted outcomes are withheld).
  virtual std::vector<TaskOutcome> run_wave(
      const std::vector<ShardTask>& tasks) = 0;

  /// Advances withheld outcomes one wave and returns those now due.
  /// The dispatcher calls this once per recovery round.
  virtual std::vector<TaskOutcome> collect_delayed() = 0;

  /// All still-withheld outcomes, immediately (end-of-dispatch drain so
  /// stragglers are accounted even when recovery finished first).
  virtual std::vector<TaskOutcome> drain() = 0;
};

/// FIFO of delay-faulted outcomes shared by both executors.
class DelayQueue {
 public:
  void push(TaskOutcome outcome, std::size_t waves);
  std::vector<TaskOutcome> advance();  ///< one wave passes
  std::vector<TaskOutcome> drain();

 private:
  struct Entry {
    TaskOutcome outcome;
    std::size_t waves_left;
  };
  std::deque<Entry> entries_;
};

/// Runs tasks as in-process threads (run_campaign_chunks + serialize),
/// applying stream faults to generation-0 results in memory. The
/// cheapest transport, and the one the deterministic fault matrix in
/// tests/test_dispatch.cpp sweeps.
class ThreadExecutor : public Executor {
 public:
  ThreadExecutor(const Scenario& scenario, const CampaignOptions& options,
                 FaultPlan faults = {});

  std::vector<TaskOutcome> run_wave(
      const std::vector<ShardTask>& tasks) override;
  std::vector<TaskOutcome> collect_delayed() override;
  std::vector<TaskOutcome> drain() override;

 private:
  const Scenario& scenario_;
  CampaignOptions options_;
  FaultPlan faults_;
  DelayQueue delayed_;
};

/// Runs tasks as local campaign_runner child processes (`--shards
/// --shard --emit-chunks`, repair waves via `--chunks`), forwarding each
/// shard's faults with `--fault-plan` so the child itself writes the
/// faulted stream and dies for kill faults — the real crash path, not a
/// simulation of it. Streams land in `workdir` as
/// `shard-<slot>-gen<generation>.jsonl`. Delay faults are delivery
/// faults and stay parent-side.
class SubprocessExecutor : public Executor {
 public:
  SubprocessExecutor(std::string runner_path, std::string workdir,
                     std::string scenario_name, CampaignOptions options,
                     FaultPlan faults = {});

  std::vector<TaskOutcome> run_wave(
      const std::vector<ShardTask>& tasks) override;
  std::vector<TaskOutcome> collect_delayed() override;
  std::vector<TaskOutcome> drain() override;

 private:
  std::string runner_path_;
  std::string workdir_;
  std::string scenario_name_;
  CampaignOptions options_;
  FaultPlan faults_;
  DelayQueue delayed_;
};

struct DispatchOptions {
  std::size_t shard_count = 1;
  /// Recovery rounds after the initial deal before giving up. Every
  /// single-fault plan recovers in 1; the bound only trips when loss
  /// repeats every round.
  std::size_t max_rounds = 4;
  FaultPlan faults;  ///< injected into generation-0 tasks
};

/// How the campaign was recovered: the dispatcher's own accounting plus
/// the aggregated trailers of every COMPLETE stream (partial streams
/// lose their counters with their trailer; their salvaged records are
/// still merged). Trailers of duplicated work (stragglers, their repair
/// tasks) all count, so `deployments_built + deployments_reused` equals
/// trials *executed*, which exceeds trials *merged* exactly when work
/// was duplicated.
struct DispatchReport {
  std::size_t rounds = 0;  ///< recovery rounds actually run
  std::size_t chunks_redealt = 0;
  std::size_t chunks_duplicate = 0;
  std::size_t shards_dead = 0;        ///< gen-0 slots with no complete stream
  std::size_t shards_straggler = 0;   ///< outcomes delivered only duplicates
  std::size_t tasks_retried = 0;      ///< repair tasks launched
  std::size_t streams_complete = 0;   ///< trailers aggregated into `metrics`
  MergedMetrics metrics;  ///< dispatch counters folded into metrics.report
};

/// Runs the campaign through `executor` with recovery. The result is
/// canonical (runtime fields zeroed) and byte-identical — through
/// to_csv/to_json — to the serial run of the same (scenario, options),
/// regardless of which faults fired. Throws DispatchError when chunks
/// are still missing after max_rounds.
CampaignResult dispatch_campaign(const Scenario& scenario,
                                 const CampaignOptions& options,
                                 const DispatchOptions& dispatch,
                                 Executor& executor,
                                 DispatchReport* report = nullptr);

/// Offline recovery: fold already-written (possibly truncated, corrupted
/// or missing) shard streams, then run the missing chunks in-process and
/// fold those too. The `--recover` / run_sharded.py `--inject` path —
/// same invariants as dispatch_campaign, but the streams already exist
/// and the "executor" for repairs is this process. `options` supplies
/// the worker thread count for the repair run; campaign identity (seed,
/// trials, chunk size, shard count) comes from the salvaged headers.
/// Throws DispatchError when no stream yields a valid header or the
/// headers disagree with `scenario`.
CampaignResult recover_campaign(const Scenario& scenario,
                                const CampaignOptions& options,
                                const std::vector<SalvagedStream>& streams,
                                DispatchReport* report = nullptr);

}  // namespace hs::campaign
