// CSV / JSON report emitters for campaign results, plus the perf-snapshot
// writer that records the bench trajectory (trials/sec at 1 vs N threads).
#pragma once

#include <cstdio>
#include <string>

#include "campaign/runner.hpp"

namespace hs::campaign {

/// One row per (point, metric): axis value, sample count, mean, stddev,
/// min, max and the Wilson 95% interval for indicator metrics.
std::string to_csv(const CampaignResult& result);

/// The same aggregates as a single JSON document.
std::string to_json(const CampaignResult& result);

/// Compact human-readable table (used by the rebased benches).
void print_summary(std::FILE* out, const CampaignResult& result);

/// Writes `content` to `path`; returns false (and prints to stderr) on
/// failure.
bool write_file(const std::string& path, const std::string& content);

/// Perf snapshot comparing a 1-thread and an N-thread run of the same
/// campaign, as JSON ("BENCH_campaign.json" trajectory format).
std::string perf_snapshot_json(const CampaignResult& serial,
                               const CampaignResult& parallel);

}  // namespace hs::campaign
