/// @file
/// CSV / JSON report emitters for campaign results, plus the
/// perf-snapshot writer that records the bench trajectory: trials/sec
/// without deployment reuse, with reuse, and with reuse across N
/// threads. The emitted schemas are documented in docs/REPRODUCING.md.
#pragma once

#include <cstdio>
#include <string>

#include "campaign/runner.hpp"

namespace hs::campaign {

/// One row per (point, metric): axis value, sample count, mean, stddev,
/// min, max and the Wilson 95% interval for indicator metrics.
std::string to_csv(const CampaignResult& result);

/// The same aggregates as a single JSON document.
std::string to_json(const CampaignResult& result);

/// Compact human-readable table (used by the rebased benches).
void print_summary(std::FILE* out, const CampaignResult& result);

/// Writes `content` to `path`; returns false (and prints to stderr) on
/// failure.
bool write_file(const std::string& path, const std::string& content);

/// Perf snapshot comparing three runs of the same campaign — 1 thread
/// without deployment reuse, 1 thread with reuse, N threads with reuse —
/// as JSON ("BENCH_campaign.json" trajectory format). `reuse_speedup` is
/// the batched-deployment-reuse win; `thread_speedup` the worker-pool
/// win on top of it.
std::string perf_snapshot_json(const CampaignResult& serial_no_reuse,
                               const CampaignResult& serial_reuse,
                               const CampaignResult& parallel_reuse);

}  // namespace hs::campaign
