/// @file
/// CSV / JSON report emitters for campaign results, plus the
/// perf-snapshot writer that records the bench trajectory: trials/sec
/// without deployment reuse, with reuse, and with reuse across N
/// threads. The emitted schemas are documented in docs/REPRODUCING.md.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

#include "campaign/runner.hpp"

namespace hs::campaign {

/// Minimal JSON string escaping (quote, backslash, control characters) —
/// shared by the report emitters and the chunk-stream writer.
std::string json_escape(std::string_view s);

/// One row per (point, metric): axis value, sample count, mean, stddev,
/// min, max and the Wilson 95% interval for indicator metrics.
std::string to_csv(const CampaignResult& result);

/// The same aggregates as a single JSON document.
std::string to_json(const CampaignResult& result);

/// Compact human-readable table (used by the rebased benches).
void print_summary(std::FILE* out, const CampaignResult& result);

/// Writes `content` to `path`; returns false (and prints to stderr) on
/// failure.
bool write_file(const std::string& path, const std::string& content);

/// Zeroes the runtime-dependent fields (wall time, thread count, pool
/// counters) so reports from different executions of the same campaign —
/// serial vs sharded-and-merged — compare byte-for-byte. Merged results
/// from campaign::merge_chunk_streams are canonical already; apply this
/// to the serial reference before diffing reports.
void canonicalize(CampaignResult& result);

/// The `--metrics-json` document (schema in docs/REPRODUCING.md):
/// versioned header, run geometry (shards/threads/wall), every
/// obs::Counter, and every obs::Phase with calls, accumulated
/// nanoseconds, and its share of total wall time (phases nest, so
/// shares overlap — they are not a partition). `wall_seconds` <= 0
/// writes every share as 0.
std::string metrics_report_json(const std::string& scenario_name,
                                std::uint64_t seed, std::size_t shards,
                                unsigned threads, double wall_seconds,
                                const obs::Report& report);

/// Perf snapshot comparing four runs of the same campaign — 1 thread
/// without deployment reuse, 1 thread with reset-based reuse (snapshots
/// off), 1 thread with warm-snapshot restores, N threads with snapshots —
/// as JSON ("BENCH_campaign.json" trajectory format). `reuse_speedup` is
/// the batched-deployment-reuse win, `warm_speedup` the warm-restore win
/// on top of it, `thread_speedup` the worker-pool win on top of both.
/// `hardware_threads` records what std::thread::hardware_concurrency()
/// reported, so a snapshot taken on a small machine is self-describing
/// (a 1-hardware-thread box cannot show thread_speedup > 1). The
/// "simd_backend" field records which DSP kernel backend
/// (dsp::kernels::active_backend()) produced the timings, so scalar,
/// SSE2 and AVX2 snapshots are distinguishable after the fact.
/// `obs_run`, when given, is a fifth leg identical to `warm` but with
/// phase timers enabled: the snapshot gains an "obs" section, an
/// "obs_overhead" ratio (obs wall / warm wall — the acceptance gate is
/// <= 1.02) and a "phase_breakdown" of per-phase wall-time shares.
std::string perf_snapshot_json(const CampaignResult& serial_no_reuse,
                               const CampaignResult& serial_reuse,
                               const CampaignResult& warm,
                               const CampaignResult& parallel_warm,
                               unsigned hardware_threads,
                               const CampaignResult* obs_run = nullptr);

}  // namespace hs::campaign
