#include "campaign/shard.hpp"

#include <algorithm>
#include <stdexcept>

#include "campaign/runner.hpp"

namespace hs::campaign {

std::size_t resolved_trials(const Scenario& scenario,
                            const CampaignOptions& options) {
  return options.trials_per_point > 0 ? options.trials_per_point
                                      : scenario.default_trials;
}

ShardPlan plan_shard(const Scenario& scenario, const CampaignOptions& options,
                     std::size_t shard_count, std::size_t shard_index) {
  if (shard_count == 0) {
    throw std::invalid_argument("plan_shard: shard_count must be >= 1");
  }
  if (shard_index >= shard_count) {
    throw std::invalid_argument(
        "plan_shard: shard_index must be < shard_count");
  }
  ShardPlan plan;
  plan.shard_count = shard_count;
  plan.shard_index = shard_index;
  plan.point_count = scenario.point_count();
  plan.trials_per_point = resolved_trials(scenario, options);
  plan.chunk_size = std::max<std::size_t>(options.chunk_size, 1);

  // The global chunk enumeration every shard (and the serial runner)
  // agrees on; round-robin dealing spreads each sweep point's trials
  // evenly across shards.
  for (std::size_t p = 0; p < plan.point_count; ++p) {
    for (std::size_t t = 0; t < plan.trials_per_point;
         t += plan.chunk_size) {
      const std::size_t id = plan.total_chunks++;
      if (id % shard_count != shard_index) continue;
      plan.chunks.push_back(
          ChunkRef{id, p, t,
                   std::min(t + plan.chunk_size, plan.trials_per_point)});
    }
  }
  return plan;
}

ShardPlan make_repair_plan(const Scenario& scenario,
                           const CampaignOptions& options,
                           std::size_t shard_count, std::size_t shard_index,
                           const std::vector<std::size_t>& chunk_ids) {
  if (shard_count == 0) {
    throw std::invalid_argument("make_repair_plan: shard_count must be >= 1");
  }
  if (shard_index >= shard_count) {
    throw std::invalid_argument(
        "make_repair_plan: shard_index must be < shard_count");
  }
  // Enumerate every chunk once (shard 0 of 1 holds the full list), then
  // select the requested ids — the repair chunks are exactly the chunks
  // the original deal would have produced, only re-owned.
  const ShardPlan all = plan_shard(scenario, options, 1, 0);

  ShardPlan plan;
  plan.shard_count = shard_count;
  plan.shard_index = shard_index;
  plan.point_count = all.point_count;
  plan.trials_per_point = all.trials_per_point;
  plan.chunk_size = all.chunk_size;
  plan.total_chunks = all.total_chunks;
  plan.repair = true;

  std::vector<std::size_t> ids = chunk_ids;
  std::sort(ids.begin(), ids.end());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] >= all.total_chunks) {
      throw std::invalid_argument(
          "make_repair_plan: chunk id " + std::to_string(ids[i]) +
          " out of range (total_chunks " + std::to_string(all.total_chunks) +
          ")");
    }
    if (i > 0 && ids[i] == ids[i - 1]) {
      throw std::invalid_argument("make_repair_plan: duplicate chunk id " +
                                  std::to_string(ids[i]));
    }
    plan.chunks.push_back(all.chunks[ids[i]]);
  }
  return plan;
}

}  // namespace hs::campaign
