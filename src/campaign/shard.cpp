#include "campaign/shard.hpp"

#include <algorithm>
#include <stdexcept>

#include "campaign/runner.hpp"

namespace hs::campaign {

std::size_t resolved_trials(const Scenario& scenario,
                            const CampaignOptions& options) {
  return options.trials_per_point > 0 ? options.trials_per_point
                                      : scenario.default_trials;
}

ShardPlan plan_shard(const Scenario& scenario, const CampaignOptions& options,
                     std::size_t shard_count, std::size_t shard_index) {
  if (shard_count == 0) {
    throw std::invalid_argument("plan_shard: shard_count must be >= 1");
  }
  if (shard_index >= shard_count) {
    throw std::invalid_argument(
        "plan_shard: shard_index must be < shard_count");
  }
  ShardPlan plan;
  plan.shard_count = shard_count;
  plan.shard_index = shard_index;
  plan.point_count = scenario.point_count();
  plan.trials_per_point = resolved_trials(scenario, options);
  plan.chunk_size = std::max<std::size_t>(options.chunk_size, 1);

  // The global chunk enumeration every shard (and the serial runner)
  // agrees on; round-robin dealing spreads each sweep point's trials
  // evenly across shards.
  for (std::size_t p = 0; p < plan.point_count; ++p) {
    for (std::size_t t = 0; t < plan.trials_per_point;
         t += plan.chunk_size) {
      const std::size_t id = plan.total_chunks++;
      if (id % shard_count != shard_index) continue;
      plan.chunks.push_back(
          ChunkRef{id, p, t,
                   std::min(t + plan.chunk_size, plan.trials_per_point)});
    }
  }
  return plan;
}

}  // namespace hs::campaign
